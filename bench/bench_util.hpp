#pragma once

// Shared helpers for the experiment drivers (E1-E10). Each driver is a
// plain binary that prints its table to stdout; see DESIGN.md section 3 for
// the experiment index and EXPERIMENTS.md for recorded results.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/hybrid_network.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid::bench {

/// Stretch statistics over a set of routing attempts.
struct StretchStats {
  int attempts = 0;
  int delivered = 0;
  int fallbacks = 0;
  std::vector<double> stretches;

  void add(const routing::RouteResult& r, double stretch) {
    ++attempts;
    if (!r.delivered) return;
    ++delivered;
    fallbacks += r.fallbacks;
    stretches.push_back(stretch);
  }

  double deliveryRate() const {
    return attempts == 0 ? 0.0 : static_cast<double>(delivered) / attempts;
  }
  double mean() const {
    if (stretches.empty()) return 0.0;
    double s = 0.0;
    for (double v : stretches) s += v;
    return s / static_cast<double>(stretches.size());
  }
  double percentile(double p) const {
    if (stretches.empty()) return 0.0;
    auto sorted = stretches;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(p * (static_cast<double>(sorted.size()) - 1));
    return sorted[idx];
  }
  double maxStretch() const { return percentile(1.0); }
};

/// Runs `pairs` random s-t routing attempts through `router`.
inline StretchStats evaluateRouter(core::HybridNetwork& net, routing::Router& router,
                                   int pairs, unsigned seed) {
  StretchStats stats;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(net.ldel().numNodes()) - 1);
  for (int i = 0; i < pairs; ++i) {
    const int s = pick(rng);
    int t = pick(rng);
    if (t == s) t = (t + 1) % static_cast<int>(net.ldel().numNodes());
    const auto r = router.route(s, t);
    stats.add(r, net.stretch(r, s, t));
  }
  return stats;
}

/// A deployment with a few disjoint convex obstacles, scaled so that
/// roughly `n` nodes survive. The obstacle layout follows the paper's
/// motivation (city blocks / buildings with convex footprints).
inline scenario::Scenario convexHolesScenario(std::size_t n, unsigned seed) {
  scenario::ScenarioParams p = scenario::paramsForNodeCount(n + n / 3, seed);
  const double side = p.width;
  p.obstacles.push_back(scenario::regularPolygonObstacle(
      {0.28 * side, 0.30 * side}, 0.11 * side, 6, 0.3));
  p.obstacles.push_back(scenario::rectangleObstacle(
      {0.55 * side, 0.55 * side}, {0.80 * side, 0.72 * side}));
  p.obstacles.push_back(scenario::regularPolygonObstacle(
      {0.72 * side, 0.24 * side}, 0.09 * side, 5, 1.1));
  p.obstacles.push_back(scenario::regularPolygonObstacle(
      {0.25 * side, 0.72 * side}, 0.10 * side, 8));
  return scenario::makeScenario(p);
}

inline void printRule(int width = 110) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace hybrid::bench
