// E0 — machine-checkable reproduction gate.
//
// Re-runs a fast version of every headline claim and asserts its *shape*
// programmatically; exits non-zero if any claim fails. This is the
// one-binary answer to "does the reproduction still hold?" (CI runs it).

#include <cmath>
#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "graph/shortest_path.hpp"
#include "protocols/dominating_set_protocol.hpp"
#include "protocols/preprocessing.hpp"
#include "routing/baselines.hpp"
#include "routing/chew.hpp"
#include "delaunay/udg.hpp"

using namespace hybrid;

namespace {

int failures = 0;

void check(bool ok, const char* claim, const char* detail) {
  std::printf("[%s] %-58s %s\n", ok ? "PASS" : "FAIL", claim, detail);
  if (!ok) ++failures;
}

}  // namespace

int main() {
  std::printf("E0: reproduction gate - paper claims as assertions\n\n");
  char buf[128];

  // --- Claim 1 (Thm 1.2): hybrid routing is c-competitive with constant c;
  // greedy is not even reliable.
  {
    auto sc = bench::convexHolesScenario(900, 1042);
    core::HybridNetwork net(sc.points);
    routing::GreedyRouter greedy(net.ldel());
    auto& hybrid = net.router();
    auto gs = bench::evaluateRouter(net, greedy, 150, 5);
    auto hs = bench::evaluateRouter(net, hybrid, 150, 5);
    std::snprintf(buf, sizeof buf, "greedy %.0f%%, hybrid %.0f%%, mean stretch %.2f",
                  100 * gs.deliveryRate(), 100 * hs.deliveryRate(), hs.mean());
    check(gs.deliveryRate() < 1.0 && hs.deliveryRate() == 1.0 && hs.mean() < 2.0 &&
              hs.maxStretch() < 35.37,
          "C1: hybrid delivers 100% with constant stretch", buf);
  }

  // --- Claim 2 (§1.4/E2): local routing degrades on a maze, hybrid does not.
  {
    scenario::ScenarioParams p;
    const int teeth = 8;
    const double depth = 16.0;
    p.width = teeth * 5.2 - 3.2 + 12.0;
    p.height = depth + 1.5 + 12.0;
    p.seed = 17;
    p.spacing = 0.42;
    p.obstacles.push_back(scenario::combObstacle({6.0, 6.0}, teeth, 2.0, 3.2, depth, 1.5));
    auto sc = scenario::makeScenario(p);
    core::HybridNetwork net(sc.points);
    auto nearest = [&](geom::Vec2 q) {
      int best = 0;
      double bd = 1e18;
      for (int v = 0; v < static_cast<int>(sc.points.size()); ++v) {
        const double d = geom::dist2(net.ldel().position(v), q);
        if (d < bd) {
          bd = d;
          best = v;
        }
      }
      return best;
    };
    const int s = nearest({6.0 + 2.0 + 1.6, 8.3});
    const int t = nearest({6.0 + (teeth - 1) * 5.2 - 1.6, 8.3});
    routing::FaceGreedyRouter face(net.ldel(), net.subdivision(), net.holes());
    const double sf = net.stretch(face.route(s, t), s, t);
    const double sh = net.stretch(net.route(s, t), s, t);
    std::snprintf(buf, sizeof buf, "face %.2f vs hybrid %.2f", sf, sh);
    check(sh < 1.6 && sf > 1.8 * sh, "C2: worst-case separation on the comb maze", buf);
  }

  // --- Claim 3 (Thm 1.2/§5): preprocessing rounds are polylog.
  {
    int prevTotal = 0;
    bool boundedGrowth = true;
    double lastRatio = 0.0;
    for (const std::size_t n : {256u, 1024u, 4096u}) {
      auto sc = bench::convexHolesScenario(n, 1000);
      core::HybridNetwork net(sc.points);
      sim::Simulator simulator(net.udg());
      protocols::PreprocessingReport rep;
      protocols::runDistributedPreprocessing(net, simulator, &rep, 3);
      const double lg = std::log2(static_cast<double>(net.udg().numNodes()));
      lastRatio = rep.totalRounds() / (lg * lg);
      if (prevTotal > 0 && rep.totalRounds() > 2 * prevTotal) boundedGrowth = false;
      prevTotal = rep.totalRounds();
    }
    std::snprintf(buf, sizeof buf, "rounds/log^2(n) = %.1f at n=4096", lastRatio);
    check(boundedGrowth && lastRatio < 40.0, "C3: O(log^2 n) preprocessing rounds", buf);
  }

  // --- Claim 4 (Thm 1.2): storage independent of n.
  {
    long storage[2] = {0, 0};
    int i = 0;
    for (const double spacing : {0.5, 0.3}) {
      scenario::ScenarioParams p;
      p.width = p.height = 20.0;
      p.seed = 77;
      p.spacing = spacing;
      p.obstacles.push_back(scenario::regularPolygonObstacle({10, 10}, 3.0, 6));
      core::HybridNetwork net(scenario::makeScenario(p).points);
      storage[i++] = net.storageReport().maxHullNodeStorage;
    }
    std::snprintf(buf, sizeof buf, "hull storage %ld -> %ld while n grows ~2.8x",
                  storage[0], storage[1]);
    check(storage[1] < storage[0] * 3 / 2 + 8, "C4: storage independent of n", buf);
  }

  // --- Claim 5 (Lem 5.2 / Thm 5.3): ring protocols in O(log k) rounds.
  {
    const int k = 1024;
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < k; ++i) {
      const double a = 2.0 * 3.141592653589793 * i / k;
      pts.push_back({k * std::cos(a), k * std::sin(a)});
    }
    const auto udg = delaunay::buildUnitDiskGraph(
        pts, 2.0 * k * std::sin(3.141592653589793 / k) * 1.05);
    sim::Simulator s(udg);
    std::vector<int> ring(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) ring[static_cast<std::size_t>(i)] = i;
    protocols::RingPipeline pipeline(s, {{ring}});
    const auto results = pipeline.run();
    std::snprintf(buf, sizeof buf, "total %d rounds for k=1024 (4 phases)",
                  pipeline.rounds().total());
    check(pipeline.rounds().total() <= 6 * 10 + 12 &&
              results[0].hull.size() == static_cast<std::size_t>(k),
          "C5: ring pipeline O(log k) rounds, correct hull", buf);
  }

  // --- Claim 6 (§5.6): dominating set O(1)-approx in O(log k) rounds.
  {
    const int k = 1000;
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < k; ++i) pts.push_back({i * 0.9, 0.0});
    const auto g = delaunay::buildUnitDiskGraph(pts, 1.0);
    sim::Simulator s(g);
    std::vector<int> chain(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) chain[static_cast<std::size_t>(i)] = i;
    protocols::DominatingSetProtocol proto(s, {chain}, 7);
    const int rounds = proto.run();
    const double ratio =
        static_cast<double>(proto.dominatingSet(0).size()) / ((k + 2) / 3);
    std::snprintf(buf, sizeof buf, "ratio %.2f, %d rounds for k=1000", ratio, rounds);
    check(ratio < 2.0 && rounds < 150, "C6: dominating set approx + rounds", buf);
  }

  // --- Claim 7 (Thm 2.9 / 2.11): substrate constants.
  {
    auto sc = bench::convexHolesScenario(800, 1123);
    core::HybridNetwork net(sc.points);
    const geom::VisibilityContext vis(net.holes().holePolygons());
    routing::ChewRouter chew(net.ldel(), net.subdivision());
    std::mt19937 rng(9);
    std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
    double worstSpan = 0.0;
    double worstChew = 0.0;
    int visible = 0;
    for (int it = 0; it < 3000 && visible < 80; ++it) {
      const int s = pick(rng);
      const int t = pick(rng);
      if (s == t) continue;
      const double udg = net.shortestUdgDistance(s, t);
      worstSpan = std::max(worstSpan,
                           graph::shortestPathLength(net.ldel(), s, t) / udg);
      if (!vis.visible(net.ldel().position(s), net.ldel().position(t))) continue;
      const auto r = chew.route(s, t);
      if (!r.delivered) continue;
      ++visible;
      worstChew = std::max(worstChew, net.ldel().pathLength(r.path) /
                                          geom::dist(net.ldel().position(s),
                                                     net.ldel().position(t)));
    }
    std::snprintf(buf, sizeof buf, "spanner max %.3f (<=1.998), chew max %.3f (<=5.9)",
                  worstSpan, worstChew);
    check(worstSpan <= 1.998 + 1e-9 && worstChew <= 5.9 + 1e-9 && visible >= 50,
          "C7: LDel spanner and Chew bounds never violated", buf);
  }

  std::printf("\n%s (%d failure%s)\n", failures == 0 ? "ALL CLAIMS HOLD" : "CLAIMS BROKEN",
              failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}
