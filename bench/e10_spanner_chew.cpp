// E10 — substrate constants: LDel^2 spanner ratio and Chew's algorithm on
// visible pairs (Theorems 2.9 and 2.11).
//
// (a) LDel^2 is a 1.998-spanner of the UDG: max over sampled pairs of
//     (shortest LDel path) / (shortest UDG path).
// (b) Chew-style corridor routing between mutually visible nodes yields a
//     path of length at most 5.9 * ||st||; we report the measured maximum
//     of path / ||st|| over visible pairs in a deployment with holes.

#include <random>

#include "bench_util.hpp"
#include "graph/shortest_path.hpp"
#include "routing/chew.hpp"

using namespace hybrid;

int main() {
  std::printf("E10: spanner and Chew constants\n");

  std::printf("(a) LDel^2 vs UDG spanner ratio (hole-free deployments)\n");
  std::printf("%7s %7s | %8s %8s | %8s\n", "n", "pairs", "mean", "max", "bound");
  bench::printRule(70);
  for (const std::size_t n : {400u, 1000u, 2500u}) {
    auto params = scenario::paramsForNodeCount(n, 91 + static_cast<unsigned>(n));
    auto sc = scenario::makeScenario(params);
    core::HybridNetwork net(sc.points);
    std::mt19937 rng(3);
    std::uniform_int_distribution<int> pick(0, static_cast<int>(net.ldel().numNodes()) - 1);
    double worst = 0.0;
    double sum = 0.0;
    const int pairs = 150;
    for (int i = 0; i < pairs; ++i) {
      const int s = pick(rng);
      int t = pick(rng);
      if (s == t) t = (t + 1) % static_cast<int>(net.ldel().numNodes());
      const double udg = net.shortestUdgDistance(s, t);
      const double ldel = graph::shortestPathLength(net.ldel(), s, t);
      const double ratio = ldel / udg;
      worst = std::max(worst, ratio);
      sum += ratio;
    }
    std::printf("%7zu %7d | %8.4f %8.4f | %8.3f\n", net.ldel().numNodes(), pairs,
                sum / pairs, worst, 1.998);
  }
  bench::printRule(70);

  std::printf("(b) Chew corridor routing on visible pairs vs ||st|| (with holes)\n");
  std::printf("%7s %7s | %8s %8s %8s | %8s\n", "n", "pairs", "mean", "p95", "max",
              "bound");
  bench::printRule(70);
  for (const std::size_t n : {500u, 1500u, 3000u}) {
    auto sc = bench::convexHolesScenario(n, 123 + static_cast<unsigned>(n));
    core::HybridNetwork net(sc.points);
    const geom::VisibilityContext vis(net.holes().holePolygons());
    routing::ChewRouter chew(net.ldel(), net.subdivision());

    std::mt19937 rng(9);
    std::uniform_int_distribution<int> pick(0, static_cast<int>(net.ldel().numNodes()) - 1);
    std::vector<double> ratios;
    int tried = 0;
    while (ratios.size() < 200 && tried < 20000) {
      ++tried;
      const int s = pick(rng);
      const int t = pick(rng);
      if (s == t) continue;
      const auto ps = net.ldel().position(s);
      const auto pt = net.ldel().position(t);
      if (!vis.visible(ps, pt)) continue;
      const auto r = chew.route(s, t);
      if (!r.delivered) continue;  // outer-face corner cases
      ratios.push_back(net.ldel().pathLength(r.path) / geom::dist(ps, pt));
    }
    std::sort(ratios.begin(), ratios.end());
    double sum = 0.0;
    for (double v : ratios) sum += v;
    std::printf("%7zu %7zu | %8.4f %8.4f %8.4f | %8.1f\n", net.ldel().numNodes(),
                ratios.size(), sum / static_cast<double>(ratios.size()),
                ratios[static_cast<std::size_t>(0.95 * (ratios.size() - 1))],
                ratios.back(), 5.9);
  }
  bench::printRule(70);
  std::printf("expected: spanner max well under 1.998; Chew max well under 5.9\n");
  return 0;
}
