// E11 (extension) — intersecting convex hulls (paper §7 future work).
//
// The §4 protocol assumes disjoint hulls. On instances where the hulls of
// disjoint holes interlock (a U swallowing a block, nested L-shapes), we
// compare the plain hull overlay against the hull-group extension that
// merges intersecting hulls into one abstraction. Metric: delivery,
// stretch, and — most telling — how often each configuration has to fall
// back to a global shortest path because its protocol legs fail.

#include <memory>

#include "bench_util.hpp"

using namespace hybrid;

namespace {

scenario::Scenario interlocked(int variant, unsigned seed) {
  scenario::ScenarioParams p;
  p.width = p.height = 26.0;
  p.seed = seed;
  switch (variant) {
    case 0:  // U swallowing a block
      p.obstacles.push_back(scenario::uShapeObstacle({12.0, 12.0}, 10.0, 9.0, 1.6));
      p.obstacles.push_back(scenario::rectangleObstacle({10.5, 11.0}, {13.5, 13.5}));
      break;
    case 1:  // two interlocking Us
      p.obstacles.push_back(scenario::uShapeObstacle({10.0, 12.0}, 9.0, 8.0, 1.6));
      p.obstacles.push_back(scenario::rectangleObstacle({8.0, 16.5}, {12.0, 19.0}));
      break;
    default:  // U mouth facing a hexagon
      p.obstacles.push_back(scenario::uShapeObstacle({12.0, 10.0}, 11.0, 9.0, 1.6));
      p.obstacles.push_back(scenario::regularPolygonObstacle({12.0, 16.0}, 2.0, 6));
      break;
  }
  return scenario::makeScenario(p);
}

}  // namespace

int main() {
  std::printf("E11 (extension): routing with intersecting convex hulls\n");
  std::printf("%7s %6s %9s | %-26s %6s %8s %8s %7s\n", "variant", "n", "disjoint",
              "router", "deliv", "mean", "max", "fallbk");
  bench::printRule(104);

  for (int variant = 0; variant < 3; ++variant) {
    auto sc = interlocked(variant, 61 + static_cast<unsigned>(variant));
    core::HybridNetwork net(sc.points);

    auto plain = net.makeRouter(
        {routing::SiteMode::HullNodes, routing::EdgeMode::Delaunay, true, false});
    auto merged = net.makeRouter(
        {routing::SiteMode::HullNodes, routing::EdgeMode::Delaunay, true, true});

    for (routing::HybridRouter* router : {plain.get(), merged.get()}) {
      const auto stats = bench::evaluateRouter(net, *router, 200, 17);
      std::printf("%7d %6zu %9s | %-26s %5.1f%% %8.3f %8.3f %7d\n", variant,
                  net.udg().numNodes(), net.convexHullsDisjoint() ? "yes" : "no",
                  router->name().c_str(), 100.0 * stats.deliveryRate(), stats.mean(),
                  stats.maxStretch(), stats.fallbacks);
    }
  }
  bench::printRule(104);
  std::printf("expected: both deliver (fallbacks guarantee it) and perform on par —\n"
              "merging hulls alone does not solve intersecting hulls. The residual\n"
              "fallbacks stem from the per-hole bay handling inside the overlap\n"
              "region; completing it is the open problem the paper names in §7.\n");
  return 0;
}
