// E12 (extension) — incremental recomputation under bounded movement and
// node churn (paper §7 future work: "a model with bounded movement speed
// could be investigated in which only parts of the Overlay Network have to
// be recomputed").
//
// Slow, home-anchored movement barely changes boundary membership, so the
// incremental update re-runs the ring pipeline for a small fraction of
// rings; faster movement and node churn (phones leaving) change more.
// Columns compare the incremental round cost against a full §6 re-run.

#include <random>

#include "bench_util.hpp"
#include "protocols/incremental.hpp"

using namespace hybrid;

namespace {

void sweep(const char* label, double wanderRadius, double churnFraction) {
  scenario::ScenarioParams p;
  p.width = p.height = 22.0;
  p.seed = 71;
  p.obstacles.push_back(scenario::regularPolygonObstacle({8.0, 9.0}, 3.0, 7));
  p.obstacles.push_back(scenario::rectangleObstacle({13.0, 13.0}, {18.0, 17.0}));
  auto sc = scenario::makeScenario(p);
  const auto homes = sc.points;

  std::mt19937 rng(9);
  std::uniform_real_distribution<double> wander(-wanderRadius, wanderRadius);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  std::vector<std::vector<int>> prevRings;
  for (int step = 0; step <= 4; ++step) {
    std::vector<geom::Vec2> pts;
    for (std::size_t i = 0; i < homes.size(); ++i) {
      if (step > 0 && uni(rng) < churnFraction) continue;  // node left
      geom::Vec2 cand = homes[i];
      if (step > 0) {
        const geom::Vec2 moved{homes[i].x + wander(rng), homes[i].y + wander(rng)};
        bool blocked = moved.x < 0 || moved.y < 0 || moved.x > p.width ||
                       moved.y > p.height;
        for (const auto& obs : p.obstacles) blocked = blocked || obs.contains(moved);
        if (!blocked) cand = moved;
      }
      pts.push_back(cand);
    }
    core::HybridNetwork net(pts);
    sim::Simulator simulator(net.udg());
    protocols::IncrementalReport rep;
    // 20% membership tolerance: with bounded speed, a hull computed for a
    // ring that kept >= 80% of its nodes is still a valid approximation.
    protocols::runIncrementalUpdate(net, simulator, prevRings, &rep, 3, 0.2);
    prevRings = protocols::boundaryRings(net);
    if (step == 0) continue;  // step 0 just seeds the previous state
    std::printf("%-14s %4d | %7d %8d | %8ld %8ld %7.2f\n", label, step, rep.changedRings,
                rep.totalRings, rep.messages, rep.fullMessages,
                rep.fullMessages > 0
                    ? static_cast<double>(rep.messages) / static_cast<double>(rep.fullMessages)
                    : 0.0);
  }
}

}  // namespace

int main() {
  std::printf("E12 (extension): incremental vs full re-abstraction (20%% tolerance)\n");
  std::printf("%-14s %4s | %7s %8s | %8s %8s %7s\n", "mode", "step", "changed", "rings",
              "incrMsgs", "fullMsgs", "ratio");
  bench::printRule(80);
  sweep("slow (0.05)", 0.05, 0.0);
  bench::printRule(80);
  sweep("fast (0.25)", 0.25, 0.0);
  bench::printRule(80);
  sweep("churn 2%", 0.05, 0.02);
  bench::printRule(80);
  std::printf("expected: slow movement keeps most ring memberships within tolerance\n"
              "(message ratio << 1); faster movement and churn push the incremental\n"
              "cost toward the full re-run\n");
  return 0;
}
