// E13 (robustness study) — quasi-unit-disk radios (paper §7 names physical
// wireless effects as future work).
//
// Links longer than a reliable radius exist only with probability 1-p.
// None of the paper's UDG theorems cover this model, so this experiment
// probes how gracefully the pipeline degrades: dropped long links shred
// the boundary into more (spurious) holes, which costs abstraction size
// and some stretch, but the router's fallbacks keep delivery total.

#include <random>

#include "bench_util.hpp"
#include "delaunay/ldel.hpp"

using namespace hybrid;

int main() {
  std::printf("E13 (robustness): quasi-UDG radio model, reliable radius 0.75\n");
  std::printf("%6s %6s | %6s %7s %7s | %6s %8s %8s %7s\n", "p", "n", "holes",
              "ldelE", "crossRm", "deliv", "mean", "max", "fallbk");
  bench::printRule(96);

  for (const double p : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    scenario::ScenarioParams sp;
    sp.width = sp.height = 20.0;
    sp.seed = 81;
    sp.spacing = 0.45;  // headroom so the reliable links alone stay connected
    sp.obstacles.push_back(scenario::regularPolygonObstacle({10.0, 10.0}, 3.0, 6));
    const auto sc = scenario::makeScenario(sp);

    delaunay::LDelOptions opts;
    opts.reliableRadius = 0.75;
    opts.dropProbability = p;
    opts.dropSeed = 5;
    core::HybridNetwork net(sc.points, opts);

    // Only evaluate pairs connected in the (degraded) UDG.
    std::mt19937 rng(3);
    std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
    bench::StretchStats stats;
    for (int it = 0; it < 200; ++it) {
      const int s = pick(rng);
      const int t = pick(rng);
      if (s == t) continue;
      if (std::isinf(net.shortestUdgDistance(s, t))) continue;
      const auto r = net.route(s, t);
      stats.add(r, net.stretch(r, s, t));
    }
    std::printf("%6.2f %6zu | %6zu %7zu %7d | %5.1f%% %8.3f %8.3f %7d\n", p,
                net.udg().numNodes(), net.holes().holes.size(), net.ldel().numEdges(),
                net.ldelResult().removedCrossings, 100.0 * stats.deliveryRate(),
                stats.mean(), stats.maxStretch(), stats.fallbacks);
  }
  bench::printRule(96);
  std::printf("expected: hole count grows with p (radio irregularity shreds the\n"
              "boundary); delivery stays 100%% via fallbacks; stretch degrades\n"
              "gracefully rather than collapsing\n");
  return 0;
}
