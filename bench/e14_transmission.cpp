// E14 — end-to-end transmission cost on the message-passing simulator
// (the §1.2 flow: position handshake over a long-range link, then ad hoc
// forwarding along the protocol's route).
//
// For random pairs we report the full round cost (2 handshake rounds + one
// round per ad hoc hop) and the message budget split between the two link
// types — the paper's economic argument is exactly that long-range usage
// stays tiny (2 messages per transmission) while all payload volume
// travels over free ad hoc links.

#include <random>

#include "bench_util.hpp"
#include "protocols/routing_sim.hpp"

using namespace hybrid;

int main() {
  std::printf("E14: end-to-end transmission on the simulator\n");
  std::printf("%6s %7s | %8s %8s %8s | %9s %9s\n", "n", "pairs", "rounds", "hops",
              "stretch", "longRange", "adHoc");
  bench::printRule(84);

  for (const std::size_t n : {300u, 900u, 2000u}) {
    auto sc = bench::convexHolesScenario(n, 88 + static_cast<unsigned>(n));
    core::HybridNetwork net(sc.points);
    sim::Simulator simulator(net.udg());

    std::mt19937 rng(4);
    std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
    long sumRounds = 0;
    long sumHops = 0;
    long sumLong = 0;
    long sumAdHoc = 0;
    double sumStretch = 0.0;
    int done = 0;
    const int pairs = 60;
    for (int it = 0; it < pairs; ++it) {
      const int s = pick(rng);
      int t = pick(rng);
      if (t == s) t = (t + 1) % static_cast<int>(sc.points.size());
      const auto tx = protocols::simulateTransmission(net, simulator, s, t);
      if (!tx.delivered) continue;
      ++done;
      sumRounds += tx.rounds;
      sumHops += tx.adHocHops;
      sumLong += tx.longRangeMessages;
      sumAdHoc += tx.adHocMessages;
      const auto oracle = net.route(s, t);
      sumStretch += net.stretch(oracle, s, t);
    }
    std::printf("%6zu %7d | %8.1f %8.1f %8.3f | %9.1f %9.1f\n", net.udg().numNodes(),
                done, static_cast<double>(sumRounds) / done,
                static_cast<double>(sumHops) / done, sumStretch / done,
                static_cast<double>(sumLong) / done,
                static_cast<double>(sumAdHoc) / done);
  }
  bench::printRule(84);
  std::printf("expected: exactly 2 long-range messages per transmission regardless of\n"
              "n (the paper's cost model); rounds = hops + 2\n");
  return 0;
}
