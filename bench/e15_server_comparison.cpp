// E15 — the economics of the hybrid approach vs the §1 strawman.
//
// The paper's introduction dismisses the obvious alternative — every node
// uploads its position/neighborhood to a server that computes optimal
// routes — because long-range (cellular) traffic is the expensive
// resource. This experiment prices both designs in long-range messages:
//
//   server:  n uploads per refresh epoch + 2 per routed message,
//            optimal paths (stretch 1).
//   hybrid:  one-off O(log^2 n)-round preprocessing whose long-range
//            message total is polylog *per node*, then 2 long-range
//            messages per routed message, c-competitive paths.
//
// The hybrid's preprocessing bill is amortized once; the server pays n
// uploads on *every* position refresh (the paper's mobile setting).

#include "bench_util.hpp"
#include "protocols/preprocessing.hpp"
#include "protocols/ring_pipeline.hpp"
#include "protocols/dominating_set_protocol.hpp"
#include "routing/server_oracle.hpp"

using namespace hybrid;

int main() {
  std::printf("E15: long-range message bill - hybrid vs server strawman\n");
  std::printf("%7s | %10s %10s | %10s %10s %10s | %9s %9s\n", "n", "srvUpload",
              "srvWords", "hybSetup", "hybRefrsh", "refrWords", "hybStrtch", "srvStrtch");
  bench::printRule(104);

  for (const std::size_t n : {300u, 1000u, 3000u, 8000u}) {
    auto sc = bench::convexHolesScenario(n, 2200 + static_cast<unsigned>(n));
    core::HybridNetwork net(sc.points);

    routing::ServerOracleRouter server(net.udg());
    sim::Simulator simulator(net.udg());
    protocols::PreprocessingReport rep;
    protocols::runDistributedPreprocessing(net, simulator, &rep, 3);
    long hybridLongRange = 0;
    for (const auto& st : simulator.stats()) hybridLongRange += st.sentLongRange;

    // Per mobility refresh (§6): ring phases + dominating sets only.
    sim::Simulator refreshSim(net.udg());
    protocols::RingInputs rings;
    for (const auto& h : net.holes().holes) rings.rings.push_back(h.ring);
    if (net.holes().outerBoundary.size() >= 3) {
      rings.rings.push_back(net.holes().outerBoundary);
    }
    protocols::RingPipeline refresh(refreshSim, std::move(rings));
    refresh.run();
    std::vector<std::vector<int>> chains;
    for (const auto& a : net.abstractions()) {
      for (const auto& bay : a.bays) chains.push_back(bay.chain);
    }
    protocols::DominatingSetProtocol ds(refreshSim, chains, 3);
    ds.run();
    long hybridRefresh = 0;
    long hybridRefreshWords = 0;
    for (const auto& st : refreshSim.stats()) {
      hybridRefresh += st.sentLongRange;
      hybridRefreshWords += st.sentWords;
    }

    const auto hybStats = bench::evaluateRouter(net, net.router(), 100, 9);
    const auto srvStats = bench::evaluateRouter(net, server, 100, 9);

    std::printf("%7zu | %10ld %10ld | %10ld %10ld %10ld | %9.3f %9.3f\n",
                net.udg().numNodes(), server.uploadMessagesPerEpoch(),
                server.uploadWordsPerEpoch(), hybridLongRange, hybridRefresh,
                hybridRefreshWords, hybStats.mean(), srvStats.mean());
  }
  bench::printRule(104);
  std::printf("expected: the server pays n uploads with Theta(E) words on EVERY position\n"
              "refresh; the hybrid pays its setup once and each refresh touches only the\n"
              "boundary nodes - its per-node refresh cost falls with n (boundary is\n"
              "O(sqrt n)) while the server's stays n. Both pay 2 per routed message;\n"
              "the hybrid trades ~14%% stretch for never shipping the topology anywhere.\n");
  return 0;
}
