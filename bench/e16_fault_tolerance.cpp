// E16 — fault tolerance of the preprocessing protocols: rounds and traffic
// overhead vs message loss rate, as JSON.
//
// Fixed deployment with obstacles; a loss-rate sweep over the seeded fault
// injection layer (drops on both channels). Each rate runs the three
// retry-wrapped protocols — the O(1)-round LDel construction, the ring
// pipeline and the bay dominating sets — on a fresh faulty simulator and
// verifies the LDel output still matches the fault-free oracle exactly.
// The loss=0 row is the baseline; overhead columns are ratios against it.
// The LDel phase additionally carries a round budget equal to its
// fault-free round count, demonstrating the simulator's overrun report.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "protocols/dominating_set_protocol.hpp"
#include "protocols/ldel_protocol.hpp"
#include "protocols/reliable.hpp"
#include "protocols/ring_pipeline.hpp"
#include "sim/fault_plan.hpp"

using namespace hybrid;

namespace {

struct SweepRow {
  double loss = 0.0;
  int ldelRounds = 0;
  int ringRounds = 0;
  int dsRounds = 0;
  long messages = 0;
  long retransmissions = 0;
  long dropped = 0;
  bool ldelExact = false;
  sim::RoundBudgetReport ldelBudget;
  int totalRounds() const { return ldelRounds + ringRounds + dsRounds; }
};

SweepRow runAtLossRate(const core::HybridNetwork& net, double loss, int ldelBudget) {
  SweepRow row;
  row.loss = loss;

  sim::FaultConfig cfg;
  cfg.seed = 0xE16 + static_cast<std::uint64_t>(loss * 10000);
  cfg.adHocDrop = loss;
  cfg.longRangeDrop = loss;
  sim::Simulator s(net.udg(), sim::FaultPlan(cfg));
  const protocols::RetryPolicy retry;
  const protocols::RetryPolicy* retryPtr = loss > 0.0 ? &retry : nullptr;

  s.setRoundBudget(ldelBudget);
  const auto ldel = protocols::runLdelConstruction(s, net.radius(), retryPtr);
  row.ldelRounds = ldel.rounds;
  row.ldelBudget = s.budgetReport();
  row.retransmissions += ldel.retransmissions;
  auto edges = ldel.graph.edges();
  auto oracleEdges = net.ldel().edges();
  std::sort(edges.begin(), edges.end());
  std::sort(oracleEdges.begin(), oracleEdges.end());
  row.ldelExact = edges == oracleEdges;

  protocols::RingInputs rings;
  for (const auto& h : net.holes().holes) rings.rings.push_back(h.ring);
  if (net.holes().outerBoundary.size() >= 3) {
    rings.rings.push_back(net.holes().outerBoundary);
  }
  protocols::RingPipeline pipeline(s, rings, retryPtr);
  pipeline.run();
  row.ringRounds = pipeline.rounds().total();
  row.retransmissions += pipeline.reliableStats().retransmissions;

  std::vector<std::vector<int>> chains;
  for (const auto& a : net.abstractions()) {
    for (const auto& bay : a.bays) chains.push_back(bay.chain);
  }
  protocols::DominatingSetProtocol ds(s, chains, 1, retryPtr);
  row.dsRounds = ds.run();
  row.retransmissions += ds.reliableStats().retransmissions;

  row.messages = s.totalMessages();
  row.dropped = s.totalDropped();
  return row;
}

}  // namespace

int main() {
  const auto sc = bench::convexHolesScenario(2048, 1600);
  core::HybridNetwork net(sc.points);

  const double lossRates[] = {0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20};

  // Baseline first: its LDel round count is the budget handed to every
  // faulty run, so the JSON carries the overrun report per rate.
  SweepRow baseline = runAtLossRate(net, 0.0, 0);
  baseline = runAtLossRate(net, 0.0, baseline.ldelRounds);

  std::printf("{\n");
  std::printf("  \"experiment\": \"e16_fault_tolerance\",\n");
  std::printf("  \"n\": %zu,\n", net.udg().numNodes());
  std::printf("  \"holes\": %zu,\n", net.holes().holes.size());
  std::printf(
      "  \"retryPolicy\": {\"baseTimeout\": 3, \"maxTimeout\": 32, \"maxAttempts\": 16},\n");
  std::printf("  \"sweep\": [\n");
  bool first = true;
  for (const double loss : lossRates) {
    const SweepRow row =
        loss == 0.0 ? baseline : runAtLossRate(net, loss, baseline.ldelRounds);
    if (!first) std::printf(",\n");
    first = false;
    std::printf("    {\"loss\": %.2f, "
                "\"rounds\": {\"ldel\": %d, \"rings\": %d, \"ds\": %d, \"total\": %d}, "
                "\"roundOverhead\": %.3f, "
                "\"messages\": %ld, \"trafficOverhead\": %.3f, "
                "\"retransmissions\": %ld, \"dropped\": %ld, "
                "\"ldelExact\": %s, "
                "\"ldelBudget\": {\"budget\": %d, \"used\": %d, \"overrun\": %s, "
                "\"overrunRounds\": %d}}",
                row.loss, row.ldelRounds, row.ringRounds, row.dsRounds,
                row.totalRounds(),
                static_cast<double>(row.totalRounds()) /
                    static_cast<double>(baseline.totalRounds()),
                row.messages,
                static_cast<double>(row.messages) /
                    static_cast<double>(baseline.messages),
                row.retransmissions, row.dropped,
                row.ldelExact ? "true" : "false", row.ldelBudget.budget,
                row.ldelBudget.roundsUsed, row.ldelBudget.overrun ? "true" : "false",
                row.ldelBudget.overrunRounds());
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
