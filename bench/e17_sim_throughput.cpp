// E17 — simulator message throughput, as JSON.
//
// Measures the hot-path overhaul end to end: pooled messages with
// small-buffer payloads, the O(m + n) counting-sort delivery order and
// multi-threaded node stepping, against a faithful replica of the pre-PR
// hot loop (one heap-backed message per send, per-round std::stable_sort,
// serial stepping) compiled into this binary. Both simulators run the same
// gossip workload — every node sends a 4-word data message (no ID
// introductions, like the bulk of protocol traffic) to every UDG
// neighbor every round — on the same graphs; each timed run is preceded by
// an untimed warm-up run so both sides are measured in steady state.
//
// Usage: e17_sim_throughput [--smoke | --gate] [--metrics FILE]
//   --smoke         tiny sweep (CI correctness check): one small graph,
//                   threads {1, 2}. Timed regions are sub-millisecond --
//                   fast, but far too noisy to gate on.
//   --gate          mid-size sweep for the CI perf gate: one config sized so
//                   every timed region is tens of milliseconds (stable
//                   ratios) while the whole run stays under a few seconds.
//   --metrics FILE  record per-config throughput/speedup gauges and write an
//                   obs snapshot (consumed by the CI bench gate via
//                   tools/metrics_report --check).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "delaunay/udg.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "sim/simulator.hpp"

using namespace hybrid;

namespace {

graph::GeometricGraph gridGraph(int n) {
  // Near-square grid with 0.9 spacing: every interior node has exactly the
  // 4 axis neighbors within unit range.
  int side = 1;
  while (side * side < n) ++side;
  std::vector<geom::Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({0.9 * (i % side), 0.9 * (i / side)});
  }
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

// ---------------------------------------------------------------------------
// Pre-PR reference: the seed simulator's hot loop, reduced to what the
// workload exercises (no faults, no tap, no trace — those paths were cold).
// ---------------------------------------------------------------------------

struct LegacyMessage {
  int from = -1;
  int to = -1;
  int type = 0;
  std::vector<std::int64_t> ints;
  std::vector<double> reals;
  std::vector<int> ids;
  std::size_t words() const { return ints.size() + reals.size() + ids.size() + 1; }
};

struct LegacyStats {
  long sentAdHoc = 0;
  long sentWords = 0;
  long receivedWords = 0;
};

long runLegacyGossip(const graph::GeometricGraph& g, int rounds) {
  const auto n = static_cast<int>(g.numNodes());
  std::vector<std::unordered_set<int>> knowledge(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    for (int nb : g.neighbors(v)) knowledge[static_cast<std::size_t>(v)].insert(nb);
  }
  std::vector<LegacyStats> stats(static_cast<std::size_t>(n));
  std::vector<LegacyMessage> pending;

  const auto blast = [&](int v, int round) {
    for (int nb : g.neighbors(v)) {
      LegacyMessage m;
      m.from = v;
      m.to = nb;
      m.type = 7;
      m.ints = {static_cast<std::int64_t>(round), static_cast<std::int64_t>(v)};
      m.reals = {0.5 * v};
      auto& st = stats[static_cast<std::size_t>(v)];
      ++st.sentAdHoc;
      st.sentWords += static_cast<long>(m.words());
      pending.push_back(std::move(m));
    }
  };

  for (int v = 0; v < n; ++v) blast(v, 0);
  for (int round = 1; !pending.empty(); ++round) {
    std::vector<LegacyMessage> inbox = std::move(pending);
    pending = {};
    std::stable_sort(inbox.begin(), inbox.end(),
                     [](const LegacyMessage& a, const LegacyMessage& b) {
                       if (a.to != b.to) return a.to < b.to;
                       return a.from < b.from;
                     });
    for (const LegacyMessage& m : inbox) {
      auto& know = knowledge[static_cast<std::size_t>(m.to)];
      if (m.from != m.to) know.insert(m.from);
      for (int id : m.ids) {
        if (id != m.to) know.insert(id);
      }
      stats[static_cast<std::size_t>(m.to)].receivedWords += static_cast<long>(m.words());
    }
    if (round < rounds) {
      for (int v = 0; v < n; ++v) blast(v, round);
    }
  }
  long total = 0;
  for (const auto& s : stats) total += s.sentAdHoc;
  return total;
}

// ---------------------------------------------------------------------------
// The same workload against the real simulator (strictly per-node state, so
// it is valid at any thread count).
// ---------------------------------------------------------------------------

class GossipProtocol : public sim::Protocol {
 public:
  explicit GossipProtocol(int rounds) : rounds_(rounds) {}

  void onStart(sim::Context& ctx) override { blast(ctx); }
  void onMessage(sim::Context&, const sim::Message&) override {}
  void onRoundEnd(sim::Context& ctx) override {
    if (ctx.round() < rounds_) blast(ctx);
  }

 private:
  void blast(sim::Context& ctx) {
    const int v = ctx.self();
    for (int nb : ctx.udgNeighbors()) {
      sim::Message m;
      m.type = 7;
      m.ints = {static_cast<std::int64_t>(ctx.round()), static_cast<std::int64_t>(v)};
      m.reals = {0.5 * v};
      ctx.sendAdHoc(nb, std::move(m));
    }
  }
  int rounds_;
};

double seconds(const std::chrono::steady_clock::time_point a,
               const std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Measurement {
  long messages = 0;
  double secs = 0.0;
  double mps() const { return secs > 0.0 ? static_cast<double>(messages) / secs : 0.0; }
};

constexpr int kRepeats = 3;  ///< Best-of-3: robust against machine noise.

Measurement measureLegacy(const graph::GeometricGraph& g, int rounds) {
  runLegacyGossip(g, rounds);  // warm-up (allocator, caches)
  Measurement best;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const long messages = runLegacyGossip(g, rounds);
    const auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    if (best.secs == 0.0 || s < best.secs) best = {messages, s};
  }
  return best;
}

Measurement measurePooled(const graph::GeometricGraph& g, int rounds, int threads) {
  sim::Simulator s(g);
  s.setThreads(threads);
  // Measure the requested configuration, not the hardware clamp: the gate
  // ratios must describe the same sharded machinery on every box size.
  s.setAllowOversubscribe(true);
  {
    GossipProtocol warm(rounds);  // warm-up: pool + scratch reach steady state
    s.run(warm);
  }
  Measurement best;
  for (int r = 0; r < kRepeats; ++r) {
    s.resetStats();
    GossipProtocol proto(rounds);
    const auto t0 = std::chrono::steady_clock::now();
    s.run(proto);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = seconds(t0, t1);
    if (best.secs == 0.0 || sec < best.secs) best = {s.totalMessages(), sec};
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::string metricsPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metricsPath = argv[++i];
    }
  }
  if (gate) smoke = false;
  if (!metricsPath.empty()) {
    if (!obs::kCompiledIn) {
      std::fprintf(stderr, "e17_sim_throughput: --metrics requested but observability was "
                           "compiled out (HYBRID_OBS_DISABLED)\n");
      return 2;
    }
    obs::setEnabled(true);
  }

  const std::vector<int> sizes = smoke  ? std::vector<int>{300}
                                 : gate ? std::vector<int>{2000}
                                        : std::vector<int>{1000, 4000, 10000};
  // The gate sweeps {1, 2, 8} so the 8t/1t thread-scaling ratio is among the
  // gated gauges; smoke stays tiny.
  const std::vector<int> threadCounts = smoke  ? std::vector<int>{1, 2}
                                        : gate ? std::vector<int>{1, 2, 8}
                                               : std::vector<int>{1, 2, 4, 8};
  const int rounds = smoke ? 10 : gate ? 60 : 50;

  std::printf("{\n");
  std::printf("  \"experiment\": \"e17_sim_throughput\",\n");
  std::printf(
      "  \"workload\": \"gossip: every node sends 4 payload words to every UDG "
      "neighbor, every round\",\n");
  std::printf("  \"rounds\": %d,\n", rounds);
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"configs\": [\n");
  bool firstCfg = true;
  for (const int n : sizes) {
    const auto g = gridGraph(n);
    long edges = 0;
    for (int v = 0; v < n; ++v) edges += static_cast<long>(g.neighbors(v).size());
    edges /= 2;

    const Measurement legacy = measureLegacy(g, rounds);
    if (!firstCfg) std::printf(",\n");
    firstCfg = false;
    std::printf("    {\"n\": %d, \"edges\": %ld,\n", n, edges);
    std::printf("     \"legacy\": {\"messages\": %ld, \"seconds\": %.4f, "
                "\"messagesPerSec\": %.0f},\n",
                legacy.messages, legacy.secs, legacy.mps());
    HYBRID_OBS_STMT(if (obs::enabled()) {
      obs::Registry::global()
          .gauge("bench.e17.legacy.messages_per_s.n" + std::to_string(n))
          .set(legacy.mps());
    });
    std::printf("     \"pooled\": [\n");
    Measurement oneThread;
    bool firstT = true;
    for (const int t : threadCounts) {
      const Measurement m = measurePooled(g, rounds, t);
      if (t == 1) oneThread = m;
      if (!firstT) std::printf(",\n");
      firstT = false;
      const double speedup = legacy.mps() > 0.0 ? m.mps() / legacy.mps() : 0.0;
      const double scaling = oneThread.mps() > 0.0 ? m.mps() / oneThread.mps() : 0.0;
      std::printf("       {\"threads\": %d, \"messages\": %ld, \"seconds\": %.4f, "
                  "\"messagesPerSec\": %.0f, \"speedupVsLegacy\": %.2f, "
                  "\"speedupVs1Thread\": %.2f}",
                  t, m.messages, m.secs, m.mps(), speedup, scaling);
      HYBRID_OBS_STMT(if (obs::enabled()) {
        const std::string key = ".n" + std::to_string(n) + ".t" + std::to_string(t);
        auto& reg = obs::Registry::global();
        reg.gauge("bench.e17.pooled.messages_per_s" + key).set(m.mps());
        // Machine-independent ratios: these are what the CI bench gate
        // checks ("speedup" names pass the gate's --filter).
        reg.gauge("bench.e17.pooled.speedup_vs_legacy" + key).set(speedup);
        if (t > 1) {
          reg.gauge("bench.e17.pooled.speedup_vs_1thread" + key).set(scaling);
        }
      });
    }
    std::printf("\n     ]}");
  }
  std::printf("\n  ]\n}\n");

  if (!metricsPath.empty()) {
    if (!obs::saveSnapshot(metricsPath, obs::capture())) {
      std::fprintf(stderr, "e17_sim_throughput: cannot write metrics snapshot %s\n",
                   metricsPath.c_str());
      return 2;
    }
  }
  return 0;
}
