// E18 — routing query throughput, as JSON.
//
// Measures the query serving engine end to end against a faithful replica
// of the pre-PR overlay serving path compiled into this binary: rebuild
// the query graph (all sites + the two endpoints) per query and run one
// dijkstra() over it, versus the incremental engine (precomputed site-pair
// table, endpoint connection only, workspace Dijkstra, zero steady-state
// allocations). Also sweeps routeBatch() thread counts on full hybrid
// route() queries. Every timed run is preceded by an untimed warm-up so
// both sides are measured in steady state; best-of-3 guards against
// machine noise.
//
// Usage: e18_route_throughput [--smoke | --gate] [--metrics FILE]
//   --smoke         tiny sweep (CI correctness check): one small deployment,
//                   threads {1, 2}.
//   --gate          mid-size sweep for the CI perf gate: one config sized so
//                   every timed region is tens of milliseconds (stable
//                   ratios) while the whole run stays under a few seconds.
//   --metrics FILE  record per-config throughput/speedup gauges and write an
//                   obs snapshot (consumed by the CI bench gate via
//                   tools/metrics_report --check).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "delaunay/triangulation.hpp"
#include "graph/shortest_path.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "routing/overlay_graph.hpp"

using namespace hybrid;

namespace {

// ---------------------------------------------------------------------------
// Pre-PR reference: rebuild the overlay query graph per query from the
// overlay's public state and run one full Dijkstra over it (what
// OverlayGraph::waypoints() did before the incremental engine).
// ---------------------------------------------------------------------------

double legacyOverlayQuery(const routing::OverlayGraph& overlay, geom::Vec2 from,
                          geom::Vec2 to) {
  const auto& sitePos = overlay.sitePositions();
  const auto& vis = overlay.visibility();
  const int ns = static_cast<int>(sitePos.size());

  int fromSite = -1;
  int toSite = -1;
  for (int i = 0; i < ns; ++i) {
    if (sitePos[static_cast<std::size_t>(i)] == from) fromSite = i;
    if (sitePos[static_cast<std::size_t>(i)] == to) toSite = i;
  }
  std::vector<geom::Vec2> pts = sitePos;
  const int fromIdx = fromSite >= 0 ? fromSite : static_cast<int>(pts.size());
  if (fromSite < 0) pts.push_back(from);
  int toIdx = toSite >= 0 ? toSite : static_cast<int>(pts.size());
  if (toSite < 0 && !(from == to)) pts.push_back(to);
  if (toSite < 0 && from == to) toIdx = fromIdx;

  graph::GeometricGraph g(pts);
  for (int i = 0; i < ns; ++i) {
    for (int j : overlay.siteAdjacency()[static_cast<std::size_t>(i)]) {
      if (j > i) g.addEdge(i, j);
    }
  }
  for (const int endpoint : {fromIdx, toIdx}) {
    if (endpoint < ns) continue;
    for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
      if (i == endpoint) continue;
      if (vis.visible(pts[static_cast<std::size_t>(endpoint)],
                      pts[static_cast<std::size_t>(i)])) {
        g.addEdge(endpoint, i);
      }
    }
  }
  const auto tree = graph::dijkstra(g, fromIdx, toIdx);
  return tree.dist[static_cast<std::size_t>(toIdx)];
}

double seconds(const std::chrono::steady_clock::time_point a,
               const std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Measurement {
  long queries = 0;
  double secs = 0.0;
  double qps() const { return secs > 0.0 ? static_cast<double>(queries) / secs : 0.0; }
};

constexpr int kRepeats = 3;  ///< Best-of-3: robust against machine noise.

std::vector<std::pair<geom::Vec2, geom::Vec2>> overlayQueryPoints(
    const core::HybridNetwork& net, std::size_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(net.ldel().numNodes()) - 1);
  std::vector<std::pair<geom::Vec2, geom::Vec2>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({net.ldel().position(pick(rng)), net.ldel().position(pick(rng))});
  }
  return out;
}

template <typename Fn>
Measurement measureBestOf(long queries, Fn&& run) {
  run();  // warm-up (allocator, caches, workspaces)
  Measurement best;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    if (best.secs == 0.0 || s < best.secs) best = {queries, s};
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::string metricsPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metricsPath = argv[++i];
    }
  }
  if (gate) smoke = false;
  if (!metricsPath.empty()) {
    if (!obs::kCompiledIn) {
      std::fprintf(stderr, "e18_route_throughput: --metrics requested but observability was "
                           "compiled out (HYBRID_OBS_DISABLED)\n");
      return 2;
    }
    obs::setEnabled(true);
  }

  const std::vector<std::size_t> sizes =
      smoke  ? std::vector<std::size_t>{250}
      : gate ? std::vector<std::size_t>{500}
             : std::vector<std::size_t>{500, 1000, 2000, 4000};
  // The gate sweeps {1, 2, 8} so the 8t/1t thread-scaling ratio
  // (speedup_vs_serial.t8) is among the gated gauges; smoke stays tiny.
  const std::vector<int> threadCounts = smoke  ? std::vector<int>{1, 2}
                                        : gate ? std::vector<int>{1, 2, 8}
                                               : std::vector<int>{1, 2, 4, 8};
  const std::size_t overlayQueries = smoke ? 200 : gate ? 500 : 2000;
  const std::size_t routeQueries = smoke ? 100 : gate ? 400 : 1000;

  std::printf("{\n");
  std::printf("  \"experiment\": \"e18_route_throughput\",\n");
  std::printf("  \"workload\": \"overlay: random endpoint pairs on the visibility overlay; "
              "batch: random s-t hybrid route() pairs\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"configs\": [\n");
  bool firstCfg = true;
  for (const std::size_t n : sizes) {
    auto sc = bench::convexHolesScenario(n, 42 + static_cast<unsigned>(n));
    core::HybridNetwork net(sc.points);
    const auto router = net.makeRouter(
        {routing::SiteMode::HullNodes, routing::EdgeMode::Visibility, true});
    const routing::OverlayGraph& overlay = router->overlay();

    // --- Overlay query serving: legacy rebuild vs incremental engine. ---
    const auto qpts = overlayQueryPoints(net, overlayQueries, 7 + static_cast<unsigned>(n));
    volatile double sink = 0.0;  // keep the solves observable

    const Measurement legacy =
        measureBestOf(static_cast<long>(qpts.size()), [&] {
          double acc = 0.0;
          for (const auto& [a, b] : qpts) acc += legacyOverlayQuery(overlay, a, b);
          sink = acc;
        });

    routing::OverlayQueryWorkspace ws;
    routing::OverlayRoute route;
    const Measurement engine =
        measureBestOf(static_cast<long>(qpts.size()), [&] {
          double acc = 0.0;
          for (const auto& [a, b] : qpts) {
            overlay.query(a, b, ws, route);
            acc += route.distance;
          }
          sink = acc;
        });

    // --- Batched full route() serving across threads. ---
    std::mt19937 rng(99 + static_cast<unsigned>(n));
    std::uniform_int_distribution<int> pick(0, static_cast<int>(net.ldel().numNodes()) - 1);
    std::vector<routing::RoutePair> pairs;
    pairs.reserve(routeQueries);
    for (std::size_t i = 0; i < routeQueries; ++i) pairs.push_back({pick(rng), pick(rng)});

    if (!firstCfg) std::printf(",\n");
    firstCfg = false;
    std::printf("    {\"n\": %zu, \"holes\": %zu, \"sites\": %zu,\n", net.ldel().numNodes(),
                net.holes().holes.size(), overlay.sites().size());
    const double overlaySpeedup = legacy.qps() > 0.0 ? engine.qps() / legacy.qps() : 0.0;
    std::printf("     \"overlay\": {\"queries\": %ld,\n", legacy.queries);
    std::printf("       \"legacyRebuild\": {\"seconds\": %.4f, \"queriesPerSec\": %.0f},\n",
                legacy.secs, legacy.qps());
    std::printf("       \"engine\": {\"seconds\": %.4f, \"queriesPerSec\": %.0f, "
                "\"speedup\": %.2f}},\n",
                engine.secs, engine.qps(), overlaySpeedup);
    HYBRID_OBS_STMT(if (obs::enabled()) {
      const std::string key = ".n" + std::to_string(n);
      auto& reg = obs::Registry::global();
      reg.gauge("bench.e18.overlay.engine.queries_per_s" + key).set(engine.qps());
      // Machine-independent ratio: this is what the CI bench gate checks.
      reg.gauge("bench.e18.overlay.speedup" + key).set(overlaySpeedup);
    });
    std::printf("     \"routeBatch\": [\n");
    Measurement serial;
    bool firstT = true;
    for (const int t : threadCounts) {
      const Measurement m = measureBestOf(static_cast<long>(pairs.size()), [&] {
        const auto results = router->routeBatch(pairs, t);
        sink = static_cast<double>(results.size());
      });
      if (t == 1) serial = m;
      if (!firstT) std::printf(",\n");
      firstT = false;
      const double batchSpeedup = serial.qps() > 0.0 ? m.qps() / serial.qps() : 0.0;
      std::printf("       {\"threads\": %d, \"seconds\": %.4f, \"queriesPerSec\": %.0f, "
                  "\"speedupVsSerial\": %.2f}",
                  t, m.secs, m.qps(), batchSpeedup);
      HYBRID_OBS_STMT(if (obs::enabled()) {
        const std::string key = ".n" + std::to_string(n) + ".t" + std::to_string(t);
        auto& reg = obs::Registry::global();
        reg.gauge("bench.e18.route_batch.queries_per_s" + key).set(m.qps());
        if (t > 1) {
          reg.gauge("bench.e18.route_batch.speedup_vs_serial" + key).set(batchSpeedup);
        }
      });
    }
    std::printf("\n     ]}");
  }
  std::printf("\n  ]\n}\n");

  if (!metricsPath.empty()) {
    if (!obs::saveSnapshot(metricsPath, obs::capture())) {
      std::fprintf(stderr, "e18_route_throughput: cannot write metrics snapshot %s\n",
                   metricsPath.c_str());
      return 2;
    }
  }
  return 0;
}
