// E19 — site-pair oracle: hub labels vs the dense h x h table, as JSON.
//
// The dense backend stores all-pairs distances + predecessors (12 bytes per
// site pair) and answers a query with one array read; it is what capped the
// overlay at kMaxTableSites. This bench rebuilds that backend faithfully
// (one Dijkstra per site, parallel, flat dist/pred slabs) and races it
// against HubLabelOracle on the same CSR site graph: build time, resident
// bytes and point-to-point distance throughput. Sizes past the dense
// memory wall (h = 32768 would need ~12 GiB of table) run labels-only —
// that asymmetry is the point of the experiment.
//
// The graph models what the overlay actually hands the oracle: sites on a
// hull ring (consecutive visibility edges) plus long-range visibility
// chords across the hole, laid out hierarchically (node i gains a chord of
// span 2^k when 2^k divides i). Chord spans give the degree spread the
// centrality ordering feeds on, the same way far-seeing hull corners do.
//
// Usage: e19_label_oracle [--smoke | --gate] [--metrics FILE]
//   --smoke         tiny sweep (CI correctness check): h = 512.
//   --gate          mid-size sweep for the CI perf gate: h = 2048, the
//                   ratios land in bench/baselines/e19.json.
//   --metrics FILE  record per-config gauges and write an obs snapshot
//                   (consumed by the CI bench gate via
//                   tools/metrics_report --check).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dijkstra_workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "routing/hub_labels.hpp"
#include "util/parallel.hpp"

using namespace hybrid;

namespace {

double seconds(const std::chrono::steady_clock::time_point a,
               const std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Measurement {
  long queries = 0;
  double secs = 0.0;
  double qps() const { return secs > 0.0 ? static_cast<double>(queries) / secs : 0.0; }
};

constexpr int kRepeats = 3;  ///< Best-of-3: robust against machine noise.

template <typename Fn>
Measurement measureBestOf(long queries, Fn&& run) {
  run();  // warm-up (allocator, caches, workspaces)
  Measurement best;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    if (best.secs == 0.0 || s < best.secs) best = {queries, s};
  }
  return best;
}

/// Hull-ring site graph: n sites on a circle (unit spacing, jittered),
/// consecutive ring edges, plus a visibility chord of span 2^k whenever
/// 2^k divides the site index (k >= 2). Euclidean chord weights.
graph::CsrAdjacency makeSiteGraph(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> jitter(-0.2, 0.2);
  const double radius = static_cast<double>(n) / (2.0 * M_PI);
  std::vector<geom::Vec2> pos;
  pos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * (static_cast<double>(i) + jitter(rng)) /
                     static_cast<double>(n);
    pos.push_back({radius * std::cos(a), radius * std::sin(a)});
  }
  std::vector<std::vector<int>> adj(n);
  const auto link = [&](std::size_t a, std::size_t b) {
    adj[a].push_back(static_cast<int>(b));
    adj[b].push_back(static_cast<int>(a));
  };
  for (std::size_t i = 0; i < n; ++i) link(i, (i + 1) % n);
  for (std::size_t span = 4; span * 2 <= n; span *= 2) {
    for (std::size_t i = 0; i < n; i += span) link(i, (i + span) % n);
  }
  return graph::buildCsr(adj, pos);
}

/// Faithful replica of the dense OverlayGraph backend: one Dijkstra per
/// site into flat h x h distance + predecessor slabs.
struct DenseTable {
  std::vector<double> dist;
  std::vector<std::int32_t> pred;
  std::size_t bytes() const {
    return dist.size() * sizeof(double) + pred.size() * sizeof(std::int32_t);
  }
};

DenseTable buildDense(const graph::CsrAdjacency& csr, unsigned threads) {
  const std::size_t h = csr.numNodes();
  DenseTable t;
  t.dist.resize(h * h);
  t.pred.resize(h * h);
  util::parallelTasks(h, threads, 1,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        graph::DijkstraWorkspace ws;
                        for (std::size_t s = begin; s < end; ++s) {
                          ws.run(csr, static_cast<int>(s));
                          double* drow = t.dist.data() + s * h;
                          std::int32_t* prow = t.pred.data() + s * h;
                          for (std::size_t v = 0; v < h; ++v) {
                            drow[v] = ws.dist(static_cast<int>(v));
                            prow[v] = ws.pred(static_cast<int>(v));
                          }
                        }
                      });
  return t;
}

std::vector<std::pair<int, int>> queryPairs(std::size_t h, std::size_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(h) - 1);
  std::vector<std::pair<int, int>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back({pick(rng), pick(rng)});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::string metricsPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metricsPath = argv[++i];
    }
  }
  if (gate) smoke = false;
  if (!metricsPath.empty()) {
    if (!obs::kCompiledIn) {
      std::fprintf(stderr, "e19_label_oracle: --metrics requested but observability was "
                           "compiled out (HYBRID_OBS_DISABLED)\n");
      return 2;
    }
    obs::setEnabled(true);
  }

  const std::vector<std::size_t> sizes =
      smoke  ? std::vector<std::size_t>{512}
      : gate ? std::vector<std::size_t>{2048}
             : std::vector<std::size_t>{2048, 8192, 32768};
  // Past this the dense table alone outgrows the bench box (h^2 * 12 B);
  // labels keep going — exactly the ceiling the oracle removes.
  const std::size_t denseLimit = 8192;
  const std::size_t queryCount = smoke ? 50000 : gate ? 1000000 : 2000000;
  const unsigned threads = util::resolveThreads(0);

  std::printf("{\n");
  std::printf("  \"experiment\": \"e19_label_oracle\",\n");
  std::printf("  \"workload\": \"site-pair oracle on a hull-ring site graph with "
              "hierarchical visibility chords: dense h x h table vs pruned hub labels\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"threads\": %u,\n", threads);
  std::printf("  \"configs\": [\n");
  bool firstCfg = true;
  for (const std::size_t h : sizes) {
    const auto csr = makeSiteGraph(h, 42 + static_cast<unsigned>(h));
    const auto pairs = queryPairs(h, queryCount, 7 + static_cast<unsigned>(h));
    volatile double sink = 0.0;  // keep the solves observable

    // Builds are timed once: they are long, dominated by real work, and
    // the CI gate already takes best-of-3 across whole-binary runs.
    const auto lb0 = std::chrono::steady_clock::now();
    routing::HubLabelOracle labels;
    labels.build(csr, threads);
    const auto lb1 = std::chrono::steady_clock::now();
    const double labelBuildSecs = seconds(lb0, lb1);

    const Measurement labelQ = measureBestOf(static_cast<long>(pairs.size()), [&] {
      double acc = 0.0;
      for (const auto& [s, t] : pairs) acc += labels.distance(s, t);
      sink = acc;
    });
    // Dependent stream: each result feeds the next query's index (carry is
    // always zero, but the compiler cannot prove it), so the run measures
    // per-query latency the way the serving path consumes distances —
    // compare, branch, only then issue the next lookup — instead of
    // letting out-of-order execution overlap unrelated queries.
    const Measurement labelDep = measureBestOf(static_cast<long>(pairs.size()), [&] {
      double acc = 0.0;
      unsigned carry = 0;
      for (const auto& [s, t] : pairs) {
        const double d =
            labels.distance(static_cast<int>((static_cast<unsigned>(s) + carry) %
                                             static_cast<unsigned>(h)),
                            t);
        acc += d;
        carry = static_cast<unsigned>(d * 0.0);
      }
      sink = acc;
    });

    const bool withDense = h <= denseLimit;
    double denseBuildSecs = 0.0;
    Measurement denseQ;
    Measurement denseDep;
    std::size_t denseBytes = 0;
    if (withDense) {
      const auto db0 = std::chrono::steady_clock::now();
      const DenseTable dense = buildDense(csr, threads);
      const auto db1 = std::chrono::steady_clock::now();
      denseBuildSecs = seconds(db0, db1);
      denseBytes = dense.bytes();

      // Cross-check before racing: the oracle must agree with the table.
      for (std::size_t i = 0; i < 1000 && i < pairs.size(); ++i) {
        const auto [s, t] = pairs[i];
        const double want = dense.dist[static_cast<std::size_t>(s) * h +
                                       static_cast<std::size_t>(t)];
        const double got = labels.distance(s, t);
        if (std::fabs(got - want) > 1e-9 * std::max(1.0, want)) {
          std::fprintf(stderr, "e19_label_oracle: label/dense mismatch at h=%zu %d->%d: "
                               "%.17g vs %.17g\n",
                       h, s, t, got, want);
          return 3;
        }
      }

      denseQ = measureBestOf(static_cast<long>(pairs.size()), [&] {
        double acc = 0.0;
        for (const auto& [s, t] : pairs) {
          acc += dense.dist[static_cast<std::size_t>(s) * h + static_cast<std::size_t>(t)];
        }
        sink = acc;
      });
      denseDep = measureBestOf(static_cast<long>(pairs.size()), [&] {
        double acc = 0.0;
        unsigned carry = 0;
        for (const auto& [s, t] : pairs) {
          const std::size_t row = (static_cast<unsigned>(s) + carry) %
                                  static_cast<unsigned>(h);
          const double d = dense.dist[row * h + static_cast<std::size_t>(t)];
          acc += d;
          carry = static_cast<unsigned>(d * 0.0);
        }
        sink = acc;
      });
    }

    const double labelBytesPerSite =
        static_cast<double>(labels.labelBytes()) / static_cast<double>(h);
    const double denseBytesPerSite = static_cast<double>(h) * 12.0;  // 8B dist + 4B pred
    const double avgLabel =
        static_cast<double>(labels.numEntries()) / static_cast<double>(h);

    if (!firstCfg) std::printf(",\n");
    firstCfg = false;
    std::printf("    {\"h\": %zu, \"edges\": %zu,\n", h, csr.numDirectedEdges() / 2);
    std::printf("     \"labels\": {\"buildSeconds\": %.3f, \"bytes\": %zu, "
                "\"bytesPerSite\": %.0f, \"avgLabel\": %.1f, \"maxLabel\": %zu, "
                "\"queriesPerSec\": %.0f, \"queriesPerSecDependent\": %.0f},\n",
                labelBuildSecs, labels.labelBytes(), labelBytesPerSite, avgLabel,
                labels.maxLabelSize(), labelQ.qps(), labelDep.qps());
    if (withDense) {
      const double sizeSpeedup = denseBytesPerSite / labelBytesPerSite;
      // The gated query ratio is the dependent-stream one: point queries in
      // the serving path are consumed before the next is issued, so latency
      // is what matters; the independent-stream ratio (streamedRatio) only
      // shows how much memory-level parallelism hides the dense table's
      // DRAM misses, and is reported for context.
      const double querySpeedup = denseDep.qps() > 0.0 ? labelDep.qps() / denseDep.qps() : 0.0;
      const double streamedRatio = denseQ.qps() > 0.0 ? labelQ.qps() / denseQ.qps() : 0.0;
      const double buildSpeedup = labelBuildSecs > 0.0 ? denseBuildSecs / labelBuildSecs : 0.0;
      std::printf("     \"dense\": {\"buildSeconds\": %.3f, \"bytes\": %zu, "
                  "\"bytesPerSite\": %.0f, \"queriesPerSec\": %.0f, "
                  "\"queriesPerSecDependent\": %.0f},\n",
                  denseBuildSecs, denseBytes, denseBytesPerSite, denseQ.qps(), denseDep.qps());
      std::printf("     \"ratios\": {\"sizeSpeedup\": %.1f, \"querySpeedup\": %.3f, "
                  "\"streamedRatio\": %.3f, \"buildSpeedup\": %.2f}}",
                  sizeSpeedup, querySpeedup, streamedRatio, buildSpeedup);
      HYBRID_OBS_STMT(if (obs::enabled()) {
        const std::string key = ".h" + std::to_string(h);
        auto& reg = obs::Registry::global();
        reg.gauge("bench.e19.labels.queries_per_s" + key).set(labelQ.qps());
        reg.gauge("bench.e19.labels.bytes_per_site" + key).set(labelBytesPerSite);
        // Informational ("ratio", not "speedup": kept out of the CI gate's
        // --filter speedup selection — it compounds two noisy streams).
        reg.gauge("bench.e19.labels.query_ratio_streamed" + key).set(streamedRatio);
        // Machine-independent ratios: what the CI bench gate checks.
        reg.gauge("bench.e19.labels.size_speedup" + key).set(sizeSpeedup);
        reg.gauge("bench.e19.labels.query_speedup" + key).set(querySpeedup);
        reg.gauge("bench.e19.labels.build_speedup" + key).set(buildSpeedup);
      });
    } else {
      std::printf("     \"dense\": null,\n");
      std::printf("     \"ratios\": {\"sizeSpeedup\": %.1f}}",
                  denseBytesPerSite / labelBytesPerSite);
      HYBRID_OBS_STMT(if (obs::enabled()) {
        const std::string key = ".h" + std::to_string(h);
        auto& reg = obs::Registry::global();
        reg.gauge("bench.e19.labels.queries_per_s" + key).set(labelQ.qps());
        reg.gauge("bench.e19.labels.bytes_per_site" + key).set(labelBytesPerSite);
      });
    }
  }
  std::printf("\n  ]\n}\n");

  if (!metricsPath.empty()) {
    if (!obs::saveSnapshot(metricsPath, obs::capture())) {
      std::fprintf(stderr, "e19_label_oracle: cannot write metrics snapshot %s\n",
                   metricsPath.c_str());
      return 2;
    }
  }
  return 0;
}
