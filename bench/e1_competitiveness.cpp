// E1 — c-competitive routing with hole abstractions (Theorem 1.2, §3, §4).
//
// Random deployments with disjoint convex radio holes; 200 random s-t pairs
// per instance. Reports delivery rate and path stretch (path length divided
// by the shortest UDG path, the paper's competitive ratio) for the local
// baselines and all four abstraction/overlay configurations.
//
// Expected shape: greedy loses packets at holes; compass loops; the
// GOAFR-style face-greedy baseline delivers with noticeably larger stretch;
// every hybrid configuration stays a small constant, flat in n, far below
// the worst-case ceilings (17.7 visibility / 35.37 overlay Delaunay).

#include <memory>

#include "bench_util.hpp"
#include "routing/baselines.hpp"
#include "routing/goafr.hpp"

using namespace hybrid;

int main() {
  std::printf("E1: competitive routing with hole abstractions\n");
  std::printf("%6s %8s %-22s %6s %8s %8s %8s %8s %6s\n", "n", "holes", "router", "deliv",
              "mean", "p50", "p95", "max", "fallbk");
  bench::printRule();

  for (const std::size_t n : {250u, 500u, 1000u, 2000u, 4000u}) {
    auto sc = bench::convexHolesScenario(n, 42 + static_cast<unsigned>(n));
    core::HybridNetwork net(sc.points);

    routing::GreedyRouter greedy(net.ldel());
    routing::CompassRouter compass(net.ldel());
    routing::FaceGreedyRouter face(net.ldel(), net.subdivision(), net.holes());
    routing::GoafrRouter goafr(net.ldel());
    auto hullDel = net.makeRouter(
        {routing::SiteMode::HullNodes, routing::EdgeMode::Delaunay, true});
    auto hullVis = net.makeRouter(
        {routing::SiteMode::HullNodes, routing::EdgeMode::Visibility, true});
    auto bndDel = net.makeRouter(
        {routing::SiteMode::AllHoleNodes, routing::EdgeMode::Delaunay, true});
    auto bndVis = net.makeRouter(
        {routing::SiteMode::AllHoleNodes, routing::EdgeMode::Visibility, true});
    auto lchDel = net.makeRouter(
        {routing::SiteMode::LocallyConvexHull, routing::EdgeMode::Delaunay, true});
    auto dpDel = net.makeRouter(
        {routing::SiteMode::SimplifiedBoundary, routing::EdgeMode::Delaunay, true});
    auto prunedDel = net.makeRouter({routing::SiteMode::HullNodes,
                                     routing::EdgeMode::Delaunay, true, false,
                                     /*prunePaths=*/true});

    struct Entry {
      routing::Router* router;
      const char* label;
    };
    const Entry entries[] = {
        {&greedy, "greedy (baseline)"},
        {&compass, "compass (baseline)"},
        {&face, "face-greedy"},
        {&goafr, "goafr+"},
        {bndVis.get(), "S3 boundary+visgraph"},
        {bndDel.get(), "S3 boundary+delaunay"},
        {hullVis.get(), "S4 hulls+visgraph"},
        {hullDel.get(), "S4 hulls+delaunay"},
        {lchDel.get(), "S4.1 lch+delaunay"},
        {dpDel.get(), "ext. dp+delaunay"},
        {prunedDel.get(), "ext. hulls+del+prune"},
    };
    for (const auto& e : entries) {
      const auto stats =
          bench::evaluateRouter(net, *e.router, 200, 7 + static_cast<unsigned>(n));
      std::printf("%6zu %8zu %-22s %5.1f%% %8.3f %8.3f %8.3f %8.3f %6d\n",
                  net.ldel().numNodes(), net.holes().holes.size(), e.label,
                  100.0 * stats.deliveryRate(), stats.mean(), stats.percentile(0.5),
                  stats.percentile(0.95), stats.maxStretch(), stats.fallbacks);
    }
    std::printf("%6s overlay edges: visibility=%zu delaunay=%zu (sites hull=%zu bnd=%zu)\n",
                "", hullVis->overlay().numPrecomputedEdges(),
                hullDel->overlay().numPrecomputedEdges(),
                hullDel->overlay().sites().size(), bndDel->overlay().sites().size());
    bench::printRule();
  }
  std::printf("paper ceilings: 5.9 (visible pairs), 17.7 (visibility graph), "
              "35.37 (overlay Delaunay)\n");
  return 0;
}
