// E20 — stateless per-node label forwarding vs the centralized overlay
// engine, as JSON.
//
// The centralized engine answers a query from shared serving state (the
// overlay site table plus per-thread workspaces); the stateless router
// walks hop by hop using only the current node's immutable label view, the
// architecture where any node of a serving tier can answer any hop from
// its own O(polylog) slab. This bench builds both over the same deployment
// and sweeps routeBatch() thread counts on identical query pair sets:
// throughput scaling (speedup vs the 1-thread run of the same router),
// per-node label bytes, and the stretch the centralized (competitive,
// hull-detouring) routes pay over the stateless shortest-path walks.
//
// Before timing, the stateless walks are cross-checked against the central
// hub-label oracle: every walked path must realize the exact oracle
// distance, and the batch must be bit-identical to the serial loop at
// every swept thread count (exit 3 on any mismatch).
//
// Usage: e20_stateless_forwarding [--smoke | --gate] [--metrics FILE]
//   --smoke         tiny sweep (CI correctness check): n = 250, threads {1, 2}.
//   --gate          mid-size sweep for the CI perf gate: n = 500, threads
//                   {1, 2, 8}; the scaling ratios land in
//                   bench/baselines/e20.json.
//   --metrics FILE  record per-config gauges and write an obs snapshot
//                   (consumed by the CI bench gate via
//                   tools/metrics_report --check).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "graph/csr.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "routing/hub_labels.hpp"
#include "routing/stateless_router.hpp"

using namespace hybrid;

namespace {

double seconds(const std::chrono::steady_clock::time_point a,
               const std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Measurement {
  long queries = 0;
  double secs = 0.0;
  double qps() const { return secs > 0.0 ? static_cast<double>(queries) / secs : 0.0; }
};

constexpr int kRepeats = 3;  ///< Best-of-3: robust against machine noise.

template <typename Fn>
Measurement measureBestOf(long queries, Fn&& run) {
  run();  // warm-up (allocator, caches, workspaces)
  Measurement best;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    if (best.secs == 0.0 || s < best.secs) best = {queries, s};
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::string metricsPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metricsPath = argv[++i];
    }
  }
  if (gate) smoke = false;
  if (!metricsPath.empty()) {
    if (!obs::kCompiledIn) {
      std::fprintf(stderr, "e20_stateless_forwarding: --metrics requested but observability "
                           "was compiled out (HYBRID_OBS_DISABLED)\n");
      return 2;
    }
    obs::setEnabled(true);
  }

  const std::vector<std::size_t> sizes =
      smoke  ? std::vector<std::size_t>{250}
      : gate ? std::vector<std::size_t>{500}
             : std::vector<std::size_t>{500, 1000, 2000};
  // The gate sweeps {1, 2, 8} so the 8t/1t scaling ratio
  // (speedup_vs_1thread.t8) is among the gated gauges; smoke stays tiny.
  const std::vector<int> threadCounts = smoke  ? std::vector<int>{1, 2}
                                        : gate ? std::vector<int>{1, 2, 8}
                                               : std::vector<int>{1, 2, 4, 8};
  const std::size_t routeQueries = smoke ? 150 : gate ? 400 : 800;

  std::printf("{\n");
  std::printf("  \"experiment\": \"e20_stateless_forwarding\",\n");
  std::printf("  \"workload\": \"random s-t pairs on convex-holes deployments: stateless "
              "per-node label forwarding vs the centralized hybrid serving engine, "
              "routeBatch across thread counts\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"configs\": [\n");
  bool firstCfg = true;
  for (const std::size_t n : sizes) {
    auto sc = bench::convexHolesScenario(n, 42 + static_cast<unsigned>(n));
    core::HybridNetwork net(sc.points);
    const auto centralized = net.makeRouter(
        {routing::SiteMode::HullNodes, routing::EdgeMode::Visibility, true});
    const auto& g = net.ldel();

    const auto sb0 = std::chrono::steady_clock::now();
    const routing::StatelessRouter stateless(g, 1);
    const auto sb1 = std::chrono::steady_clock::now();
    const double labelBuildSecs = seconds(sb0, sb1);

    std::mt19937 rng(99 + static_cast<unsigned>(n));
    std::uniform_int_distribution<int> pick(0, static_cast<int>(g.numNodes()) - 1);
    std::vector<routing::RoutePair> pairs;
    pairs.reserve(routeQueries);
    for (std::size_t i = 0; i < routeQueries; ++i) pairs.push_back({pick(rng), pick(rng)});

    // --- Parity: every stateless walk realizes the exact oracle distance,
    // and the batch is bit-identical to the serial loop at every swept
    // thread count. This is the acceptance check, not the timed region.
    routing::HubLabelOracle oracle;
    oracle.build(graph::buildCsr(g), 2);
    std::vector<routing::RouteResult> serialResults;
    serialResults.reserve(pairs.size());
    for (const auto& p : pairs) serialResults.push_back(stateless.route(p.source, p.target));
    double stretchSum = 0.0;
    long stretchCount = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto& r = serialResults[i];
      const double want = oracle.distance(pairs[i].source, pairs[i].target);
      if (!r.delivered || std::isinf(want)) {
        if (r.delivered != !std::isinf(want)) {
          std::fprintf(stderr, "e20_stateless_forwarding: delivery mismatch at n=%zu "
                               "%d->%d\n",
                       n, pairs[i].source, pairs[i].target);
          return 3;
        }
        continue;
      }
      const double walked = g.pathLength(r.path);
      if (std::fabs(walked - want) > 1e-9 * std::max(1.0, want)) {
        std::fprintf(stderr, "e20_stateless_forwarding: walk/oracle mismatch at n=%zu "
                             "%d->%d: %.17g vs %.17g\n",
                     n, pairs[i].source, pairs[i].target, walked, want);
        return 3;
      }
      // Centralized competitive routes may detour around hulls; their
      // length over the stateless shortest walk is the stretch paid.
      const auto c = centralized->route(pairs[i].source, pairs[i].target);
      if (c.delivered && walked > 0.0) {
        stretchSum += g.pathLength(c.path) / walked;
        ++stretchCount;
      }
    }
    for (const int t : threadCounts) {
      const auto batch = stateless.routeBatch(pairs, t);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].path != serialResults[i].path ||
            batch[i].delivered != serialResults[i].delivered) {
          std::fprintf(stderr, "e20_stateless_forwarding: routeBatch diverges from the "
                               "serial loop at n=%zu t=%d pair=%zu\n",
                       n, t, i);
          return 3;
        }
      }
    }
    const double meanStretch = stretchCount > 0 ? stretchSum / stretchCount : 0.0;

    if (!firstCfg) std::printf(",\n");
    firstCfg = false;
    const auto& labels = stateless.labels();
    std::printf("    {\"n\": %zu, \"holes\": %zu,\n", g.numNodes(), net.holes().holes.size());
    std::printf("     \"labels\": {\"buildSeconds\": %.3f, \"bytes\": %zu, "
                "\"bytesPerNode\": %.0f, \"maxLabel\": %zu},\n",
                labelBuildSecs, labels.labelBytes(), labels.bytesPerNode(),
                labels.maxLabelSize());
    std::printf("     \"centralizedStretchOverStateless\": %.3f,\n", meanStretch);
    HYBRID_OBS_STMT(if (obs::enabled()) {
      const std::string key = ".n" + std::to_string(n);
      auto& reg = obs::Registry::global();
      reg.gauge("bench.e20.fwd.bytes_per_node" + key).set(labels.bytesPerNode());
      reg.gauge("bench.e20.fwd.centralized_stretch" + key).set(meanStretch);
    });

    // --- Timed sweep: both routers serve the same batch at each thread
    // count; each side's scaling ratio is against its own 1-thread run.
    volatile double sink = 0.0;
    std::printf("     \"routeBatch\": [\n");
    Measurement fwdSerial;
    Measurement centralSerial;
    bool firstT = true;
    for (const int t : threadCounts) {
      const Measurement fwd = measureBestOf(static_cast<long>(pairs.size()), [&] {
        const auto results = stateless.routeBatch(pairs, t);
        sink = static_cast<double>(results.size());
      });
      const Measurement central = measureBestOf(static_cast<long>(pairs.size()), [&] {
        const auto results = centralized->routeBatch(pairs, t);
        sink = static_cast<double>(results.size());
      });
      if (t == 1) {
        fwdSerial = fwd;
        centralSerial = central;
      }
      const double fwdSpeedup = fwdSerial.qps() > 0.0 ? fwd.qps() / fwdSerial.qps() : 0.0;
      const double centralSpeedup =
          centralSerial.qps() > 0.0 ? central.qps() / centralSerial.qps() : 0.0;
      if (!firstT) std::printf(",\n");
      firstT = false;
      std::printf("       {\"threads\": %d,\n", t);
      std::printf("        \"stateless\": {\"seconds\": %.4f, \"queriesPerSec\": %.0f, "
                  "\"speedupVs1Thread\": %.2f},\n",
                  fwd.secs, fwd.qps(), fwdSpeedup);
      std::printf("        \"centralized\": {\"seconds\": %.4f, \"queriesPerSec\": %.0f, "
                  "\"speedupVs1Thread\": %.2f}}",
                  central.secs, central.qps(), centralSpeedup);
      HYBRID_OBS_STMT(if (obs::enabled()) {
        const std::string key = ".n" + std::to_string(n) + ".t" + std::to_string(t);
        auto& reg = obs::Registry::global();
        reg.gauge("bench.e20.fwd.queries_per_s" + key).set(fwd.qps());
        reg.gauge("bench.e20.centralized.queries_per_s" + key).set(central.qps());
        if (t > 1) {
          // Machine-independent scaling ratios: what the CI bench gate
          // checks (--filter speedup).
          reg.gauge("bench.e20.fwd.speedup_vs_1thread" + key).set(fwdSpeedup);
          reg.gauge("bench.e20.centralized.speedup_vs_1thread" + key).set(centralSpeedup);
        }
      });
    }
    std::printf("\n     ]}");
  }
  std::printf("\n  ]\n}\n");

  if (!metricsPath.empty()) {
    if (!obs::saveSnapshot(metricsPath, obs::capture())) {
      std::fprintf(stderr, "e20_stateless_forwarding: cannot write metrics snapshot %s\n",
                   metricsPath.c_str());
      return 2;
    }
  }
  return 0;
}
