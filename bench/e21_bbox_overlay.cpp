// E21 — bounding-box hole abstraction vs convex hulls, as JSON.
//
// Two corpora per size: "disjoint" (the convex-holes city-block layout the
// paper assumes, hulls pairwise disjoint) and "interlocked" (a U-shaped
// building swallowing a block — the hull-intersecting family where the §4
// protocol loses its guarantees and the hull router leans on A* splices).
// On each deployment the convex-hull router and the bbox-mode router
// (arXiv:1810.05453 abstraction, PR 9) serve the same query set: overlay
// sizes, fallback counts, stretch, and routeBatch throughput across thread
// counts.
//
// Before timing, acceptance is checked (exit 3 on violation): on the
// interlocked corpus the bbox router must deliver every query with ZERO
// fallbacks and stay within the scaled competitive bound; on the disjoint
// corpus Auto must resolve to hulls and route identically to the explicit
// hulls mode.
//
// Usage: e21_bbox_overlay [--smoke | --gate] [--metrics FILE]
//   --smoke         tiny sweep (CI correctness check): n = 250, threads {1, 2}.
//   --gate          mid-size sweep for the CI perf gate: n = 500, threads
//                   {1, 2, 8}; scaling ratios land in bench/baselines/e21.json.
//   --metrics FILE  record per-config gauges and write an obs snapshot
//                   (consumed by the CI bench gate via tools/metrics_report).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "abstraction/bbox_overlay.hpp"
#include "abstraction/hull_groups.hpp"
#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "routing/hybrid_router.hpp"
#include "scenario/shapes.hpp"

using namespace hybrid;

namespace {

double seconds(const std::chrono::steady_clock::time_point a,
               const std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct Measurement {
  long queries = 0;
  double secs = 0.0;
  double qps() const { return secs > 0.0 ? static_cast<double>(queries) / secs : 0.0; }
};

constexpr int kRepeats = 3;  ///< Best-of-3: robust against machine noise.

template <typename Fn>
Measurement measureBestOf(long queries, Fn&& run) {
  run();  // warm-up (allocator, caches, workspaces)
  Measurement best;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    if (best.secs == 0.0 || s < best.secs) best = {queries, s};
  }
  return best;
}

/// The e11 "U swallowing a block" family scaled to ~n nodes: the block's
/// hull sits inside the U's hull, so the hulls intersect on every seed.
scenario::Scenario interlockedScenario(std::size_t n, unsigned seed) {
  scenario::ScenarioParams p = scenario::paramsForNodeCount(n + n / 3, seed);
  const double side = p.width;
  p.obstacles.push_back(scenario::uShapeObstacle({0.46 * side, 0.46 * side}, 0.38 * side,
                                                 0.35 * side, 0.062 * side));
  p.obstacles.push_back(scenario::rectangleObstacle({0.40 * side, 0.42 * side},
                                                    {0.52 * side, 0.52 * side}));
  p.obstacles.push_back(scenario::regularPolygonObstacle(
      {0.80 * side, 0.22 * side}, 0.08 * side, 6, 0.4));
  return scenario::makeScenario(p);
}

struct RouteEval {
  int fallbacks = 0;
  int undelivered = 0;
  double stretchSum = 0.0;
  double stretchMax = 0.0;
  int stretchCount = 0;
  double mean() const { return stretchCount > 0 ? stretchSum / stretchCount : 0.0; }
};

RouteEval evaluate(core::HybridNetwork& net, const routing::Router& router,
                   const std::vector<routing::RoutePair>& pairs) {
  RouteEval e;
  for (const auto& [s, t] : pairs) {
    const auto r = router.route(s, t);
    if (!r.delivered) {
      ++e.undelivered;
      continue;
    }
    e.fallbacks += r.fallbacks;
    if (r.fallbacks == 0) {
      const double st = net.stretch(r, s, t);
      e.stretchSum += st;
      e.stretchMax = std::max(e.stretchMax, st);
      ++e.stretchCount;
    }
  }
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::string metricsPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metricsPath = argv[++i];
    }
  }
  if (gate) smoke = false;
  if (!metricsPath.empty()) {
    if (!obs::kCompiledIn) {
      std::fprintf(stderr, "e21_bbox_overlay: --metrics requested but observability was "
                           "compiled out (HYBRID_OBS_DISABLED)\n");
      return 2;
    }
    obs::setEnabled(true);
  }

  const std::vector<std::size_t> sizes =
      smoke  ? std::vector<std::size_t>{250}
      : gate ? std::vector<std::size_t>{500}
             : std::vector<std::size_t>{500, 1000};
  const std::vector<int> threadCounts = smoke  ? std::vector<int>{1, 2}
                                        : gate ? std::vector<int>{1, 2, 8}
                                               : std::vector<int>{1, 2, 4, 8};
  const std::size_t routeQueries = smoke ? 150 : gate ? 400 : 600;

  std::printf("{\n");
  std::printf("  \"experiment\": \"e21_bbox_overlay\",\n");
  std::printf("  \"workload\": \"random s-t pairs on disjoint-hull and interlocked-hull "
              "deployments: convex-hull vs bounding-box abstraction, routeBatch across "
              "thread counts\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"bounds\": {\"bboxVisibility\": %.2f, \"bboxDelaunay\": %.2f},\n",
              abstraction::kBBoxVisibilityBound, abstraction::kBBoxDelaunayBound);
  std::printf("  \"configs\": [\n");
  bool firstCfg = true;
  for (const std::size_t n : sizes) {
    for (const bool interlocked : {false, true}) {
      const char* corpus = interlocked ? "interlocked" : "disjoint";
      auto sc = interlocked
                    ? interlockedScenario(n, 171 + static_cast<unsigned>(n))
                    : bench::convexHolesScenario(n, 42 + static_cast<unsigned>(n));
      core::HybridNetwork net(sc.points);
      const auto& g = net.ldel();

      routing::HybridOptions hullOpts{routing::SiteMode::HullNodes,
                                      routing::EdgeMode::Visibility, true};
      hullOpts.abstraction = routing::AbstractionMode::Hulls;
      routing::HybridOptions bboxOpts = hullOpts;
      bboxOpts.abstraction = routing::AbstractionMode::BBox;
      routing::HybridOptions autoOpts = hullOpts;
      autoOpts.abstraction = routing::AbstractionMode::Auto;

      const auto hb0 = std::chrono::steady_clock::now();
      const auto hulls = net.makeRouter(hullOpts);
      const auto hb1 = std::chrono::steady_clock::now();
      const auto bbox = net.makeRouter(bboxOpts);
      const auto hb2 = std::chrono::steady_clock::now();
      const auto autoRouter = net.makeRouter(autoOpts);

      const auto groups = abstraction::buildBBoxOverlay(g, net.holes(), net.abstractions());

      std::mt19937 rng(99 + static_cast<unsigned>(n) + (interlocked ? 1 : 0));
      std::uniform_int_distribution<int> pick(0, static_cast<int>(g.numNodes()) - 1);
      std::vector<routing::RoutePair> pairs;
      pairs.reserve(routeQueries);
      while (pairs.size() < routeQueries) {
        const int s = pick(rng);
        const int t = pick(rng);
        if (s != t) pairs.push_back({s, t});
      }

      // --- Acceptance (not the timed region).
      const RouteEval he = evaluate(net, *hulls, pairs);
      const RouteEval be = evaluate(net, *bbox, pairs);
      if (be.undelivered > 0) {
        std::fprintf(stderr, "e21_bbox_overlay: bbox router failed to deliver %d/%zu on "
                             "%s n=%zu\n",
                     be.undelivered, pairs.size(), corpus, n);
        return 3;
      }
      if (interlocked) {
        if (!bbox->usesBBox() || !autoRouter->usesBBox()) {
          std::fprintf(stderr, "e21_bbox_overlay: interlocked corpus did not engage the "
                               "bbox abstraction (n=%zu)\n", n);
          return 3;
        }
        if (be.fallbacks != 0) {
          std::fprintf(stderr, "e21_bbox_overlay: bbox mode needed %d A* fallbacks on the "
                               "interlocked corpus (n=%zu); expected zero\n",
                       be.fallbacks, n);
          return 3;
        }
        if (be.stretchMax > abstraction::kBBoxVisibilityBound) {
          std::fprintf(stderr, "e21_bbox_overlay: bbox stretch %.3f exceeds the scaled "
                               "bound %.3f (n=%zu)\n",
                       be.stretchMax, abstraction::kBBoxVisibilityBound, n);
          return 3;
        }
      } else {
        // Even the city-block layout usually has a pair of *touching*
        // incidental hulls somewhere, so drive the Auto acceptance from
        // ground truth: Auto must agree with hull_groups, and whenever it
        // resolves to hulls it must route identically to the explicit mode.
        const auto hullGroups =
            abstraction::mergeIntersectingHulls(g, net.abstractions());
        const bool expectBBox =
            std::any_of(hullGroups.begin(), hullGroups.end(),
                        [](const auto& hg) { return hg.members.size() > 1; });
        if (autoRouter->usesBBox() != expectBBox) {
          std::fprintf(stderr, "e21_bbox_overlay: Auto resolution disagrees with "
                               "hull_groups on the disjoint corpus (n=%zu)\n", n);
          return 3;
        }
        if (!expectBBox) {
          for (const auto& [s, t] : pairs) {
            const auto rh = hulls->route(s, t);
            const auto ra = autoRouter->route(s, t);
            if (rh.path != ra.path || rh.delivered != ra.delivered) {
              std::fprintf(stderr, "e21_bbox_overlay: Auto diverges from hulls on the "
                                   "disjoint corpus at %d->%d (n=%zu)\n", s, t, n);
              return 3;
            }
          }
        }
      }

      if (!firstCfg) std::printf(",\n");
      firstCfg = false;
      const std::size_t hullSites = hulls->overlay().sites().size();
      const std::size_t bboxSites = bbox->overlay().sites().size();
      const double siteRatio =
          hullSites > 0 ? static_cast<double>(bboxSites) / static_cast<double>(hullSites)
                        : 0.0;
      std::printf("    {\"corpus\": \"%s\", \"n\": %zu, \"holes\": %zu, "
                  "\"hullsDisjoint\": %s,\n",
                  corpus, g.numNodes(), net.holes().holes.size(),
                  net.convexHullsDisjoint() ? "true" : "false");
      std::printf("     \"overlay\": {\"hullSites\": %zu, \"bboxSites\": %zu, "
                  "\"bboxGroups\": %zu, \"siteRatio\": %.3f,\n",
                  hullSites, bboxSites, groups.size(), siteRatio);
      std::printf("                 \"hullBuildSeconds\": %.3f, \"bboxBuildSeconds\": "
                  "%.3f},\n",
                  seconds(hb0, hb1), seconds(hb1, hb2));
      std::printf("     \"hulls\": {\"fallbacks\": %d, \"meanStretch\": %.3f, "
                  "\"maxStretch\": %.3f},\n",
                  he.fallbacks, he.mean(), he.stretchMax);
      std::printf("     \"bbox\": {\"fallbacks\": %d, \"meanStretch\": %.3f, "
                  "\"maxStretch\": %.3f},\n",
                  be.fallbacks, be.mean(), be.stretchMax);
      HYBRID_OBS_STMT(if (obs::enabled()) {
        const std::string key = std::string(".") + corpus + ".n" + std::to_string(n);
        auto& reg = obs::Registry::global();
        reg.gauge("bench.e21.overlay.hull_sites" + key).set(static_cast<double>(hullSites));
        reg.gauge("bench.e21.overlay.bbox_sites" + key).set(static_cast<double>(bboxSites));
        reg.gauge("bench.e21.overlay.site_ratio" + key).set(siteRatio);
        reg.gauge("bench.e21.hulls.fallbacks" + key).set(he.fallbacks);
        reg.gauge("bench.e21.bbox.fallbacks" + key).set(be.fallbacks);
        reg.gauge("bench.e21.hulls.mean_stretch" + key).set(he.mean());
        reg.gauge("bench.e21.bbox.mean_stretch" + key).set(be.mean());
      });

      // --- Timed sweep: both abstractions serve the same batch at each
      // thread count; each side's scaling ratio is against its own
      // 1-thread run.
      volatile double sink = 0.0;
      std::printf("     \"routeBatch\": [\n");
      Measurement hullSerial;
      Measurement bboxSerial;
      bool firstT = true;
      for (const int t : threadCounts) {
        const Measurement hm = measureBestOf(static_cast<long>(pairs.size()), [&] {
          const auto results = hulls->routeBatch(pairs, t);
          sink = static_cast<double>(results.size());
        });
        const Measurement bm = measureBestOf(static_cast<long>(pairs.size()), [&] {
          const auto results = bbox->routeBatch(pairs, t);
          sink = static_cast<double>(results.size());
        });
        if (t == 1) {
          hullSerial = hm;
          bboxSerial = bm;
        }
        const double hullSpeedup = hullSerial.qps() > 0.0 ? hm.qps() / hullSerial.qps() : 0.0;
        const double bboxSpeedup = bboxSerial.qps() > 0.0 ? bm.qps() / bboxSerial.qps() : 0.0;
        if (!firstT) std::printf(",\n");
        firstT = false;
        std::printf("       {\"threads\": %d,\n", t);
        std::printf("        \"hulls\": {\"seconds\": %.4f, \"queriesPerSec\": %.0f, "
                    "\"speedupVs1Thread\": %.2f},\n",
                    hm.secs, hm.qps(), hullSpeedup);
        std::printf("        \"bbox\": {\"seconds\": %.4f, \"queriesPerSec\": %.0f, "
                    "\"speedupVs1Thread\": %.2f}}",
                    bm.secs, bm.qps(), bboxSpeedup);
        HYBRID_OBS_STMT(if (obs::enabled()) {
          const std::string key = std::string(".") + corpus + ".n" + std::to_string(n) +
                                  ".t" + std::to_string(t);
          auto& reg = obs::Registry::global();
          reg.gauge("bench.e21.hulls.queries_per_s" + key).set(hm.qps());
          reg.gauge("bench.e21.bbox.queries_per_s" + key).set(bm.qps());
          if (t > 1) {
            // Machine-independent scaling ratios: what the CI bench gate
            // checks (--filter speedup).
            reg.gauge("bench.e21.hulls.speedup_vs_1thread" + key).set(hullSpeedup);
            reg.gauge("bench.e21.bbox.speedup_vs_1thread" + key).set(bboxSpeedup);
          }
        });
      }
      std::printf("\n     ]}");
    }
  }
  std::printf("\n  ]\n}\n");

  if (!metricsPath.empty()) {
    if (!obs::saveSnapshot(metricsPath, obs::capture())) {
      std::fprintf(stderr, "e21_bbox_overlay: cannot write metrics snapshot %s\n",
                   metricsPath.c_str());
      return 2;
    }
  }
  return 0;
}
