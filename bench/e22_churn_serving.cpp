// E22 — sustained serving under churn: serve::RouteService vs the direct
// router, as JSON.
//
// The service wraps HybridNetwork behind epoch snapshots: readers pin an
// immutable snapshot and route against it while a single updater applies a
// bounded batch of churn updates (node join/leave/move, obstacle edits,
// through the seeded fault-injected update stream) and publishes the next
// epoch with a pointer swap. This bench measures two things:
//
//  - the serving overhead of the snapshot indirection: service.routeBatch
//    vs routeBatch on the pinned network directly, same pairs, same thread
//    count (speedup_vs_direct ~ 1.0 is the machine-independent gauge the
//    CI bench gate checks);
//  - sustained throughput under live churn: reader threads keep routing
//    while the updater drains a churn trace epoch by epoch, reporting
//    q/s, epoch swap latency and the Reused/Incremental/Full rebuild mix
//    across churn rates (informational — wall-clock q/s is machine-bound).
//
// Before timing, every published epoch is cross-checked against a
// from-scratch HybridNetwork on the same topology: serial answers must be
// bit-identical (exit 3 on mismatch) — the same contract the churn_serving
// fuzz oracle enforces.
//
// Usage: e22_churn_serving [--smoke | --gate] [--metrics FILE]
//   --smoke         tiny sweep (CI correctness check): n = 250, threads {1, 2}.
//   --gate          mid-size sweep for the CI perf gate: n = 500, threads
//                   {1, 2, 8}; the overhead ratios land in
//                   bench/baselines/e22.json.
//   --metrics FILE  record per-config gauges and write an obs snapshot
//                   (consumed by the CI bench gate via
//                   tools/metrics_report --check).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "scenario/churn.hpp"
#include "serve/route_service.hpp"

using namespace hybrid;

namespace {

double seconds(const std::chrono::steady_clock::time_point a,
               const std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

constexpr int kRepeats = 3;  ///< Best-of-3: robust against machine noise.

template <typename Fn>
double bestSeconds(Fn&& run) {
  run();  // warm-up (allocator, caches, workspaces)
  double best = 0.0;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    if (best == 0.0 || s < best) best = s;
  }
  return best;
}

serve::ServiceOptions serviceOptions(unsigned seed) {
  serve::ServiceOptions opts;
  opts.updateFaults.seed = seed;
  opts.updateFaults.adHocDrop = 0.1;
  opts.updateFaults.adHocDuplicate = 0.1;
  opts.updateFaults.adHocDelay = 0.1;
  return opts;
}

scenario::ChurnParams churnParams(unsigned seed, int epochs, int updatesPerEpoch) {
  scenario::ChurnParams churn;
  churn.seed = seed;
  churn.epochs = epochs;
  churn.updatesPerEpoch = updatesPerEpoch;
  return churn;
}

std::vector<routing::RoutePair> pairsFor(std::size_t n, std::size_t want) {
  std::vector<routing::RoutePair> pairs;
  if (n < 2) return pairs;
  std::mt19937 rng(static_cast<unsigned>(7919 + n));
  std::uniform_int_distribution<int> pick(0, static_cast<int>(n) - 1);
  while (pairs.size() < want) {
    const int s = pick(rng);
    const int t = pick(rng);
    if (s != t) pairs.push_back({s, t});
  }
  return pairs;
}

/// Every epoch of a short churn run must serve answers bit-identical to a
/// from-scratch build — the acceptance check, never the timed region.
/// Returns false (after printing why) on the first divergence.
bool acceptanceCheck(const scenario::Scenario& sc, std::size_t n) {
  serve::RouteService service(sc, serviceOptions(1000 + static_cast<unsigned>(n)));
  const auto trace =
      scenario::makeChurnTrace(sc, churnParams(2000 + static_cast<unsigned>(n), 3, 8));
  for (const auto& batch : trace) {
    service.enqueue(batch);
    service.applyUpdates();
    const auto snap = service.snapshot();
    const core::HybridNetwork fresh(snap->scenario.points, service.options().ldel,
                                    service.options().router, nullptr);
    const auto pairs = pairsFor(snap->scenario.points.size(), 64);
    const auto served = service.routeBatch(pairs, 2);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto want = fresh.route(pairs[i].source, pairs[i].target);
      if (served[i].path != want.path || served[i].delivered != want.delivered) {
        std::fprintf(stderr, "e22_churn_serving: epoch %llu (%s build) diverges from a "
                             "fresh build at n=%zu pair=%zu (%d->%d)\n",
                     static_cast<unsigned long long>(snap->epoch),
                     serve::epochBuildName(snap->build), n, i, pairs[i].source,
                     pairs[i].target);
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool gate = false;
  std::string metricsPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metricsPath = argv[++i];
    }
  }
  if (gate) smoke = false;
  if (!metricsPath.empty()) {
    if (!obs::kCompiledIn) {
      std::fprintf(stderr, "e22_churn_serving: --metrics requested but observability "
                           "was compiled out (HYBRID_OBS_DISABLED)\n");
      return 2;
    }
    obs::setEnabled(true);
  }

  const std::vector<std::size_t> sizes =
      smoke  ? std::vector<std::size_t>{250}
      : gate ? std::vector<std::size_t>{500}
             : std::vector<std::size_t>{500, 1000, 2000};
  const std::vector<int> threadCounts = smoke  ? std::vector<int>{1, 2}
                                        : gate ? std::vector<int>{1, 2, 8}
                                               : std::vector<int>{1, 2, 4, 8};
  // Updates per epoch: the churn-rate sweep of the sustained-serving run.
  const std::vector<int> churnRates = smoke  ? std::vector<int>{4}
                                      : gate ? std::vector<int>{8}
                                             : std::vector<int>{2, 8, 32};
  const int churnEpochs = smoke ? 3 : gate ? 4 : 6;
  const std::size_t overheadQueries = smoke ? 150 : gate ? 400 : 800;

  std::printf("{\n");
  std::printf("  \"experiment\": \"e22_churn_serving\",\n");
  std::printf("  \"workload\": \"epoch-snapshot serving loop over convex-holes deployments: "
              "reader threads route against pinned snapshots while the updater applies a "
              "seeded fault-injected churn trace and republishes epochs\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"configs\": [\n");
  bool firstCfg = true;
  for (const std::size_t n : sizes) {
    const auto sc = bench::convexHolesScenario(n, 42 + static_cast<unsigned>(n));
    if (!acceptanceCheck(sc, n)) return 3;

    if (!firstCfg) std::printf(",\n");
    firstCfg = false;
    std::printf("    {\"n\": %zu,\n", sc.points.size());

    // --- Serving overhead: service.routeBatch (pin + route) vs routing on
    // the pinned network directly. The ratio is machine-independent; its
    // speedup_vs_direct gauges are what the CI bench gate checks.
    serve::RouteService service(sc, serviceOptions(10 + static_cast<unsigned>(n)));
    const auto snap = service.snapshot();
    const auto pairs = pairsFor(snap->scenario.points.size(), overheadQueries);
    volatile double sink = 0.0;
    std::printf("     \"servingOverhead\": [\n");
    bool firstT = true;
    for (const int t : threadCounts) {
      // Interleave the two sides repeat by repeat: both ride out the same
      // machine-load drift, so their ratio stays stable even when the
      // absolute q/s does not.
      const auto runDirect = [&] {
        const auto results = snap->net->routeBatch(pairs, t);
        sink = static_cast<double>(results.size());
      };
      const auto runService = [&] {
        const auto results = service.routeBatch(pairs, t);
        sink = static_cast<double>(results.size());
      };
      runDirect();
      runService();
      double direct = 0.0;
      double viaService = 0.0;
      for (int r = 0; r < 2 * kRepeats; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        runDirect();
        auto t1 = std::chrono::steady_clock::now();
        runService();
        auto t2 = std::chrono::steady_clock::now();
        const double d = seconds(t0, t1);
        const double s = seconds(t1, t2);
        if (direct == 0.0 || d < direct) direct = d;
        if (viaService == 0.0 || s < viaService) viaService = s;
      }
      const double directQps = direct > 0.0 ? static_cast<double>(pairs.size()) / direct : 0.0;
      const double serviceQps =
          viaService > 0.0 ? static_cast<double>(pairs.size()) / viaService : 0.0;
      const double speedup = directQps > 0.0 ? serviceQps / directQps : 0.0;
      if (!firstT) std::printf(",\n");
      firstT = false;
      std::printf("       {\"threads\": %d, \"directQps\": %.0f, \"serviceQps\": %.0f, "
                  "\"speedupVsDirect\": %.3f}",
                  t, directQps, serviceQps, speedup);
      HYBRID_OBS_STMT(if (obs::enabled()) {
        const std::string key = ".n" + std::to_string(n) + ".t" + std::to_string(t);
        auto& reg = obs::Registry::global();
        reg.gauge("bench.e22.serve.queries_per_s" + key).set(serviceQps);
        reg.gauge("bench.e22.direct.queries_per_s" + key).set(directQps);
        // ~1.0 at any thread count: the epoch pin is one mutex-guarded
        // shared_ptr copy per batch. Machine-independent, so gated.
        reg.gauge("bench.e22.serve.speedup_vs_direct" + key).set(speedup);
      });
    }
    std::printf("\n     ],\n");

    // --- Sustained serving under churn: readers route continuously while
    // the updater drains a churn trace. Wall-clock q/s is machine-bound —
    // informational gauges only (never gated).
    std::printf("     \"churn\": [\n");
    bool firstRate = true;
    for (const int rate : churnRates) {
      serve::RouteService churned(sc, serviceOptions(10 + static_cast<unsigned>(n)));
      const auto trace = scenario::makeChurnTrace(
          sc, churnParams(77 + static_cast<unsigned>(n), churnEpochs, rate));

      std::atomic<bool> stop{false};
      std::atomic<long> servedQueries{0};
      std::vector<std::thread> readers;
      for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&churned, &stop, &servedQueries] {
          while (!stop.load(std::memory_order_relaxed)) {
            const auto pin = churned.snapshot();
            const auto qs = pairsFor(pin->scenario.points.size(), 32);
            pin->net->routeBatch(qs, 1);
            servedQueries.fetch_add(static_cast<long>(qs.size()),
                                    std::memory_order_relaxed);
          }
        });
      }
      const auto c0 = std::chrono::steady_clock::now();
      for (const auto& batch : trace) {
        churned.enqueue(batch);
        churned.applyUpdates();
      }
      while (churned.drainOnce()) {
      }
      const auto c1 = std::chrono::steady_clock::now();
      stop.store(true, std::memory_order_relaxed);
      for (auto& r : readers) r.join();

      const double elapsed = seconds(c0, c1);
      const double qps =
          elapsed > 0.0 ? static_cast<double>(servedQueries.load()) / elapsed : 0.0;
      double swapMsSum = 0.0;
      double swapMsMax = 0.0;
      for (const auto& e : churned.history()) {
        swapMsSum += e.swapMs;
        if (e.swapMs > swapMsMax) swapMsMax = e.swapMs;
      }
      const double swapMsMean =
          churned.history().empty() ? 0.0 : swapMsSum / churned.history().size();
      const auto& stream = churned.streamStats();
      if (!firstRate) std::printf(",\n");
      firstRate = false;
      std::printf("       {\"updatesPerEpoch\": %d, \"epochs\": %zu, "
                  "\"readerQps\": %.0f, \"swapMsMean\": %.2f, \"swapMsMax\": %.2f,\n",
                  rate, churned.history().size(), qps, swapMsMean, swapMsMax);
      std::printf("        \"rebuilds\": {\"reused\": %llu, \"incremental\": %llu, "
                  "\"full\": %llu},\n",
                  static_cast<unsigned long long>(churned.reusedEpochs()),
                  static_cast<unsigned long long>(churned.incrementalRebuilds()),
                  static_cast<unsigned long long>(churned.fullRebuilds()));
      std::printf("        \"stream\": {\"offered\": %llu, \"delivered\": %llu, "
                  "\"dropped\": %llu, \"duplicated\": %llu, \"delayed\": %llu}}",
                  static_cast<unsigned long long>(stream.offered),
                  static_cast<unsigned long long>(stream.delivered),
                  static_cast<unsigned long long>(stream.dropped),
                  static_cast<unsigned long long>(stream.duplicated),
                  static_cast<unsigned long long>(stream.delayed));
      HYBRID_OBS_STMT(if (obs::enabled()) {
        const std::string key =
            ".n" + std::to_string(n) + ".u" + std::to_string(rate);
        auto& reg = obs::Registry::global();
        reg.gauge("serve.qps").set(qps);
        reg.gauge("bench.e22.churn.reader_qps" + key).set(qps);
        reg.gauge("bench.e22.churn.swap_ms_mean" + key).set(swapMsMean);
        reg.gauge("bench.e22.churn.rebuilds_full" + key)
            .set(static_cast<double>(churned.fullRebuilds()));
        reg.gauge("bench.e22.churn.rebuilds_incremental" + key)
            .set(static_cast<double>(churned.incrementalRebuilds()));
      });
    }
    std::printf("\n     ]}");
  }
  std::printf("\n  ]\n}\n");

  if (!metricsPath.empty()) {
    if (!obs::saveSnapshot(metricsPath, obs::capture())) {
      std::fprintf(stderr, "e22_churn_serving: cannot write metrics snapshot %s\n",
                   metricsPath.c_str());
      return 2;
    }
  }
  return 0;
}
