// E2 — worst-case separation: local routing vs hole abstraction (§1.4).
//
// A comb-shaped radio hole; the source sits at the bottom of the first gap
// and the target at the bottom of the last gap. Any local (GOAFR-style)
// strategy keeps descending into intermediate gaps and climbing back out,
// so its path grows with the number and depth of prongs, while the hybrid
// router escapes the bay via its extreme points and plans around the hull.
// This reproduces the shape of the Kuhn-Wattenhofer-Zollinger lower-bound
// construction the paper cites (local routing cannot be o(rho^2)).

#include "bench_util.hpp"
#include "routing/baselines.hpp"
#include "routing/goafr.hpp"

using namespace hybrid;

namespace {

struct MazeInstance {
  scenario::Scenario sc;
  geom::Vec2 sPos, tPos;
};

MazeInstance makeMaze(int teeth, double depth, unsigned seed) {
  const double toothW = 2.0;
  const double gapW = 3.2;  // wide enough that gaps stay hole-free
  const double bar = 1.5;
  const double combW = teeth * (toothW + gapW) - gapW;
  const double margin = 6.0;
  scenario::ScenarioParams p;
  p.width = combW + 2.0 * margin;
  p.height = depth + bar + 2.0 * margin;
  p.seed = seed;
  p.spacing = 0.42;  // dense deployment: no spurious interior holes
  const geom::Vec2 origin{margin, margin};
  p.obstacles.push_back(scenario::combObstacle(origin, teeth, toothW, gapW, depth, bar));
  MazeInstance mi;
  mi.sc = scenario::makeScenario(p);
  // Bottom of the first and last gap, just above the bar.
  const double gapY = margin + bar + 0.8;
  mi.sPos = {margin + toothW + gapW / 2.0, gapY};
  mi.tPos = {margin + (teeth - 1) * (toothW + gapW) - gapW / 2.0, gapY};
  return mi;
}

int nearestNode(const graph::GeometricGraph& g, geom::Vec2 p) {
  int best = 0;
  double bestD = 1e18;
  for (int v = 0; v < static_cast<int>(g.numNodes()); ++v) {
    const double d = geom::dist2(g.position(v), p);
    if (d < bestD) {
      bestD = d;
      best = v;
    }
  }
  return best;
}

void runRow(int teeth, double depth) {
  auto mi = makeMaze(teeth, depth, 17);
  core::HybridNetwork net(mi.sc.points);
  const int s = nearestNode(net.ldel(), mi.sPos);
  const int t = nearestNode(net.ldel(), mi.tPos);

  routing::FaceGreedyRouter face(net.ldel(), net.subdivision(), net.holes());
  routing::GoafrRouter goafr(net.ldel());
  auto& hybrid = net.router();

  const auto rg = goafr.route(s, t);
  const auto rf = face.route(s, t);
  const auto rh = hybrid.route(s, t);
  const double sf = net.stretch(rf, s, t);
  const double sg = net.stretch(rg, s, t);
  const double sh = net.stretch(rh, s, t);
  std::printf("%6d %6.1f %6zu | %10.3f %10.3f | %10.3f %10zu | %8.2f\n", teeth, depth,
              net.ldel().numNodes(), sf, sg, sh, rh.hops(),
              std::max(sf, sg) / (sh > 0 ? sh : 1.0));
}

}  // namespace

int main() {
  std::printf("E2: worst-case maze (comb obstacle), s/t inside first and last gap\n");
  std::printf("%6s %6s %6s | %10s %10s | %10s %10s | %8s\n", "teeth", "depth", "n",
              "face-grdy", "goafr+", "hybrid", "(hops)", "ratio");
  bench::printRule();
  std::printf("-- sweep prong count (depth = 8) --\n");
  for (const int teeth : {3, 5, 8, 12, 16}) runRow(teeth, 8.0);
  std::printf("-- sweep prong depth (teeth = 8) --\n");
  for (const double depth : {4.0, 8.0, 16.0, 24.0}) runRow(8, depth);
  bench::printRule();
  std::printf("expected: face-greedy stretch grows with prongs/depth; hybrid stays "
              "near-constant\n");
  return 0;
}
