// E3 — distributed preprocessing completes in O(log^2 n) rounds with
// polylogarithmic communication work per node (Theorem 1.2, §5).
//
// Doubling deployment sizes with a fixed obstacle layout. For each n we
// run the complete *distributed* pipeline (O(1)-round LDel construction
// with local hole detection, ring protocols, overlay tree, hull
// distribution, dominating sets) on the message-passing simulator and
// report rounds per phase. The total divided by log^2 n should stay
// bounded (no polynomial growth), and the per-node traffic should stay
// polylogarithmic.

#include "bench_util.hpp"
#include "protocols/preprocessing.hpp"

using namespace hybrid;

int main() {
  std::printf("E3: preprocessing rounds vs network size\n");
  std::printf("%7s %6s | %5s %5s %5s %5s %5s | %6s %6s %5s | %7s %9s | %9s %9s\n", "n",
              "holes", "ldel", "ring", "tree", "dist", "ds", "total", "dyn", "lg2n",
              "tot/lg2", "height", "maxWords", "msgs/node");
  bench::printRule(120);

  for (int exp = 7; exp <= 13; ++exp) {
    const std::size_t n = 1u << exp;
    auto sc = bench::convexHolesScenario(n, 1000 + static_cast<unsigned>(exp));
    core::HybridNetwork net(sc.points);
    sim::Simulator simulator(net.udg());
    protocols::PreprocessingReport rep;
    protocols::runDistributedPreprocessing(net, simulator, &rep, 3);

    const double actualN = static_cast<double>(net.udg().numNodes());
    const double lg = std::log2(actualN);
    const double lg2 = lg * lg;
    const double msgsPerNode =
        static_cast<double>(rep.totalMessages) / actualN;
    std::printf("%7zu %6zu | %5d %5d %5d %5d %5d | %6d %6d %5.0f | %7.2f %9d | %9ld %9.1f\n",
                net.udg().numNodes(), net.holes().holes.size(), rep.ldelConstruction,
                rep.rings.total(),
                rep.treeConstruction, rep.hullDistribution, rep.dominatingSets,
                rep.totalRounds(), rep.dynamicRounds(), lg2,
                static_cast<double>(rep.totalRounds()) / lg2, rep.treeHeight,
                rep.maxWordsPerNode, msgsPerNode);
  }
  bench::printRule(120);
  std::printf("expected: total/lg2 stays bounded (O(log^2 n) rounds); maxWords and\n"
              "msgs/node grow polylogarithmically, not polynomially\n");
  return 0;
}
