// E4 — storage depends on the holes, not on n (Theorem 1.2), and the §4.1
// space-reduction chain: §3's visibility graph over all h boundary nodes
// needs Theta(h^2) entries, its Delaunay variant O(h), and §4's convex
// hull abstraction only O(sum of L(c)) — all independent of n.
//
// The obstacle layout is fixed while the node density (and hence n) grows.
// Hull nodes store the overlay of all hull nodes; boundary nodes store two
// hull references plus their bay's dominating set (O(max P(h))); all other
// nodes store O(1). None of the columns should grow with n.

#include "bench_util.hpp"

using namespace hybrid;

int main() {
  std::printf("E4: per-node storage vs density (fixed holes)\n");
  std::printf("%7s %6s | %9s %10s %7s | %9s %9s %9s | %8s %8s\n", "n", "holes",
              "hullNodes", "sum L(c)", "max P", "st(hull)", "st(bnd)", "st(other)",
              "S3vis~h2", "S3del~h");
  bench::printRule(118);

  for (const double spacing : {0.52, 0.46, 0.42, 0.36, 0.32, 0.28}) {
    scenario::ScenarioParams p;
    p.width = p.height = 24.0;
    p.seed = 77;
    p.spacing = spacing;
    p.obstacles.push_back(scenario::regularPolygonObstacle({8.0, 8.0}, 3.0, 6));
    p.obstacles.push_back(scenario::rectangleObstacle({14.0, 13.0}, {20.0, 17.5}));
    auto sc = scenario::makeScenario(p);
    core::HybridNetwork net(sc.points);
    const auto rep = net.storageReport();

    double sumL = 0.0;
    double maxP = 0.0;
    for (const auto& a : net.abstractions()) {
      sumL += a.bboxCircumference;
      maxP = std::max(maxP, a.perimeter);
    }
    // §3 storage alternatives over all h boundary nodes.
    long h = 0;
    for (const auto& hole : net.holes().holes) h += static_cast<long>(hole.ring.size());
    std::printf("%7zu %6zu | %9ld %10.1f %7.1f | %9ld %9ld %9ld | %8ld %8ld\n",
                net.udg().numNodes(), net.holes().holes.size(), rep.totalHullNodes, sumL,
                maxP, rep.maxHullNodeStorage, rep.maxBoundaryNodeStorage,
                rep.maxOtherNodeStorage, h * h, h);
  }
  bench::printRule(118);
  std::printf("expected: all storage columns stay flat while n grows ~3.5x, and the\n"
              "§4.1 reduction chain holds: st(hull) << S3del << S3vis\n");
  return 0;
}
