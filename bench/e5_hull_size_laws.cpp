// E5 — abstraction size laws (Lemmas 4.2 and 4.4).
//
// Lemma 4.4: the convex hull of a hole ring has O(L) nodes, where L is the
// circumference of the hull's minimum bounding box. Lemma 4.2: a locally
// convex hull has O(A) nodes, where A is the covered area. We sweep the
// hole size for a convex (hexagon) and a strongly concave (U-shape)
// obstacle and report |ring| = Theta(P), |lch| and |hull| together with the
// normalizing quantities: hull/L and lch/A should stay bounded while the
// absolute counts grow.

#include "bench_util.hpp"

using namespace hybrid;

namespace {

void report(const char* label, const std::vector<geom::Polygon>& obstacles, double side,
            geom::Vec2 probe) {
  scenario::ScenarioParams p;
  p.width = p.height = side;
  p.seed = 5;
  p.obstacles = obstacles;
  auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  for (const auto& a : net.abstractions()) {
    const auto& hole = net.holes().holes[static_cast<std::size_t>(a.holeIndex)];
    if (hole.outer || !hole.polygon.contains(probe)) continue;
    const double A = hole.polygon.area();
    const double L = a.bboxCircumference;
    std::printf("%-10s %6zu | %6zu %7.1f %7.2f | %6zu %8.1f %7.2f | %6zu %8.2f %7.2f\n",
                label, net.udg().numNodes(), hole.ring.size(), hole.perimeter(),
                static_cast<double>(hole.ring.size()) / hole.perimeter(),
                a.locallyConvexHull.size(), A,
                static_cast<double>(a.locallyConvexHull.size()) / std::max(1.0, A),
                a.hullNodes.size(), L, static_cast<double>(a.hullNodes.size()) / L);
    return;
  }
  std::printf("%-10s: hole not found\n", label);
}

}  // namespace

int main() {
  std::printf("E5: abstraction size laws (Lem. 4.2: |lch|=O(A); Lem. 4.4: |hull|=O(L))\n");
  std::printf("%-10s %6s | %6s %7s %7s | %6s %8s %7s | %6s %8s %7s\n", "shape", "n",
              "|ring|", "P(h)", "ring/P", "|lch|", "A", "lch/A", "|hull|", "L(c)",
              "hull/L");
  bench::printRule(112);

  for (const double r : {2.0, 3.0, 4.5, 6.0, 8.0}) {
    const double side = 6.0 * r;
    report("hexagon", {scenario::regularPolygonObstacle({side / 2, side / 2}, r, 6)}, side,
           {side / 2, side / 2});
  }
  bench::printRule(112);
  for (const double w : {5.0, 8.0, 12.0, 16.0}) {
    const double side = 2.5 * w;
    // Probe the middle of the U's bottom wall (inside the hole).
    report("u-shape",
           {scenario::uShapeObstacle({side / 2, side / 2}, w, 0.8 * w, 1.4)}, side,
           {side / 2, side / 2 - 0.4 * w + 0.7});
  }
  bench::printRule(112);
  std::printf("expected: ring/P, lch/A and hull/L columns stay bounded while the\n"
              "absolute counts grow; |hull| << |lch| <= |ring| for concave holes\n");
  return 0;
}
