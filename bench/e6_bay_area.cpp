// E6 — bay-area routing (§4.4, Lemma 4.19).
//
// A U-shaped hole forms a deep bay inside its convex hull. Source/target
// pairs are sampled inside the bay (case 5 of the protocol). Lemma 4.19
// bounds the competitive ratio by (2 + |E_route|) * 5.9, where E_route is
// the set of extreme points traversed; we report the measured stretch and
// check the bound pair by pair.

#include <random>

#include "bench_util.hpp"

using namespace hybrid;

int main() {
  std::printf("E6: routing inside a bay (case 5), U-shaped hole\n");
  std::printf("%7s %6s %7s | %8s %8s %8s | %9s %8s %9s\n", "width", "n", "pairs", "mean",
              "p95", "max", "maxEroute", "bound", "violates");
  bench::printRule();

  for (const double w : {6.0, 10.0, 14.0, 18.0}) {
    const double side = 2.2 * w;
    scenario::ScenarioParams p;
    p.width = p.height = side;
    p.seed = 31;
    p.obstacles.push_back(
        scenario::uShapeObstacle({side / 2, side / 2}, w, 0.85 * w, 1.4));
    auto sc = scenario::makeScenario(p);
    core::HybridNetwork net(sc.points);
    auto& router = net.router();

    // Bay interior: inside the U opening (above the inner bottom, between
    // the walls).
    const double x0 = side / 2 - w / 2 + 1.4;
    const double x1 = side / 2 + w / 2 - 1.4;
    const double y0 = side / 2 - 0.425 * w + 1.4;
    const double y1 = side / 2 + 0.425 * w;
    std::vector<int> bayNodes;
    for (int v = 0; v < static_cast<int>(net.ldel().numNodes()); ++v) {
      const auto pos = net.ldel().position(v);
      if (pos.x > x0 && pos.x < x1 && pos.y > y0 && pos.y < y1 &&
          router.locate(pos).has_value()) {
        bayNodes.push_back(v);
      }
    }
    if (bayNodes.size() < 2) {
      std::printf("%7.1f: not enough bay nodes\n", w);
      continue;
    }

    // Ablation: the same pairs routed without the §4.4 bay machinery
    // (every inside-hull case degrades to chew + overlay + fallback).
    auto noBay = net.makeRouter(
        {routing::SiteMode::HullNodes, routing::EdgeMode::Delaunay, false});

    std::mt19937 rng(7);
    std::uniform_int_distribution<int> pick(0, static_cast<int>(bayNodes.size()) - 1);
    bench::StretchStats stats;
    bench::StretchStats statsNoBay;
    int maxEroute = 0;
    int violations = 0;
    const int pairs = 120;
    for (int i = 0; i < pairs; ++i) {
      const int s = bayNodes[static_cast<std::size_t>(pick(rng))];
      int t = bayNodes[static_cast<std::size_t>(pick(rng))];
      if (t == s) continue;
      const auto r = router.route(s, t);
      const double st = net.stretch(r, s, t);
      stats.add(r, st);
      maxEroute = std::max(maxEroute, r.bayExtremePoints);
      if (r.delivered && st > (2.0 + r.bayExtremePoints) * 5.9 + 1e-9) ++violations;
      const auto rn = noBay->route(s, t);
      statsNoBay.add(rn, net.stretch(rn, s, t));
    }
    std::printf("%7.1f %6zu %7d | %8.3f %8.3f %8.3f | %9d %8.1f %9d\n", w,
                net.udg().numNodes(), stats.attempts, stats.mean(), stats.percentile(0.95),
                stats.maxStretch(), maxEroute, (2.0 + maxEroute) * 5.9, violations);
    std::printf("%7s %6s %7s | %8.3f %8.3f %8.3f | ablation: bay routing off "
                "(fallbacks %d)\n",
                "", "", "", statsNoBay.mean(), statsNoBay.percentile(0.95),
                statsNoBay.maxStretch(), statsNoBay.fallbacks);
  }
  bench::printRule();
  std::printf("expected: zero bound violations; measured stretch far below the\n"
              "(2+|E_route|)*5.9 worst-case guarantee of Lemma 4.19; disabling the\n"
              "bay machinery costs fallbacks (delivery via shortest-path rescue)\n");
  return 0;
}
