// E7 — dynamic scenario (§6): after the O(log^2 n) initial setup, keeping
// the abstraction current under node mobility costs only the ring/hull/DS
// phases — the overlay tree does not depend on positions and is reused.
//
// Nodes take bounded random steps; after each step we rebuild the local
// structures and re-run the distributed pipeline without tree
// construction, reporting the per-step round cost next to the initial one.

#include <random>

#include "bench_util.hpp"
#include "protocols/preprocessing.hpp"

using namespace hybrid;

int main() {
  std::printf("E7: dynamic scenario - initial setup vs per-step recomputation\n");

  scenario::ScenarioParams p;
  p.width = p.height = 22.0;
  p.seed = 19;
  p.obstacles.push_back(scenario::regularPolygonObstacle({8.0, 9.0}, 3.0, 7));
  p.obstacles.push_back(scenario::rectangleObstacle({13.0, 13.0}, {18.0, 17.0}));
  auto sc = scenario::makeScenario(p);

  std::printf("%6s %7s | %6s %6s %6s %6s | %7s | %6s %6s\n", "step", "n", "ring", "tree",
              "dist", "ds", "rounds", "holes", "hulls");
  bench::printRule();

  // Home-anchored mobility: each node wanders inside a small disk around
  // its home position, which keeps the deployment density stable (a pure
  // random walk would slowly open spurious holes).
  const auto homes = sc.points;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> wander(-0.22, 0.22);
  protocols::OverlayTree savedTree;
  for (int step = 0; step <= 5; ++step) {
    if (step > 0) {
      for (std::size_t i = 0; i < sc.points.size(); ++i) {
        const geom::Vec2 cand{homes[i].x + wander(rng), homes[i].y + wander(rng)};
        bool nearObstacle = false;
        for (const auto& obs : sc.obstacles) {
          if (obs.contains(cand)) {
            nearObstacle = true;
            break;
          }
        }
        if (!nearObstacle && cand.x > 0 && cand.y > 0 && cand.x < p.width &&
            cand.y < p.height) {
          sc.points[i] = cand;
        }
      }
    }
    core::HybridNetwork net(sc.points);
    sim::Simulator simulator(net.udg());
    protocols::PreprocessingReport rep;
    const auto out = protocols::runPreprocessing(net, simulator, &rep, 3);
    if (step == 0) savedTree = out.tree;

    std::size_t hullNodes = 0;
    for (const auto& a : net.abstractions()) hullNodes += a.hullNodes.size();
    const int rounds = step == 0 ? rep.totalRounds() : rep.dynamicRounds();
    std::printf("%6d %7zu | %6d %6d %6d %6d | %7d | %6zu %6zu\n", step,
                net.udg().numNodes(), rep.rings.total(),
                step == 0 ? rep.treeConstruction : 0, rep.hullDistribution,
                rep.dominatingSets, rounds, net.holes().holes.size(), hullNodes);
  }
  bench::printRule();
  std::printf("expected: step 0 pays the tree construction (the dominant O(log^2 n)\n"
              "term); steps 1..5 run in a small fraction of the initial rounds\n");
  return 0;
}
