// E8 — ring protocol complexities (Lemma 5.2, Theorem 5.3, §5.3).
//
// Pointer jumping + leader election and the hull aggregation/broadcast run
// in O(log k) rounds with O(log k) messages per node; Batcher's bitonic
// sort on the emulated hypercube runs in O(log^2 k) rounds. We sweep
// power-of-two ring sizes (the paper's simplifying assumption for the
// sorting step) and print each phase next to its normalizer.

#include <cmath>
#include <numbers>
#include <random>

#include "bench_util.hpp"
#include "delaunay/udg.hpp"
#include "protocols/bitonic_sort.hpp"
#include "protocols/ring_pipeline.hpp"

using namespace hybrid;

namespace {

graph::GeometricGraph circleRing(int k) {
  std::vector<geom::Vec2> pts;
  const double r = static_cast<double>(k);
  for (int i = 0; i < k; ++i) {
    const double a = 2.0 * std::numbers::pi * i / k;
    pts.push_back({r * std::cos(a), r * std::sin(a)});
  }
  const double chord = 2.0 * r * std::sin(std::numbers::pi / k);
  return delaunay::buildUnitDiskGraph(pts, chord * 1.05);
}

}  // namespace

int main() {
  std::printf("E8: ring protocols - rounds vs ring size\n");
  std::printf("%6s %5s | %5s %5s %5s %5s | %7s | %6s %8s | %9s %9s\n", "k", "lg k",
              "ptrj", "ids", "aggr", "bcast", "tot/lg", "sort", "sort/lg2", "msgs/node",
              "words/nd");
  bench::printRule(110);

  for (int exp = 4; exp <= 12; ++exp) {
    const int k = 1 << exp;
    const auto g = circleRing(k);
    sim::Simulator s(g);
    std::vector<int> ring(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) ring[static_cast<std::size_t>(i)] = i;

    protocols::RingPipeline pipeline(s, {{ring}});
    pipeline.run();
    const auto& r = pipeline.rounds();
    const long pipelineMsgs = s.totalMessages();
    const long pipelineWords = s.maxWordsPerNode();

    std::vector<double> keys(static_cast<std::size_t>(k));
    std::mt19937 rng(static_cast<unsigned>(k));
    std::uniform_real_distribution<double> d(0.0, 1.0);
    for (auto& v : keys) v = d(rng);
    s.resetStats();
    protocols::BitonicSorter sorter(s, ring, keys);
    const int sortRounds = sorter.run();

    const double lg = exp;
    std::printf("%6d %5.0f | %5d %5d %5d %5d | %7.2f | %6d %8.2f | %9.1f %9ld\n", k, lg,
                r.pointerJumping, r.idAssignment, r.aggregation, r.broadcast,
                static_cast<double>(r.total()) / lg, sortRounds,
                static_cast<double>(sortRounds) / (lg * lg),
                static_cast<double>(pipelineMsgs) / k, pipelineWords);
  }
  bench::printRule(110);
  std::printf("expected: tot/lg and sort/lg2 columns stay bounded; msgs/node grows\n"
              "logarithmically (Lemma 5.2); words/node reflects the hull payloads\n");
  return 0;
}
