// E9 — distributed dominating sets on bay chains (§5.6).
//
// The Jia-et-al-style randomized protocol on paths (Delta = 2) should give
// an O(1)-approximation of the optimum ceil(k/3) in O(log k) rounds with
// high probability. We sweep chain lengths and compare against the optimum
// and the centralized greedy.

#include <random>

#include "abstraction/dominating_set.hpp"
#include "bench_util.hpp"
#include "delaunay/udg.hpp"
#include "protocols/dominating_set_protocol.hpp"

using namespace hybrid;

int main() {
  std::printf("E9: dominating sets on chains - size and rounds\n");
  std::printf("%7s | %7s %7s %7s %7s | %7s %9s\n", "k", "optimal", "greedy", "dist",
              "ratio", "rounds", "rounds/lg");
  bench::printRule();

  for (const int k : {10, 30, 100, 300, 1000, 3000}) {
    std::vector<geom::Vec2> pts;
    for (int i = 0; i < k; ++i) pts.push_back({static_cast<double>(i) * 0.9, 0.0});
    const auto g = delaunay::buildUnitDiskGraph(pts, 1.0);

    std::vector<int> chain(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) chain[static_cast<std::size_t>(i)] = i;

    // Average over a few seeds (randomized protocol).
    double sumSize = 0.0;
    double sumRounds = 0.0;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      sim::Simulator s(g);
      protocols::DominatingSetProtocol proto(s, {chain}, 100 + static_cast<unsigned>(rep));
      sumRounds += proto.run();
      sumSize += static_cast<double>(proto.dominatingSet(0).size());
    }
    const double distSize = sumSize / reps;
    const double rounds = sumRounds / reps;
    const int optimal = (k + 2) / 3;
    const auto greedy = abstraction::pathDominatingSet(chain);
    std::printf("%7d | %7d %7zu %7.1f %7.2f | %7.1f %9.2f\n", k, optimal, greedy.size(),
                distSize, distSize / optimal, rounds, rounds / std::log2(k + 1));
  }
  bench::printRule();
  std::printf("expected: ratio stays a small constant (O(1)-approx for Delta=2);\n"
              "rounds/lg stays bounded (O(log k) with high probability)\n");
  return 0;
}
