// Micro-benchmarks of the computational kernels (google-benchmark):
// geometric predicates (filtered fast path vs exact fallback), convex hull,
// Delaunay triangulation, UDG/LDel^2 construction, hole detection,
// shortest paths, visibility tests and end-to-end route queries.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <utility>

#include "core/hybrid_network.hpp"
#include "delaunay/ldel.hpp"
#include "delaunay/triangulation.hpp"
#include "delaunay/udg.hpp"
#include "geom/polygon.hpp"
#include "geom/predicates.hpp"
#include "graph/shortest_path.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "sim/message_pool.hpp"

namespace {

using namespace hybrid;

std::vector<geom::Vec2> randomPoints(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(0.0, 100.0);
  std::vector<geom::Vec2> pts(n);
  for (auto& p : pts) p = {d(rng), d(rng)};
  return pts;
}

void BM_OrientFastPath(benchmark::State& state) {
  const auto pts = randomPoints(3000, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& a = pts[i % pts.size()];
    const auto& b = pts[(i + 1) % pts.size()];
    const auto& c = pts[(i + 2) % pts.size()];
    benchmark::DoNotOptimize(geom::orient(a, b, c));
    ++i;
  }
}
BENCHMARK(BM_OrientFastPath);

void BM_OrientExactFallback(benchmark::State& state) {
  // Nearly collinear triples force the expansion-arithmetic fallback.
  const geom::Vec2 a{0.5, 0.5};
  const geom::Vec2 b{12.0, 12.0};
  const geom::Vec2 c{24.0, std::nextafter(24.0, 25.0)};
  for (auto _ : state) benchmark::DoNotOptimize(geom::orient(a, b, c));
}
BENCHMARK(BM_OrientExactFallback);

void BM_InCircle(benchmark::State& state) {
  const auto pts = randomPoints(3000, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::inCircle(pts[i % pts.size()], pts[(i + 1) % pts.size()],
                                            pts[(i + 2) % pts.size()],
                                            pts[(i + 3) % pts.size()]));
    ++i;
  }
}
BENCHMARK(BM_InCircle);

void BM_ConvexHull(benchmark::State& state) {
  const auto pts = randomPoints(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) benchmark::DoNotOptimize(geom::convexHull(pts));
}
BENCHMARK(BM_ConvexHull)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Delaunay(benchmark::State& state) {
  const auto pts = randomPoints(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    delaunay::DelaunayTriangulation dt(pts);
    benchmark::DoNotOptimize(dt.triangles().size());
  }
}
BENCHMARK(BM_Delaunay)->Arg(200)->Arg(1000)->Arg(5000);

void BM_UnitDiskGraph(benchmark::State& state) {
  auto params = scenario::paramsForNodeCount(static_cast<std::size_t>(state.range(0)), 5);
  const auto sc = scenario::makeScenario(params);
  for (auto _ : state) {
    auto g = delaunay::buildUnitDiskGraph(sc.points, 1.0);
    benchmark::DoNotOptimize(g.numEdges());
  }
}
BENCHMARK(BM_UnitDiskGraph)->Arg(1000)->Arg(4000);

void BM_LocalizedDelaunay(benchmark::State& state) {
  auto params = scenario::paramsForNodeCount(static_cast<std::size_t>(state.range(0)), 6);
  const auto sc = scenario::makeScenario(params);
  for (auto _ : state) {
    auto ldel = delaunay::buildLocalizedDelaunay(sc.points);
    benchmark::DoNotOptimize(ldel.graph.numEdges());
  }
}
BENCHMARK(BM_LocalizedDelaunay)->Arg(500)->Arg(2000);

void BM_HoleDetection(benchmark::State& state) {
  scenario::ScenarioParams p;
  p.width = p.height = 22.0;
  p.obstacles.push_back(scenario::regularPolygonObstacle({11.0, 11.0}, 3.5, 6));
  const auto sc = scenario::makeScenario(p);
  const auto ldel = delaunay::buildLocalizedDelaunay(sc.points);
  for (auto _ : state) {
    auto holes = holes::detectHoles(ldel.graph);
    benchmark::DoNotOptimize(holes.holes.size());
  }
}
BENCHMARK(BM_HoleDetection);

void BM_Dijkstra(benchmark::State& state) {
  auto params = scenario::paramsForNodeCount(4000, 7);
  const auto sc = scenario::makeScenario(params);
  const auto udg = delaunay::buildUnitDiskGraph(sc.points, 1.0);
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(udg.numNodes()) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::shortestPathLength(udg, pick(rng), pick(rng)));
  }
}
BENCHMARK(BM_Dijkstra);

void BM_HybridRouteQuery(benchmark::State& state) {
  scenario::ScenarioParams p;
  p.width = p.height = 24.0;
  p.obstacles.push_back(scenario::regularPolygonObstacle({9.0, 9.0}, 3.0, 6));
  p.obstacles.push_back(scenario::rectangleObstacle({14.0, 14.0}, {19.0, 18.0}));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  std::mt19937 rng(2);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(net.ldel().numNodes()) - 1);
  for (auto _ : state) {
    const auto r = net.route(pick(rng), pick(rng));
    benchmark::DoNotOptimize(r.delivered);
  }
}
BENCHMARK(BM_HybridRouteQuery);

void BM_NetworkConstruction(benchmark::State& state) {
  auto sc = hybrid::scenario::makeScenario(
      scenario::paramsForNodeCount(static_cast<std::size_t>(state.range(0)), 8));
  for (auto _ : state) {
    core::HybridNetwork net(sc.points);
    benchmark::DoNotOptimize(net.holes().holes.size());
  }
}
BENCHMARK(BM_NetworkConstruction)->Arg(1000)->Arg(3000);

// ---------------------------------------------------------------------------
// Simulator hot-path kernels: delivery ordering and message allocation.
// ---------------------------------------------------------------------------

// Synthetic round of m messages among n nodes with the distribution the
// simulator sees (every node talks to a handful of others).
std::vector<std::pair<int, int>> randomTraffic(std::size_t m, int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> node(0, n - 1);
  std::vector<std::pair<int, int>> fromTo(m);
  for (auto& [from, to] : fromTo) {
    from = node(rng);
    to = node(rng);
  }
  return fromTo;
}

// Pre-PR ordering: comparison stable_sort into (to, from, send-index),
// O(m log m) plus the sort's internal buffer.
void BM_DeliveryOrderStableSort(benchmark::State& state) {
  const int n = 10000;
  const auto traffic = randomTraffic(static_cast<std::size_t>(state.range(0)), n, 7);
  std::vector<std::uint32_t> order(traffic.size());
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       if (traffic[a].second != traffic[b].second) {
                         return traffic[a].second < traffic[b].second;
                       }
                       return traffic[a].first < traffic[b].first;
                     });
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeliveryOrderStableSort)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// This PR's ordering: two stable counting passes (by sender, then by
// recipient), O(m + n) with reused scratch — what Simulator::sortInbox does.
void BM_DeliveryOrderCountingSort(benchmark::State& state) {
  const int n = 10000;
  const auto traffic = randomTraffic(static_cast<std::size_t>(state.range(0)), n, 7);
  std::vector<std::uint32_t> order(traffic.size());
  std::vector<std::uint32_t> tmp(traffic.size());
  std::vector<std::uint32_t> counts;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    counts.assign(static_cast<std::size_t>(n), 0);
    for (std::uint32_t i : order) ++counts[static_cast<std::size_t>(traffic[i].first)];
    std::uint32_t running = 0;
    for (auto& c : counts) {
      const std::uint32_t k = c;
      c = running;
      running += k;
    }
    for (std::uint32_t i : order) tmp[counts[static_cast<std::size_t>(traffic[i].first)]++] = i;
    counts.assign(static_cast<std::size_t>(n), 0);
    for (std::uint32_t i : tmp) ++counts[static_cast<std::size_t>(traffic[i].second)];
    running = 0;
    for (auto& c : counts) {
      const std::uint32_t k = c;
      c = running;
      running += k;
    }
    for (std::uint32_t i : tmp) order[counts[static_cast<std::size_t>(traffic[i].second)]++] = i;
    benchmark::DoNotOptimize(order.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeliveryOrderCountingSort)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

// Pre-PR message lifecycle: a fresh heap-backed message per send.
struct FreshMessage {
  int from = -1, to = -1, type = 0;
  std::vector<std::int64_t> ints;
  std::vector<double> reals;
  std::vector<int> ids;
};

void BM_MessageFreshHeap(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<FreshMessage> round;
    for (int i = 0; i < 256; ++i) {
      FreshMessage m;
      m.from = i;
      m.to = i + 1;
      m.ints = {1, 2, 3};
      m.reals = {0.5};
      m.ids = {i};
      round.push_back(std::move(m));
    }
    benchmark::DoNotOptimize(round.data());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_MessageFreshHeap);

// This PR's lifecycle: pooled slots with small-buffer payloads; in steady
// state acquire/fill/release never touches the heap.
void BM_MessagePooledRecycled(benchmark::State& state) {
  sim::MessagePool pool;
  std::vector<sim::MessagePool::Handle> round;
  round.reserve(256);
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      const auto h = pool.acquire();
      sim::Message& m = pool.get(h);
      m.from = i;
      m.to = i + 1;
      m.ints = {1, 2, 3};
      m.reals = {0.5};
      m.ids = {i};
      round.push_back(h);
    }
    for (const auto h : round) pool.release(h);
    round.clear();
    benchmark::DoNotOptimize(pool.slotCount());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_MessagePooledRecycled);

}  // namespace

BENCHMARK_MAIN();
