// Observability overhead micro-bench, as JSON.
//
// Times the two instrumented hot loops — the simulator round loop (e17's
// gossip workload) and the workspace Dijkstra (the overlay table builder's
// inner kernel) — with the runtime metrics flag off and on, in the same
// binary, and reports the relative overhead. The enabled-path budget is
// <1%: instrumentation is driving-thread plain increments flushed once per
// run, so the hot loops never touch an atomic or a lock.
//
// With -DHYBRID_OBS_DISABLED both columns compile to the identical
// zero-instruction path and the overhead is zero by construction.
//
// Usage: obs_overhead [--max-overhead PCT]
//   --max-overhead PCT  exit non-zero when either loop's measured overhead
//                       exceeds PCT percent (off by default: timing noise
//                       on shared machines can exceed any honest bound).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "delaunay/udg.hpp"
#include "graph/dijkstra_workspace.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

using namespace hybrid;

namespace {

graph::GeometricGraph gridGraph(int n) {
  int side = 1;
  while (side * side < n) ++side;
  std::vector<geom::Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pts.push_back({0.9 * (i % side), 0.9 * (i / side)});
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

class GossipProtocol : public sim::Protocol {
 public:
  explicit GossipProtocol(int rounds) : rounds_(rounds) {}
  void onStart(sim::Context& ctx) override { blast(ctx); }
  void onMessage(sim::Context&, const sim::Message&) override {}
  void onRoundEnd(sim::Context& ctx) override {
    if (ctx.round() < rounds_) blast(ctx);
  }

 private:
  void blast(sim::Context& ctx) {
    for (int nb : ctx.udgNeighbors()) {
      sim::Message m;
      m.type = 7;
      m.ints = {static_cast<std::int64_t>(ctx.round())};
      ctx.sendAdHoc(nb, std::move(m));
    }
  }
  int rounds_;
};

double seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

constexpr int kRepeats = 7;  ///< Best-of-7: overhead ratios need tight minima.

template <typename Fn>
double bestSeconds(Fn&& run) {
  run();  // warm-up
  double best = 0.0;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double s = seconds(t0, t1);
    if (best == 0.0 || s < best) best = s;
  }
  return best;
}

double simSeconds(const graph::GeometricGraph& g, int rounds) {
  sim::Simulator s(g);
  s.setThreads(1);
  return bestSeconds([&] {
    s.resetStats();
    GossipProtocol proto(rounds);
    s.run(proto);
  });
}

double dijkstraSeconds(const graph::CsrAdjacency& csr, int sources) {
  graph::DijkstraWorkspace ws;
  return bestSeconds([&] {
    for (int s = 0; s < sources; ++s) {
      ws.run(csr, s % static_cast<int>(csr.numNodes()));
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  double maxOverheadPct = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-overhead") == 0 && i + 1 < argc) {
      maxOverheadPct = std::atof(argv[++i]);
    }
  }

  const auto g = gridGraph(2000);
  const int rounds = 40;
  const auto csr = graph::buildCsr(g);
  const int sources = 200;

  obs::setEnabled(false);
  const double simOff = simSeconds(g, rounds);
  const double dijOff = dijkstraSeconds(csr, sources);
  obs::setEnabled(obs::kCompiledIn);
  const double simOn = simSeconds(g, rounds);
  const double dijOn = dijkstraSeconds(csr, sources);
  obs::setEnabled(false);

  const double simPct = simOff > 0.0 ? (simOn / simOff - 1.0) * 100.0 : 0.0;
  const double dijPct = dijOff > 0.0 ? (dijOn / dijOff - 1.0) * 100.0 : 0.0;

  std::printf("{\n");
  std::printf("  \"experiment\": \"obs_overhead\",\n");
  std::printf("  \"compiledIn\": %s,\n", obs::kCompiledIn ? "true" : "false");
  std::printf("  \"simRoundLoop\": {\"secondsOff\": %.5f, \"secondsOn\": %.5f, "
              "\"overheadPct\": %.2f},\n",
              simOff, simOn, simPct);
  std::printf("  \"workspaceDijkstra\": {\"secondsOff\": %.5f, \"secondsOn\": %.5f, "
              "\"overheadPct\": %.2f}\n",
              dijOff, dijOn, dijPct);
  std::printf("}\n");

  if (maxOverheadPct >= 0.0 && (simPct > maxOverheadPct || dijPct > maxOverheadPct)) {
    std::fprintf(stderr, "obs_overhead: overhead above %.1f%% budget\n", maxOverheadPct);
    return 1;
  }
  return 0;
}
