file(REMOVE_RECURSE
  "CMakeFiles/e0_claims_check.dir/e0_claims_check.cpp.o"
  "CMakeFiles/e0_claims_check.dir/e0_claims_check.cpp.o.d"
  "e0_claims_check"
  "e0_claims_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e0_claims_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
