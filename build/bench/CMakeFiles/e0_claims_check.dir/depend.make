# Empty dependencies file for e0_claims_check.
# This may be replaced when dependencies are built.
