file(REMOVE_RECURSE
  "CMakeFiles/e10_spanner_chew.dir/e10_spanner_chew.cpp.o"
  "CMakeFiles/e10_spanner_chew.dir/e10_spanner_chew.cpp.o.d"
  "e10_spanner_chew"
  "e10_spanner_chew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_spanner_chew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
