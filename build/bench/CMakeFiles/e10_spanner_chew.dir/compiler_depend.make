# Empty compiler generated dependencies file for e10_spanner_chew.
# This may be replaced when dependencies are built.
