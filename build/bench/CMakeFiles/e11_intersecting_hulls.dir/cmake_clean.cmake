file(REMOVE_RECURSE
  "CMakeFiles/e11_intersecting_hulls.dir/e11_intersecting_hulls.cpp.o"
  "CMakeFiles/e11_intersecting_hulls.dir/e11_intersecting_hulls.cpp.o.d"
  "e11_intersecting_hulls"
  "e11_intersecting_hulls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_intersecting_hulls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
