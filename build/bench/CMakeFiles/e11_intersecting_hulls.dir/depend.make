# Empty dependencies file for e11_intersecting_hulls.
# This may be replaced when dependencies are built.
