file(REMOVE_RECURSE
  "CMakeFiles/e12_incremental.dir/e12_incremental.cpp.o"
  "CMakeFiles/e12_incremental.dir/e12_incremental.cpp.o.d"
  "e12_incremental"
  "e12_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
