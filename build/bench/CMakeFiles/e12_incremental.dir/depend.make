# Empty dependencies file for e12_incremental.
# This may be replaced when dependencies are built.
