file(REMOVE_RECURSE
  "CMakeFiles/e13_qudg.dir/e13_qudg.cpp.o"
  "CMakeFiles/e13_qudg.dir/e13_qudg.cpp.o.d"
  "e13_qudg"
  "e13_qudg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_qudg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
