# Empty compiler generated dependencies file for e13_qudg.
# This may be replaced when dependencies are built.
