file(REMOVE_RECURSE
  "CMakeFiles/e14_transmission.dir/e14_transmission.cpp.o"
  "CMakeFiles/e14_transmission.dir/e14_transmission.cpp.o.d"
  "e14_transmission"
  "e14_transmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e14_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
