# Empty dependencies file for e14_transmission.
# This may be replaced when dependencies are built.
