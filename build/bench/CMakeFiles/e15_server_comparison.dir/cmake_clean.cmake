file(REMOVE_RECURSE
  "CMakeFiles/e15_server_comparison.dir/e15_server_comparison.cpp.o"
  "CMakeFiles/e15_server_comparison.dir/e15_server_comparison.cpp.o.d"
  "e15_server_comparison"
  "e15_server_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e15_server_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
