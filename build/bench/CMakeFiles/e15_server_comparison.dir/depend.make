# Empty dependencies file for e15_server_comparison.
# This may be replaced when dependencies are built.
