file(REMOVE_RECURSE
  "CMakeFiles/e1_competitiveness.dir/e1_competitiveness.cpp.o"
  "CMakeFiles/e1_competitiveness.dir/e1_competitiveness.cpp.o.d"
  "e1_competitiveness"
  "e1_competitiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_competitiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
