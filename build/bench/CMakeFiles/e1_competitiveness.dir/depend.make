# Empty dependencies file for e1_competitiveness.
# This may be replaced when dependencies are built.
