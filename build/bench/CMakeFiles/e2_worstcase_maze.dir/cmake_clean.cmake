file(REMOVE_RECURSE
  "CMakeFiles/e2_worstcase_maze.dir/e2_worstcase_maze.cpp.o"
  "CMakeFiles/e2_worstcase_maze.dir/e2_worstcase_maze.cpp.o.d"
  "e2_worstcase_maze"
  "e2_worstcase_maze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_worstcase_maze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
