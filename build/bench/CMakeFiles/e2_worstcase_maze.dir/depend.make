# Empty dependencies file for e2_worstcase_maze.
# This may be replaced when dependencies are built.
