file(REMOVE_RECURSE
  "CMakeFiles/e3_preprocessing_rounds.dir/e3_preprocessing_rounds.cpp.o"
  "CMakeFiles/e3_preprocessing_rounds.dir/e3_preprocessing_rounds.cpp.o.d"
  "e3_preprocessing_rounds"
  "e3_preprocessing_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_preprocessing_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
