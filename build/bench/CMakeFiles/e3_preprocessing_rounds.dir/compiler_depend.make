# Empty compiler generated dependencies file for e3_preprocessing_rounds.
# This may be replaced when dependencies are built.
