file(REMOVE_RECURSE
  "CMakeFiles/e4_storage.dir/e4_storage.cpp.o"
  "CMakeFiles/e4_storage.dir/e4_storage.cpp.o.d"
  "e4_storage"
  "e4_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
