# Empty dependencies file for e4_storage.
# This may be replaced when dependencies are built.
