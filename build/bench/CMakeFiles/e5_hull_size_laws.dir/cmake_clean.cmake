file(REMOVE_RECURSE
  "CMakeFiles/e5_hull_size_laws.dir/e5_hull_size_laws.cpp.o"
  "CMakeFiles/e5_hull_size_laws.dir/e5_hull_size_laws.cpp.o.d"
  "e5_hull_size_laws"
  "e5_hull_size_laws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_hull_size_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
