# Empty compiler generated dependencies file for e5_hull_size_laws.
# This may be replaced when dependencies are built.
