file(REMOVE_RECURSE
  "CMakeFiles/e6_bay_area.dir/e6_bay_area.cpp.o"
  "CMakeFiles/e6_bay_area.dir/e6_bay_area.cpp.o.d"
  "e6_bay_area"
  "e6_bay_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_bay_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
