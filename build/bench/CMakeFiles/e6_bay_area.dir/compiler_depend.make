# Empty compiler generated dependencies file for e6_bay_area.
# This may be replaced when dependencies are built.
