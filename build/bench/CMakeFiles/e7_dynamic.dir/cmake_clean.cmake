file(REMOVE_RECURSE
  "CMakeFiles/e7_dynamic.dir/e7_dynamic.cpp.o"
  "CMakeFiles/e7_dynamic.dir/e7_dynamic.cpp.o.d"
  "e7_dynamic"
  "e7_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
