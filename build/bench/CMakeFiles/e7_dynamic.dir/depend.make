# Empty dependencies file for e7_dynamic.
# This may be replaced when dependencies are built.
