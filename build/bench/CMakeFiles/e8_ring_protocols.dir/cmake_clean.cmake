file(REMOVE_RECURSE
  "CMakeFiles/e8_ring_protocols.dir/e8_ring_protocols.cpp.o"
  "CMakeFiles/e8_ring_protocols.dir/e8_ring_protocols.cpp.o.d"
  "e8_ring_protocols"
  "e8_ring_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_ring_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
