# Empty dependencies file for e8_ring_protocols.
# This may be replaced when dependencies are built.
