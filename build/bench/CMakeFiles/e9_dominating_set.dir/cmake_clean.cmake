file(REMOVE_RECURSE
  "CMakeFiles/e9_dominating_set.dir/e9_dominating_set.cpp.o"
  "CMakeFiles/e9_dominating_set.dir/e9_dominating_set.cpp.o.d"
  "e9_dominating_set"
  "e9_dominating_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_dominating_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
