# Empty compiler generated dependencies file for e9_dominating_set.
# This may be replaced when dependencies are built.
