file(REMOVE_RECURSE
  "CMakeFiles/example_city_routing.dir/city_routing.cpp.o"
  "CMakeFiles/example_city_routing.dir/city_routing.cpp.o.d"
  "example_city_routing"
  "example_city_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_city_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
