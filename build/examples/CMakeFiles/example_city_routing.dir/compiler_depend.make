# Empty compiler generated dependencies file for example_city_routing.
# This may be replaced when dependencies are built.
