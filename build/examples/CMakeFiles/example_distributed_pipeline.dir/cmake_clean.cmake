file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_pipeline.dir/distributed_pipeline.cpp.o"
  "CMakeFiles/example_distributed_pipeline.dir/distributed_pipeline.cpp.o.d"
  "example_distributed_pipeline"
  "example_distributed_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
