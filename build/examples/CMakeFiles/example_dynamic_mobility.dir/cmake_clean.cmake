file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_mobility.dir/dynamic_mobility.cpp.o"
  "CMakeFiles/example_dynamic_mobility.dir/dynamic_mobility.cpp.o.d"
  "example_dynamic_mobility"
  "example_dynamic_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
