# Empty compiler generated dependencies file for example_dynamic_mobility.
# This may be replaced when dependencies are built.
