file(REMOVE_RECURSE
  "CMakeFiles/example_maze_escape.dir/maze_escape.cpp.o"
  "CMakeFiles/example_maze_escape.dir/maze_escape.cpp.o.d"
  "example_maze_escape"
  "example_maze_escape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_maze_escape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
