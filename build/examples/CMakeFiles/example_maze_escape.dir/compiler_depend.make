# Empty compiler generated dependencies file for example_maze_escape.
# This may be replaced when dependencies are built.
