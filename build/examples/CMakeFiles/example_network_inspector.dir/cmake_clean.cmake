file(REMOVE_RECURSE
  "CMakeFiles/example_network_inspector.dir/network_inspector.cpp.o"
  "CMakeFiles/example_network_inspector.dir/network_inspector.cpp.o.d"
  "example_network_inspector"
  "example_network_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
