# Empty compiler generated dependencies file for example_network_inspector.
# This may be replaced when dependencies are built.
