
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abstraction/dominating_set.cpp" "src/CMakeFiles/hybridrouting.dir/abstraction/dominating_set.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/abstraction/dominating_set.cpp.o.d"
  "/root/repo/src/abstraction/hole_abstraction.cpp" "src/CMakeFiles/hybridrouting.dir/abstraction/hole_abstraction.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/abstraction/hole_abstraction.cpp.o.d"
  "/root/repo/src/abstraction/hull_groups.cpp" "src/CMakeFiles/hybridrouting.dir/abstraction/hull_groups.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/abstraction/hull_groups.cpp.o.d"
  "/root/repo/src/core/hybrid_network.cpp" "src/CMakeFiles/hybridrouting.dir/core/hybrid_network.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/core/hybrid_network.cpp.o.d"
  "/root/repo/src/delaunay/ldel.cpp" "src/CMakeFiles/hybridrouting.dir/delaunay/ldel.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/delaunay/ldel.cpp.o.d"
  "/root/repo/src/delaunay/triangulation.cpp" "src/CMakeFiles/hybridrouting.dir/delaunay/triangulation.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/delaunay/triangulation.cpp.o.d"
  "/root/repo/src/delaunay/udg.cpp" "src/CMakeFiles/hybridrouting.dir/delaunay/udg.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/delaunay/udg.cpp.o.d"
  "/root/repo/src/geom/angle.cpp" "src/CMakeFiles/hybridrouting.dir/geom/angle.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/geom/angle.cpp.o.d"
  "/root/repo/src/geom/circle.cpp" "src/CMakeFiles/hybridrouting.dir/geom/circle.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/geom/circle.cpp.o.d"
  "/root/repo/src/geom/expansion.cpp" "src/CMakeFiles/hybridrouting.dir/geom/expansion.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/geom/expansion.cpp.o.d"
  "/root/repo/src/geom/polygon.cpp" "src/CMakeFiles/hybridrouting.dir/geom/polygon.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/geom/polygon.cpp.o.d"
  "/root/repo/src/geom/predicates.cpp" "src/CMakeFiles/hybridrouting.dir/geom/predicates.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/geom/predicates.cpp.o.d"
  "/root/repo/src/geom/segment.cpp" "src/CMakeFiles/hybridrouting.dir/geom/segment.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/geom/segment.cpp.o.d"
  "/root/repo/src/geom/simplify.cpp" "src/CMakeFiles/hybridrouting.dir/geom/simplify.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/geom/simplify.cpp.o.d"
  "/root/repo/src/geom/visibility.cpp" "src/CMakeFiles/hybridrouting.dir/geom/visibility.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/geom/visibility.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/hybridrouting.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/planar_faces.cpp" "src/CMakeFiles/hybridrouting.dir/graph/planar_faces.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/graph/planar_faces.cpp.o.d"
  "/root/repo/src/graph/rotation.cpp" "src/CMakeFiles/hybridrouting.dir/graph/rotation.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/graph/rotation.cpp.o.d"
  "/root/repo/src/graph/shortest_path.cpp" "src/CMakeFiles/hybridrouting.dir/graph/shortest_path.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/graph/shortest_path.cpp.o.d"
  "/root/repo/src/holes/hole_detection.cpp" "src/CMakeFiles/hybridrouting.dir/holes/hole_detection.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/holes/hole_detection.cpp.o.d"
  "/root/repo/src/io/animation.cpp" "src/CMakeFiles/hybridrouting.dir/io/animation.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/io/animation.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/CMakeFiles/hybridrouting.dir/io/serialize.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/io/serialize.cpp.o.d"
  "/root/repo/src/io/svg_export.cpp" "src/CMakeFiles/hybridrouting.dir/io/svg_export.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/io/svg_export.cpp.o.d"
  "/root/repo/src/protocols/bitonic_sort.cpp" "src/CMakeFiles/hybridrouting.dir/protocols/bitonic_sort.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/protocols/bitonic_sort.cpp.o.d"
  "/root/repo/src/protocols/dominating_set_protocol.cpp" "src/CMakeFiles/hybridrouting.dir/protocols/dominating_set_protocol.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/protocols/dominating_set_protocol.cpp.o.d"
  "/root/repo/src/protocols/incremental.cpp" "src/CMakeFiles/hybridrouting.dir/protocols/incremental.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/protocols/incremental.cpp.o.d"
  "/root/repo/src/protocols/ldel_protocol.cpp" "src/CMakeFiles/hybridrouting.dir/protocols/ldel_protocol.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/protocols/ldel_protocol.cpp.o.d"
  "/root/repo/src/protocols/overlay_tree.cpp" "src/CMakeFiles/hybridrouting.dir/protocols/overlay_tree.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/protocols/overlay_tree.cpp.o.d"
  "/root/repo/src/protocols/preprocessing.cpp" "src/CMakeFiles/hybridrouting.dir/protocols/preprocessing.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/protocols/preprocessing.cpp.o.d"
  "/root/repo/src/protocols/ring_pipeline.cpp" "src/CMakeFiles/hybridrouting.dir/protocols/ring_pipeline.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/protocols/ring_pipeline.cpp.o.d"
  "/root/repo/src/protocols/routing_sim.cpp" "src/CMakeFiles/hybridrouting.dir/protocols/routing_sim.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/protocols/routing_sim.cpp.o.d"
  "/root/repo/src/routing/baselines.cpp" "src/CMakeFiles/hybridrouting.dir/routing/baselines.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/routing/baselines.cpp.o.d"
  "/root/repo/src/routing/chew.cpp" "src/CMakeFiles/hybridrouting.dir/routing/chew.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/routing/chew.cpp.o.d"
  "/root/repo/src/routing/goafr.cpp" "src/CMakeFiles/hybridrouting.dir/routing/goafr.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/routing/goafr.cpp.o.d"
  "/root/repo/src/routing/hybrid_router.cpp" "src/CMakeFiles/hybridrouting.dir/routing/hybrid_router.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/routing/hybrid_router.cpp.o.d"
  "/root/repo/src/routing/overlay_graph.cpp" "src/CMakeFiles/hybridrouting.dir/routing/overlay_graph.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/routing/overlay_graph.cpp.o.d"
  "/root/repo/src/routing/server_oracle.cpp" "src/CMakeFiles/hybridrouting.dir/routing/server_oracle.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/routing/server_oracle.cpp.o.d"
  "/root/repo/src/routing/subdivision.cpp" "src/CMakeFiles/hybridrouting.dir/routing/subdivision.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/routing/subdivision.cpp.o.d"
  "/root/repo/src/scenario/generator.cpp" "src/CMakeFiles/hybridrouting.dir/scenario/generator.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/scenario/generator.cpp.o.d"
  "/root/repo/src/scenario/shapes.cpp" "src/CMakeFiles/hybridrouting.dir/scenario/shapes.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/scenario/shapes.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/hybridrouting.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/spatial/grid_index.cpp" "src/CMakeFiles/hybridrouting.dir/spatial/grid_index.cpp.o" "gcc" "src/CMakeFiles/hybridrouting.dir/spatial/grid_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
