file(REMOVE_RECURSE
  "libhybridrouting.a"
)
