# Empty compiler generated dependencies file for hybridrouting.
# This may be replaced when dependencies are built.
