# Empty dependencies file for hybridrouting.
# This may be replaced when dependencies are built.
