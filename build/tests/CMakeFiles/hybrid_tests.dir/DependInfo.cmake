
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/animation_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/animation_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/animation_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/chew_subdivision_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/chew_subdivision_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/chew_subdivision_test.cpp.o.d"
  "/root/repo/tests/core_api_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/core_api_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/core_api_test.cpp.o.d"
  "/root/repo/tests/delaunay_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/delaunay_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/delaunay_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/expansion_fuzz_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/expansion_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/expansion_fuzz_test.cpp.o.d"
  "/root/repo/tests/geom_circle_angle_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/geom_circle_angle_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/geom_circle_angle_test.cpp.o.d"
  "/root/repo/tests/geom_polygon_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/geom_polygon_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/geom_polygon_test.cpp.o.d"
  "/root/repo/tests/geom_predicates_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/geom_predicates_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/geom_predicates_test.cpp.o.d"
  "/root/repo/tests/geom_segment_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/geom_segment_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/geom_segment_test.cpp.o.d"
  "/root/repo/tests/goafr_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/goafr_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/goafr_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/holes_abstraction_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/holes_abstraction_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/holes_abstraction_test.cpp.o.d"
  "/root/repo/tests/hull_groups_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/hull_groups_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/hull_groups_test.cpp.o.d"
  "/root/repo/tests/incremental_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/incremental_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/incremental_test.cpp.o.d"
  "/root/repo/tests/ldel_protocol_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/ldel_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/ldel_protocol_test.cpp.o.d"
  "/root/repo/tests/overlay_graph_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/overlay_graph_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/overlay_graph_test.cpp.o.d"
  "/root/repo/tests/paper_bounds_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/paper_bounds_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/paper_bounds_test.cpp.o.d"
  "/root/repo/tests/path_pruning_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/path_pruning_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/path_pruning_test.cpp.o.d"
  "/root/repo/tests/pipeline_fuzz_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/pipeline_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/pipeline_fuzz_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/predicates_crossvalidation_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/predicates_crossvalidation_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/predicates_crossvalidation_test.cpp.o.d"
  "/root/repo/tests/protocol_cases_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/protocol_cases_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/protocol_cases_test.cpp.o.d"
  "/root/repo/tests/protocols_extra_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/protocols_extra_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/protocols_extra_test.cpp.o.d"
  "/root/repo/tests/protocols_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/protocols_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/protocols_test.cpp.o.d"
  "/root/repo/tests/routing_sim_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/routing_sim_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/routing_sim_test.cpp.o.d"
  "/root/repo/tests/routing_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/routing_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/routing_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/serialize_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/simplify_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/simplify_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/simplify_test.cpp.o.d"
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/stress_test.cpp.o.d"
  "/root/repo/tests/svg_export_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/svg_export_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/svg_export_test.cpp.o.d"
  "/root/repo/tests/util_parallel_test.cpp" "tests/CMakeFiles/hybrid_tests.dir/util_parallel_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_tests.dir/util_parallel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hybridrouting.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
