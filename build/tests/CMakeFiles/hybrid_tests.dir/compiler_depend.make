# Empty compiler generated dependencies file for hybrid_tests.
# This may be replaced when dependencies are built.
