// City routing: the paper's motivating scenario. A downtown grid of
// convex buildings (city blocks) creates many disjoint radio holes; cell
// phones form the ad hoc network in the streets. We compare the local
// baselines against the hybrid protocol across many street-to-street
// routes and export a map.

#include <cstdio>
#include <random>

#include "core/hybrid_network.hpp"
#include "io/svg_export.hpp"
#include "routing/baselines.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

using namespace hybrid;

int main() {
  // A 3x3 block downtown with 2.2-unit-wide streets.
  scenario::ScenarioParams params;
  const double blockW = 5.0;
  const double blockH = 4.0;
  const double street = 2.2;
  params.obstacles = scenario::cityBlocks({2.5, 2.5}, 3, 3, blockW, blockH, street);
  params.width = 2.5 * 2 + 3 * blockW + 2 * street;
  params.height = 2.5 * 2 + 3 * blockH + 2 * street;
  params.seed = 2024;
  const auto sc = scenario::makeScenario(params);

  core::HybridNetwork net(sc.points);
  std::printf("city: %zu phones, %zu radio holes detected, hulls disjoint: %s\n",
              sc.points.size(), net.holes().holes.size(),
              net.convexHullsDisjoint() ? "yes" : "no");

  routing::GreedyRouter greedy(net.ldel());
  routing::FaceGreedyRouter face(net.ldel(), net.subdivision(), net.holes());
  auto& hybrid = net.router();

  std::mt19937 rng(1);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  struct Agg {
    int delivered = 0;
    double sumStretch = 0.0;
    double worst = 0.0;
  };
  Agg aGreedy, aFace, aHybrid;
  const int calls = 300;
  routing::RouteResult sample;
  for (int i = 0; i < calls; ++i) {
    const int s = pick(rng);
    const int t = pick(rng);
    if (s == t) continue;
    auto tally = [&](Agg& agg, const routing::RouteResult& r) {
      if (!r.delivered) return;
      ++agg.delivered;
      const double st = net.stretch(r, s, t);
      agg.sumStretch += st;
      agg.worst = std::max(agg.worst, st);
    };
    tally(aGreedy, greedy.route(s, t));
    tally(aFace, face.route(s, t));
    const auto rh = hybrid.route(s, t);
    tally(aHybrid, rh);
    if (rh.delivered && rh.hops() > sample.hops()) sample = rh;
  }
  auto report = [&](const char* name, const Agg& a) {
    std::printf("%-12s delivered %3d/%d  mean stretch %.3f  worst %.3f\n", name,
                a.delivered, calls, a.delivered > 0 ? a.sumStretch / a.delivered : 0.0,
                a.worst);
  };
  report("greedy", aGreedy);
  report("face-greedy", aFace);
  report("hybrid", aHybrid);

  io::SvgExporter svg(net);
  svg.drawObstacles(sc.obstacles).drawNetwork(false).drawHoles().drawAbstractions();
  svg.drawRoute(sample, "#2c8a4b");
  if (svg.save("city.svg")) std::printf("wrote city.svg\n");
  return 0;
}
