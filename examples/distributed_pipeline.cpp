// Distributed pipeline walkthrough: runs every protocol of paper §5 on the
// message-passing simulator and narrates what each phase computed —
// the closest thing to watching the real system boot up.

#include <cstdio>
#include <numbers>

#include "core/hybrid_network.hpp"
#include "protocols/ldel_protocol.hpp"
#include "protocols/preprocessing.hpp"
#include "protocols/routing_sim.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

using namespace hybrid;

int main() {
  scenario::ScenarioParams params;
  params.width = params.height = 18.0;
  params.seed = 11;
  params.obstacles.push_back(scenario::regularPolygonObstacle({9.0, 9.0}, 2.8, 6));
  const auto sc = scenario::makeScenario(params);
  core::HybridNetwork net(sc.points);
  std::printf("deployment: %zu phones, one hexagonal building\n\n", sc.points.size());

  sim::Simulator simulator(net.udg());

  // Phase 0: LDel^2 construction + local hole detection (§5.1).
  const auto ldel = protocols::runLdelConstruction(simulator);
  int boundaryNodes = 0;
  for (char b : ldel.isBoundary) boundaryNodes += b;
  std::printf("[%d rounds] LDel^2 built locally: %zu edges, %d boundary nodes\n",
              ldel.rounds, ldel.graph.numEdges(), boundaryNodes);

  const auto rings = protocols::assembleRingsFromGaps(ldel);
  std::printf("           boundary rings stitched from local gaps: %zu rings\n",
              rings.size());

  // Phases 1-4: ring protocols (§5.2-§5.4).
  protocols::RingPipeline pipeline(simulator, {rings});
  const auto results = pipeline.run();
  std::printf("[%d rounds] pointer jumping, IDs, hull aggregation, broadcast:\n",
              pipeline.rounds().total());
  for (const auto& r : results) {
    if (r.size < 8) continue;
    std::printf("           ring of %3d nodes: leader %4d, turning %+5.1f deg -> %s, "
                "hull %zu nodes\n",
                r.size, r.leader, r.turningAngle * 180.0 / std::numbers::pi,
                r.turningAngle > 0 ? "radio hole" : "outer boundary", r.hull.size());
  }

  // §5.5: overlay tree + hull distribution.
  const auto tree = protocols::buildOverlayTree(simulator, 3);
  std::printf("[%d rounds] overlay tree: height %d, single tree: %s\n", tree.rounds,
              tree.height, tree.isSingleTree() ? "yes" : "no");
  std::vector<char> isHull(simulator.numNodes(), 0);
  for (const auto& r : results) {
    if (r.turningAngle <= 0) continue;
    for (int v : r.hull) isHull[static_cast<std::size_t>(v)] = 1;
  }
  std::vector<std::vector<int>> knowledge;
  const int distRounds = protocols::distributeHullInfo(simulator, tree, isHull, &knowledge);
  int clique = 0;
  for (const auto& k : knowledge) clique += k.empty() ? 0 : 1;
  std::printf("[%d rounds] hull info distributed: %d hull nodes form the clique\n",
              distRounds, clique);

  // End-to-end transmission (§1.2 flow).
  const int s = 0;
  const int t = static_cast<int>(sc.points.size()) - 1;
  const auto tx = protocols::simulateTransmission(net, simulator, s, t);
  std::printf("\ntransmission %d -> %d: %s in %d rounds (%d ad hoc hops, "
              "%ld long-range messages)\n",
              s, t, tx.delivered ? "delivered" : "lost", tx.rounds, tx.adHocHops,
              tx.longRangeMessages);
  return 0;
}
