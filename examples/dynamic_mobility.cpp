// Dynamic scenario (paper §6): phones move, the abstraction is kept
// current. The overlay tree is built once (its structure only depends on
// IDs); each mobility step re-runs the cheap ring/hull/dominating-set
// phases and re-routes a fixed pair, demonstrating that routing keeps
// working while the radio holes deform.

#include <cstdio>
#include <random>

#include "core/hybrid_network.hpp"
#include "io/animation.hpp"
#include "protocols/preprocessing.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

using namespace hybrid;

int main() {
  scenario::ScenarioParams params;
  params.width = params.height = 18.0;
  params.seed = 41;
  params.obstacles.push_back(scenario::regularPolygonObstacle({9.0, 9.0}, 2.8, 7));
  auto sc = scenario::makeScenario(params);
  std::printf("deployment: %zu nodes around one building\n", sc.points.size());

  const auto homes = sc.points;
  std::mt19937 rng(8);
  std::uniform_real_distribution<double> wander(-0.2, 0.2);

  const int s = 0;
  const int t = static_cast<int>(sc.points.size()) - 1;
  io::AnimationExporter anim(params.width, params.height);
  std::printf("%5s %8s %8s %9s %9s %10s\n", "step", "rounds", "holes", "delivered",
              "stretch", "hullNodes");

  for (int step = 0; step <= 6; ++step) {
    if (step > 0) {
      for (std::size_t i = 0; i < sc.points.size(); ++i) {
        const geom::Vec2 cand{homes[i].x + wander(rng), homes[i].y + wander(rng)};
        bool blocked = cand.x < 0 || cand.y < 0 || cand.x > params.width ||
                       cand.y > params.height;
        for (const auto& obs : sc.obstacles) blocked = blocked || obs.contains(cand);
        if (!blocked) sc.points[i] = cand;
      }
    }
    core::HybridNetwork net(sc.points);
    sim::Simulator simulator(net.udg());
    protocols::PreprocessingReport rep;
    protocols::runPreprocessing(net, simulator, &rep, 3);
    const int rounds = step == 0 ? rep.totalRounds() : rep.dynamicRounds();

    const auto r = net.route(s, t);
    std::size_t hullNodes = 0;
    for (const auto& a : net.abstractions()) hullNodes += a.hullNodes.size();
    std::printf("%5d %8d %8zu %9s %9.3f %10zu\n", step, rounds,
                net.holes().holes.size(), r.delivered ? "yes" : "NO",
                net.stretch(r, s, t), hullNodes);

    io::AnimationExporter::Frame frame;
    frame.nodes = sc.points;
    for (const auto& h : net.holes().holes) {
      if (!h.outer) frame.holes.push_back(h.polygon);
    }
    for (graph::NodeId v : r.path) frame.route.push_back(net.ldel().position(v));
    char cap[64];
    std::snprintf(cap, sizeof cap, "step %d: %d rounds", step, rounds);
    frame.caption = cap;
    anim.addFrame(std::move(frame));
  }
  if (anim.save("mobility.html")) std::printf("wrote mobility.html (animated)\n");
  std::printf("step 0 includes the one-off O(log^2 n) overlay tree construction;\n"
              "later steps only pay the O(log n) ring/hull/DS phases (paper §6)\n");
  return 0;
}
