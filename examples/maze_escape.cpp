// Maze escape: the worst case for local routing. A deep comb-shaped hole
// separates the source from the target; greedy dies in a gap, the
// GOAFR-style baseline crawls the whole boundary, and the hybrid protocol
// plans around the hull via long-range links. Exports the three attempts
// into one SVG for comparison.

#include <cstdio>

#include "core/hybrid_network.hpp"
#include "io/svg_export.hpp"
#include "routing/baselines.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

using namespace hybrid;

namespace {

int nearestNode(const graph::GeometricGraph& g, geom::Vec2 p) {
  int best = 0;
  double bestD = 1e18;
  for (int v = 0; v < static_cast<int>(g.numNodes()); ++v) {
    const double d = geom::dist2(g.position(v), p);
    if (d < bestD) {
      bestD = d;
      best = v;
    }
  }
  return best;
}

}  // namespace

int main() {
  const int teeth = 6;
  const double toothW = 2.0;
  const double gapW = 3.2;
  const double depth = 10.0;
  const double bar = 1.5;
  const double margin = 6.0;

  scenario::ScenarioParams params;
  params.width = teeth * (toothW + gapW) - gapW + 2 * margin;
  params.height = depth + bar + 2 * margin;
  params.seed = 99;
  params.spacing = 0.42;
  params.obstacles.push_back(
      scenario::combObstacle({margin, margin}, teeth, toothW, gapW, depth, bar));
  const auto sc = scenario::makeScenario(params);

  core::HybridNetwork net(sc.points);
  const double gapY = margin + bar + 0.8;
  const int s = nearestNode(net.ldel(), {margin + toothW + gapW / 2, gapY});
  const int t = nearestNode(
      net.ldel(), {margin + (teeth - 1) * (toothW + gapW) - gapW / 2, gapY});
  std::printf("maze: %zu nodes, s=%d t=%d (both inside gaps of the comb)\n",
              sc.points.size(), s, t);

  routing::GreedyRouter greedy(net.ldel());
  routing::FaceGreedyRouter face(net.ldel(), net.subdivision(), net.holes());
  auto& hybrid = net.router();

  const auto rg = greedy.route(s, t);
  const auto rf = face.route(s, t);
  const auto rh = hybrid.route(s, t);
  std::printf("greedy:      %s after %zu hops\n", rg.delivered ? "delivered" : "stuck",
              rg.hops());
  std::printf("face-greedy: %s, %zu hops, stretch %.3f\n",
              rf.delivered ? "delivered" : "lost", rf.hops(), net.stretch(rf, s, t));
  std::printf("hybrid:      %s, %zu hops, stretch %.3f (|E_route| = %d)\n",
              rh.delivered ? "delivered" : "lost", rh.hops(), net.stretch(rh, s, t),
              rh.bayExtremePoints);

  io::SvgExporter svg(net);
  svg.drawObstacles(sc.obstacles).drawNetwork(false).drawHoles().drawAbstractions();
  svg.drawRoute(rf, "#d9a13b").drawRoute(rh, "#2c8a4b").drawRoute(rg, "#c24b4b");
  if (svg.save("maze.svg")) {
    std::printf("wrote maze.svg (red: greedy, orange: face-greedy, green: hybrid)\n");
  }
  return 0;
}
