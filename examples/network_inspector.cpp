// network_inspector — a small CLI around the library:
//
//   example_network_inspector generate <out.scn> [--n N] [--seed S] [--holes K]
//   example_network_inspector analyze  <in.scn>
//   example_network_inspector route    <in.scn> <src> <dst> [--router NAME]
//   example_network_inspector svg      <in.scn> <out.svg> [--route s t]
//
// Router names: hull-delaunay (default), hull-visibility,
// boundary-delaunay, boundary-visibility, lch-delaunay, goafr, face,
// greedy.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/hybrid_network.hpp"
#include "io/serialize.hpp"
#include "io/svg_export.hpp"
#include "routing/baselines.hpp"
#include "routing/goafr.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

using namespace hybrid;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  network_inspector generate <out.scn> [--n N] [--seed S] [--holes K]\n"
               "  network_inspector analyze  <in.scn>\n"
               "  network_inspector route    <in.scn> <src> <dst> [--router NAME]\n"
               "  network_inspector svg      <in.scn> <out.svg> [--route s t]\n");
  return 2;
}

const char* flagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

std::unique_ptr<routing::Router> makeNamedRouter(core::HybridNetwork& net,
                                                 const std::string& name) {
  using routing::EdgeMode;
  using routing::SiteMode;
  if (name == "hull-delaunay") return net.makeRouter({SiteMode::HullNodes, EdgeMode::Delaunay, true});
  if (name == "hull-visibility") return net.makeRouter({SiteMode::HullNodes, EdgeMode::Visibility, true});
  if (name == "boundary-delaunay") return net.makeRouter({SiteMode::AllHoleNodes, EdgeMode::Delaunay, true});
  if (name == "boundary-visibility") return net.makeRouter({SiteMode::AllHoleNodes, EdgeMode::Visibility, true});
  if (name == "lch-delaunay") return net.makeRouter({SiteMode::LocallyConvexHull, EdgeMode::Delaunay, true});
  if (name == "goafr") return std::make_unique<routing::GoafrRouter>(net.ldel());
  if (name == "face")
    return std::make_unique<routing::FaceGreedyRouter>(net.ldel(), net.subdivision(),
                                                       net.holes());
  if (name == "greedy") return std::make_unique<routing::GreedyRouter>(net.ldel());
  return nullptr;
}

int cmdGenerate(int argc, char** argv) {
  if (argc < 1) return usage();
  const char* out = argv[0];
  const std::size_t n = flagValue(argc, argv, "--n") != nullptr
                            ? std::stoul(flagValue(argc, argv, "--n"))
                            : 1500;
  const unsigned seed = flagValue(argc, argv, "--seed") != nullptr
                            ? static_cast<unsigned>(std::stoul(flagValue(argc, argv, "--seed")))
                            : 1;
  const int holes = flagValue(argc, argv, "--holes") != nullptr
                        ? std::stoi(flagValue(argc, argv, "--holes"))
                        : 2;
  auto params = scenario::paramsForNodeCount(n + n / 3, seed);
  const double side = params.width;
  const double positions[][2] = {{0.30, 0.30}, {0.68, 0.62}, {0.70, 0.25}, {0.28, 0.70}};
  for (int h = 0; h < holes && h < 4; ++h) {
    params.obstacles.push_back(scenario::regularPolygonObstacle(
        {positions[h][0] * side, positions[h][1] * side}, 0.10 * side, 5 + h,
        0.3 * h));
  }
  const auto sc = scenario::makeScenario(params);
  if (!io::saveScenario(out, sc)) {
    std::fprintf(stderr, "cannot write %s\n", out);
    return 1;
  }
  std::printf("wrote %s: %zu nodes, %zu obstacles\n", out, sc.points.size(),
              sc.obstacles.size());
  return 0;
}

int cmdAnalyze(int argc, char** argv) {
  if (argc < 1) return usage();
  const auto sc = io::loadScenario(argv[0]);
  if (!sc) {
    std::fprintf(stderr, "cannot read %s\n", argv[0]);
    return 1;
  }
  core::HybridNetwork net(sc->points, sc->radius);
  std::printf("nodes:            %zu\n", net.udg().numNodes());
  std::printf("udg edges:        %zu (max degree %d)\n", net.udg().numEdges(),
              net.udg().maxDegree());
  std::printf("ldel edges:       %zu (planar: %s)\n", net.ldel().numEdges(),
              net.ldel().isPlanarEmbedding() ? "yes" : "no");
  std::printf("radio holes:      %zu (hulls disjoint: %s)\n", net.holes().holes.size(),
              net.convexHullsDisjoint() ? "yes" : "no");
  for (const auto& a : net.abstractions()) {
    const auto& h = net.holes().holes[static_cast<std::size_t>(a.holeIndex)];
    if (h.ring.size() < 8) continue;
    std::printf("  hole %2d: ring %3zu, lch %3zu, hull %3zu, P=%.1f, L=%.1f, bays %zu%s\n",
                a.holeIndex, h.ring.size(), a.locallyConvexHull.size(),
                a.hullNodes.size(), a.perimeter, a.bboxCircumference, a.bays.size(),
                h.outer ? " (outer)" : "");
  }
  const auto rep = net.storageReport();
  std::printf("storage: hull %ld, boundary %ld, other %ld refs\n", rep.maxHullNodeStorage,
              rep.maxBoundaryNodeStorage, rep.maxOtherNodeStorage);
  return 0;
}

int cmdRoute(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto sc = io::loadScenario(argv[0]);
  if (!sc) {
    std::fprintf(stderr, "cannot read %s\n", argv[0]);
    return 1;
  }
  core::HybridNetwork net(sc->points, sc->radius);
  const int s = std::stoi(argv[1]);
  const int t = std::stoi(argv[2]);
  if (s < 0 || t < 0 || s >= static_cast<int>(net.udg().numNodes()) ||
      t >= static_cast<int>(net.udg().numNodes())) {
    std::fprintf(stderr, "node ids out of range (0..%zu)\n", net.udg().numNodes() - 1);
    return 1;
  }
  const char* rn = flagValue(argc, argv, "--router");
  const std::string routerName = rn != nullptr ? rn : "hull-delaunay";
  auto router = makeNamedRouter(net, routerName);
  if (!router) {
    std::fprintf(stderr, "unknown router '%s'\n", routerName.c_str());
    return 1;
  }
  const auto r = router->route(s, t);
  std::printf("router:    %s\n", router->name().c_str());
  std::printf("delivered: %s\n", r.delivered ? "yes" : "no");
  std::printf("hops:      %zu\n", r.hops());
  std::printf("length:    %.3f\n", net.ldel().pathLength(r.path));
  std::printf("optimal:   %.3f\n", net.shortestUdgDistance(s, t));
  std::printf("stretch:   %.3f\n", net.stretch(r, s, t));
  std::printf("fallbacks: %d\n", r.fallbacks);
  std::printf("path:");
  for (graph::NodeId v : r.path) std::printf(" %d", v);
  std::printf("\n");
  return r.delivered ? 0 : 3;
}

int cmdSvg(int argc, char** argv) {
  if (argc < 2) return usage();
  const auto sc = io::loadScenario(argv[0]);
  if (!sc) {
    std::fprintf(stderr, "cannot read %s\n", argv[0]);
    return 1;
  }
  core::HybridNetwork net(sc->points, sc->radius);
  io::SvgExporter svg(net);
  svg.drawObstacles(sc->obstacles).drawNetwork(false).drawHoles().drawAbstractions();
  for (int i = 0; i + 2 < argc; ++i) {
    if (std::strcmp(argv[i], "--route") == 0) {
      const int s = std::stoi(argv[i + 1]);
      const int t = std::stoi(argv[i + 2]);
      svg.drawRoute(net.route(s, t), "#2c8a4b");
    }
  }
  if (!svg.save(argv[1])) {
    std::fprintf(stderr, "cannot write %s\n", argv[1]);
    return 1;
  }
  std::printf("wrote %s\n", argv[1]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "generate") return cmdGenerate(argc - 2, argv + 2);
  if (cmd == "analyze") return cmdAnalyze(argc - 2, argv + 2);
  if (cmd == "route") return cmdRoute(argc - 2, argv + 2);
  if (cmd == "svg") return cmdSvg(argc - 2, argv + 2);
  return usage();
}
