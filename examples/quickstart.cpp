// Quickstart: build a hybrid network over an ad hoc deployment with a
// radio hole, inspect the abstraction, and route a few messages.
//
//   $ ./example_quickstart
//
// Walks through the full public API: scenario generation, the
// HybridNetwork pipeline (UDG -> LDel^2 -> holes -> convex hulls ->
// overlay), routing with the paper's protocol, and an SVG snapshot.

#include <cstdio>
#include <random>

#include "core/hybrid_network.hpp"
#include "io/svg_export.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

using namespace hybrid;

int main() {
  // 1. A 20x20 deployment with one hexagonal building in the middle.
  scenario::ScenarioParams params;
  params.width = params.height = 20.0;
  params.seed = 7;
  params.obstacles.push_back(scenario::regularPolygonObstacle({10.0, 10.0}, 3.0, 6));
  const scenario::Scenario sc = scenario::makeScenario(params);
  std::printf("deployment: %zu nodes, unit radius %.1f\n", sc.points.size(), sc.radius);

  // 2. The full pipeline runs in the constructor.
  core::HybridNetwork net(sc.points);
  std::printf("UDG edges: %zu | LDel^2 edges: %zu (planar: %s)\n", net.udg().numEdges(),
              net.ldel().numEdges(), net.ldel().isPlanarEmbedding() ? "yes" : "no");

  // 3. Inspect the radio-hole abstraction.
  for (const auto& a : net.abstractions()) {
    const auto& hole = net.holes().holes[static_cast<std::size_t>(a.holeIndex)];
    if (hole.ring.size() < 10) continue;  // skip tiny boundary artifacts
    std::printf("hole %d: %zu boundary nodes, perimeter %.1f -> hull of %zu nodes "
                "(bbox circumference %.1f), %zu bay areas\n",
                a.holeIndex, hole.ring.size(), a.perimeter, a.hullNodes.size(),
                a.bboxCircumference, a.bays.size());
  }
  const auto storage = net.storageReport();
  std::printf("storage: hull nodes keep %ld refs, boundary nodes %ld, others %ld\n",
              storage.maxHullNodeStorage, storage.maxBoundaryNodeStorage,
              storage.maxOtherNodeStorage);

  // 4. Route some messages across the hole.
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  routing::RouteResult shown;
  int shownS = 0;
  int shownT = 0;
  for (int i = 0; i < 5; ++i) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = net.route(s, t);
    std::printf("route %d -> %d: %s, %zu hops, stretch %.3f\n", s, t,
                r.delivered ? "delivered" : "LOST", r.hops(), net.stretch(r, s, t));
    if (r.delivered && r.hops() > shown.hops()) {
      shown = r;
      shownS = s;
      shownT = t;
    }
  }

  // 5. Snapshot everything as SVG.
  io::SvgExporter svg(net);
  svg.drawNetwork().drawHoles().drawAbstractions().drawRoute(shown, "#2c8a4b");
  if (svg.save("quickstart.svg")) {
    std::printf("wrote quickstart.svg (longest route: %d -> %d)\n", shownS, shownT);
  }
  return 0;
}
