#include "abstraction/bbox_overlay.hpp"

#include <algorithm>
#include <numeric>

#include "geom/vec2.hpp"

namespace hybrid::abstraction {
namespace {

/// Union-find over abstraction indices, used to merge intersecting boxes.
struct Dsu {
  std::vector<int> parent;
  explicit Dsu(int n) : parent(static_cast<std::size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (b < a) std::swap(a, b);  // Deterministic: smaller index wins as root.
    parent[static_cast<std::size_t>(b)] = a;
    return true;
  }
};

/// Ring node nearest (squared Euclidean) to a target point; ties break on
/// the smaller ring index so the selection is deterministic.
std::size_t nearestRingIndex(const graph::GeometricGraph& ldel,
                             const std::vector<graph::NodeId>& ring, geom::Vec2 target) {
  std::size_t best = 0;
  double bestD = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const geom::Vec2 p = ldel.position(ring[i]);
    const double d = geom::dist2(p, target);
    if (d < bestD) {
      bestD = d;
      best = i;
    }
  }
  return best;
}

/// Corner/projection rule: the nearest ring node to each of the four box
/// corners plus the ring nodes realizing the four axis extremes of the
/// hole itself. Deduped and returned in ring order — at most 8 sites.
std::vector<graph::NodeId> selectHoleSites(const graph::GeometricGraph& ldel,
                                           const std::vector<graph::NodeId>& ring,
                                           const geom::BBox& box) {
  if (ring.empty()) return {};
  std::vector<std::size_t> picks;
  picks.reserve(8);
  const geom::Vec2 corners[4] = {box.lo, {box.hi.x, box.lo.y}, box.hi, {box.lo.x, box.hi.y}};
  for (const geom::Vec2 c : corners) picks.push_back(nearestRingIndex(ldel, ring, c));
  // Axis extremes of the hole boundary (projection onto the box sides).
  std::size_t minX = 0, maxX = 0, minY = 0, maxY = 0;
  for (std::size_t i = 1; i < ring.size(); ++i) {
    const geom::Vec2 p = ldel.position(ring[i]);
    if (p.x < ldel.position(ring[minX]).x) minX = i;
    if (p.x > ldel.position(ring[maxX]).x) maxX = i;
    if (p.y < ldel.position(ring[minY]).y) minY = i;
    if (p.y > ldel.position(ring[maxY]).y) maxY = i;
  }
  picks.push_back(minX);
  picks.push_back(maxX);
  picks.push_back(minY);
  picks.push_back(maxY);
  std::sort(picks.begin(), picks.end());
  picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
  std::vector<graph::NodeId> sites;
  sites.reserve(picks.size());
  for (const std::size_t i : picks) sites.push_back(ring[i]);
  return sites;
}

}  // namespace

std::vector<BBoxGroup> buildBBoxOverlay(const graph::GeometricGraph& ldel,
                                        const holes::HoleAnalysis& analysis,
                                        const std::vector<HoleAbstraction>& abstractions) {
  const int n = static_cast<int>(abstractions.size());
  if (n == 0) return {};

  // Per-hole boxes over the boundary ring (not just the hull nodes: the
  // box must cover the whole hole so merged boxes stay obstacle-covering).
  std::vector<geom::BBox> boxes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& ring = analysis.holes[static_cast<std::size_t>(
        abstractions[static_cast<std::size_t>(i)].holeIndex)].ring;
    for (const graph::NodeId v : ring) boxes[static_cast<std::size_t>(i)].expand(ldel.position(v));
  }

  // Merge intersecting boxes to a fixpoint: a union box can grow into a
  // box it did not previously touch, so repeat until no pass merges.
  Dsu dsu(n);
  std::vector<geom::BBox> groupBox = boxes;
  bool merged = true;
  while (merged) {
    merged = false;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const int ri = dsu.find(i);
        const int rj = dsu.find(j);
        if (ri == rj) continue;
        if (!groupBox[static_cast<std::size_t>(ri)].intersects(
                groupBox[static_cast<std::size_t>(rj)]))
          continue;
        dsu.unite(ri, rj);
        const int root = dsu.find(ri);
        geom::BBox u = groupBox[static_cast<std::size_t>(ri)];
        u.expand(groupBox[static_cast<std::size_t>(rj)].lo);
        u.expand(groupBox[static_cast<std::size_t>(rj)].hi);
        groupBox[static_cast<std::size_t>(root)] = u;
        merged = true;
      }
    }
  }

  // Assemble groups ordered by smallest member index.
  std::vector<BBoxGroup> groups;
  std::vector<int> groupOf(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const int root = dsu.find(i);
    if (groupOf[static_cast<std::size_t>(root)] < 0) {
      groupOf[static_cast<std::size_t>(root)] = static_cast<int>(groups.size());
      BBoxGroup g;
      g.box = groupBox[static_cast<std::size_t>(root)];
      groups.push_back(std::move(g));
    }
    groups[static_cast<std::size_t>(groupOf[static_cast<std::size_t>(root)])].members.push_back(i);
  }

  // Site selection against the final merged box of each group.
  for (auto& g : groups) {
    g.holeSites.reserve(g.members.size());
    for (const int m : g.members) {
      BBoxHoleSites hs;
      hs.abstraction = m;
      const auto& ring = analysis.holes[static_cast<std::size_t>(
          abstractions[static_cast<std::size_t>(m)].holeIndex)].ring;
      hs.sites = selectHoleSites(ldel, ring, g.box);
      g.holeSites.push_back(std::move(hs));
    }
  }
  return groups;
}

}  // namespace hybrid::abstraction
