#pragma once

#include <numbers>
#include <vector>

#include "abstraction/hole_abstraction.hpp"
#include "geom/bbox.hpp"

namespace hybrid::abstraction {

/// Bounding-box hole abstraction (Castenow-Kolb-Scheideler,
/// arXiv:1810.05453): every hole is abstracted by the axis-aligned
/// bounding box of its boundary ring, intersecting boxes are merged to a
/// fixpoint, and each member hole contributes O(1) overlay sites chosen by
/// the corner/projection rule. Unlike the convex-hull abstraction of the
/// source paper, the resulting boxes are pairwise disjoint by
/// construction, so the overlay stays competitive even when hole hulls
/// interlock (the `hull_intersect` family the hull router falls back on).

/// Competitive-bound constants of the box overlay, scaled from the hull
/// router's 17.7 (visibility) / 35.37 (overlay Delaunay): a box detour is
/// at most its circumference L(box) = 2(w + h), and since the hull of the
/// boxed hole satisfies P(hull) >= 2 sqrt(w^2 + h^2) >= sqrt(2) (w + h),
/// L(box) <= sqrt(2) P(hull) — every hull-perimeter term in the stretch
/// argument grows by at most sqrt(2). Validated empirically by the
/// bbox_parity oracle and bench/e21 (observed stretch stays far below).
inline constexpr double kBBoxVisibilityBound = 17.7 * std::numbers::sqrt2;
inline constexpr double kBBoxDelaunayBound = 35.37 * std::numbers::sqrt2;

/// The O(1) overlay sites one hole contributes to its (merged) box.
struct BBoxHoleSites {
  int abstraction = -1;  ///< Index into the abstraction list.
  /// Selected ring nodes, deduped, in ring order: the nearest boundary
  /// node to each box corner plus the boundary nodes realizing the four
  /// axis extremes — at most 8 per hole (the corner/projection rule).
  std::vector<graph::NodeId> sites;
};

/// One merged axis-aligned box covering one or more holes whose boxes
/// transitively intersect.
struct BBoxGroup {
  geom::BBox box;            ///< Union box of the member holes.
  std::vector<int> members;  ///< Abstraction indices merged into this box.
  std::vector<BBoxHoleSites> holeSites;  ///< One entry per member.
};

/// Builds the bounding-box abstraction: one box per hole, merged to a
/// fixpoint (union boxes can create new intersections), then the per-hole
/// site selection. Deterministic: groups are ordered by their smallest
/// member index, members and sites in ring order.
std::vector<BBoxGroup> buildBBoxOverlay(const graph::GeometricGraph& ldel,
                                        const holes::HoleAnalysis& analysis,
                                        const std::vector<HoleAbstraction>& abstractions);

}  // namespace hybrid::abstraction
