#include "abstraction/dominating_set.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace hybrid::abstraction {

std::vector<graph::NodeId> pathDominatingSet(const std::vector<graph::NodeId>& chain) {
  std::vector<graph::NodeId> ds;
  // Picking positions 1, 4, 7, ... dominates a path optimally; the final
  // node is added when the tail would otherwise be uncovered.
  for (std::size_t i = 1; i < chain.size(); i += 3) ds.push_back(chain[i]);
  if (!chain.empty() && chain.size() % 3 == 1) ds.push_back(chain.back());
  if (chain.size() == 1) ds.assign(1, chain[0]);
  return ds;
}

std::vector<graph::NodeId> greedyDominatingSet(const graph::GeometricGraph& g,
                                               const std::vector<graph::NodeId>& targets) {
  std::unordered_set<graph::NodeId> uncovered(targets.begin(), targets.end());
  const std::unordered_set<graph::NodeId> targetSet(targets.begin(), targets.end());
  std::vector<graph::NodeId> ds;
  while (!uncovered.empty()) {
    graph::NodeId best = -1;
    std::size_t bestGain = 0;
    for (graph::NodeId c : targets) {
      std::size_t gain = uncovered.contains(c) ? 1 : 0;
      for (graph::NodeId nb : g.neighbors(c)) {
        if (targetSet.contains(nb) && uncovered.contains(nb)) ++gain;
      }
      if (gain > bestGain || (gain == bestGain && gain > 0 && c < best)) {
        bestGain = gain;
        best = c;
      }
    }
    if (best < 0) break;  // disconnected targets; should not happen
    ds.push_back(best);
    uncovered.erase(best);
    for (graph::NodeId nb : g.neighbors(best)) uncovered.erase(nb);
  }
  std::sort(ds.begin(), ds.end());
  return ds;
}

bool dominatesChain(const std::vector<graph::NodeId>& chain,
                    const std::vector<graph::NodeId>& ds) {
  const std::set<graph::NodeId> dset(ds.begin(), ds.end());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (dset.contains(chain[i])) continue;
    const bool prevIn = i > 0 && dset.contains(chain[i - 1]);
    const bool nextIn = i + 1 < chain.size() && dset.contains(chain[i + 1]);
    if (!prevIn && !nextIn) return false;
  }
  return true;
}

}  // namespace hybrid::abstraction
