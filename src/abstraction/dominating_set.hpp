#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace hybrid::abstraction {

/// Dominating set of a path of nodes (a bay chain): every chain node is in
/// the set or adjacent (on the chain) to a member. The greedy every-third
/// rule is optimal for paths: |DS| = ceil(k / 3).
std::vector<graph::NodeId> pathDominatingSet(const std::vector<graph::NodeId>& chain);

/// Greedy dominating set of an arbitrary graph restricted to `targets`
/// (every target must be dominated; members are chosen from targets).
/// Classic ln(Delta)-approximation.
std::vector<graph::NodeId> greedyDominatingSet(const graph::GeometricGraph& g,
                                               const std::vector<graph::NodeId>& targets);

/// Verifies the dominating-set property of `ds` over the chain.
bool dominatesChain(const std::vector<graph::NodeId>& chain,
                    const std::vector<graph::NodeId>& ds);

/// Dominating sets for every bay of every abstraction, flattened in
/// (abstraction, bay) iteration order.
struct HoleAbstraction;

}  // namespace hybrid::abstraction
