#include "abstraction/hole_abstraction.hpp"

#include <algorithm>
#include <set>

#include "geom/angle.hpp"
#include "geom/simplify.hpp"

namespace hybrid::abstraction {

std::vector<graph::NodeId> locallyConvexHullOfRing(const graph::GeometricGraph& g,
                                                   std::vector<graph::NodeId> ring,
                                                   double radius) {
  bool changed = true;
  while (changed && ring.size() > 3) {
    changed = false;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const std::size_t n = ring.size();
      const graph::NodeId u = ring[(i + n - 1) % n];
      const graph::NodeId v = ring[i];
      const graph::NodeId w = ring[(i + 1) % n];
      if (u == v || v == w) {  // repeated vertices from face walks
        ring.erase(ring.begin() + static_cast<long>(i));
        changed = true;
        break;
      }
      const double turn = geom::signedTurnAngle(g.position(u), g.position(v), g.position(w));
      // The ring runs ccw around the hole, so a non-left turn means an
      // interior angle >= 180 degrees (Def. 4.1 condition 2).
      if (turn <= 0.0 && g.edgeLength(u, w) <= radius) {
        ring.erase(ring.begin() + static_cast<long>(i));
        changed = true;
        break;
      }
    }
  }
  return ring;
}

std::vector<HoleAbstraction> buildAbstractions(const graph::GeometricGraph& ldel,
                                               const holes::HoleAnalysis& analysis,
                                               double radius) {
  std::vector<HoleAbstraction> out;
  out.reserve(analysis.holes.size());
  for (std::size_t hi = 0; hi < analysis.holes.size(); ++hi) {
    const holes::Hole& hole = analysis.holes[hi];
    HoleAbstraction a;
    a.holeIndex = static_cast<int>(hi);
    a.perimeter = hole.perimeter();

    const auto hullOfPositions = geom::convexHullIndices(hole.polygon.vertices());
    std::set<graph::NodeId> hullSet;
    // Hull nodes in convex-hull cyclic (ccw) order, so that consecutive
    // hullNodes are genuinely adjacent hull corners (the overlay backbone
    // relies on this; the ring's first-occurrence order can differ on
    // pinched walks).
    for (int idx : hullOfPositions) {
      const graph::NodeId v = hole.ring[static_cast<std::size_t>(idx)];
      if (hullSet.insert(v).second) a.hullNodes.push_back(v);
    }
    std::vector<geom::Vec2> hullPts;
    hullPts.reserve(a.hullNodes.size());
    for (graph::NodeId v : a.hullNodes) hullPts.push_back(ldel.position(v));
    a.hullPolygon = geom::Polygon(hullPts);

    // Bay construction walks the ring, so it needs the hull occurrences in
    // ring order (first occurrence).
    std::vector<std::size_t> hullRingIndices;
    std::set<graph::NodeId> seen;
    for (std::size_t i = 0; i < hole.ring.size(); ++i) {
      const graph::NodeId v = hole.ring[i];
      if (hullSet.contains(v) && !seen.contains(v)) {
        seen.insert(v);
        hullRingIndices.push_back(i);
      }
    }
    a.bboxCircumference = a.hullPolygon.boundingBox().circumference();

    // Bays: ring stretches strictly between consecutive hull occurrences.
    const std::size_t rn = hole.ring.size();
    for (std::size_t j = 0; j < hullRingIndices.size(); ++j) {
      const std::size_t from = hullRingIndices[j];
      const std::size_t to = hullRingIndices[(j + 1) % hullRingIndices.size()];
      BayArea bay;
      bay.hullFrom = hole.ring[from];
      bay.hullTo = hole.ring[to];
      for (std::size_t i = (from + 1) % rn; i != to; i = (i + 1) % rn) {
        bay.chain.push_back(hole.ring[i]);
      }
      if (!bay.chain.empty()) a.bays.push_back(std::move(bay));
    }

    a.locallyConvexHull = locallyConvexHullOfRing(ldel, hole.ring, radius);
    for (int idx : geom::douglasPeuckerRing(hole.polygon.vertices(), radius / 2.0)) {
      a.simplifiedBoundary.push_back(hole.ring[static_cast<std::size_t>(idx)]);
    }
    out.push_back(std::move(a));
  }
  return out;
}

StorageReport accountStorage(const graph::GeometricGraph& ldel,
                             const holes::HoleAnalysis& analysis,
                             const std::vector<HoleAbstraction>& abstractions,
                             const std::vector<std::vector<graph::NodeId>>& bayDominatingSets) {
  StorageReport rep;
  rep.perNode.assign(ldel.numNodes(), 1);  // every node knows itself/greedy state

  std::set<graph::NodeId> hullNodes;
  for (const auto& a : abstractions) {
    hullNodes.insert(a.hullNodes.begin(), a.hullNodes.end());
  }
  rep.totalHullNodes = static_cast<long>(hullNodes.size());

  // Boundary nodes: two hull-node references plus their bay's dominating
  // set (used by the case-5 routing of section 4.4).
  std::size_t bayIdx = 0;
  for (const auto& a : abstractions) {
    for (const auto& bay : a.bays) {
      const long ds = bayIdx < bayDominatingSets.size()
                          ? static_cast<long>(bayDominatingSets[bayIdx].size())
                          : 0;
      for (graph::NodeId v : bay.chain) {
        rep.perNode[static_cast<std::size_t>(v)] =
            std::max(rep.perNode[static_cast<std::size_t>(v)], 2 + ds);
      }
      ++bayIdx;
    }
  }
  // Hull nodes: the overlay Delaunay graph over all hull nodes.
  for (graph::NodeId v : hullNodes) {
    rep.perNode[static_cast<std::size_t>(v)] = rep.totalHullNodes;
  }

  for (std::size_t v = 0; v < ldel.numNodes(); ++v) {
    const bool onBoundary = analysis.isHoleNode[v] != 0;
    const bool onHull = hullNodes.contains(static_cast<graph::NodeId>(v));
    if (onHull) {
      rep.maxHullNodeStorage = std::max(rep.maxHullNodeStorage, rep.perNode[v]);
    } else if (onBoundary) {
      rep.maxBoundaryNodeStorage = std::max(rep.maxBoundaryNodeStorage, rep.perNode[v]);
    } else {
      rep.maxOtherNodeStorage = std::max(rep.maxOtherNodeStorage, rep.perNode[v]);
    }
  }
  return rep;
}

}  // namespace hybrid::abstraction
