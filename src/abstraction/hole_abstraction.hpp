#pragma once

#include <vector>

#include "geom/polygon.hpp"
#include "holes/hole_detection.hpp"

namespace hybrid::abstraction {

/// A bay area of a hole (paper section 4.3): the stretch of the hole ring
/// strictly between two hull nodes that are adjacent on the convex hull.
struct BayArea {
  graph::NodeId hullFrom = -1;  ///< Convex hull node opening the bay.
  graph::NodeId hullTo = -1;    ///< Convex hull node closing the bay.
  std::vector<graph::NodeId> chain;  ///< Ring nodes strictly inside the bay.
};

/// The compact abstraction of one radio hole (paper section 4).
struct HoleAbstraction {
  int holeIndex = -1;
  /// Ring nodes on the convex hull of the hole, in ring (ccw) order.
  std::vector<graph::NodeId> hullNodes;
  geom::Polygon hullPolygon;
  /// The locally convex hull (Def. 4.1): ring subsequence with all
  /// remaining reflex shortcuts longer than the radius.
  std::vector<graph::NodeId> locallyConvexHull;
  /// Extension: Douglas-Peucker simplification of the ring (tolerance
  /// radius/2) — an abstraction between the full boundary and the locally
  /// convex hull, for the ablation in E1.
  std::vector<graph::NodeId> simplifiedBoundary;
  /// One bay per consecutive hull pair that has intermediate ring nodes.
  std::vector<BayArea> bays;
  double bboxCircumference = 0.0;  ///< L(c): circumference of the hull's bounding box.
  double perimeter = 0.0;          ///< P(h): perimeter of the hole ring.
};

/// Computes the abstraction of every hole.
std::vector<HoleAbstraction> buildAbstractions(const graph::GeometricGraph& ldel,
                                               const holes::HoleAnalysis& analysis,
                                               double radius = 1.0);

/// Computes the locally convex hull of a ring (ccw around the hole):
/// repeatedly drops a vertex v with reflex interior angle (turn to the
/// right) whose shortcut ||uw|| <= radius, until a fixpoint.
std::vector<graph::NodeId> locallyConvexHullOfRing(const graph::GeometricGraph& g,
                                                   std::vector<graph::NodeId> ring,
                                                   double radius);

/// Per-node storage accounting matching Theorem 1.2. Units are "stored
/// node references".
struct StorageReport {
  std::vector<long> perNode;
  long maxHullNodeStorage = 0;
  long maxBoundaryNodeStorage = 0;
  long maxOtherNodeStorage = 0;
  long totalHullNodes = 0;
};

/// Counts what each node has to remember for the routing protocol:
/// hull nodes keep the full overlay (all hull nodes of all holes), boundary
/// nodes keep their two neighboring hull nodes plus their bay's dominating
/// set, and every other node keeps O(1).
StorageReport accountStorage(const graph::GeometricGraph& ldel,
                             const holes::HoleAnalysis& analysis,
                             const std::vector<HoleAbstraction>& abstractions,
                             const std::vector<std::vector<graph::NodeId>>& bayDominatingSets);

}  // namespace hybrid::abstraction
