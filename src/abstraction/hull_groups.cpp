#include "abstraction/hull_groups.hpp"

#include <map>

#include "geom/segment.hpp"
#include "graph/dsu.hpp"

namespace hybrid::abstraction {

bool convexPolygonsIntersect(const geom::Polygon& a, const geom::Polygon& b) {
  if (a.size() < 3 || b.size() < 3) return false;
  if (!a.boundingBox().intersects(b.boundingBox())) return false;
  for (const geom::Vec2 p : b.vertices()) {
    if (a.contains(p)) return true;
  }
  for (const geom::Vec2 p : a.vertices()) {
    if (b.contains(p)) return true;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (geom::segmentsIntersect(a.edge(i), b.edge(j))) return true;
    }
  }
  return false;
}

std::vector<HullGroup> mergeIntersectingHulls(
    const graph::GeometricGraph& ldel,
    const std::vector<HoleAbstraction>& abstractions) {
  const int n = static_cast<int>(abstractions.size());
  graph::DisjointSetUnion dsu(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (convexPolygonsIntersect(abstractions[static_cast<std::size_t>(i)].hullPolygon,
                                  abstractions[static_cast<std::size_t>(j)].hullPolygon)) {
        dsu.unite(i, j);
      }
    }
  }

  std::map<int, HullGroup> byRoot;
  for (int i = 0; i < n; ++i) byRoot[dsu.find(i)].members.push_back(i);

  std::vector<HullGroup> out;
  out.reserve(byRoot.size());
  for (auto& [root, group] : byRoot) {
    // Merged hull: convex hull of all member hull nodes.
    std::vector<graph::NodeId> candidates;
    std::vector<geom::Vec2> pts;
    for (int m : group.members) {
      for (graph::NodeId v : abstractions[static_cast<std::size_t>(m)].hullNodes) {
        candidates.push_back(v);
        pts.push_back(ldel.position(v));
      }
    }
    const auto hullIdx = geom::convexHullIndices(pts);
    std::vector<geom::Vec2> hullPts;
    for (int idx : hullIdx) {
      group.hullNodes.push_back(candidates[static_cast<std::size_t>(idx)]);
      hullPts.push_back(pts[static_cast<std::size_t>(idx)]);
    }
    group.hullPolygon = geom::Polygon(std::move(hullPts));
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace hybrid::abstraction
