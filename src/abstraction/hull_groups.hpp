#pragma once

#include <vector>

#include "abstraction/hole_abstraction.hpp"

namespace hybrid::abstraction {

/// Extension beyond the paper (its §7 names this as future work): when the
/// convex hulls of radio holes intersect, the §4 routing protocol loses
/// its guarantees. We merge intersecting hulls transitively into *hull
/// groups* and use the convex hull of each group as the abstraction
/// instead; the merged hull's corners are still real hull nodes, so the
/// overlay machinery applies unchanged.
struct HullGroup {
  std::vector<int> members;            ///< Abstraction indices merged here.
  std::vector<graph::NodeId> hullNodes;  ///< Corners of the merged hull (ccw).
  geom::Polygon hullPolygon;
};

/// True if the two convex polygons intersect (shared area or boundary
/// crossing; containment counts).
bool convexPolygonsIntersect(const geom::Polygon& a, const geom::Polygon& b);

/// Partitions the abstractions into maximal groups of transitively
/// intersecting hulls and computes each group's merged hull.
std::vector<HullGroup> mergeIntersectingHulls(
    const graph::GeometricGraph& ldel,
    const std::vector<HoleAbstraction>& abstractions);

}  // namespace hybrid::abstraction
