#include "core/hybrid_network.hpp"

#include "geom/segment.hpp"
#include "graph/shortest_path.hpp"

namespace hybrid::core {

HybridNetwork::HybridNetwork(std::vector<geom::Vec2> points, double radius)
    : HybridNetwork(std::move(points), [radius] {
        delaunay::LDelOptions opts;
        opts.radius = radius;
        opts.reliableRadius = radius;
        return opts;
      }()) {}

HybridNetwork::HybridNetwork(std::vector<geom::Vec2> points,
                             const delaunay::LDelOptions& options)
    : HybridNetwork(std::move(points), options, routing::HybridOptions{}, nullptr) {}

HybridNetwork::HybridNetwork(std::vector<geom::Vec2> points,
                             const delaunay::LDelOptions& options,
                             routing::HybridOptions routerOptions,
                             const routing::HybridRouter* overlayDonor)
    : radius_(options.radius) {
  ldel_ = delaunay::buildLocalizedDelaunay(points, options);
  holes_ = holes::detectHoles(ldel_.graph, radius_);
  abstractions_ = abstraction::buildAbstractions(ldel_.graph, holes_, radius_);
  subdivision_ = std::make_unique<routing::PlanarSubdivision>(ldel_.graph, holes_, radius_);
  router_ = std::make_unique<routing::HybridRouter>(ldel_.graph, holes_, abstractions_,
                                                    *subdivision_, routerOptions, overlayDonor);
}

std::unique_ptr<routing::HybridRouter> HybridNetwork::makeRouter(
    routing::HybridOptions options) const {
  return std::make_unique<routing::HybridRouter>(ldel_.graph, holes_, abstractions_,
                                                 *subdivision_, options);
}

double HybridNetwork::shortestUdgDistance(graph::NodeId s, graph::NodeId t) const {
  return graph::shortestPathLength(ldel_.udg, s, t);
}

double HybridNetwork::stretch(const routing::RouteResult& r, graph::NodeId s,
                              graph::NodeId t) const {
  if (!r.delivered) return std::numeric_limits<double>::infinity();
  const double opt = shortestUdgDistance(s, t);
  if (opt <= 0.0) return 1.0;
  return ldel_.graph.pathLength(r.path) / opt;
}

abstraction::StorageReport HybridNetwork::storageReport() const {
  return abstraction::accountStorage(ldel_.graph, holes_, abstractions_,
                                     router_->bayDominatingSets());
}

bool HybridNetwork::convexHullsDisjoint() const {
  for (std::size_t i = 0; i < abstractions_.size(); ++i) {
    const auto& a = abstractions_[i].hullPolygon;
    if (a.size() < 3) continue;
    for (std::size_t j = i + 1; j < abstractions_.size(); ++j) {
      const auto& b = abstractions_[j].hullPolygon;
      if (b.size() < 3) continue;
      if (!a.boundingBox().intersects(b.boundingBox())) continue;
      // Hulls intersect if any vertex of one is inside the other, or any
      // pair of edges crosses.
      for (const geom::Vec2 p : b.vertices()) {
        if (a.containsStrict(p)) return false;
      }
      for (const geom::Vec2 p : a.vertices()) {
        if (b.containsStrict(p)) return false;
      }
      for (std::size_t ei = 0; ei < a.size(); ++ei) {
        for (std::size_t ej = 0; ej < b.size(); ++ej) {
          if (geom::segmentsCrossProperly(a.edge(ei), b.edge(ej))) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace hybrid::core
