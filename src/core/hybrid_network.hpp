#pragma once

#include <memory>
#include <vector>

#include "abstraction/hole_abstraction.hpp"
#include "delaunay/ldel.hpp"
#include "holes/hole_detection.hpp"
#include "routing/baselines.hpp"
#include "routing/hybrid_router.hpp"
#include "routing/subdivision.hpp"

namespace hybrid::core {

/// Facade over the full pipeline of the paper:
///   points -> UDG -> LDel^2 -> radio holes -> convex hull abstraction ->
///   overlay -> competitive routing.
///
/// This is the "oracle" (centralized) computation; the distributed
/// protocols in src/protocols compute the same artifacts with message
/// passing and are cross-validated against this class in the tests.
class HybridNetwork {
 public:
  explicit HybridNetwork(std::vector<geom::Vec2> points, double radius = 1.0);
  /// Full-control constructor (custom k, QUDG radio model, ...).
  HybridNetwork(std::vector<geom::Vec2> points, const delaunay::LDelOptions& options);
  /// Epoch-snapshot constructor (serve::RouteService): builds the default
  /// router with `routerOptions`, and when `overlayDonor` (a previous
  /// epoch's router) has a byte-identical overlay plan, adopts its overlay
  /// slab instead of rebuilding the site-pair table — the incremental
  /// repair path. The donor is only read during construction.
  HybridNetwork(std::vector<geom::Vec2> points, const delaunay::LDelOptions& options,
                routing::HybridOptions routerOptions,
                const routing::HybridRouter* overlayDonor);

  const graph::GeometricGraph& udg() const { return ldel_.udg; }
  const graph::GeometricGraph& ldel() const { return ldel_.graph; }
  const delaunay::LocalizedDelaunay& ldelResult() const { return ldel_; }
  const holes::HoleAnalysis& holes() const { return holes_; }
  const std::vector<abstraction::HoleAbstraction>& abstractions() const {
    return abstractions_;
  }
  const routing::PlanarSubdivision& subdivision() const { return *subdivision_; }
  double radius() const { return radius_; }

  /// The paper's §4 router (convex hulls + overlay Delaunay by default).
  routing::HybridRouter& router() { return *router_; }
  const routing::HybridRouter& router() const { return *router_; }
  /// Builds a router with non-default abstraction/overlay choices.
  std::unique_ptr<routing::HybridRouter> makeRouter(routing::HybridOptions options) const;

  routing::RouteResult route(graph::NodeId s, graph::NodeId t) const {
    return router_->route(s, t);
  }

  /// Batched query serving on the default router (see Router::routeBatch).
  std::vector<routing::RouteResult> routeBatch(std::span<const routing::RoutePair> pairs,
                                               int threads = 1) const {
    return router_->routeBatch(pairs, threads);
  }

  /// Euclidean length of the shortest s-t path in the UDG: the d(s, t) of
  /// the competitive-ratio definition.
  double shortestUdgDistance(graph::NodeId s, graph::NodeId t) const;

  /// Stretch of a delivered route: ||path|| / d(s, t). Infinity when
  /// undelivered.
  double stretch(const routing::RouteResult& r, graph::NodeId s, graph::NodeId t) const;

  /// Storage accounting of Theorem 1.2 for the current abstraction.
  abstraction::StorageReport storageReport() const;

  /// True when no two hole convex hulls intersect (the paper's standing
  /// assumption for the §4 router).
  bool convexHullsDisjoint() const;

 private:
  double radius_;
  delaunay::LocalizedDelaunay ldel_;
  holes::HoleAnalysis holes_;
  std::vector<abstraction::HoleAbstraction> abstractions_;
  std::unique_ptr<routing::PlanarSubdivision> subdivision_;
  std::unique_ptr<routing::HybridRouter> router_;
};

}  // namespace hybrid::core
