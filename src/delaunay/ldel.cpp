#include "delaunay/ldel.hpp"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "delaunay/udg.hpp"
#include "geom/predicates.hpp"
#include "geom/segment.hpp"
#include "graph/shortest_path.hpp"
#include "spatial/grid_index.hpp"
#include "util/parallel.hpp"

namespace hybrid::delaunay {

namespace {

using geom::Vec2;

// True if the circumcircle of (a, b, c) strictly contains p (orientation
// handled internally).
bool circumcircleContains(Vec2 a, Vec2 b, Vec2 c, Vec2 p) {
  const int o = geom::orient(a, b, c);
  if (o == 0) return false;  // degenerate triangle: treat as empty
  const int ic = geom::inCircle(a, b, c, p);
  return o > 0 ? ic > 0 : ic < 0;
}

}  // namespace

namespace {

// Deterministic per-edge coin for the QUDG model.
bool dropEdge(int u, int v, unsigned seed, double p) {
  if (u > v) std::swap(u, v);
  std::uint64_t x = (static_cast<std::uint64_t>(seed) << 40) ^
                    (static_cast<std::uint64_t>(u) << 20) ^
                    static_cast<std::uint64_t>(v);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 32;
  const double r = static_cast<double>(x & 0xFFFFFFFFULL) / 4294967296.0;
  return r < p;
}

}  // namespace

LocalizedDelaunay buildLocalizedDelaunay(const std::vector<geom::Vec2>& points,
                                         const LDelOptions& opts) {
  LocalizedDelaunay out;
  out.udg = buildUnitDiskGraph(points, opts.radius);
  if (opts.dropProbability > 0.0 && opts.reliableRadius < opts.radius) {
    for (const auto& [u, v] : out.udg.edges()) {
      if (out.udg.edgeLength(u, v) > opts.reliableRadius &&
          dropEdge(u, v, opts.dropSeed, opts.dropProbability)) {
        out.udg.removeEdge(u, v);
      }
    }
  }
  out.graph = graph::GeometricGraph(points);

  const int n = static_cast<int>(points.size());
  const spatial::GridIndex grid(points, opts.radius);

  const unsigned threads = util::resolveThreads(opts.threads);

  // k-hop neighborhoods (including the node itself), as sorted vectors.
  std::vector<std::vector<int>> khop(static_cast<std::size_t>(n));
  util::parallelChunks(static_cast<std::size_t>(n), threads,
                       [&](std::size_t begin, std::size_t end, unsigned) {
                         for (std::size_t v = begin; v < end; ++v) {
                           khop[v] = graph::kHopNeighborhood(
                               out.udg, static_cast<int>(v), opts.k);
                         }
                       });

  // Gabriel edges: UDG edges whose diametral circle is empty. Only nodes
  // within ||uv||/2 of the midpoint can violate emptiness.
  const auto udgEdges = out.udg.edges();
  std::vector<std::vector<std::pair<int, int>>> gabrielPerChunk(threads);
  util::parallelChunks(
      udgEdges.size(), threads, [&](std::size_t begin, std::size_t end, unsigned chunk) {
        for (std::size_t e = begin; e < end; ++e) {
          const auto [u, v] = udgEdges[e];
          const Vec2 pu = points[static_cast<std::size_t>(u)];
          const Vec2 pv = points[static_cast<std::size_t>(v)];
          const Vec2 mid = geom::midpoint(pu, pv);
          bool empty = true;
          for (int w : grid.queryRadius(mid, geom::dist(pu, pv) / 2.0 + 1e-12)) {
            if (w == u || w == v) continue;
            if (geom::inDiametralCircle(pu, pv, points[static_cast<std::size_t>(w)])) {
              empty = false;
              break;
            }
          }
          if (empty) gabrielPerChunk[chunk].emplace_back(std::min(u, v), std::max(u, v));
        }
      });
  for (const auto& list : gabrielPerChunk) {
    for (const auto& [u, v] : list) {
      out.gabrielEdges.emplace_back(u, v);
      out.graph.addEdge(u, v);
    }
  }

  // k-localized triangles: all UDG triangles (u, v, w) whose circumcircle
  // contains no node of N_k(u) u N_k(v) u N_k(w).
  std::vector<std::vector<std::array<int, 3>>> triPerChunk(threads);
  util::parallelChunks(
      static_cast<std::size_t>(n), threads,
      [&](std::size_t begin, std::size_t end, unsigned chunk) {
        for (std::size_t uu = begin; uu < end; ++uu) {
          const int u = static_cast<int>(uu);
          const auto nbrs = out.udg.neighbors(u);
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const int v = nbrs[i];
            if (v < u) continue;
            for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
              const int w = nbrs[j];
              if (w < u || !out.udg.hasEdge(v, w)) continue;
              // Now u < v and u < w; dedupe by requiring v < w.
              const int lo = std::min(v, w);
              const int hi = std::max(v, w);

              const Vec2 pu = points[static_cast<std::size_t>(u)];
              const Vec2 pv = points[static_cast<std::size_t>(lo)];
              const Vec2 pw = points[static_cast<std::size_t>(hi)];
              bool empty = true;
              for (const int base : {u, lo, hi}) {
                for (int x : khop[static_cast<std::size_t>(base)]) {
                  if (x == u || x == lo || x == hi) continue;
                  if (circumcircleContains(pu, pv, pw,
                                           points[static_cast<std::size_t>(x)])) {
                    empty = false;
                    break;
                  }
                }
                if (!empty) break;
              }
              if (empty) triPerChunk[chunk].push_back({u, lo, hi});
            }
          }
        }
      });
  for (const auto& list : triPerChunk) {
    for (const auto& t : list) {
      out.triangles.push_back(t);
      out.graph.addEdge(t[0], t[1]);
      out.graph.addEdge(t[0], t[2]);
      out.graph.addEdge(t[1], t[2]);
    }
  }

  if (opts.planarize) {
    // LDel^k is planar for k >= 2 (Li et al.); this pass is a numerical
    // safety net and normally removes nothing. Crossing pairs are resolved
    // by dropping the longer non-Gabriel edge.
    std::unordered_set<long long> gabriel;
    for (const auto& [u, v] : out.gabrielEdges) {
      gabriel.insert(static_cast<long long>(u) * n + v);
    }
    auto isGabriel = [&](int u, int v) {
      if (u > v) std::swap(u, v);
      return gabriel.contains(static_cast<long long>(u) * n + v);
    };
    bool changed = true;
    while (changed) {
      changed = false;
      const auto edges = out.graph.edges();
      // Edges are at most `radius` long, so two edges can only cross when
      // their midpoints are within `radius`; index midpoints on a grid.
      std::vector<Vec2> mids;
      mids.reserve(edges.size());
      for (const auto& [u, v] : edges) {
        mids.push_back(geom::midpoint(points[static_cast<std::size_t>(u)],
                                      points[static_cast<std::size_t>(v)]));
      }
      const spatial::GridIndex midGrid(mids, opts.radius);
      for (std::size_t a = 0; a < edges.size() && !changed; ++a) {
        const geom::Segment sa{points[static_cast<std::size_t>(edges[a].first)],
                               points[static_cast<std::size_t>(edges[a].second)]};
        for (int bi : midGrid.neighborsOf(static_cast<int>(a), opts.radius)) {
          const auto b = static_cast<std::size_t>(bi);
          if (b <= a) continue;
          if (edges[a].first == edges[b].first || edges[a].first == edges[b].second ||
              edges[a].second == edges[b].first || edges[a].second == edges[b].second) {
            continue;
          }
          const geom::Segment sb{points[static_cast<std::size_t>(edges[b].first)],
                                 points[static_cast<std::size_t>(edges[b].second)]};
          if (!geom::segmentsCrossProperly(sa, sb)) continue;
          const bool dropA = !isGabriel(edges[a].first, edges[a].second) &&
                             (isGabriel(edges[b].first, edges[b].second) ||
                              sa.length() >= sb.length());
          const auto& victim = dropA ? edges[a] : edges[b];
          out.graph.removeEdge(victim.first, victim.second);
          ++out.removedCrossings;
          changed = true;
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace hybrid::delaunay
