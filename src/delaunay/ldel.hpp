#pragma once

#include <array>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/graph.hpp"

namespace hybrid::delaunay {

/// Result of the k-localized Delaunay construction (paper Definitions
/// 2.2/2.3). The graph contains all edges of k-localized triangles plus all
/// Gabriel edges; for k >= 2 it is planar (Li et al.) and a 1.998-spanner of
/// the unit disk graph (Xia).
struct LocalizedDelaunay {
  graph::GeometricGraph graph;                 ///< LDel^k(V) as a geometric graph.
  graph::GeometricGraph udg;                   ///< The underlying unit disk graph.
  std::vector<std::array<int, 3>> triangles;   ///< k-localized triangles (sorted ids).
  std::vector<std::pair<int, int>> gabrielEdges;  ///< Gabriel edges (u < v).
  int removedCrossings = 0;  ///< Edges dropped by the safety planarization.
};

/// Options for the construction.
struct LDelOptions {
  int k = 2;             ///< Hop locality of the emptiness test.
  double radius = 1.0;   ///< Unit disk (transmission) radius.
  bool planarize = true; ///< Drop crossing non-Gabriel edges if any remain.

  /// Quasi-unit-disk (QUDG) radio model: links shorter than
  /// `reliableRadius` always exist; links in (reliableRadius, radius] are
  /// dropped independently with `dropProbability` (deterministic per edge
  /// given `dropSeed`). With dropProbability 0 this is the plain UDG.
  /// Models radio irregularity; the paper's UDG theorems do not cover it,
  /// so this powers the robustness study (bench/e13_qudg).
  double reliableRadius = 1.0;
  double dropProbability = 0.0;
  unsigned dropSeed = 1;

  /// Worker threads for the construction (k-hop neighborhoods, Gabriel
  /// and triangle tests). 0 = hardware concurrency. Chunked merging keeps
  /// the result bit-identical to a single-threaded build.
  int threads = 0;
};

/// Builds LDel^k(V). Each node's triangle test inspects only the k-hop
/// neighborhood in the UDG, mirroring the distributed protocol of Li et al.
/// (paper section 5.1), executed here centrally.
LocalizedDelaunay buildLocalizedDelaunay(const std::vector<geom::Vec2>& points,
                                         const LDelOptions& opts = {});

}  // namespace hybrid::delaunay
