#include "delaunay/triangulation.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "geom/bbox.hpp"
#include "geom/predicates.hpp"

namespace hybrid::delaunay {

namespace {

using geom::Vec2;

// Working triangle with liveness flag; vertex order is ccw, adj[i] faces
// the edge opposite vertex i.
struct WorkTri {
  std::array<int, 3> v;
  std::array<int, 3> adj;
  bool alive = true;
};

class Builder {
 public:
  explicit Builder(const std::vector<Vec2>& input) : pts_(input) {
    const std::size_t n = input.size();
    if (n < 3) return;

    // Super-triangle far outside the data range. Exact predicates keep the
    // construction consistent; a final legalization pass (below) restores
    // the Delaunay property among finite triangles near the boundary.
    geom::BBox box = geom::BBox::of(pts_);
    const double span = std::max({box.width(), box.height(), 1.0});
    const Vec2 c = box.center();
    const double m = span * 1e4;
    superBase_ = static_cast<int>(n);
    pts_.push_back({c.x - 2.0 * m, c.y - m});
    pts_.push_back({c.x + 2.0 * m, c.y - m});
    pts_.push_back({c.x, c.y + 2.0 * m});
    tris_.push_back({{superBase_, superBase_ + 1, superBase_ + 2}, {-1, -1, -1}, true});

    for (int i = 0; i < static_cast<int>(n); ++i) insert(i);
    legalizeFinite();
  }

  std::vector<Triangle> finish() {
    // Drop dead triangles and those touching the super-triangle; remap adj.
    std::vector<int> remap(tris_.size(), -1);
    std::vector<Triangle> out;
    for (std::size_t t = 0; t < tris_.size(); ++t) {
      const WorkTri& wt = tris_[t];
      if (!wt.alive || touchesSuper(wt)) continue;
      remap[t] = static_cast<int>(out.size());
      Triangle tri;
      tri.v = wt.v;
      out.push_back(tri);
    }
    for (std::size_t t = 0; t < tris_.size(); ++t) {
      if (remap[t] < 0) continue;
      for (int i = 0; i < 3; ++i) {
        const int a = tris_[t].adj[static_cast<std::size_t>(i)];
        out[static_cast<std::size_t>(remap[t])].adj[static_cast<std::size_t>(i)] =
            (a >= 0 && remap[static_cast<std::size_t>(a)] >= 0)
                ? remap[static_cast<std::size_t>(a)]
                : -1;
      }
    }
    return out;
  }

 private:
  bool isSuper(int v) const { return superBase_ >= 0 && v >= superBase_; }
  bool touchesSuper(const WorkTri& t) const {
    return isSuper(t.v[0]) || isSuper(t.v[1]) || isSuper(t.v[2]);
  }

  // Walk from `start` to a triangle containing p (possibly on its boundary).
  int locate(int start, Vec2 p) const {
    int t = start;
    for (std::size_t guard = 0; guard < 4 * tris_.size() + 16; ++guard) {
      const WorkTri& wt = tris_[static_cast<std::size_t>(t)];
      bool moved = false;
      for (int i = 0; i < 3; ++i) {
        const Vec2 a = pts_[static_cast<std::size_t>(wt.v[static_cast<std::size_t>((i + 1) % 3)])];
        const Vec2 b = pts_[static_cast<std::size_t>(wt.v[static_cast<std::size_t>((i + 2) % 3)])];
        if (geom::orient(a, b, p) < 0) {
          const int next = wt.adj[static_cast<std::size_t>(i)];
          if (next >= 0) {
            t = next;
            moved = true;
            break;
          }
        }
      }
      if (!moved) return t;
    }
    throw std::runtime_error("Delaunay locate failed to converge (duplicate points?)");
  }

  void insert(int pi) {
    const Vec2 p = pts_[static_cast<std::size_t>(pi)];
    const int containing = locate(lastAlive_, p);

    // Grow the cavity of triangles whose circumcircle strictly contains p.
    std::vector<int> bad;
    std::vector<char> inBad(tris_.size(), 0);
    std::vector<int> stack{containing};
    inBad[static_cast<std::size_t>(containing)] = 1;
    while (!stack.empty()) {
      const int t = stack.back();
      stack.pop_back();
      bad.push_back(t);
      for (int i = 0; i < 3; ++i) {
        const int nb = tris_[static_cast<std::size_t>(t)].adj[static_cast<std::size_t>(i)];
        if (nb < 0 || inBad[static_cast<std::size_t>(nb)]) continue;
        const WorkTri& wn = tris_[static_cast<std::size_t>(nb)];
        if (geom::inCircle(pts_[static_cast<std::size_t>(wn.v[0])],
                           pts_[static_cast<std::size_t>(wn.v[1])],
                           pts_[static_cast<std::size_t>(wn.v[2])], p) > 0) {
          inBad[static_cast<std::size_t>(nb)] = 1;
          stack.push_back(nb);
        }
      }
    }

    // Boundary of the cavity: directed edges (a, b) with the cavity on the
    // left, plus the outside triangle across each.
    struct BEdge {
      int a, b, outside;
    };
    std::vector<BEdge> boundary;
    for (int t : bad) {
      const WorkTri& wt = tris_[static_cast<std::size_t>(t)];
      for (int i = 0; i < 3; ++i) {
        const int nb = wt.adj[static_cast<std::size_t>(i)];
        if (nb >= 0 && inBad[static_cast<std::size_t>(nb)]) continue;
        boundary.push_back({wt.v[static_cast<std::size_t>((i + 1) % 3)],
                            wt.v[static_cast<std::size_t>((i + 2) % 3)], nb});
      }
    }
    for (int t : bad) tris_[static_cast<std::size_t>(t)].alive = false;

    // Fan new triangles (a, b, p) around p; they inherit outside adjacency
    // across (a, b) and link to each other across the p-incident edges.
    std::map<std::pair<int, int>, std::pair<int, int>> halfEdge;  // (u,v) -> (tri, slot)
    std::vector<int> created;
    for (const BEdge& e : boundary) {
      WorkTri nt;
      nt.v = {e.a, e.b, pi};
      nt.adj = {-1, -1, e.outside};  // edge 2 = (a, b)
      const int ti = static_cast<int>(tris_.size());
      tris_.push_back(nt);
      created.push_back(ti);
      if (e.outside >= 0) {
        WorkTri& wo = tris_[static_cast<std::size_t>(e.outside)];
        for (int i = 0; i < 3; ++i) {
          if (wo.v[static_cast<std::size_t>((i + 1) % 3)] == e.b &&
              wo.v[static_cast<std::size_t>((i + 2) % 3)] == e.a) {
            wo.adj[static_cast<std::size_t>(i)] = ti;
          }
        }
      }
      halfEdge[{e.b, pi}] = {ti, 0};  // edge 0 = (b, p)
      halfEdge[{pi, e.a}] = {ti, 1};  // edge 1 = (p, a)
    }
    for (const auto& [edge, owner] : halfEdge) {
      const auto twin = halfEdge.find({edge.second, edge.first});
      if (twin != halfEdge.end()) {
        tris_[static_cast<std::size_t>(owner.first)]
            .adj[static_cast<std::size_t>(owner.second)] = twin->second.first;
      }
    }
    lastAlive_ = created.front();
  }

  // Lawson flips over finite-finite edges until locally Delaunay. This
  // repairs any boundary slivers introduced by the finite super-triangle.
  void legalizeFinite() {
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 64) {
      changed = false;
      for (std::size_t t = 0; t < tris_.size(); ++t) {
        if (!tris_[t].alive) continue;
        for (int i = 0; i < 3; ++i) {
          if (tryFlip(static_cast<int>(t), i)) {
            changed = true;
            break;
          }
        }
      }
    }
  }

  // Flips edge i of triangle t if the opposite vertex of the neighbor lies
  // strictly inside t's circumcircle (finite vertices only).
  bool tryFlip(int t, int i) {
    WorkTri& wt = tris_[static_cast<std::size_t>(t)];
    const int nb = wt.adj[static_cast<std::size_t>(i)];
    if (nb < 0) return false;
    WorkTri& wn = tris_[static_cast<std::size_t>(nb)];
    if (touchesSuper(wt) || touchesSuper(wn)) return false;

    const int a = wt.v[static_cast<std::size_t>(i)];
    const int b = wt.v[static_cast<std::size_t>((i + 1) % 3)];
    const int c = wt.v[static_cast<std::size_t>((i + 2) % 3)];
    // Neighbor's vertex not on the shared edge (b, c).
    int d = -1;
    for (int k = 0; k < 3; ++k) {
      if (wn.v[static_cast<std::size_t>(k)] != b && wn.v[static_cast<std::size_t>(k)] != c) {
        d = wn.v[static_cast<std::size_t>(k)];
      }
    }
    if (d < 0) return false;
    if (geom::inCircle(pts_[static_cast<std::size_t>(a)], pts_[static_cast<std::size_t>(b)],
                       pts_[static_cast<std::size_t>(c)],
                       pts_[static_cast<std::size_t>(d)]) <= 0) {
      return false;
    }
    // Replace triangles (a,b,c)+(d,c,b) with (a,b,d)+(a,d,c).
    const int tBC = nb;
    const int nAB = wt.adj[static_cast<std::size_t>((i + 2) % 3)];
    const int nCA = wt.adj[static_cast<std::size_t>((i + 1) % 3)];
    // Identify neighbor triangles of wn across edges (d,b) and (c,d).
    int nbDB = -1;
    int nbCD = -1;
    for (int k = 0; k < 3; ++k) {
      const int e1 = wn.v[static_cast<std::size_t>((k + 1) % 3)];
      const int e2 = wn.v[static_cast<std::size_t>((k + 2) % 3)];
      if ((e1 == d && e2 == b) || (e1 == b && e2 == d)) nbDB = wn.adj[static_cast<std::size_t>(k)];
      if ((e1 == c && e2 == d) || (e1 == d && e2 == c)) nbCD = wn.adj[static_cast<std::size_t>(k)];
    }

    wt.v = {a, b, d};
    wn.v = {a, d, c};
    // wt edges: 0:(b,d) -> nbDB, 1:(d,a) -> wn, 2:(a,b) -> nAB
    wt.adj = {nbDB, tBC, nAB};
    // wn edges: 0:(d,c) -> nbCD, 1:(c,a) -> nCA, 2:(a,d) -> t
    wn.adj = {nbCD, nCA, t};
    fixBackPointer(nbDB, tBC, t);
    fixBackPointer(nCA, t, tBC);
    lastAlive_ = t;
    return true;
  }

  void fixBackPointer(int tri, int oldNb, int newNb) {
    if (tri < 0) return;
    for (auto& a : tris_[static_cast<std::size_t>(tri)].adj) {
      if (a == oldNb) a = newNb;
    }
  }

 public:
  std::vector<Vec2> pts_;
  std::vector<WorkTri> tris_;
  int superBase_ = -1;
  int lastAlive_ = 0;
};

}  // namespace

DelaunayTriangulation::DelaunayTriangulation(const std::vector<geom::Vec2>& points)
    : pts_(points) {
  if (points.size() < 3) return;
  Builder b(points);
  tris_ = b.finish();
}

std::vector<std::pair<int, int>> DelaunayTriangulation::edges() const {
  std::vector<std::pair<int, int>> all;
  all.reserve(tris_.size() * 3);
  for (const Triangle& t : tris_) {
    for (int i = 0; i < 3; ++i) {
      int u = t.v[static_cast<std::size_t>(i)];
      int v = t.v[static_cast<std::size_t>((i + 1) % 3)];
      if (u > v) std::swap(u, v);
      all.emplace_back(u, v);
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

graph::GeometricGraph DelaunayTriangulation::toGraph() const {
  graph::GeometricGraph g(pts_);
  for (const auto& [u, v] : edges()) g.addEdge(u, v);
  return g;
}

bool DelaunayTriangulation::hasEdge(int u, int v) const {
  for (const Triangle& t : tris_) {
    for (int i = 0; i < 3; ++i) {
      const int a = t.v[static_cast<std::size_t>(i)];
      const int b = t.v[static_cast<std::size_t>((i + 1) % 3)];
      if ((a == u && b == v) || (a == v && b == u)) return true;
    }
  }
  return false;
}

}  // namespace hybrid::delaunay
