#pragma once

#include <array>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/graph.hpp"

namespace hybrid::delaunay {

/// A triangle of the triangulation. Vertices are indices into the point
/// array, in counter-clockwise order; `adj[i]` is the index of the triangle
/// sharing the edge opposite vertex i (-1 on the boundary).
struct Triangle {
  std::array<int, 3> v{-1, -1, -1};
  std::array<int, 3> adj{-1, -1, -1};
};

/// Delaunay triangulation of a planar point set, built incrementally
/// (Bowyer–Watson) with robust predicates and walking point location.
/// The input set must contain no duplicate points.
class DelaunayTriangulation {
 public:
  /// Builds the triangulation of `points` (empty and 1-point sets allowed).
  explicit DelaunayTriangulation(const std::vector<geom::Vec2>& points);

  const std::vector<geom::Vec2>& points() const { return pts_; }

  /// All finite triangles (super-triangle remnants removed), ccw.
  const std::vector<Triangle>& triangles() const { return tris_; }

  /// All Delaunay edges as (u, v) pairs with u < v (indices into points()).
  std::vector<std::pair<int, int>> edges() const;

  /// The triangulation as a geometric graph over the input points.
  graph::GeometricGraph toGraph() const;

  /// True if the edge {u, v} is a Delaunay edge.
  bool hasEdge(int u, int v) const;

 private:
  std::vector<geom::Vec2> pts_;
  std::vector<Triangle> tris_;
};

}  // namespace hybrid::delaunay
