#include "delaunay/udg.hpp"

#include "spatial/grid_index.hpp"

namespace hybrid::delaunay {

graph::GeometricGraph buildUnitDiskGraph(const std::vector<geom::Vec2>& points,
                                         double radius) {
  graph::GeometricGraph g(points);
  const spatial::GridIndex grid(points, radius);
  for (int i = 0; i < static_cast<int>(points.size()); ++i) {
    for (int j : grid.neighborsOf(i, radius)) {
      if (j > i) g.addEdge(i, j);
    }
  }
  return g;
}

}  // namespace hybrid::delaunay
