#pragma once

#include <vector>

#include "geom/vec2.hpp"
#include "graph/graph.hpp"

namespace hybrid::delaunay {

/// Unit Disk Graph of `points`: bidirected edges between all pairs at
/// Euclidean distance <= `radius` (paper Definition 1.1, radius = 1).
/// Built with a uniform grid in O(n + output) expected time.
graph::GeometricGraph buildUnitDiskGraph(const std::vector<geom::Vec2>& points,
                                         double radius = 1.0);

}  // namespace hybrid::delaunay
