#include "geom/angle.hpp"

#include <cmath>
#include <numbers>
#include <vector>

namespace hybrid::geom {

double signedTurnAngle(Vec2 u, Vec2 v, Vec2 w) {
  const Vec2 d1 = v - u;
  const Vec2 d2 = w - v;
  return std::atan2(d1.cross(d2), d1.dot(d2));
}

double ccwAngle(Vec2 u, Vec2 v, Vec2 w) {
  const double a1 = std::atan2(u.y - v.y, u.x - v.x);
  const double a2 = std::atan2(w.y - v.y, w.x - v.x);
  double a = a2 - a1;
  if (a < 0.0) a += 2.0 * std::numbers::pi;
  return a;
}

double turningSum(const std::vector<Vec2>& ring) {
  const std::size_t n = ring.size();
  if (n < 3) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += signedTurnAngle(ring[i], ring[(i + 1) % n], ring[(i + 2) % n]);
  }
  return sum;
}

double directionAngle(Vec2 a, Vec2 b) {
  double ang = std::atan2(b.y - a.y, b.x - a.x);
  if (ang < 0.0) ang += 2.0 * std::numbers::pi;
  return ang;
}

}  // namespace hybrid::geom
