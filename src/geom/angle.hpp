#pragma once

#include <vector>

#include "geom/vec2.hpp"

namespace hybrid::geom {

/// Signed turn angle in radians at v when walking u -> v -> w.
/// Positive for a left (counter-clockwise) turn, negative for a right turn,
/// 0 when walking straight on. Range (-pi, pi].
double signedTurnAngle(Vec2 u, Vec2 v, Vec2 w);

/// Interior angle at v of the wedge (u, v, w), measured counter-clockwise
/// from ray v->u to ray v->w. Range [0, 2*pi).
double ccwAngle(Vec2 u, Vec2 v, Vec2 w);

/// Sum of signed turn angles along the closed ring (in radians):
/// +2*pi for a counter-clockwise simple ring, -2*pi for clockwise.
/// Used by the distributed hole-detection protocol (paper section 5.4).
double turningSum(const std::vector<Vec2>& ring);

/// Angle of the direction a->b in [0, 2*pi).
double directionAngle(Vec2 a, Vec2 b);

}  // namespace hybrid::geom
