#pragma once

#include <limits>
#include <span>

#include "geom/vec2.hpp"

namespace hybrid::geom {

/// Axis-aligned bounding box.
struct BBox {
  Vec2 lo{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity()};
  Vec2 hi{-std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity()};

  void expand(Vec2 p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  bool empty() const { return lo.x > hi.x; }
  double width() const { return empty() ? 0.0 : hi.x - lo.x; }
  double height() const { return empty() ? 0.0 : hi.y - lo.y; }
  /// Circumference of the box; the paper's L(c) for a convex hull c.
  double circumference() const { return 2.0 * (width() + height()); }
  double area() const { return width() * height(); }
  Vec2 center() const { return midpoint(lo, hi); }

  bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  bool intersects(const BBox& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y && o.lo.y <= hi.y;
  }

  static BBox of(std::span<const Vec2> pts) {
    BBox b;
    for (Vec2 p : pts) b.expand(p);
    return b;
  }
};

}  // namespace hybrid::geom
