#include "geom/circle.hpp"

#include <algorithm>
#include <random>
#include <vector>

namespace hybrid::geom {

std::optional<Vec2> circumcenter(Vec2 a, Vec2 b, Vec2 c) {
  const Vec2 ab = b - a;
  const Vec2 ac = c - a;
  const double d = 2.0 * ab.cross(ac);
  if (d == 0.0) return std::nullopt;
  const double ab2 = ab.norm2();
  const double ac2 = ac.norm2();
  const double ux = (ac.y * ab2 - ab.y * ac2) / d;
  const double uy = (ab.x * ac2 - ac.x * ab2) / d;
  return Vec2{a.x + ux, a.y + uy};
}

std::optional<Circle> circumcircle(Vec2 a, Vec2 b, Vec2 c) {
  const auto center = circumcenter(a, b, c);
  if (!center) return std::nullopt;
  return Circle{*center, dist(*center, a)};
}

namespace {

Circle circleFrom2(Vec2 a, Vec2 b) { return {midpoint(a, b), dist(a, b) / 2.0}; }

Circle circleFrom3(Vec2 a, Vec2 b, Vec2 c) {
  if (auto cc = circumcircle(a, b, c)) return *cc;
  // Collinear: the diametral circle of the farthest pair.
  Circle best = circleFrom2(a, b);
  for (const Circle cand : {circleFrom2(a, c), circleFrom2(b, c)}) {
    if (cand.radius > best.radius) best = cand;
  }
  return best;
}

constexpr double kMecSlack = 1e-10;

bool inCircleLoose(const Circle& c, Vec2 p) {
  return dist(p, c.center) <= c.radius + kMecSlack;
}

}  // namespace

Circle smallestEnclosingCircle(std::vector<Vec2> points) {
  if (points.empty()) return {};
  std::mt19937 rng(0xC0FFEE);
  std::shuffle(points.begin(), points.end(), rng);

  Circle c{points[0], 0.0};
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (inCircleLoose(c, points[i])) continue;
    c = {points[i], 0.0};
    for (std::size_t j = 0; j < i; ++j) {
      if (inCircleLoose(c, points[j])) continue;
      c = circleFrom2(points[i], points[j]);
      for (std::size_t k = 0; k < j; ++k) {
        if (inCircleLoose(c, points[k])) continue;
        c = circleFrom3(points[i], points[j], points[k]);
      }
    }
  }
  return c;
}

}  // namespace hybrid::geom
