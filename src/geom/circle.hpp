#pragma once

#include <optional>
#include <vector>

#include "geom/vec2.hpp"

namespace hybrid::geom {

/// A circle with center and radius.
struct Circle {
  Vec2 center;
  double radius = 0.0;

  bool contains(Vec2 p) const { return dist2(p, center) <= radius * radius; }
  bool containsStrict(Vec2 p) const { return dist2(p, center) < radius * radius; }
};

/// Circumcircle of the triangle (a, b, c); nullopt when collinear.
std::optional<Circle> circumcircle(Vec2 a, Vec2 b, Vec2 c);

/// Circumcenter of the triangle (a, b, c); nullopt when collinear.
std::optional<Vec2> circumcenter(Vec2 a, Vec2 b, Vec2 c);

/// Smallest enclosing circle of a point set (Welzl, expected linear time).
Circle smallestEnclosingCircle(std::vector<Vec2> points);

}  // namespace hybrid::geom
