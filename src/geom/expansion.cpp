#include "geom/expansion.hpp"

#include <algorithm>
#include <cmath>

namespace hybrid::geom {

namespace {

// Knuth's TwoSum: x + y == a + b exactly, x = fl(a+b).
inline void twoSumCore(double a, double b, double& x, double& y) {
  x = a + b;
  const double bv = x - a;
  const double av = x - bv;
  const double br = b - bv;
  const double ar = a - av;
  y = ar + br;
}

// FastTwoSum requires |a| >= |b|.
inline void fastTwoSumCore(double a, double b, double& x, double& y) {
  x = a + b;
  const double bv = x - a;
  y = b - bv;
}

// Dekker/FMA TwoProduct: x + y == a * b exactly.
inline void twoProductCore(double a, double b, double& x, double& y) {
  x = a * b;
  y = std::fma(a, b, -x);
}

// Grow an expansion (nonoverlapping, increasing magnitude) by one double.
// Output has e.size()+1 components and is again nonoverlapping.
std::vector<double> growExpansion(const std::vector<double>& e, double b) {
  std::vector<double> h(e.size() + 1);
  double q = b;
  for (std::size_t i = 0; i < e.size(); ++i) {
    double sum = 0.0;
    double err = 0.0;
    twoSumCore(q, e[i], sum, err);
    h[i] = err;
    q = sum;
  }
  h[e.size()] = q;
  return h;
}

}  // namespace

Expansion Expansion::twoSum(double a, double b) {
  double x = 0.0;
  double y = 0.0;
  twoSumCore(a, b, x, y);
  return Expansion(std::vector<double>{y, x});
}

Expansion Expansion::twoDiff(double a, double b) { return twoSum(a, -b); }

Expansion Expansion::twoProduct(double a, double b) {
  double x = 0.0;
  double y = 0.0;
  twoProductCore(a, b, x, y);
  return Expansion(std::vector<double>{y, x});
}

Expansion Expansion::operator+(const Expansion& o) const {
  // Simple (not linear-time) expansion sum: grow by each component.
  std::vector<double> acc = comps_;
  if (acc.empty()) return o;
  for (double c : o.comps_) acc = growExpansion(acc, c);
  return Expansion(std::move(acc)).compressed();
}

Expansion Expansion::operator-(const Expansion& o) const { return *this + (-o); }

Expansion Expansion::operator-() const {
  std::vector<double> neg(comps_.size());
  std::transform(comps_.begin(), comps_.end(), neg.begin(), [](double c) { return -c; });
  return Expansion(std::move(neg));
}

Expansion Expansion::scale(double b) const {
  if (comps_.empty() || b == 0.0) return Expansion(0.0);
  // scale-expansion (Shewchuk): exact product of expansion and double.
  std::vector<double> h;
  h.reserve(comps_.size() * 2);
  double q = 0.0;
  double hh = 0.0;
  twoProductCore(comps_[0], b, q, hh);
  h.push_back(hh);
  for (std::size_t i = 1; i < comps_.size(); ++i) {
    double t1 = 0.0;
    double t0 = 0.0;
    twoProductCore(comps_[i], b, t1, t0);
    double sum = 0.0;
    double err = 0.0;
    twoSumCore(q, t0, sum, err);
    h.push_back(err);
    double newq = 0.0;
    fastTwoSumCore(t1, sum, newq, err);
    h.push_back(err);
    q = newq;
  }
  h.push_back(q);
  return Expansion(std::move(h)).compressed();
}

Expansion Expansion::operator*(const Expansion& o) const {
  Expansion acc(0.0);
  for (double c : o.comps_) acc = acc + scale(c);
  return acc;
}

int Expansion::sign() const {
  // Components are ordered by increasing magnitude; the sign of the largest
  // nonzero component is the sign of the whole expansion.
  for (auto it = comps_.rbegin(); it != comps_.rend(); ++it) {
    if (*it > 0.0) return 1;
    if (*it < 0.0) return -1;
  }
  return 0;
}

double Expansion::estimate() const {
  double s = 0.0;
  for (double c : comps_) s += c;
  return s;
}

Expansion Expansion::compressed() const {
  std::vector<double> nz;
  nz.reserve(comps_.size());
  for (double c : comps_) {
    if (c != 0.0) nz.push_back(c);
  }
  if (nz.empty()) nz.push_back(0.0);
  return Expansion(std::move(nz));
}

Expansion exactDet2(double a, double b, double c, double d) {
  return Expansion::twoProduct(a, d) - Expansion::twoProduct(b, c);
}

}  // namespace hybrid::geom
