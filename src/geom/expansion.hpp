#pragma once

#include <cstddef>
#include <vector>

namespace hybrid::geom {

/// Multi-term floating-point expansion arithmetic (Shewchuk / Priest style).
///
/// An expansion represents an exact real number as a sum of doubles whose
/// significands do not overlap. All operations here are exact provided the
/// platform implements IEEE-754 double precision with round-to-nearest,
/// which is what the robust geometric predicates in predicates.cpp rely on.
///
/// The representation is a vector of components in increasing order of
/// magnitude; zero components may appear and are harmless.
class Expansion {
 public:
  Expansion() = default;
  explicit Expansion(double v) : comps_{v} {}

  /// Exact sum of two doubles as a two-term expansion.
  static Expansion twoSum(double a, double b);
  /// Exact difference of two doubles as a two-term expansion.
  static Expansion twoDiff(double a, double b);
  /// Exact product of two doubles as a two-term expansion.
  static Expansion twoProduct(double a, double b);

  /// Exact sum of expansions.
  Expansion operator+(const Expansion& o) const;
  /// Exact difference of expansions.
  Expansion operator-(const Expansion& o) const;
  /// Exact product with a single double.
  Expansion scale(double b) const;
  /// Exact product of expansions (O(n*m) components before compression).
  Expansion operator*(const Expansion& o) const;
  Expansion operator-() const;

  /// Sign of the represented value: -1, 0 or +1.
  int sign() const;
  /// Approximate double value (sum of components, largest last).
  double estimate() const;
  /// Remove zero components and renormalize; keeps the value exact.
  Expansion compressed() const;

  std::size_t size() const { return comps_.size(); }
  const std::vector<double>& components() const { return comps_; }

 private:
  explicit Expansion(std::vector<double> comps) : comps_(std::move(comps)) {}
  std::vector<double> comps_;
};

/// det2(a,b,c,d) = a*d - b*c computed exactly.
Expansion exactDet2(double a, double b, double c, double d);

}  // namespace hybrid::geom
