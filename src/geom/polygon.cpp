#include "geom/polygon.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geom/predicates.hpp"

namespace hybrid::geom {

double Polygon::signedArea2() const {
  double s = 0.0;
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const Vec2 a = vertex(i);
    const Vec2 b = vertex(i + 1);
    s += a.cross(b);
  }
  return s;
}

double Polygon::perimeter() const {
  double s = 0.0;
  for (std::size_t i = 0; i < verts_.size(); ++i) s += edge(i).length();
  return s;
}

Vec2 Polygon::centroid() const {
  // Area-weighted centroid; falls back to vertex mean for degenerate rings.
  double a2 = 0.0;
  Vec2 c{0.0, 0.0};
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const Vec2 p = vertex(i);
    const Vec2 q = vertex(i + 1);
    const double w = p.cross(q);
    a2 += w;
    c += (p + q) * w;
  }
  if (std::abs(a2) > 1e-30) return c / (3.0 * a2);
  Vec2 mean{0.0, 0.0};
  for (Vec2 v : verts_) mean += v;
  return verts_.empty() ? mean : mean / static_cast<double>(verts_.size());
}

bool Polygon::isConvex() const {
  if (verts_.size() < 3) return false;
  int sign = 0;
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const int o = orient(vertex(i), vertex(i + 1), vertex(i + 2));
    if (o == 0) continue;
    if (sign == 0) {
      sign = o;
    } else if (o != sign) {
      return false;
    }
  }
  return true;
}

void Polygon::reverse() { std::reverse(verts_.begin(), verts_.end()); }

bool Polygon::onBoundary(Vec2 p) const {
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const Segment e = edge(i);
    if (onSegment(e.a, e.b, p)) return true;
  }
  return false;
}

bool Polygon::contains(Vec2 p) const {
  if (onBoundary(p)) return true;
  return containsStrict(p);
}

bool Polygon::containsStrict(Vec2 p) const {
  if (verts_.size() < 3 || onBoundary(p)) return false;
  // Crossing-number test with careful vertex handling: count edges that
  // straddle the horizontal ray to the right of p.
  bool inside = false;
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const Vec2 a = vertex(i);
    const Vec2 b = vertex(i + 1);
    const bool aAbove = a.y > p.y;
    const bool bAbove = b.y > p.y;
    if (aAbove == bAbove) continue;
    // x-coordinate of the edge at height p.y.
    const double xCross = a.x + (b.x - a.x) * (p.y - a.y) / (b.y - a.y);
    if (xCross > p.x) inside = !inside;
  }
  return inside;
}

bool Polygon::segmentIntersectsInterior(const Segment& s) const {
  if (verts_.size() < 3) return false;
  if (s.a == s.b) return containsStrict(s.a);

  // Collect the parameters along s where it meets the polygon boundary,
  // then test the midpoint of every maximal sub-segment for strict
  // containment. This handles grazing vertices and collinear slides
  // without case analysis. The scratch vector is thread-local so the
  // visibility checks on the routing hot path stay allocation-free once
  // its capacity has grown.
  static thread_local std::vector<double> params;
  params.clear();
  params.push_back(0.0);
  params.push_back(1.0);
  const Vec2 d = s.b - s.a;
  const double len2 = d.norm2();
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const Segment e = edge(i);
    if (!segmentsIntersect(s, e)) continue;
    if (auto ip = segmentIntersectionPoint(s, e)) {
      const double t = (*ip - s.a).dot(d) / len2;
      if (t > 0.0 && t < 1.0) params.push_back(t);
    } else {
      // Parallel/collinear contact: record the projections of the edge
      // endpoints that lie on s.
      for (Vec2 q : {e.a, e.b}) {
        if (onSegment(s.a, s.b, q)) {
          const double t = (q - s.a).dot(d) / len2;
          if (t > 0.0 && t < 1.0) params.push_back(t);
        }
      }
    }
  }
  std::sort(params.begin(), params.end());
  for (std::size_t i = 0; i + 1 < params.size(); ++i) {
    const double mid = (params[i] + params[i + 1]) / 2.0;
    if (mid <= 0.0 || mid >= 1.0) continue;
    if (containsStrict(s.a + d * mid)) return true;
  }
  return false;
}

std::vector<Vec2> convexHull(std::vector<Vec2> points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n <= 2) return points;

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower hull
    while (k >= 2 && orient(hull[k - 2], hull[k - 1], points[i]) <= 0) --k;
    hull[k++] = points[i];
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {  // upper hull
    while (k >= lower && orient(hull[k - 2], hull[k - 1], points[i]) <= 0) --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);
  return hull;
}

std::vector<int> convexHullIndices(const std::vector<Vec2>& points) {
  std::vector<int> idx(points.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](int a, int b) { return points[a] < points[b]; });
  idx.erase(std::unique(idx.begin(), idx.end(),
                        [&](int a, int b) { return points[a] == points[b]; }),
            idx.end());
  const std::size_t n = idx.size();
  if (n <= 2) return idx;

  std::vector<int> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           orient(points[hull[k - 2]], points[hull[k - 1]], points[idx[i]]) <= 0)
      --k;
    hull[k++] = idx[i];
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower &&
           orient(points[hull[k - 2]], points[hull[k - 1]], points[idx[i]]) <= 0)
      --k;
    hull[k++] = idx[i];
  }
  hull.resize(k - 1);
  return hull;
}

std::vector<Vec2> mergeConvexHulls(const std::vector<Vec2>& a, const std::vector<Vec2>& b) {
  std::vector<Vec2> all;
  all.reserve(a.size() + b.size());
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  return convexHull(std::move(all));
}

}  // namespace hybrid::geom
