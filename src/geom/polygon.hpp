#pragma once

#include <vector>

#include "geom/bbox.hpp"
#include "geom/segment.hpp"
#include "geom/vec2.hpp"

namespace hybrid::geom {

/// A simple polygon given by its vertex ring (no repeated first vertex).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices) : verts_(std::move(vertices)) {}

  const std::vector<Vec2>& vertices() const { return verts_; }
  std::size_t size() const { return verts_.size(); }
  bool empty() const { return verts_.empty(); }
  Vec2 vertex(std::size_t i) const { return verts_[i % verts_.size()]; }
  Segment edge(std::size_t i) const { return {vertex(i), vertex(i + 1)}; }

  /// Twice the signed area; positive for counter-clockwise rings.
  double signedArea2() const;
  double area() const { return std::abs(signedArea2()) / 2.0; }
  bool isCounterClockwise() const { return signedArea2() > 0.0; }
  double perimeter() const;
  BBox boundingBox() const { return BBox::of(verts_); }
  Vec2 centroid() const;
  bool isConvex() const;

  /// Reverses the vertex order (flips orientation).
  void reverse();

  /// True if p is inside or on the boundary.
  bool contains(Vec2 p) const;
  /// True if p is strictly interior.
  bool containsStrict(Vec2 p) const;
  /// True if p lies on an edge or vertex.
  bool onBoundary(Vec2 p) const;

  /// True if the open segment (s.a, s.b) passes through the polygon's
  /// strict interior. Touching the boundary (including sliding along an
  /// edge or grazing a vertex) does not count. This is the notion of
  /// "the segment intersects the hole" used for visibility.
  bool segmentIntersectsInterior(const Segment& s) const;

 private:
  std::vector<Vec2> verts_;
};

/// Convex hull of a point set (monotone chain). Returns the hull vertices in
/// counter-clockwise order with collinear points dropped (strictly convex).
std::vector<Vec2> convexHull(std::vector<Vec2> points);

/// Convex hull returning indices into `points`, counter-clockwise,
/// strictly convex.
std::vector<int> convexHullIndices(const std::vector<Vec2>& points);

/// Convex hull of the union of two convex polygons (used by the
/// distributed divide-and-conquer hull merge).
std::vector<Vec2> mergeConvexHulls(const std::vector<Vec2>& a, const std::vector<Vec2>& b);

}  // namespace hybrid::geom
