#include "geom/predicates.hpp"

#include <cmath>
#include <ostream>

#include "geom/expansion.hpp"

namespace hybrid::geom {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

namespace {

constexpr double kEps = 1.1102230246251565e-16;  // 2^-53
// Error-bound coefficients from Shewchuk's "Adaptive Precision
// Floating-Point Arithmetic and Fast Robust Geometric Predicates".
const double kCcwErrBound = (3.0 + 16.0 * kEps) * kEps;
const double kIccErrBound = (10.0 + 96.0 * kEps) * kEps;

int orientExact(Vec2 a, Vec2 b, Vec2 c) {
  const Expansion acx = Expansion::twoDiff(a.x, c.x);
  const Expansion acy = Expansion::twoDiff(a.y, c.y);
  const Expansion bcx = Expansion::twoDiff(b.x, c.x);
  const Expansion bcy = Expansion::twoDiff(b.y, c.y);
  const Expansion det = acx * bcy - acy * bcx;
  return det.sign();
}

int inCircleExact(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const Expansion adx = Expansion::twoDiff(a.x, d.x);
  const Expansion ady = Expansion::twoDiff(a.y, d.y);
  const Expansion bdx = Expansion::twoDiff(b.x, d.x);
  const Expansion bdy = Expansion::twoDiff(b.y, d.y);
  const Expansion cdx = Expansion::twoDiff(c.x, d.x);
  const Expansion cdy = Expansion::twoDiff(c.y, d.y);

  const Expansion alift = adx * adx + ady * ady;
  const Expansion blift = bdx * bdx + bdy * bdy;
  const Expansion clift = cdx * cdx + cdy * cdy;

  const Expansion ab = adx * bdy - ady * bdx;
  const Expansion bc = bdx * cdy - bdy * cdx;
  const Expansion ca = cdx * ady - cdy * adx;

  const Expansion det = alift * bc + blift * ca + clift * ab;
  return det.sign();
}

}  // namespace

double orientValue(Vec2 a, Vec2 b, Vec2 c) {
  return (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x);
}

int orient(Vec2 a, Vec2 b, Vec2 c) {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;

  double detsum = 0.0;
  if (detleft > 0.0) {
    if (detright <= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
    detsum = -detleft - detright;
  } else {
    return det > 0.0 ? 1 : (det < 0.0 ? -1 : 0);
  }

  const double errbound = kCcwErrBound * detsum;
  if (det > errbound || -det > errbound) return det > 0.0 ? 1 : -1;
  return orientExact(a, b, c);
}

int inCircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const double adx = a.x - d.x;
  const double ady = a.y - d.y;
  const double bdx = b.x - d.x;
  const double bdy = b.y - d.y;
  const double cdx = c.x - d.x;
  const double cdy = c.y - d.y;

  const double bdxcdy = bdx * cdy;
  const double cdxbdy = cdx * bdy;
  const double alift = adx * adx + ady * ady;

  const double cdxady = cdx * ady;
  const double adxcdy = adx * cdy;
  const double blift = bdx * bdx + bdy * bdy;

  const double adxbdy = adx * bdy;
  const double bdxady = bdx * ady;
  const double clift = cdx * cdx + cdy * cdy;

  const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                     clift * (adxbdy - bdxady);

  const double permanent = (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * alift +
                           (std::fabs(cdxady) + std::fabs(adxcdy)) * blift +
                           (std::fabs(adxbdy) + std::fabs(bdxady)) * clift;
  const double errbound = kIccErrBound * permanent;
  if (det > errbound || -det > errbound) return det > 0.0 ? 1 : -1;
  return inCircleExact(a, b, c, d);
}

bool inDiametralCircle(Vec2 a, Vec2 b, Vec2 d) {
  // d is strictly inside the circle with diameter ab iff the angle (a,d,b)
  // is obtuse, i.e. (a-d)·(b-d) < 0. Evaluate exactly.
  const Expansion adx = Expansion::twoDiff(a.x, d.x);
  const Expansion ady = Expansion::twoDiff(a.y, d.y);
  const Expansion bdx = Expansion::twoDiff(b.x, d.x);
  const Expansion bdy = Expansion::twoDiff(b.y, d.y);
  const Expansion dot = adx * bdx + ady * bdy;
  return dot.sign() < 0;
}

bool onSegment(Vec2 a, Vec2 b, Vec2 c) {
  if (orient(a, b, c) != 0) return false;
  return std::min(a.x, b.x) <= c.x && c.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= c.y && c.y <= std::max(a.y, b.y);
}

}  // namespace hybrid::geom
