#pragma once

#include "geom/vec2.hpp"

namespace hybrid::geom {

/// Robust geometric predicates.
///
/// Each predicate first evaluates a floating-point approximation with a
/// forward error bound (Shewchuk-style static filter). Only when the
/// approximation is within the error bound of zero does it fall back to an
/// exact evaluation using multi-term expansions, so the common case is fast
/// and every answer has the correct sign.

/// Orientation of the triple (a, b, c):
///  +1 if counter-clockwise (c left of ray a->b),
///  -1 if clockwise,
///   0 if collinear.
int orient(Vec2 a, Vec2 b, Vec2 c);

/// Signed area*2 of triangle (a,b,c), approximate (no exact fallback).
double orientValue(Vec2 a, Vec2 b, Vec2 c);

/// In-circle test: +1 if d lies strictly inside the circle through a, b, c
/// (which must be in counter-clockwise order), -1 if strictly outside,
/// 0 if cocircular. For clockwise (a,b,c) the sign flips.
int inCircle(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// True if d lies strictly inside the circle with diameter ab (Gabriel test).
/// Exact: evaluates (d-m)·(d-m) < r² as sign of a polynomial in the inputs.
bool inDiametralCircle(Vec2 a, Vec2 b, Vec2 d);

/// True if c lies on the closed segment [a, b] (collinear and between).
bool onSegment(Vec2 a, Vec2 b, Vec2 c);

}  // namespace hybrid::geom
