#include "geom/segment.hpp"

#include <algorithm>

#include "geom/predicates.hpp"

namespace hybrid::geom {

bool segmentsIntersect(const Segment& s, const Segment& t) {
  const int d1 = orient(t.a, t.b, s.a);
  const int d2 = orient(t.a, t.b, s.b);
  const int d3 = orient(s.a, s.b, t.a);
  const int d4 = orient(s.a, s.b, t.b);

  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && onSegment(t.a, t.b, s.a)) return true;
  if (d2 == 0 && onSegment(t.a, t.b, s.b)) return true;
  if (d3 == 0 && onSegment(s.a, s.b, t.a)) return true;
  if (d4 == 0 && onSegment(s.a, s.b, t.b)) return true;
  return false;
}

bool segmentsCrossProperly(const Segment& s, const Segment& t) {
  const int d1 = orient(t.a, t.b, s.a);
  const int d2 = orient(t.a, t.b, s.b);
  const int d3 = orient(s.a, s.b, t.a);
  const int d4 = orient(s.a, s.b, t.b);
  return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
         ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0));
}

bool segmentsInteriorsIntersect(const Segment& s, const Segment& t) {
  if (segmentsCrossProperly(s, t)) return true;

  // Remaining cases involve collinear overlap or an endpoint lying in the
  // other segment's interior.
  auto strictlyInside = [](Vec2 a, Vec2 b, Vec2 p) {
    return p != a && p != b && onSegment(a, b, p);
  };
  if (strictlyInside(t.a, t.b, s.a) || strictlyInside(t.a, t.b, s.b) ||
      strictlyInside(s.a, s.b, t.a) || strictlyInside(s.a, s.b, t.b)) {
    return true;
  }
  // Collinear segments sharing both endpoints (identical segments) overlap.
  if ((s.a == t.a && s.b == t.b) || (s.a == t.b && s.b == t.a)) return true;
  return false;
}

std::optional<Vec2> segmentIntersectionPoint(const Segment& s, const Segment& t) {
  const Vec2 r = s.b - s.a;
  const Vec2 q = t.b - t.a;
  const double denom = r.cross(q);
  if (denom == 0.0) return std::nullopt;
  const double u = (t.a - s.a).cross(q) / denom;
  return s.a + r * u;
}

Vec2 closestPointOnSegment(Vec2 p, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const double len2 = d.norm2();
  if (len2 == 0.0) return s.a;
  const double t = std::clamp((p - s.a).dot(d) / len2, 0.0, 1.0);
  return s.a + d * t;
}

double pointSegmentDistance2(Vec2 p, const Segment& s) {
  return dist2(p, closestPointOnSegment(p, s));
}

double pointSegmentDistance(Vec2 p, const Segment& s) {
  return dist(p, closestPointOnSegment(p, s));
}

}  // namespace hybrid::geom
