#pragma once

#include <optional>

#include "geom/vec2.hpp"

namespace hybrid::geom {

/// A closed line segment between two endpoints.
struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return dist(a, b); }
  Vec2 direction() const { return b - a; }
};

/// True if segments intersect in at least one point (endpoints count).
bool segmentsIntersect(const Segment& s, const Segment& t);

/// True if the segments cross properly: they intersect in exactly one point
/// that is interior to both segments.
bool segmentsCrossProperly(const Segment& s, const Segment& t);

/// True if the open interiors of the segments share a point. This is the
/// "proper crossing or interior overlap" test used by planarity checks:
/// touching only at shared endpoints does NOT count.
bool segmentsInteriorsIntersect(const Segment& s, const Segment& t);

/// Intersection point of properly crossing segments (or lines through them,
/// when called on non-parallel segments that are known to cross).
/// Returns nullopt for parallel segments.
std::optional<Vec2> segmentIntersectionPoint(const Segment& s, const Segment& t);

/// Euclidean distance from point p to the closed segment.
double pointSegmentDistance(Vec2 p, const Segment& s);

/// Squared distance from point p to the closed segment.
double pointSegmentDistance2(Vec2 p, const Segment& s);

/// Closest point on the closed segment to p.
Vec2 closestPointOnSegment(Vec2 p, const Segment& s);

}  // namespace hybrid::geom
