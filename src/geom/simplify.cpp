#include "geom/simplify.hpp"

#include <algorithm>

#include "geom/segment.hpp"

namespace hybrid::geom {

namespace {

void dpRecurse(const std::vector<Vec2>& pts, int lo, int hi, double eps,
               std::vector<char>& keep) {
  if (hi - lo < 2) return;
  const Segment chord{pts[static_cast<std::size_t>(lo)], pts[static_cast<std::size_t>(hi)]};
  double worst = -1.0;
  int worstIdx = -1;
  for (int i = lo + 1; i < hi; ++i) {
    const double d = pointSegmentDistance(pts[static_cast<std::size_t>(i)], chord);
    if (d > worst) {
      worst = d;
      worstIdx = i;
    }
  }
  if (worst > eps) {
    keep[static_cast<std::size_t>(worstIdx)] = 1;
    dpRecurse(pts, lo, worstIdx, eps, keep);
    dpRecurse(pts, worstIdx, hi, eps, keep);
  }
}

}  // namespace

std::vector<int> douglasPeucker(const std::vector<Vec2>& points, double epsilon) {
  const int n = static_cast<int>(points.size());
  if (n <= 2) {
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    return all;
  }
  std::vector<char> keep(points.size(), 0);
  keep.front() = 1;
  keep.back() = 1;
  dpRecurse(points, 0, n - 1, epsilon, keep);
  std::vector<int> out;
  for (int i = 0; i < n; ++i) {
    if (keep[static_cast<std::size_t>(i)]) out.push_back(i);
  }
  return out;
}

std::vector<int> douglasPeuckerRing(const std::vector<Vec2>& ring, double epsilon) {
  const int n = static_cast<int>(ring.size());
  if (n <= 3) {
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    return all;
  }
  // Anchor at the two mutually farthest vertices so both halves are
  // meaningful polylines.
  int a = 0;
  int b = n / 2;
  double best = -1.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = dist2(ring[static_cast<std::size_t>(i)],
                             ring[static_cast<std::size_t>(j)]);
      if (d > best) {
        best = d;
        a = i;
        b = j;
      }
    }
  }
  // Half 1: a..b; half 2: b..a (wrapping).
  std::vector<Vec2> half1(ring.begin() + a, ring.begin() + b + 1);
  std::vector<Vec2> half2;
  for (int i = b; i != a; i = (i + 1) % n) half2.push_back(ring[static_cast<std::size_t>(i)]);
  half2.push_back(ring[static_cast<std::size_t>(a)]);

  std::vector<int> out;
  for (int idx : douglasPeucker(half1, epsilon)) out.push_back(a + idx);
  const auto second = douglasPeucker(half2, epsilon);
  for (std::size_t k = 1; k + 1 < second.size(); ++k) {
    out.push_back((b + second[k]) % n);
  }
  return out;
}

}  // namespace hybrid::geom
