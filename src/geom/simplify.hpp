#pragma once

#include <vector>

#include "geom/vec2.hpp"

namespace hybrid::geom {

/// Douglas-Peucker polyline simplification: keeps the subsequence of
/// `points` whose removal would displace the line by more than `epsilon`.
/// Endpoints are always kept. Returns indices into `points`, ascending.
std::vector<int> douglasPeucker(const std::vector<Vec2>& points, double epsilon);

/// Closed-ring variant: splits the ring at its two mutually farthest
/// vertices, simplifies both halves and stitches them back together.
/// Returns indices into `ring`, in ring order.
std::vector<int> douglasPeuckerRing(const std::vector<Vec2>& ring, double epsilon);

}  // namespace hybrid::geom
