#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

namespace hybrid::geom {

/// A point / vector in the Euclidean plane. Value type, trivially copyable.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double xx, double yy) : x(xx), y(yy) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;
  /// Lexicographic (x, then y); used by hull/sweep algorithms.
  friend constexpr auto operator<=>(Vec2 a, Vec2 b) = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product; >0 iff `o` is ccw of *this.
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::hypot(x, y); }

  /// Rotate 90 degrees counter-clockwise.
  constexpr Vec2 perp() const { return {-y, x}; }

  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{0.0, 0.0};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double dist(Vec2 a, Vec2 b) { return (a - b).norm(); }
constexpr double dist2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Linear interpolation a + t*(b-a).
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

/// Midpoint of the segment ab.
constexpr Vec2 midpoint(Vec2 a, Vec2 b) { return {(a.x + b.x) / 2.0, (a.y + b.y) / 2.0}; }

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace hybrid::geom
