#include "geom/visibility.hpp"

#include <algorithm>

namespace hybrid::geom {

int VisibilityContext::blockingObstacle(Vec2 a, Vec2 b) const {
  BBox segBox;
  segBox.expand(a);
  segBox.expand(b);
  const Segment s{a, b};
  for (std::size_t i = 0; i < obstacles_.size(); ++i) {
    if (!segBox.intersects(boxes_[i])) continue;
    if (obstacles_[i].segmentIntersectsInterior(s)) return static_cast<int>(i);
  }
  return -1;
}

bool VisibilityContext::visible(Vec2 a, Vec2 b) const {
  return blockingObstacle(a, b) < 0;
}

std::vector<std::vector<int>> buildVisibilityAdjacency(
    const std::vector<Vec2>& sites, const VisibilityContext& ctx) {
  const std::size_t n = sites.size();
  std::vector<std::vector<int>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (ctx.visible(sites[i], sites[j])) {
        adj[i].push_back(static_cast<int>(j));
        adj[j].push_back(static_cast<int>(i));
      }
    }
  }
  return adj;
}

}  // namespace hybrid::geom
