#pragma once

#include <vector>

#include "geom/polygon.hpp"
#include "geom/vec2.hpp"

namespace hybrid::geom {

/// Visibility with respect to a set of polygonal obstacles (the radio
/// holes). Two points are visible from each other iff their open segment
/// does not pass through the strict interior of any obstacle.
class VisibilityContext {
 public:
  explicit VisibilityContext(std::vector<Polygon> obstacles)
      : obstacles_(std::move(obstacles)) {
    boxes_.reserve(obstacles_.size());
    for (const auto& p : obstacles_) boxes_.push_back(p.boundingBox());
  }

  const std::vector<Polygon>& obstacles() const { return obstacles_; }

  bool visible(Vec2 a, Vec2 b) const;

  /// Index of the first obstacle (in storage order) whose interior the
  /// segment a->b crosses, or -1 if fully visible.
  int blockingObstacle(Vec2 a, Vec2 b) const;

 private:
  std::vector<Polygon> obstacles_;
  std::vector<BBox> boxes_;
};

/// Dense visibility graph over `sites` with respect to `obstacles`:
/// adjacency[i] lists the indices j visible from i, and the matching
/// Euclidean edge lengths are left to the caller. O(|sites|^2 * edges).
std::vector<std::vector<int>> buildVisibilityAdjacency(
    const std::vector<Vec2>& sites, const VisibilityContext& ctx);

}  // namespace hybrid::geom
