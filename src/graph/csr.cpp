#include "graph/csr.hpp"

namespace hybrid::graph {

CsrAdjacency buildCsr(const GeometricGraph& g) {
  const std::size_t n = g.numNodes();
  CsrAdjacency csr;
  csr.offsets.resize(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    csr.offsets[v + 1] =
        csr.offsets[v] + static_cast<std::int32_t>(g.neighbors(static_cast<NodeId>(v)).size());
  }
  csr.targets.resize(static_cast<std::size_t>(csr.offsets[n]));
  csr.weights.resize(csr.targets.size());
  std::size_t k = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const auto pv = g.position(static_cast<NodeId>(v));
    for (NodeId w : g.neighbors(static_cast<NodeId>(v))) {
      csr.targets[k] = w;
      csr.weights[k] = geom::dist(pv, g.position(w));
      ++k;
    }
  }
  return csr;
}

CsrAdjacency buildCsr(const std::vector<std::vector<int>>& adj,
                      const std::vector<geom::Vec2>& pos) {
  const std::size_t n = adj.size();
  CsrAdjacency csr;
  csr.offsets.resize(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    csr.offsets[v + 1] = csr.offsets[v] + static_cast<std::int32_t>(adj[v].size());
  }
  csr.targets.resize(static_cast<std::size_t>(csr.offsets[n]));
  csr.weights.resize(csr.targets.size());
  std::size_t k = 0;
  for (std::size_t v = 0; v < n; ++v) {
    for (int w : adj[v]) {
      csr.targets[k] = w;
      csr.weights[k] = geom::dist(pos[v], pos[static_cast<std::size_t>(w)]);
      ++k;
    }
  }
  return csr;
}

}  // namespace hybrid::graph
