#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.hpp"
#include "graph/graph.hpp"

namespace hybrid::graph {

/// Flat compressed-sparse-row adjacency with per-edge Euclidean weights.
///
/// The query engine's hot loops (repeated Dijkstra in DijkstraWorkspace,
/// the overlay's site-pair table) iterate neighbors millions of times;
/// the pointer-chasing std::vector<std::vector<NodeId>> layout of
/// GeometricGraph costs a cache miss per node. CSR packs all neighbor ids
/// and the matching edge lengths into two contiguous arrays indexed by a
/// node offset table, so a relaxation sweep is a linear scan.
struct CsrAdjacency {
  std::vector<std::int32_t> offsets;  ///< size numNodes()+1; offsets[v]..offsets[v+1].
  std::vector<NodeId> targets;        ///< size 2m, grouped by source node.
  std::vector<double> weights;        ///< Euclidean edge lengths, parallel to targets.

  std::size_t numNodes() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::size_t numDirectedEdges() const { return targets.size(); }

  std::span<const NodeId> neighbors(NodeId v) const {
    const auto b = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1]);
    return {targets.data() + b, e - b};
  }
  std::span<const double> edgeWeights(NodeId v) const {
    const auto b = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1]);
    return {weights.data() + b, e - b};
  }
};

/// CSR snapshot of a GeometricGraph's adjacency (neighbor order preserved).
CsrAdjacency buildCsr(const GeometricGraph& g);

/// CSR from explicit adjacency lists over embedded points (the overlay's
/// site graph). adj[i] lists neighbor indices of point i; weights are the
/// Euclidean distances between the endpoints.
CsrAdjacency buildCsr(const std::vector<std::vector<int>>& adj,
                      const std::vector<geom::Vec2>& pos);

}  // namespace hybrid::graph
