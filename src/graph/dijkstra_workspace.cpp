#include "graph/dijkstra_workspace.hpp"

#include <algorithm>

namespace hybrid::graph {

void DijkstraWorkspace::ensureSize(std::size_t n) {
  if (dist_.size() < n) {
    dist_.resize(n);
    pred_.resize(n);
    stamp_.resize(n, 0);
  }
}

void DijkstraWorkspace::run(const CsrAdjacency& g, NodeId source, NodeId target) {
  runImpl(g, source, target, {});
}

void DijkstraWorkspace::runRankPruned(const CsrAdjacency& g, NodeId source,
                                      std::span<const std::uint32_t> ranks) {
  runImpl(g, source, -1, ranks);
}

void DijkstraWorkspace::runImpl(const CsrAdjacency& g, NodeId source, NodeId target,
                                std::span<const std::uint32_t> ranks) {
  const std::size_t n = g.numNodes();
  ensureSize(n);
  ++gen_;
  if (gen_ == 0) {  // stamp wrap-around: re-zero and restart generations
    std::fill(stamp_.begin(), stamp_.end(), 0);
    gen_ = 1;
  }
  heap_.clear();

  const auto touch = [&](NodeId v) {
    const auto i = static_cast<std::size_t>(v);
    if (stamp_[i] != gen_) {
      stamp_[i] = gen_;
      dist_[i] = kUnreached;
      pred_[i] = -1;
    }
  };
  const auto minHeap = [](const HeapItem& a, const HeapItem& b) { return b < a; };
  const std::uint32_t sourceRank =
      ranks.empty() ? 0 : ranks[static_cast<std::size_t>(source)];

  touch(source);
  dist_[static_cast<std::size_t>(source)] = 0.0;
  heap_.push_back({0.0, source});
  while (!heap_.empty()) {
    const HeapItem top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), minHeap);
    heap_.pop_back();
    HYBRID_OBS_STMT(++heapPops_);
    if (top.d > dist_[static_cast<std::size_t>(top.v)]) continue;
    if (top.v == target) break;
    // Rank prune: a node more central than the source dominates its whole
    // subtree (the hub-label build emits no entries beyond it).
    if (!ranks.empty() && ranks[static_cast<std::size_t>(top.v)] < sourceRank) continue;
    const auto nbs = g.neighbors(top.v);
    const auto ws = g.edgeWeights(top.v);
    for (std::size_t k = 0; k < nbs.size(); ++k) {
      const NodeId v = nbs[k];
      touch(v);
      const double nd = top.d + ws[k];
      HYBRID_OBS_STMT(++relaxations_);
      if (nd < dist_[static_cast<std::size_t>(v)]) {
        dist_[static_cast<std::size_t>(v)] = nd;
        pred_[static_cast<std::size_t>(v)] = top.v;
        heap_.push_back({nd, v});
        std::push_heap(heap_.begin(), heap_.end(), minHeap);
      }
    }
  }
}

void DijkstraWorkspace::pathTo(NodeId target, std::vector<NodeId>& out) const {
  out.clear();
  if (target < 0 || static_cast<std::size_t>(target) >= dist_.size() ||
      dist(target) == kUnreached) {
    return;
  }
  const std::size_t maxHops = dist_.size();
  for (NodeId v = target; v != -1; v = pred(v)) {
    if (out.size() > maxHops) {  // corrupted pred chain: never loop forever
      out.clear();
      return;
    }
    out.push_back(v);
  }
  std::reverse(out.begin(), out.end());
}

}  // namespace hybrid::graph
