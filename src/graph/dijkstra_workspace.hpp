#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "obs/metrics.hpp"

namespace hybrid::graph {

/// Reusable single-source shortest-path state for the serving hot loop.
///
/// graph::dijkstra() pays `dist.assign(n, inf)` plus a fresh priority queue
/// on every call — fine for preprocessing, ruinous when the same graph
/// answers millions of queries. This workspace keeps dist/pred arrays that
/// are invalidated in O(1) by bumping a generation stamp (a slot is valid
/// only when its stamp matches the current generation) and a binary heap
/// whose backing vector keeps its capacity across runs, so repeated calls
/// perform zero steady-state heap allocations once the arrays have grown
/// to the graph size.
///
/// Tie-breaking matches graph::dijkstra() exactly: the heap pops (dist,
/// node) pairs in lexicographic order, so equal-distance nodes settle in
/// ascending node order and the predecessor trees are identical.
///
/// Cache-line-aligned: batch serving keeps one workspace per thread, and
/// alignment guarantees two threads' workspace headers (the vectors'
/// size/capacity words the hot loop reads constantly) never share a line.
class alignas(64) DijkstraWorkspace {
 public:
  /// Runs Dijkstra from `source` over `g`. If `target` >= 0 the search
  /// stops once the target is settled. Results of the previous run are
  /// invalidated.
  void run(const CsrAdjacency& g, NodeId source, NodeId target = -1);

  /// Rank-pruned Dijkstra (the hub-label build primitive): identical to
  /// run(), except that a settled node v with ranks[v] < ranks[source] is
  /// not relaxed further — its subtree is dominated by a more central hub,
  /// so the search dies out quickly for peripheral sources. Distances of
  /// nodes whose every shortest path crosses a pruned node may come back
  /// larger than the true distance (they are path lengths in the pruned
  /// subgraph, never underestimates); nodes with ranks[v] >= ranks[source]
  /// reached without crossing a lower rank are exact. `ranks` must be a
  /// permutation-like strict order (no duplicates) of size numNodes().
  void runRankPruned(const CsrAdjacency& g, NodeId source,
                     std::span<const std::uint32_t> ranks);

  /// Distance of the last run; +inf when unreached (or never run).
  double dist(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return stamp_[i] == gen_ ? dist_[i] : kUnreached;
  }
  /// Predecessor on a shortest path; -1 at the source / unreached nodes.
  NodeId pred(NodeId v) const {
    const auto i = static_cast<std::size_t>(v);
    return stamp_[i] == gen_ ? pred_[i] : -1;
  }

  /// Writes the source->target node path into `out` (cleared first; its
  /// capacity is reused). Leaves `out` empty when the target is
  /// unreachable or the predecessor chain is longer than the node count
  /// (corruption guard).
  void pathTo(NodeId target, std::vector<NodeId>& out) const;

  static constexpr double kUnreached = std::numeric_limits<double>::infinity();

  /// Edge relaxations performed since construction (cumulative across
  /// runs). Observability-only: compiled out with HYBRID_OBS_DISABLED.
  std::uint64_t relaxations() const { return relaxations_; }
  /// Heap pops (settled + stale entries) since construction.
  std::uint64_t heapPops() const { return heapPops_; }

 private:
  void ensureSize(std::size_t n);
  void runImpl(const CsrAdjacency& g, NodeId source, NodeId target,
               std::span<const std::uint32_t> ranks);

  struct HeapItem {
    double d;
    NodeId v;
    bool operator<(const HeapItem& o) const { return d < o.d || (d == o.d && v < o.v); }
  };

  std::vector<double> dist_;
  std::vector<NodeId> pred_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t gen_ = 0;
  std::vector<HeapItem> heap_;
  std::uint64_t relaxations_ = 0;
  std::uint64_t heapPops_ = 0;
};

}  // namespace hybrid::graph
