#pragma once

#include <numeric>
#include <vector>

namespace hybrid::graph {

/// Disjoint-set union with path compression and union by size.
class DisjointSetUnion {
 public:
  explicit DisjointSetUnion(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int v) {
    while (parent_[static_cast<std::size_t>(v)] != v) {
      parent_[static_cast<std::size_t>(v)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
      v = parent_[static_cast<std::size_t>(v)];
    }
    return v;
  }

  /// Returns true if the sets were distinct and are now merged.
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[static_cast<std::size_t>(a)] < size_[static_cast<std::size_t>(b)]) std::swap(a, b);
    parent_[static_cast<std::size_t>(b)] = a;
    size_[static_cast<std::size_t>(a)] += size_[static_cast<std::size_t>(b)];
    return true;
  }

  bool same(int a, int b) { return find(a) == find(b); }
  int setSize(int v) { return size_[static_cast<std::size_t>(find(v))]; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

}  // namespace hybrid::graph
