#include "graph/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "geom/segment.hpp"

namespace hybrid::graph {

void GeometricGraph::addEdge(NodeId u, NodeId v) {
  if (u == v || hasEdge(u, v)) return;
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
}

bool GeometricGraph::hasEdge(NodeId u, NodeId v) const {
  const auto& a = adj_[static_cast<std::size_t>(u)];
  return std::find(a.begin(), a.end(), v) != a.end();
}

void GeometricGraph::removeEdge(NodeId u, NodeId v) {
  auto& a = adj_[static_cast<std::size_t>(u)];
  auto& b = adj_[static_cast<std::size_t>(v)];
  a.erase(std::remove(a.begin(), a.end(), v), a.end());
  b.erase(std::remove(b.begin(), b.end(), u), b.end());
}

std::size_t GeometricGraph::numEdges() const {
  std::size_t twice = 0;
  for (const auto& a : adj_) twice += a.size();
  return twice / 2;
}

int GeometricGraph::maxDegree() const {
  std::size_t d = 0;
  for (const auto& a : adj_) d = std::max(d, a.size());
  return static_cast<int>(d);
}

std::vector<std::pair<NodeId, NodeId>> GeometricGraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(numEdges());
  for (NodeId u = 0; u < static_cast<NodeId>(numNodes()); ++u) {
    for (NodeId v : adj_[static_cast<std::size_t>(u)]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

double GeometricGraph::pathLength(std::span<const NodeId> path) const {
  if (path.empty()) return std::numeric_limits<double>::infinity();
  double len = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    len += edgeLength(path[i], path[i + 1]);
  }
  return len;
}

std::vector<int> GeometricGraph::componentLabels(int* numComponents) const {
  std::vector<int> label(numNodes(), -1);
  int next = 0;
  std::queue<NodeId> q;
  for (NodeId s = 0; s < static_cast<NodeId>(numNodes()); ++s) {
    if (label[static_cast<std::size_t>(s)] != -1) continue;
    label[static_cast<std::size_t>(s)] = next;
    q.push(s);
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (NodeId v : adj_[static_cast<std::size_t>(u)]) {
        if (label[static_cast<std::size_t>(v)] == -1) {
          label[static_cast<std::size_t>(v)] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  if (numComponents != nullptr) *numComponents = next;
  return label;
}

bool GeometricGraph::isConnected() const {
  if (numNodes() == 0) return true;
  int k = 0;
  componentLabels(&k);
  return k == 1;
}

bool GeometricGraph::isPlanarEmbedding() const {
  const auto es = edges();
  for (std::size_t i = 0; i < es.size(); ++i) {
    const geom::Segment si{position(es[i].first), position(es[i].second)};
    for (std::size_t j = i + 1; j < es.size(); ++j) {
      // Edges sharing an endpoint may touch there; that is fine.
      if (es[i].first == es[j].first || es[i].first == es[j].second ||
          es[i].second == es[j].first || es[i].second == es[j].second) {
        continue;
      }
      const geom::Segment sj{position(es[j].first), position(es[j].second)};
      if (geom::segmentsInteriorsIntersect(si, sj)) return false;
    }
  }
  return true;
}

}  // namespace hybrid::graph
