#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/vec2.hpp"

namespace hybrid::graph {

using NodeId = int;

/// An undirected graph whose nodes are embedded in the plane. Edge weights
/// default to the Euclidean length of the edge. Adjacency lists are kept
/// sorted and deduplicated on demand.
class GeometricGraph {
 public:
  GeometricGraph() = default;
  explicit GeometricGraph(std::vector<geom::Vec2> positions)
      : pos_(std::move(positions)), adj_(pos_.size()) {}

  NodeId addNode(geom::Vec2 p) {
    pos_.push_back(p);
    adj_.emplace_back();
    return static_cast<NodeId>(pos_.size() - 1);
  }

  /// Adds the undirected edge {u, v}; duplicates are ignored.
  void addEdge(NodeId u, NodeId v);
  bool hasEdge(NodeId u, NodeId v) const;
  void removeEdge(NodeId u, NodeId v);

  std::size_t numNodes() const { return pos_.size(); }
  std::size_t numEdges() const;

  geom::Vec2 position(NodeId v) const { return pos_[static_cast<std::size_t>(v)]; }
  const std::vector<geom::Vec2>& positions() const { return pos_; }
  std::span<const NodeId> neighbors(NodeId v) const {
    return adj_[static_cast<std::size_t>(v)];
  }
  int degree(NodeId v) const { return static_cast<int>(adj_[static_cast<std::size_t>(v)].size()); }
  int maxDegree() const;

  double edgeLength(NodeId u, NodeId v) const { return geom::dist(position(u), position(v)); }

  /// All undirected edges as (u, v) pairs with u < v.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Total Euclidean length of a node path; +inf for an empty path.
  double pathLength(std::span<const NodeId> path) const;

  bool isConnected() const;
  /// Connected component label per node (labels are 0..k-1).
  std::vector<int> componentLabels(int* numComponents = nullptr) const;

  /// True if no two edges cross in their interiors (O(E^2); for tests).
  bool isPlanarEmbedding() const;

 private:
  std::vector<geom::Vec2> pos_;
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace hybrid::graph
