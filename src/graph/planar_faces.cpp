#include "graph/planar_faces.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "geom/angle.hpp"

namespace hybrid::graph {

namespace {

// For every node, its neighbors sorted counter-clockwise by direction angle.
std::vector<std::vector<NodeId>> sortedNeighborhoods(const GeometricGraph& g) {
  std::vector<std::vector<NodeId>> sorted(g.numNodes());
  for (NodeId u = 0; u < static_cast<NodeId>(g.numNodes()); ++u) {
    auto nbrs = g.neighbors(u);
    std::vector<NodeId> s(nbrs.begin(), nbrs.end());
    const geom::Vec2 pu = g.position(u);
    std::sort(s.begin(), s.end(), [&](NodeId a, NodeId b) {
      return geom::directionAngle(pu, g.position(a)) <
             geom::directionAngle(pu, g.position(b));
    });
    sorted[static_cast<std::size_t>(u)] = std::move(s);
  }
  return sorted;
}

}  // namespace

std::vector<Face> enumerateFaces(const GeometricGraph& g) {
  const auto sorted = sortedNeighborhoods(g);

  // Position of each directed edge (u, v) within u's sorted neighborhood.
  std::map<std::pair<NodeId, NodeId>, int> slot;
  for (NodeId u = 0; u < static_cast<NodeId>(g.numNodes()); ++u) {
    const auto& s = sorted[static_cast<std::size_t>(u)];
    for (int i = 0; i < static_cast<int>(s.size()); ++i) slot[{u, s[i]}] = i;
  }

  std::map<std::pair<NodeId, NodeId>, bool> used;
  std::vector<Face> faces;

  for (NodeId u = 0; u < static_cast<NodeId>(g.numNodes()); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (used[{u, v}]) continue;
      // Walk the face on the left of (u, v): at each arrival over (a, b),
      // leave b over the clockwise predecessor of a in b's ccw ordering.
      Face f;
      NodeId a = u;
      NodeId b = v;
      while (!used[{a, b}]) {
        used[{a, b}] = true;
        f.cycle.push_back(a);
        const auto& s = sorted[static_cast<std::size_t>(b)];
        const int idx = slot.at({b, a});
        const int next = (idx - 1 + static_cast<int>(s.size())) % static_cast<int>(s.size());
        a = b;
        b = s[static_cast<std::size_t>(next)];
      }
      double area2 = 0.0;
      for (std::size_t i = 0; i < f.cycle.size(); ++i) {
        const geom::Vec2 p = g.position(f.cycle[i]);
        const geom::Vec2 q = g.position(f.cycle[(i + 1) % f.cycle.size()]);
        area2 += p.cross(q);
      }
      f.signedArea2 = area2;
      f.outer = area2 < 0.0;
      faces.push_back(std::move(f));
    }
  }
  return faces;
}

}  // namespace hybrid::graph
