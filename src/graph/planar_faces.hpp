#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace hybrid::graph {

/// A face of a planar straight-line embedded graph, given as the cyclic
/// sequence of vertices along its boundary walk. For a connected planar
/// embedding, bounded faces are reported counter-clockwise and the single
/// unbounded (outer) face clockwise. Vertices can repeat along a walk when
/// the boundary passes through a cut vertex.
struct Face {
  std::vector<NodeId> cycle;
  double signedArea2 = 0.0;  ///< Twice the signed area of the boundary walk.
  bool outer = false;        ///< True for the unbounded face.
};

/// Enumerates all faces of the embedding via next-edge-around-vertex
/// traversal. The graph must be a planar straight-line embedding (no two
/// edges crossing); otherwise the result is meaningless.
std::vector<Face> enumerateFaces(const GeometricGraph& g);

}  // namespace hybrid::graph
