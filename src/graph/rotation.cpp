#include "graph/rotation.hpp"

#include <algorithm>

#include "geom/angle.hpp"

namespace hybrid::graph {

RotationSystem::RotationSystem(const GeometricGraph& g) : g_(g) {
  order_.resize(g.numNodes());
  for (NodeId v = 0; v < static_cast<NodeId>(g.numNodes()); ++v) {
    auto nbrs = g.neighbors(v);
    std::vector<NodeId> sorted(nbrs.begin(), nbrs.end());
    const geom::Vec2 pv = g.position(v);
    std::sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
      return geom::directionAngle(pv, g.position(a)) <
             geom::directionAngle(pv, g.position(b));
    });
    order_[static_cast<std::size_t>(v)] = std::move(sorted);
  }
}

int RotationSystem::indexOf(NodeId at, NodeId nb) const {
  const auto& o = order_[static_cast<std::size_t>(at)];
  const auto it = std::find(o.begin(), o.end(), nb);
  return it == o.end() ? -1 : static_cast<int>(it - o.begin());
}

NodeId RotationSystem::nextCcw(NodeId at, NodeId from) const {
  const auto& o = order_[static_cast<std::size_t>(at)];
  const int i = indexOf(at, from);
  if (i < 0 || o.empty()) return -1;
  return o[static_cast<std::size_t>((i + 1) % static_cast<int>(o.size()))];
}

NodeId RotationSystem::nextCw(NodeId at, NodeId from) const {
  const auto& o = order_[static_cast<std::size_t>(at)];
  const int i = indexOf(at, from);
  if (i < 0 || o.empty()) return -1;
  const int n = static_cast<int>(o.size());
  return o[static_cast<std::size_t>((i - 1 + n) % n)];
}

NodeId RotationSystem::firstCw(NodeId at, geom::Vec2 towards) const {
  const auto& o = order_[static_cast<std::size_t>(at)];
  if (o.empty()) return -1;
  const geom::Vec2 pa = g_.position(at);
  const double ref = geom::directionAngle(pa, towards);
  // Largest neighbor angle <= ref (wrapping): the first one sweeping cw.
  NodeId best = -1;
  double bestGap = 1e18;
  for (NodeId nb : o) {
    double gap = ref - geom::directionAngle(pa, g_.position(nb));
    if (gap < 0) gap += 2.0 * 3.141592653589793;
    if (gap < bestGap) {
      bestGap = gap;
      best = nb;
    }
  }
  return best;
}

NodeId RotationSystem::firstCcw(NodeId at, geom::Vec2 towards) const {
  const auto& o = order_[static_cast<std::size_t>(at)];
  if (o.empty()) return -1;
  const geom::Vec2 pa = g_.position(at);
  const double ref = geom::directionAngle(pa, towards);
  NodeId best = -1;
  double bestGap = 1e18;
  for (NodeId nb : o) {
    double gap = geom::directionAngle(pa, g_.position(nb)) - ref;
    if (gap < 0) gap += 2.0 * 3.141592653589793;
    if (gap < bestGap) {
      bestGap = gap;
      best = nb;
    }
  }
  return best;
}

}  // namespace hybrid::graph
