#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace hybrid::graph {

/// Rotation system of a plane-embedded graph: per node, its neighbors in
/// counter-clockwise angular order, with successor/predecessor queries.
/// This is the primitive behind face-routing traversals (right/left-hand
/// rule).
class RotationSystem {
 public:
  explicit RotationSystem(const GeometricGraph& g);

  /// Neighbor of `at` that follows `from` counter-clockwise.
  NodeId nextCcw(NodeId at, NodeId from) const;
  /// Neighbor of `at` that follows `from` clockwise.
  NodeId nextCw(NodeId at, NodeId from) const;

  /// First neighbor of `at` encountered when sweeping a ray from direction
  /// `towards` in clockwise (right-hand) or counter-clockwise order. Used
  /// to pick the first edge of the face intersected by the segment
  /// at->towards.
  NodeId firstCw(NodeId at, geom::Vec2 towards) const;
  NodeId firstCcw(NodeId at, geom::Vec2 towards) const;

  const std::vector<NodeId>& neighborsCcw(NodeId at) const {
    return order_[static_cast<std::size_t>(at)];
  }

 private:
  int indexOf(NodeId at, NodeId nb) const;

  const GeometricGraph& g_;
  std::vector<std::vector<NodeId>> order_;
};

}  // namespace hybrid::graph
