#include "graph/shortest_path.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace hybrid::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<NodeId> ShortestPathTree::pathTo(NodeId target) const {
  const auto t = static_cast<std::size_t>(target);
  if (t >= dist.size() || dist[t] == kInf) return {};
  std::vector<NodeId> path;
  path.reserve(16);
  const std::size_t maxHops = dist.size();  // a simple path has <= n nodes
  for (NodeId v = target; v != -1; v = pred[static_cast<std::size_t>(v)]) {
    if (path.size() > maxHops) return {};  // corrupted pred chain: bail out
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPathTree dijkstra(const GeometricGraph& g, NodeId source, NodeId target) {
  const std::size_t n = g.numNodes();
  ShortestPathTree out;
  out.dist.assign(n, kInf);
  out.pred.assign(n, -1);
  out.dist[static_cast<std::size_t>(source)] = 0.0;

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > out.dist[static_cast<std::size_t>(u)]) continue;
    if (u == target) break;
    for (NodeId v : g.neighbors(u)) {
      const double nd = d + g.edgeLength(u, v);
      if (nd < out.dist[static_cast<std::size_t>(v)]) {
        out.dist[static_cast<std::size_t>(v)] = nd;
        out.pred[static_cast<std::size_t>(v)] = u;
        pq.emplace(nd, v);
      }
    }
  }
  return out;
}

std::vector<NodeId> astarPath(const GeometricGraph& g, NodeId source, NodeId target) {
  const std::size_t n = g.numNodes();
  std::vector<double> gScore(n, kInf);
  std::vector<NodeId> pred(n, -1);
  std::vector<bool> closed(n, false);
  gScore[static_cast<std::size_t>(source)] = 0.0;

  const geom::Vec2 tp = g.position(target);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> open;
  open.emplace(geom::dist(g.position(source), tp), source);

  while (!open.empty()) {
    const NodeId u = open.top().second;
    open.pop();
    if (closed[static_cast<std::size_t>(u)]) continue;
    closed[static_cast<std::size_t>(u)] = true;
    if (u == target) break;
    for (NodeId v : g.neighbors(u)) {
      if (closed[static_cast<std::size_t>(v)]) continue;
      const double nd = gScore[static_cast<std::size_t>(u)] + g.edgeLength(u, v);
      if (nd < gScore[static_cast<std::size_t>(v)]) {
        gScore[static_cast<std::size_t>(v)] = nd;
        pred[static_cast<std::size_t>(v)] = u;
        open.emplace(nd + geom::dist(g.position(v), tp), v);
      }
    }
  }
  if (gScore[static_cast<std::size_t>(target)] == kInf) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != -1; v = pred[static_cast<std::size_t>(v)]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

double shortestPathLength(const GeometricGraph& g, NodeId source, NodeId target) {
  return dijkstra(g, source, target).dist[static_cast<std::size_t>(target)];
}

std::vector<int> bfsHops(const GeometricGraph& g, NodeId source, int maxHops) {
  std::vector<int> hops(g.numNodes(), -1);
  hops[static_cast<std::size_t>(source)] = 0;
  std::queue<NodeId> q;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    const int hu = hops[static_cast<std::size_t>(u)];
    if (maxHops >= 0 && hu >= maxHops) continue;
    for (NodeId v : g.neighbors(u)) {
      if (hops[static_cast<std::size_t>(v)] == -1) {
        hops[static_cast<std::size_t>(v)] = hu + 1;
        q.push(v);
      }
    }
  }
  return hops;
}

std::vector<NodeId> kHopNeighborhood(const GeometricGraph& g, NodeId source, int k) {
  const auto hops = bfsHops(g, source, k);
  std::vector<NodeId> out;
  for (std::size_t v = 0; v < hops.size(); ++v) {
    if (hops[v] >= 0) out.push_back(static_cast<NodeId>(v));
  }
  return out;
}

}  // namespace hybrid::graph
