#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace hybrid::graph {

/// Result of a single-source shortest-path computation.
struct ShortestPathTree {
  std::vector<double> dist;  ///< Euclidean distance from the source; +inf if unreachable.
  std::vector<NodeId> pred;  ///< Predecessor on a shortest path; -1 at source/unreachable.

  /// Reconstructs the source->target node path; empty if unreachable or if
  /// the predecessor chain is corrupted (more than n hops ⇒ a cycle).
  std::vector<NodeId> pathTo(NodeId target) const;
};

/// Dijkstra with Euclidean edge weights from `source`. If `target` >= 0 the
/// search stops once the target is settled.
ShortestPathTree dijkstra(const GeometricGraph& g, NodeId source, NodeId target = -1);

/// A* with Euclidean heuristic; returns the node path (empty if unreachable).
std::vector<NodeId> astarPath(const GeometricGraph& g, NodeId source, NodeId target);

/// Euclidean length of the shortest path, +inf if unreachable.
double shortestPathLength(const GeometricGraph& g, NodeId source, NodeId target);

/// BFS hop distances from `source` (-1 if unreachable). `maxHops` < 0 means
/// unbounded; otherwise exploration stops beyond that many hops.
std::vector<int> bfsHops(const GeometricGraph& g, NodeId source, int maxHops = -1);

/// Nodes within `k` hops of `source`, including the source itself.
std::vector<NodeId> kHopNeighborhood(const GeometricGraph& g, NodeId source, int k);

}  // namespace hybrid::graph
