#include "holes/hole_detection.hpp"

#include <algorithm>
#include <set>

#include "graph/planar_faces.hpp"

namespace hybrid::holes {

namespace {

geom::Polygon ringPolygon(const graph::GeometricGraph& g,
                          const std::vector<graph::NodeId>& ring) {
  std::vector<geom::Vec2> pts;
  pts.reserve(ring.size());
  for (graph::NodeId v : ring) pts.push_back(g.position(v));
  return geom::Polygon(std::move(pts));
}

std::size_t distinctCount(const std::vector<graph::NodeId>& ring) {
  std::set<graph::NodeId> s(ring.begin(), ring.end());
  return s.size();
}

}  // namespace

std::vector<geom::Polygon> HoleAnalysis::holePolygons() const {
  std::vector<geom::Polygon> out;
  out.reserve(holes.size());
  for (const Hole& h : holes) out.push_back(h.polygon);
  return out;
}

HoleAnalysis detectHoles(const graph::GeometricGraph& ldel, double radius) {
  HoleAnalysis out;
  out.isHoleNode.assign(ldel.numNodes(), 0);
  out.holesOfNode.assign(ldel.numNodes(), {});

  // Inner holes: bounded faces with >= 4 distinct nodes.
  const auto faces = graph::enumerateFaces(ldel);
  for (const auto& f : faces) {
    if (f.outer) {
      // The outer face of the (connected) LDel graph: keep the largest walk
      // in case isolated components produce several outer walks.
      if (f.cycle.size() > out.outerBoundary.size()) out.outerBoundary = f.cycle;
      continue;
    }
    if (distinctCount(f.cycle) < 4) continue;
    Hole h;
    h.ring = f.cycle;
    h.polygon = ringPolygon(ldel, h.ring);
    h.outer = false;
    out.holes.push_back(std::move(h));
  }

  // Outer holes: augment with the convex hull of V and look for bounded
  // faces that use a hull edge longer than the radius.
  const auto hullIdx = geom::convexHullIndices(ldel.positions());
  std::set<std::pair<graph::NodeId, graph::NodeId>> longHullEdges;
  graph::GeometricGraph augmented = ldel;
  for (std::size_t i = 0; i < hullIdx.size(); ++i) {
    const graph::NodeId a = hullIdx[i];
    const graph::NodeId b = hullIdx[(i + 1) % hullIdx.size()];
    if (augmented.edgeLength(a, b) > radius && !augmented.hasEdge(a, b)) {
      augmented.addEdge(a, b);
      longHullEdges.insert({std::min(a, b), std::max(a, b)});
    }
  }
  if (!longHullEdges.empty()) {
    for (const auto& f : graph::enumerateFaces(augmented)) {
      if (f.outer || distinctCount(f.cycle) < 3) continue;
      bool usesLongHullEdge = false;
      for (std::size_t i = 0; i < f.cycle.size(); ++i) {
        graph::NodeId a = f.cycle[i];
        graph::NodeId b = f.cycle[(i + 1) % f.cycle.size()];
        if (a > b) std::swap(a, b);
        if (longHullEdges.contains({a, b})) {
          usesLongHullEdge = true;
          break;
        }
      }
      if (!usesLongHullEdge) continue;
      // Skip plain triangles of the original graph (all edges real & short).
      Hole h;
      h.ring = f.cycle;
      h.polygon = ringPolygon(ldel, h.ring);
      h.outer = true;
      out.holes.push_back(std::move(h));
    }
  }

  for (std::size_t hi = 0; hi < out.holes.size(); ++hi) {
    for (graph::NodeId v : out.holes[hi].ring) {
      out.isHoleNode[static_cast<std::size_t>(v)] = 1;
      auto& list = out.holesOfNode[static_cast<std::size_t>(v)];
      if (list.empty() || list.back() != static_cast<int>(hi)) {
        list.push_back(static_cast<int>(hi));
      }
    }
  }
  return out;
}

}  // namespace hybrid::holes
