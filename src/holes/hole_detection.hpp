#pragma once

#include <vector>

#include "geom/polygon.hpp"
#include "graph/graph.hpp"

namespace hybrid::holes {

/// A radio hole of the 2-localized Delaunay graph.
///
/// Inner holes (paper Def. 2.4) are bounded faces with at least four nodes.
/// Outer holes (Def. 2.5) are faces of the graph augmented with the convex
/// hull of V that contain a hull edge longer than the unit radius.
/// The ring lists the boundary nodes counter-clockwise around the hole
/// interior, so the hole polygon has the hole region as its interior.
struct Hole {
  std::vector<graph::NodeId> ring;
  geom::Polygon polygon;
  bool outer = false;

  double perimeter() const { return polygon.perimeter(); }  ///< P(h)
};

/// Result of the hole detection step.
struct HoleAnalysis {
  std::vector<Hole> holes;
  std::vector<graph::NodeId> outerBoundary;  ///< Outer face walk (clockwise).
  std::vector<char> isHoleNode;              ///< Per-node flag.
  std::vector<std::vector<int>> holesOfNode; ///< Hole indices per node.

  /// Hole polygons, in hole order — the obstacle set for visibility tests.
  std::vector<geom::Polygon> holePolygons() const;
};

/// Detects all radio holes of a planar-embedded LDel^2 graph. `radius` is
/// the unit-disk radius used by the outer-hole rule (hull edges > radius).
HoleAnalysis detectHoles(const graph::GeometricGraph& ldel, double radius = 1.0);

}  // namespace hybrid::holes
