#include "io/animation.hpp"

#include <fstream>
#include <sstream>

namespace hybrid::io {

namespace {

void writePoints(std::ostream& os, const std::vector<geom::Vec2>& pts) {
  os << '[';
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) os << ',';
    os << '[' << pts[i].x << ',' << pts[i].y << ']';
  }
  os << ']';
}

}  // namespace

bool AnimationExporter::save(const std::string& path, const std::string& title) const {
  std::ofstream out(path);
  if (!out) return false;

  std::ostringstream data;
  data << '[';
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    const Frame& fr = frames_[f];
    if (f > 0) data << ',';
    data << "{\"nodes\":";
    writePoints(data, fr.nodes);
    data << ",\"holes\":[";
    for (std::size_t h = 0; h < fr.holes.size(); ++h) {
      if (h > 0) data << ',';
      writePoints(data, fr.holes[h].vertices());
    }
    data << "],\"route\":";
    writePoints(data, fr.route);
    data << ",\"caption\":\"" << fr.caption << "\"}";
  }
  data << ']';

  out << "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>" << title
      << "</title></head><body style=\"font-family:sans-serif;background:#fafafa\">\n"
      << "<h3>" << title << "</h3>\n"
      << "<canvas id=\"c\" width=\"760\" height=\"760\" "
         "style=\"border:1px solid #ccc;background:#fff\"></canvas>\n"
      << "<div><button onclick=\"playing=!playing\">play/pause</button> "
         "<span id=\"cap\"></span></div>\n"
      << "<script>\n"
      << "const W=" << width_ << ", H=" << height_ << ";\n"
      << "const frames=" << data.str() << ";\n"
      << R"JS(
const cv = document.getElementById('c'), ctx = cv.getContext('2d');
const sx = p => p[0] / W * cv.width, sy = p => (1 - p[1] / H) * cv.height;
let i = 0, playing = true;
function draw() {
  const f = frames[i];
  ctx.clearRect(0, 0, cv.width, cv.height);
  ctx.fillStyle = 'rgba(217,100,89,0.25)';
  ctx.strokeStyle = '#d96459';
  for (const hole of f.holes) {
    ctx.beginPath();
    hole.forEach((p, k) => k ? ctx.lineTo(sx(p), sy(p)) : ctx.moveTo(sx(p), sy(p)));
    ctx.closePath(); ctx.fill(); ctx.stroke();
  }
  ctx.fillStyle = '#5a5a5a';
  for (const p of f.nodes) ctx.fillRect(sx(p) - 1, sy(p) - 1, 2, 2);
  if (f.route.length > 1) {
    ctx.strokeStyle = '#2c8a4b'; ctx.lineWidth = 2;
    ctx.beginPath();
    f.route.forEach((p, k) => k ? ctx.lineTo(sx(p), sy(p)) : ctx.moveTo(sx(p), sy(p)));
    ctx.stroke(); ctx.lineWidth = 1;
  }
  document.getElementById('cap').textContent =
      'frame ' + (i + 1) + '/' + frames.length + '  ' + f.caption;
}
setInterval(() => { if (playing) { i = (i + 1) % frames.length; draw(); } }, 700);
draw();
)JS"
      << "</script></body></html>\n";
  return static_cast<bool>(out);
}

}  // namespace hybrid::io
