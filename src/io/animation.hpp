#pragma once

#include <string>
#include <vector>

#include "geom/polygon.hpp"
#include "graph/graph.hpp"

namespace hybrid::io {

/// Records a sequence of dynamic-scenario frames (node positions, hole
/// polygons, an optional route) and writes a self-contained HTML page with
/// a canvas player — the visual companion to the §6 mobility experiments.
class AnimationExporter {
 public:
  AnimationExporter(double width, double height) : width_(width), height_(height) {}

  struct Frame {
    std::vector<geom::Vec2> nodes;
    std::vector<geom::Polygon> holes;
    std::vector<geom::Vec2> route;
    std::string caption;
  };

  void addFrame(Frame frame) { frames_.push_back(std::move(frame)); }
  std::size_t numFrames() const { return frames_.size(); }

  /// Writes the HTML document; false on I/O failure.
  bool save(const std::string& path, const std::string& title = "hybridrouting") const;

 private:
  double width_;
  double height_;
  std::vector<Frame> frames_;
};

}  // namespace hybrid::io
