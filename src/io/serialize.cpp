#include "io/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

namespace hybrid::io {

namespace {

// Next non-empty, non-comment line.
bool nextLine(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void writeScenario(std::ostream& os, const scenario::Scenario& sc) {
  os << "scenario v1\n";
  os << std::setprecision(17);
  os << "radius " << sc.radius << "\n";
  os << "points " << sc.points.size() << "\n";
  for (const auto& p : sc.points) os << p.x << ' ' << p.y << "\n";
  for (const auto& obs : sc.obstacles) {
    os << "obstacle " << obs.size() << "\n";
    for (const auto& v : obs.vertices()) os << v.x << ' ' << v.y << "\n";
  }
}

bool saveScenario(const std::string& path, const scenario::Scenario& sc) {
  std::ofstream out(path);
  if (!out) return false;
  writeScenario(out, sc);
  return static_cast<bool>(out);
}

std::optional<scenario::Scenario> readScenario(std::istream& is) {
  std::string line;
  if (!nextLine(is, line) || line.rfind("scenario v1", 0) != 0) return std::nullopt;

  scenario::Scenario sc;
  while (nextLine(is, line)) {
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "radius") {
      if (!(ls >> sc.radius) || sc.radius <= 0.0) return std::nullopt;
    } else if (kind == "points") {
      std::size_t n = 0;
      if (!(ls >> n)) return std::nullopt;
      sc.points.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (!nextLine(is, line)) return std::nullopt;
        std::istringstream ps(line);
        geom::Vec2 p;
        if (!(ps >> p.x >> p.y)) return std::nullopt;
        sc.points.push_back(p);
      }
    } else if (kind == "obstacle") {
      std::size_t k = 0;
      if (!(ls >> k) || k < 3) return std::nullopt;
      std::vector<geom::Vec2> verts;
      verts.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        if (!nextLine(is, line)) return std::nullopt;
        std::istringstream ps(line);
        geom::Vec2 p;
        if (!(ps >> p.x >> p.y)) return std::nullopt;
        verts.push_back(p);
      }
      sc.obstacles.emplace_back(std::move(verts));
    } else {
      return std::nullopt;  // unknown directive
    }
  }
  if (sc.points.empty()) return std::nullopt;
  return sc;
}

std::optional<scenario::Scenario> loadScenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return readScenario(in);
}

}  // namespace hybrid::io
