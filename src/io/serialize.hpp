#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "scenario/generator.hpp"

namespace hybrid::io {

/// Plain-text scenario serialization, for sharing deployments between the
/// CLI, experiments and external tools.
///
/// Format (line oriented, '#' comments allowed):
///   scenario v1
///   radius <r>
///   points <n>
///   <x> <y>           (n lines)
///   obstacle <k>      (repeated per obstacle)
///   <x> <y>           (k lines)
void writeScenario(std::ostream& os, const scenario::Scenario& sc);
bool saveScenario(const std::string& path, const scenario::Scenario& sc);

/// Parses the format above; returns nullopt on malformed input.
std::optional<scenario::Scenario> readScenario(std::istream& is);
std::optional<scenario::Scenario> loadScenario(const std::string& path);

}  // namespace hybrid::io
