#include "io/svg_export.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hybrid::io {

SvgExporter::SvgExporter(const core::HybridNetwork& net, double scale)
    : net_(net), scale_(scale) {
  box_ = geom::BBox::of(net.ldel().positions());
  const double pad = 1.0;
  box_.expand({box_.lo.x - pad, box_.lo.y - pad});
  box_.expand({box_.hi.x + pad, box_.hi.y + pad});
}

std::string SvgExporter::pointStr(geom::Vec2 p) const {
  // SVG y grows downward; flip so the plot matches math coordinates.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f,%.2f", (p.x - box_.lo.x) * scale_,
                (box_.hi.y - p.y) * scale_);
  return buf;
}

void SvgExporter::polyline(const std::vector<geom::Vec2>& pts, const std::string& stroke,
                           double width, bool closed, const std::string& fill) {
  std::ostringstream os;
  os << (closed ? "<polygon" : "<polyline") << " points=\"";
  for (const auto& p : pts) os << pointStr(p) << ' ';
  os << "\" fill=\"" << fill << "\" stroke=\"" << stroke << "\" stroke-width=\"" << width
     << "\"/>\n";
  body_ += os.str();
}

SvgExporter& SvgExporter::drawNetwork(bool drawNodes) {
  for (const auto& [u, v] : net_.ldel().edges()) {
    polyline({net_.ldel().position(u), net_.ldel().position(v)}, "#c8c8c8", 0.6, false);
  }
  if (drawNodes) {
    for (const auto& p : net_.ldel().positions()) {
      std::ostringstream c;
      c << "<circle cx=\"" << (p.x - box_.lo.x) * scale_ << "\" cy=\""
        << (box_.hi.y - p.y) * scale_ << "\" r=\"1.4\" fill=\"#5a5a5a\"/>\n";
      body_ += c.str();
    }
  }
  return *this;
}

SvgExporter& SvgExporter::drawHoles() {
  for (const auto& h : net_.holes().holes) {
    polyline(h.polygon.vertices(), h.outer ? "#e8b04c" : "#d96459", 1.2, true,
             h.outer ? "rgba(232,176,76,0.25)" : "rgba(217,100,89,0.25)");
  }
  return *this;
}

SvgExporter& SvgExporter::drawAbstractions() {
  for (const auto& a : net_.abstractions()) {
    if (a.hullPolygon.size() < 3) continue;
    polyline(a.hullPolygon.vertices(), "#3166a8", 1.6, true);
    for (const auto& p : a.hullPolygon.vertices()) {
      std::ostringstream c;
      c << "<circle cx=\"" << (p.x - box_.lo.x) * scale_ << "\" cy=\""
        << (box_.hi.y - p.y) * scale_ << "\" r=\"3.0\" fill=\"#3166a8\"/>\n";
      body_ += c.str();
    }
  }
  return *this;
}

SvgExporter& SvgExporter::drawRoute(const routing::RouteResult& route,
                                    const std::string& color) {
  std::vector<geom::Vec2> pts;
  pts.reserve(route.path.size());
  for (graph::NodeId v : route.path) pts.push_back(net_.ldel().position(v));
  polyline(pts, color, 2.4, false);
  if (!pts.empty()) {
    for (const geom::Vec2 end : {pts.front(), pts.back()}) {
      std::ostringstream c;
      c << "<circle cx=\"" << (end.x - box_.lo.x) * scale_ << "\" cy=\""
        << (box_.hi.y - end.y) * scale_ << "\" r=\"5\" fill=\"" << color << "\"/>\n";
      body_ += c.str();
    }
  }
  return *this;
}

SvgExporter& SvgExporter::drawObstacles(const std::vector<geom::Polygon>& obstacles) {
  for (const auto& o : obstacles) {
    polyline(o.vertices(), "#555555", 1.0, true, "rgba(90,90,90,0.35)");
  }
  return *this;
}

bool SvgExporter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  const double w = box_.width() * scale_;
  const double h = box_.height() * scale_;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w << "\" height=\"" << h
      << "\" viewBox=\"0 0 " << w << ' ' << h << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
      << body_ << "</svg>\n";
  return static_cast<bool>(out);
}

}  // namespace hybrid::io
