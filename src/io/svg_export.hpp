#pragma once

#include <string>
#include <vector>

#include "core/hybrid_network.hpp"
#include "routing/router.hpp"

namespace hybrid::io {

/// Renders a network (and optionally routes) as a standalone SVG file, for
/// inspecting deployments, detected holes, abstractions and routing paths.
class SvgExporter {
 public:
  /// `scale`: SVG pixels per coordinate unit.
  explicit SvgExporter(const core::HybridNetwork& net, double scale = 24.0);

  /// Draw the LDel^2 edges and the nodes.
  SvgExporter& drawNetwork(bool drawNodes = true);
  /// Shade the detected hole polygons.
  SvgExporter& drawHoles();
  /// Outline each hole's convex hull and mark hull nodes.
  SvgExporter& drawAbstractions();
  /// Draw a routing path.
  SvgExporter& drawRoute(const routing::RouteResult& route, const std::string& color);
  /// Draw obstacle polygons (the ground truth that carved the holes).
  SvgExporter& drawObstacles(const std::vector<geom::Polygon>& obstacles);

  /// Writes the SVG document. Returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  std::string pointStr(geom::Vec2 p) const;
  void polyline(const std::vector<geom::Vec2>& pts, const std::string& stroke,
                double width, bool closed, const std::string& fill = "none");

  const core::HybridNetwork& net_;
  double scale_;
  geom::BBox box_;
  std::string body_;
};

}  // namespace hybrid::io
