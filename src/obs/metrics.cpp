#include "obs/metrics.hpp"

#include <algorithm>

namespace hybrid::obs {

#ifndef HYBRID_OBS_DISABLED
namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void setEnabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }
#endif

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  // Defensive: bucket search assumes ascending upper bounds.
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramData Histogram::data() const {
  HistogramData d;
  d.bounds = bounds_;
  d.counts.reserve(buckets_.size());
  for (const auto& b : buckets_) d.counts.push_back(b.load(std::memory_order_relaxed));
  d.count = count();
  d.sum = sum();
  return d;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramData>> Registry::histogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramData>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h->data());
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace hybrid::obs
