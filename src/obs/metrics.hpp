#pragma once

// Low-overhead observability primitives: thread-safe counters, gauges and
// fixed-bucket histograms behind a process-wide Registry.
//
// Two off switches:
//  - compile-out: building with -DHYBRID_OBS_DISABLED turns enabled() into
//    a compile-time false, so every `if (obs::enabled()) ...` block and
//    every HYBRID_OBS_STMT(...) is dead code the optimizer removes — hot
//    loops carry exactly zero instrumentation instructions;
//  - runtime: setEnabled(false), the default, short-circuits the same
//    checks with a single relaxed atomic load.
//
// Metrics never feed back into behavior: instrumented code must produce
// byte-identical traces, fault schedules and routing outputs with
// observability on or off, at any thread count (obs_determinism_test).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hybrid::obs {

#ifdef HYBRID_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
constexpr bool enabled() { return false; }
inline void setEnabled(bool) {}
/// Expands to nothing when observability is compiled out.
#define HYBRID_OBS_STMT(...) ((void)0)
#else
inline constexpr bool kCompiledIn = true;
namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail
/// Runtime flag; false (the default) makes all instrumentation a no-op.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void setEnabled(bool on);
/// Expands to its argument when observability is compiled in.
#define HYBRID_OBS_STMT(...) \
  do {                       \
    __VA_ARGS__;             \
  } while (0)
#endif

/// Monotonic event count. add() is wait-free and safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (sizes, throughputs, high-water marks).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-water mark semantics).
  void max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Snapshot-friendly plain-data view of one histogram.
struct HistogramData {
  std::vector<double> bounds;          ///< Ascending upper bounds.
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (last = overflow).
  std::uint64_t count = 0;
  double sum = 0.0;

  bool operator==(const HistogramData&) const = default;
};

/// Fixed-bucket latency/size histogram. Bucket i counts values v with
/// bounds[i-1] < v <= bounds[i] (bucket 0 is v <= bounds[0]); values above
/// the last bound land in the overflow bucket. record() is wait-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v);
  const std::vector<double>& bounds() const { return bounds_; }
  std::size_t numBuckets() const { return buckets_.size(); }
  std::uint64_t bucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  HistogramData data() const;
  void reset();

 private:
  std::vector<double> bounds_;
  // Sized once at construction, never resized (atomics are immovable).
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> metric map with create-once semantics and stable addresses: a
/// returned reference stays valid for the process lifetime, so hot paths
/// resolve a metric once and keep the pointer. Lookups lock; the metric
/// operations themselves are lock-free.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is only consulted when the histogram is first created.
  Histogram& histogram(const std::string& name, const std::vector<double>& bounds);

  std::vector<std::pair<std::string, std::uint64_t>> counterValues() const;
  std::vector<std::pair<std::string, double>> gaugeValues() const;
  std::vector<std::pair<std::string, HistogramData>> histogramValues() const;

  /// Zeroes every metric; registrations (names, bucket bounds) are kept.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hybrid::obs
