#include "obs/snapshot.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace hybrid::obs {

Snapshot capture() {
  Snapshot s;
  s.counters = Registry::global().counterValues();
  s.gauges = Registry::global().gaugeValues();
  s.histograms = Registry::global().histogramValues();
  for (const auto& [path, st] : Tracer::global().spanValues()) {
    s.spans.push_back({path, st.count, st.totalNs});
  }
  return s;
}

namespace {

void appendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void appendQuoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string toJson(const Snapshot& s) {
  std::string out = "{\n  \"schema\": \"hybrid-obs/1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : s.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendQuoted(out, name);
    out += ": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : s.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendQuoted(out, name);
    out += ": ";
    appendDouble(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    appendQuoted(out, name);
    out += ": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      appendDouble(out, h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) + ", \"sum\": ";
    appendDouble(out, h.sum);
    out += "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": [";
  first = true;
  for (const auto& sp : s.spans) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"path\": ";
    appendQuoted(out, sp.path);
    out += ", \"count\": " + std::to_string(sp.count) +
           ", \"ns\": " + std::to_string(sp.totalNs) + "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string toCsv(const Snapshot& s) {
  std::string out = "kind,name,value\n";
  for (const auto& [name, v] : s.counters) {
    out += "counter," + name + "," + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : s.gauges) {
    out += "gauge," + name + ",";
    appendDouble(out, v);
    out += "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      out += "histogram," + name + "[le=";
      if (i < h.bounds.size()) {
        appendDouble(out, h.bounds[i]);
      } else {
        out += "+inf";
      }
      out += "]," + std::to_string(h.counts[i]) + "\n";
    }
  }
  for (const auto& sp : s.spans) {
    out += "span," + sp.path + "," + std::to_string(sp.totalNs) + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader — just enough for the schema above
// (and tolerant of unknown keys). Numbers parse with strtod, which
// round-trips the %.17g the writer emits.
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  const char* p;
  const char* end;
  bool ok = true;

  void skipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool consume(char c) {
    skipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    ok = false;
    return false;
  }
  bool peek(char c) {
    skipWs();
    return p < end && *p == c;
  }

  std::string parseString() {
    std::string out;
    if (!consume('"')) return out;
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) {
        ++p;
        switch (*p) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            out += *p;
        }
      } else {
        out += *p;
      }
      ++p;
    }
    if (p >= end) {
      ok = false;
      return out;
    }
    ++p;  // closing quote
    return out;
  }

  double parseNumber() {
    skipWs();
    char* numEnd = nullptr;
    const double v = std::strtod(p, &numEnd);
    if (numEnd == p) {
      ok = false;
      return 0.0;
    }
    p = numEnd;
    return v;
  }

  /// Exact unsigned parse for counter-like fields: a uint64 above 2^53
  /// would lose its low bits through a double.
  std::uint64_t parseUint() {
    skipWs();
    if (p < end && (std::isdigit(static_cast<unsigned char>(*p)) != 0)) {
      char* numEnd = nullptr;
      const std::uint64_t v = std::strtoull(p, &numEnd, 10);
      // Integer token only; anything like "1.5" or "1e9" falls back to
      // the double path.
      if (numEnd > p && (numEnd >= end || (*numEnd != '.' && *numEnd != 'e' &&
                                           *numEnd != 'E'))) {
        p = numEnd;
        return v;
      }
    }
    return static_cast<std::uint64_t>(parseNumber());
  }

  /// Skips any JSON value (used for unknown keys).
  void skipValue() {
    skipWs();
    if (p >= end) {
      ok = false;
      return;
    }
    if (*p == '"') {
      parseString();
    } else if (*p == '{') {
      ++p;
      skipWs();
      if (peek('}')) {
        consume('}');
        return;
      }
      while (ok) {
        parseString();
        consume(':');
        skipValue();
        if (!peek(',')) break;
        consume(',');
      }
      consume('}');
    } else if (*p == '[') {
      ++p;
      skipWs();
      if (peek(']')) {
        consume(']');
        return;
      }
      while (ok) {
        skipValue();
        if (!peek(',')) break;
        consume(',');
      }
      consume(']');
    } else if (std::strncmp(p, "true", 4) == 0) {
      p += 4;
    } else if (std::strncmp(p, "false", 5) == 0) {
      p += 5;
    } else if (std::strncmp(p, "null", 4) == 0) {
      p += 4;
    } else {
      parseNumber();
    }
  }

  /// Iterates `fn(key)` over an object's members; fn must consume the value.
  template <typename Fn>
  void parseObject(Fn&& fn) {
    if (!consume('{')) return;
    if (peek('}')) {
      consume('}');
      return;
    }
    while (ok) {
      const std::string key = parseString();
      consume(':');
      fn(key);
      if (!peek(',')) break;
      consume(',');
    }
    consume('}');
  }

  /// Iterates `fn()` over an array's elements; fn must consume the value.
  template <typename Fn>
  void parseArray(Fn&& fn) {
    if (!consume('[')) return;
    if (peek(']')) {
      consume(']');
      return;
    }
    while (ok) {
      fn();
      if (!peek(',')) break;
      consume(',');
    }
    consume(']');
  }
};

}  // namespace

std::optional<Snapshot> fromJson(const std::string& json) {
  Parser pr{json.data(), json.data() + json.size()};
  Snapshot s;
  pr.parseObject([&](const std::string& key) {
    if (key == "counters") {
      pr.parseObject([&](const std::string& name) {
        s.counters.emplace_back(name, pr.parseUint());
      });
    } else if (key == "gauges") {
      pr.parseObject(
          [&](const std::string& name) { s.gauges.emplace_back(name, pr.parseNumber()); });
    } else if (key == "histograms") {
      pr.parseObject([&](const std::string& name) {
        HistogramData h;
        pr.parseObject([&](const std::string& field) {
          if (field == "bounds") {
            pr.parseArray([&] { h.bounds.push_back(pr.parseNumber()); });
          } else if (field == "counts") {
            pr.parseArray([&] { h.counts.push_back(pr.parseUint()); });
          } else if (field == "count") {
            h.count = pr.parseUint();
          } else if (field == "sum") {
            h.sum = pr.parseNumber();
          } else {
            pr.skipValue();
          }
        });
        s.histograms.emplace_back(name, std::move(h));
      });
    } else if (key == "spans") {
      pr.parseArray([&] {
        SpanData sp;
        pr.parseObject([&](const std::string& field) {
          if (field == "path") {
            sp.path = pr.parseString();
          } else if (field == "count") {
            sp.count = pr.parseUint();
          } else if (field == "ns") {
            sp.totalNs = pr.parseUint();
          } else {
            pr.skipValue();
          }
        });
        s.spans.push_back(std::move(sp));
      });
    } else {
      pr.skipValue();
    }
  });
  if (!pr.ok) return std::nullopt;
  return s;
}

bool saveSnapshot(const std::string& path, const Snapshot& s) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string json = toJson(s);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

std::optional<Snapshot> loadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return fromJson(ss.str());
}

}  // namespace hybrid::obs
