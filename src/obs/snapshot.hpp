#pragma once

// Point-in-time export of the observability registry + span tree, with a
// stable machine-readable schema ("hybrid-obs/1"):
//
// {
//   "schema": "hybrid-obs/1",
//   "counters":   { "<name>": <uint>, ... },
//   "gauges":     { "<name>": <double>, ... },
//   "histograms": { "<name>": { "bounds": [..], "counts": [..],
//                               "count": <uint>, "sum": <double> }, ... },
//   "spans":      [ { "path": "a/b", "count": <uint>, "ns": <uint> }, ... ]
// }
//
// Keys are emitted in sorted order and doubles with %.17g, so two captures
// of identical metric values serialize byte-identically and round-trip
// through fromJson() without loss. tools/metrics_report diffs and gates on
// these files; bench/baselines/*.json are checked-in instances.

#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace hybrid::obs {

struct SpanData {
  std::string path;
  std::uint64_t count = 0;
  std::uint64_t totalNs = 0;

  bool operator==(const SpanData&) const = default;
};

struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< Name-sorted.
  std::vector<std::pair<std::string, double>> gauges;           ///< Name-sorted.
  std::vector<std::pair<std::string, HistogramData>> histograms;
  std::vector<SpanData> spans;  ///< Depth-first path order.

  bool operator==(const Snapshot&) const = default;
};

/// Captures the global Registry and Tracer.
Snapshot capture();

std::string toJson(const Snapshot& s);
/// One `kind,name,value` row per counter/gauge plus per-histogram-bucket
/// `histogram,<name>[le=<bound>],<count>` rows.
std::string toCsv(const Snapshot& s);
/// Parses toJson() output (tolerates unknown keys); nullopt when malformed.
std::optional<Snapshot> fromJson(const std::string& json);

bool saveSnapshot(const std::string& path, const Snapshot& s);
std::optional<Snapshot> loadSnapshot(const std::string& path);

}  // namespace hybrid::obs
