#include "obs/span.hpp"

namespace hybrid::obs {

namespace {
// Per-thread span nesting: the node the next ScopedSpan is a child of.
// Index into Tracer::nodes_; 0 is the root.
thread_local int t_current = 0;
}  // namespace

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

int Tracer::enter(const char* name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.empty()) nodes_.emplace_back();  // root
  const int parent = t_current < static_cast<int>(nodes_.size()) ? t_current : 0;
  auto& children = nodes_[static_cast<std::size_t>(parent)].children;
  auto it = children.find(name);
  int id;
  if (it != children.end()) {
    id = it->second;
  } else {
    id = static_cast<int>(nodes_.size());
    Node n;
    n.name = name;
    n.parent = parent;
    nodes_.push_back(std::move(n));
    nodes_[static_cast<std::size_t>(parent)].children.emplace(name, id);
  }
  t_current = id;
  return id;
}

void Tracer::exit(int node, std::uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  // A reset() between enter and exit invalidates the id; drop the sample.
  if (node <= 0 || node >= static_cast<int>(nodes_.size())) return;
  auto& n = nodes_[static_cast<std::size_t>(node)];
  ++n.stats.count;
  n.stats.totalNs += ns;
  t_current = n.parent >= 0 ? n.parent : 0;
}

void Tracer::appendSubtree(int node, const std::string& prefix,
                           std::vector<std::pair<std::string, SpanStats>>& out) const {
  const auto& n = nodes_[static_cast<std::size_t>(node)];
  std::string path;
  if (node != 0) {
    path = prefix.empty() ? n.name : prefix + "/" + n.name;
    out.emplace_back(path, n.stats);
  }
  // std::map iterates children in name order: deterministic paths.
  for (const auto& [name, child] : n.children) appendSubtree(child, path, out);
}

std::vector<std::pair<std::string, SpanStats>> Tracer::spanValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, SpanStats>> out;
  if (!nodes_.empty()) appendSubtree(0, "", out);
  return out;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.clear();
  t_current = 0;
}

}  // namespace hybrid::obs
