#pragma once

// Scoped trace spans: RAII wall-clock timers aggregated into a
// deterministic span tree. A span node is identified by its (parent, name)
// pair, so the tree's *structure* — paths and visit counts — depends only
// on what code ran, never on timing or thread interleaving; only the
// accumulated durations vary between runs. Spans are meant for coarse
// phases (an overlay build, a simulator run), not per-message events: each
// enter/exit takes one mutex acquisition on the tracer.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace hybrid::obs {

struct SpanStats {
  std::uint64_t count = 0;    ///< Completed visits.
  std::uint64_t totalNs = 0;  ///< Wall-clock time summed over visits.
};

/// Process-wide span aggregator. Thread-safe; each thread nests spans
/// independently (a worker thread's outermost span hangs off the root).
class Tracer {
 public:
  static Tracer& global();

  /// Flattened tree in depth-first path order; paths join names with '/'.
  std::vector<std::pair<std::string, SpanStats>> spanValues() const;

  /// Drops all nodes and statistics.
  void reset();

 private:
  friend class ScopedSpan;
  int enter(const char* name);
  void exit(int node, std::uint64_t ns);

  struct Node {
    std::string name;
    int parent = -1;
    std::map<std::string, int> children;
    SpanStats stats;
  };

  void appendSubtree(int node, const std::string& prefix,
                     std::vector<std::pair<std::string, SpanStats>>& out) const;

  mutable std::mutex mu_;
  std::vector<Node> nodes_;  ///< nodes_[0] is the unnamed root.
};

/// Times the enclosing scope into the global span tree. Constructing one
/// while observability is disabled is a no-op (and stays a no-op even if
/// the flag flips before destruction).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
#ifndef HYBRID_OBS_DISABLED
    if (enabled()) {
      node_ = Tracer::global().enter(name);
      t0_ = std::chrono::steady_clock::now();
    }
#else
    (void)name;
#endif
  }

  ~ScopedSpan() {
#ifndef HYBRID_OBS_DISABLED
    if (node_ >= 0) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0_)
                          .count();
      Tracer::global().exit(node_, static_cast<std::uint64_t>(ns));
    }
#endif
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
#ifndef HYBRID_OBS_DISABLED
  int node_ = -1;
  std::chrono::steady_clock::time_point t0_;
#endif
};

}  // namespace hybrid::obs
