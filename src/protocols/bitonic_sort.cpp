#include "protocols/bitonic_sort.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace hybrid::protocols {

namespace {

struct SortState {
  int pos = -1;         ///< Hypercube position (ring-distance ID).
  double key = 0.0;
  double partnerKey = 0.0;
  bool gotPartner = false;
};

class BitonicProtocol : public sim::Protocol {
 public:
  BitonicProtocol(std::vector<SortState>& st, const std::vector<int>& ring, int dims)
      : st_(st), ring_(ring), dims_(dims) {
    for (int stage = 0; stage < dims_; ++stage) {
      for (int sub = stage; sub >= 0; --sub) schedule_.emplace_back(stage, sub);
    }
  }

  int exchanges() const { return static_cast<int>(schedule_.size()); }

  void onStart(sim::Context& ctx) override { sendExchange(ctx, 0); }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    SortState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (s.pos < 0) return;
    s.partnerKey = m.reals[0];
    s.gotPartner = true;
  }

  void onRoundEnd(sim::Context& ctx) override {
    SortState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (s.pos < 0 || !s.gotPartner) return;
    s.gotPartner = false;
    const int idx = ctx.round() - 1;
    const auto [stage, sub] = schedule_[static_cast<std::size_t>(idx)];
    const int partner = s.pos ^ (1 << sub);
    const bool ascending = (s.pos & (1 << (stage + 1))) == 0;
    const bool lowSide = s.pos < partner;
    const bool keepMin = ascending == lowSide;
    s.key = keepMin ? std::min(s.key, s.partnerKey) : std::max(s.key, s.partnerKey);
    sendExchange(ctx, ctx.round());
  }

 private:
  void sendExchange(sim::Context& ctx, int round) {
    SortState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (s.pos < 0 || round >= exchanges()) return;
    const auto [stage, sub] = schedule_[static_cast<std::size_t>(round)];
    (void)stage;
    const int partnerPos = s.pos ^ (1 << sub);
    sim::Message m;
    m.reals = {s.key};
    ctx.sendLongRange(ring_[static_cast<std::size_t>(partnerPos)], std::move(m));
  }

  std::vector<SortState>& st_;
  const std::vector<int>& ring_;
  int dims_;
  std::vector<std::pair<int, int>> schedule_;
};

}  // namespace

BitonicSorter::BitonicSorter(sim::Simulator& simulator, std::vector<int> ring,
                             std::vector<double> keys)
    : sim_(simulator), ring_(std::move(ring)), keys_(std::move(keys)) {
  const std::size_t k = ring_.size();
  if (k == 0 || (k & (k - 1)) != 0) {
    throw std::invalid_argument("BitonicSorter: ring size must be a power of two");
  }
  if (keys_.size() != k) {
    throw std::invalid_argument("BitonicSorter: one key per ring member required");
  }
  // The doubling contacts (ring distance 2^j in either direction) come from
  // the pointer-jumping phase; make them known here so the sorter can run
  // standalone as well.
  int dims = 0;
  while ((1u << dims) < k) ++dims;
  for (std::size_t p = 0; p < k; ++p) {
    for (int j = 0; j < dims; ++j) {
      sim_.introduce(ring_[p], ring_[p ^ (1u << j)]);
    }
  }
}

int BitonicSorter::run() {
  const std::size_t k = ring_.size();
  int dims = 0;
  while ((1u << dims) < k) ++dims;

  std::vector<SortState> st(sim_.numNodes());
  for (std::size_t i = 0; i < k; ++i) {
    st[static_cast<std::size_t>(ring_[i])].pos = static_cast<int>(i);
    st[static_cast<std::size_t>(ring_[i])].key = keys_[i];
  }
  BitonicProtocol proto(st, ring_, dims);
  const int rounds = sim_.run(proto);
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("proto.bitonic.sorts").add(1);
    reg.counter("proto.bitonic.rounds").add(static_cast<std::uint64_t>(rounds));
  });

  sorted_.assign(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    sorted_[i] = st[static_cast<std::size_t>(ring_[i])].key;
  }
  return rounds;
}

}  // namespace hybrid::protocols
