#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// Batcher's bitonic sort on the hypercube emulated by a ring of k = 2^d
/// nodes (paper §5.3). Slot p holds one key; the compare-exchange partner
/// in substage j is p XOR 2^j, which is exactly the pointer-jumping contact
/// at ring distance 2^j. Runs in d*(d+1)/2 exchange rounds = O(log^2 k).
///
/// The paper assumes power-of-two rings for this step ("For simplicity, we
/// assume the number of nodes in the ring to be a power of two"); we mirror
/// that assumption. The convex hull protocol does not need the sort (its
/// hull-of-union merge is order-free), so general rings skip this phase.
class BitonicSorter {
 public:
  /// `ring`: member node ids in ring order (size must be a power of two).
  /// `keys[i]` is the key initially held by ring[i].
  BitonicSorter(sim::Simulator& simulator, std::vector<int> ring, std::vector<double> keys);

  /// Runs the sort; returns rounds used.
  int run();

  /// Key held at ring position i after the sort.
  const std::vector<double>& sortedKeys() const { return sorted_; }

 private:
  sim::Simulator& sim_;
  std::vector<int> ring_;
  std::vector<double> keys_;
  std::vector<double> sorted_;
};

}  // namespace hybrid::protocols
