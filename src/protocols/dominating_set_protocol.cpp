#include "protocols/dominating_set_protocol.hpp"
#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "obs/metrics.hpp"

namespace hybrid::protocols {

namespace {

// Deterministic per-(node, round) hash, used for coins and for the random
// priorities that break span ties (monotone-ID chains would otherwise
// degrade to one join per super-round).
std::uint64_t mix(unsigned seed, int node, int round) {
  std::uint64_t x = (static_cast<std::uint64_t>(seed) << 32) ^
                    (static_cast<std::uint64_t>(node) << 16) ^
                    static_cast<std::uint64_t>(round);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

bool coin(unsigned seed, int node, int round) { return (mix(seed, node, round) & 1) != 0; }

struct DsState {
  int chain = -1;
  int left = -1;   ///< -1 at the chain ends.
  int right = -1;
  bool covered = false;
  bool inDS = false;
  bool leftCovered = true;   ///< Non-existent neighbors count as covered.
  bool rightCovered = true;
  int span = 0;
  std::uint64_t prio = 0;        ///< This super-round's random priority.
  int bestNearbySpan = 0;        ///< Max (span, prio, id)-key within two hops.
  std::uint64_t bestNearbyPrio = 0;
  int bestNearbyId = -1;
};

// Sub-round schedule within each super-round of four rounds.
constexpr int kMsgCovered = 1;  // ints: [covered]
constexpr int kMsgSpan = 2;     // ints: [span]
constexpr int kMsgSpan2 = 3;    // ints: [span, originId]
constexpr int kMsgJoin = 4;

class DsProtocol : public sim::Protocol {
 public:
  DsProtocol(std::vector<DsState>& st, unsigned seed) : st_(st), seed_(seed) {}

  void onStart(sim::Context& ctx) override { sendCovered(ctx); }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    DsState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (s.chain < 0) return;
    switch (m.type) {
      case kMsgCovered: {
        const bool cov = m.ints[0] != 0;
        if (m.from == s.left) s.leftCovered = cov;
        if (m.from == s.right) s.rightCovered = cov;
        break;
      }
      case kMsgSpan:
      case kMsgSpan2: {
        const int span = static_cast<int>(m.ints[0]);
        const auto prio = static_cast<std::uint64_t>(m.ints[1]);
        const int origin = m.type == kMsgSpan ? m.from : static_cast<int>(m.ints[2]);
        const auto key = std::make_tuple(span, prio, origin);
        if (key > std::make_tuple(s.bestNearbySpan, s.bestNearbyPrio, s.bestNearbyId)) {
          s.bestNearbySpan = span;
          s.bestNearbyPrio = prio;
          s.bestNearbyId = origin;
        }
        // Relay one-hop spans onward so both sides see two hops.
        if (m.type == kMsgSpan) {
          const int other = m.from == s.left ? s.right : s.left;
          if (other >= 0) {
            sim::Message relay;
            relay.type = kMsgSpan2;
            relay.ints = {span, m.ints[1], origin};
            ctx.sendLongRange(other, std::move(relay));
          }
        }
        break;
      }
      case kMsgJoin:
        // The sender joined the set, so it is covered itself...
        if (m.from == s.left) s.leftCovered = true;
        if (m.from == s.right) s.rightCovered = true;
        // ...and it covers us.
        if (!s.covered) {
          s.covered = true;
          // Freshen the neighbors' view immediately so spans converge.
          for (const int nb : {s.left, s.right}) {
            if (nb < 0) continue;
            sim::Message cov;
            cov.type = kMsgCovered;
            cov.ints = {1};
            ctx.sendLongRange(nb, std::move(cov));
          }
        }
        break;
      default:
        break;
    }
  }

  bool wantsMoreRounds() const override {
    // Keep the synchronized 3-round schedule alive while any chain node
    // still sees uncovered territory (relay-free chain ends would starve
    // the queue otherwise).
    for (const DsState& s : st_) {
      if (s.chain >= 0 && (!s.covered || !s.leftCovered || !s.rightCovered)) return true;
    }
    return false;
  }

  void onRoundEnd(sim::Context& ctx) override {
    DsState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (s.chain < 0) return;
    // Super-round of four rounds:
    //   = 0 mod 4: decide; joins and covered bits go out,
    //   = 1 mod 4: JOIN delivered; newly covered nodes re-broadcast,
    //   = 2 mod 4: all covered bits in; compute spans and send them,
    //   = 3 mod 4: one-hop spans delivered; relays forward them two hops.
    // The extra slot (vs. a three-round cycle) lets coverage from a join
    // reach two-hop neighbors *before* they recompute their spans.
    if (ctx.round() % 4 == 2) {
      onSpanRound(ctx, s);
    } else if (ctx.round() % 4 == 0 && ctx.round() > 0) {
      onDecideRound(ctx, s);
    }
  }

 private:
  void onSpanRound(sim::Context& ctx, DsState& s) {
    s.span = (s.covered ? 0 : 1) + (s.leftCovered ? 0 : 1) + (s.rightCovered ? 0 : 1);
    s.prio = mix(seed_ + 0x5151, ctx.self(), ctx.round());
    s.bestNearbySpan = s.span;
    s.bestNearbyPrio = s.prio;
    s.bestNearbyId = ctx.self();
    if (s.span == 0) return;  // nothing to cover here: passive
    for (const int nb : {s.left, s.right}) {
      if (nb < 0) continue;
      sim::Message m;
      m.type = kMsgSpan;
      m.ints = {s.span, static_cast<std::int64_t>(s.prio)};
      ctx.sendLongRange(nb, std::move(m));
    }
  }

  void onDecideRound(sim::Context& ctx, DsState& s) {
    if (s.span == 0 || s.inDS) return;
    const bool isMax = std::make_tuple(s.span, s.prio, ctx.self()) >=
                       std::make_tuple(s.bestNearbySpan, s.bestNearbyPrio, s.bestNearbyId);
    if (std::getenv("DS_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "[ds r=%d] node=%d span=%d prio=%llu best=(%d,%llu,%d) max=%d\n",
                   ctx.round(), ctx.self(), s.span,
                   static_cast<unsigned long long>(s.prio), s.bestNearbySpan,
                   static_cast<unsigned long long>(s.bestNearbyPrio), s.bestNearbyId,
                   static_cast<int>(isMax));
    }
    if (!isMax || !coin(seed_, ctx.self(), ctx.round())) {
      // Not joining this super-round; re-open the next one.
      sendCovered(ctx);
      return;
    }
    s.inDS = true;
    s.covered = true;
    // Everything in the closed neighborhood is covered by this node now.
    s.leftCovered = true;
    s.rightCovered = true;
    for (const int nb : {s.left, s.right}) {
      if (nb < 0) continue;
      sim::Message m;
      m.type = kMsgJoin;
      ctx.sendLongRange(nb, std::move(m));
    }
    sendCovered(ctx);
  }

  void sendCovered(sim::Context& ctx) {
    DsState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (s.chain < 0) return;
    // Only nodes with uncovered territory keep the protocol alive.
    if (s.covered && s.leftCovered && s.rightCovered) return;
    for (const int nb : {s.left, s.right}) {
      if (nb < 0) continue;
      sim::Message m;
      m.type = kMsgCovered;
      m.ints = {s.covered ? 1 : 0};
      ctx.sendLongRange(nb, std::move(m));
    }
  }

  std::vector<DsState>& st_;
  unsigned seed_;
};

}  // namespace

DominatingSetProtocol::DominatingSetProtocol(sim::Simulator& simulator,
                                             std::vector<std::vector<int>> chains,
                                             unsigned seed, const RetryPolicy* retry)
    : sim_(simulator), chains_(std::move(chains)), seed_(seed) {
  if (retry != nullptr) {
    withRetry_ = true;
    policy_ = *retry;
  }
  // Chain neighbors are ring neighbors, known from the boundary structure.
  for (const auto& chain : chains_) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      sim_.introduce(chain[i], chain[i + 1]);
      sim_.introduce(chain[i + 1], chain[i]);
    }
  }
}

int DominatingSetProtocol::run(int maxRounds) {
  std::vector<DsState> st(sim_.numNodes());
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    const auto& chain = chains_[c];
    for (std::size_t i = 0; i < chain.size(); ++i) {
      DsState& s = st[static_cast<std::size_t>(chain[i])];
      s.chain = static_cast<int>(c);
      s.left = i > 0 ? chain[i - 1] : -1;
      s.right = i + 1 < chain.size() ? chain[i + 1] : -1;
      s.leftCovered = s.left < 0;
      s.rightCovered = s.right < 0;
    }
  }
  DsProtocol proto(st, seed_);
  int rounds = 0;
  if (withRetry_) {
    ReliableProtocol reliable(sim_, proto, policy_);
    rounds = sim_.run(reliable, maxRounds);
    reliableStats_ = reliable.stats();
  } else {
    rounds = sim_.run(proto, maxRounds);
  }
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("proto.ds.runs").add(1);
    reg.counter("proto.ds.rounds").add(static_cast<std::uint64_t>(rounds));
  });

  result_.assign(chains_.size(), {});
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    for (int v : chains_[c]) {
      if (st[static_cast<std::size_t>(v)].inDS) result_[c].push_back(v);
    }
  }
  return rounds;
}

}  // namespace hybrid::protocols
