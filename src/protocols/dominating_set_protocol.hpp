#pragma once

#include <vector>

#include "protocols/reliable.hpp"
#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// Distributed dominating set on bay chains (paper §5.6, Jia et al. style).
///
/// Each chain is a path of hole-boundary nodes (degree Delta = 2). Rounds
/// alternate between (a) exchanging spans — the number of uncovered nodes a
/// candidate would newly cover — with chain neighbors, and (b) letting
/// candidates whose span is maximal within two hops join the set with
/// probability 1/2. The expected round count is O(log k) and the resulting
/// set is an O(1)-approximation on paths (optimum is ceil(k/3)).
class DominatingSetProtocol {
 public:
  /// `chains`: node-id paths (each node appears in at most one chain).
  /// With `retry` set, the run is wrapped in the ReliableProtocol ARQ so
  /// it converges on a lossy fault-injected simulator. Coverage is
  /// monotone and spans are recomputed every super-round, so delayed
  /// deliveries only slow convergence, never corrupt the result.
  DominatingSetProtocol(sim::Simulator& simulator, std::vector<std::vector<int>> chains,
                        unsigned seed = 1, const RetryPolicy* retry = nullptr);

  /// Runs the protocol; returns rounds used. `maxRounds` bounds the run
  /// against the (vanishingly unlikely) case that abandoned transfers
  /// leave a node waiting forever.
  int run(int maxRounds = 1 << 16);

  /// Transport counters of the last run (all zero without retry).
  const ReliableStats& reliableStats() const { return reliableStats_; }

  /// Members of the dominating set of chain `c` after run().
  const std::vector<int>& dominatingSet(std::size_t c) const { return result_[c]; }
  std::size_t numChains() const { return chains_.size(); }

 private:
  sim::Simulator& sim_;
  std::vector<std::vector<int>> chains_;
  std::vector<std::vector<int>> result_;
  unsigned seed_;
  bool withRetry_ = false;
  RetryPolicy policy_;
  ReliableStats reliableStats_;
};

}  // namespace hybrid::protocols
