#include "protocols/incremental.hpp"

#include <algorithm>
#include <set>

#include "protocols/dominating_set_protocol.hpp"

namespace hybrid::protocols {

namespace {

std::vector<int> canonical(std::vector<int> ring) {
  std::sort(ring.begin(), ring.end());
  ring.erase(std::unique(ring.begin(), ring.end()), ring.end());
  return ring;
}

// Jaccard similarity of two sorted unique id lists.
double jaccard(const std::vector<int>& a, const std::vector<int>& b) {
  std::size_t inter = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

std::vector<std::vector<int>> boundaryRings(const core::HybridNetwork& net) {
  std::vector<std::vector<int>> rings;
  for (const auto& h : net.holes().holes) rings.push_back(h.ring);
  if (net.holes().outerBoundary.size() >= 3) rings.push_back(net.holes().outerBoundary);
  return rings;
}

std::vector<RingResult> runIncrementalUpdate(const core::HybridNetwork& net,
                                             sim::Simulator& simulator,
                                             const std::vector<std::vector<int>>& previousRings,
                                             IncrementalReport* report, unsigned seed,
                                             double membershipTolerance) {
  std::vector<std::vector<int>> previous;
  previous.reserve(previousRings.size());
  for (const auto& r : previousRings) previous.push_back(canonical(r));

  const auto current = boundaryRings(net);
  RingInputs changed;
  std::vector<std::size_t> changedIdx;
  for (std::size_t i = 0; i < current.size(); ++i) {
    const auto key = canonical(current[i]);
    double best = 0.0;
    for (const auto& prev : previous) best = std::max(best, jaccard(key, prev));
    if (best < 1.0 - membershipTolerance - 1e-12) {
      changed.rings.push_back(current[i]);
      changedIdx.push_back(i);
    }
  }

  IncrementalReport rep;
  rep.totalRings = static_cast<int>(current.size());
  rep.changedRings = static_cast<int>(changed.rings.size());

  std::vector<RingResult> out(current.size());
  simulator.resetStats();
  if (!changed.rings.empty()) {
    RingPipeline pipeline(simulator, changed);
    auto results = pipeline.run();
    rep.rounds += pipeline.rounds().total();
    for (std::size_t j = 0; j < changedIdx.size(); ++j) {
      out[changedIdx[j]] = std::move(results[j]);
    }

    // Refresh the dominating sets of the changed holes' bays.
    std::set<int> changedHoles(changedIdx.begin(), changedIdx.end());
    std::vector<std::vector<int>> chains;
    for (const auto& a : net.abstractions()) {
      if (!changedHoles.contains(a.holeIndex)) continue;
      for (const auto& bay : a.bays) chains.push_back(bay.chain);
    }
    if (!chains.empty()) {
      DominatingSetProtocol ds(simulator, chains, seed);
      rep.rounds += ds.run();
    }
  }
  rep.messages = simulator.totalMessages();

  // For comparison: the cost of the full §6 re-run (all rings + all bays).
  {
    sim::Simulator fullSim(net.udg());
    RingPipeline full(fullSim, RingInputs{current});
    full.run();
    rep.fullRounds = full.rounds().total();
    std::vector<std::vector<int>> chains;
    for (const auto& a : net.abstractions()) {
      for (const auto& bay : a.bays) chains.push_back(bay.chain);
    }
    if (!chains.empty()) {
      DominatingSetProtocol ds(fullSim, chains, seed);
      rep.fullRounds += ds.run();
    }
    rep.fullMessages = fullSim.totalMessages();
  }

  if (report != nullptr) *report = rep;
  return out;
}

}  // namespace hybrid::protocols
