#pragma once

#include <vector>

#include "core/hybrid_network.hpp"
#include "protocols/ring_pipeline.hpp"
#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// Extension beyond the paper (its §7 suggests bounded movement speed
/// should allow recomputing only parts of the overlay): between dynamic
/// steps, only the boundary rings whose *membership* changed re-run the
/// ring pipeline (leader election, IDs, hull aggregation); rings whose
/// node set is unchanged keep their abstraction — with bounded node speed
/// the hull they computed is still an abstraction of the slightly deformed
/// hole. Dominating sets are refreshed for the bays of changed holes only.
struct IncrementalReport {
  int totalRings = 0;
  int changedRings = 0;
  int rounds = 0;        ///< Rounds spent on the changed rings + their bays.
  long messages = 0;     ///< Messages spent by the incremental update.
  int fullRounds = 0;    ///< What a full (non-incremental) §6 re-run would cost.
  long fullMessages = 0;
};

/// Runs the incremental update. `previousRings` are the ring node
/// sequences from the previous step (holes + outer boundary, any order).
/// A ring counts as unchanged when some previous ring shares at least
/// (1 - membershipTolerance) of its node set (Jaccard similarity): with
/// bounded movement speed the previously computed hull is still a valid
/// approximation of the slightly deformed hole, so it is kept. Tolerance 0
/// demands exact membership. Returns the per-ring results for the changed
/// rings (current hole order; unchanged rings get empty results).
std::vector<RingResult> runIncrementalUpdate(const core::HybridNetwork& net,
                                             sim::Simulator& simulator,
                                             const std::vector<std::vector<int>>& previousRings,
                                             IncrementalReport* report,
                                             unsigned seed = 1,
                                             double membershipTolerance = 0.0);

/// Convenience: all boundary rings of a network (holes + outer boundary),
/// for feeding the next step's `previousRings`.
std::vector<std::vector<int>> boundaryRings(const core::HybridNetwork& net);

}  // namespace hybrid::protocols
