#include "protocols/label_distribution.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"

namespace hybrid::protocols {

namespace {

using routing::NodeLabels;

constexpr int kIdsUp = 24;   // ids: subtree node ids, convergecast
constexpr int kBundle = 25;  // ints: [owner, (hub, nextHop, hubOut)*], reals: [dist*]

struct LabelDistState {
  int parent = -1;
  std::vector<int> children;
  int pending = 0;                ///< Children yet to report their subtree.
  std::vector<int> collected;     ///< Subtree ids (self included).
  std::map<int, int> routeChild;  ///< Subtree id -> index into children.
  bool gotLabel = false;
  std::vector<NodeLabels::Entry> entries;
  // Per-node traffic counters (multi-threaded stepping keeps state
  // strictly per node; the report sums them after the run).
  long msgs = 0;
  long words = 0;
  long maxBundleWords = 0;
};

class LabelDistribution : public sim::Protocol {
 public:
  LabelDistribution(std::vector<LabelDistState>& st, const NodeLabels& labels)
      : st_(st), labels_(labels) {}

  void onStart(sim::Context& ctx) override {
    LabelDistState& s = st_[static_cast<std::size_t>(ctx.self())];
    s.collected.push_back(ctx.self());
    maybeSendUp(ctx, s);
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    LabelDistState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (m.type == kIdsUp) {
      for (std::size_t c = 0; c < s.children.size(); ++c) {
        if (s.children[c] != m.from) continue;
        for (const int id : m.ids) s.routeChild[id] = static_cast<int>(c);
        break;
      }
      s.collected.insert(s.collected.end(), m.ids.begin(), m.ids.end());
      --s.pending;
      maybeSendUp(ctx, s);
    } else if (m.type == kBundle) {
      const int owner = static_cast<int>(m.ints[0]);
      if (owner == ctx.self()) {
        const std::size_t count = m.reals.size();
        s.entries.clear();
        s.entries.reserve(count);
        for (std::size_t k = 0; k < count; ++k) {
          s.entries.push_back({static_cast<std::int32_t>(m.ints[1 + 3 * k]),
                               static_cast<std::int32_t>(m.ints[2 + 3 * k]),
                               static_cast<std::int32_t>(m.ints[3 + 3 * k]), m.reals[k]});
        }
        s.gotLabel = true;
        return;
      }
      const auto it = s.routeChild.find(owner);
      if (it == s.routeChild.end()) return;  // not in our subtree: corrupt route
      sim::Message fwd;
      fwd.type = kBundle;
      fwd.ints = m.ints;
      fwd.reals = m.reals;
      countSend(s, fwd);
      ctx.sendLongRange(s.children[static_cast<std::size_t>(it->second)], std::move(fwd));
    }
  }

 private:
  void countSend(LabelDistState& s, const sim::Message& m) {
    const auto w = static_cast<long>(m.words());
    ++s.msgs;
    s.words += w;
    if (m.type == kBundle) s.maxBundleWords = std::max(s.maxBundleWords, w);
  }

  void maybeSendUp(sim::Context& ctx, LabelDistState& s) {
    if (s.pending > 0) return;
    if (s.parent >= 0) {
      sim::Message m;
      m.type = kIdsUp;
      m.ids = s.collected;
      countSend(s, m);
      ctx.sendLongRange(s.parent, std::move(m));
      return;
    }
    // Root: subtree membership is complete; emit one bundle per node. The
    // root is the preprocessing leader and the only node that ever holds
    // the full slab — everyone else sees just its own label.
    for (const int v : s.collected) {
      if (v == ctx.self()) {
        s.entries = labels_.entriesOf(v);
        s.gotLabel = true;
        continue;
      }
      const auto it = s.routeChild.find(v);
      if (it == s.routeChild.end()) continue;
      const NodeLabels::View lv = labels_.view(v);
      sim::Message m;
      m.type = kBundle;
      m.ints.push_back(v);
      for (std::size_t k = 0; k < lv.size(); ++k) {
        m.ints.push_back(lv.hubs[k]);
        m.ints.push_back(lv.nextHop[k]);
        m.ints.push_back(lv.hubOut[k]);
        m.reals.push_back(lv.dist[k]);
      }
      countSend(s, m);
      ctx.sendLongRange(s.children[static_cast<std::size_t>(it->second)], std::move(m));
    }
  }

  std::vector<LabelDistState>& st_;
  const NodeLabels& labels_;
};

}  // namespace

LabelDistributionReport distributeNodeLabels(
    sim::Simulator& simulator, const OverlayTree& tree, const routing::NodeLabels& labels,
    std::vector<std::vector<routing::NodeLabels::Entry>>* received, const RetryPolicy* retry) {
  const std::size_t n = simulator.numNodes();
  std::vector<LabelDistState> st(n);
  for (std::size_t v = 0; v < n; ++v) {
    st[v].parent = tree.parent[v];
    st[v].children = tree.children[v];
    st[v].pending = static_cast<int>(tree.children[v].size());
    // Tree links are long-range contacts established during construction.
    if (st[v].parent >= 0) simulator.introduce(static_cast<int>(v), st[v].parent);
    for (const int c : st[v].children) simulator.introduce(static_cast<int>(v), c);
  }

  LabelDistribution proto(st, labels);
  LabelDistributionReport rep;
  if (retry != nullptr) {
    ReliableProtocol reliable(simulator, proto, *retry);
    rep.rounds = simulator.run(reliable);
  } else {
    rep.rounds = simulator.run(proto);
  }

  rep.complete = true;
  for (const LabelDistState& s : st) {
    rep.messages += s.msgs;
    rep.words += s.words;
    rep.maxBundleWords = std::max(rep.maxBundleWords, s.maxBundleWords);
    rep.complete = rep.complete && s.gotLabel;
  }
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("labels.dist.runs").add(1);
    reg.counter("labels.dist.rounds").add(static_cast<std::uint64_t>(rep.rounds));
    reg.counter("labels.dist.messages").add(static_cast<std::uint64_t>(rep.messages));
    reg.counter("labels.dist.words").add(static_cast<std::uint64_t>(rep.words));
  });
  if (received != nullptr) {
    received->assign(n, {});
    for (std::size_t v = 0; v < n; ++v) {
      if (st[v].gotLabel) (*received)[v] = std::move(st[v].entries);
    }
  }
  return rep;
}

}  // namespace hybrid::protocols
