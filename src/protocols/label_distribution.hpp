#pragma once

#include <vector>

#include "protocols/overlay_tree.hpp"
#include "protocols/reliable.hpp"
#include "routing/node_labels.hpp"
#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// Traffic accounting of one label distribution (also mirrored into the
/// obs registry as labels.dist.* when enabled).
struct LabelDistributionReport {
  int rounds = 0;
  long messages = 0;        ///< Protocol data messages (routing digests + bundles).
  long words = 0;           ///< Payload words of those messages.
  long maxBundleWords = 0;  ///< Largest single label bundle.
  bool complete = false;    ///< Every tree node received its label.
};

/// Ships per-node forwarding labels from the overlay-tree root to every
/// node, modeled on the hull-distribution phase (§5.5):
///
///  1. Up phase: each node convergecasts the id set of its subtree, so
///     every inner node learns which child subtree holds which id — the
///     only routing state the down phase needs (O(subtree) words per tree
///     edge, exactly like the hull convergecast).
///  2. Down phase: the root (which holds the built NodeLabels — in a real
///     deployment the preprocessing leader) emits one bundle per node,
///     `ints = [owner, (hub, nextHop, hubOut)*]`, `reals = [dist*]`, and
///     every inner node forwards bundles into the child subtree that
///     contains the owner. Each bundle crosses depth(owner) tree links,
///     for a total message budget of O(sum depths) = O(n log n) on the
///     O(log n)-height tree.
///
/// With `retry` set the run is wrapped in the reliable ARQ transport, so a
/// lossy FaultPlan yields byte-identical labels to the fault-free run
/// (label_distribution_test). `received[v]` gets node v's entries, ready
/// for NodeLabels::fromEntries; nodes outside the root's tree (disconnected
/// UDG) receive nothing and `complete` reports it.
LabelDistributionReport distributeNodeLabels(
    sim::Simulator& simulator, const OverlayTree& tree, const routing::NodeLabels& labels,
    std::vector<std::vector<routing::NodeLabels::Entry>>* received,
    const RetryPolicy* retry = nullptr);

}  // namespace hybrid::protocols
