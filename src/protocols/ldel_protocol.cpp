#include "protocols/ldel_protocol.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "geom/angle.hpp"
#include "geom/predicates.hpp"
#include "obs/metrics.hpp"
#include "protocols/reliable.hpp"

namespace hybrid::protocols {

namespace {

constexpr int kHello = 40;     // reals: [x, y]
constexpr int kNeighbors = 41; // ids + reals: [x1.., y1..]
constexpr int kProposals = 42; // ints: [a1, b1, a2, b2, ...] triangles (self, a, b)

struct NodeState {
  // 2-hop knowledge: id -> position.
  std::map<int, geom::Vec2> known;
  std::vector<int> neighbors;  // 1-hop ids
  // Event-driven phase tracking: a node advances when it heard from all
  // of its neighbors, not on a fixed round number, so the protocol also
  // completes on lossy channels (with the reliable transport underneath).
  std::set<int> helloFrom;
  std::set<int> listFrom;
  int phase = 0;  // 0: collecting hellos, 1: collecting lists, 2: done
  // Triangles this node proposes / confirms, as sorted corner triples.
  std::set<std::array<int, 3>> proposed;
  // Corners that confirmed each triangle (set-based: idempotent under
  // duplicated delivery).
  std::map<std::array<int, 3>, std::set<int>> confirmations;
  std::vector<std::pair<int, int>> gabriel;  // (self, nb) Gabriel edges
};

class LdelProtocol : public sim::Protocol {
 public:
  LdelProtocol(std::vector<NodeState>& st, double radius) : st_(st), radius_(radius) {}

  void onStart(sim::Context& ctx) override {
    NodeState& s = st_[static_cast<std::size_t>(ctx.self())];
    s.known[ctx.self()] = ctx.position();
    for (int nb : ctx.udgNeighbors()) {
      s.neighbors.push_back(nb);
      sim::Message m;
      m.type = kHello;
      m.reals = {ctx.position().x, ctx.position().y};
      ctx.sendAdHoc(nb, std::move(m));
    }
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    NodeState& s = st_[static_cast<std::size_t>(ctx.self())];
    switch (m.type) {
      case kHello:
        s.known[m.from] = {m.reals[0], m.reals[1]};
        s.helloFrom.insert(m.from);
        break;
      case kNeighbors: {
        const std::size_t k = m.ids.size();
        for (std::size_t i = 0; i < k; ++i) {
          s.known.emplace(m.ids[i], geom::Vec2{m.reals[i], m.reals[k + i]});
        }
        s.listFrom.insert(m.from);
        break;
      }
      case kProposals: {
        for (std::size_t i = 0; i + 1 < m.ints.size(); i += 2) {
          std::array<int, 3> tri{m.from, static_cast<int>(m.ints[i]),
                                 static_cast<int>(m.ints[i + 1])};
          std::sort(tri.begin(), tri.end());
          s.confirmations[tri].insert(m.from);
        }
        break;
      }
      default:
        break;
    }
  }

  void onRoundEnd(sim::Context& ctx) override {
    NodeState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (s.phase == 0 && s.helloFrom.size() == s.neighbors.size()) {
      // Forward the freshly learned neighbor list (ids + coordinates).
      sim::Message m;
      m.type = kNeighbors;
      for (int nb : s.neighbors) {
        m.ids.push_back(nb);
        m.reals.push_back(s.known.at(nb).x);
      }
      for (int nb : s.neighbors) m.reals.push_back(s.known.at(nb).y);
      for (int nb : s.neighbors) ctx.sendAdHoc(nb, m);
      s.phase = 1;
    }
    if (s.phase == 1 && s.listFrom.size() == s.neighbors.size()) {
      computeLocalProposals(ctx, s);
      // Send each neighbor the proposals that involve it.
      for (int nb : s.neighbors) {
        sim::Message m;
        m.type = kProposals;
        for (const auto& tri : s.proposed) {
          if (tri[0] != nb && tri[1] != nb && tri[2] != nb) continue;
          // Encode the two corners besides the sender.
          std::vector<int> others;
          for (int c : tri) {
            if (c != ctx.self()) others.push_back(c);
          }
          m.ints.push_back(others[0]);
          m.ints.push_back(others[1]);
        }
        if (!m.ints.empty()) ctx.sendAdHoc(nb, std::move(m));
      }
      s.phase = 2;
    }
  }

 private:
  void computeLocalProposals(sim::Context& ctx, NodeState& s) {
    const int self = ctx.self();
    const geom::Vec2 ps = ctx.position();
    // Triangles: pairs of adjacent neighbors whose circumcircle is empty
    // of every known (2-hop) node.
    for (std::size_t i = 0; i < s.neighbors.size(); ++i) {
      const int v = s.neighbors[i];
      const geom::Vec2 pv = s.known.at(v);
      for (std::size_t j = i + 1; j < s.neighbors.size(); ++j) {
        const int w = s.neighbors[j];
        const geom::Vec2 pw = s.known.at(w);
        if (geom::dist(pv, pw) > radius_) continue;  // not a UDG triangle
        const int o = geom::orient(ps, pv, pw);
        if (o == 0) continue;
        bool empty = true;
        for (const auto& [x, px] : s.known) {
          if (x == self || x == v || x == w) continue;
          const int ic = geom::inCircle(ps, pv, pw, px);
          if ((o > 0 ? ic : -ic) > 0) {
            empty = false;
            break;
          }
        }
        if (empty) {
          std::array<int, 3> tri{self, v, w};
          std::sort(tri.begin(), tri.end());
          s.proposed.insert(tri);
          s.confirmations[tri].insert(self);  // own confirmation
        }
      }
    }
    // Gabriel edges: any violator of the diametral circle of (self, v) is
    // closer to both endpoints than |self v|, hence a common neighbor.
    for (int v : s.neighbors) {
      const geom::Vec2 pv = s.known.at(v);
      bool empty = true;
      for (int w : s.neighbors) {
        if (w == v) continue;
        if (geom::inDiametralCircle(ps, pv, s.known.at(w))) {
          empty = false;
          break;
        }
      }
      if (empty) s.gabriel.emplace_back(self, v);
    }
  }

  std::vector<NodeState>& st_;
  double radius_;
};

}  // namespace

DistributedLdel runLdelConstruction(sim::Simulator& simulator, double radius,
                                    const RetryPolicy* retry) {
  std::vector<NodeState> st(simulator.numNodes());
  LdelProtocol proto(st, radius);
  DistributedLdel out;
  if (retry != nullptr) {
    ReliableProtocol reliable(simulator, proto, *retry);
    out.rounds = simulator.run(reliable);
    out.retransmissions = reliable.stats().retransmissions;
  } else {
    out.rounds = simulator.run(proto);
  }
  out.messages = simulator.totalMessages();
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("proto.ldel.runs").add(1);
    reg.counter("proto.ldel.rounds").add(static_cast<std::uint64_t>(out.rounds));
    reg.counter("proto.ldel.messages").add(static_cast<std::uint64_t>(out.messages));
  });

  out.graph = graph::GeometricGraph(simulator.udg().positions());
  // Gabriel edges (both endpoints computed them identically).
  for (const auto& s : st) {
    for (const auto& [u, v] : s.gabriel) out.graph.addEdge(u, v);
  }
  // Triangles confirmed by all three corners.
  std::vector<std::set<std::array<int, 3>>> surviving(st.size());
  for (std::size_t v = 0; v < st.size(); ++v) {
    for (const auto& [tri, corners] : st[v].confirmations) {
      if (corners.size() == 3 && st[v].proposed.contains(tri)) {
        surviving[v].insert(tri);
        out.graph.addEdge(tri[0], tri[1]);
        out.graph.addEdge(tri[0], tri[2]);
        out.graph.addEdge(tri[1], tri[2]);
      }
    }
  }

  // Local boundary detection: angular gaps not covered by a surviving
  // triangle. (Gabriel edges alone do not close a wedge: a face all of
  // whose corners are triangles is a triangle face.)
  out.isBoundary.assign(st.size(), 0);
  out.gaps.assign(st.size(), {});
  for (std::size_t vi = 0; vi < st.size(); ++vi) {
    const int v = static_cast<int>(vi);
    auto nbrs = out.graph.neighbors(v);
    if (nbrs.size() < 2) {
      out.isBoundary[vi] = 1;
      continue;
    }
    std::vector<int> sorted(nbrs.begin(), nbrs.end());
    const geom::Vec2 pv = out.graph.position(v);
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return geom::directionAngle(pv, out.graph.position(a)) <
             geom::directionAngle(pv, out.graph.position(b));
    });
    if (sorted.size() == 2) {
      // Two neighbors span two wedges with the same (unordered) triple; a
      // triangle can cover at most one of them, so the node is always on
      // a boundary. Identify the covered wedge (if any) by the direction
      // of the triangle's centroid, and report the uncovered wedge(s) as
      // gaps, oriented (cw neighbor, ccw neighbor).
      out.isBoundary[vi] = 1;
      std::array<int, 3> tri{v, sorted[0], sorted[1]};
      std::sort(tri.begin(), tri.end());
      if (surviving[vi].contains(tri)) {
        const geom::Vec2 pa = out.graph.position(sorted[0]);
        const geom::Vec2 pb = out.graph.position(sorted[1]);
        const geom::Vec2 centroid = (pv + pa + pb) / 3.0;
        const double a0 = geom::directionAngle(pv, pa);
        const double a1 = geom::directionAngle(pv, pb);
        const double ac = geom::directionAngle(pv, centroid);
        // Is the centroid inside the ccw wedge from sorted[0] to sorted[1]?
        const auto inCcwWedge = [](double from, double to, double x) {
          auto norm = [](double t) {
            const double twoPi = 2.0 * 3.141592653589793;
            while (t < 0) t += twoPi;
            while (t >= twoPi) t -= twoPi;
            return t;
          };
          return norm(x - from) <= norm(to - from);
        };
        if (inCcwWedge(a0, a1, ac)) {
          out.gaps[vi].push_back({sorted[1], sorted[0]});
        } else {
          out.gaps[vi].push_back({sorted[0], sorted[1]});
        }
      } else {
        out.gaps[vi].push_back({sorted[0], sorted[1]});
        out.gaps[vi].push_back({sorted[1], sorted[0]});
      }
      continue;
    }
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const int a = sorted[i];
      const int b = sorted[(i + 1) % sorted.size()];
      std::array<int, 3> tri{v, a, b};
      std::sort(tri.begin(), tri.end());
      if (!surviving[vi].contains(tri)) {
        out.isBoundary[vi] = 1;
        out.gaps[vi].push_back({a, b});
      }
    }
  }
  return out;
}

std::vector<std::vector<int>> deriveOuterHoleRings(
    const std::vector<int>& outerRing, const std::vector<int>& hullNodes,
    const graph::GeometricGraph& positions, double radius) {
  std::vector<std::vector<int>> out;
  if (outerRing.size() < 3 || hullNodes.size() < 2) return out;
  const std::set<int> hullSet(hullNodes.begin(), hullNodes.end());

  // Indices of hull nodes along the outer ring walk.
  std::vector<std::size_t> hullIdx;
  for (std::size_t i = 0; i < outerRing.size(); ++i) {
    if (hullSet.contains(outerRing[i])) hullIdx.push_back(i);
  }
  if (hullIdx.size() < 2) return out;

  const std::size_t n = outerRing.size();
  for (std::size_t j = 0; j < hullIdx.size(); ++j) {
    const std::size_t from = hullIdx[j];
    const std::size_t to = hullIdx[(j + 1) % hullIdx.size()];
    const int a = outerRing[from];
    const int b = outerRing[to];
    if (positions.edgeLength(a, b) <= radius) continue;  // short hull edge: no hole
    std::vector<int> arc;
    for (std::size_t i = from; i != to; i = (i + 1) % n) arc.push_back(outerRing[i]);
    arc.push_back(b);
    if (arc.size() < 3) continue;
    // The outer boundary walks clockwise around the network, which is
    // counter-clockwise around each pocket it wraps — the arc closed by
    // the hull chord already has hole orientation (+2*pi), like inner
    // hole rings.
    out.push_back(std::move(arc));
  }
  return out;
}

std::vector<std::vector<int>> assembleRingsFromGaps(const DistributedLdel& ldel) {
  // A gap (a, b) at v means the uncovered face's boundary walk passes
  // b -> v -> a (interior on the left): v's ring successor is the gap's cw
  // neighbor a, and its predecessor the ccw neighbor b. Follow successors;
  // at the next node, the matching gap is the one whose ccw neighbor is
  // the node we came from.
  std::vector<std::vector<int>> rings;
  std::set<std::pair<int, int>> used;  // (node, succ) pairs already stitched
  for (std::size_t vi = 0; vi < ldel.gaps.size(); ++vi) {
    for (const auto& gap : ldel.gaps[vi]) {
      const int start = static_cast<int>(vi);
      if (used.contains({start, gap[0]})) continue;
      std::vector<int> ring;
      int cur = start;
      int succ = gap[0];
      bool ok = true;
      for (std::size_t guard = 0; guard <= ldel.gaps.size() * 4; ++guard) {
        used.insert({cur, succ});
        ring.push_back(cur);
        // Arrived at succ coming from cur: find its gap with pred == cur.
        const int prev = cur;
        cur = succ;
        succ = -1;
        for (const auto& g : ldel.gaps[static_cast<std::size_t>(cur)]) {
          if (g[1] == prev) {
            succ = g[0];
            break;
          }
        }
        if (succ < 0) {
          ok = false;
          break;
        }
        if (cur == start && succ == gap[0]) break;  // ring closed
      }
      if (ok && ring.size() >= 3) rings.push_back(std::move(ring));
    }
  }
  return rings;
}

}  // namespace hybrid::protocols
