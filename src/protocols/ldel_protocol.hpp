#pragma once

#include <array>
#include <vector>

#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// Distributed construction of the 2-localized Delaunay graph in O(1)
/// rounds (paper §5.1, after Li, Calinescu, Wan), plus the local
/// boundary-detection step of §5.2:
///
///  round 1: every node broadcasts (id, position) to its UDG neighbors;
///  round 2: every node forwards its neighbor list (with coordinates), so
///           each node knows its 2-hop neighborhood;
///  local:   each node tests every incident UDG triangle against its own
///           2-hop knowledge (Def. 2.2) and computes its Gabriel edges
///           (violators of a diametral circle are common neighbors);
///  round 3: proposed triangles are exchanged; a triangle survives iff all
///           three corners proposed it — which is exactly the emptiness
///           test over N2(u) u N2(v) u N2(w).
///
/// Boundary detection is purely local: a node sorts its LDel neighbors by
/// angle; an angular gap not covered by a surviving triangle means the
/// incident face has >= 4 corners (or is the outer face), so the node is a
/// boundary node and the two gap neighbors are its ring neighbors.
struct DistributedLdel {
  graph::GeometricGraph graph;   ///< The LDel^2 edges (union over nodes).
  std::vector<char> isBoundary;  ///< Local boundary flag per node.
  /// Angular gaps per node: (clockwise neighbor, counter-clockwise
  /// neighbor) of each uncovered wedge — the ring pred/succ candidates.
  std::vector<std::vector<std::array<int, 2>>> gaps;
  int rounds = 0;
  long messages = 0;
  long retransmissions = 0;  ///< Transport retries (0 without a RetryPolicy).
};

struct RetryPolicy;

/// Runs the construction on `simulator`. The protocol is event-driven (a
/// node advances a phase when all of its neighbors' messages arrived, not
/// on a fixed round schedule), so with `retry` set it completes correctly
/// on a lossy fault-injected simulator and produces the exact fault-free
/// output; without faults it takes the classic 3 rounds.
DistributedLdel runLdelConstruction(sim::Simulator& simulator, double radius = 1.0,
                                    const RetryPolicy* retry = nullptr);

/// §5.4's "second run": given the outer boundary ring (turning angle
/// -2*pi) and the convex hull its members computed, every pair of
/// hull-consecutive nodes farther apart than `radius` delimits an outer
/// hole (Def. 2.5). Returns one ring per outer hole: the boundary arc
/// between the two hull nodes, reversed so the pocket is traversed
/// counter-clockwise like every other hole ring.
std::vector<std::vector<int>> deriveOuterHoleRings(
    const std::vector<int>& outerRing, const std::vector<int>& hullNodes,
    const graph::GeometricGraph& positions, double radius);

/// Stitches the locally detected gaps into boundary rings by following
/// each node's gap successor. Every node only ever consults its own local
/// (pred, succ); the global ring lists exist so the simulator can tag
/// protocol instances (see RingPipeline). Rings come out oriented so that
/// hole rings turn counter-clockwise and the outer boundary clockwise,
/// matching the face-walk convention of the hole-detection oracle.
std::vector<std::vector<int>> assembleRingsFromGaps(const DistributedLdel& ldel);

}  // namespace hybrid::protocols
