#include "protocols/overlay_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"

namespace hybrid::protocols {

namespace {

bool treeCoin(unsigned seed, int phase, int node) {
  std::uint64_t x = (static_cast<std::uint64_t>(seed) << 40) ^
                    (static_cast<std::uint64_t>(phase) << 20) ^
                    static_cast<std::uint64_t>(node);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return (x & 1) != 0;  // true = head (proposer)
}

struct TreeState {
  int parent = -1;
  std::vector<int> children;
  int clusterRoot = -1;  ///< Root id as known to this node.

  // Per-phase scratch.
  int candRoot = std::numeric_limits<int>::max();
  int candNeighbor = -1;
  int candMemberNeighbor = -1;  ///< Same, aggregated from the subtree.
  int candMember = -1;
  int childrenReported = 0;
  bool reported = false;
  bool merged = false;  ///< This root hung under another root this phase.
};

constexpr int kNbInfo = 10;      // ints: [clusterRoot]
constexpr int kReport = 11;      // ints: [candRoot, candMember, candNeighbor]
constexpr int kPropose = 12;     // ints: [proposerRoot, candNeighbor] -> member
constexpr int kProposeFwd = 13;  // ints: [proposerRoot] -> boundary neighbor
constexpr int kProposal = 14;    // ints: [proposerRoot] -> target root
constexpr int kAccept = 15;      // ints: [newRoot] -> proposer root
constexpr int kNewRoot = 16;     // ints: [newRoot] down the tree

class TreeBuild : public sim::Protocol {
 public:
  TreeBuild(std::vector<TreeState>& st, unsigned seed, int phases, int budget)
      : st_(st), seed_(seed), phases_(phases), budget_(budget) {}

  void onStart(sim::Context& ctx) override {
    TreeState& s = st_[static_cast<std::size_t>(ctx.self())];
    s.clusterRoot = ctx.self();
    beginPhase(ctx, s);
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    TreeState& s = st_[static_cast<std::size_t>(ctx.self())];
    switch (m.type) {
      case kNbInfo: {
        const int otherRoot = static_cast<int>(m.ints[0]);
        if (otherRoot != s.clusterRoot && otherRoot < s.candRoot) {
          s.candRoot = otherRoot;
          s.candMember = ctx.self();
          s.candNeighbor = m.from;
        }
        break;
      }
      case kReport: {
        const int rRoot = static_cast<int>(m.ints[0]);
        if (rRoot < s.candRoot) {
          s.candRoot = rRoot;
          s.candMember = static_cast<int>(m.ints[1]);
          s.candNeighbor = static_cast<int>(m.ints[2]);
        }
        ++s.childrenReported;
        maybeReportOrDecide(ctx, s);
        break;
      }
      case kPropose: {
        // We are the member adjacent to the other cluster: hand over.
        sim::Message fwd;
        fwd.type = kProposeFwd;
        fwd.ints = {m.ints[0], m.ints[2]};
        fwd.ids = {static_cast<int>(m.ints[0])};
        ctx.sendAdHoc(static_cast<int>(m.ints[1]), std::move(fwd));
        break;
      }
      case kProposeFwd: {
        if (s.clusterRoot == ctx.self()) {
          handleProposal(ctx, s, static_cast<int>(m.ints[0]), static_cast<int>(m.ints[1]));
          break;
        }
        sim::Message prop;
        prop.type = kProposal;
        prop.ints = {m.ints[0], m.ints[1]};
        prop.ids = {static_cast<int>(m.ints[0])};
        ctx.sendLongRange(s.clusterRoot, std::move(prop));
        break;
      }
      case kProposal:
        handleProposal(ctx, s, static_cast<int>(m.ints[0]), static_cast<int>(m.ints[1]));
        break;
      case kAccept: {
        // We proposed and were accepted: hang under the target root.
        s.parent = static_cast<int>(m.ints[0]);
        s.merged = true;
        broadcastNewRoot(ctx, s, s.parent);
        break;
      }
      case kNewRoot: {
        s.clusterRoot = static_cast<int>(m.ints[0]);
        broadcastNewRoot(ctx, s, s.clusterRoot);
        break;
      }
      default:
        break;
    }
  }

  void onRoundEnd(sim::Context& ctx) override {
    if (ctx.self() == 0) round_ = ctx.round();
    TreeState& s = st_[static_cast<std::size_t>(ctx.self())];
    const int t = ctx.round() % budget_;
    if (t == 0 && ctx.round() > 0 && ctx.round() < phases_ * budget_) {
      beginPhase(ctx, s);
    } else if (t == 1) {
      // Neighbor info arrived; leaves start the convergecast.
      maybeReportOrDecide(ctx, s);
    }
  }

  bool wantsMoreRounds() const override { return round_ < phases_ * budget_; }

 private:
  int phase(const sim::Context& ctx) const { return ctx.round() / budget_; }

  void beginPhase(sim::Context& ctx, TreeState& s) {
    s.candRoot = std::numeric_limits<int>::max();
    s.candMember = -1;
    s.candNeighbor = -1;
    s.childrenReported = 0;
    s.reported = false;
    s.merged = false;
    for (int nb : ctx.udgNeighbors()) {
      sim::Message m;
      m.type = kNbInfo;
      m.ints = {s.clusterRoot};
      m.ids = {s.clusterRoot};
      ctx.sendAdHoc(nb, std::move(m));
    }
  }

  void maybeReportOrDecide(sim::Context& ctx, TreeState& s) {
    if (s.reported || s.childrenReported < static_cast<int>(s.children.size())) return;
    s.reported = true;
    if (s.parent >= 0) {
      sim::Message m;
      m.type = kReport;
      m.ints = {s.candRoot, s.candMember, s.candNeighbor};
      if (s.candMember >= 0) m.ids = {s.candMember, s.candNeighbor};
      ctx.sendLongRange(s.parent, std::move(m));
      return;
    }
    // We are the root: decide.
    if (s.candMember < 0) return;  // no external cluster seen
    if (!treeCoin(seed_, phase(ctx), ctx.self())) return;  // tail: wait for proposals
    if (s.candMember == ctx.self()) {
      // The boundary member is the root itself: skip one hop.
      sim::Message fwd;
      fwd.type = kProposeFwd;
      fwd.ints = {ctx.self(), phase(ctx)};
      fwd.ids = {ctx.self()};
      ctx.sendAdHoc(s.candNeighbor, std::move(fwd));
      return;
    }
    sim::Message m;
    m.type = kPropose;
    m.ints = {ctx.self(), s.candNeighbor, phase(ctx)};
    m.ids = {ctx.self(), s.candNeighbor};
    ctx.sendLongRange(s.candMember, std::move(m));
  }

  void handleProposal(sim::Context& ctx, TreeState& s, int proposerRoot, int msgPhase) {
    if (s.parent >= 0 || s.merged) return;  // no longer a root / already moved
    if (treeCoin(seed_, msgPhase, ctx.self())) return;  // heads don't accept
    if (proposerRoot == ctx.self()) return;
    s.children.push_back(proposerRoot);
    sim::Message m;
    m.type = kAccept;
    m.ints = {ctx.self()};
    m.ids = {ctx.self()};
    ctx.sendLongRange(proposerRoot, std::move(m));
  }

  void broadcastNewRoot(sim::Context& ctx, TreeState& s, int newRoot) {
    s.clusterRoot = newRoot;
    for (int c : s.children) {
      sim::Message m;
      m.type = kNewRoot;
      m.ints = {newRoot};
      m.ids = {newRoot};
      ctx.sendLongRange(c, std::move(m));
    }
  }

  std::vector<TreeState>& st_;
  unsigned seed_;
  int phases_;
  int budget_;
  int round_ = 0;
};

// ---------------------------------------------------------------------------
// Hull info distribution over the finished tree.
// ---------------------------------------------------------------------------
struct DistState {
  int parent = -1;
  std::vector<int> children;
  int pending = 0;
  bool isHull = false;
  std::vector<int> collected;
  bool done = false;
};

constexpr int kUp = 20;    // ids: hull node ids collected in the subtree
constexpr int kDown = 21;  // ids: the full hull node list

class HullDistribution : public sim::Protocol {
 public:
  explicit HullDistribution(std::vector<DistState>& st) : st_(st) {}

  void onStart(sim::Context& ctx) override {
    DistState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (s.isHull) s.collected.push_back(ctx.self());
    maybeSendUp(ctx, s);
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    DistState& s = st_[static_cast<std::size_t>(ctx.self())];
    if (m.type == kUp) {
      s.collected.insert(s.collected.end(), m.ids.begin(), m.ids.end());
      --s.pending;
      maybeSendUp(ctx, s);
    } else if (m.type == kDown) {
      s.collected.assign(m.ids.begin(), m.ids.end());
      s.done = true;
      sendDown(ctx, s);
    }
  }

 private:
  void maybeSendUp(sim::Context& ctx, DistState& s) {
    if (s.pending > 0) return;
    if (s.parent >= 0) {
      sim::Message m;
      m.type = kUp;
      m.ids = s.collected;
      ctx.sendLongRange(s.parent, std::move(m));
    } else {
      // Root: everything collected; start the downward broadcast.
      s.done = true;
      sendDown(ctx, s);
    }
  }

  void sendDown(sim::Context& ctx, DistState& s) {
    for (int c : s.children) {
      sim::Message m;
      m.type = kDown;
      m.ids = s.collected;
      ctx.sendLongRange(c, std::move(m));
    }
  }

  std::vector<DistState>& st_;
};

}  // namespace

bool OverlayTree::isSingleTree() const {
  int roots = 0;
  for (int p : parent) roots += p < 0 ? 1 : 0;
  return roots == 1;
}

int OverlayTree::computedHeight() const {
  const std::size_t n = parent.size();
  std::vector<int> depth(n, -1);
  int best = 0;
  for (std::size_t v = 0; v < n; ++v) {
    // Follow parents, memoizing depths.
    std::vector<int> chain;
    int cur = static_cast<int>(v);
    while (cur >= 0 && depth[static_cast<std::size_t>(cur)] < 0) {
      chain.push_back(cur);
      cur = parent[static_cast<std::size_t>(cur)];
    }
    int base = cur < 0 ? -1 : depth[static_cast<std::size_t>(cur)];
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth[static_cast<std::size_t>(*it)] = ++base;
    }
    best = std::max(best, depth[v]);
  }
  return best;
}

OverlayTree buildOverlayTree(sim::Simulator& simulator, unsigned seed, int phases) {
  const int n = static_cast<int>(simulator.numNodes());
  const int logn = std::max(1, static_cast<int>(std::ceil(std::log2(std::max(2, n)))));
  if (phases <= 0) phases = 3 * logn + 10;
  const int budget = 3 * logn + 16;

  std::vector<TreeState> st(static_cast<std::size_t>(n));
  TreeBuild proto(st, seed, phases, budget);
  OverlayTree tree;
  tree.rounds = simulator.run(proto, phases * budget + 4);
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("proto.overlay_tree.builds").add(1);
    reg.counter("proto.overlay_tree.rounds").add(static_cast<std::uint64_t>(tree.rounds));
  });
  tree.phases = phases;
  tree.parent.resize(static_cast<std::size_t>(n));
  tree.children.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    tree.parent[static_cast<std::size_t>(v)] = st[static_cast<std::size_t>(v)].parent;
    tree.children[static_cast<std::size_t>(v)] = st[static_cast<std::size_t>(v)].children;
    if (st[static_cast<std::size_t>(v)].parent < 0) tree.root = v;
  }
  tree.height = tree.computedHeight();
  return tree;
}

int distributeHullInfo(sim::Simulator& simulator, const OverlayTree& tree,
                       const std::vector<char>& isHullNode,
                       std::vector<std::vector<int>>* learned) {
  std::vector<DistState> st(simulator.numNodes());
  for (std::size_t v = 0; v < st.size(); ++v) {
    st[v].parent = tree.parent[v];
    st[v].children = tree.children[v];
    st[v].pending = static_cast<int>(tree.children[v].size());
    st[v].isHull = isHullNode[v] != 0;
    // Tree links are long-range contacts established during construction.
    if (st[v].parent >= 0) simulator.introduce(static_cast<int>(v), st[v].parent);
    for (int c : st[v].children) simulator.introduce(static_cast<int>(v), c);
  }
  HullDistribution proto(st);
  const int rounds = simulator.run(proto);
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("proto.overlay_tree.distributions").add(1);
    reg.counter("proto.overlay_tree.dist_rounds").add(static_cast<std::uint64_t>(rounds));
  });
  if (learned != nullptr) {
    learned->assign(st.size(), {});
    for (std::size_t v = 0; v < st.size(); ++v) {
      if (st[v].isHull) (*learned)[v] = st[v].collected;
    }
  }
  return rounds;
}

}  // namespace hybrid::protocols
