#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// The rooted long-range overlay tree of paper §5.5.
///
/// Gmyr et al. build a constant-degree tree of height O(log n) in
/// O(log^2 n) rounds; we substitute a head/tail cluster-merging protocol
/// with the same round complexity: in each of O(log n) phases every
/// cluster root flips a coin, heads propose to their minimum neighboring
/// cluster, tails accept all proposals, and the proposing roots hang under
/// the accepting root. Tree height grows by at most one per phase, so the
/// result has O(log n) height (degree is not constant — see DESIGN.md).
struct OverlayTree {
  int root = -1;
  std::vector<int> parent;                ///< -1 at the root.
  std::vector<std::vector<int>> children;
  int height = 0;
  int phases = 0;
  int rounds = 0;

  bool isSingleTree() const;
  int computedHeight() const;
};

/// Runs the construction; `phases` <= 0 picks 2*ceil(log2 n) + 4.
OverlayTree buildOverlayTree(sim::Simulator& simulator, unsigned seed = 1, int phases = 0);

/// Convex hull distribution over the tree (paper §5.5): every node that
/// flags itself as a hull node contributes (id, x, y); the lists are
/// aggregated up to the root and re-broadcast, so afterwards every flagged
/// node knows all flagged nodes (they form a clique of long-range
/// contacts). Returns the rounds used; `learned[v]` is the full site list
/// as received by node v (empty for nodes that are not hull nodes).
int distributeHullInfo(sim::Simulator& simulator, const OverlayTree& tree,
                       const std::vector<char>& isHullNode,
                       std::vector<std::vector<int>>* learned);

}  // namespace hybrid::protocols
