#include "protocols/preprocessing.hpp"

#include <algorithm>

#include "protocols/dominating_set_protocol.hpp"
#include "protocols/ldel_protocol.hpp"

namespace hybrid::protocols {

namespace {

// Shared tail of both preprocessing variants: overlay tree, hull
// distribution and per-bay dominating sets over already-computed ring
// results.
void runOverlayPhases(const core::HybridNetwork& net, sim::Simulator& simulator,
                      PreprocessingOutputs& out, PreprocessingReport& rep,
                      unsigned seed, const RetryPolicy* retry) {
  out.tree = buildOverlayTree(simulator, seed);
  rep.treeConstruction = out.tree.rounds;
  rep.treeHeight = out.tree.height;
  rep.treeIsSingle = out.tree.isSingleTree();

  std::vector<char> isHull(simulator.numNodes(), 0);
  for (const auto& result : out.ringResults) {
    if (result.turningAngle <= 0.0) continue;  // outer boundary: no hull sites
    for (int v : result.hull) isHull[static_cast<std::size_t>(v)] = 1;
  }
  rep.hullDistribution = distributeHullInfo(simulator, out.tree, isHull, &out.hullKnowledge);

  std::vector<std::vector<int>> chains;
  for (const auto& a : net.abstractions()) {
    for (const auto& bay : a.bays) chains.push_back(bay.chain);
  }
  DominatingSetProtocol ds(simulator, chains, seed, retry);
  rep.dominatingSets = ds.run();
  rep.retransmissions += ds.reliableStats().retransmissions;
  out.bayDominatingSets.resize(chains.size());
  for (std::size_t c = 0; c < chains.size(); ++c) {
    out.bayDominatingSets[c] = ds.dominatingSet(c);
    if (chains[c].size() == 1 && out.bayDominatingSets[c].empty()) {
      out.bayDominatingSets[c] = chains[c];  // singleton chains are trivial
    }
  }

  rep.totalMessages = simulator.totalMessages();
  rep.maxWordsPerNode = simulator.maxWordsPerNode();
}

}  // namespace

PreprocessingOutputs runPreprocessing(const core::HybridNetwork& net,
                                      sim::Simulator& simulator,
                                      PreprocessingReport* report, unsigned seed,
                                      const RetryPolicy* retry) {
  PreprocessingReport rep;
  // The planar localized Delaunay graph is built in O(1) rounds with the
  // protocol of Li et al. (paper §5.1); we charge its constant here.
  rep.ldelConstruction = 4;

  // Boundary rings from the oracle: every hole ring + the outer boundary.
  RingInputs rings;
  for (const auto& h : net.holes().holes) rings.rings.push_back(h.ring);
  if (net.holes().outerBoundary.size() >= 3) {
    rings.rings.push_back(net.holes().outerBoundary);
  }
  PreprocessingOutputs out;
  RingPipeline pipeline(simulator, std::move(rings), retry);
  out.ringResults = pipeline.run();
  rep.rings = pipeline.rounds();
  rep.retransmissions += pipeline.reliableStats().retransmissions;
  runOverlayPhases(net, simulator, out, rep, seed, retry);
  if (report != nullptr) *report = rep;
  return out;
}

PreprocessingOutputs runDistributedPreprocessing(const core::HybridNetwork& net,
                                                 sim::Simulator& simulator,
                                                 PreprocessingReport* report,
                                                 unsigned seed,
                                                 std::vector<std::vector<int>>* ringsOut,
                                                 const RetryPolicy* retry) {
  PreprocessingReport rep;
  // Actually run the O(1)-round LDel construction + local hole detection.
  const auto ldel = runLdelConstruction(simulator, net.radius(), retry);
  rep.ldelConstruction = ldel.rounds;
  rep.retransmissions += ldel.retransmissions;

  RingInputs rings;
  rings.rings = assembleRingsFromGaps(ldel);

  PreprocessingOutputs out;
  RingPipeline pipeline(simulator, RingInputs{rings.rings}, retry);
  out.ringResults = pipeline.run();
  rep.rings = pipeline.rounds();
  rep.retransmissions += pipeline.reliableStats().retransmissions;

  // §5.4 second run: the outer boundary (turning angle -2*pi) computed its
  // own convex hull; every long hull chord delimits an outer hole, whose
  // arc runs the ring pipeline again.
  std::vector<std::vector<int>> outerHoleRings;
  for (std::size_t ri = 0; ri < out.ringResults.size(); ++ri) {
    const auto& r = out.ringResults[ri];
    if (r.leader < 0 || r.turningAngle >= 0.0) continue;
    const auto derived = deriveOuterHoleRings(rings.rings[ri], r.hull, net.udg(),
                                              net.radius());
    outerHoleRings.insert(outerHoleRings.end(), derived.begin(), derived.end());
  }
  if (!outerHoleRings.empty()) {
    RingPipeline second(simulator, RingInputs{outerHoleRings}, retry);
    auto secondResults = second.run();
    rep.retransmissions += second.reliableStats().retransmissions;
    rep.rings.pointerJumping += second.rounds().pointerJumping;
    rep.rings.idAssignment += second.rounds().idAssignment;
    rep.rings.aggregation += second.rounds().aggregation;
    rep.rings.broadcast += second.rounds().broadcast;
    for (std::size_t i = 0; i < outerHoleRings.size(); ++i) {
      rings.rings.push_back(outerHoleRings[i]);
      out.ringResults.push_back(std::move(secondResults[i]));
    }
  }
  if (ringsOut != nullptr) *ringsOut = rings.rings;

  runOverlayPhases(net, simulator, out, rep, seed, retry);
  if (report != nullptr) *report = rep;
  return out;
}

}  // namespace hybrid::protocols
