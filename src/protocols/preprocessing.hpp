#pragma once

#include <vector>

#include "core/hybrid_network.hpp"
#include "protocols/overlay_tree.hpp"
#include "protocols/ring_pipeline.hpp"
#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// Round and traffic accounting for the complete distributed preprocessing
/// of paper §5 (the O(log^2 n) pipeline of Theorem 1.2).
struct PreprocessingReport {
  int ldelConstruction = 0;     ///< O(1) rounds (Li et al.); modeled as a constant.
  RingPipelineRounds rings;     ///< §5.2-§5.4 per phase.
  int treeConstruction = 0;     ///< §5.5 overlay tree.
  int hullDistribution = 0;     ///< §5.5 broadcast of hull info.
  int dominatingSets = 0;       ///< §5.6 per-bay dominating sets.
  long totalMessages = 0;
  long maxWordsPerNode = 0;
  int treeHeight = 0;
  bool treeIsSingle = false;

  /// Transport retransmissions over the fault-tolerant phases (LDel, ring
  /// pipeline, dominating sets); 0 when run without a RetryPolicy.
  long retransmissions = 0;

  int totalRounds() const {
    return ldelConstruction + rings.total() + treeConstruction + hullDistribution +
           dominatingSets;
  }
  /// Rounds for a dynamic re-run (§6): everything except the tree.
  int dynamicRounds() const { return totalRounds() - treeConstruction; }
};

/// Outputs of the distributed preprocessing, for cross-validation against
/// the centralized oracle in core::HybridNetwork.
struct PreprocessingOutputs {
  std::vector<RingResult> ringResults;        ///< Per detected boundary ring.
  OverlayTree tree;
  std::vector<std::vector<int>> hullKnowledge;  ///< Per hull node: all hull nodes.
  std::vector<std::vector<int>> bayDominatingSets;  ///< Flattened (abstraction, bay).
};

/// Runs the full distributed preprocessing on the given (already built)
/// network: ring protocols on every hole boundary and the outer boundary,
/// the overlay tree, hull distribution, and the per-bay dominating sets.
/// The boundary rings come from the oracle's hole detection, standing in
/// for the local boundary-detection step each node performs on its
/// 2-localized Delaunay neighborhood (paper §5.2).
/// With `retry` set, the LDel construction, ring pipeline and dominating
/// sets run under the reliable ARQ transport, so the preprocessing
/// completes correctly on a fault-injected simulator.
PreprocessingOutputs runPreprocessing(const core::HybridNetwork& net,
                                      sim::Simulator& simulator,
                                      PreprocessingReport* report, unsigned seed = 1,
                                      const RetryPolicy* retry = nullptr);

/// Fully distributed variant: instead of taking the boundary rings from
/// the oracle, it runs the O(1)-round LDel construction protocol (§5.1),
/// detects boundaries locally, stitches the rings from the per-node gaps,
/// and — after the outer boundary's hull is known — performs §5.4's
/// second hull run on every outer-hole pocket (arcs between hull chords
/// longer than the radius). `ringsOut`, if non-null, receives all rings
/// (first-run rings, then the derived outer-hole rings).
PreprocessingOutputs runDistributedPreprocessing(const core::HybridNetwork& net,
                                                 sim::Simulator& simulator,
                                                 PreprocessingReport* report,
                                                 unsigned seed = 1,
                                                 std::vector<std::vector<int>>* ringsOut = nullptr,
                                                 const RetryPolicy* retry = nullptr);

}  // namespace hybrid::protocols
