#include "protocols/reliable.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace hybrid::protocols {

ReliableProtocol::ReliableProtocol(sim::Simulator& simulator, sim::Protocol& inner,
                                   RetryPolicy policy)
    : sim_(simulator), inner_(inner), policy_(policy) {
  policy_.baseTimeout = std::max(3, policy_.baseTimeout);
  policy_.maxTimeout = std::max(policy_.baseTimeout, policy_.maxTimeout);
  policy_.maxAttempts = std::max(1, policy_.maxAttempts);
  st_.resize(sim_.numNodes());
  sim_.setSendTap(this);
}

ReliableProtocol::~ReliableProtocol() {
  if (sim_.sendTap() == this) sim_.setSendTap(nullptr);
  // The wrapper's lifetime brackets one reliable run: publish its ARQ
  // totals when it goes out of scope.
  HYBRID_OBS_STMT(if (obs::enabled()) {
    const ReliableStats total = stats();
    auto& reg = obs::Registry::global();
    reg.counter("arq.retransmissions").add(static_cast<std::uint64_t>(total.retransmissions));
    reg.counter("arq.acks").add(static_cast<std::uint64_t>(total.acks));
    reg.counter("arq.duplicates_suppressed")
        .add(static_cast<std::uint64_t>(total.duplicatesSuppressed));
    reg.counter("arq.held_for_order").add(static_cast<std::uint64_t>(total.heldForOrder));
    reg.counter("arq.abandoned").add(static_cast<std::uint64_t>(total.abandoned));
  });
}

bool ReliableProtocol::onSend(sim::Message& m, int round) {
  if (m.relCtl) return true;  // our own acks pass through untouched
  NodeState& s = st_[static_cast<std::size_t>(m.from)];
  if (m.relSeq >= 0) {
    // A retransmission we initiated in onRoundEnd; already tracked.
    ++s.counters.retransmissions;
    return true;
  }
  const int seq = s.nextSeqOut[m.to]++;
  m.relSeq = seq;
  PendingSend& p = s.pending[{m.to, seq}];
  p.msg = m;
  p.timeout = policy_.baseTimeout;
  p.nextRetry = round + p.timeout;
  p.attempts = 1;
  return true;
}

void ReliableProtocol::onStart(sim::Context& ctx) { inner_.onStart(ctx); }

void ReliableProtocol::deliver(sim::Context& ctx, const sim::Message& m) {
  inner_.onMessage(ctx, m);
}

void ReliableProtocol::onMessage(sim::Context& ctx, const sim::Message& m) {
  NodeState& s = st_[static_cast<std::size_t>(ctx.self())];
  if (m.relCtl) {
    s.pending.erase({m.from, m.relSeq});
    return;
  }
  if (m.relSeq < 0) {
    // Not transport-managed (sent outside this wrapper); pass through.
    deliver(ctx, m);
    return;
  }
  // Ack every data copy, duplicates included: the original ack may be the
  // lost one, and acks are idempotent at the sender.
  sim::Message ack;
  ack.relCtl = true;
  ack.relSeq = m.relSeq;
  ++s.counters.acks;
  if (m.link == sim::Link::AdHoc) {
    ctx.sendAdHoc(m.from, std::move(ack));
  } else {
    ctx.sendLongRange(m.from, std::move(ack));
  }
  InboundLink& in = s.in[m.from];
  if (m.relSeq < in.nextSeq) {
    ++s.counters.duplicatesSuppressed;
    return;
  }
  if (m.relSeq > in.nextSeq) {
    // Restore per-link FIFO order: hold until the gap closes.
    if (!in.held.emplace(m.relSeq, m).second) {
      ++s.counters.duplicatesSuppressed;
    } else {
      ++s.counters.heldForOrder;
    }
    return;
  }
  deliver(ctx, m);
  ++in.nextSeq;
  for (auto it = in.held.begin(); it != in.held.end() && it->first == in.nextSeq;) {
    deliver(ctx, it->second);
    ++in.nextSeq;
    it = in.held.erase(it);
  }
}

void ReliableProtocol::onRoundEnd(sim::Context& ctx) {
  inner_.onRoundEnd(ctx);
  NodeState& s = st_[static_cast<std::size_t>(ctx.self())];
  const int round = ctx.round();
  for (auto it = s.pending.begin(); it != s.pending.end();) {
    PendingSend& p = it->second;
    if (round < p.nextRetry) {
      ++it;
      continue;
    }
    if (p.attempts >= policy_.maxAttempts) {
      ++s.counters.abandoned;
      it = s.pending.erase(it);
      continue;
    }
    ++p.attempts;
    p.timeout = std::min(p.timeout * 2, policy_.maxTimeout);
    p.nextRetry = round + p.timeout;
    sim::Message copy = p.msg;
    if (copy.link == sim::Link::AdHoc) {
      ctx.sendAdHoc(copy.to, std::move(copy));
    } else {
      ctx.sendLongRange(copy.to, std::move(copy));
    }
    ++it;
  }
}

ReliableStats ReliableProtocol::stats() const {
  ReliableStats total;
  for (const NodeState& s : st_) {
    total.retransmissions += s.counters.retransmissions;
    total.acks += s.counters.acks;
    total.duplicatesSuppressed += s.counters.duplicatesSuppressed;
    total.heldForOrder += s.counters.heldForOrder;
    total.abandoned += s.counters.abandoned;
  }
  return total;
}

bool ReliableProtocol::wantsMoreRounds() const {
  if (inner_.wantsMoreRounds()) return true;
  for (const NodeState& s : st_) {
    if (!s.pending.empty()) return true;
  }
  return false;
}

}  // namespace hybrid::protocols
