#pragma once

#include <map>
#include <vector>

#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// Timeout/backoff knobs for the reliable transport. The ad hoc round-trip
/// is two rounds (data delivered round i+1, ack round i+2), so the base
/// timeout must be at least 3 to avoid spurious retransmissions.
struct RetryPolicy {
  int baseTimeout = 3;   ///< Rounds before the first retransmission.
  int maxTimeout = 32;   ///< Cap of the exponential backoff.
  int maxAttempts = 16;  ///< Total sends per message before giving up.
};

/// Transport counters aggregated across all nodes of one wrapped run
/// (internally the transport counts per node so that multi-threaded
/// stepping never shares a counter between chunks).
struct ReliableStats {
  long retransmissions = 0;
  long acks = 0;
  long duplicatesSuppressed = 0;  ///< Dropped as already-delivered copies.
  long heldForOrder = 0;          ///< Buffered to restore per-link FIFO order.
  long abandoned = 0;             ///< Gave up after maxAttempts sends.
};

/// Stop-and-go ARQ wrapper that turns the lossy fault-injected channels
/// into reliable, per-link FIFO ones, transparently to the inner protocol:
///
///  - every inner send gets a per-(sender, receiver) sequence number
///    (attached via the SendTap hook, so Context::send* stays the API);
///  - the receiver acks every data message (acks ride the same link and
///    are themselves lossy — the sender retries until acked or spent);
///  - unacked messages are retransmitted with capped exponential backoff;
///  - deliveries to the inner protocol are deduplicated and reordered
///    into per-link sequence order, so duplication and delay faults are
///    invisible above the transport.
///
/// With a fault-free simulator the wrapper only adds ack traffic; the
/// inner protocol's message pattern is unchanged.
class ReliableProtocol : public sim::Protocol, public sim::SendTap {
 public:
  ReliableProtocol(sim::Simulator& simulator, sim::Protocol& inner,
                   RetryPolicy policy = {});
  ~ReliableProtocol() override;

  void onStart(sim::Context& ctx) override;
  void onMessage(sim::Context& ctx, const sim::Message& m) override;
  void onRoundEnd(sim::Context& ctx) override;
  bool wantsMoreRounds() const override;

  bool onSend(sim::Message& m, int round) override;

  /// Sums the per-node counters; cheap (one pass over nodes).
  ReliableStats stats() const;

 private:
  struct PendingSend {
    sim::Message msg;
    int nextRetry = 0;
    int timeout = 0;
    int attempts = 0;
  };
  struct InboundLink {
    int nextSeq = 0;
    std::map<int, sim::Message> held;  ///< Out-of-order arrivals by seq.
  };
  struct NodeState {
    std::map<int, int> nextSeqOut;                     ///< Per destination.
    std::map<std::pair<int, int>, PendingSend> pending;  ///< (to, seq).
    std::map<int, InboundLink> in;                     ///< Per sender.
    ReliableStats counters;  ///< This node's share of the transport stats.
  };

  void deliver(sim::Context& ctx, const sim::Message& m);

  sim::Simulator& sim_;
  sim::Protocol& inner_;
  RetryPolicy policy_;
  std::vector<NodeState> st_;
};

}  // namespace hybrid::protocols
