#include "protocols/ring_pipeline.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "geom/angle.hpp"
#include "geom/polygon.hpp"

namespace hybrid::protocols {

namespace {

constexpr long kNoId = std::numeric_limits<long>::max();

// Per-(node, ring) protocol state. A node lying on several boundary rings
// runs one independent instance per ring; messages are tagged with the
// ring index (first entry of Message::ints) to dispatch to the right one.
struct InstState {
  int ring = -1;
  int node = -1;
  int pred0 = -1;
  int succ0 = -1;
  double ownTurnAngle = 0.0;

  // Phase 1: pointer jumping.
  int curPred = -1;
  int curSucc = -1;
  long minSucc = kNoId;  ///< min ID over (v, curSucc]
  long minPred = kNoId;  ///< min ID over [curPred, v)
  std::vector<int> succDist;  ///< contact at ring distance 2^j forward
  std::vector<int> predDist;  ///< contact at ring distance 2^j backward
  bool elected = false;
  int leader = -1;
  int nextSucc = -1;
  long nextMinSucc = kNoId;
  int nextPred = -1;
  long nextMinPred = kNoId;

  // Phase 2: ring-distance IDs.
  long id = kNoId;
  long bestForwarded = kNoId;

  // Phase 3: aggregation partials.
  long count = 1;
  double angle = 0.0;
  long maxId = 0;
  std::vector<int> hullIds;
  std::vector<geom::Vec2> hullPts;
  std::vector<int> childLevels;

  // Phase 4: results.
  bool haveResult = false;
  long ringSize = 0;
  double totalAngle = 0.0;
  std::vector<int> finalHull;
};

// All instances, grouped by node for handler dispatch.
class Instances {
 public:
  explicit Instances(std::size_t numNodes) : byNode_(numNodes) {}

  InstState& add(int node, int ring) {
    auto& list = byNode_[static_cast<std::size_t>(node)];
    list.push_back(InstState{});
    list.back().ring = ring;
    list.back().node = node;
    return list.back();
  }

  InstState* find(int node, int ring) {
    for (auto& s : byNode_[static_cast<std::size_t>(node)]) {
      if (s.ring == ring) return &s;
    }
    return nullptr;
  }

  std::vector<InstState>& of(int node) { return byNode_[static_cast<std::size_t>(node)]; }
  std::size_t numNodes() const { return byNode_.size(); }

 private:
  std::vector<std::vector<InstState>> byNode_;
};

void mergeHullInto(InstState& s, const std::vector<int>& ids,
                   const std::vector<geom::Vec2>& pts) {
  std::vector<int> allIds = s.hullIds;
  std::vector<geom::Vec2> allPts = s.hullPts;
  allIds.insert(allIds.end(), ids.begin(), ids.end());
  allPts.insert(allPts.end(), pts.begin(), pts.end());
  const auto hull = geom::convexHullIndices(allPts);
  s.hullIds.clear();
  s.hullPts.clear();
  for (int i : hull) {
    s.hullIds.push_back(allIds[static_cast<std::size_t>(i)]);
    s.hullPts.push_back(allPts[static_cast<std::size_t>(i)]);
  }
  if (s.hullIds.empty() && !allIds.empty()) {  // degenerate (collinear) sets
    s.hullIds = allIds;
    s.hullPts = allPts;
  }
}

// ---------------------------------------------------------------------------
// Phase 1: pointer jumping with leader election (paper §5.2).
// ---------------------------------------------------------------------------
class PointerJumping : public sim::Protocol {
 public:
  explicit PointerJumping(Instances& st) : st_(st) {}

  static constexpr int kToPred = 1;  // ints: [ring, newSucc, minSucc]
  static constexpr int kToSucc = 2;  // ints: [ring, newPred, minPred]

  void onStart(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      s.curPred = s.pred0;
      s.curSucc = s.succ0;
      s.minSucc = s.succ0;
      s.minPred = s.pred0;
      s.succDist = {s.succ0};
      s.predDist = {s.pred0};
      sendPair(ctx, s);
    }
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    InstState* s = st_.find(ctx.self(), static_cast<int>(m.ints[0]));
    if (s == nullptr) return;
    if (m.type == kToPred) {
      s->nextSucc = static_cast<int>(m.ints[1]);
      s->nextMinSucc = std::min(s->minSucc, static_cast<long>(m.ints[2]));
    } else if (m.type == kToSucc) {
      s->nextPred = static_cast<int>(m.ints[1]);
      s->nextMinPred = std::min(s->minPred, static_cast<long>(m.ints[2]));
    }
  }

  void onRoundEnd(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      if (s.nextSucc < 0 || s.nextPred < 0) continue;  // not updated this round
      s.curSucc = s.nextSucc;
      s.curPred = s.nextPred;
      s.minSucc = s.nextMinSucc;
      s.minPred = s.nextMinPred;
      s.nextSucc = s.nextPred = -1;
      s.succDist.push_back(s.curSucc);
      s.predDist.push_back(s.curPred);
      if (s.elected) continue;  // post-election doubling round applied; stop
      if (s.minSucc == s.minPred) {
        // Both arcs wrapped far enough to cover the ring (minus v itself).
        // One more doubling round runs so the contact tables reach level
        // J+1 — the ID assignment needs sums up to 2^(J+2)-1 >= k-1.
        s.elected = true;
        s.leader = static_cast<int>(std::min(s.minSucc, static_cast<long>(ctx.self())));
        sendPair(ctx, s);
        continue;
      }
      sendPair(ctx, s);
    }
  }

 private:
  void sendPair(sim::Context& ctx, InstState& s) {
    sim::Message toPred;
    toPred.type = kToPred;
    toPred.ints = {s.ring, s.curSucc, s.minSucc};
    toPred.ids = {s.curSucc};
    ctx.sendLongRange(s.curPred, std::move(toPred));
    sim::Message toSucc;
    toSucc.type = kToSucc;
    toSucc.ints = {s.ring, s.curPred, s.minPred};
    toSucc.ids = {s.curPred};
    ctx.sendLongRange(s.curSucc, std::move(toSucc));
  }

  Instances& st_;
};

// ---------------------------------------------------------------------------
// Phase 2: ring-distance (hypercube) ID assignment from the leader.
// ---------------------------------------------------------------------------
class IdAssignment : public sim::Protocol {
 public:
  explicit IdAssignment(Instances& st) : st_(st) {}

  static constexpr int kAssign = 3;  // ints: [ring, value, level]

  void onStart(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      if (s.leader != ctx.self()) continue;
      s.id = 0;
      for (std::size_t j = 0; j < s.succDist.size(); ++j) {
        const int target = s.succDist[j];
        if (target == ctx.self()) continue;  // wrapped pointer
        sim::Message m;
        m.type = kAssign;
        m.ints = {s.ring, static_cast<std::int64_t>(1) << j, static_cast<std::int64_t>(j)};
        ctx.sendLongRange(target, std::move(m));
      }
    }
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    InstState* s = st_.find(ctx.self(), static_cast<int>(m.ints[0]));
    if (s == nullptr) return;
    const long value = static_cast<long>(m.ints[1]);
    const int level = static_cast<int>(m.ints[2]);
    s->id = std::min(s->id, value);
    if (value >= s->bestForwarded) return;  // an equal pass already forwarded
    s->bestForwarded = value;
    for (int j = 0; j < level; ++j) {
      const int target = s->succDist[static_cast<std::size_t>(j)];
      if (target == ctx.self()) continue;
      sim::Message fwd;
      fwd.type = kAssign;
      fwd.ints = {s->ring, value + (static_cast<std::int64_t>(1) << j),
                  static_cast<std::int64_t>(j)};
      ctx.sendLongRange(target, std::move(fwd));
    }
  }

 private:
  Instances& st_;
};

// ---------------------------------------------------------------------------
// Phase 3: binomial-tree aggregation of ring size, turning angle and the
// convex hull (paper §5.3/§5.4).
// ---------------------------------------------------------------------------
class Aggregation : public sim::Protocol {
 public:
  Aggregation(Instances& st, int levels) : st_(st), levels_(levels) {}

  static constexpr int kPartial = 4;
  // ints: [ring, count, maxId, hullIds...]; reals: [angle, X..., Y...]

  void onStart(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      s.count = 1;
      s.angle = s.ownTurnAngle;
      s.maxId = s.id == kNoId ? 0 : s.id;
      s.hullIds = {ctx.self()};
      s.hullPts = {ctx.position()};
      s.childLevels.clear();
      maybeSend(ctx, s, 0);
    }
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    InstState* s = st_.find(ctx.self(), static_cast<int>(m.ints[0]));
    if (s == nullptr) return;
    s->count += static_cast<long>(m.ints[1]);
    s->maxId = std::max(s->maxId, static_cast<long>(m.ints[2]));
    s->angle += m.reals[0];
    const std::size_t h = m.ints.size() - 3;
    std::vector<int> ids;
    std::vector<geom::Vec2> pts;
    for (std::size_t i = 0; i < h; ++i) {
      ids.push_back(static_cast<int>(m.ints[3 + i]));
      pts.push_back({m.reals[1 + i], m.reals[1 + h + i]});
    }
    mergeHullInto(*s, ids, pts);
    s->childLevels.push_back(ctx.round() - 1);  // sent at level = round - 1
  }

  void onRoundEnd(sim::Context& ctx) override {
    if (ctx.self() == 0) roundsSeen_ = ctx.round();
    for (InstState& s : st_.of(ctx.self())) maybeSend(ctx, s, ctx.round());
  }

  bool wantsMoreRounds() const override { return roundsSeen_ < levels_; }

 private:
  void maybeSend(sim::Context& ctx, InstState& s, int round) {
    const int j = round;  // level j fires at round j, delivered j+1
    if (j >= levels_ || s.id == kNoId) return;
    const auto bit = static_cast<long>(1) << j;
    if ((s.id & ((bit << 1) - 1)) != bit) return;
    if (static_cast<std::size_t>(j) >= s.predDist.size()) return;
    const int target = s.predDist[static_cast<std::size_t>(j)];
    if (target == ctx.self()) return;
    sim::Message m;
    m.type = kPartial;
    m.ints = {s.ring, s.count, s.maxId};
    for (int idv : s.hullIds) m.ints.push_back(idv);
    m.reals = {s.angle};
    for (const auto& p : s.hullPts) m.reals.push_back(p.x);
    for (const auto& p : s.hullPts) m.reals.push_back(p.y);
    m.ids = s.hullIds;
    ctx.sendLongRange(target, std::move(m));
  }

  Instances& st_;
  int levels_;
  int roundsSeen_ = 0;
};

// ---------------------------------------------------------------------------
// Phase 4: broadcast of the aggregate back down the binomial tree.
// ---------------------------------------------------------------------------
class BroadcastDown : public sim::Protocol {
 public:
  explicit BroadcastDown(Instances& st) : st_(st) {}

  static constexpr int kResult = 5;
  // ints: [ring, ringSize, leader, hullIds...]; reals: [angle]

  void onStart(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      if (s.id != 0) continue;
      s.ringSize = s.maxId + 1;
      s.totalAngle = s.angle;
      s.finalHull = s.hullIds;
      s.haveResult = true;
      forward(ctx, s);
    }
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    InstState* s = st_.find(ctx.self(), static_cast<int>(m.ints[0]));
    if (s == nullptr || s->haveResult) return;
    s->ringSize = static_cast<long>(m.ints[1]);
    s->totalAngle = m.reals[0];
    s->finalHull.assign(m.ints.begin() + 3, m.ints.end());
    s->haveResult = true;
    forward(ctx, *s);
  }

 private:
  void forward(sim::Context& ctx, InstState& s) {
    for (int j : s.childLevels) {
      if (static_cast<std::size_t>(j) >= s.succDist.size()) continue;
      const int target = s.succDist[static_cast<std::size_t>(j)];
      if (target == ctx.self()) continue;
      sim::Message m;
      m.type = kResult;
      m.ints = {s.ring, s.ringSize, s.leader};
      for (int idv : s.finalHull) m.ints.push_back(idv);
      m.reals = {s.totalAngle};
      m.ids = s.finalHull;
      ctx.sendLongRange(target, std::move(m));
    }
  }

  Instances& st_;
};

}  // namespace

RingPipeline::RingPipeline(sim::Simulator& simulator, RingInputs inputs)
    : sim_(simulator), inputs_(std::move(inputs)) {
  ringId_.assign(sim_.numNodes(), -1);
  ringOf_.assign(sim_.numNodes(), -1);
  // Make each ring simple (drop repeated visits through cut vertices).
  for (auto& ring : inputs_.rings) {
    std::set<int> seen;
    std::vector<int> simple;
    for (int v : ring) {
      if (seen.insert(v).second) simple.push_back(v);
    }
    ring = std::move(simple);
  }
  // Ring neighbors know each other: for inner holes they are LDel (hence
  // UDG) neighbors; for outer holes the two endpoints of a long hull edge
  // learned each other while computing the outer boundary's convex hull
  // (paper §5.4). Model that as an out-of-band introduction.
  for (const auto& ring : inputs_.rings) {
    const std::size_t k = ring.size();
    for (std::size_t i = 0; i < k; ++i) {
      sim_.introduce(ring[i], ring[(i + 1) % k]);
      sim_.introduce(ring[(i + 1) % k], ring[i]);
    }
  }
}

std::vector<RingResult> RingPipeline::run() {
  Instances st(sim_.numNodes());
  for (std::size_t ri = 0; ri < inputs_.rings.size(); ++ri) {
    const auto& ring = inputs_.rings[ri];
    if (ring.size() < 3) continue;
    const int k = static_cast<int>(ring.size());
    for (int i = 0; i < k; ++i) {
      const int node = ring[static_cast<std::size_t>(i)];
      InstState& s = st.add(node, static_cast<int>(ri));
      s.pred0 = ring[static_cast<std::size_t>((i + k - 1) % k)];
      s.succ0 = ring[static_cast<std::size_t>((i + 1) % k)];
      s.ownTurnAngle = geom::signedTurnAngle(sim_.position(s.pred0), sim_.position(node),
                                             sim_.position(s.succ0));
    }
  }

  PointerJumping p1(st);
  rounds_.pointerJumping = sim_.run(p1);

  IdAssignment p2(st);
  rounds_.idAssignment = sim_.run(p2);

  int maxLevels = 1;
  for (std::size_t v = 0; v < st.numNodes(); ++v) {
    for (const auto& s : st.of(static_cast<int>(v))) {
      maxLevels = std::max(maxLevels, static_cast<int>(s.succDist.size()));
    }
  }
  Aggregation p3(st, maxLevels);
  rounds_.aggregation = sim_.run(p3);

  BroadcastDown p4(st);
  rounds_.broadcast = sim_.run(p4);

  for (std::size_t v = 0; v < st.numNodes(); ++v) {
    const auto& list = st.of(static_cast<int>(v));
    if (!list.empty()) {
      ringId_[v] = list.front().id == kNoId ? -1 : static_cast<int>(list.front().id);
      ringOf_[v] = list.front().ring;
    }
  }

  std::vector<RingResult> out(inputs_.rings.size());
  for (std::size_t ri = 0; ri < inputs_.rings.size(); ++ri) {
    for (int v : inputs_.rings[ri]) {
      const InstState* s = st.find(v, static_cast<int>(ri));
      if (s == nullptr || !s->haveResult) continue;
      out[ri].leader = s->leader;
      out[ri].size = static_cast<int>(s->ringSize);
      out[ri].turningAngle = s->totalAngle;
      out[ri].hull = s->finalHull;
      break;
    }
  }
  return out;
}

}  // namespace hybrid::protocols
