#include "protocols/ring_pipeline.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "geom/angle.hpp"
#include "geom/polygon.hpp"
#include "obs/metrics.hpp"
#include "protocols/reliable.hpp"

namespace hybrid::protocols {

namespace {

constexpr long kNoId = std::numeric_limits<long>::max();

// Per-(node, ring) protocol state. A node lying on several boundary rings
// runs one independent instance per ring; messages are tagged with the
// ring index (first entry of Message::ints) to dispatch to the right one.
struct InstState {
  int ring = -1;
  int node = -1;
  int pred0 = -1;
  int succ0 = -1;
  double ownTurnAngle = 0.0;

  // Phase 1: pointer jumping. Messages are tagged with the sender's
  // doubling step and buffered per step, so delayed or reordered arrivals
  // (fault injection + retries) are consumed in step order instead of
  // corrupting the doubling algebra.
  int curPred = -1;
  int curSucc = -1;
  long minSucc = kNoId;  ///< min ID over (v, curSucc]
  long minPred = kNoId;  ///< min ID over [curPred, v)
  std::vector<int> succDist;  ///< contact at ring distance 2^j forward
  std::vector<int> predDist;  ///< contact at ring distance 2^j backward
  int pjStep = 0;
  std::map<int, std::pair<int, long>> pjToPred;  ///< step -> (succ, minSucc)
  std::map<int, std::pair<int, long>> pjToSucc;  ///< step -> (pred, minPred)
  bool elected = false;
  int leader = -1;

  // Phase 2: ring-distance IDs.
  long id = kNoId;
  long bestForwarded = kNoId;

  // Phase 3: aggregation partials. The binomial tree is event-driven: a
  // node fires its level once every expected child partial arrived, which
  // it knows exactly from the contacts' ID reports.
  long count = 1;
  double angle = 0.0;
  long maxId = 0;
  std::vector<int> hullIds;
  std::vector<geom::Vec2> hullPts;
  std::vector<int> childLevels;
  int levelCap = 0;                ///< Uniform per-ring contact-table depth.
  std::map<int, long> contactId;   ///< level -> ring ID of succDist[level].
  std::set<int> receivedChildren;  ///< Levels whose partial arrived.
  bool fired = false;
  bool aggDone = false;

  // Phase 4: results.
  bool haveResult = false;
  long ringSize = 0;
  double totalAngle = 0.0;
  std::vector<int> finalHull;
};

// All instances, grouped by node for handler dispatch.
class Instances {
 public:
  explicit Instances(std::size_t numNodes) : byNode_(numNodes) {}

  InstState& add(int node, int ring) {
    auto& list = byNode_[static_cast<std::size_t>(node)];
    list.push_back(InstState{});
    list.back().ring = ring;
    list.back().node = node;
    return list.back();
  }

  InstState* find(int node, int ring) {
    for (auto& s : byNode_[static_cast<std::size_t>(node)]) {
      if (s.ring == ring) return &s;
    }
    return nullptr;
  }

  std::vector<InstState>& of(int node) { return byNode_[static_cast<std::size_t>(node)]; }
  std::size_t numNodes() const { return byNode_.size(); }

 private:
  std::vector<std::vector<InstState>> byNode_;
};

void mergeHullInto(InstState& s, const std::vector<int>& ids,
                   const std::vector<geom::Vec2>& pts) {
  std::vector<int> allIds = s.hullIds;
  std::vector<geom::Vec2> allPts = s.hullPts;
  allIds.insert(allIds.end(), ids.begin(), ids.end());
  allPts.insert(allPts.end(), pts.begin(), pts.end());
  const auto hull = geom::convexHullIndices(allPts);
  s.hullIds.clear();
  s.hullPts.clear();
  for (int i : hull) {
    s.hullIds.push_back(allIds[static_cast<std::size_t>(i)]);
    s.hullPts.push_back(allPts[static_cast<std::size_t>(i)]);
  }
  if (s.hullIds.empty() && !allIds.empty()) {  // degenerate (collinear) sets
    s.hullIds = allIds;
    s.hullPts = allPts;
  }
}

int lowestSetBit(long x) {
  int j = 0;
  while (((x >> j) & 1) == 0) ++j;
  return j;
}

// ---------------------------------------------------------------------------
// Phase 1: pointer jumping with leader election (paper §5.2).
// ---------------------------------------------------------------------------
class PointerJumping : public sim::Protocol {
 public:
  explicit PointerJumping(Instances& st) : st_(st) {}

  static constexpr int kToPred = 1;  // ints: [ring, step, newSucc, minSucc]
  static constexpr int kToSucc = 2;  // ints: [ring, step, newPred, minPred]

  void onStart(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      s.curPred = s.pred0;
      s.curSucc = s.succ0;
      s.minSucc = s.succ0;
      s.minPred = s.pred0;
      s.succDist = {s.succ0};
      s.predDist = {s.pred0};
      sendPair(ctx, s);
    }
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    InstState* s = st_.find(ctx.self(), static_cast<int>(m.ints[0]));
    if (s == nullptr) return;
    const int step = static_cast<int>(m.ints[1]);
    const auto slot = std::make_pair(static_cast<int>(m.ints[2]),
                                     static_cast<long>(m.ints[3]));
    if (m.type == kToPred) {
      s->pjToPred.emplace(step, slot);
    } else if (m.type == kToSucc) {
      s->pjToSucc.emplace(step, slot);
    }
  }

  void onRoundEnd(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      // Consume buffered steps in order; usually one per round, but a
      // node catches up in one round after a delayed message arrives.
      while (true) {
        const auto ip = s.pjToPred.find(s.pjStep);
        const auto is = s.pjToSucc.find(s.pjStep);
        if (ip == s.pjToPred.end() || is == s.pjToSucc.end()) break;
        s.curSucc = ip->second.first;
        s.minSucc = std::min(s.minSucc, ip->second.second);
        s.curPred = is->second.first;
        s.minPred = std::min(s.minPred, is->second.second);
        s.pjToPred.erase(ip);
        s.pjToSucc.erase(is);
        ++s.pjStep;
        s.succDist.push_back(s.curSucc);
        s.predDist.push_back(s.curPred);
        if (s.elected) continue;  // post-election doubling applied; no more sends
        if (s.minSucc == s.minPred) {
          // Both arcs wrapped far enough to cover the ring (minus v
          // itself). One more doubling round runs so the contact tables
          // reach level J+1 — the ID assignment needs sums up to
          // 2^(J+2)-1 >= k-1.
          s.elected = true;
          s.leader = static_cast<int>(std::min(s.minSucc, static_cast<long>(ctx.self())));
        }
        sendPair(ctx, s);
      }
    }
  }

 private:
  void sendPair(sim::Context& ctx, InstState& s) {
    sim::Message toPred;
    toPred.type = kToPred;
    toPred.ints = {s.ring, s.pjStep, s.curSucc, s.minSucc};
    toPred.ids = {s.curSucc};
    ctx.sendLongRange(s.curPred, std::move(toPred));
    sim::Message toSucc;
    toSucc.type = kToSucc;
    toSucc.ints = {s.ring, s.pjStep, s.curPred, s.minPred};
    toSucc.ids = {s.curPred};
    ctx.sendLongRange(s.curSucc, std::move(toSucc));
  }

  Instances& st_;
};

// ---------------------------------------------------------------------------
// Phase 2: ring-distance (hypercube) ID assignment from the leader.
// Order-free: every node keeps the minimum received value and forwards
// only strict improvements, so delayed or reordered deliveries converge
// to the same IDs.
// ---------------------------------------------------------------------------
class IdAssignment : public sim::Protocol {
 public:
  explicit IdAssignment(Instances& st) : st_(st) {}

  static constexpr int kAssign = 3;  // ints: [ring, value, level]

  void onStart(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      if (s.leader != ctx.self()) continue;
      s.id = 0;
      for (std::size_t j = 0; j < s.succDist.size(); ++j) {
        const int target = s.succDist[j];
        if (target == ctx.self()) continue;  // wrapped pointer
        sim::Message m;
        m.type = kAssign;
        m.ints = {s.ring, static_cast<std::int64_t>(1) << j, static_cast<std::int64_t>(j)};
        ctx.sendLongRange(target, std::move(m));
      }
    }
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    InstState* s = st_.find(ctx.self(), static_cast<int>(m.ints[0]));
    if (s == nullptr) return;
    const long value = static_cast<long>(m.ints[1]);
    const int level = static_cast<int>(m.ints[2]);
    s->id = std::min(s->id, value);
    if (value >= s->bestForwarded) return;  // an equal pass already forwarded
    s->bestForwarded = value;
    for (int j = 0; j < level; ++j) {
      const int target = s->succDist[static_cast<std::size_t>(j)];
      if (target == ctx.self()) continue;
      sim::Message fwd;
      fwd.type = kAssign;
      fwd.ints = {s->ring, value + (static_cast<std::int64_t>(1) << j),
                  static_cast<std::int64_t>(j)};
      ctx.sendLongRange(target, std::move(fwd));
    }
  }

 private:
  Instances& st_;
};

// ---------------------------------------------------------------------------
// Phase 3: binomial-tree aggregation of ring size, turning angle and the
// convex hull (paper §5.3/§5.4). Event-driven: contacts first exchange
// their ring IDs, which gives every node its exact child set (child at
// level j iff the forward-2^j contact's ID is id + 2^j); a node pushes
// its partial to its parent once all child partials arrived. No round
// schedule — correct under arbitrary message delay.
// ---------------------------------------------------------------------------
class Aggregation : public sim::Protocol {
 public:
  explicit Aggregation(Instances& st) : st_(st) {}

  static constexpr int kPartial = 4;
  // ints: [ring, level, count, maxId, hullIds...]; reals: [angle, X..., Y...]
  static constexpr int kIdReport = 6;  // ints: [ring, level, id]

  void onStart(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      s.count = 1;
      s.angle = s.ownTurnAngle;
      s.maxId = s.id == kNoId ? 0 : s.id;
      s.hullIds = {ctx.self()};
      s.hullPts = {ctx.position()};
      s.childLevels.clear();
      if (s.id == kNoId) {
        s.fired = true;  // never got an ID (degenerate ring): inert
        continue;
      }
      for (int j = 0; j < s.levelCap; ++j) {
        const int target = s.predDist[static_cast<std::size_t>(j)];
        if (target == ctx.self()) continue;
        sim::Message m;
        m.type = kIdReport;
        m.ints = {s.ring, j, s.id};
        ctx.sendLongRange(target, std::move(m));
      }
      maybeFire(ctx, s);
    }
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    InstState* s = st_.find(ctx.self(), static_cast<int>(m.ints[0]));
    if (s == nullptr) return;
    if (m.type == kIdReport) {
      s->contactId.emplace(static_cast<int>(m.ints[1]), static_cast<long>(m.ints[2]));
      maybeFire(ctx, *s);
      return;
    }
    if (m.type != kPartial) return;
    const int level = static_cast<int>(m.ints[1]);
    if (!s->receivedChildren.insert(level).second) return;  // duplicate copy
    s->count += static_cast<long>(m.ints[2]);
    s->maxId = std::max(s->maxId, static_cast<long>(m.ints[3]));
    s->angle += m.reals[0];
    const std::size_t h = m.ints.size() - 4;
    std::vector<int> ids;
    std::vector<geom::Vec2> pts;
    for (std::size_t i = 0; i < h; ++i) {
      ids.push_back(static_cast<int>(m.ints[4 + i]));
      pts.push_back({m.reals[1 + i], m.reals[1 + h + i]});
    }
    mergeHullInto(*s, ids, pts);
    s->childLevels.push_back(level);
    maybeFire(ctx, *s);
  }

 private:
  // The level this instance pushes its partial at: the lowest set bit of
  // its ring ID. The leader (ID 0) never pushes; it is done when all its
  // children fired.
  static int fireLevel(const InstState& s) {
    return s.id == 0 ? s.levelCap : std::min(lowestSetBit(s.id), s.levelCap);
  }

  void maybeFire(sim::Context& ctx, InstState& s) {
    if (s.fired) return;
    const int jf = fireLevel(s);
    for (int j = 0; j < jf; ++j) {
      if (s.succDist[static_cast<std::size_t>(j)] == s.node) continue;  // wrapped
      const auto it = s.contactId.find(j);
      if (it == s.contactId.end()) return;  // ID report still in flight
      // The forward-2^j contact is our child iff its ID is exactly
      // id + 2^j (a smaller ID means the pointer wrapped past the ring
      // end — no such child).
      if (it->second != s.id + (static_cast<long>(1) << j)) continue;
      if (!s.receivedChildren.contains(j)) return;  // partial still missing
    }
    s.fired = true;
    if (s.id == 0) {
      s.aggDone = true;
      return;
    }
    const int j = lowestSetBit(s.id);
    if (static_cast<std::size_t>(j) >= s.predDist.size()) return;
    const int target = s.predDist[static_cast<std::size_t>(j)];
    if (target == s.node) return;
    sim::Message m;
    m.type = kPartial;
    m.ints = {s.ring, j, s.count, s.maxId};
    for (int idv : s.hullIds) m.ints.push_back(idv);
    m.reals = {s.angle};
    for (const auto& p : s.hullPts) m.reals.push_back(p.x);
    for (const auto& p : s.hullPts) m.reals.push_back(p.y);
    m.ids = s.hullIds;
    ctx.sendLongRange(target, std::move(m));
  }

  Instances& st_;
};

// ---------------------------------------------------------------------------
// Phase 4: broadcast of the aggregate back down the binomial tree.
// ---------------------------------------------------------------------------
class BroadcastDown : public sim::Protocol {
 public:
  explicit BroadcastDown(Instances& st) : st_(st) {}

  static constexpr int kResult = 5;
  // ints: [ring, ringSize, leader, hullIds...]; reals: [angle]

  void onStart(sim::Context& ctx) override {
    for (InstState& s : st_.of(ctx.self())) {
      if (s.id != 0) continue;
      s.ringSize = s.maxId + 1;
      s.totalAngle = s.angle;
      s.finalHull = s.hullIds;
      s.haveResult = true;
      forward(ctx, s);
    }
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    InstState* s = st_.find(ctx.self(), static_cast<int>(m.ints[0]));
    if (s == nullptr || s->haveResult) return;
    s->ringSize = static_cast<long>(m.ints[1]);
    s->totalAngle = m.reals[0];
    s->finalHull.assign(m.ints.begin() + 3, m.ints.end());
    s->haveResult = true;
    forward(ctx, *s);
  }

 private:
  void forward(sim::Context& ctx, InstState& s) {
    for (int j : s.childLevels) {
      if (static_cast<std::size_t>(j) >= s.succDist.size()) continue;
      const int target = s.succDist[static_cast<std::size_t>(j)];
      if (target == ctx.self()) continue;
      sim::Message m;
      m.type = kResult;
      m.ints = {s.ring, s.ringSize, s.leader};
      for (int idv : s.finalHull) m.ints.push_back(idv);
      m.reals = {s.totalAngle};
      m.ids = s.finalHull;
      ctx.sendLongRange(target, std::move(m));
    }
  }

  Instances& st_;
};

}  // namespace

RingPipeline::RingPipeline(sim::Simulator& simulator, RingInputs inputs,
                           const RetryPolicy* retry)
    : sim_(simulator), inputs_(std::move(inputs)) {
  if (retry != nullptr) {
    withRetry_ = true;
    policy_ = *retry;
  }
  ringId_.assign(sim_.numNodes(), -1);
  ringOf_.assign(sim_.numNodes(), -1);
  // Make each ring simple (drop repeated visits through cut vertices).
  for (auto& ring : inputs_.rings) {
    std::set<int> seen;
    std::vector<int> simple;
    for (int v : ring) {
      if (seen.insert(v).second) simple.push_back(v);
    }
    ring = std::move(simple);
  }
  // Ring neighbors know each other: for inner holes they are LDel (hence
  // UDG) neighbors; for outer holes the two endpoints of a long hull edge
  // learned each other while computing the outer boundary's convex hull
  // (paper §5.4). Model that as an out-of-band introduction.
  for (const auto& ring : inputs_.rings) {
    const std::size_t k = ring.size();
    for (std::size_t i = 0; i < k; ++i) {
      sim_.introduce(ring[i], ring[(i + 1) % k]);
      sim_.introduce(ring[(i + 1) % k], ring[i]);
    }
  }
}

int RingPipeline::runPhase(sim::Protocol& phase) {
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    static obs::Counter& cPhases = reg.counter("proto.ring.phases");
    cPhases.add(1);
  });
  if (!withRetry_) {
    const int plainRounds = sim_.run(phase);
    HYBRID_OBS_STMT(if (obs::enabled()) {
      obs::Registry::global().counter("proto.ring.rounds").add(
          static_cast<std::uint64_t>(plainRounds));
    });
    return plainRounds;
  }
  ReliableProtocol reliable(sim_, phase, policy_);
  const int rounds = sim_.run(reliable);
  HYBRID_OBS_STMT(if (obs::enabled()) {
    obs::Registry::global().counter("proto.ring.rounds").add(static_cast<std::uint64_t>(rounds));
  });
  reliableStats_.retransmissions += reliable.stats().retransmissions;
  reliableStats_.acks += reliable.stats().acks;
  reliableStats_.duplicatesSuppressed += reliable.stats().duplicatesSuppressed;
  reliableStats_.heldForOrder += reliable.stats().heldForOrder;
  reliableStats_.abandoned += reliable.stats().abandoned;
  return rounds;
}

std::vector<RingResult> RingPipeline::run() {
  Instances st(sim_.numNodes());
  for (std::size_t ri = 0; ri < inputs_.rings.size(); ++ri) {
    const auto& ring = inputs_.rings[ri];
    if (ring.size() < 3) continue;
    const int k = static_cast<int>(ring.size());
    for (int i = 0; i < k; ++i) {
      const int node = ring[static_cast<std::size_t>(i)];
      InstState& s = st.add(node, static_cast<int>(ri));
      s.pred0 = ring[static_cast<std::size_t>((i + k - 1) % k)];
      s.succ0 = ring[static_cast<std::size_t>((i + 1) % k)];
      s.ownTurnAngle = geom::signedTurnAngle(sim_.position(s.pred0), sim_.position(node),
                                             sim_.position(s.succ0));
    }
  }

  PointerJumping p1(st);
  rounds_.pointerJumping = runPhase(p1);

  IdAssignment p2(st);
  rounds_.idAssignment = runPhase(p2);

  // Uniform per-ring contact-table depth: the aggregation's child
  // arithmetic needs senders and receivers to agree on the levels in
  // play, and tables can differ by a level across ring members.
  std::vector<int> cap(inputs_.rings.size(), std::numeric_limits<int>::max());
  for (std::size_t v = 0; v < st.numNodes(); ++v) {
    for (const auto& s : st.of(static_cast<int>(v))) {
      const int depth = static_cast<int>(std::min(s.succDist.size(), s.predDist.size()));
      cap[static_cast<std::size_t>(s.ring)] =
          std::min(cap[static_cast<std::size_t>(s.ring)], depth);
    }
  }
  for (std::size_t v = 0; v < st.numNodes(); ++v) {
    for (auto& s : st.of(static_cast<int>(v))) {
      s.levelCap = cap[static_cast<std::size_t>(s.ring)];
    }
  }

  Aggregation p3(st);
  rounds_.aggregation = runPhase(p3);

  BroadcastDown p4(st);
  rounds_.broadcast = runPhase(p4);

  for (std::size_t v = 0; v < st.numNodes(); ++v) {
    const auto& list = st.of(static_cast<int>(v));
    if (!list.empty()) {
      ringId_[v] = list.front().id == kNoId ? -1 : static_cast<int>(list.front().id);
      ringOf_[v] = list.front().ring;
    }
  }

  std::vector<RingResult> out(inputs_.rings.size());
  for (std::size_t ri = 0; ri < inputs_.rings.size(); ++ri) {
    for (int v : inputs_.rings[ri]) {
      const InstState* s = st.find(v, static_cast<int>(ri));
      if (s == nullptr || !s->haveResult) continue;
      out[ri].leader = s->leader;
      out[ri].size = static_cast<int>(s->ringSize);
      out[ri].turningAngle = s->totalAngle;
      out[ri].hull = s->finalHull;
      break;
    }
  }
  return out;
}

}  // namespace hybrid::protocols
