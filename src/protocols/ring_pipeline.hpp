#pragma once

#include <vector>

#include "protocols/reliable.hpp"
#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// Input: the boundary rings (holes and the outer boundary). Each node on a
/// ring knows only its ring predecessor and successor — in the real system
/// it derives them locally by sorting its boundary neighbors clockwise
/// (paper §5.2); here the rings come from the hole-detection oracle.
struct RingInputs {
  std::vector<std::vector<int>> rings;  ///< Node ids in ring order.
};

/// Per-ring results of the distributed pipeline.
struct RingResult {
  int leader = -1;
  int size = 0;               ///< k, learned via aggregation.
  double turningAngle = 0.0;  ///< +2*pi (ccw ring) or -2*pi (cw = outer boundary).
  std::vector<int> hull;      ///< Convex hull node ids (every member learns these).
};

/// Round counts per phase, for the experiment harness.
struct RingPipelineRounds {
  int pointerJumping = 0;
  int idAssignment = 0;
  int aggregation = 0;
  int broadcast = 0;
  int total() const { return pointerJumping + idAssignment + aggregation + broadcast; }
};

/// Distributed computation on boundary rings (paper §5.2-§5.4), all rings
/// in parallel on one simulator:
///  1. pointer jumping: leader election + doubling contacts, O(log k),
///  2. hypercube ID assignment (ring distance from the leader), O(log k),
///  3. block aggregation up the implicit binomial tree: ring size, turning
///     angle (hole detection), and the convex hull (merge of sub-hulls,
///     the Miller-Stout-style divide and conquer), O(log k),
///  4. broadcast of the results back down, O(log k).
class RingPipeline {
 public:
  /// With `retry` set, every phase runs under the ReliableProtocol ARQ
  /// wrapper, so the pipeline completes correctly on a fault-injected
  /// simulator (all phases are event-driven, not round-scheduled).
  RingPipeline(sim::Simulator& simulator, RingInputs inputs,
               const RetryPolicy* retry = nullptr);

  /// Runs all four phases; returns per-ring results.
  std::vector<RingResult> run();

  const RingPipelineRounds& rounds() const { return rounds_; }
  /// Transport counters summed over all phases (all zero without retry).
  const ReliableStats& reliableStats() const { return reliableStats_; }

  /// Ring-distance ID of a node after phase 2 (-1 if not on any ring).
  int ringIdOf(int node) const { return ringId_[static_cast<std::size_t>(node)]; }
  /// Which ring a node belongs to (-1 if none; a node on several rings is
  /// processed for its first ring only — multi-ring membership is handled
  /// by running the pipeline once per ring set in practice).
  int ringOf(int node) const { return ringOf_[static_cast<std::size_t>(node)]; }

 private:
  int runPhase(sim::Protocol& phase);

  sim::Simulator& sim_;
  RingInputs inputs_;
  bool withRetry_ = false;
  RetryPolicy policy_;
  ReliableStats reliableStats_;
  RingPipelineRounds rounds_;
  std::vector<int> ringId_;
  std::vector<int> ringOf_;
};

}  // namespace hybrid::protocols
