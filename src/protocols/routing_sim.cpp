#include "protocols/routing_sim.hpp"

#include "obs/metrics.hpp"

namespace hybrid::protocols {

namespace {

constexpr int kAskPosition = 30;
constexpr int kPosition = 31;
constexpr int kData = 32;  // ints: [pathIndex, path...]

class Transmission : public sim::Protocol {
 public:
  Transmission(core::HybridNetwork& net, int s, int t) : net_(net), s_(s), t_(t) {}

  void onStart(sim::Context& ctx) override {
    if (ctx.self() != s_) return;
    // (s, t) is an edge of E: the source knows the target's ID and asks
    // for its geographic position over a long-range link (paper §1.2).
    sim::Message ask;
    ask.type = kAskPosition;
    ctx.sendLongRange(t_, std::move(ask));
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    switch (m.type) {
      case kAskPosition: {
        sim::Message reply;
        reply.type = kPosition;
        reply.reals = {ctx.position().x, ctx.position().y};
        ctx.sendLongRange(m.from, std::move(reply));
        break;
      }
      case kPosition: {
        // Source-route: the oracle router computes the hop sequence the
        // distributed protocol (Chew + overlay lookups) would produce.
        const auto route = net_.route(s_, t_);
        if (!route.delivered || route.path.size() < 2) {
          delivered = route.delivered && ctx.self() == t_;
          if (route.path.size() == 1 && s_ == t_) delivered = true;
          return;
        }
        path = route.path;
        sim::Message data;
        data.type = kData;
        data.ints = {1};  // next index into the path
        for (int v : path) data.ints.push_back(v);
        ctx.sendAdHoc(path[1], std::move(data));
        break;
      }
      case kData: {
        if (ctx.self() == t_) {
          delivered = true;
          return;
        }
        const auto idx = static_cast<std::size_t>(m.ints[0]);
        if (idx + 1 >= m.ints.size() - 1) return;  // malformed
        sim::Message fwd;
        fwd.type = kData;
        fwd.ints = m.ints;
        fwd.ints[0] = static_cast<std::int64_t>(idx) + 1;
        ctx.sendAdHoc(static_cast<int>(m.ints[1 + idx + 1]), std::move(fwd));
        break;
      }
      default:
        break;
    }
  }

  bool delivered = false;
  std::vector<graph::NodeId> path;

 private:
  core::HybridNetwork& net_;
  int s_;
  int t_;
};

}  // namespace

TransmissionResult simulateTransmission(core::HybridNetwork& net,
                                        sim::Simulator& simulator, int s, int t) {
  simulator.introduce(s, t);  // (s, t) in E: the caller knows the callee
  simulator.resetStats();
  Transmission proto(net, s, t);
  TransmissionResult result;
  result.rounds = simulator.run(proto);
  result.delivered = proto.delivered;
  result.adHocHops = proto.path.empty() ? 0 : static_cast<int>(proto.path.size()) - 1;
  for (const auto& st : simulator.stats()) {
    result.adHocMessages += st.sentAdHoc;
    result.longRangeMessages += st.sentLongRange;
  }
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("proto.transmission.runs").add(1);
    reg.counter("proto.transmission.rounds").add(static_cast<std::uint64_t>(result.rounds));
    reg.counter("proto.transmission.adhoc_messages")
        .add(static_cast<std::uint64_t>(result.adHocMessages));
    reg.counter("proto.transmission.longrange_messages")
        .add(static_cast<std::uint64_t>(result.longRangeMessages));
    if (result.delivered) reg.counter("proto.transmission.delivered").add(1);
  });
  return result;
}

}  // namespace hybrid::protocols
