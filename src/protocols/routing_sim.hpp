#pragma once

#include "core/hybrid_network.hpp"
#include "sim/simulator.hpp"

namespace hybrid::protocols {

/// End-to-end transmission on the message-passing simulator, following the
/// paper's §1.2/§3 flow:
///   1. the source asks the target for its coordinates over a long-range
///      link ((s,t) is in E: users call people they know) — 2 rounds,
///   2. the source computes the route (in the real system this is the
///      Chew walk plus the hole nodes' overlay lookups; here the oracle
///      router stands in for that local computation, producing exactly
///      the hop sequence the distributed nodes would),
///   3. the message travels hop by hop over ad hoc links, one per round.
struct TransmissionResult {
  bool delivered = false;
  int rounds = 0;          ///< Total rounds including the position handshake.
  int adHocHops = 0;
  long adHocMessages = 0;
  long longRangeMessages = 0;
};

/// Simulates one transmission from s to t. The simulator must be built on
/// the network's UDG.
TransmissionResult simulateTransmission(core::HybridNetwork& net,
                                        sim::Simulator& simulator, int s, int t);

}  // namespace hybrid::protocols
