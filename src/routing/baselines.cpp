#include "routing/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "geom/angle.hpp"

namespace hybrid::routing {

RouteResult GreedyRouter::route(graph::NodeId source, graph::NodeId target) const {
  RouteResult r;
  r.path.push_back(source);
  const geom::Vec2 pt = g_.position(target);
  graph::NodeId cur = source;
  const std::size_t maxHops = 4 * g_.numNodes() + 16;
  while (cur != target && r.path.size() < maxHops) {
    const double dCur = geom::dist(g_.position(cur), pt);
    graph::NodeId best = -1;
    double bestD = dCur;
    for (graph::NodeId nb : g_.neighbors(cur)) {
      const double d = geom::dist(g_.position(nb), pt);
      if (d < bestD) {
        bestD = d;
        best = nb;
      }
    }
    if (best < 0) break;  // local minimum: greedy is stuck
    r.path.push_back(best);
    cur = best;
  }
  r.delivered = cur == target;
  return r;
}

RouteResult CompassRouter::route(graph::NodeId source, graph::NodeId target) const {
  RouteResult r;
  r.path.push_back(source);
  const geom::Vec2 pt = g_.position(target);
  graph::NodeId cur = source;
  std::set<graph::NodeId> visited{source};
  const std::size_t maxHops = 4 * g_.numNodes() + 16;
  while (cur != target && r.path.size() < maxHops) {
    const geom::Vec2 pc = g_.position(cur);
    graph::NodeId best = -1;
    double bestAngle = 1e18;
    for (graph::NodeId nb : g_.neighbors(cur)) {
      const geom::Vec2 pn = g_.position(nb);
      const double ang = std::abs(geom::signedTurnAngle(pc + (pc - pt), pc, pn));
      if (ang < bestAngle) {
        bestAngle = ang;
        best = nb;
      }
    }
    if (best < 0) break;
    if (visited.contains(best)) break;  // loop detected: compass fails here
    visited.insert(best);
    r.path.push_back(best);
    cur = best;
  }
  r.delivered = cur == target;
  return r;
}

namespace {

// Walks the ring of `hole` starting at `from` in one direction, appending
// nodes until one is strictly closer to `targetPos` than `escapeD`, or the
// ring is exhausted. Returns true on escape.
bool walkRing(const holes::Hole& hole, const graph::GeometricGraph& g,
              graph::NodeId from, geom::Vec2 targetPos, double escapeD,
              bool forward, std::vector<graph::NodeId>* out) {
  const auto& ring = hole.ring;
  const auto it = std::find(ring.begin(), ring.end(), from);
  if (it == ring.end()) return false;
  const std::size_t n = ring.size();
  std::size_t idx = static_cast<std::size_t>(it - ring.begin());
  for (std::size_t step = 1; step < n; ++step) {
    idx = forward ? (idx + 1) % n : (idx + n - 1) % n;
    out->push_back(ring[idx]);
    if (geom::dist(g.position(ring[idx]), targetPos) < escapeD) return true;
  }
  return false;
}

}  // namespace

RouteResult FaceGreedyRouter::route(graph::NodeId source, graph::NodeId target) const {
  RouteResult r;
  r.path.push_back(source);
  const geom::Vec2 pt = g_.position(target);
  const std::size_t maxHops = 16 * g_.numNodes() + 64;
  graph::NodeId cur = source;

  while (cur != target && r.path.size() < maxHops) {
    // Greedy phase.
    const double dCur = geom::dist(g_.position(cur), pt);
    graph::NodeId best = -1;
    double bestD = dCur;
    for (graph::NodeId nb : g_.neighbors(cur)) {
      const double d = geom::dist(g_.position(nb), pt);
      if (d < bestD) {
        bestD = d;
        best = nb;
      }
    }
    if (best >= 0) {
      r.path.push_back(best);
      cur = best;
      continue;
    }

    // Recovery phase: identify the blocking hole via the corridor walk,
    // then follow its boundary until strictly closer than the stuck node.
    int blocked = -1;
    std::vector<graph::NodeId> probe{cur};
    const bool done = chew_.extend(probe, target, &blocked);
    // Adopt the corridor hops (they are real ad hoc hops).
    r.path.insert(r.path.end(), probe.begin() + 1, probe.end());
    cur = r.path.back();
    if (done) break;
    if (blocked < 0) break;  // outer face or numeric dead end: undelivered

    const holes::Hole& hole = analysis_.holes[static_cast<std::size_t>(blocked)];
    const double escapeD = geom::dist(g_.position(cur), pt);
    std::vector<graph::NodeId> fwd;
    std::vector<graph::NodeId> bwd;
    const bool okF = walkRing(hole, g_, cur, pt, escapeD, true, &fwd);
    const bool okB = walkRing(hole, g_, cur, pt, escapeD, false, &bwd);
    const std::vector<graph::NodeId>* pick = nullptr;
    if (okF && (!okB || fwd.size() <= bwd.size())) {
      pick = &fwd;
    } else if (okB) {
      pick = &bwd;
    }
    if (pick == nullptr) break;  // no escape around this hole: undelivered
    r.path.insert(r.path.end(), pick->begin(), pick->end());
    cur = r.path.back();
  }
  r.delivered = cur == target;
  return r;
}

}  // namespace hybrid::routing
