#pragma once

#include "routing/chew.hpp"
#include "routing/router.hpp"

namespace hybrid::routing {

/// Pure greedy geographic routing: always forward to the neighbor strictly
/// closer to the target; fails in a local minimum at a radio hole. The
/// canonical baseline whose failures motivate the paper.
class GreedyRouter : public Router {
 public:
  explicit GreedyRouter(const graph::GeometricGraph& g) : g_(g) {}
  RouteResult route(graph::NodeId source, graph::NodeId target) const override;
  std::string name() const override { return "greedy"; }

 private:
  const graph::GeometricGraph& g_;
};

/// Compass routing: forward to the neighbor whose direction is angularly
/// closest to the target direction; fails on revisiting a node (it can
/// loop on graphs with holes).
class CompassRouter : public Router {
 public:
  explicit CompassRouter(const graph::GeometricGraph& g) : g_(g) {}
  RouteResult route(graph::NodeId source, graph::NodeId target) const override;
  std::string name() const override { return "compass"; }

 private:
  const graph::GeometricGraph& g_;
};

/// Greedy-Face-Greedy style local routing (the GOAFR family, paper §1.4):
/// greedy until stuck, then walk around the blocking hole's boundary until
/// strictly closer to the target than the stuck node, then resume greedy.
/// Guaranteed delivery on our planar instances; its detours around large /
/// maze-shaped holes exhibit the lower-bound behaviour the paper cites.
class FaceGreedyRouter : public Router {
 public:
  FaceGreedyRouter(const graph::GeometricGraph& g, const PlanarSubdivision& sub,
                   const holes::HoleAnalysis& analysis)
      : g_(g), chew_(g, sub), analysis_(analysis) {}
  RouteResult route(graph::NodeId source, graph::NodeId target) const override;
  std::string name() const override { return "face-greedy"; }

 private:
  const graph::GeometricGraph& g_;
  ChewRouter chew_;
  const holes::HoleAnalysis& analysis_;
};

}  // namespace hybrid::routing
