#include "routing/chew.hpp"

#include <algorithm>
#include <cmath>

#include "geom/predicates.hpp"
#include "geom/segment.hpp"

namespace hybrid::routing {

namespace {

// Parameter of point p along the segment (a, b), 0 at a and 1 at b.
double paramAlong(geom::Vec2 a, geom::Vec2 b, geom::Vec2 p) {
  const geom::Vec2 d = b - a;
  const double len2 = d.norm2();
  return len2 == 0.0 ? 0.0 : (p - a).dot(d) / len2;
}

}  // namespace

bool ChewRouter::extend(std::vector<graph::NodeId>& path, graph::NodeId target,
                        int* blockedHole) const {
  if (blockedHole != nullptr) *blockedHole = -1;
  if (path.empty()) return false;
  const std::size_t maxSteps = 8 * sub_.faces().size() + 64;

  for (std::size_t outer = 0; outer < maxSteps; ++outer) {
    graph::NodeId cur = path.back();
    if (cur == target) return true;
    if (g_.hasEdge(cur, target)) {
      path.push_back(target);
      return true;
    }

    const geom::Vec2 ps = g_.position(cur);
    const geom::Vec2 pt = g_.position(target);
    const double segLen = geom::dist(ps, pt);
    const geom::Vec2 dir = (pt - ps) / segLen;

    // A neighbor lying exactly on the segment ahead is always the right
    // hop (and the probe below would fall on that collinear edge, where
    // strict face containment fails). Pick the nearest one.
    {
      graph::NodeId onSeg = -1;
      double bestParam = 2.0;
      for (graph::NodeId nb : g_.neighbors(cur)) {
        const geom::Vec2 pn = g_.position(nb);
        if (!geom::onSegment(ps, pt, pn)) continue;
        const double param = paramAlong(ps, pt, pn);
        if (param > 1e-15 && param < bestParam) {
          bestParam = param;
          onSeg = nb;
        }
      }
      if (onSeg >= 0) {
        path.push_back(onSeg);
        continue;
      }
    }

    const geom::Vec2 probe = ps + dir * std::min(1e-6, segLen / 2.0);
    int face = sub_.incidentFaceContaining(cur, probe);
    if (face < 0) return false;  // outside the hull of V or degenerate
    if (!sub_.isWalkable(face)) {
      if (blockedHole != nullptr) *blockedHole = sub_.holeOfFace(face);
      return false;
    }

    // Triangle corridor walk along the fixed segment (ps, pt).
    std::pair<graph::NodeId, graph::NodeId> prevEdge{-1, -1};
    double entryParam = 0.0;
    bool restart = false;
    for (std::size_t inner = 0; inner < maxSteps; ++inner) {
      const auto& cycle = sub_.faces()[static_cast<std::size_t>(face)].cycle;

      // Target is a corner of the current triangle: final hop.
      if (std::find(cycle.begin(), cycle.end(), target) != cycle.end()) {
        path.push_back(target);
        return true;
      }
      // Segment passes exactly through a corner: hop there and restart the
      // walk from that node (measure-zero in random instances, but exact).
      bool hopped = false;
      for (graph::NodeId v : cycle) {
        if (v == cur) continue;
        if (geom::onSegment(ps, pt, g_.position(v)) &&
            paramAlong(ps, pt, g_.position(v)) > entryParam + 1e-12) {
          path.push_back(v);
          restart = true;
          hopped = true;
          break;
        }
      }
      if (hopped) break;

      // Exit edge: the boundary edge properly crossed by (ps, pt) beyond
      // the entry parameter.
      int exitA = -1;
      int exitB = -1;
      double exitParam = 0.0;
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        const graph::NodeId a = cycle[i];
        const graph::NodeId b = cycle[(i + 1) % cycle.size()];
        if ((a == prevEdge.first && b == prevEdge.second) ||
            (a == prevEdge.second && b == prevEdge.first)) {
          continue;
        }
        const geom::Segment e{g_.position(a), g_.position(b)};
        if (!geom::segmentsCrossProperly({ps, pt}, e)) continue;
        const auto ip = geom::segmentIntersectionPoint({ps, pt}, e);
        if (!ip) continue;
        const double tp = paramAlong(ps, pt, *ip);
        if (tp <= entryParam - 1e-12) continue;
        if (exitA < 0 || tp < exitParam) {
          exitA = a;
          exitB = b;
          exitParam = tp;
        }
      }
      if (exitA < 0) return false;  // numerical corner case; caller falls back

      // Keep the message on the crossed edge: hop to one of its endpoints
      // if not already there (all corners of a triangle are adjacent).
      if (cur != exitA && cur != exitB) {
        const graph::NodeId next =
            geom::dist(g_.position(exitA), pt) <= geom::dist(g_.position(exitB), pt)
                ? exitA
                : exitB;
        path.push_back(next);
        cur = next;
      }

      const int fLeft = sub_.faceLeftOf(exitA, exitB);
      const int fRight = sub_.faceLeftOf(exitB, exitA);
      const int nextFace = (fLeft == face) ? fRight : fLeft;
      if (nextFace < 0 || sub_.isOuterFace(nextFace)) {
        return false;  // corridor leaves the hull of V
      }
      if (!sub_.isWalkable(nextFace)) {
        if (blockedHole != nullptr) *blockedHole = sub_.holeOfFace(nextFace);
        return false;  // cur sits on the hole boundary edge (exitA, exitB)
      }
      prevEdge = {exitA, exitB};
      entryParam = exitParam;
      face = nextFace;
    }
    if (!restart) return false;
  }
  return false;
}

RouteResult ChewRouter::route(graph::NodeId source, graph::NodeId target) const {
  RouteResult r;
  r.path.push_back(source);
  r.delivered = extend(r.path, target, &r.blockedHole);
  return r;
}

}  // namespace hybrid::routing
