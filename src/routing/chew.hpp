#pragma once

#include "routing/router.hpp"
#include "routing/subdivision.hpp"

namespace hybrid::routing {

/// Chew-style corridor routing on the 2-localized Delaunay graph.
///
/// The message walks the sequence of triangles stabbed by the segment from
/// the current node to the target, hopping along triangle vertices so that
/// it always sits on the most recently crossed edge (the online strategy
/// analyzed by Bose et al. / Bonichon et al.; paper Theorems 2.10/2.11).
/// When the corridor runs into a radio hole the walk stops on the hole
/// boundary and reports the hole index in RouteResult::blockedHole — that
/// is exactly the hand-off point of the paper's routing protocol.
class ChewRouter : public Router {
 public:
  ChewRouter(const graph::GeometricGraph& ldel, const PlanarSubdivision& sub)
      : g_(ldel), sub_(sub) {}

  RouteResult route(graph::NodeId source, graph::NodeId target) const override;
  std::string name() const override { return "chew"; }

  /// Routes toward the target and appends hops to an existing path whose
  /// back() is the current node. Returns true when the target was reached.
  bool extend(std::vector<graph::NodeId>& path, graph::NodeId target,
              int* blockedHole) const;

 private:
  const graph::GeometricGraph& g_;
  const PlanarSubdivision& sub_;
};

}  // namespace hybrid::routing
