#include "routing/goafr.hpp"

#include <algorithm>

namespace hybrid::routing {

namespace {

// Greedy step: strictly closer neighbor, or -1 at a local minimum.
graph::NodeId greedyStep(const graph::GeometricGraph& g, graph::NodeId cur,
                         geom::Vec2 pt) {
  const double dCur = geom::dist(g.position(cur), pt);
  graph::NodeId best = -1;
  double bestD = dCur;
  for (graph::NodeId nb : g.neighbors(cur)) {
    const double d = geom::dist(g.position(nb), pt);
    if (d < bestD) {
      bestD = d;
      best = nb;
    }
  }
  return best;
}

}  // namespace

graph::NodeId GoafrRouter::facePhase(std::vector<graph::NodeId>& path, graph::NodeId u,
                                     graph::NodeId target) const {
  const geom::Vec2 pt = g_.position(target);
  const double dU = geom::dist(g_.position(u), pt);
  double r = opt_.rho0 * dU;
  const std::size_t maxSteps = 4 * g_.numEdges() + 16;

  for (int growth = 0; growth < opt_.maxCircleGrowths; ++growth) {
    for (const bool cwSweep : {true, false}) {
      graph::NodeId prev = u;
      graph::NodeId cur = cwSweep ? rot_.firstCw(u, pt) : rot_.firstCcw(u, pt);
      if (cur < 0) continue;
      const graph::NodeId firstEdgeTo = cur;
      std::vector<graph::NodeId> walk;
      bool hitCircle = false;
      for (std::size_t steps = 0; steps < maxSteps; ++steps) {
        if (geom::dist(g_.position(cur), pt) > r) {
          hitCircle = true;
          break;
        }
        walk.push_back(cur);
        if (cur == target || geom::dist(g_.position(cur), pt) < dU) {
          // Success: commit the exploration and resume greedy from here.
          path.insert(path.end(), walk.begin(), walk.end());
          return cur;
        }
        // Stay on the face the ray u->t enters: entering it over the
        // clockwise-first edge walks it with the face-left rule (nextCw of
        // the reverse edge), the counter-clockwise entry mirrors it.
        const graph::NodeId next =
            cwSweep ? rot_.nextCw(cur, prev) : rot_.nextCcw(cur, prev);
        if (next < 0) break;
        prev = cur;
        cur = next;
        if (prev == u && cur == firstEdgeTo) break;  // full face loop
        if (cur == u && walk.size() + 1 >= g_.numNodes()) break;
      }
      // Abandoned: the message physically walks back to u (GOAFR pays for
      // its exploration).
      if (!walk.empty()) {
        path.insert(path.end(), walk.begin(), walk.end());
        walk.pop_back();
        std::reverse(walk.begin(), walk.end());
        path.insert(path.end(), walk.begin(), walk.end());
        path.push_back(u);
      }
      if (!hitCircle && !cwSweep) {
        // Both directions completed a full loop without finding progress:
        // the target is separated from u by this face. Give up.
        return -1;
      }
    }
    r *= opt_.rho;  // both directions hit the circle: enlarge and retry
  }
  return -1;
}

RouteResult GoafrRouter::route(graph::NodeId source, graph::NodeId target) const {
  RouteResult result;
  result.path.push_back(source);
  const geom::Vec2 pt = g_.position(target);
  graph::NodeId cur = source;
  const std::size_t maxHops = 64 * g_.numNodes() + 64;

  while (cur != target && result.path.size() < maxHops) {
    const graph::NodeId next = greedyStep(g_, cur, pt);
    if (next >= 0) {
      result.path.push_back(next);
      cur = next;
      continue;
    }
    const graph::NodeId resumed = facePhase(result.path, cur, target);
    if (resumed < 0 || resumed == cur) break;
    cur = resumed;
  }
  result.delivered = cur == target;
  return result;
}

}  // namespace hybrid::routing
