#pragma once

#include "graph/rotation.hpp"
#include "routing/router.hpp"

namespace hybrid::routing {

/// GOAFR+-style routing (Kuhn, Wattenhofer, Zollinger; the paper's §1.4
/// worst-case-optimal local baseline): greedy until a local minimum, then
/// face traversal (right/left-hand rule on the planar graph) bounded by a
/// circle centered at the target. The circle starts at `rho0 * |ut|` and
/// doubles whenever both traversal directions hit it, which is what makes
/// the strategy O(rho^2)-competitive instead of unbounded.
struct GoafrOptions {
  double rho0 = 1.4;       ///< Initial bounding-circle factor.
  double rho = 2.0;        ///< Circle growth factor on double-hit.
  int maxCircleGrowths = 24;
};

class GoafrRouter : public Router {
 public:
  GoafrRouter(const graph::GeometricGraph& planar, GoafrOptions options = {})
      : g_(planar), rot_(planar), opt_(options) {}

  RouteResult route(graph::NodeId source, graph::NodeId target) const override;
  std::string name() const override { return "goafr+"; }

 private:
  /// One face-routing phase from the local minimum `u`. Appends hops,
  /// returns the node from which greedy resumes (closer to target than u),
  /// or -1 if the target is unreachable within the growth budget.
  graph::NodeId facePhase(std::vector<graph::NodeId>& path, graph::NodeId u,
                          graph::NodeId target) const;

  const graph::GeometricGraph& g_;
  graph::RotationSystem rot_;
  GoafrOptions opt_;
};

}  // namespace hybrid::routing
