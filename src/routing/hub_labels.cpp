#include "routing/hub_labels.hpp"

#include <algorithm>
#include <atomic>

#include "graph/dijkstra_workspace.hpp"
#include "util/parallel.hpp"

namespace hybrid::routing {

namespace {

/// Deterministic id mixer for rank tie-breaks. Equal-degree sites are
/// common (rings, grids); breaking ties by raw id makes ranks monotone
/// along the embedding and labels degenerate to Θ(h) on ring-like graphs,
/// while a hashed order behaves like a random rank permutation (expected
/// O(log h) labels on paths/cycles).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void HubLabelOracle::build(const graph::CsrAdjacency& g, unsigned threads) {
  const std::size_t h = g.numNodes();
  offsets_.assign(h + 1, 0);
  entries_.clear();
  rank_.assign(h, 0);
  maxLabel_ = 0;
  relaxations_ = 0;
  heapPops_ = 0;
  if (h == 0) return;

  // Centrality order: degree descending, hashed-id tie-break.
  std::vector<std::int32_t> order(h);
  for (std::size_t i = 0; i < h; ++i) order[i] = static_cast<std::int32_t>(i);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const auto da = g.neighbors(a).size();
    const auto db = g.neighbors(b).size();
    if (da != db) return da > db;
    const std::uint64_t ha = splitmix64(static_cast<std::uint64_t>(a));
    const std::uint64_t hb = splitmix64(static_cast<std::uint64_t>(b));
    if (ha != hb) return ha < hb;
    return a < b;
  });
  for (std::size_t k = 0; k < h; ++k) {
    rank_[static_cast<std::size_t>(order[k])] = static_cast<std::uint32_t>(k);
  }

  // One rank-pruned Dijkstra per hub; each search emits entries into its
  // task's private buffer (hubs scatter entries across *other* sites'
  // labels, so per-site output cannot be written in place in parallel).
  struct Rec {
    std::int32_t site;
    std::int32_t hub;
    std::int32_t pred;
    double dist;
  };
  threads = std::max(1u, threads);
  const util::ChunkPlan plan = util::planChunks(h, threads, 1);
  std::vector<std::vector<Rec>> perTask(plan.tasks);
  std::atomic<std::uint64_t> relax{0};
  std::atomic<std::uint64_t> pops{0};
  util::parallelTasks(h, threads, 1, [&](std::size_t begin, std::size_t end, unsigned task) {
    graph::DijkstraWorkspace ws;
    auto& out = perTask[task];
    for (std::size_t k = begin; k < end; ++k) {
      const auto w = static_cast<graph::NodeId>(k);
      ws.runRankPruned(g, w, rank_);
      const std::uint32_t rw = rank_[k];
      for (std::size_t v = 0; v < h; ++v) {
        // Settled nodes at least as peripheral as the hub get an entry;
        // pruned (more central) nodes never relax, so they are neither
        // owners nor tree parents here.
        if (rank_[v] < rw) continue;
        const double d = ws.dist(static_cast<graph::NodeId>(v));
        if (d == graph::DijkstraWorkspace::kUnreached) continue;
        out.push_back({static_cast<std::int32_t>(v), static_cast<std::int32_t>(k),
                       ws.pred(static_cast<graph::NodeId>(v)), d});
      }
    }
    relax.fetch_add(ws.relaxations(), std::memory_order_relaxed);
    pops.fetch_add(ws.heapPops(), std::memory_order_relaxed);
  });
  relaxations_ = relax.load(std::memory_order_relaxed);
  heapPops_ = pops.load(std::memory_order_relaxed);

  // Flatten into the (site, hub)-sorted slab. The key is unique per
  // entry, so the sort result does not depend on chunk boundaries and the
  // build is byte-identical at any thread count.
  std::size_t total = 0;
  for (const auto& b : perTask) total += b.size();
  std::vector<Rec> all;
  all.reserve(total);
  for (auto& b : perTask) {
    all.insert(all.end(), b.begin(), b.end());
    b.clear();
    b.shrink_to_fit();
  }
  std::sort(all.begin(), all.end(), [](const Rec& a, const Rec& b) {
    return a.site != b.site ? a.site < b.site : a.hub < b.hub;
  });

  entries_.reserve(all.size());
  for (const Rec& r : all) {
    ++offsets_[static_cast<std::size_t>(r.site) + 1];
    entries_.push_back({r.hub, r.pred, r.dist});
  }
  for (std::size_t u = 0; u < h; ++u) {
    maxLabel_ = std::max(maxLabel_, static_cast<std::size_t>(offsets_[u + 1]));
    offsets_[u + 1] += offsets_[u];
  }
}

void HubLabelOracle::distanceMany(int s, std::span<const int> targets, MergeWorkspace& ws,
                                  std::span<double> out) const {
  const std::size_t h = numSites();
  if (ws.stamp_.size() < h) {
    ws.hubDist_.resize(h);
    ws.stamp_.resize(h, 0);
  }
  ++ws.gen_;
  if (ws.gen_ == 0) {  // stamp wrap-around: re-zero and restart
    std::fill(ws.stamp_.begin(), ws.stamp_.end(), 0);
    ws.gen_ = 1;
  }
  for (const Entry& e : label(s)) {
    const auto w = static_cast<std::size_t>(e.hub);
    ws.stamp_[w] = ws.gen_;
    ws.hubDist_[w] = e.dist;  // labels hold one entry per hub: no min needed
  }
  for (std::size_t k = 0; k < targets.size(); ++k) {
    double best = std::numeric_limits<double>::infinity();
    for (const Entry& e : label(targets[k])) {
      const auto w = static_cast<std::size_t>(e.hub);
      if (ws.stamp_[w] != ws.gen_) continue;
      const double c = ws.hubDist_[w] + e.dist;
      if (c < best) best = c;
    }
    out[k] = best;
  }
}

const HubLabelOracle::Entry* HubLabelOracle::findEntry(int u, std::int32_t hub) const {
  const auto l = label(u);
  const auto it = std::lower_bound(
      l.begin(), l.end(), hub, [](const Entry& e, std::int32_t x) { return e.hub < x; });
  if (it == l.end() || it->hub != hub) return nullptr;
  return &*it;
}

bool HubLabelOracle::meet(int s, int t, const Entry** es, const Entry** et) const {
  const auto ls = label(s);
  const auto lt = label(t);
  double best = std::numeric_limits<double>::infinity();
  *es = nullptr;
  *et = nullptr;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ls.size() && j < lt.size()) {
    const std::int32_t hs = ls[i].hub;
    const std::int32_t ht = lt[j].hub;
    if (hs < ht) {
      ++i;
    } else if (ht < hs) {
      ++j;
    } else {
      const double c = ls[i].dist + lt[j].dist;
      if (c < best) {
        best = c;
        *es = &ls[i];
        *et = &lt[j];
      }
      ++i;
      ++j;
    }
  }
  return *es != nullptr;
}

bool HubLabelOracle::path(int s, int t, std::vector<int>& out) const {
  const std::size_t before = out.size();
  if (s == t) {
    out.push_back(s);
    return true;
  }
  const Entry* es = nullptr;
  const Entry* et = nullptr;
  if (!meet(s, t, &es, &et)) return false;
  const std::int32_t w = es->hub;
  // Both legs follow the hub's shortest-path tree: each pred is the tree
  // parent toward w, and tree ancestors hold entries for w too, so the
  // walk is a chain of label lookups. The hop guard turns label
  // corruption into a clean failure instead of an endless loop.
  std::size_t guard = 2 * numSites() + 4;
  int v = s;
  const Entry* e = es;
  while (true) {  // emit s .. w in order
    out.push_back(v);
    if (v == w) break;
    v = e->pred;
    if (v < 0 || --guard == 0) {
      out.resize(before);
      return false;
    }
    if (v != w) {
      e = findEntry(v, w);
      if (e == nullptr) {
        out.resize(before);
        return false;
      }
    }
  }
  const std::size_t mid = out.size();
  v = t;
  e = et;
  while (v != w) {  // emit t .. (w-exclusive), then reverse in place
    out.push_back(v);
    v = e->pred;
    if (v < 0 || --guard == 0) {
      out.resize(before);
      return false;
    }
    if (v != w) {
      e = findEntry(v, w);
      if (e == nullptr) {
        out.resize(before);
        return false;
      }
    }
  }
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(mid), out.end());
  return true;
}

HubLabelOracle::DroppedHub HubLabelOracle::corruptDropHubForTest(int startSite) {
  const int h = static_cast<int>(numSites());
  for (int k = 0; k < h; ++k) {
    const int u = (startSite + k) % h;
    const auto b = offsets_[static_cast<std::size_t>(u)];
    const auto e = offsets_[static_cast<std::size_t>(u) + 1];
    for (std::int64_t i = e - 1; i >= b; --i) {
      if (entries_[static_cast<std::size_t>(i)].hub == u) continue;  // keep self entry
      const DroppedHub dropped{u, entries_[static_cast<std::size_t>(i)].hub};
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      for (std::size_t o = static_cast<std::size_t>(u) + 1; o < offsets_.size(); ++o) {
        --offsets_[o];
      }
      return dropped;
    }
  }
  return {};
}

}  // namespace hybrid::routing
