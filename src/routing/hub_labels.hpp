#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace hybrid::routing {

/// Pruned hub-label distance oracle over a CSR site graph.
///
/// Replaces the dense h×h site-pair table for large overlays: instead of
/// O(h^2) distances, every site u keeps a sorted label L(u) of
/// (hub, dist, pred) entries such that for any pair (s, t) some hub on a
/// shortest s-t path appears in both labels — so
/// d(s, t) = min over common hubs of d(s, w) + d(w, t), computed by one
/// O(|L(s)| + |L(t)|) sorted merge.
///
/// Build: sites are ranked by centrality (degree descending; ties broken
/// by a deterministic hash of the id so grid/ring graphs do not degenerate
/// into monotone rank runs with Θ(h) labels). For each hub w a rank-pruned
/// Dijkstra (DijkstraWorkspace::runRankPruned) stops expanding at any node
/// more central than w; every settled node v then receives the entry
/// (hub=w, dist, pred=v's tree parent toward w). Cover property: the most
/// central node w* on a shortest s-t path is never pruned from its own
/// search along that path, so both s and t hold exact entries for w*.
/// Entries whose shortest path would cross a more central node may store a
/// longer (pruned-subgraph) path length — never an underestimate — so the
/// merge minimum stays exact while such entries lose ties.
///
/// Determinism: per-hub searches are independent and the flat slab is
/// ordered by (site, hub) — a total order independent of chunk boundaries
/// — so the build is byte-identical at any thread count.
class HubLabelOracle {
 public:
  /// One label entry of its owner site. 16 bytes; labels are sorted by hub.
  struct Entry {
    std::int32_t hub;   ///< Hub site id.
    std::int32_t pred;  ///< Owner's neighbor toward the hub (-1 on the self entry).
    double dist;        ///< Shortest owner<->hub distance (pruned-tree path length).

    bool operator==(const Entry&) const = default;
  };

  /// (Re)builds the labels for `g`. Byte-identical at any `threads`.
  void build(const graph::CsrAdjacency& g, unsigned threads);

  bool built() const { return !offsets_.empty(); }
  std::size_t numSites() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  std::span<const Entry> label(int u) const {
    const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u)]);
    const auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u) + 1]);
    return {entries_.data() + b, e - b};
  }

  /// Shortest s-t distance by sorted label merge; +inf when no common hub
  /// (disconnected sites).
  double distance(int s, int t) const {
    const auto ls = label(s);
    const auto lt = label(t);
    double best = std::numeric_limits<double>::infinity();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ls.size() && j < lt.size()) {
      const std::int32_t hs = ls[i].hub;
      const std::int32_t ht = lt[j].hub;
      if (hs < ht) {
        ++i;
      } else if (ht < hs) {
        ++j;
      } else {
        const double c = ls[i].dist + lt[j].dist;
        if (c < best) best = c;
        ++i;
        ++j;
      }
    }
    return best;
  }

  /// Appends the site path s..t (inclusive) realizing distance(s, t) by
  /// walking pred pointers toward the best common hub; every step's hub
  /// entry exists by construction (tree ancestors share the hub). Returns
  /// false when disconnected or the labels are corrupt (`out` unchanged).
  bool path(int s, int t, std::vector<int>& out) const;

  /// Reusable scratch for distanceMany(): per-hub buckets, generation
  /// stamped so a batch never pays an O(numSites) clear. One workspace
  /// must not be shared between concurrent batches.
  class MergeWorkspace {
   private:
    friend class HubLabelOracle;
    std::vector<double> hubDist_;
    std::vector<std::uint64_t> stamp_;
    std::uint64_t gen_ = 0;
  };

  /// One-source many-targets distances: d(s, targets[k]) into out[k].
  /// Stamps s's label into per-hub buckets once, then completes each
  /// target label against the buckets — O(|L(s)| + sum |L(t)|) for the
  /// whole batch instead of one full two-pointer merge per pair.
  /// Each value equals distance(s, targets[k]) exactly (same candidate
  /// set, and min over doubles is order-independent). Alloc-free once the
  /// workspace has grown to numSites().
  void distanceMany(int s, std::span<const int> targets, MergeWorkspace& ws,
                    std::span<double> out) const;

  // --- Stats (obs gauges, benches). ---
  std::size_t numEntries() const { return entries_.size(); }
  std::size_t labelBytes() const {
    return entries_.size() * sizeof(Entry) + offsets_.size() * sizeof(offsets_[0]);
  }
  std::size_t maxLabelSize() const { return maxLabel_; }
  /// Rank position per site (0 = most central); the pruning order.
  const std::vector<std::uint32_t>& ranks() const { return rank_; }
  /// Edge relaxations / heap pops summed over the build's pruned searches
  /// (observability only; zero when obs is compiled out).
  std::uint64_t buildRelaxations() const { return relaxations_; }
  std::uint64_t buildHeapPops() const { return heapPops_; }

  // --- Exact-equality introspection (thread-invariance tests). ---
  const std::vector<Entry>& entries() const { return entries_; }
  const std::vector<std::int64_t>& offsets() const { return offsets_; }

  /// Test-only corruption hook for the injected drop-label-hub bug: starting
  /// at `startSite` (wrapping), removes one non-self entry from the first
  /// label that has one, so some pair's merge loses its covering hub.
  struct DroppedHub {
    int site = -1;
    int hub = -1;
  };
  DroppedHub corruptDropHubForTest(int startSite);

 private:
  const Entry* findEntry(int u, std::int32_t hub) const;
  /// Best common hub of (s, t) with its two entries; nullptr entries when
  /// there is none. Ties resolve to the lowest hub id (strict < merge).
  bool meet(int s, int t, const Entry** es, const Entry** et) const;

  std::vector<std::int64_t> offsets_;  ///< size numSites()+1, into entries_.
  std::vector<Entry> entries_;         ///< Flat slab, (site, hub)-sorted.
  std::vector<std::uint32_t> rank_;
  std::size_t maxLabel_ = 0;
  std::uint64_t relaxations_ = 0;
  std::uint64_t heapPops_ = 0;
};

}  // namespace hybrid::routing
