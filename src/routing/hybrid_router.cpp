#include "routing/hybrid_router.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "abstraction/bbox_overlay.hpp"
#include "geom/segment.hpp"
#include "graph/shortest_path.hpp"
#include "obs/metrics.hpp"

namespace hybrid::routing {

namespace {

// Set HYBRID_ROUTER_DEBUG=1 to trace waypoint decisions on stderr.
bool debugEnabled() {
  static const bool on = std::getenv("HYBRID_ROUTER_DEBUG") != nullptr;
  return on;
}

// Index of `v` in `ring`, or -1.
int indexIn(const std::vector<graph::NodeId>& ring, graph::NodeId v) {
  const auto it = std::find(ring.begin(), ring.end(), v);
  return it == ring.end() ? -1 : static_cast<int>(it - ring.begin());
}

}  // namespace

OverlayPlan HybridRouter::planOverlay(
    const graph::GeometricGraph& ldel, const holes::HoleAnalysis& analysis,
    const std::vector<abstraction::HoleAbstraction>& abstractions,
    const HybridOptions& options) {
  OverlayPlan plan;
  plan.sites = options.sites;
  plan.edges = options.edges;
  plan.table = options.table;
  // Resolve the abstraction mode: Auto keeps the paper's convex hulls
  // while they are pairwise disjoint and switches to the bounding-box
  // overlay (which merges boxes to disjointness) when hulls interlock —
  // the scenarios the hull router can only serve via A* fallback.
  bool wantBBox = options.abstraction == AbstractionMode::BBox;
  if (options.abstraction == AbstractionMode::Auto && !wantBBox) {
    const auto groups = abstraction::mergeIntersectingHulls(ldel, abstractions);
    for (const auto& g : groups) {
      if (g.members.size() > 1) {
        wantBBox = true;
        break;
      }
    }
  }
  if (wantBBox) {
    plan.bbox = true;
    const auto groups = abstraction::buildBBoxOverlay(ldel, analysis, abstractions);
    for (const auto& grp : groups) {
      for (const auto& hs : grp.holeSites) {
        if (!hs.sites.empty()) plan.rings.push_back(hs.sites);
      }
    }
  } else if (options.mergeIntersectingHulls && options.sites == SiteMode::HullNodes) {
    plan.merged = true;
    const auto groups = abstraction::mergeIntersectingHulls(ldel, abstractions);
    plan.rings.reserve(groups.size());
    for (const auto& g : groups) plan.rings.push_back(g.hullNodes);
  } else if (options.sites != SiteMode::AllHoleNodes) {
    for (const auto& a : abstractions) {
      switch (options.sites) {
        case SiteMode::LocallyConvexHull:
          plan.rings.push_back(a.locallyConvexHull);
          break;
        case SiteMode::SimplifiedBoundary:
          plan.rings.push_back(a.simplifiedBoundary);
          break;
        default:
          plan.rings.push_back(a.hullNodes);
          break;
      }
    }
  } else {
    for (const auto& h : analysis.holes) plan.rings.push_back(h.ring);
  }
  for (const auto& ring : plan.rings) {
    for (const graph::NodeId v : ring) plan.ringPositions.push_back(ldel.position(v));
  }
  for (const auto& poly : analysis.holePolygons()) plan.holePolygons.push_back(poly.vertices());
  return plan;
}

HybridRouter::HybridRouter(const graph::GeometricGraph& ldel,
                           const holes::HoleAnalysis& analysis,
                           const std::vector<abstraction::HoleAbstraction>& abstractions,
                           const PlanarSubdivision& sub, HybridOptions options,
                           const HybridRouter* overlayDonor)
    : g_(ldel),
      analysis_(analysis),
      abstractions_(abstractions),
      chew_(ldel, sub),
      overlayPlan_(planOverlay(ldel, analysis, abstractions, options)),
      opt_(options) {
  usesBBox_ = overlayPlan_.bbox;
  if (overlayDonor != nullptr && overlayDonor->overlay_ != nullptr &&
      overlayDonor->overlayPlan_ == overlayPlan_) {
    // Epoch-snapshot fast path: the donor's overlay was built from inputs
    // byte-identical to this plan, and overlay builds are deterministic,
    // so a fresh build would reproduce it bit for bit — adopt the slab.
    overlay_ = overlayDonor->overlay_;
    adoptedOverlay_ = true;
  } else if (overlayPlan_.bbox) {
    // Bbox sites are a sparse subset of each hole ring; consecutive sites
    // are reachable along the ring even when the straight chord crosses
    // the hole, so the backbone is declared ring-walkable.
    overlay_ =
        std::make_shared<const OverlayGraph>(ldel, overlayPlan_.rings, analysis.holePolygons(),
                                             opt_.edges, opt_.table, /*ringBackbone=*/true);
  } else if (overlayPlan_.merged) {
    overlay_ = std::make_shared<const OverlayGraph>(ldel, overlayPlan_.rings,
                                                    analysis.holePolygons(), opt_.edges,
                                                    opt_.table);
  } else {
    overlay_ = std::make_shared<const OverlayGraph>(ldel, analysis, abstractions, opt_.sites,
                                                    opt_.edges, opt_.table);
  }

  isHullNode_.assign(g_.numNodes(), 0);
  holeToAbstraction_.assign(analysis.holes.size(), -1);
  bayPolys_.resize(abstractions.size());
  for (std::size_t ai = 0; ai < abstractions.size(); ++ai) {
    const auto& a = abstractions[ai];
    if (a.holeIndex >= 0) holeToAbstraction_[static_cast<std::size_t>(a.holeIndex)] =
        static_cast<int>(ai);
    // Bbox mode routes purely outside (boxes have no bays); its sites are
    // marked from the overlay below, so the ring walk targets bbox sites.
    if (usesBBox_) continue;
    // Mark the abstraction nodes that double as overlay sites; the hole
    // node that intercepts a message walks the ring to the nearest one.
    const auto& siteRing = opt_.sites == SiteMode::LocallyConvexHull
                               ? a.locallyConvexHull
                               : (opt_.sites == SiteMode::SimplifiedBoundary
                                      ? a.simplifiedBoundary
                                      : a.hullNodes);
    for (graph::NodeId v : siteRing) isHullNode_[static_cast<std::size_t>(v)] = 1;
    for (const auto& bay : a.bays) {
      bayDS_.push_back(abstraction::pathDominatingSet(bay.chain));
      std::vector<geom::Vec2> poly;
      poly.push_back(g_.position(bay.hullFrom));
      for (graph::NodeId v : bay.chain) poly.push_back(g_.position(v));
      poly.push_back(g_.position(bay.hullTo));
      bayPolys_[ai].emplace_back(std::move(poly));
    }
  }
  if (usesBBox_) {
    for (const graph::NodeId v : overlay_->sites()) {
      isHullNode_[static_cast<std::size_t>(v)] = 1;
    }
  }
}

std::string HybridRouter::name() const {
  std::string n = "boundary";
  if (opt_.sites == SiteMode::HullNodes) n = "hull";
  if (opt_.sites == SiteMode::LocallyConvexHull) n = "lch";
  if (opt_.sites == SiteMode::SimplifiedBoundary) n = "dp";
  n += opt_.edges == EdgeMode::Delaunay ? "-delaunay" : "-visibility";
  if (usesBBox_) {
    n += "+bbox";
  } else if (opt_.mergeIntersectingHulls) {
    n += "+merged";
  }
  return "hybrid-" + n;
}

std::optional<HybridRouter::BayLocation> HybridRouter::locate(geom::Vec2 p) const {
  for (std::size_t ai = 0; ai < abstractions_.size(); ++ai) {
    const auto& a = abstractions_[ai];
    if (a.hullPolygon.size() < 3 || !a.hullPolygon.contains(p)) continue;
    // Hull corners themselves count as outside (they are overlay sites).
    if (std::find(a.hullPolygon.vertices().begin(), a.hullPolygon.vertices().end(), p) !=
        a.hullPolygon.vertices().end()) {
      continue;
    }
    for (std::size_t bi = 0; bi < bayPolys_[ai].size(); ++bi) {
      if (bayPolys_[ai][bi].contains(p)) {
        return BayLocation{static_cast<int>(ai), static_cast<int>(bi)};
      }
    }
  }
  return std::nullopt;
}

bool HybridRouter::chewOrFallback(std::vector<graph::NodeId>& path, graph::NodeId target,
                                  int* fallbacks) const {
  if (path.back() == target) return true;
  int blocked = -1;
  if (chew_.extend(path, target, &blocked)) return true;
  if (usesBBox_) {
    if (ringWalkBetween(path, target)) return true;
    // Route-around-the-box: a blocked leg resumes after walking the
    // blocking hole's ring toward the target (bounded retries — each
    // rescue must change the frontier node, so the loop cannot cycle
    // for long before falling through to A*).
    for (int rescue = 0; rescue < 16 && blocked >= 0; ++rescue) {
      if (!ringWalkTowards(path, blocked, target)) break;
      blocked = -1;
      if (chew_.extend(path, target, &blocked)) return true;
      if (ringWalkBetween(path, target)) return true;
    }
  }
  if (debugEnabled()) {
    std::fprintf(stderr, "[fallback] leg %d -> %d blocked (hole %d)\n", path.back(),
                 target, blocked);
  }
  const auto sp = graph::astarPath(g_, path.back(), target);
  if (sp.empty()) return false;
  path.insert(path.end(), sp.begin() + 1, sp.end());
  ++(*fallbacks);
  // Abstraction fallbacks (hull intersections, blocked Chew legs) are a
  // different failure class than dense-table capacity refusals
  // (overlay.table.fallbacks); count them separately so experiments can
  // attribute protocol coverage correctly.
  HYBRID_OBS_STMT(if (obs::enabled()) {
    obs::Registry::global().counter("overlay.abstraction.fallbacks").add(1);
  });
  return true;
}

void HybridRouter::ringWalkToHullNode(std::vector<graph::NodeId>& path, int holeIdx) const {
  const int ai = holeToAbstraction_[static_cast<std::size_t>(holeIdx)];
  if (ai < 0) return;
  const auto& ring = analysis_.holes[static_cast<std::size_t>(holeIdx)].ring;
  const graph::NodeId cur = path.back();
  if (isHullNode_[static_cast<std::size_t>(cur)] != 0) return;
  const int start = indexIn(ring, cur);
  if (start < 0) return;

  // Walk both directions along the ring; stop at the nearest hull node.
  const int n = static_cast<int>(ring.size());
  std::vector<graph::NodeId> fwd;
  std::vector<graph::NodeId> bwd;
  for (int step = 1; step < n; ++step) {
    const graph::NodeId f = ring[static_cast<std::size_t>((start + step) % n)];
    fwd.push_back(f);
    if (isHullNode_[static_cast<std::size_t>(f)] != 0) break;
  }
  for (int step = 1; step < n; ++step) {
    const graph::NodeId b = ring[static_cast<std::size_t>((start - step % n + n) % n)];
    bwd.push_back(b);
    if (isHullNode_[static_cast<std::size_t>(b)] != 0) break;
  }
  const bool fwdOk = !fwd.empty() && isHullNode_[static_cast<std::size_t>(fwd.back())] != 0;
  const bool bwdOk = !bwd.empty() && isHullNode_[static_cast<std::size_t>(bwd.back())] != 0;
  const std::vector<graph::NodeId>* pick = nullptr;
  if (fwdOk && (!bwdOk || fwd.size() <= bwd.size())) {
    pick = &fwd;
  } else if (bwdOk) {
    pick = &bwd;
  }
  if (pick != nullptr) path.insert(path.end(), pick->begin(), pick->end());
}

bool HybridRouter::ringWalkTowards(std::vector<graph::NodeId>& path, int holeIdx,
                                   graph::NodeId target) const {
  const auto& ring = analysis_.holes[static_cast<std::size_t>(holeIdx)].ring;
  const graph::NodeId cur = path.back();
  const int ci = indexIn(ring, cur);
  if (ci < 0) return false;
  const geom::Vec2 pt = g_.position(target);
  int best = ci;
  double bestD = geom::dist2(g_.position(cur), pt);
  for (int i = 0; i < static_cast<int>(ring.size()); ++i) {
    const double d = geom::dist2(g_.position(ring[static_cast<std::size_t>(i)]), pt);
    if (d < bestD) {
      bestD = d;
      best = i;
    }
  }
  if (best == ci) return false;
  return ringWalkBetween(path, ring[static_cast<std::size_t>(best)]);
}

bool HybridRouter::ringWalkBetween(std::vector<graph::NodeId>& path,
                                   graph::NodeId target) const {
  const graph::NodeId cur = path.back();
  const auto& holesOf = analysis_.holesOfNode;
  if (static_cast<std::size_t>(cur) >= holesOf.size() ||
      static_cast<std::size_t>(target) >= holesOf.size()) {
    return false;
  }
  for (const int h : holesOf[static_cast<std::size_t>(cur)]) {
    const auto& ring = analysis_.holes[static_cast<std::size_t>(h)].ring;
    const int ci = indexIn(ring, cur);
    const int ti = indexIn(ring, target);
    if (ci < 0 || ti < 0) continue;
    if (ci == ti) return true;
    const int n = static_cast<int>(ring.size());
    auto arcLength = [&](int from, int steps, int dir) {
      double len = 0.0;
      for (int s = 0; s < steps; ++s) {
        const auto a = ring[static_cast<std::size_t>(((from + s * dir) % n + n) % n)];
        const auto b = ring[static_cast<std::size_t>(((from + (s + 1) * dir) % n + n) % n)];
        len += g_.edgeLength(a, b);
      }
      return len;
    };
    // An arc is committed only if every step really is a graph edge:
    // outer-boundary rings are component orderings rather than strict edge
    // walks (on degenerate collinear graphs consecutive entries need not
    // be LDel edges), and rings of pinched faces can revisit nodes out of
    // adjacency order. Try the shorter direction first.
    auto tryArc = [&](int dir, int steps) {
      std::vector<graph::NodeId> arc;
      arc.reserve(static_cast<std::size_t>(steps));
      graph::NodeId prev = cur;
      for (int s = 1; s <= steps; ++s) {
        const auto v = ring[static_cast<std::size_t>(((ci + s * dir) % n + n) % n)];
        if (!g_.hasEdge(prev, v)) return false;
        arc.push_back(v);
        prev = v;
      }
      path.insert(path.end(), arc.begin(), arc.end());
      return true;
    };
    const int fwdSteps = (ti - ci + n) % n;
    const int bwdSteps = (ci - ti + n) % n;
    const bool fwdFirst = arcLength(ci, fwdSteps, 1) <= arcLength(ci, bwdSteps, -1);
    if (tryArc(fwdFirst ? 1 : -1, fwdFirst ? fwdSteps : bwdSteps)) return true;
    if (tryArc(fwdFirst ? -1 : 1, fwdFirst ? bwdSteps : fwdSteps)) return true;
  }
  return false;
}

bool HybridRouter::routeViaOverlay(std::vector<graph::NodeId>& path, graph::NodeId target,
                                   int* fallbacks) const {
  // Combined query through per-thread scratch: one solve for waypoints and
  // distance, no allocation in the incremental (visibility-table) mode.
  // The waypoint loop below must not re-enter the overlay (chewOrFallback
  // only runs Chew legs / A*), or the scratch would be clobbered mid-walk.
  thread_local OverlayQueryWorkspace overlayWs;
  thread_local OverlayRoute overlayRoute;
  overlay_->query(g_.position(path.back()), g_.position(target), overlayWs, overlayRoute);
  if (!overlayRoute.reachable) {
    return chewOrFallback(path, target, fallbacks);
  }
  const auto& wp = overlayRoute.waypoints;
  if (debugEnabled()) {
    std::fprintf(stderr, "[overlay] from %d to %d via:", path.back(), target);
    for (graph::NodeId w : wp) {
      std::fprintf(stderr, " %d(%.1f,%.1f)", w, g_.position(w).x, g_.position(w).y);
    }
    std::fprintf(stderr, "\n");
  }
  for (graph::NodeId w : wp) {
    if (path.back() == w) continue;
    if (!chewOrFallback(path, w, fallbacks)) return false;
  }
  return chewOrFallback(path, target, fallbacks);
}

bool HybridRouter::routeOutside(std::vector<graph::NodeId>& path, graph::NodeId target,
                                int* fallbacks) const {
  if (path.back() == target) return true;
  int blocked = -1;
  if (chew_.extend(path, target, &blocked)) return true;
  if (blocked >= 0 && opt_.sites != SiteMode::AllHoleNodes) {
    // §4.3: the hole node forwards the message to its neighboring
    // abstraction (hull / locally-convex-hull) node before consulting the
    // overlay.
    ringWalkToHullNode(path, blocked);
  }
  return routeViaOverlay(path, target, fallbacks);
}

bool HybridRouter::routeWithinBay(std::vector<graph::NodeId>& path, graph::NodeId target,
                                  const BayLocation& loc, int* fallbacks,
                                  int* bayExtremes) const {
  const graph::NodeId start = path.back();
  if (start == target) return true;
  int blocked = -1;
  if (chew_.extend(path, target, &blocked)) return true;  // visible pair

  const auto& a = abstractions_[static_cast<std::size_t>(loc.abstraction)];
  if (blocked < 0 || blocked != a.holeIndex) {
    // Blocked by something other than this bay's hole: give up on the bay
    // machinery for this pair.
    return chewOrFallback(path, target, fallbacks);
  }
  const auto& bay = a.bays[static_cast<std::size_t>(loc.bay)];

  // Full chain including the hull endpoints, in ring order.
  std::vector<graph::NodeId> full;
  full.reserve(bay.chain.size() + 2);
  full.push_back(bay.hullFrom);
  full.insert(full.end(), bay.chain.begin(), bay.chain.end());
  full.push_back(bay.hullTo);

  // Intersections S (closest to s) and T (closest to t) of the segment
  // with the bay's stretch of the hole boundary (§4.4).
  const geom::Vec2 ps = g_.position(start);
  const geom::Vec2 pt = g_.position(target);
  const geom::Vec2 dir = pt - ps;
  const double len2 = dir.norm2();
  double sParam = std::numeric_limits<double>::infinity();
  double tParam = -std::numeric_limits<double>::infinity();
  int sEdge = -1;
  int tEdge = -1;
  for (std::size_t i = 0; i + 1 < full.size(); ++i) {
    const geom::Segment e{g_.position(full[i]), g_.position(full[i + 1])};
    if (!geom::segmentsIntersect({ps, pt}, e)) continue;
    const auto ip = geom::segmentIntersectionPoint({ps, pt}, e);
    if (!ip) continue;
    const double param = (*ip - ps).dot(dir) / len2;
    if (param < sParam) {
      sParam = param;
      sEdge = static_cast<int>(i);
    }
    if (param > tParam) {
      tParam = param;
      tEdge = static_cast<int>(i);
    }
  }
  if (sEdge < 0) return chewOrFallback(path, target, fallbacks);

  // P1 / Pt: dominating-set nodes with minimal chain distance to S / T.
  std::size_t flatBay = 0;
  for (int ai2 = 0; ai2 < loc.abstraction; ++ai2) {
    flatBay += abstractions_[static_cast<std::size_t>(ai2)].bays.size();
  }
  flatBay += static_cast<std::size_t>(loc.bay);
  const auto& ds = bayDS_[flatBay];
  auto nearestAnchor = [&](int edgeIdx) -> int {
    // Prefer a DS node; fall back to the chain node at the edge.
    int bestIdx = -1;
    int bestDist = std::numeric_limits<int>::max();
    for (graph::NodeId d : ds) {
      const int di = indexIn(full, d);
      if (di < 0) continue;
      const int distIdx = std::abs(di - edgeIdx);
      if (distIdx < bestDist) {
        bestDist = distIdx;
        bestIdx = di;
      }
    }
    if (bestIdx < 0) bestIdx = edgeIdx;
    return bestIdx;
  };
  const int p1Idx = nearestAnchor(sEdge);
  const int ptIdx = nearestAnchor(tEdge);

  // Extreme points: convex hull corners of the boundary stretch between
  // P1 and Pt, visited in chain order.
  const int lo = std::min(p1Idx, ptIdx);
  const int hi = std::max(p1Idx, ptIdx);
  std::vector<geom::Vec2> stretch;
  for (int i = lo; i <= hi; ++i) {
    stretch.push_back(g_.position(full[static_cast<std::size_t>(i)]));
  }
  std::vector<graph::NodeId> waypoints;
  waypoints.push_back(full[static_cast<std::size_t>(p1Idx)]);
  if (stretch.size() >= 3) {
    const auto hullIdx = geom::convexHullIndices(stretch);
    std::vector<char> onHull(stretch.size(), 0);
    for (int i : hullIdx) onHull[static_cast<std::size_t>(i)] = 1;
    if (p1Idx <= ptIdx) {
      for (int i = p1Idx + 1; i < ptIdx; ++i) {
        if (onHull[static_cast<std::size_t>(i - lo)]) {
          waypoints.push_back(full[static_cast<std::size_t>(i)]);
        }
      }
    } else {
      for (int i = p1Idx - 1; i > ptIdx; --i) {
        if (onHull[static_cast<std::size_t>(i - lo)]) {
          waypoints.push_back(full[static_cast<std::size_t>(i)]);
        }
      }
    }
  }
  waypoints.push_back(full[static_cast<std::size_t>(ptIdx)]);

  // Compress the waypoint sequence by visibility: from each kept waypoint
  // jump to the farthest later waypoint it can see, and stop at the first
  // waypoint that sees the target (the paper's E_t rule). This keeps the
  // extreme-point structure of §4.4 but skips dips of the boundary stretch
  // that the straight route can bypass (e.g. further gaps of a comb).
  const auto& vis = overlay_->visibility();
  std::vector<graph::NodeId> compressed;
  std::size_t pos = 0;
  compressed.push_back(waypoints[0]);
  while (!vis.visible(g_.position(waypoints[pos]), pt)) {
    std::size_t next = pos + 1;
    for (std::size_t j = waypoints.size(); j-- > pos + 1;) {
      if (vis.visible(g_.position(waypoints[pos]), g_.position(waypoints[j]))) {
        next = j;
        break;
      }
    }
    if (next >= waypoints.size()) break;
    compressed.push_back(waypoints[next]);
    pos = next;
  }
  waypoints = std::move(compressed);
  *bayExtremes += std::max(0, static_cast<int>(waypoints.size()) - 1);
  if (debugEnabled()) {
    std::fprintf(stderr, "[bay %d/%d] %d->%d blockedAt=%d wp:", loc.abstraction, loc.bay,
                 start, target, path.back());
    for (graph::NodeId w : waypoints) {
      std::fprintf(stderr, " %d(%.1f,%.1f)", w, g_.position(w).x, g_.position(w).y);
    }
    std::fprintf(stderr, "\n");
  }

  // The corridor walk stopped on the hole boundary; walk the ring to P1.
  const graph::NodeId x = path.back();
  const int xIdx = indexIn(full, x);
  if (xIdx >= 0) {
    const int stepDir = p1Idx >= xIdx ? 1 : -1;
    for (int i = xIdx + stepDir; i != p1Idx + stepDir; i += stepDir) {
      path.push_back(full[static_cast<std::size_t>(i)]);
    }
  } else if (!chewOrFallback(path, waypoints.front(), fallbacks)) {
    return false;
  }

  for (graph::NodeId w : waypoints) {
    if (path.back() == w) continue;
    if (!chewOrFallback(path, w, fallbacks)) return false;
  }
  return chewOrFallback(path, target, fallbacks);
}

bool HybridRouter::escapeBay(std::vector<graph::NodeId>& path, const BayLocation& loc,
                             geom::Vec2 towards, int* fallbacks, int* bayExtremes) const {
  const auto& bay = abstractions_[static_cast<std::size_t>(loc.abstraction)]
                        .bays[static_cast<std::size_t>(loc.bay)];
  const geom::Vec2 cur = g_.position(path.back());
  const double costFrom = geom::dist(cur, g_.position(bay.hullFrom)) +
                          geom::dist(g_.position(bay.hullFrom), towards);
  const double costTo = geom::dist(cur, g_.position(bay.hullTo)) +
                        geom::dist(g_.position(bay.hullTo), towards);
  const graph::NodeId exit = costFrom <= costTo ? bay.hullFrom : bay.hullTo;
  return routeWithinBay(path, exit, loc, fallbacks, bayExtremes);
}

RouteResult HybridRouter::route(graph::NodeId source, graph::NodeId target) const {
  RouteResult r;
  r.path.push_back(source);
  if (source == target) {
    r.delivered = true;
    return r;
  }
  if (g_.hasEdge(source, target)) {  // direct neighbors: one ad hoc hop
    r.path.push_back(target);
    r.delivered = true;
    return r;
  }

  const auto locS = opt_.bayRouting ? locate(g_.position(source)) : std::nullopt;
  const auto locT = opt_.bayRouting ? locate(g_.position(target)) : std::nullopt;

  bool ok = false;
  if (!locS && !locT) {
    r.protocolCase = 1;
    ok = routeOutside(r.path, target, &r.fallbacks);  // case 1
  } else if (locS && !locT) {  // case 2 (source inside)
    r.protocolCase = 2;
    ok = escapeBay(r.path, *locS, g_.position(target), &r.fallbacks, &r.bayExtremePoints) &&
         routeOutside(r.path, target, &r.fallbacks);
  } else if (!locS && locT) {  // case 2 (target inside)
    r.protocolCase = 2;
    const auto& bay = abstractions_[static_cast<std::size_t>(locT->abstraction)]
                          .bays[static_cast<std::size_t>(locT->bay)];
    const geom::Vec2 ps = g_.position(source);
    const geom::Vec2 pt = g_.position(target);
    const double costFrom = geom::dist(ps, g_.position(bay.hullFrom)) +
                            geom::dist(g_.position(bay.hullFrom), pt);
    const double costTo = geom::dist(ps, g_.position(bay.hullTo)) +
                          geom::dist(g_.position(bay.hullTo), pt);
    const graph::NodeId entry = costFrom <= costTo ? bay.hullFrom : bay.hullTo;
    ok = routeOutside(r.path, entry, &r.fallbacks) &&
         routeWithinBay(r.path, target, *locT, &r.fallbacks, &r.bayExtremePoints);
  } else if (locS->abstraction == locT->abstraction && locS->bay == locT->bay) {
    r.protocolCase = 5;
    ok = routeWithinBay(r.path, target, *locS, &r.fallbacks, &r.bayExtremePoints);  // case 5
  } else {  // cases 3 and 4
    r.protocolCase = locS->abstraction == locT->abstraction ? 4 : 3;
    const auto& bayT = abstractions_[static_cast<std::size_t>(locT->abstraction)]
                           .bays[static_cast<std::size_t>(locT->bay)];
    ok = escapeBay(r.path, *locS, g_.position(target), &r.fallbacks, &r.bayExtremePoints);
    if (ok) {
      const geom::Vec2 cur = g_.position(r.path.back());
      const geom::Vec2 pt = g_.position(target);
      const double costFrom = geom::dist(cur, g_.position(bayT.hullFrom)) +
                              geom::dist(g_.position(bayT.hullFrom), pt);
      const double costTo = geom::dist(cur, g_.position(bayT.hullTo)) +
                            geom::dist(g_.position(bayT.hullTo), pt);
      const graph::NodeId entry = costFrom <= costTo ? bayT.hullFrom : bayT.hullTo;
      ok = routeOutside(r.path, entry, &r.fallbacks) &&
           routeWithinBay(r.path, target, *locT, &r.fallbacks, &r.bayExtremePoints);
    }
  }
  if (!ok) {
    // Last-resort fallback keeps the router total; counted for reporting.
    const auto sp = graph::astarPath(g_, r.path.back(), target);
    if (!sp.empty()) {
      r.path.insert(r.path.end(), sp.begin() + 1, sp.end());
      ++r.fallbacks;
      HYBRID_OBS_STMT(if (obs::enabled()) {
        obs::Registry::global().counter("overlay.abstraction.fallbacks").add(1);
      });
    }
  }
  r.delivered = r.path.back() == target;
  if (r.delivered && opt_.prunePaths) prunePath(r.path);
  return r;
}

void HybridRouter::prunePath(std::vector<graph::NodeId>& path) const {
  // Greedy shortcutting: from each node, jump to the farthest later path
  // node that is a direct neighbor. Local: every node only consults its
  // own adjacency while holding the (source-routed) remainder of the path.
  if (path.size() < 3) return;
  std::vector<graph::NodeId> pruned;
  pruned.push_back(path.front());
  std::size_t i = 0;
  while (i + 1 < path.size()) {
    std::size_t next = i + 1;
    const std::size_t window = std::min(path.size() - 1, i + 24);
    for (std::size_t j = window; j > i + 1; --j) {
      if (g_.hasEdge(path[i], path[j])) {
        next = j;
        break;
      }
    }
    pruned.push_back(path[next]);
    i = next;
  }
  path = std::move(pruned);
}

}  // namespace hybrid::routing
