#pragma once

#include <memory>
#include <optional>

#include "abstraction/dominating_set.hpp"
#include "abstraction/hull_groups.hpp"
#include "abstraction/hole_abstraction.hpp"
#include "routing/chew.hpp"
#include "routing/overlay_graph.hpp"
#include "routing/router.hpp"

namespace hybrid::routing {

/// Configuration of the hole-abstraction routing protocol.
struct HybridOptions {
  SiteMode sites = SiteMode::HullNodes;   ///< §4 (hulls) or §3 (all hole nodes).
  EdgeMode edges = EdgeMode::Delaunay;    ///< Overlay edges: O(h) vs Theta(h^2).
  bool bayRouting = true;                 ///< §4.4 cases 2-5 handling.
  /// Extension (paper §7 future work): merge transitively intersecting
  /// hulls into groups and build the overlay from the merged hulls. Only
  /// meaningful with SiteMode::HullNodes.
  bool mergeIntersectingHulls = false;
  /// Post-process delivered paths by shortcutting hops whose endpoints are
  /// directly connected (classic path pruning; every node on the path can
  /// apply it locally from its neighbor knowledge). Off by default so the
  /// measured stretch reflects the paper's protocol alone.
  bool prunePaths = false;
  /// Site-pair backend of the visibility overlay: dense h^2 table, hub
  /// labels, or size-based auto selection.
  TableMode table = TableMode::Auto;
  /// Per-hole abstraction feeding the overlay: convex hulls (the source
  /// paper, A* fallback on intersecting hulls), bounding boxes
  /// (arXiv:1810.05453, competitive on interlocking holes), or Auto
  /// (hulls when disjoint, bbox otherwise).
  AbstractionMode abstraction = AbstractionMode::Hulls;
};

/// The paper's routing protocol: Chew-style corridor routing toward the
/// target; on hitting a radio hole, hand off to the hole-abstraction
/// overlay (visibility graph or overlay Delaunay graph of the abstraction
/// nodes) and route Chew legs between consecutive waypoints. Sources or
/// targets inside a convex hull are handled with the bay-area algorithm of
/// section 4.4 (dominating set + extreme points).
///
/// Delivery is guaranteed: if any leg fails (numerics, protocol gaps), the
/// router splices in a shortest-path fallback and counts it in
/// RouteResult::fallbacks so experiments can report protocol coverage.
class HybridRouter : public Router {
 public:
  HybridRouter(const graph::GeometricGraph& ldel, const holes::HoleAnalysis& analysis,
               const std::vector<abstraction::HoleAbstraction>& abstractions,
               const PlanarSubdivision& sub, HybridOptions options = {});

  RouteResult route(graph::NodeId source, graph::NodeId target) const override;
  std::string name() const override;

  const OverlayGraph& overlay() const { return *overlay_; }
  /// True when the overlay was built from bounding-box sites (explicit
  /// BBox mode, or Auto that detected intersecting hulls).
  bool usesBBox() const { return usesBBox_; }
  /// Dominating sets per bay, flattened in (abstraction, bay) order.
  const std::vector<std::vector<graph::NodeId>>& bayDominatingSets() const {
    return bayDS_;
  }

  /// Location of a point relative to the hole abstraction.
  struct BayLocation {
    int abstraction = -1;  ///< Index into the abstraction list.
    int bay = -1;          ///< Bay index within the abstraction.
  };
  /// The bay containing `p`, if p lies inside some hole's convex hull.
  std::optional<BayLocation> locate(geom::Vec2 p) const;

 private:
  // Routing helpers; each extends `path` (whose back() is the current
  // node) and returns true on arrival at `target`.
  bool chewOrFallback(std::vector<graph::NodeId>& path, graph::NodeId target,
                      int* fallbacks) const;
  bool routeOutside(std::vector<graph::NodeId>& path, graph::NodeId target,
                    int* fallbacks) const;
  bool routeViaOverlay(std::vector<graph::NodeId>& path, graph::NodeId target,
                       int* fallbacks) const;
  bool routeWithinBay(std::vector<graph::NodeId>& path, graph::NodeId target,
                      const BayLocation& loc, int* fallbacks, int* bayExtremes) const;
  bool escapeBay(std::vector<graph::NodeId>& path, const BayLocation& loc,
                 geom::Vec2 towards, int* fallbacks, int* bayExtremes) const;
  void ringWalkToHullNode(std::vector<graph::NodeId>& path, int holeIdx) const;
  /// Bbox mode: when the current node and `target` lie on a common hole
  /// ring, appends the Euclidean-shorter ring arc to `target` and returns
  /// true. Covers overlay legs between consecutive box sites whose chord
  /// crosses the hole (the box paper's perimeter routing).
  bool ringWalkBetween(std::vector<graph::NodeId>& path, graph::NodeId target) const;
  /// Bbox mode: the box paper's route-around-the-box step. When a Chew
  /// leg is blocked by hole `holeIdx` (current node on its ring), walks
  /// the ring to the boundary node nearest the target so the leg can
  /// resume. False when the current node is off-ring or already nearest.
  bool ringWalkTowards(std::vector<graph::NodeId>& path, int holeIdx,
                       graph::NodeId target) const;
  void prunePath(std::vector<graph::NodeId>& path) const;

  const graph::GeometricGraph& g_;
  const holes::HoleAnalysis& analysis_;
  const std::vector<abstraction::HoleAbstraction>& abstractions_;
  ChewRouter chew_;
  std::unique_ptr<OverlayGraph> overlay_;
  HybridOptions opt_;

  std::vector<std::vector<graph::NodeId>> bayDS_;
  std::vector<std::vector<geom::Polygon>> bayPolys_;  ///< Per abstraction.
  std::vector<char> isHullNode_;
  /// Maps a hole index (analysis order) to its abstraction index.
  std::vector<int> holeToAbstraction_;
  bool usesBBox_ = false;  ///< Overlay built from bounding-box sites.
};

}  // namespace hybrid::routing
