#pragma once

#include <memory>
#include <optional>

#include "abstraction/dominating_set.hpp"
#include "abstraction/hull_groups.hpp"
#include "abstraction/hole_abstraction.hpp"
#include "routing/chew.hpp"
#include "routing/overlay_graph.hpp"
#include "routing/router.hpp"

namespace hybrid::routing {

/// Configuration of the hole-abstraction routing protocol.
struct HybridOptions {
  SiteMode sites = SiteMode::HullNodes;   ///< §4 (hulls) or §3 (all hole nodes).
  EdgeMode edges = EdgeMode::Delaunay;    ///< Overlay edges: O(h) vs Theta(h^2).
  bool bayRouting = true;                 ///< §4.4 cases 2-5 handling.
  /// Extension (paper §7 future work): merge transitively intersecting
  /// hulls into groups and build the overlay from the merged hulls. Only
  /// meaningful with SiteMode::HullNodes.
  bool mergeIntersectingHulls = false;
  /// Post-process delivered paths by shortcutting hops whose endpoints are
  /// directly connected (classic path pruning; every node on the path can
  /// apply it locally from its neighbor knowledge). Off by default so the
  /// measured stretch reflects the paper's protocol alone.
  bool prunePaths = false;
  /// Site-pair backend of the visibility overlay: dense h^2 table, hub
  /// labels, or size-based auto selection.
  TableMode table = TableMode::Auto;
  /// Per-hole abstraction feeding the overlay: convex hulls (the source
  /// paper, A* fallback on intersecting hulls), bounding boxes
  /// (arXiv:1810.05453, competitive on interlocking holes), or Auto
  /// (hulls when disjoint, bbox otherwise).
  AbstractionMode abstraction = AbstractionMode::Hulls;
};

/// Everything an overlay build consumes, captured so serving epochs can
/// share slabs: two routers whose plans compare equal would build
/// byte-identical overlays (the build is deterministic at any thread
/// count), so the newer router may adopt the older one's overlay — site
/// graph, dense site-pair table or hub-label slab included — instead of
/// rebuilding it. Site rings are kept in build order because the backbone
/// edge set depends on ring traversal order, and ring node *positions* are
/// captured separately because site ids alone do not pin the geometry when
/// interior nodes churn between epochs.
struct OverlayPlan {
  bool bbox = false;    ///< Custom-ring build with ring-walkable backbone.
  bool merged = false;  ///< Custom-ring build from merged hull groups.
  SiteMode sites = SiteMode::HullNodes;
  EdgeMode edges = EdgeMode::Delaunay;
  TableMode table = TableMode::Auto;
  std::vector<std::vector<graph::NodeId>> rings;      ///< Site rings, build order.
  std::vector<geom::Vec2> ringPositions;              ///< Flattened ring positions.
  std::vector<std::vector<geom::Vec2>> holePolygons;  ///< Visibility obstacles.

  bool operator==(const OverlayPlan&) const = default;
};

/// The paper's routing protocol: Chew-style corridor routing toward the
/// target; on hitting a radio hole, hand off to the hole-abstraction
/// overlay (visibility graph or overlay Delaunay graph of the abstraction
/// nodes) and route Chew legs between consecutive waypoints. Sources or
/// targets inside a convex hull are handled with the bay-area algorithm of
/// section 4.4 (dominating set + extreme points).
///
/// Delivery is guaranteed: if any leg fails (numerics, protocol gaps), the
/// router splices in a shortest-path fallback and counts it in
/// RouteResult::fallbacks so experiments can report protocol coverage.
class HybridRouter : public Router {
 public:
  /// `overlayDonor` (optional) is a router from a previous serving epoch:
  /// when its OverlayPlan compares equal to this build's plan, the donor's
  /// overlay slab is adopted (shared, immutable) instead of being rebuilt
  /// — the epoch-snapshot fast path of serve::RouteService. The donor is
  /// only read during construction and need not outlive the router.
  HybridRouter(const graph::GeometricGraph& ldel, const holes::HoleAnalysis& analysis,
               const std::vector<abstraction::HoleAbstraction>& abstractions,
               const PlanarSubdivision& sub, HybridOptions options = {},
               const HybridRouter* overlayDonor = nullptr);

  RouteResult route(graph::NodeId source, graph::NodeId target) const override;
  std::string name() const override;

  const OverlayGraph& overlay() const { return *overlay_; }
  /// Shared ownership of the overlay slab, for snapshot plumbing: a later
  /// epoch's router (or a retiring snapshot's reader) keeps the slab alive
  /// for exactly as long as it is referenced.
  std::shared_ptr<const OverlayGraph> overlayPtr() const { return overlay_; }
  /// The captured overlay build inputs (see OverlayPlan).
  const OverlayPlan& overlayPlan() const { return overlayPlan_; }
  /// True when this router adopted its donor's overlay instead of building.
  bool adoptedDonorOverlay() const { return adoptedOverlay_; }

  /// Computes the overlay build inputs for (ldel, analysis, abstractions,
  /// options) without building anything expensive; the constructor uses
  /// the same function, so plan equality implies build equality.
  static OverlayPlan planOverlay(const graph::GeometricGraph& ldel,
                                 const holes::HoleAnalysis& analysis,
                                 const std::vector<abstraction::HoleAbstraction>& abstractions,
                                 const HybridOptions& options);
  /// True when the overlay was built from bounding-box sites (explicit
  /// BBox mode, or Auto that detected intersecting hulls).
  bool usesBBox() const { return usesBBox_; }
  /// Dominating sets per bay, flattened in (abstraction, bay) order.
  const std::vector<std::vector<graph::NodeId>>& bayDominatingSets() const {
    return bayDS_;
  }

  /// Location of a point relative to the hole abstraction.
  struct BayLocation {
    int abstraction = -1;  ///< Index into the abstraction list.
    int bay = -1;          ///< Bay index within the abstraction.
  };
  /// The bay containing `p`, if p lies inside some hole's convex hull.
  std::optional<BayLocation> locate(geom::Vec2 p) const;

 private:
  // Routing helpers; each extends `path` (whose back() is the current
  // node) and returns true on arrival at `target`.
  bool chewOrFallback(std::vector<graph::NodeId>& path, graph::NodeId target,
                      int* fallbacks) const;
  bool routeOutside(std::vector<graph::NodeId>& path, graph::NodeId target,
                    int* fallbacks) const;
  bool routeViaOverlay(std::vector<graph::NodeId>& path, graph::NodeId target,
                       int* fallbacks) const;
  bool routeWithinBay(std::vector<graph::NodeId>& path, graph::NodeId target,
                      const BayLocation& loc, int* fallbacks, int* bayExtremes) const;
  bool escapeBay(std::vector<graph::NodeId>& path, const BayLocation& loc,
                 geom::Vec2 towards, int* fallbacks, int* bayExtremes) const;
  void ringWalkToHullNode(std::vector<graph::NodeId>& path, int holeIdx) const;
  /// Bbox mode: when the current node and `target` lie on a common hole
  /// ring, appends the Euclidean-shorter ring arc to `target` and returns
  /// true. Covers overlay legs between consecutive box sites whose chord
  /// crosses the hole (the box paper's perimeter routing).
  bool ringWalkBetween(std::vector<graph::NodeId>& path, graph::NodeId target) const;
  /// Bbox mode: the box paper's route-around-the-box step. When a Chew
  /// leg is blocked by hole `holeIdx` (current node on its ring), walks
  /// the ring to the boundary node nearest the target so the leg can
  /// resume. False when the current node is off-ring or already nearest.
  bool ringWalkTowards(std::vector<graph::NodeId>& path, int holeIdx,
                       graph::NodeId target) const;
  void prunePath(std::vector<graph::NodeId>& path) const;

  const graph::GeometricGraph& g_;
  const holes::HoleAnalysis& analysis_;
  const std::vector<abstraction::HoleAbstraction>& abstractions_;
  ChewRouter chew_;
  std::shared_ptr<const OverlayGraph> overlay_;
  OverlayPlan overlayPlan_;
  bool adoptedOverlay_ = false;
  HybridOptions opt_;

  std::vector<std::vector<graph::NodeId>> bayDS_;
  std::vector<std::vector<geom::Polygon>> bayPolys_;  ///< Per abstraction.
  std::vector<char> isHullNode_;
  /// Maps a hole index (analysis order) to its abstraction index.
  std::vector<int> holeToAbstraction_;
  bool usesBBox_ = false;  ///< Overlay built from bounding-box sites.
};

}  // namespace hybrid::routing
