#include "routing/node_labels.hpp"

#include <algorithm>
#include <numeric>

namespace hybrid::routing {

void NodeLabels::build(const HubLabelOracle& oracle) {
  const std::size_t n = oracle.numSites();
  const std::size_t m = oracle.numEntries();
  offsets_ = oracle.offsets();
  hubs_.resize(m);
  nextHop_.resize(m);
  hubOut_.resize(m);
  dist_.resize(m);
  maxLabel_ = oracle.maxLabelSize();
  if (n == 0) {
    offsets_.assign(1, 0);
    return;
  }

  // Columns straight from the oracle slab; the owner of each entry index is
  // recovered from the offsets for the hub-major pass below.
  const auto& es = oracle.entries();
  std::vector<std::int32_t> owner(m);
  for (std::size_t v = 0; v < n; ++v) {
    const auto b = static_cast<std::size_t>(offsets_[v]);
    const auto e = static_cast<std::size_t>(offsets_[v + 1]);
    for (std::size_t i = b; i < e; ++i) owner[i] = static_cast<std::int32_t>(v);
  }
  for (std::size_t i = 0; i < m; ++i) {
    hubs_[i] = es[i].hub;
    nextHop_[i] = es[i].pred;
    dist_[i] = es[i].dist;
  }

  // hubOut: for each hub w and each node v in w's shortest-path tree, the
  // first hop of the tree path w -> v. Processing w's entries in distance
  // order resolves parents before children (preds settle at strictly
  // smaller distance — edge weights are positive Euclidean lengths), so
  //   firstHop[v] = v              when pred(v) == w (v adjacent to w)
  //   firstHop[v] = firstHop[pred] otherwise
  // needs one forward scan. `seenHub` stamps the scratch per hub so the
  // pass never pays an O(n) clear between hubs. The order key
  // (hub, dist, owner) is unique per entry — the derivation is a
  // deterministic function of the already thread-invariant oracle slab.
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (hubs_[a] != hubs_[b]) return hubs_[a] < hubs_[b];
    if (dist_[a] != dist_[b]) return dist_[a] < dist_[b];
    return owner[a] < owner[b];
  });
  std::vector<std::int32_t> firstHop(n, -1);
  std::vector<std::int32_t> seenHub(n, -1);
  for (const std::size_t i : order) {
    const std::int32_t v = owner[i];
    const std::int32_t w = hubs_[i];
    const std::int32_t p = nextHop_[i];
    std::int32_t fh = -1;
    if (v != w) {
      if (p == w) {
        fh = v;
      } else if (p >= 0 && seenHub[static_cast<std::size_t>(p)] == w) {
        fh = firstHop[static_cast<std::size_t>(p)];
      }
      // else: broken pred chain (corrupt oracle) — keep -1, the hop rule
      // fails cleanly instead of forwarding somewhere arbitrary.
    }
    firstHop[static_cast<std::size_t>(v)] = fh;
    seenHub[static_cast<std::size_t>(v)] = w;
    hubOut_[i] = fh;
  }
}

NodeLabels NodeLabels::fromEntries(std::span<const std::vector<Entry>> perNode) {
  NodeLabels l;
  const std::size_t n = perNode.size();
  l.offsets_.assign(n + 1, 0);
  std::size_t m = 0;
  for (std::size_t v = 0; v < n; ++v) {
    m += perNode[v].size();
    l.offsets_[v + 1] = static_cast<std::int64_t>(m);
    l.maxLabel_ = std::max(l.maxLabel_, perNode[v].size());
  }
  l.hubs_.reserve(m);
  l.nextHop_.reserve(m);
  l.hubOut_.reserve(m);
  l.dist_.reserve(m);
  for (const auto& label : perNode) {
    for (const Entry& e : label) {
      l.hubs_.push_back(e.hub);
      l.nextHop_.push_back(e.nextHop);
      l.hubOut_.push_back(e.hubOut);
      l.dist_.push_back(e.dist);
    }
  }
  return l;
}

std::vector<NodeLabels::Entry> NodeLabels::entriesOf(int v) const {
  const View lv = view(v);
  std::vector<Entry> out;
  out.reserve(lv.size());
  for (std::size_t i = 0; i < lv.size(); ++i) {
    out.push_back({lv.hubs[i], lv.nextHop[i], lv.hubOut[i], lv.dist[i]});
  }
  return out;
}

NodeLabels::Hop NodeLabels::nextHop(int v, int t) const {
  const View lv = view(v);
  const View lt = view(t);
  double best = std::numeric_limits<double>::infinity();
  std::size_t bi = 0;
  std::size_t bj = 0;
  bool found = false;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < lv.size() && j < lt.size()) {
    const std::int32_t hv = lv.hubs[i];
    const std::int32_t ht = lt.hubs[j];
    if (hv < ht) {
      ++i;
    } else if (ht < hv) {
      ++j;
    } else {
      // Strict < keeps the lowest common hub id on ties — the same
      // tie-break as HubLabelOracle::meet, so the walk and the
      // centralized path agree on which shortest path realizes d(v,t).
      const double c = lv.dist[i] + lt.dist[j];
      if (c < best) {
        best = c;
        bi = i;
        bj = j;
        found = true;
      }
      ++i;
      ++j;
    }
  }
  if (!found) return {};
  Hop hop;
  hop.distance = best;
  const std::int32_t w = lv.hubs[bi];
  // At the meet hub itself the climb is over; descend along the hub's own
  // tree toward the target via the target's hubOut. Everywhere else climb
  // toward the hub via this node's nextHop.
  hop.next = w == v ? lt.hubOut[bj] : lv.nextHop[bi];
  return hop;
}

NodeLabels::CorruptedHop NodeLabels::corruptNextHopForTest(int startNode) {
  const int n = static_cast<int>(numNodes());
  for (int k = 0; k < n; ++k) {
    const int v = (startNode + k) % n;
    const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    for (std::size_t i = b; i < e; ++i) {
      if (hubs_[i] == v) continue;  // self entry has no next hop
      nextHop_[i] = v;              // forward to yourself: a routing loop
      return {v, hubs_[i]};
    }
  }
  return {};
}

}  // namespace hybrid::routing
