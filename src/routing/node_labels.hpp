#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "routing/hub_labels.hpp"

namespace hybrid::routing {

/// Immutable per-node forwarding labels derived from a HubLabelOracle.
///
/// The oracle answers centralized queries: one object walks pred chains and
/// emits the whole path. Stateless forwarding instead gives every node its
/// own label so the node holding a packet computes the next hop locally
/// (Kuhn–Schneider-style routing schemes, arXiv:2202.06624 / 2210.05333):
/// for each hub w in its oracle label, node v stores
///
///   (hub, dist, nextHop, hubOut)
///
/// where `nextHop` is v's neighbor toward w (the oracle entry's pred) and
/// `hubOut` is w's first hop toward v in w's shortest-path tree — the one
/// datum pred chains cannot provide locally, because descending *away* from
/// a hub at the hub itself needs the first edge of the reversed chain.
///
/// Hop rule (nextHop(v, t)): merge label(v) and label(t) by hub id; take
/// the common hub w minimizing d(v,w) + d(w,t), ties to the lowest hub id.
/// If w != v the packet climbs toward w via v's `nextHop`; if w == v the
/// packet descends via the *target's* `hubOut` for w (the first hop of the
/// tree path v -> t). Every step lands on a shortest v-t path, so the
/// merged estimate decreases by exactly the edge length each hop — the
/// walk terminates in at most numNodes() hops with the exact shortest
/// length, using only the current node's view plus the target's label.
///
/// Storage is one flat SoA slab (per-node spans, no per-node allocations),
/// built by a deterministic serial pass over the oracle's thread-invariant
/// slab — byte-identical at any thread count by construction.
class NodeLabels {
 public:
  /// One label entry in AoS form (distribution payloads, tests). The slab
  /// itself stores columns; see View.
  struct Entry {
    std::int32_t hub;      ///< Hub node id.
    std::int32_t nextHop;  ///< Owner's neighbor toward the hub (-1 on self entry).
    std::int32_t hubOut;   ///< Hub's first hop toward the owner (-1 on self entry).
    double dist;           ///< Owner<->hub distance (oracle tree path length).

    bool operator==(const Entry&) const = default;
  };

  /// One node's slice of the slab: four parallel spans, hub-sorted.
  struct View {
    std::span<const std::int32_t> hubs;
    std::span<const std::int32_t> nextHop;
    std::span<const std::int32_t> hubOut;
    std::span<const double> dist;

    std::size_t size() const { return hubs.size(); }
  };

  /// Next-hop decision for one (node, target) pair.
  struct Hop {
    int next = -1;  ///< Neighbor to forward to; -1 when no common hub.
    double distance = std::numeric_limits<double>::infinity();  ///< Merged d(v,t).

    bool ok() const { return next >= 0; }
  };

  /// Derives all per-node labels from a built oracle. `nextHop` copies the
  /// oracle preds; `hubOut` comes from one hub-major scan over the slab
  /// (entries sorted by (hub, dist, owner)): a hub's tree parents settle at
  /// strictly smaller distance, so `firstHop[v] = v if pred(v) == hub else
  /// firstHop[pred(v)]` is always resolved before it is read.
  void build(const HubLabelOracle& oracle);

  /// Assembles the slab from explicit per-node entry lists (the label
  /// distribution protocol's receive side). Entries must be hub-sorted per
  /// node, as shipped. The result is byte-identical to build() when the
  /// lists are the built labels.
  static NodeLabels fromEntries(std::span<const std::vector<Entry>> perNode);

  bool built() const { return !offsets_.empty(); }
  std::size_t numNodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  std::size_t numEntries() const { return hubs_.size(); }

  View view(int v) const {
    const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    const std::size_t n = e - b;
    return {{hubs_.data() + b, n},
            {nextHop_.data() + b, n},
            {hubOut_.data() + b, n},
            {dist_.data() + b, n}};
  }

  /// Copies node v's label into AoS form (distribution payloads, tests).
  std::vector<Entry> entriesOf(int v) const;

  /// The forwarding decision at node v for target t: one alloc-free
  /// two-pointer merge of the two labels (O(|L(v)| + |L(t)|)). Returns a
  /// failed Hop when the labels share no hub (disconnected or corrupt).
  /// Not meaningful for v == t (callers stop before forwarding).
  Hop nextHop(int v, int t) const;

  // --- Stats (obs gauges, benches). ---
  std::size_t labelBytes() const {
    return hubs_.size() * (2 * sizeof(std::int32_t) + sizeof(std::int32_t) + sizeof(double)) +
           offsets_.size() * sizeof(offsets_[0]);
  }
  double bytesPerNode() const {
    return numNodes() == 0 ? 0.0
                           : static_cast<double>(labelBytes()) / static_cast<double>(numNodes());
  }
  std::size_t maxLabelSize() const { return maxLabel_; }

  bool operator==(const NodeLabels&) const = default;

  /// Test-only corruption hook for the injected wrong-next-hop bug:
  /// starting at `startNode` (wrapping), redirects one non-self entry's
  /// nextHop back to the owner — a forwarding self-loop the hop guard must
  /// turn into a clean failure. Returns the (node, hub) hit.
  struct CorruptedHop {
    int node = -1;
    int hub = -1;
  };
  CorruptedHop corruptNextHopForTest(int startNode);

 private:
  std::vector<std::int64_t> offsets_;  ///< size numNodes()+1, into the columns.
  std::vector<std::int32_t> hubs_;     ///< Hub ids, sorted per node.
  std::vector<std::int32_t> nextHop_;  ///< Owner's neighbor toward the hub.
  std::vector<std::int32_t> hubOut_;   ///< Hub's first hop toward the owner.
  std::vector<double> dist_;           ///< Owner<->hub distances.
  std::size_t maxLabel_ = 0;
};

}  // namespace hybrid::routing
