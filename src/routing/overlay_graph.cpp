#include "routing/overlay_graph.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "delaunay/triangulation.hpp"
#include "graph/shortest_path.hpp"

namespace hybrid::routing {

OverlayGraph::OverlayGraph(const graph::GeometricGraph& ldel,
                           const holes::HoleAnalysis& analysis,
                           const std::vector<abstraction::HoleAbstraction>& abstractions,
                           SiteMode siteMode, EdgeMode edgeMode)
    : vis_(analysis.holePolygons()), edgeMode_(edgeMode) {
  // Collect sites and remember per-site local index.
  std::map<graph::NodeId, int> local;
  auto addSite = [&](graph::NodeId v) {
    if (local.contains(v)) return local.at(v);
    const int idx = static_cast<int>(sites_.size());
    local[v] = idx;
    sites_.push_back(v);
    sitePos_.push_back(ldel.position(v));
    return idx;
  };

  filterBackbone_ = siteMode == SiteMode::SimplifiedBoundary;
  if (siteMode != SiteMode::AllHoleNodes) {
    auto ringOf = [&](const abstraction::HoleAbstraction& a)
        -> const std::vector<graph::NodeId>& {
      switch (siteMode) {
        case SiteMode::LocallyConvexHull:
          return a.locallyConvexHull;
        case SiteMode::SimplifiedBoundary:
          return a.simplifiedBoundary;
        default:
          return a.hullNodes;
      }
    };
    for (const auto& a : abstractions) {
      for (graph::NodeId v : ringOf(a)) addSite(v);
    }
    // Backbone: consecutive abstraction nodes of the same hole.
    for (const auto& a : abstractions) {
      const auto& ring = ringOf(a);
      for (std::size_t i = 0; i < ring.size(); ++i) {
        const int u = local.at(ring[i]);
        const int v = local.at(ring[(i + 1) % ring.size()]);
        if (ring.size() > 1) backboneEdges_.emplace_back(u, v);
      }
    }
  } else {
    for (const auto& h : analysis.holes) {
      for (graph::NodeId v : h.ring) addSite(v);
    }
    // Backbone: consecutive ring nodes of the same hole.
    for (const auto& h : analysis.holes) {
      for (std::size_t i = 0; i < h.ring.size(); ++i) {
        const graph::NodeId a = h.ring[i];
        const graph::NodeId b = h.ring[(i + 1) % h.ring.size()];
        if (a != b) backboneEdges_.emplace_back(local.at(a), local.at(b));
      }
    }
  }

  buildSiteEdges();
}

OverlayGraph::OverlayGraph(const graph::GeometricGraph& ldel,
                           const std::vector<std::vector<graph::NodeId>>& siteRings,
                           std::vector<geom::Polygon> obstacles, EdgeMode edgeMode)
    : vis_(std::move(obstacles)), edgeMode_(edgeMode) {
  std::map<graph::NodeId, int> local;
  for (const auto& ring : siteRings) {
    for (graph::NodeId v : ring) {
      if (local.contains(v)) continue;
      local[v] = static_cast<int>(sites_.size());
      sites_.push_back(v);
      sitePos_.push_back(ldel.position(v));
    }
  }
  for (const auto& ring : siteRings) {
    if (ring.size() < 2) continue;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      backboneEdges_.emplace_back(local.at(ring[i]),
                                  local.at(ring[(i + 1) % ring.size()]));
    }
  }
  buildSiteEdges();
}

void OverlayGraph::buildSiteEdges() {
  if (edgeMode_ == EdgeMode::Visibility) {
    siteAdj_ = geom::buildVisibilityAdjacency(sitePos_, vis_);
    for (const auto& a : siteAdj_) precomputedEdges_ += a.size();
    precomputedEdges_ /= 2;
  } else {
    // Delaunay of the sites; keep only hole-free edges, plus the backbone.
    if (sitePos_.size() >= 3) {
      const delaunay::DelaunayTriangulation dt(sitePos_);
      siteAdj_.assign(sitePos_.size(), {});
      for (const auto& [u, v] : dt.edges()) {
        if (vis_.visible(sitePos_[static_cast<std::size_t>(u)],
                         sitePos_[static_cast<std::size_t>(v)])) {
          siteAdj_[static_cast<std::size_t>(u)].push_back(v);
          siteAdj_[static_cast<std::size_t>(v)].push_back(u);
          ++precomputedEdges_;
        }
      }
    } else {
      siteAdj_.assign(sitePos_.size(), {});
    }
  }
}

OverlayGraph::Query OverlayGraph::buildQueryGraph(geom::Vec2 from, geom::Vec2 to) const {
  Query q;
  // Reuse a site when the endpoint coincides with it (e.g. routing from a
  // hull node), so the triangulation never sees duplicate points.
  int fromSite = -1;
  int toSite = -1;
  for (int i = 0; i < static_cast<int>(sitePos_.size()); ++i) {
    if (sitePos_[static_cast<std::size_t>(i)] == from) fromSite = i;
    if (sitePos_[static_cast<std::size_t>(i)] == to) toSite = i;
  }

  std::vector<geom::Vec2> pts = sitePos_;
  q.fromIdx = fromSite >= 0 ? fromSite : static_cast<int>(pts.size());
  if (fromSite < 0) pts.push_back(from);
  q.toIdx = toSite >= 0 ? toSite : static_cast<int>(pts.size());
  if (toSite < 0 && !(from == to)) pts.push_back(to);
  if (toSite < 0 && from == to) q.toIdx = q.fromIdx;

  q.g = graph::GeometricGraph(pts);
  const int ns = static_cast<int>(sitePos_.size());

  if (edgeMode_ == EdgeMode::Visibility || pts.size() < 3) {
    for (int i = 0; i < ns; ++i) {
      for (int j : siteAdj_[static_cast<std::size_t>(i)]) {
        if (j > i) q.g.addEdge(i, j);
      }
    }
    for (const int endpoint : {q.fromIdx, q.toIdx}) {
      if (endpoint < ns) continue;  // endpoint is itself a site
      for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
        if (i == endpoint) continue;
        if (vis_.visible(pts[static_cast<std::size_t>(endpoint)],
                         pts[static_cast<std::size_t>(i)])) {
          q.g.addEdge(endpoint, i);
        }
      }
    }
    // When both endpoints are existing sites the site adjacency covers them.
    if (q.fromIdx < ns && q.toIdx < ns) return q;
    return q;
  }

  // Delaunay mode: re-triangulate sites + endpoints and prune hole-crossing
  // edges; keep the (hole-free) backbone.
  const delaunay::DelaunayTriangulation dt(pts);
  for (const auto& [u, v] : dt.edges()) {
    if (vis_.visible(pts[static_cast<std::size_t>(u)], pts[static_cast<std::size_t>(v)])) {
      q.g.addEdge(u, v);
    }
  }
  // The backbone (consecutive abstraction nodes of one hole) is kept
  // unconditionally for hull/lch/ring sites: a chord between adjacent hull
  // corners cannot cross its own hole's interior, and when boundary
  // slivers make hulls intersect, keeping the chord beats detouring the
  // whole overlay (the Chew leg slides around the sliver locally).
  // Douglas-Peucker backbones can genuinely cut through their hole, so
  // they are visibility-filtered.
  for (const auto& [u, v] : backboneEdges_) {
    if (filterBackbone_ &&
        !vis_.visible(pts[static_cast<std::size_t>(u)], pts[static_cast<std::size_t>(v)])) {
      continue;
    }
    q.g.addEdge(u, v);
  }
  return q;
}

std::optional<std::vector<graph::NodeId>> OverlayGraph::waypoints(geom::Vec2 from,
                                                                  geom::Vec2 to) const {
  if (from == to) return std::vector<graph::NodeId>{};
  const Query q = buildQueryGraph(from, to);
  const auto tree = graph::dijkstra(q.g, q.fromIdx, q.toIdx);
  const auto path = tree.pathTo(q.toIdx);
  if (path.empty() && q.fromIdx != q.toIdx) return std::nullopt;
  std::vector<graph::NodeId> out;
  for (graph::NodeId v : path) {
    if (v == q.fromIdx || v == q.toIdx) continue;
    if (v < static_cast<int>(sites_.size())) out.push_back(sites_[static_cast<std::size_t>(v)]);
  }
  return out;
}

double OverlayGraph::overlayDistance(geom::Vec2 from, geom::Vec2 to) const {
  if (from == to) return 0.0;
  const Query q = buildQueryGraph(from, to);
  return graph::dijkstra(q.g, q.fromIdx, q.toIdx).dist[static_cast<std::size_t>(q.toIdx)];
}

}  // namespace hybrid::routing
