#include "routing/overlay_graph.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <mutex>
#include <set>

#include "delaunay/triangulation.hpp"
#include "graph/dijkstra_workspace.hpp"
#include "graph/shortest_path.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace hybrid::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Runtime-overridable backend limits (setTableLimitsForTest); relaxed
/// atomics because tests set them before constructing overlays.
std::atomic<std::size_t> gDenseCap{OverlayGraph::kMaxTableSites};
std::atomic<std::size_t> gAutoThreshold{1024};
std::once_flag gFallbackLogOnce;

#ifndef HYBRID_OBS_DISABLED
/// Registry handles resolved once; hot queries only touch the atomics.
struct QueryMetrics {
  obs::Counter& incremental;
  obs::Counter& rebuild;
  obs::Counter& direct;
  obs::Counter& visRun;
  obs::Counter& visPruned;
  obs::Counter& wsReuse;
  obs::Counter& wsGrow;
  obs::Histogram& hubMerge;

  static QueryMetrics& get() {
    auto& reg = obs::Registry::global();
    static QueryMetrics m{reg.counter("overlay.query.incremental"),
                          reg.counter("overlay.query.rebuild"),
                          reg.counter("overlay.query.direct"),
                          reg.counter("overlay.vis_tests.run"),
                          reg.counter("overlay.vis_tests.pruned"),
                          reg.counter("overlay.workspace.reuse_hits"),
                          reg.counter("overlay.workspace.grows"),
                          reg.histogram("overlay.query.hub_merge_len",
                                        {4, 16, 64, 256, 1024, 4096, 16384})};
    return m;
  }
};
#endif
}  // namespace

const char* tableModeName(TableMode mode) {
  switch (mode) {
    case TableMode::Dense:
      return "dense";
    case TableMode::HubLabels:
      return "labels";
    case TableMode::Auto:
      break;
  }
  return "auto";
}

std::optional<TableMode> parseTableMode(std::string_view name) {
  if (name == "dense") return TableMode::Dense;
  if (name == "labels") return TableMode::HubLabels;
  if (name == "auto") return TableMode::Auto;
  return std::nullopt;
}

const char* abstractionModeName(AbstractionMode mode) {
  switch (mode) {
    case AbstractionMode::Hulls:
      return "hulls";
    case AbstractionMode::BBox:
      return "bbox";
    case AbstractionMode::Auto:
      break;
  }
  return "auto";
}

std::optional<AbstractionMode> parseAbstractionMode(std::string_view name) {
  if (name == "hulls") return AbstractionMode::Hulls;
  if (name == "bbox") return AbstractionMode::BBox;
  if (name == "auto") return AbstractionMode::Auto;
  return std::nullopt;
}

std::size_t OverlayGraph::denseCap() { return gDenseCap.load(std::memory_order_relaxed); }

std::size_t OverlayGraph::autoLabelThreshold() {
  return gAutoThreshold.load(std::memory_order_relaxed);
}

std::pair<std::size_t, std::size_t> OverlayGraph::setTableLimitsForTest(
    std::size_t denseCap, std::size_t autoThreshold) {
  std::pair<std::size_t, std::size_t> prev{gDenseCap.load(std::memory_order_relaxed),
                                           gAutoThreshold.load(std::memory_order_relaxed)};
  if (denseCap != 0) gDenseCap.store(denseCap, std::memory_order_relaxed);
  if (autoThreshold != 0) gAutoThreshold.store(autoThreshold, std::memory_order_relaxed);
  return prev;
}

OverlayGraph::OverlayGraph(const graph::GeometricGraph& ldel,
                           const holes::HoleAnalysis& analysis,
                           const std::vector<abstraction::HoleAbstraction>& abstractions,
                           SiteMode siteMode, EdgeMode edgeMode, TableMode table)
    : vis_(analysis.holePolygons()), edgeMode_(edgeMode), tableMode_(table) {
  obs::ScopedSpan buildSpan("overlay.build");
  // Collect sites and remember per-site local index.
  std::map<graph::NodeId, int> local;
  auto addSite = [&](graph::NodeId v) {
    if (local.contains(v)) return local.at(v);
    const int idx = static_cast<int>(sites_.size());
    local[v] = idx;
    sites_.push_back(v);
    sitePos_.push_back(ldel.position(v));
    return idx;
  };

  filterBackbone_ = siteMode == SiteMode::SimplifiedBoundary;
  if (siteMode != SiteMode::AllHoleNodes) {
    auto ringOf = [&](const abstraction::HoleAbstraction& a)
        -> const std::vector<graph::NodeId>& {
      switch (siteMode) {
        case SiteMode::LocallyConvexHull:
          return a.locallyConvexHull;
        case SiteMode::SimplifiedBoundary:
          return a.simplifiedBoundary;
        default:
          return a.hullNodes;
      }
    };
    for (const auto& a : abstractions) {
      for (graph::NodeId v : ringOf(a)) addSite(v);
    }
    // Backbone: consecutive abstraction nodes of the same hole.
    for (const auto& a : abstractions) {
      const auto& ring = ringOf(a);
      for (std::size_t i = 0; i < ring.size(); ++i) {
        const int u = local.at(ring[i]);
        const int v = local.at(ring[(i + 1) % ring.size()]);
        if (ring.size() > 1) backboneEdges_.emplace_back(u, v);
      }
    }
  } else {
    for (const auto& h : analysis.holes) {
      for (graph::NodeId v : h.ring) addSite(v);
    }
    // Backbone: consecutive ring nodes of the same hole.
    for (const auto& h : analysis.holes) {
      for (std::size_t i = 0; i < h.ring.size(); ++i) {
        const graph::NodeId a = h.ring[i];
        const graph::NodeId b = h.ring[(i + 1) % h.ring.size()];
        if (a != b) backboneEdges_.emplace_back(local.at(a), local.at(b));
      }
    }
  }

  buildSiteEdges();
  buildSitePairTable();
}

OverlayGraph::OverlayGraph(const graph::GeometricGraph& ldel,
                           const std::vector<std::vector<graph::NodeId>>& siteRings,
                           std::vector<geom::Polygon> obstacles, EdgeMode edgeMode,
                           TableMode table, bool ringBackbone)
    : vis_(std::move(obstacles)), edgeMode_(edgeMode), tableMode_(table) {
  obs::ScopedSpan buildSpan("overlay.build");
  ringBackbone_ = ringBackbone;
  std::map<graph::NodeId, int> local;
  for (const auto& ring : siteRings) {
    for (graph::NodeId v : ring) {
      if (local.contains(v)) continue;
      local[v] = static_cast<int>(sites_.size());
      sites_.push_back(v);
      sitePos_.push_back(ldel.position(v));
    }
  }
  for (const auto& ring : siteRings) {
    if (ring.size() < 2) continue;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      backboneEdges_.emplace_back(local.at(ring[i]),
                                  local.at(ring[(i + 1) % ring.size()]));
    }
  }
  buildSiteEdges();
  buildSitePairTable();
}

void OverlayGraph::buildSiteEdges() {
  obs::ScopedSpan span("site_edges");
  if (edgeMode_ == EdgeMode::Visibility) {
    siteAdj_ = geom::buildVisibilityAdjacency(sitePos_, vis_);
    for (const auto& a : siteAdj_) precomputedEdges_ += a.size();
    precomputedEdges_ /= 2;
    if (ringBackbone_) {
      // Ring-arc backbones (bbox sites): the chord between consecutive
      // sites may cross the hole, so visibility missed it; the router
      // walks the ring for such legs, keeping the edge routable.
      for (const auto& [u, v] : backboneEdges_) {
        auto& au = siteAdj_[static_cast<std::size_t>(u)];
        if (std::find(au.begin(), au.end(), v) != au.end()) continue;
        au.push_back(v);
        siteAdj_[static_cast<std::size_t>(v)].push_back(u);
        ++precomputedEdges_;
      }
    }
  } else {
    // Delaunay of the sites; keep only hole-free edges, plus the backbone.
    if (sitePos_.size() >= 3) {
      const delaunay::DelaunayTriangulation dt(sitePos_);
      siteAdj_.assign(sitePos_.size(), {});
      for (const auto& [u, v] : dt.edges()) {
        if (vis_.visible(sitePos_[static_cast<std::size_t>(u)],
                         sitePos_[static_cast<std::size_t>(v)])) {
          siteAdj_[static_cast<std::size_t>(u)].push_back(v);
          siteAdj_[static_cast<std::size_t>(v)].push_back(u);
          ++precomputedEdges_;
        }
      }
    } else {
      siteAdj_.assign(sitePos_.size(), {});
    }
  }
}

void OverlayGraph::buildSitePairTable() {
  obs::ScopedSpan span("site_table");
  const std::size_t h = sitePos_.size();
  // Delaunay queries re-triangulate with the endpoints inserted, so the
  // static site graph cannot answer them; only visibility mode serves
  // incrementally. (With fewer than 3 points the Delaunay query graph
  // degenerates to the visibility form, but such overlays are trivially
  // cheap either way.)
  if (edgeMode_ != EdgeMode::Visibility) {
    incremental_ = false;
    return;
  }
  incremental_ = true;
  if (h == 0) return;

  // Resolve the backend. Auto stays dense while the h^2 table is cheap
  // (below both the auto threshold and the dense cap) and switches to hub
  // labels above it; an explicit Dense request above the cap cannot be
  // honored and falls back to the per-query rebuild path — loudly, because
  // silently losing the serving engine is a large hidden regression.
  bool wantLabels = false;
  switch (tableMode_) {
    case TableMode::Dense:
      break;
    case TableMode::HubLabels:
      wantLabels = true;
      break;
    case TableMode::Auto:
      wantLabels = h > std::min(autoLabelThreshold(), denseCap());
      break;
  }
  if (!wantLabels && h > denseCap()) {
    incremental_ = false;
    HYBRID_OBS_STMT(if (obs::enabled()) {
      obs::Registry::global().counter("overlay.table.fallbacks").add(1);
    });
    std::call_once(gFallbackLogOnce, [&] {
      std::fprintf(stderr,
                   "[overlay] dense site table refused: %zu sites exceed the cap of %zu; "
                   "serving falls back to per-query rebuild (TableMode::HubLabels or "
                   "Auto lifts the ceiling). This is a table-capacity fallback "
                   "(overlay.table.fallbacks), distinct from the router's "
                   "hull-intersection A* splices (overlay.abstraction.fallbacks)\n",
                   h, denseCap());
    });
    return;
  }

  siteCsr_ = graph::buildCsr(siteAdj_, sitePos_);
  usesHubLabels_ = wantLabels;
  const unsigned threads = h >= 96 ? util::resolveThreads(0) : 1;

  if (wantLabels) {
#ifndef HYBRID_OBS_DISABLED
    const auto t0 = std::chrono::steady_clock::now();
#endif
    labels_.build(siteCsr_, threads);
    HYBRID_OBS_STMT(if (obs::enabled()) {
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      auto& reg = obs::Registry::global();
      reg.counter("overlay.table.builds").add(1);
      reg.counter("overlay.table.dijkstras").add(h);
      reg.counter("overlay.table.relaxations").add(labels_.buildRelaxations());
      reg.counter("overlay.table.heap_pops").add(labels_.buildHeapPops());
      reg.gauge("overlay.table.sites").set(static_cast<double>(h));
      reg.gauge("overlay.labels.count").set(static_cast<double>(labels_.numEntries()));
      reg.gauge("overlay.labels.bytes").set(static_cast<double>(labels_.labelBytes()));
      reg.gauge("overlay.labels.max_label").set(static_cast<double>(labels_.maxLabelSize()));
      reg.gauge("overlay.labels.build_ms").set(ms);
    });
    return;
  }

  siteDist_.assign(h * h, kInf);
  sitePred_.assign(h * h, -1);
  // One Dijkstra per source site; rows are independent, so the parallel
  // fill is deterministic at any thread count.
  util::parallelChunks(h, threads, [&](std::size_t begin, std::size_t end, unsigned) {
    graph::DijkstraWorkspace ws;
    for (std::size_t i = begin; i < end; ++i) {
      ws.run(siteCsr_, static_cast<graph::NodeId>(i));
      double* distRow = siteDist_.data() + i * h;
      std::int32_t* predRow = sitePred_.data() + i * h;
      for (std::size_t j = 0; j < h; ++j) {
        distRow[j] = ws.dist(static_cast<graph::NodeId>(j));
        predRow[j] = ws.pred(static_cast<graph::NodeId>(j));
      }
    }
    // One flush per chunk; the relaxation total is the sum over source
    // sites, so it is identical at every thread count.
    HYBRID_OBS_STMT(if (obs::enabled()) {
      auto& reg = obs::Registry::global();
      static obs::Counter& cRelax = reg.counter("overlay.table.relaxations");
      static obs::Counter& cPops = reg.counter("overlay.table.heap_pops");
      cRelax.add(ws.relaxations());
      cPops.add(ws.heapPops());
    });
  });
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("overlay.table.builds").add(1);
    reg.counter("overlay.table.dijkstras").add(h);
    reg.gauge("overlay.table.sites").set(static_cast<double>(h));
  });
}

bool OverlayGraph::sitePathLocal(int i, int j, std::vector<int>& out) const {
  if (usesHubLabels_) return labels_.path(i, j, out);
  const std::size_t h = sitePos_.size();
  const std::size_t before = out.size();
  const std::int32_t* predRow = sitePred_.data() + static_cast<std::size_t>(i) * h;
  std::size_t hops = 0;
  for (int v = j; v != -1; v = predRow[static_cast<std::size_t>(v)]) {
    if (++hops > h) {  // corrupted pred chain guard
      out.resize(before);
      return false;
    }
    out.push_back(v);
  }
  if (out[out.size() - 1] != i) {  // never reached the source: disconnected
    out.resize(before);
    return false;
  }
  std::reverse(out.begin() + static_cast<std::ptrdiff_t>(before), out.end());
  return true;
}

OverlayGraph::Query OverlayGraph::buildQueryGraph(geom::Vec2 from, geom::Vec2 to) const {
  Query q;
  // Reuse a site when the endpoint coincides with it (e.g. routing from a
  // hull node), so the triangulation never sees duplicate points.
  int fromSite = -1;
  int toSite = -1;
  for (int i = 0; i < static_cast<int>(sitePos_.size()); ++i) {
    if (sitePos_[static_cast<std::size_t>(i)] == from) fromSite = i;
    if (sitePos_[static_cast<std::size_t>(i)] == to) toSite = i;
  }

  std::vector<geom::Vec2> pts = sitePos_;
  q.fromIdx = fromSite >= 0 ? fromSite : static_cast<int>(pts.size());
  if (fromSite < 0) pts.push_back(from);
  q.toIdx = toSite >= 0 ? toSite : static_cast<int>(pts.size());
  if (toSite < 0 && !(from == to)) pts.push_back(to);
  if (toSite < 0 && from == to) q.toIdx = q.fromIdx;

  q.g = graph::GeometricGraph(pts);
  const int ns = static_cast<int>(sitePos_.size());

  if (edgeMode_ == EdgeMode::Visibility || pts.size() < 3) {
    for (int i = 0; i < ns; ++i) {
      for (int j : siteAdj_[static_cast<std::size_t>(i)]) {
        if (j > i) q.g.addEdge(i, j);
      }
    }
    for (const int endpoint : {q.fromIdx, q.toIdx}) {
      if (endpoint < ns) continue;  // endpoint is itself a site
      for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
        if (i == endpoint) continue;
        if (vis_.visible(pts[static_cast<std::size_t>(endpoint)],
                         pts[static_cast<std::size_t>(i)])) {
          q.g.addEdge(endpoint, i);
        }
      }
    }
    // When both endpoints are existing sites the site adjacency covers them.
    if (q.fromIdx < ns && q.toIdx < ns) return q;
    return q;
  }

  // Delaunay mode: re-triangulate sites + endpoints and prune hole-crossing
  // edges; keep the (hole-free) backbone.
  const delaunay::DelaunayTriangulation dt(pts);
  for (const auto& [u, v] : dt.edges()) {
    if (vis_.visible(pts[static_cast<std::size_t>(u)], pts[static_cast<std::size_t>(v)])) {
      q.g.addEdge(u, v);
    }
  }
  // The backbone (consecutive abstraction nodes of one hole) is kept
  // unconditionally for hull/lch/ring sites: a chord between adjacent hull
  // corners cannot cross its own hole's interior, and when boundary
  // slivers make hulls intersect, keeping the chord beats detouring the
  // whole overlay (the Chew leg slides around the sliver locally).
  // Douglas-Peucker backbones can genuinely cut through their hole, so
  // they are visibility-filtered.
  for (const auto& [u, v] : backboneEdges_) {
    if (filterBackbone_ &&
        !vis_.visible(pts[static_cast<std::size_t>(u)], pts[static_cast<std::size_t>(v)])) {
      continue;
    }
    q.g.addEdge(u, v);
  }
  return q;
}

void OverlayGraph::queryRebuild(geom::Vec2 from, geom::Vec2 to, OverlayRoute& out) const {
  HYBRID_OBS_STMT(if (obs::enabled()) QueryMetrics::get().rebuild.add(1));
  const Query q = buildQueryGraph(from, to);
  const auto tree = graph::dijkstra(q.g, q.fromIdx, q.toIdx);
  out.distance = tree.dist[static_cast<std::size_t>(q.toIdx)];
  const auto path = tree.pathTo(q.toIdx);
  if (path.empty() && q.fromIdx != q.toIdx) return;  // unreachable
  out.reachable = true;
  for (graph::NodeId v : path) {
    if (v == q.fromIdx || v == q.toIdx) continue;
    if (v < static_cast<int>(sites_.size())) {
      out.waypoints.push_back(sites_[static_cast<std::size_t>(v)]);
    }
  }
}

void OverlayGraph::queryIncremental(geom::Vec2 from, geom::Vec2 to,
                                    OverlayQueryWorkspace& ws, OverlayRoute& out) const {
#ifndef HYBRID_OBS_DISABLED
  // Per-query tallies flush exactly once, whichever return path runs.
  ws.obsVisRun_ = 0;
  ws.obsVisPruned_ = 0;
  ws.obsHubMerge_ = 0;
  struct ObsFlush {
    const OverlayQueryWorkspace& ws;
    bool labels;
    ~ObsFlush() {
      if (!obs::enabled()) return;
      auto& m = QueryMetrics::get();
      m.incremental.add(1);
      m.visRun.add(ws.obsVisRun_);
      m.visPruned.add(ws.obsVisPruned_);
      if (labels) m.hubMerge.record(static_cast<double>(ws.obsHubMerge_));
    }
  } obsFlush{ws, usesHubLabels_};
#endif
  const std::size_t h = sitePos_.size();
  // Endpoints that coincide with a site enter the overlay there at cost 0,
  // exactly as the rebuilt query graph reused the site node.
  int fromSite = -1;
  int toSite = -1;
  for (int i = 0; i < static_cast<int>(h); ++i) {
    if (sitePos_[static_cast<std::size_t>(i)] == from) fromSite = i;
    if (sitePos_[static_cast<std::size_t>(i)] == to) toSite = i;
  }

  int bestEntry = -1;
  int bestExit = -1;
  double best = kInf;

  if (fromSite >= 0 && toSite >= 0) {
    // Both endpoints are sites: the query graph is the precomputed site
    // graph itself (visibility adjacency covers every visible pair).
    best = sitePairDistance(fromSite, toSite);
    bestEntry = fromSite;
    bestExit = toSite;
  } else {
    // Direct edge: a temporary endpoint links to every visible point,
    // including the other endpoint. The rebuilt graph ran the visibility
    // test from each *temporary* endpoint in turn (site nodes never
    // initiated edges to temps), and visible() can be asymmetric when a
    // segment grazes a hole vertex — so replicate the exact orientation(s)
    // the old graph evaluated.
    const bool direct =
        (fromSite < 0 && vis_.visible(from, to)) || (toSite < 0 && vis_.visible(to, from));
    if (direct) best = geom::dist(from, to);

    // Visibility tests (endpoint-first orientation, matching the rebuilt
    // graph's edge tests) dominate the query cost, so they run lazily and
    // each verdict is cached for the query's lifetime.
    HYBRID_OBS_STMT(if (obs::enabled()) {
      auto& m = QueryMetrics::get();
      (ws.entryVis_.capacity() >= h ? m.wsReuse : m.wsGrow).add(1);
    });
    ws.entryVis_.assign(h, 0);
    ws.exitVis_.assign(h, 0);
    const auto entryVisible = [&](int i) {
      signed char& f = ws.entryVis_[static_cast<std::size_t>(i)];
      if (f == 0) {
        HYBRID_OBS_STMT(++ws.obsVisRun_);
        f = vis_.visible(from, sitePos_[static_cast<std::size_t>(i)]) ? 1 : -1;
      }
      return f > 0;
    };
    const auto exitVisible = [&](int j) {
      signed char& f = ws.exitVis_[static_cast<std::size_t>(j)];
      if (f == 0) {
        HYBRID_OBS_STMT(++ws.obsVisRun_);
        f = vis_.visible(to, sitePos_[static_cast<std::size_t>(j)]) ? 1 : -1;
      }
      return f > 0;
    };

    // Pruning bound: any site whose Euclidean lower bound
    //   d(from, s_i) + |s_i - to|   (entry)   /   |from - s_j| + d(s_j, to)  (exit)
    // strictly exceeds a known upper bound on the optimal cannot be part
    // of a strictly-better candidate (overlay legs are at least the
    // straight-line distance), so its visibility test is skipped. The
    // bound is kept separate from the scan's running `best` and the prune
    // is strict, so every candidate that could tie the optimum survives
    // and the pair scan selects exactly what the unpruned scan would.
    double bound = best;
    if (bound == kInf && h > 0) {
      // Direct segment blocked: seed a finite bound from the
      // nearest-by-lower-bound visible entry and exit joined by the table.
      // The through-site lower bound |from - s| + |s - to| orders both
      // walks, so it is computed and sorted once.
      ws.seedLB_.resize(h);
      ws.seedOrder_.resize(h);
      for (int i = 0; i < static_cast<int>(h); ++i) {
        const geom::Vec2 s = sitePos_[static_cast<std::size_t>(i)];
        ws.seedLB_[static_cast<std::size_t>(i)] = geom::dist(from, s) + geom::dist(s, to);
        ws.seedOrder_[static_cast<std::size_t>(i)] = i;
      }
      std::sort(ws.seedOrder_.begin(), ws.seedOrder_.end(), [&](int a, int b) {
        return ws.seedLB_[static_cast<std::size_t>(a)] <
               ws.seedLB_[static_cast<std::size_t>(b)];
      });
      // A handful of seeds per side tightens the bound considerably over a
      // single pair (the nearest visible entry and exit are often on the
      // same side of the blocking hole, forcing a long table detour).
      constexpr int kSeeds = 3;
      int seedEntries[kSeeds];
      int seedExits[kSeeds];
      int numEntries = 0;
      int numExits = 0;
      if (fromSite >= 0) {
        seedEntries[numEntries++] = fromSite;
      } else {
        for (const int i : ws.seedOrder_) {
          if (!entryVisible(i)) continue;
          seedEntries[numEntries++] = i;
          if (numEntries == kSeeds) break;
        }
      }
      if (toSite >= 0) {
        seedExits[numExits++] = toSite;
      } else if (numEntries > 0) {
        for (const int j : ws.seedOrder_) {
          if (!exitVisible(j)) continue;
          seedExits[numExits++] = j;
          if (numExits == kSeeds) break;
        }
      }
      double seedDist[kSeeds];
      for (int a = 0; a < numEntries; ++a) {
        const int i = seedEntries[a];
        const double entryLeg =
            i == fromSite ? 0.0 : geom::dist(from, sitePos_[static_cast<std::size_t>(i)]);
        if (usesHubLabels_) {
          // Batched label merge: stamp i's label into the hub buckets once
          // and answer every exit from them, instead of one full
          // two-pointer merge per (i, j) pair. Values are identical to
          // sitePairDistance() per pair.
          labels_.distanceMany(i, {seedExits, static_cast<std::size_t>(numExits)},
                               ws.hubMergeWs_, {seedDist, static_cast<std::size_t>(numExits)});
        }
        for (int b = 0; b < numExits; ++b) {
          const int j = seedExits[b];
          const double exitLeg =
              j == toSite ? 0.0 : geom::dist(sitePos_[static_cast<std::size_t>(j)], to);
          const double mid = usesHubLabels_ ? seedDist[b] : sitePairDistance(i, j);
          bound = std::min(bound, entryLeg + mid + exitLeg);
        }
      }
    }

    // Entry/exit legs to the visible sites (cost 0 at a coinciding site).
    ws.entrySites_.clear();
    ws.exitSites_.clear();
    ws.entryDist_.assign(h, kInf);
    ws.exitDist_.assign(h, kInf);
    if (fromSite >= 0) {
      ws.entryDist_[static_cast<std::size_t>(fromSite)] = 0.0;
      ws.entrySites_.push_back(fromSite);
    } else {
      for (int i = 0; i < static_cast<int>(h); ++i) {
        const geom::Vec2 s = sitePos_[static_cast<std::size_t>(i)];
        const double leg = geom::dist(from, s);
        if (leg + geom::dist(s, to) > bound) {
          HYBRID_OBS_STMT(++ws.obsVisPruned_);
          continue;
        }
        if (!entryVisible(i)) continue;
        ws.entryDist_[static_cast<std::size_t>(i)] = leg;
        ws.entrySites_.push_back(i);
      }
    }
    if (toSite >= 0) {
      ws.exitDist_[static_cast<std::size_t>(toSite)] = 0.0;
      ws.exitSites_.push_back(toSite);
    } else {
      for (int j = 0; j < static_cast<int>(h); ++j) {
        const geom::Vec2 s = sitePos_[static_cast<std::size_t>(j)];
        const double leg = geom::dist(s, to);
        if (geom::dist(from, s) + leg > bound) {
          HYBRID_OBS_STMT(++ws.obsVisPruned_);
          continue;
        }
        if (!exitVisible(j)) continue;
        ws.exitDist_[static_cast<std::size_t>(j)] = leg;
        ws.exitSites_.push_back(j);
      }
    }

    // Best entry/exit-site combination over the site-pair backend.
    if (usesHubLabels_) {
      // Hub-bucket scan instead of |entry| x |exit| label merges: pass 1
      // buckets the entry side per hub (min over entry sites i of
      // d(from,i) + d(i,w)), pass 2 completes each exit label against the
      // buckets — O(sum of touched label sizes) total. Buckets are
      // generation-stamped so queries never pay an O(h) clear.
      if (ws.hubStamp_.size() < h) {
        ws.hubVal_.resize(h);
        ws.hubEntry_.resize(h);
        ws.hubStamp_.resize(h, 0);
      }
      ++ws.hubGen_;
      if (ws.hubGen_ == 0) {  // stamp wrap-around: re-zero and restart
        std::fill(ws.hubStamp_.begin(), ws.hubStamp_.end(), 0);
        ws.hubGen_ = 1;
      }
      for (const int i : ws.entrySites_) {
        const double di = ws.entryDist_[static_cast<std::size_t>(i)];
        const auto li = labels_.label(i);
        HYBRID_OBS_STMT(ws.obsHubMerge_ += li.size());
        for (const auto& e : li) {
          const double cand = di + e.dist;
          const auto w = static_cast<std::size_t>(e.hub);
          if (ws.hubStamp_[w] != ws.hubGen_ || cand < ws.hubVal_[w]) {
            ws.hubStamp_[w] = ws.hubGen_;
            ws.hubVal_[w] = cand;
            ws.hubEntry_[w] = i;
          }
        }
      }
      for (const int j : ws.exitSites_) {
        const double dj = ws.exitDist_[static_cast<std::size_t>(j)];
        const auto lj = labels_.label(j);
        HYBRID_OBS_STMT(ws.obsHubMerge_ += lj.size());
        for (const auto& e : lj) {
          const auto w = static_cast<std::size_t>(e.hub);
          if (ws.hubStamp_[w] != ws.hubGen_) continue;
          const double cand = ws.hubVal_[w] + e.dist + dj;
          if (cand < best) {
            best = cand;
            bestEntry = ws.hubEntry_[w];
            bestExit = j;
          }
        }
      }
    } else {
      for (const int i : ws.entrySites_) {
        const double di = ws.entryDist_[static_cast<std::size_t>(i)];
        if (di >= best) continue;
        const double* distRow = siteDist_.data() + static_cast<std::size_t>(i) * h;
        for (const int j : ws.exitSites_) {
          const double cand = di + distRow[static_cast<std::size_t>(j)] +
                              ws.exitDist_[static_cast<std::size_t>(j)];
          if (cand < best) {
            best = cand;
            bestEntry = i;
            bestExit = j;
          }
        }
      }
    }
  }

  if (best == kInf) return;  // unreachable
  out.reachable = true;
  out.distance = best;
  if (bestEntry < 0) {  // direct visibility: no intermediate sites
    HYBRID_OBS_STMT(if (obs::enabled()) QueryMetrics::get().direct.add(1));
    return;
  }

  ws.pathScratch_.clear();
  if (!sitePathLocal(bestEntry, bestExit, ws.pathScratch_)) {
    // Table says reachable but the pred walk failed: should not happen.
    out.reachable = false;
    out.distance = kInf;
    return;
  }
  for (const int v : ws.pathScratch_) {
    if (v == fromSite || v == toSite) continue;  // endpoints are not waypoints
    out.waypoints.push_back(sites_[static_cast<std::size_t>(v)]);
  }
}

void OverlayGraph::query(geom::Vec2 from, geom::Vec2 to, OverlayQueryWorkspace& ws,
                         OverlayRoute& out) const {
  out.reachable = false;
  out.distance = kInf;
  out.waypoints.clear();
  if (from == to) {
    out.reachable = true;
    out.distance = 0.0;
    return;
  }
  if (incremental_) {
    queryIncremental(from, to, ws, out);
  } else {
    queryRebuild(from, to, out);
  }
}

OverlayRoute OverlayGraph::waypointsWithDistance(geom::Vec2 from, geom::Vec2 to) const {
  thread_local OverlayQueryWorkspace ws;
  OverlayRoute out;
  query(from, to, ws, out);
  return out;
}

std::optional<std::vector<graph::NodeId>> OverlayGraph::waypoints(geom::Vec2 from,
                                                                  geom::Vec2 to) const {
  auto route = waypointsWithDistance(from, to);
  if (!route.reachable) return std::nullopt;
  return std::move(route.waypoints);
}

double OverlayGraph::overlayDistance(geom::Vec2 from, geom::Vec2 to) const {
  thread_local OverlayQueryWorkspace ws;
  thread_local OverlayRoute out;
  query(from, to, ws, out);
  return out.distance;
}

}  // namespace hybrid::routing
