#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "abstraction/hole_abstraction.hpp"
#include "geom/visibility.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "holes/hole_detection.hpp"
#include "obs/metrics.hpp"
#include "routing/hub_labels.hpp"

namespace hybrid::routing {

/// Which nodes form the abstraction overlay.
enum class SiteMode {
  HullNodes,          ///< Convex hull nodes of each hole (paper section 4).
  AllHoleNodes,       ///< Every hole boundary node (paper section 3).
  LocallyConvexHull,  ///< Locally convex hulls (Def. 4.1): the intermediate
                      ///< abstraction of section 4.1 — O(A) nodes per hole.
  SimplifiedBoundary, ///< Douglas-Peucker simplified boundary (extension).
};

/// How overlay sites are connected.
enum class EdgeMode {
  Visibility,  ///< Full visibility graph: Theta(h^2) edges, 17.7-competitive.
  Delaunay,    ///< Delaunay of the sites: O(h) edges, 35.37-competitive.
};

/// Which site-pair backend serves visibility-mode queries.
enum class TableMode {
  Dense,      ///< h×h distance/pred table; refuses (rebuild fallback) above
              ///< the dense cap.
  HubLabels,  ///< Pruned hub-label oracle: compact labels, no site ceiling.
  Auto,       ///< Dense up to the auto threshold, hub labels above it.
};

const char* tableModeName(TableMode mode);
/// Parses tableModeName() spelling ("dense" | "labels" | "auto");
/// nullopt for anything else.
std::optional<TableMode> parseTableMode(std::string_view name);

/// Which per-hole abstraction feeds the overlay.
enum class AbstractionMode {
  Hulls,  ///< Convex hulls (the source paper); competitive only when the
          ///< hulls are pairwise disjoint, A* fallback otherwise.
  BBox,   ///< Axis-aligned bounding boxes merged to disjointness
          ///< (Castenow-Kolb-Scheideler, arXiv:1810.05453): O(1) sites per
          ///< hole, stays competitive when hulls interlock.
  Auto,   ///< Hulls when all hulls are disjoint, BBox otherwise.
};

const char* abstractionModeName(AbstractionMode mode);
/// Parses abstractionModeName() spelling ("hulls" | "bbox" | "auto");
/// nullopt for anything else.
std::optional<AbstractionMode> parseAbstractionMode(std::string_view name);

/// Combined answer of one overlay query: the waypoints *and* the overlay
/// path length from a single solve. Callers that reuse the struct keep the
/// waypoint vector's capacity across queries.
struct OverlayRoute {
  bool reachable = false;
  double distance = std::numeric_limits<double>::infinity();
  std::vector<graph::NodeId> waypoints;  ///< Intermediate sites, endpoint-free.
};

/// Per-thread scratch state for OverlayGraph::query(). Queries through a
/// workspace perform zero steady-state heap allocations (visibility mode);
/// one workspace must not be shared between concurrent queries.
/// Cache-line-aligned so per-thread workspaces never false-share.
class alignas(64) OverlayQueryWorkspace {
 public:
  OverlayQueryWorkspace() = default;

 private:
  friend class OverlayGraph;
  std::vector<double> entryDist_;  ///< d(from, site i); +inf when not visible.
  std::vector<double> exitDist_;   ///< d(site j, to); +inf when not visible.
  std::vector<int> entrySites_;    ///< Site indices with finite entry distance.
  std::vector<int> exitSites_;     ///< Site indices with finite exit distance.
  std::vector<int> pathScratch_;   ///< Local-index site path being rebuilt.
  /// Cached visibility verdicts this query: 0 unknown, 1 visible, -1 blocked.
  std::vector<signed char> entryVis_;
  std::vector<signed char> exitVis_;
  std::vector<double> seedLB_;  ///< Per-site Euclidean lower bounds (seed phase).
  std::vector<int> seedOrder_;  ///< Site indices sorted by seedLB_.
  /// Hub-label backend scratch: per-hub best entry-side value, generation
  /// stamped so a query never pays an O(h) clear.
  std::vector<double> hubVal_;         ///< min over entry sites of d(s,i)+d(i,w).
  std::vector<int> hubEntry_;          ///< Entry site realizing hubVal_.
  std::vector<std::uint64_t> hubStamp_;
  std::uint64_t hubGen_ = 0;
  /// Batched seed-bound scratch (HubLabelOracle::distanceMany).
  HubLabelOracle::MergeWorkspace hubMergeWs_;
  /// Per-query observability tallies, flushed into the global registry at
  /// the end of each query (obs::enabled() only; never affect results).
  std::uint64_t obsVisRun_ = 0;     ///< Visibility tests actually evaluated.
  std::uint64_t obsVisPruned_ = 0;  ///< Sites skipped by the Euclidean bound.
  std::uint64_t obsHubMerge_ = 0;   ///< Label entries scanned by the hub merge.
};

/// The long-range overlay used to plan around radio holes. Sites are hole
/// abstraction nodes; a waypoint query inserts the source and target and
/// returns the intermediate sites of a shortest overlay path.
///
/// Serving engine: visibility-mode overlays precompute the site-to-site
/// distance/predecessor table (h Dijkstras over the CSR site graph, run in
/// parallel at construction), so a query only connects the two endpoints
/// to their visible sites and minimizes d(s, i) + table[i][j] + d(j, t)
/// over entry/exit-site pairs — no graph rebuild, no per-query Dijkstra,
/// no allocation. Delaunay mode genuinely re-triangulates per query
/// (inserting s and t changes the edge set), so it keeps the rebuild path;
/// both modes answer waypoints and distance from one solve. All query
/// methods are const and safe to call concurrently.
class OverlayGraph {
 public:
  OverlayGraph(const graph::GeometricGraph& ldel, const holes::HoleAnalysis& analysis,
               const std::vector<abstraction::HoleAbstraction>& abstractions,
               SiteMode siteMode, EdgeMode edgeMode, TableMode table = TableMode::Auto);

  /// Custom-site overlay (used by the intersecting-hulls extensions):
  /// `siteRings` lists the abstraction node rings (e.g. merged hull
  /// corners or bounding-box sites, ccw); consecutive ring members form
  /// the backbone. Visibility is still evaluated against the radio-hole
  /// polygons. `ringBackbone` declares the rings to be sparse subsets of
  /// the hole boundary connected by ring arcs (bbox sites): backbone
  /// edges are then force-included in the site graph even when the
  /// straight chord crosses the hole, because the router walks the hole
  /// ring between consecutive sites instead of routing the chord.
  OverlayGraph(const graph::GeometricGraph& ldel,
               const std::vector<std::vector<graph::NodeId>>& siteRings,
               std::vector<geom::Polygon> obstacles, EdgeMode edgeMode,
               TableMode table = TableMode::Auto, bool ringBackbone = false);

  /// One combined solve into caller-owned scratch + result storage: the
  /// allocation-free hot path of the serving engine. `out.waypoints` is
  /// cleared and refilled (capacity reused).
  void query(geom::Vec2 from, geom::Vec2 to, OverlayQueryWorkspace& ws,
             OverlayRoute& out) const;

  /// Convenience wrapper over query() using a thread-local workspace.
  OverlayRoute waypointsWithDistance(geom::Vec2 from, geom::Vec2 to) const;

  /// Site node ids (into the LDel graph) of the shortest overlay path from
  /// `from` to `to`, excluding the endpoints themselves. nullopt if the
  /// overlay is disconnected between them (should not happen for disjoint
  /// convex hulls). Prefer waypointsWithDistance() when the path length is
  /// also needed — this and overlayDistance() each run a full solve.
  std::optional<std::vector<graph::NodeId>> waypoints(geom::Vec2 from, geom::Vec2 to) const;

  /// Euclidean length of the shortest overlay path (for analysis).
  double overlayDistance(geom::Vec2 from, geom::Vec2 to) const;

  const std::vector<graph::NodeId>& sites() const { return sites_; }
  std::size_t numPrecomputedEdges() const { return precomputedEdges_; }
  const geom::VisibilityContext& visibility() const { return vis_; }

  // --- Introspection for parity tests and old-path bench replicas. ---
  const std::vector<geom::Vec2>& sitePositions() const { return sitePos_; }
  const std::vector<std::vector<int>>& siteAdjacency() const { return siteAdj_; }
  const std::vector<std::pair<int, int>>& backboneEdges() const { return backboneEdges_; }
  EdgeMode edgeMode() const { return edgeMode_; }
  bool backboneFiltered() const { return filterBackbone_; }
  /// True when queries are answered from the precomputed site-pair backend.
  bool servesIncrementally() const { return incremental_; }
  /// The backend mode requested at construction (possibly Auto).
  TableMode tableMode() const { return tableMode_; }
  /// True when site-pair queries are served by hub labels (resolved mode).
  bool usesHubLabels() const { return usesHubLabels_; }
  /// The label oracle; only built when usesHubLabels().
  const HubLabelOracle& hubLabels() const { return labels_; }
  /// Precomputed site-pair distance (+inf when disconnected); only valid
  /// when servesIncrementally().
  double sitePairDistance(int i, int j) const {
    if (usesHubLabels_) return labels_.distance(i, j);
    return siteDist_[static_cast<std::size_t>(i) * sitePos_.size() +
                     static_cast<std::size_t>(j)];
  }

  /// Dense visibility overlays larger than denseCap() fall back to the
  /// rebuild path: the O(h^2) table would cost too much memory to be a
  /// win. Hub labels have no such ceiling. Historical name kept for the
  /// old-path bench replicas; equals denseCap() unless overridden.
  static constexpr std::size_t kMaxTableSites = 4096;

  /// Runtime-readable dense table cap (default kMaxTableSites).
  static std::size_t denseCap();
  /// Auto mode picks hub labels strictly above this site count.
  static std::size_t autoLabelThreshold();
  /// Test hook: override the caps (0 = keep current value). Returns the
  /// previous (denseCap, autoLabelThreshold) pair so tests can restore.
  static std::pair<std::size_t, std::size_t> setTableLimitsForTest(std::size_t denseCap,
                                                                   std::size_t autoThreshold);

 private:
  struct Query {
    graph::GeometricGraph g;  ///< sites + possibly from/to appended
    int fromIdx = -1;
    int toIdx = -1;
  };
  Query buildQueryGraph(geom::Vec2 from, geom::Vec2 to) const;
  void buildSiteEdges();
  void buildSitePairTable();
  void queryIncremental(geom::Vec2 from, geom::Vec2 to, OverlayQueryWorkspace& ws,
                        OverlayRoute& out) const;
  void queryRebuild(geom::Vec2 from, geom::Vec2 to, OverlayRoute& out) const;
  /// Appends the local-index site path i -> j (inclusive) from the pair
  /// table into `out`; false when disconnected or the pred chain is bad.
  bool sitePathLocal(int i, int j, std::vector<int>& out) const;

  std::vector<graph::NodeId> sites_;
  std::vector<geom::Vec2> sitePos_;
  geom::VisibilityContext vis_;
  EdgeMode edgeMode_;
  /// Site-to-site adjacency (visibility mode precomputes it; Delaunay mode
  /// re-triangulates per query because inserting s and t changes edges).
  std::vector<std::vector<int>> siteAdj_;
  /// Ring/hull consecutive edges that are always present.
  std::vector<std::pair<int, int>> backboneEdges_;
  /// Douglas-Peucker backbones may cut through their own hole (the
  /// tolerance allows chords across convex bumps), so they are
  /// visibility-filtered; hull/lch/ring backbones never cross their hole.
  bool filterBackbone_ = false;
  /// Backbone edges are ring arcs of a sparse site subset (bbox mode):
  /// include them in the site graph even when the chord is hole-blocked.
  bool ringBackbone_ = false;
  std::size_t precomputedEdges_ = 0;

  // Serving engine state (visibility mode).
  bool incremental_ = false;
  TableMode tableMode_ = TableMode::Auto;
  bool usesHubLabels_ = false;
  graph::CsrAdjacency siteCsr_;          ///< Flat site graph (visibility edges).
  std::vector<double> siteDist_;         ///< h*h shortest site-pair distances (dense).
  std::vector<std::int32_t> sitePred_;   ///< h*h predecessors (row = source site).
  HubLabelOracle labels_;                ///< Label backend (usesHubLabels_ only).
};

}  // namespace hybrid::routing
