#pragma once

#include <optional>
#include <vector>

#include "abstraction/hole_abstraction.hpp"
#include "geom/visibility.hpp"
#include "graph/graph.hpp"
#include "holes/hole_detection.hpp"

namespace hybrid::routing {

/// Which nodes form the abstraction overlay.
enum class SiteMode {
  HullNodes,          ///< Convex hull nodes of each hole (paper section 4).
  AllHoleNodes,       ///< Every hole boundary node (paper section 3).
  LocallyConvexHull,  ///< Locally convex hulls (Def. 4.1): the intermediate
                      ///< abstraction of section 4.1 — O(A) nodes per hole.
  SimplifiedBoundary, ///< Douglas-Peucker simplified boundary (extension).
};

/// How overlay sites are connected.
enum class EdgeMode {
  Visibility,  ///< Full visibility graph: Theta(h^2) edges, 17.7-competitive.
  Delaunay,    ///< Delaunay of the sites: O(h) edges, 35.37-competitive.
};

/// The long-range overlay used to plan around radio holes. Sites are hole
/// abstraction nodes; a waypoint query inserts the source and target and
/// returns the intermediate sites of a shortest overlay path.
class OverlayGraph {
 public:
  OverlayGraph(const graph::GeometricGraph& ldel, const holes::HoleAnalysis& analysis,
               const std::vector<abstraction::HoleAbstraction>& abstractions,
               SiteMode siteMode, EdgeMode edgeMode);

  /// Custom-site overlay (used by the intersecting-hulls extension):
  /// `siteRings` lists the abstraction node rings (e.g. merged hull
  /// corners, ccw); consecutive ring members form the backbone. Visibility
  /// is still evaluated against the radio-hole polygons.
  OverlayGraph(const graph::GeometricGraph& ldel,
               const std::vector<std::vector<graph::NodeId>>& siteRings,
               std::vector<geom::Polygon> obstacles, EdgeMode edgeMode);

  /// Site node ids (into the LDel graph) of the shortest overlay path from
  /// `from` to `to`, excluding the endpoints themselves. nullopt if the
  /// overlay is disconnected between them (should not happen for disjoint
  /// convex hulls).
  std::optional<std::vector<graph::NodeId>> waypoints(geom::Vec2 from, geom::Vec2 to) const;

  /// Euclidean length of the shortest overlay path (for analysis).
  double overlayDistance(geom::Vec2 from, geom::Vec2 to) const;

  const std::vector<graph::NodeId>& sites() const { return sites_; }
  std::size_t numPrecomputedEdges() const { return precomputedEdges_; }
  const geom::VisibilityContext& visibility() const { return vis_; }

 private:
  struct Query {
    graph::GeometricGraph g;  ///< sites + possibly from/to appended
    int fromIdx = -1;
    int toIdx = -1;
  };
  Query buildQueryGraph(geom::Vec2 from, geom::Vec2 to) const;
  void buildSiteEdges();

  std::vector<graph::NodeId> sites_;
  std::vector<geom::Vec2> sitePos_;
  geom::VisibilityContext vis_;
  EdgeMode edgeMode_;
  /// Site-to-site adjacency (visibility mode precomputes it; Delaunay mode
  /// re-triangulates per query because inserting s and t changes edges).
  std::vector<std::vector<int>> siteAdj_;
  /// Ring/hull consecutive edges that are always present.
  std::vector<std::pair<int, int>> backboneEdges_;
  /// Douglas-Peucker backbones may cut through their own hole (the
  /// tolerance allows chords across convex bumps), so they are
  /// visibility-filtered; hull/lch/ring backbones never cross their hole.
  bool filterBackbone_ = false;
  std::size_t precomputedEdges_ = 0;
};

}  // namespace hybrid::routing
