#include "routing/router.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace hybrid::routing {

std::vector<RouteResult> Router::routeBatch(std::span<const RoutePair> pairs,
                                            int threads) const {
  obs::ScopedSpan span("router.route_batch");
  std::vector<RouteResult> results(pairs.size());
  util::parallelChunks(pairs.size(), util::resolveThreads(threads),
                       [&](std::size_t begin, std::size_t end, unsigned) {
                         for (std::size_t i = begin; i < end; ++i) {
                           results[i] = route(pairs[i].source, pairs[i].target);
                         }
                       });
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("router.batches").add(1);
    reg.counter("router.batch_queries").add(static_cast<std::uint64_t>(pairs.size()));
  });
  return results;
}

}  // namespace hybrid::routing
