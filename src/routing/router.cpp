#include "routing/router.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace hybrid::routing {

namespace {

/// One query's result, padded to a full cache line: neighboring queries
/// are routinely served by different threads (the chunks are small on
/// purpose), and unpadded results would put several vector headers on one
/// line — every path append would then ping-pong that line between cores.
struct alignas(64) ResultSlot {
  RouteResult result;
};

/// Chunks this small still amortize the pool's task handout, and ~4 chunks
/// per thread let the dynamic handout absorb the wild per-case cost spread
/// of route() (a trivial adjacent-pair query vs a full bay-area walk).
constexpr std::size_t kMinQueriesPerChunk = 4;

}  // namespace

std::vector<RouteResult> Router::routeBatch(std::span<const RoutePair> pairs,
                                            int threads) const {
  obs::ScopedSpan span("router.route_batch");
  const std::size_t n = pairs.size();
  std::vector<RouteResult> results(n);
  const unsigned t = util::resolveThreads(threads);
  if (t <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) {
      results[i] = route(pairs[i].source, pairs[i].target);
    }
  } else {
    // Pre-sized per-query slots: workers write by pair index only, so the
    // output is identical to the serial loop at any thread count and no
    // shared container is ever grown under concurrency.
    std::vector<ResultSlot> slots(n);
    util::parallelTasks(n, t, kMinQueriesPerChunk,
                        [&](std::size_t begin, std::size_t end, unsigned) {
                          for (std::size_t i = begin; i < end; ++i) {
                            slots[i].result = route(pairs[i].source, pairs[i].target);
                          }
                        });
    for (std::size_t i = 0; i < n; ++i) results[i] = std::move(slots[i].result);
  }
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("router.batches").add(1);
    reg.counter("router.batch_queries").add(static_cast<std::uint64_t>(pairs.size()));
  });
  return results;
}

}  // namespace hybrid::routing
