#include "routing/router.hpp"

#include "util/parallel.hpp"

namespace hybrid::routing {

std::vector<RouteResult> Router::routeBatch(std::span<const RoutePair> pairs,
                                            int threads) const {
  std::vector<RouteResult> results(pairs.size());
  util::parallelChunks(pairs.size(), util::resolveThreads(threads),
                       [&](std::size_t begin, std::size_t end, unsigned) {
                         for (std::size_t i = begin; i < end; ++i) {
                           results[i] = route(pairs[i].source, pairs[i].target);
                         }
                       });
  return results;
}

}  // namespace hybrid::routing
