#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace hybrid::routing {

/// Outcome of one routing attempt. `path` always starts at the source and
/// lists every ad hoc hop taken; when `delivered` it ends at the target.
struct RouteResult {
  std::vector<graph::NodeId> path;
  bool delivered = false;
  /// Hole index blocking the corridor walk (Chew); -1 when not blocked or
  /// blocked by the outer face / an unmatched face.
  int blockedHole = -1;
  /// Number of times a global fallback (A* on the full graph) was needed.
  /// Zero in normal operation; nonzero values flag protocol gaps.
  int fallbacks = 0;
  /// Extreme points |E_route| traversed by the bay-area algorithm (§4.4);
  /// the paper's Lemma 4.19 bound is (2 + |E_route|) * 5.9.
  int bayExtremePoints = 0;
  /// Which case of the §4.3 analysis applied (0 = trivial/self/adjacent):
  /// 1 both outside hulls, 2 one endpoint inside a hull, 3/4 different
  /// hulls or bays, 5 same bay. Set by HybridRouter only.
  int protocolCase = 0;

  double length(const graph::GeometricGraph& g) const { return g.pathLength(path); }
  std::size_t hops() const { return path.empty() ? 0 : path.size() - 1; }
};

/// One source-target query of a batched routing request.
struct RoutePair {
  graph::NodeId source = -1;
  graph::NodeId target = -1;
};

/// Common interface for all routing strategies.
///
/// route() is const and must be safe to call concurrently: routers are
/// built once (preprocessing) and then serve queries from many threads.
/// Per-query state lives on the stack or in thread-local workspaces.
class Router {
 public:
  virtual ~Router() = default;
  virtual RouteResult route(graph::NodeId source, graph::NodeId target) const = 0;
  virtual std::string name() const = 0;

  /// Serves a batch of queries on `threads` workers of the process-wide
  /// ThreadPool (<= 0 means hardware concurrency). The batch is split into
  /// ~4x`threads` chunks (never below a minimum per-chunk query count) and
  /// handed out dynamically, so a straggler case cannot serialize the tail
  /// of the batch; each query writes a cache-line-padded slot indexed by
  /// pair position, so the output is identical to the serial loop
  /// `for (p : pairs) route(p.source, p.target)` at any thread count.
  std::vector<RouteResult> routeBatch(std::span<const RoutePair> pairs,
                                      int threads = 1) const;
};

}  // namespace hybrid::routing
