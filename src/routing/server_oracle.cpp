#include "routing/server_oracle.hpp"

#include "graph/shortest_path.hpp"

namespace hybrid::routing {

RouteResult ServerOracleRouter::route(graph::NodeId source, graph::NodeId target) const {
  RouteResult r;
  r.path = graph::astarPath(g_, source, target);
  if (r.path.empty()) r.path.push_back(source);
  r.delivered = !r.path.empty() && r.path.back() == target;
  return r;
}

}  // namespace hybrid::routing
