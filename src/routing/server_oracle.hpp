#pragma once

#include "routing/router.hpp"

namespace hybrid::routing {

/// The paper's §1 strawman: every node regularly uploads its position and
/// neighborhood to a server over long-range links; the server answers
/// next-hop queries with globally optimal paths. Routing quality is
/// optimal by construction — the point of comparing against it is the
/// *long-range* message bill, which the hybrid protocol avoids
/// (bench/e15_server_comparison).
class ServerOracleRouter : public Router {
 public:
  explicit ServerOracleRouter(const graph::GeometricGraph& udg) : g_(udg) {}

  RouteResult route(graph::NodeId source, graph::NodeId target) const override;
  std::string name() const override { return "server-oracle"; }

  /// Long-range messages for one position/neighborhood upload epoch:
  /// one per node (the paper: "all nodes regularly post their geographic
  /// position and the nodes within their communication range").
  long uploadMessagesPerEpoch() const { return static_cast<long>(g_.numNodes()); }
  /// Long-range words per epoch: position plus the neighbor list.
  long uploadWordsPerEpoch() const {
    return static_cast<long>(g_.numNodes()) * 3 + 2 * static_cast<long>(g_.numEdges());
  }
  /// Long-range messages per routed message: the query and the reply.
  long queryMessages() const { return 2; }

 private:
  const graph::GeometricGraph& g_;
};

}  // namespace hybrid::routing
