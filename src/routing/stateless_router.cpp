#include "routing/stateless_router.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "routing/hub_labels.hpp"

namespace hybrid::routing {

namespace {

#ifndef HYBRID_OBS_DISABLED
/// Registry handles resolved once; the forwarding loop only touches atomics.
struct FwdMetrics {
  obs::Counter& queries;
  obs::Counter& delivered;
  obs::Counter& failures;
  obs::Counter& hops;
  obs::Histogram& mergeLen;

  static FwdMetrics& get() {
    auto& reg = obs::Registry::global();
    static FwdMetrics m{reg.counter("fwd.queries"), reg.counter("fwd.delivered"),
                        reg.counter("fwd.failures"), reg.counter("fwd.hops"),
                        reg.histogram("fwd.merge_len", {4, 16, 64, 256, 1024, 4096})};
    return m;
  }
};
#endif

}  // namespace

StatelessRouter::StatelessRouter(const graph::GeometricGraph& g, unsigned threads) {
  const auto t0 = std::chrono::steady_clock::now();
  const graph::CsrAdjacency csr = graph::buildCsr(g);
  HubLabelOracle oracle;
  oracle.build(csr, threads);
  auto built = std::make_shared<NodeLabels>();
  built->build(oracle);
  labels_ = std::move(built);
  HYBRID_OBS_STMT(if (obs::enabled()) {
    const auto ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    auto& reg = obs::Registry::global();
    reg.gauge("fwd.labels.bytes").set(static_cast<double>(labels_->labelBytes()));
    reg.gauge("fwd.labels.bytes_per_node").set(labels_->bytesPerNode());
    reg.gauge("fwd.labels.max_label").set(static_cast<double>(labels_->maxLabelSize()));
    reg.gauge("fwd.labels.build_ms").set(ms);
  });
}

StatelessRouter::StatelessRouter(NodeLabels labels)
    : labels_(std::make_shared<NodeLabels>(std::move(labels))) {}

StatelessRouter::StatelessRouter(std::shared_ptr<const NodeLabels> labels)
    : labels_(std::move(labels)) {}

RouteResult StatelessRouter::route(graph::NodeId source, graph::NodeId target) const {
  RouteResult r;
  const int n = static_cast<int>(labels_->numNodes());
  if (source < 0 || source >= n || target < 0 || target >= n) return r;
  r.path.push_back(source);
  if (source == target) {
    r.delivered = true;
    HYBRID_OBS_STMT(if (obs::enabled()) {
      auto& m = FwdMetrics::get();
      m.queries.add(1);
      m.delivered.add(1);
    });
    return r;
  }
#ifndef HYBRID_OBS_DISABLED
  std::uint64_t mergeLen = 0;
#endif
  // Strictly decreasing merged distance bounds the walk by the node count;
  // the slack absorbs the final hop and makes the guard a clean-failure
  // path for corrupt labels (loops, dead next hops), never a hot one.
  std::size_t guard = labels_->numNodes() + 2;
  int v = source;
  while (v != target) {
    const NodeLabels::Hop hop = labels_->nextHop(v, target);
    HYBRID_OBS_STMT(mergeLen += labels_->view(v).size() + labels_->view(target).size());
    if (!hop.ok() || hop.next >= n || --guard == 0) {
      HYBRID_OBS_STMT(if (obs::enabled()) {
        auto& m = FwdMetrics::get();
        m.queries.add(1);
        m.failures.add(1);
        m.hops.add(r.path.size() - 1);
      });
      return r;  // disconnected pair or corrupt labels: clean not-delivered
    }
    v = hop.next;
    r.path.push_back(v);
  }
  r.delivered = true;
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& m = FwdMetrics::get();
    m.queries.add(1);
    m.delivered.add(1);
    m.hops.add(r.path.size() - 1);
    m.mergeLen.record(static_cast<double>(mergeLen));
  });
  return r;
}

}  // namespace hybrid::routing
