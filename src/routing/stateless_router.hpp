#pragma once

#include <memory>
#include <string>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "routing/node_labels.hpp"
#include "routing/router.hpp"

namespace hybrid::routing {

/// Stateless per-node label forwarding over the full ad hoc graph.
///
/// route() walks hop by hop: at each node it consults only that node's
/// immutable label view (plus the target's label — the "address" a real
/// deployment ships in the packet header), so a query touches no shared
/// mutable state whatsoever. routeBatch is embarrassingly parallel: any
/// node of a sharded serving tier could answer any hop of any query from
/// its own O(polylog) label slab, which is the architecture this router
/// models in-process.
///
/// The walked path realizes the exact label-oracle shortest distance (the
/// merged estimate drops by each hop's edge length — see NodeLabels), so
/// results match the centralized HubLabelOracle::path() in length; on hub
/// ties the two may pick different shortest paths of equal length. A hop
/// guard turns corrupt labels or forwarding loops into a clean
/// not-delivered result instead of an endless walk.
class StatelessRouter : public Router {
 public:
  /// Builds CSR + hub-label oracle + per-node labels for `g`'s nodes.
  /// Labels are byte-identical at any `threads`.
  explicit StatelessRouter(const graph::GeometricGraph& g, unsigned threads = 1);

  /// Serves from pre-built labels (e.g. shipped by the label-distribution
  /// protocol) without rebuilding anything.
  explicit StatelessRouter(NodeLabels labels);

  /// Adopts a shared immutable label slab without copying it: the
  /// snapshot-ownership path, where several serving epochs (or replicas)
  /// serve from one slab and the last owner retires it.
  explicit StatelessRouter(std::shared_ptr<const NodeLabels> labels);

  RouteResult route(graph::NodeId source, graph::NodeId target) const override;
  std::string name() const override { return "stateless-labels"; }

  const NodeLabels& labels() const { return *labels_; }
  /// Shared ownership of the slab, for snapshot plumbing.
  std::shared_ptr<const NodeLabels> labelsPtr() const { return labels_; }
  /// Test hook for injected-bug corruption (see NodeLabels). Only valid on
  /// routers that built (or were moved) their own slab; corrupting a slab
  /// adopted from another epoch would corrupt every sharer.
  NodeLabels& mutableLabelsForTest() { return const_cast<NodeLabels&>(*labels_); }

 private:
  std::shared_ptr<const NodeLabels> labels_;
};

}  // namespace hybrid::routing
