#include "routing/subdivision.hpp"

#include <algorithm>

#include "geom/polygon.hpp"

namespace hybrid::routing {

namespace {

// Canonical key of a face/hole cycle: the sorted node multiset.
std::vector<graph::NodeId> canonicalKey(std::vector<graph::NodeId> cycle) {
  std::sort(cycle.begin(), cycle.end());
  return cycle;
}

}  // namespace

PlanarSubdivision::PlanarSubdivision(const graph::GeometricGraph& ldel,
                                     const holes::HoleAnalysis& analysis,
                                     double radius)
    : augmented_(ldel) {
  // Close the outer-hole regions with the long hull edges (Def. 2.5).
  std::set<std::pair<graph::NodeId, graph::NodeId>> synthetic;
  const auto hullIdx = geom::convexHullIndices(ldel.positions());
  for (std::size_t i = 0; i < hullIdx.size(); ++i) {
    const graph::NodeId a = hullIdx[i];
    const graph::NodeId b = hullIdx[(i + 1) % hullIdx.size()];
    if (augmented_.edgeLength(a, b) > radius && !augmented_.hasEdge(a, b)) {
      augmented_.addEdge(a, b);
      synthetic.insert({std::min(a, b), std::max(a, b)});
    }
  }

  faces_ = graph::enumerateFaces(augmented_);
  nodeFaces_.assign(augmented_.numNodes(), {});
  walkable_.assign(faces_.size(), 0);
  faceHole_.assign(faces_.size(), -1);
  facePolys_.resize(faces_.size());

  std::map<std::vector<graph::NodeId>, int> holeByKey;
  for (std::size_t hi = 0; hi < analysis.holes.size(); ++hi) {
    holeByKey[canonicalKey(analysis.holes[hi].ring)] = static_cast<int>(hi);
  }

  for (std::size_t fi = 0; fi < faces_.size(); ++fi) {
    const auto& cycle = faces_[fi].cycle;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const graph::NodeId u = cycle[i];
      const graph::NodeId v = cycle[(i + 1) % cycle.size()];
      faceOfEdge_[{u, v}] = static_cast<int>(fi);
      auto& nf = nodeFaces_[static_cast<std::size_t>(u)];
      if (std::find(nf.begin(), nf.end(), static_cast<int>(fi)) == nf.end()) {
        nf.push_back(static_cast<int>(fi));
      }
    }
    std::vector<geom::Vec2> pts;
    pts.reserve(cycle.size());
    for (graph::NodeId v : cycle) pts.push_back(augmented_.position(v));
    facePolys_[fi] = geom::Polygon(std::move(pts));

    if (faces_[fi].outer) continue;
    // A face is walkable iff it is a triangle of real (non-synthetic)
    // communication edges.
    std::set<graph::NodeId> distinct(cycle.begin(), cycle.end());
    bool allReal = true;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      graph::NodeId a = cycle[i];
      graph::NodeId b = cycle[(i + 1) % cycle.size()];
      if (a > b) std::swap(a, b);
      if (synthetic.contains({a, b})) {
        allReal = false;
        break;
      }
    }
    if (distinct.size() == 3 && cycle.size() == 3 && allReal) {
      walkable_[fi] = 1;
    } else {
      const auto it = holeByKey.find(canonicalKey(cycle));
      if (it != holeByKey.end()) faceHole_[fi] = it->second;
    }
  }
}

int PlanarSubdivision::faceLeftOf(graph::NodeId u, graph::NodeId v) const {
  const auto it = faceOfEdge_.find({u, v});
  return it == faceOfEdge_.end() ? -1 : it->second;
}

int PlanarSubdivision::boundedFaceContaining(geom::Vec2 p) const {
  for (std::size_t fi = 0; fi < faces_.size(); ++fi) {
    if (faces_[fi].outer) continue;
    if (facePolys_[fi].containsStrict(p)) return static_cast<int>(fi);
  }
  return -1;
}

int PlanarSubdivision::incidentFaceContaining(graph::NodeId v, geom::Vec2 p) const {
  for (int fi : nodeFaces_[static_cast<std::size_t>(v)]) {
    if (faces_[static_cast<std::size_t>(fi)].outer) continue;
    if (facePolys_[static_cast<std::size_t>(fi)].containsStrict(p)) return fi;
  }
  return -1;
}

}  // namespace hybrid::routing
