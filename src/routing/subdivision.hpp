#pragma once

#include <map>
#include <set>
#include <vector>

#include "graph/graph.hpp"
#include "graph/planar_faces.hpp"
#include "holes/hole_detection.hpp"

namespace hybrid::routing {

/// Planar subdivision of the LDel^2 graph augmented with the long convex
/// hull edges of V (so that every point inside the hull of V lies in a
/// bounded face). Faces are classified as walkable triangles (all three
/// edges are real communication edges) or hole faces (radio holes and
/// outer holes); corridor routing walks triangles and stops at hole faces.
class PlanarSubdivision {
 public:
  PlanarSubdivision(const graph::GeometricGraph& ldel,
                    const holes::HoleAnalysis& analysis, double radius = 1.0);

  const graph::GeometricGraph& augmented() const { return augmented_; }
  const std::vector<graph::Face>& faces() const { return faces_; }

  /// Face on the left of the directed edge (u, v); -1 if unknown.
  int faceLeftOf(graph::NodeId u, graph::NodeId v) const;

  /// Faces incident to a node.
  const std::vector<int>& facesOfNode(graph::NodeId v) const {
    return nodeFaces_[static_cast<std::size_t>(v)];
  }

  bool isWalkable(int face) const { return walkable_[static_cast<std::size_t>(face)]; }
  bool isOuterFace(int face) const { return faces_[static_cast<std::size_t>(face)].outer; }

  /// Index into the hole analysis for a hole face; -1 otherwise.
  int holeOfFace(int face) const { return faceHole_[static_cast<std::size_t>(face)]; }

  /// The bounded face containing point p strictly in its interior, or -1.
  /// Linear scan; used for probes near a known node via facesOfNode.
  int boundedFaceContaining(geom::Vec2 p) const;

  /// Among the faces incident to `v`, the one whose interior contains `p`
  /// (p is expected to be a probe point just off `v`); -1 if none.
  int incidentFaceContaining(graph::NodeId v, geom::Vec2 p) const;

 private:
  graph::GeometricGraph augmented_;
  std::vector<graph::Face> faces_;
  std::map<std::pair<graph::NodeId, graph::NodeId>, int> faceOfEdge_;
  std::vector<std::vector<int>> nodeFaces_;
  std::vector<char> walkable_;
  std::vector<int> faceHole_;
  std::vector<geom::Polygon> facePolys_;
};

}  // namespace hybrid::routing
