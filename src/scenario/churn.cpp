#include "scenario/churn.hpp"

#include <algorithm>
#include <random>

namespace hybrid::scenario {

const char* updateKindName(UpdateKind kind) {
  switch (kind) {
    case UpdateKind::Join:
      return "join";
    case UpdateKind::Leave:
      return "leave";
    case UpdateKind::Move:
      return "move";
    case UpdateKind::ObstacleAdd:
      return "obstacle_add";
    case UpdateKind::ObstacleRemove:
      break;
  }
  return "obstacle_remove";
}

std::vector<std::vector<Update>> makeChurnTrace(const Scenario& initial,
                                                const ChurnParams& params) {
  // Shadow state the generator evolves optimistically: positions for move
  // targets and the obstacle count for removals. The service re-validates,
  // so divergence (rejected updates, connectivity evictions) is harmless.
  std::vector<geom::Vec2> pts = initial.points;
  std::size_t obstacles = initial.obstacles.size();

  double minX = 0.0, minY = 0.0, maxX = 1.0, maxY = 1.0;
  if (!pts.empty()) {
    minX = maxX = pts.front().x;
    minY = maxY = pts.front().y;
    for (const auto& p : pts) {
      minX = std::min(minX, p.x);
      maxX = std::max(maxX, p.x);
      minY = std::min(minY, p.y);
      maxY = std::max(maxY, p.y);
    }
  }

  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> step(-params.moveStep, params.moveStep);

  const double wJoin = std::max(0.0, params.joinWeight);
  const double wLeave = std::max(0.0, params.leaveWeight);
  const double wMove = std::max(0.0, params.moveWeight);
  const double wObs = std::max(0.0, params.obstacleWeight);
  const double total = wJoin + wLeave + wMove + wObs;

  std::vector<std::vector<Update>> trace;
  trace.reserve(static_cast<std::size_t>(std::max(0, params.epochs)));
  for (int e = 0; e < params.epochs; ++e) {
    std::vector<Update> batch;
    batch.reserve(static_cast<std::size_t>(std::max(0, params.updatesPerEpoch)));
    for (int i = 0; i < params.updatesPerEpoch; ++i) {
      if (pts.empty() || total <= 0.0) break;
      const auto pickNode = [&] {
        return static_cast<int>(rng() % pts.size());
      };
      Update u;
      const double coin = unit(rng) * total;
      if (coin < wJoin) {
        // Join near an existing node: keeps the newcomer inside radio
        // range often enough that joins actually stick.
        u.kind = UpdateKind::Join;
        const auto anchor = pts[static_cast<std::size_t>(pickNode())];
        u.pos = {anchor.x + step(rng), anchor.y + step(rng)};
        pts.push_back(u.pos);
      } else if (coin < wJoin + wLeave) {
        u.kind = UpdateKind::Leave;
        u.node = pickNode();
        pts.erase(pts.begin() + u.node);
      } else if (coin < wJoin + wLeave + wMove) {
        u.kind = UpdateKind::Move;
        u.node = pickNode();
        auto& p = pts[static_cast<std::size_t>(u.node)];
        u.pos = {p.x + step(rng), p.y + step(rng)};
        p = u.pos;
      } else if (obstacles == 0 || unit(rng) < 0.5) {
        u.kind = UpdateKind::ObstacleAdd;
        const auto c = pts[static_cast<std::size_t>(pickNode())];
        const double h = params.obstacleHalfSize;
        const double cx = std::clamp(c.x, minX, maxX);
        const double cy = std::clamp(c.y, minY, maxY);
        u.poly = {{cx - h, cy - h}, {cx + h, cy - h}, {cx + h, cy + h}, {cx - h, cy + h}};
        ++obstacles;
      } else {
        u.kind = UpdateKind::ObstacleRemove;
        u.obstacle = static_cast<int>(rng() % obstacles);
        --obstacles;
      }
      batch.push_back(std::move(u));
    }
    trace.push_back(std::move(batch));
  }
  return trace;
}

}  // namespace hybrid::scenario
