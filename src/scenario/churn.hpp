#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "scenario/generator.hpp"

namespace hybrid::scenario {

/// One mutation of a live deployment (node churn or an obstacle edit),
/// consumed by serve::RouteService. Node-addressed updates use the index
/// into the service's *current* point vector; the service re-validates
/// every update and rejects stale or invalid ones instead of guessing, so
/// a trace generated against an approximate view of the deployment is
/// still safe to apply.
enum class UpdateKind {
  Join,            ///< Add a node at `pos`.
  Leave,           ///< Remove node `node`.
  Move,            ///< Move node `node` to `pos`.
  ObstacleAdd,     ///< Add the polygon `poly`; covered nodes are evicted.
  ObstacleRemove,  ///< Remove obstacle `obstacle` (nodes do not return).
};

const char* updateKindName(UpdateKind kind);

struct Update {
  UpdateKind kind = UpdateKind::Move;
  int node = -1;                ///< Leave/Move: index into the current points.
  geom::Vec2 pos{};             ///< Join position / Move destination.
  std::vector<geom::Vec2> poly; ///< ObstacleAdd footprint (ccw vertices).
  int obstacle = -1;            ///< ObstacleRemove: index into current obstacles.
};

/// Knobs of the seeded churn-trace generator. Weights are relative odds of
/// each update kind; `moveStep` bounds the per-axis move distance, the
/// paper's bounded-movement-speed model (§7) that makes incremental epoch
/// repair worthwhile in the first place.
struct ChurnParams {
  std::uint64_t seed = 1;
  int epochs = 8;
  int updatesPerEpoch = 6;
  double joinWeight = 1.0;
  double leaveWeight = 1.0;
  double moveWeight = 6.0;
  double obstacleWeight = 0.5;  ///< Split evenly between add and remove.
  double moveStep = 0.3;        ///< Max per-axis move/join-jitter distance.
  double obstacleHalfSize = 0.6;  ///< Half-extent of added rectangle obstacles.
};

/// Deterministic churn trace: per-epoch update batches derived purely from
/// (initial, params) — same inputs, same trace, on every run and machine.
/// The generator applies its own optimistic bookkeeping (every update
/// assumed accepted) to keep node indexes mostly valid; the occasional
/// stale index that slips through is rejected by the service, which is
/// itself a path churn traces are meant to exercise.
std::vector<std::vector<Update>> makeChurnTrace(const Scenario& initial,
                                                const ChurnParams& params);

}  // namespace hybrid::scenario
