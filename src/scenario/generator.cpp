#include "scenario/generator.hpp"

#include <algorithm>
#include <cmath>

#include "delaunay/udg.hpp"
#include "geom/segment.hpp"

namespace hybrid::scenario {

namespace {

bool nearObstacle(geom::Vec2 p, const std::vector<geom::Polygon>& obstacles,
                  double clearance) {
  for (const auto& poly : obstacles) {
    geom::BBox box = poly.boundingBox();
    box.expand({box.lo.x - clearance, box.lo.y - clearance});
    box.expand({box.hi.x + clearance, box.hi.y + clearance});
    if (!box.contains(p)) continue;
    if (poly.contains(p)) return true;
    for (std::size_t i = 0; i < poly.size(); ++i) {
      if (geom::pointSegmentDistance(p, poly.edge(i)) < clearance) return true;
    }
  }
  return false;
}

}  // namespace

Scenario finalizeScenario(std::vector<geom::Vec2> pts,
                          std::vector<geom::Polygon> obstacles, double radius) {
  // Deduplicate (for generated clouds collisions are measure-zero, but
  // adversarial testkit generators hit them on purpose).
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

  // Keep the largest UDG component so the connectivity assumption holds.
  const auto udg = delaunay::buildUnitDiskGraph(pts, radius);
  int numComp = 0;
  const auto labels = udg.componentLabels(&numComp);
  if (numComp > 1) {
    std::vector<int> sizes(static_cast<std::size_t>(numComp), 0);
    for (int l : labels) ++sizes[static_cast<std::size_t>(l)];
    const int keep = static_cast<int>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
    std::vector<geom::Vec2> filtered;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (labels[i] == keep) filtered.push_back(pts[i]);
    }
    pts = std::move(filtered);
  }

  Scenario s;
  s.points = std::move(pts);
  s.obstacles = std::move(obstacles);
  s.radius = radius;
  return s;
}

Scenario makeScenario(const ScenarioParams& params) {
  std::mt19937 rng(params.seed);
  std::uniform_real_distribution<double> jit(-params.jitter * params.spacing,
                                             params.jitter * params.spacing);
  std::vector<geom::Vec2> pts;
  for (double y = params.spacing / 2.0; y < params.height; y += params.spacing) {
    for (double x = params.spacing / 2.0; x < params.width; x += params.spacing) {
      const geom::Vec2 p{x + jit(rng), y + jit(rng)};
      if (p.x < 0.0 || p.y < 0.0 || p.x > params.width || p.y > params.height) continue;
      if (nearObstacle(p, params.obstacles, params.clearance)) continue;
      pts.push_back(p);
    }
  }
  return finalizeScenario(std::move(pts), params.obstacles, params.radius);
}

ScenarioParams paramsForNodeCount(std::size_t n, unsigned seed, double spacing) {
  ScenarioParams p;
  p.spacing = spacing;
  p.seed = seed;
  const double side = std::sqrt(static_cast<double>(n)) * spacing;
  p.width = side;
  p.height = side;
  return p;
}

int stepMobility(std::vector<geom::Vec2>& points, const std::vector<geom::Polygon>& obstacles,
                 double width, double height, double maxStep, std::mt19937& rng,
                 double clearance) {
  std::uniform_real_distribution<double> step(-maxStep, maxStep);
  int moved = 0;
  for (auto& p : points) {
    const geom::Vec2 cand{p.x + step(rng), p.y + step(rng)};
    if (cand.x < 0.0 || cand.y < 0.0 || cand.x > width || cand.y > height) continue;
    if (nearObstacle(cand, obstacles, clearance)) continue;
    p = cand;
    ++moved;
  }
  return moved;
}

}  // namespace hybrid::scenario
