#pragma once

#include <random>
#include <vector>

#include "geom/polygon.hpp"
#include "geom/vec2.hpp"

namespace hybrid::scenario {

/// Parameters of a synthetic ad hoc deployment.
struct ScenarioParams {
  double width = 30.0;
  double height = 30.0;
  /// Grid spacing of node placement. Values <= radius / sqrt(2) keep a
  /// jitter-free grid connected; the default leaves margin for jitter.
  /// At the default spacing/jitter, interior Delaunay edges stay below the
  /// radius, so only genuine obstacles produce radio holes.
  double spacing = 0.5;
  /// Jitter as a fraction of the spacing (uniform in both axes).
  double jitter = 0.3;
  double radius = 1.0;        ///< Unit-disk transmission radius.
  double clearance = 0.05;    ///< Keep nodes this far from obstacle boundaries.
  unsigned seed = 1;
  std::vector<geom::Polygon> obstacles;  ///< Radio-hole causing obstacles.
};

/// A generated deployment: node positions plus the obstacles that shaped
/// them. The point set is guaranteed duplicate-free and UDG-connected
/// (smaller components are dropped).
struct Scenario {
  std::vector<geom::Vec2> points;
  std::vector<geom::Polygon> obstacles;
  double radius = 1.0;
};

/// Perturbed-grid deployment avoiding the obstacle interiors.
Scenario makeScenario(const ScenarioParams& params);

/// Post-processing shared by every scenario source (grid generator, testkit
/// adversarial generators, the shrinker): deduplicates the points and keeps
/// only the largest UDG component, so the result satisfies the paper's
/// connectivity assumption.
Scenario finalizeScenario(std::vector<geom::Vec2> points,
                          std::vector<geom::Polygon> obstacles, double radius);

/// Convenience: square deployment sized so that roughly `n` nodes survive
/// obstacle carving (before connectivity filtering).
ScenarioParams paramsForNodeCount(std::size_t n, unsigned seed = 1,
                                  double spacing = 0.5);

/// One step of the dynamic scenario (§6): every node makes a random move of
/// at most `maxStep`, rejected if it would enter an obstacle or leave the
/// deployment area. Returns the number of nodes that moved.
int stepMobility(std::vector<geom::Vec2>& points, const std::vector<geom::Polygon>& obstacles,
                 double width, double height, double maxStep, std::mt19937& rng,
                 double clearance = 0.05);

}  // namespace hybrid::scenario
