#include "scenario/shapes.hpp"

#include <cmath>
#include <numbers>

namespace hybrid::scenario {

geom::Polygon rectangleObstacle(geom::Vec2 lo, geom::Vec2 hi) {
  return geom::Polygon({{lo.x, lo.y}, {hi.x, lo.y}, {hi.x, hi.y}, {lo.x, hi.y}});
}

geom::Polygon regularPolygonObstacle(geom::Vec2 center, double circumradius, int k,
                                     double rotation) {
  std::vector<geom::Vec2> verts;
  verts.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const double a = rotation + 2.0 * std::numbers::pi * i / k;
    verts.push_back({center.x + circumradius * std::cos(a),
                     center.y + circumradius * std::sin(a)});
  }
  return geom::Polygon(std::move(verts));
}

geom::Polygon uShapeObstacle(geom::Vec2 c, double width, double height,
                             double wallThickness) {
  const double w2 = width / 2.0;
  const double h2 = height / 2.0;
  const double t = wallThickness;
  // Counter-clockwise outline of a U opening upward.
  return geom::Polygon({{c.x - w2, c.y - h2},
                        {c.x + w2, c.y - h2},
                        {c.x + w2, c.y + h2},
                        {c.x + w2 - t, c.y + h2},
                        {c.x + w2 - t, c.y - h2 + t},
                        {c.x - w2 + t, c.y - h2 + t},
                        {c.x - w2 + t, c.y + h2},
                        {c.x - w2, c.y + h2}});
}

geom::Polygon combObstacle(geom::Vec2 o, int teeth, double toothWidth, double gapWidth,
                           double depth, double barThickness) {
  // Trace the outline counter-clockwise: along the bottom of the bar, then
  // up and down each tooth from right to left.
  std::vector<geom::Vec2> v;
  const double period = toothWidth + gapWidth;
  const double right = o.x + teeth * period - gapWidth;
  v.push_back({o.x, o.y});
  v.push_back({right, o.y});
  for (int i = teeth - 1; i >= 0; --i) {
    const double x0 = o.x + i * period;
    const double x1 = x0 + toothWidth;
    v.push_back({x1, o.y + barThickness + depth});
    v.push_back({x0, o.y + barThickness + depth});
    if (i > 0) {
      v.push_back({x0, o.y + barThickness});
      v.push_back({x0 - gapWidth, o.y + barThickness});
    }
  }
  // The loop ends at the first tooth's top-left corner (o.x, top); the ring
  // closes back to the bottom-left origin implicitly.
  return geom::Polygon(std::move(v));
}

std::vector<geom::Polygon> cityBlocks(geom::Vec2 origin, int rows, int cols,
                                      double blockW, double blockH, double streetW) {
  std::vector<geom::Polygon> out;
  out.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x = origin.x + c * (blockW + streetW);
      const double y = origin.y + r * (blockH + streetW);
      out.push_back(rectangleObstacle({x, y}, {x + blockW, y + blockH}));
    }
  }
  return out;
}

}  // namespace hybrid::scenario
