#include "scenario/shapes.hpp"

#include <cmath>
#include <numbers>

namespace hybrid::scenario {

geom::Polygon rectangleObstacle(geom::Vec2 lo, geom::Vec2 hi) {
  return geom::Polygon({{lo.x, lo.y}, {hi.x, lo.y}, {hi.x, hi.y}, {lo.x, hi.y}});
}

geom::Polygon regularPolygonObstacle(geom::Vec2 center, double circumradius, int k,
                                     double rotation) {
  std::vector<geom::Vec2> verts;
  verts.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const double a = rotation + 2.0 * std::numbers::pi * i / k;
    verts.push_back({center.x + circumradius * std::cos(a),
                     center.y + circumradius * std::sin(a)});
  }
  return geom::Polygon(std::move(verts));
}

geom::Polygon uShapeObstacle(geom::Vec2 c, double width, double height,
                             double wallThickness) {
  const double w2 = width / 2.0;
  const double h2 = height / 2.0;
  const double t = wallThickness;
  // Counter-clockwise outline of a U opening upward.
  return geom::Polygon({{c.x - w2, c.y - h2},
                        {c.x + w2, c.y - h2},
                        {c.x + w2, c.y + h2},
                        {c.x + w2 - t, c.y + h2},
                        {c.x + w2 - t, c.y - h2 + t},
                        {c.x - w2 + t, c.y - h2 + t},
                        {c.x - w2 + t, c.y + h2},
                        {c.x - w2, c.y + h2}});
}

geom::Polygon combObstacle(geom::Vec2 o, int teeth, double toothWidth, double gapWidth,
                           double depth, double barThickness) {
  // Trace the outline counter-clockwise: along the bottom of the bar, then
  // up and down each tooth from right to left.
  std::vector<geom::Vec2> v;
  const double period = toothWidth + gapWidth;
  const double right = o.x + teeth * period - gapWidth;
  v.push_back({o.x, o.y});
  v.push_back({right, o.y});
  for (int i = teeth - 1; i >= 0; --i) {
    const double x0 = o.x + i * period;
    const double x1 = x0 + toothWidth;
    v.push_back({x1, o.y + barThickness + depth});
    v.push_back({x0, o.y + barThickness + depth});
    if (i > 0) {
      v.push_back({x0, o.y + barThickness});
      v.push_back({x0 - gapWidth, o.y + barThickness});
    }
  }
  // The loop ends at the first tooth's top-left corner (o.x, top); the ring
  // closes back to the bottom-left origin implicitly.
  return geom::Polygon(std::move(v));
}

std::vector<geom::Polygon> spiralWalls(geom::Vec2 center, int turns,
                                       double corridorWidth, double wallThickness) {
  // Rectangular spiral wall, one axis-aligned rectangle per leg (rectangles
  // overlap at the joints, which is fine: obstacles compose as a set). A
  // node near the spiral's center must travel the whole unrolled corridor
  // to escape, so local routing pays the full spiral length while the
  // straight-line distance stays tiny — the worst-case shape for
  // competitiveness claims.
  const double pitch = corridorWidth + wallThickness;
  const double h = wallThickness / 2.0;
  const geom::Vec2 dirs[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  std::vector<geom::Polygon> walls;
  geom::Vec2 p = center;
  for (int leg = 0; leg < 2 * turns; ++leg) {
    // Leg lengths 1, 1, 2, 2, 3, 3, ... pitches; directions E, N, W, S.
    const double len = (1 + leg / 2) * pitch;
    const geom::Vec2 d = dirs[leg % 4];
    const geom::Vec2 q{p.x + d.x * len, p.y + d.y * len};
    const geom::Vec2 lo{std::min(p.x, q.x) - h, std::min(p.y, q.y) - h};
    const geom::Vec2 hi{std::max(p.x, q.x) + h, std::max(p.y, q.y) + h};
    walls.push_back(rectangleObstacle(lo, hi));
    p = q;
  }
  return walls;
}

std::vector<geom::Polygon> cityBlocks(geom::Vec2 origin, int rows, int cols,
                                      double blockW, double blockH, double streetW) {
  std::vector<geom::Polygon> out;
  out.reserve(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x = origin.x + c * (blockW + streetW);
      const double y = origin.y + r * (blockH + streetW);
      out.push_back(rectangleObstacle({x, y}, {x + blockW, y + blockH}));
    }
  }
  return out;
}

}  // namespace hybrid::scenario
