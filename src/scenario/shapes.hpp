#pragma once

#include <vector>

#include "geom/polygon.hpp"

namespace hybrid::scenario {

/// Axis-aligned rectangular obstacle.
geom::Polygon rectangleObstacle(geom::Vec2 lo, geom::Vec2 hi);

/// Regular k-gon obstacle (convex), rotated by `rotation` radians.
geom::Polygon regularPolygonObstacle(geom::Vec2 center, double circumradius, int k,
                                     double rotation = 0.0);

/// U-shaped (concave) obstacle opening upward: outer box minus an inner
/// slot. Produces a deep bay inside the hole's convex hull — the shape that
/// exercises the paper's bay-area routing (§4.4).
geom::Polygon uShapeObstacle(geom::Vec2 center, double width, double height,
                             double wallThickness);

/// Comb/maze obstacle: a horizontal bar with `teeth` long prongs pointing
/// up, forming deep corridors. Local (GOAFR-style) routing must walk the
/// full prong depth; this realizes the lower-bound construction the paper
/// cites (§1.4). `depth` is the prong length.
geom::Polygon combObstacle(geom::Vec2 origin, int teeth, double toothWidth,
                           double gapWidth, double depth, double barThickness);

/// Rectangular spiral wall, one axis-aligned rectangle per leg. Escaping
/// from near the center requires traversing the whole unrolled corridor —
/// the adversarial shape for competitive-ratio fuzzing (testkit).
std::vector<geom::Polygon> spiralWalls(geom::Vec2 center, int turns,
                                       double corridorWidth, double wallThickness);

/// Convex obstacles laid out like city blocks: `rows` x `cols` rectangles
/// of size blockW x blockH separated by streets of width streetW, starting
/// at `origin`.
std::vector<geom::Polygon> cityBlocks(geom::Vec2 origin, int rows, int cols,
                                      double blockW, double blockH, double streetW);

}  // namespace hybrid::scenario
