#include "serve/route_service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "delaunay/udg.hpp"
#include "obs/metrics.hpp"
#include "protocols/incremental.hpp"

namespace hybrid::serve {

namespace {

bool insideAnyObstacle(geom::Vec2 p, const std::vector<geom::Polygon>& obstacles) {
  for (const auto& poly : obstacles) {
    if (!poly.boundingBox().contains(p)) continue;
    if (poly.contains(p)) return true;
  }
  return false;
}

bool duplicatesPoint(geom::Vec2 p, const std::vector<geom::Vec2>& points, int exceptIndex) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (static_cast<int>(i) == exceptIndex) continue;
    if (points[i] == p) return true;
  }
  return false;
}

/// finalizeScenario's largest-component rule, but order-preserving: node
/// ids are indexes into the point vector, so the service must not re-sort
/// points the way the generator does — surviving nodes keep their relative
/// order and readers of the previous epoch can still interpret most ids.
int keepLargestComponent(std::vector<geom::Vec2>& points, double radius) {
  if (points.empty()) return 0;
  const auto udg = delaunay::buildUnitDiskGraph(points, radius);
  int numComp = 0;
  const auto labels = udg.componentLabels(&numComp);
  if (numComp <= 1) return 0;
  std::vector<int> sizes(static_cast<std::size_t>(numComp), 0);
  for (int l : labels) ++sizes[static_cast<std::size_t>(l)];
  const int keep =
      static_cast<int>(std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<geom::Vec2> filtered;
  filtered.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (labels[i] == keep) filtered.push_back(points[i]);
  }
  const int dropped = static_cast<int>(points.size() - filtered.size());
  points = std::move(filtered);
  return dropped;
}

/// Boundary rings as order-independent position sets. Positions rather
/// than node ids: ids shift when the point vector changes, positions only
/// change when the ring genuinely deformed.
std::vector<std::vector<geom::Vec2>> ringPositionSets(const core::HybridNetwork& net) {
  std::vector<std::vector<geom::Vec2>> out;
  for (const auto& ring : protocols::boundaryRings(net)) {
    std::vector<geom::Vec2> pos;
    pos.reserve(ring.size());
    for (int v : ring) pos.push_back(net.ldel().position(v));
    std::sort(pos.begin(), pos.end());
    out.push_back(std::move(pos));
  }
  return out;
}

}  // namespace

const char* epochBuildName(EpochBuild build) {
  switch (build) {
    case EpochBuild::Reused:
      return "reused";
    case EpochBuild::Incremental:
      return "incremental";
    case EpochBuild::Full:
      break;
  }
  return "full";
}

Snapshot::~Snapshot() {
  if (!live_) return;
  const long remaining = live_->fetch_sub(1, std::memory_order_relaxed) - 1;
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("serve.snapshots.retired").add();
    reg.gauge("serve.snapshots.live").set(static_cast<double>(remaining));
  });
}

RouteService::RouteService(scenario::Scenario initial, ServiceOptions options)
    : options_(std::move(options)),
      live_(std::make_shared<std::atomic<long>>(0)),
      stream_(options_.updateFaults) {
  // A default-constructed radio model follows the scenario; explicitly
  // configured radii (QUDG studies) are the caller's responsibility.
  if (options_.ldel.radius == delaunay::LDelOptions{}.radius &&
      options_.ldel.reliableRadius == delaunay::LDelOptions{}.reliableRadius) {
    options_.ldel.radius = initial.radius;
    options_.ldel.reliableRadius = initial.radius;
  }
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = 0;
  snap->net = std::make_shared<core::HybridNetwork>(initial.points, options_.ldel,
                                                    options_.router, nullptr);
  snap->scenario = std::move(initial);
  snap->build = EpochBuild::Full;
  snap->live_ = live_;
  live_->fetch_add(1, std::memory_order_relaxed);
  current_ = std::move(snap);
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.gauge("serve.epoch").set(0.0);
    reg.gauge("serve.snapshots.live").set(1.0);
  });
}

std::shared_ptr<const Snapshot> RouteService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapMu_);
  return current_;
}

std::vector<routing::RouteResult> RouteService::routeBatch(
    std::span<const routing::RoutePair> pairs, int threads) const {
  const auto snap = snapshot();
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.counter("serve.batches").add();
    reg.counter("serve.queries").add(pairs.size());
  });
  return snap->net->routeBatch(pairs, threads);
}

void RouteService::enqueue(scenario::Update update) {
  std::lock_guard<std::mutex> lock(queueMu_);
  pending_.push_back(std::move(update));
}

void RouteService::enqueue(std::vector<scenario::Update> updates) {
  std::lock_guard<std::mutex> lock(queueMu_);
  for (auto& u : updates) pending_.push_back(std::move(u));
}

std::size_t RouteService::pendingUpdates() const {
  std::lock_guard<std::mutex> lock(queueMu_);
  return pending_.size();
}

void RouteService::applyOne(const scenario::Update& update, scenario::Scenario& scenario,
                            EpochStats& stats) const {
  auto& pts = scenario.points;
  switch (update.kind) {
    case scenario::UpdateKind::Join: {
      if (insideAnyObstacle(update.pos, scenario.obstacles) ||
          duplicatesPoint(update.pos, pts, -1)) {
        ++stats.rejected;
        return;
      }
      pts.push_back(update.pos);
      ++stats.applied;
      return;
    }
    case scenario::UpdateKind::Leave: {
      if (update.node < 0 || update.node >= static_cast<int>(pts.size()) ||
          pts.size() <= options_.minNodes) {
        ++stats.rejected;
        return;
      }
      pts.erase(pts.begin() + update.node);
      ++stats.applied;
      return;
    }
    case scenario::UpdateKind::Move: {
      if (update.node < 0 || update.node >= static_cast<int>(pts.size()) ||
          insideAnyObstacle(update.pos, scenario.obstacles) ||
          duplicatesPoint(update.pos, pts, update.node)) {
        ++stats.rejected;
        return;
      }
      pts[static_cast<std::size_t>(update.node)] = update.pos;
      ++stats.applied;
      return;
    }
    case scenario::UpdateKind::ObstacleAdd: {
      if (update.poly.size() < 3) {
        ++stats.rejected;
        return;
      }
      geom::Polygon poly(update.poly);
      if (poly.area() <= 0.0) {
        ++stats.rejected;
        return;
      }
      if (!poly.isCounterClockwise()) poly.reverse();
      std::size_t covered = 0;
      for (const auto& p : pts) {
        if (poly.contains(p)) ++covered;
      }
      if (pts.size() - covered < options_.minNodes) {
        ++stats.rejected;
        return;
      }
      if (covered > 0) {
        std::erase_if(pts, [&](geom::Vec2 p) { return poly.contains(p); });
        stats.evicted += static_cast<int>(covered);
      }
      scenario.obstacles.push_back(std::move(poly));
      ++stats.applied;
      return;
    }
    case scenario::UpdateKind::ObstacleRemove: {
      if (update.obstacle < 0 ||
          update.obstacle >= static_cast<int>(scenario.obstacles.size())) {
        ++stats.rejected;
        return;
      }
      scenario.obstacles.erase(scenario.obstacles.begin() + update.obstacle);
      ++stats.applied;
      return;
    }
  }
  ++stats.rejected;
}

void RouteService::publish(std::shared_ptr<const Snapshot> next, EpochStats& stats) {
  {
    std::lock_guard<std::mutex> lock(snapMu_);
    // Pins beyond the service's own reference = readers still holding the
    // outgoing epoch at swap time (racy by nature; a load-shedding signal,
    // not an exact count).
    stats.readerPins =
        current_.use_count() > 1 ? static_cast<std::size_t>(current_.use_count() - 1) : 0;
    current_ = std::move(next);
    epoch_.store(stats.epoch, std::memory_order_release);
  }
  HYBRID_OBS_STMT(if (obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.gauge("serve.epoch").set(static_cast<double>(stats.epoch));
    reg.gauge("serve.swap_ms").set(stats.swapMs);
    reg.gauge("serve.snapshots.live").set(
        static_cast<double>(live_->load(std::memory_order_relaxed)));
    reg.histogram("serve.reader_pins", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})
        .record(static_cast<double>(stats.readerPins));
    reg.counter(std::string("serve.rebuilds.") + epochBuildName(stats.build)).add();
    reg.counter("serve.updates.applied").add(static_cast<std::uint64_t>(stats.applied));
    reg.counter("serve.updates.rejected").add(static_cast<std::uint64_t>(stats.rejected));
    reg.counter("serve.updates.evicted").add(static_cast<std::uint64_t>(stats.evicted));
  });
}

EpochStats RouteService::applyUpdates() {
  const auto t0 = std::chrono::steady_clock::now();
  EpochStats stats;
  stats.epoch = epoch_.load(std::memory_order_relaxed) + 1;

  std::vector<scenario::Update> batch;
  {
    std::lock_guard<std::mutex> lock(queueMu_);
    const std::size_t take = std::min(options_.maxUpdatesPerEpoch, pending_.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  stats.offered = static_cast<int>(batch.size());

  auto arrived = stream_.filter(static_cast<int>(stats.epoch), std::move(batch));
  stats.arrived = static_cast<int>(arrived.size());

  const auto prev = snapshot();
  scenario::Scenario next = prev->scenario;
  for (const auto& u : arrived) applyOne(u, next, stats);
  if (next.points != prev->scenario.points) {
    stats.evicted += keepLargestComponent(next.points, next.radius);
  }

  auto snap = std::make_shared<Snapshot>();
  snap->epoch = stats.epoch;
  if (next.points == prev->scenario.points) {
    // Same topology (the point set is the only network build input), so
    // the previous epoch's network is provably identical — republish it.
    snap->net = prev->net;
    snap->build = EpochBuild::Reused;
  } else {
    snap->net = std::make_shared<core::HybridNetwork>(next.points, options_.ldel,
                                                      options_.router, &prev->net->router());
    snap->build = snap->net->router().adoptedDonorOverlay() ? EpochBuild::Incremental
                                                            : EpochBuild::Full;
  }
  stats.build = snap->build;
  stats.nodes = next.points.size();
  snap->scenario = std::move(next);
  snap->live_ = live_;
  live_->fetch_add(1, std::memory_order_relaxed);

  if (snap->build == EpochBuild::Reused) {
    stats.totalRings = 0;
    stats.changedRings = 0;
  } else {
    // E12-style membership diff: rings whose node *positions* changed.
    const auto prevRings = ringPositionSets(*prev->net);
    const auto curRings = ringPositionSets(*snap->net);
    stats.totalRings = static_cast<int>(curRings.size());
    for (const auto& ring : curRings) {
      if (std::find(prevRings.begin(), prevRings.end(), ring) == prevRings.end()) {
        ++stats.changedRings;
      }
    }
  }

  switch (snap->build) {
    case EpochBuild::Reused:
      ++reusedEpochs_;
      break;
    case EpochBuild::Incremental:
      ++incrementalRebuilds_;
      break;
    case EpochBuild::Full:
      ++fullRebuilds_;
      break;
  }

  stats.swapMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  publish(std::move(snap), stats);
  history_.push_back(stats);
  return stats;
}

bool RouteService::drainOnce() {
  if (pendingUpdates() == 0 && stream_.inFlight() == 0) return false;
  applyUpdates();
  return true;
}

}  // namespace hybrid::serve
