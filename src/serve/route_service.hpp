#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/hybrid_network.hpp"
#include "scenario/churn.hpp"
#include "serve/update_stream.hpp"

namespace hybrid::serve {

/// How an epoch's network came to be (cheapest first). The service only
/// ever reuses state whose build inputs are verifiably unchanged, so every
/// tier serves answers bit-identical to a fresh build on the same
/// topology — "incremental" trades build work, never correctness.
enum class EpochBuild {
  Reused,       ///< Point set unchanged: previous epoch's network republished.
  Incremental,  ///< Rebuilt, but the overlay slab was adopted from the
                ///< previous epoch (identical overlay plan — see
                ///< routing::OverlayPlan).
  Full,         ///< Rebuilt from scratch; the loud tier worth watching.
};

const char* epochBuildName(EpochBuild build);

/// One published epoch: an immutable scenario + network pair that readers
/// pin with shared_ptr and release whenever they finish — RCU with
/// reference counting standing in for grace periods. A snapshot retires
/// (destructor runs, `serve.snapshots.retired` ticks) when its last
/// reader drains; the service never blocks on old epochs.
struct Snapshot {
  std::uint64_t epoch = 0;
  scenario::Scenario scenario;
  std::shared_ptr<const core::HybridNetwork> net;
  EpochBuild build = EpochBuild::Full;

  ~Snapshot();

 private:
  friend class RouteService;
  std::shared_ptr<std::atomic<long>> live_;  ///< Service's live-snapshot count.
};

/// What one applyUpdates() epoch did, in the order things happened.
struct EpochStats {
  std::uint64_t epoch = 0;
  EpochBuild build = EpochBuild::Full;
  int offered = 0;   ///< Updates popped from the queue this epoch.
  int arrived = 0;   ///< After the fault filter (dups in, drops/delays out).
  int applied = 0;
  int rejected = 0;  ///< Stale index / duplicate point / minNodes floor / ...
  int evicted = 0;   ///< Nodes removed by obstacles or the connectivity filter.
  int totalRings = 0;
  int changedRings = 0;  ///< E12-style boundary-ring membership diff vs prev.
  double swapMs = 0.0;   ///< Build + publish wall time.
  std::size_t nodes = 0;
  std::size_t readerPins = 0;  ///< References on the outgoing snapshot at swap.
};

struct ServiceOptions {
  delaunay::LDelOptions ldel;      ///< Radio model. A default-constructed value
                                   ///< adopts the initial scenario's radius.
  routing::HybridOptions router;   ///< Router/overlay configuration.
  std::size_t maxUpdatesPerEpoch = 64;  ///< Queue drain bound per epoch.
  std::size_t minNodes = 8;        ///< Floor below which removals are rejected.
  sim::FaultConfig updateFaults;   ///< Fault injection on the update stream.
};

/// Long-running serving loop over HybridNetwork: concurrent readers route
/// against an immutable epoch snapshot while a single updater applies a
/// bounded batch of churn updates, rebuilds what actually changed and
/// publishes the next epoch with an atomic pointer swap.
///
/// Threading contract: snapshot(), routeBatch() and epoch() are safe from
/// any number of threads, concurrently with one updater thread calling
/// enqueue()/applyUpdates()/drainOnce(). Updater-side accessors
/// (history(), streamStats(), pending inspection) belong to the updater
/// thread. Two threads must not run applyUpdates() concurrently.
///
/// Correctness contract: every epoch's routeBatch() answers are
/// bit-identical to a freshly built HybridNetwork over that epoch's point
/// set at any thread count (the churn_serving oracle). Incremental repair
/// therefore means *verified-input reuse*: the point set didn't change
/// (epoch republished) or the overlay build inputs didn't change (overlay
/// slab adopted) — never approximate patching.
class RouteService {
 public:
  explicit RouteService(scenario::Scenario initial, ServiceOptions options = {});

  /// Pins the current epoch. Hold the pointer for as long as the epoch is
  /// needed; dropping it is what lets old epochs retire.
  std::shared_ptr<const Snapshot> snapshot() const;

  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Serves one batch against the current epoch (pins it internally, so a
  /// concurrent swap cannot pull the network out from under the batch).
  std::vector<routing::RouteResult> routeBatch(std::span<const routing::RoutePair> pairs,
                                               int threads = 1) const;

  void enqueue(scenario::Update update);
  void enqueue(std::vector<scenario::Update> updates);
  std::size_t pendingUpdates() const;

  /// Applies one epoch's worth of updates (up to maxUpdatesPerEpoch through
  /// the fault filter), builds the next snapshot and publishes it. Always
  /// advances the epoch, even when everything was rejected — an empty epoch
  /// is a Reused republish. Updater thread only.
  EpochStats applyUpdates();

  /// applyUpdates() only if updates are pending or delayed in the fault
  /// filter; returns whether an epoch was published. Updater thread only.
  bool drainOnce();

  /// Per-epoch stats since construction (epoch 0 excluded). Updater only.
  const std::vector<EpochStats>& history() const { return history_; }
  const StreamStats& streamStats() const { return stream_.stats(); }

  /// Snapshots not yet retired (current one included).
  long liveSnapshots() const { return live_->load(std::memory_order_relaxed); }
  std::uint64_t fullRebuilds() const { return fullRebuilds_; }
  std::uint64_t incrementalRebuilds() const { return incrementalRebuilds_; }
  std::uint64_t reusedEpochs() const { return reusedEpochs_; }

  const ServiceOptions& options() const { return options_; }

 private:
  void applyOne(const scenario::Update& update, scenario::Scenario& scenario,
                EpochStats& stats) const;
  void publish(std::shared_ptr<const Snapshot> next, EpochStats& stats);

  ServiceOptions options_;
  std::shared_ptr<std::atomic<long>> live_;

  mutable std::mutex snapMu_;               ///< Guards current_.
  std::shared_ptr<const Snapshot> current_;  // Immutable once published.
  std::atomic<std::uint64_t> epoch_{0};

  mutable std::mutex queueMu_;  ///< Guards pending_.
  std::deque<scenario::Update> pending_;

  // Updater-thread state.
  FaultyUpdateStream stream_;
  std::vector<EpochStats> history_;
  std::uint64_t fullRebuilds_ = 0;
  std::uint64_t incrementalRebuilds_ = 0;
  std::uint64_t reusedEpochs_ = 0;
};

}  // namespace hybrid::serve
