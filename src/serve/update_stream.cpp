#include "serve/update_stream.hpp"

#include <algorithm>

#include "sim/message.hpp"

namespace hybrid::serve {

std::vector<scenario::Update> FaultyUpdateStream::filter(int epoch,
                                                         std::vector<scenario::Update> incoming) {
  stats_.offered += incoming.size();
  if (!plan_.active()) {
    stats_.delivered += incoming.size();
    return incoming;
  }

  std::vector<scenario::Update> arrived;
  arrived.reserve(incoming.size() + delayed_.size());

  // Expired delays first, in deferral order. stable_partition keeps the
  // not-yet-due remainder ordered too, so later epochs stay deterministic.
  const auto due = std::stable_partition(delayed_.begin(), delayed_.end(),
                                         [&](const Delayed& d) { return d.dueEpoch <= epoch; });
  for (auto it = delayed_.begin(); it != due; ++it) {
    arrived.push_back(std::move(it->update));
    ++stats_.delivered;
  }
  delayed_.erase(delayed_.begin(), due);

  // The fault layer keys on (round, index, link); updates are not simulator
  // messages, so a stand-in ad hoc message carries the link tag.
  sim::Message probe;
  probe.link = sim::Link::AdHoc;
  for (std::size_t i = 0; i < incoming.size(); ++i) {
    int delayRounds = 0;
    switch (plan_.decide(epoch, i, probe, &delayRounds)) {
      case sim::FaultAction::Drop:
        ++stats_.dropped;
        break;
      case sim::FaultAction::Duplicate:
        arrived.push_back(incoming[i]);
        arrived.push_back(std::move(incoming[i]));
        stats_.delivered += 2;
        ++stats_.duplicated;
        break;
      case sim::FaultAction::Delay:
        delayed_.push_back({epoch + delayRounds, std::move(incoming[i])});
        ++stats_.delayed;
        break;
      case sim::FaultAction::Deliver:
        arrived.push_back(std::move(incoming[i]));
        ++stats_.delivered;
        break;
    }
  }
  return arrived;
}

}  // namespace hybrid::serve
