#pragma once

#include <cstdint>
#include <vector>

#include "scenario/churn.hpp"
#include "sim/fault_plan.hpp"

namespace hybrid::serve {

/// Tally of what the fault filter did to the update stream so far.
struct StreamStats {
  std::uint64_t offered = 0;     ///< Updates pushed into the filter.
  std::uint64_t delivered = 0;   ///< Updates handed to the service (incl. dups).
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;  ///< Extra deliveries caused by duplication.
  std::uint64_t delayed = 0;     ///< Updates deferred to a later epoch.

  bool operator==(const StreamStats&) const = default;
};

/// Deterministic fault injection for the update stream, reusing the
/// simulator's seeded fault layer with epoch standing in for the delivery
/// round and the update's position in its batch for the send index: the
/// same (config.seed, epoch, index) always yields the same drop /
/// duplicate / delay decision, so a faulty serving run is exactly
/// reproducible. Only the ad hoc knobs of sim::FaultConfig apply
/// (adHocDrop / adHocDuplicate / adHocDelay / maxDelayRounds); crashes and
/// blackouts are round-scoped simulator concepts with no stream analogue.
///
/// A default (inactive) config passes every update through untouched.
class FaultyUpdateStream {
 public:
  FaultyUpdateStream() = default;
  explicit FaultyUpdateStream(const sim::FaultConfig& config) : plan_(config) {}

  bool active() const { return plan_.active(); }

  /// Filters the batch offered at `epoch`. Returns the updates that
  /// actually arrive: first any earlier updates whose delay expires this
  /// epoch (in the order they were deferred), then the surviving updates
  /// of `incoming` in offer order, with duplicated updates appearing
  /// twice back to back — mirroring the simulator's delivery order.
  std::vector<scenario::Update> filter(int epoch, std::vector<scenario::Update> incoming);

  /// Updates still in flight (delayed past the last filtered epoch).
  std::size_t inFlight() const { return delayed_.size(); }

  const StreamStats& stats() const { return stats_; }

 private:
  struct Delayed {
    int dueEpoch = 0;
    scenario::Update update;
  };

  sim::FaultPlan plan_;
  std::vector<Delayed> delayed_;
  StreamStats stats_;
};

}  // namespace hybrid::serve
