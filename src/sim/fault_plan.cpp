#include "sim/fault_plan.hpp"

#include "sim/simulator.hpp"

namespace hybrid::sim {

namespace {

// splitmix64: a 64-bit seed plus a stream position is enough entropy for
// per-message coins, and it has no sequential state to corrupt replay.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t messageWord(std::uint64_t seed, int round, std::size_t index) {
  return mix64(seed ^ mix64(static_cast<std::uint64_t>(round)) ^
               mix64(0x51ebULL + static_cast<std::uint64_t>(index)));
}

double toUnit(std::uint64_t u) {
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan::FaultPlan(FaultConfig config) : config_(std::move(config)) {
  active_ = config_.adHocDrop > 0.0 || config_.adHocDuplicate > 0.0 ||
            config_.adHocDelay > 0.0 || config_.longRangeDrop > 0.0 ||
            !config_.crashes.empty() || !config_.blackouts.empty();
}

bool FaultPlan::crashed(int node, int round) const {
  for (const auto& c : config_.crashes) {
    if (c.node == node && round >= c.fromRound && round < c.toRound) return true;
  }
  return false;
}

bool FaultPlan::blackedOut(int round) const {
  for (const auto& b : config_.blackouts) {
    if (round >= b.fromRound && round < b.toRound) return true;
  }
  return false;
}

FaultAction FaultPlan::decide(int round, std::size_t index, const Message& m,
                              int* delayRounds) const {
  const std::uint64_t word = messageWord(config_.seed, round, index);
  const double u = toUnit(word);
  if (m.link == Link::LongRange) {
    return u < config_.longRangeDrop ? FaultAction::Drop : FaultAction::Deliver;
  }
  if (u < config_.adHocDrop) return FaultAction::Drop;
  if (u < config_.adHocDrop + config_.adHocDuplicate) return FaultAction::Duplicate;
  if (u < config_.adHocDrop + config_.adHocDuplicate + config_.adHocDelay) {
    const int span = config_.maxDelayRounds < 1 ? 1 : config_.maxDelayRounds;
    if (delayRounds != nullptr) {
      *delayRounds = 1 + static_cast<int>(mix64(word) % static_cast<std::uint64_t>(span));
    }
    return FaultAction::Delay;
  }
  return FaultAction::Deliver;
}

}  // namespace hybrid::sim
