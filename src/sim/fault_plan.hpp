#pragma once

#include <cstdint>
#include <vector>

namespace hybrid::sim {

struct Message;

/// A node is down during rounds [fromRound, toRound): it neither processes
/// its mailbox nor runs onRoundEnd, and messages addressed to it are lost.
struct CrashInterval {
  int node = -1;
  int fromRound = 0;
  int toRound = 0;
};

/// The long-range channel is unavailable during rounds [fromRound,
/// toRound): every long-range message due for delivery then is lost.
struct Blackout {
  int fromRound = 0;
  int toRound = 0;
};

/// Knobs of the deterministic fault model. All probabilities are per
/// message; every decision is a pure function of (seed, delivery round,
/// per-round send index), so the same seed always reproduces the same
/// fault schedule — failures are bisectable.
struct FaultConfig {
  std::uint64_t seed = 0;
  double adHocDrop = 0.0;       ///< P(lose an ad hoc message).
  double adHocDuplicate = 0.0;  ///< P(deliver an ad hoc message twice).
  double adHocDelay = 0.0;      ///< P(defer an ad hoc message 1..maxDelayRounds).
  double longRangeDrop = 0.0;   ///< P(lose a long-range message).
  int maxDelayRounds = 3;
  std::vector<CrashInterval> crashes;
  std::vector<Blackout> blackouts;
};

/// What the fault layer does with one message at its delivery round.
enum class FaultAction { Deliver, Drop, Duplicate, Delay };

/// Seeded, stateless fault schedule. The default-constructed plan is
/// inactive: the simulator takes the exact fault-free code path, so a plan
/// with all rates zero and no crashes/blackouts is bit-identical to no
/// plan at all.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  /// True when any knob can affect a run (rates, crashes or blackouts).
  bool active() const { return active_; }

  bool crashed(int node, int round) const;
  bool blackedOut(int round) const;

  /// Decides the fate of the `index`-th message delivered in `round`
  /// (index = position in the round's deterministic send order). Crash
  /// and blackout losses are handled by the simulator before this is
  /// consulted. On Delay, `*delayRounds` gets the extra rounds (>= 1).
  FaultAction decide(int round, std::size_t index, const Message& m,
                     int* delayRounds) const;

 private:
  FaultConfig config_;
  bool active_ = false;
};

}  // namespace hybrid::sim
