#pragma once

#include <cstdint>

#include "util/small_vec.hpp"

namespace hybrid::sim {

/// Which kind of link carries a message (paper section 1.1).
enum class Link {
  AdHoc,      ///< WiFi edge of the unit disk graph (free, short range).
  LongRange,  ///< Cellular/satellite link; requires knowing the target ID.
};

/// A message in flight. Payloads are plain words; `ids` additionally
/// carries node IDs, which the receiver learns on delivery (the paper's
/// ID-introduction primitive is "send an ID over an edge of E").
///
/// Payload storage is small-buffer optimized: up to the inline capacities
/// below a message never touches the heap, so protocols can build messages
/// on the stack and the simulator's MessagePool can recycle slots without
/// allocating. Longer payloads spill transparently.
struct Message {
  int from = -1;
  int to = -1;
  Link link = Link::AdHoc;
  int type = 0;                              ///< Protocol-defined tag.
  util::SmallVec<std::int64_t, 4> ints;      ///< Integer payload words.
  util::SmallVec<double, 4> reals;           ///< Real-valued payload words.
  util::SmallVec<int, 6> ids;                ///< Node IDs introduced to the receiver.

  /// Reliable-transport header (protocols/reliable.hpp). relSeq >= 0 marks
  /// an acknowledged data message; relCtl marks the ack itself. Plain
  /// protocols leave both untouched.
  int relSeq = -1;
  bool relCtl = false;

  std::size_t words() const { return ints.size() + reals.size() + ids.size() + 1; }
};

}  // namespace hybrid::sim
