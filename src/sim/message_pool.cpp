#include "sim/message_pool.hpp"

namespace hybrid::sim {

MessagePool::Handle MessagePool::acquire() {
  if (!free_.empty()) {
    const Handle h = free_.back();
    free_.pop_back();
    return h;
  }
  if ((static_cast<std::size_t>(next_) >> kSlabBits) == slabs_.size()) {
    slabs_.push_back(std::make_unique<Message[]>(std::size_t{1} << kSlabBits));
  }
  return next_++;
}

void MessagePool::release(Handle h) {
  Message& m = get(h);
  m.from = -1;
  m.to = -1;
  m.link = Link::AdHoc;
  m.type = 0;
  m.ints.clear();
  m.reals.clear();
  m.ids.clear();
  m.relSeq = -1;
  m.relCtl = false;
  free_.push_back(h);
}

}  // namespace hybrid::sim
