#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/message.hpp"

namespace hybrid::sim {

/// Slab/freelist recycler for in-flight messages. Slots live in fixed-size
/// slabs (stable addresses: a growing pool never invalidates a Message
/// reference another thread is reading), and released slots go onto a LIFO
/// freelist with their payload capacity intact. In steady state a round's
/// sends reuse the slots its deliveries just released, so the simulator's
/// hot loop performs zero heap allocations once capacities have warmed up.
class MessagePool {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kInvalid = 0xFFFFFFFFu;

  /// Returns a clean slot (payloads empty, header fields at defaults),
  /// reusing a released one when available.
  Handle acquire();

  /// Clears the slot's payload sizes (capacity kept) and recycles it.
  void release(Handle h);

  Message& get(Handle h) { return slabs_[h >> kSlabBits][h & kSlabMask]; }
  const Message& get(Handle h) const { return slabs_[h >> kSlabBits][h & kSlabMask]; }

  /// Slots ever created; stable slot count across rounds means the pool
  /// reached steady state.
  std::size_t slotCount() const { return next_; }
  /// Slots currently handed out.
  std::size_t liveCount() const { return next_ - free_.size(); }
  long slabsAllocated() const { return static_cast<long>(slabs_.size()); }

 private:
  static constexpr unsigned kSlabBits = 8;  ///< 256 messages per slab.
  static constexpr std::uint32_t kSlabMask = (1u << kSlabBits) - 1;

  std::vector<std::unique_ptr<Message[]>> slabs_;
  std::vector<Handle> free_;
  std::uint32_t next_ = 0;
};

}  // namespace hybrid::sim
