#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace hybrid::sim {

Simulator::Simulator(const graph::GeometricGraph& udg) : udg_(udg) {
  knowledge_.resize(udg.numNodes());
  stats_.resize(udg.numNodes());
  for (int v = 0; v < static_cast<int>(udg.numNodes()); ++v) {
    for (int nb : udg.neighbors(v)) knowledge_[static_cast<std::size_t>(v)].insert(nb);
  }
}

bool Simulator::knows(int v, int id) const {
  return id == v || knowledge_[static_cast<std::size_t>(v)].contains(id);
}

void Simulator::introduce(int v, int id) {
  if (id != v) knowledge_[static_cast<std::size_t>(v)].insert(id);
}

void Simulator::enqueue(Message m) {
  auto& st = stats_[static_cast<std::size_t>(m.from)];
  if (m.link == Link::AdHoc) {
    ++st.sentAdHoc;
  } else {
    ++st.sentLongRange;
  }
  st.sentWords += static_cast<long>(m.words());
  pending_.push_back(std::move(m));
}

void Context::sendAdHoc(int to, Message m) {
  if (!sim_.udg().hasEdge(self_, to)) {
    throw std::logic_error("sendAdHoc: target is not a UDG neighbor");
  }
  m.from = self_;
  m.to = to;
  m.link = Link::AdHoc;
  sim_.enqueue(std::move(m));
}

void Context::sendLongRange(int to, Message m) {
  if (!sim_.knows(self_, to)) {
    throw std::logic_error("sendLongRange: target ID unknown to sender");
  }
  m.from = self_;
  m.to = to;
  m.link = Link::LongRange;
  sim_.enqueue(std::move(m));
}

int Simulator::run(Protocol& protocol, int maxRounds) {
  pending_.clear();
  for (int v = 0; v < static_cast<int>(numNodes()); ++v) {
    Context ctx(*this, v, 0);
    protocol.onStart(ctx);
  }

  int round = 0;
  while (round < maxRounds && (!pending_.empty() || protocol.wantsMoreRounds())) {
    ++round;
    std::vector<Message> inbox = std::move(pending_);
    pending_.clear();
    // Deterministic delivery order: by recipient, then sender.
    std::stable_sort(inbox.begin(), inbox.end(), [](const Message& a, const Message& b) {
      return a.to != b.to ? a.to < b.to : a.from < b.from;
    });
    for (const Message& m : inbox) {
      // The receiver learns the sender and all introduced IDs.
      introduce(m.to, m.from);
      for (int id : m.ids) introduce(m.to, id);
      stats_[static_cast<std::size_t>(m.to)].receivedWords += static_cast<long>(m.words());
      Context ctx(*this, m.to, round);
      protocol.onMessage(ctx, m);
    }
    for (int v = 0; v < static_cast<int>(numNodes()); ++v) {
      Context ctx(*this, v, round);
      protocol.onRoundEnd(ctx);
    }
  }
  lastRounds_ = round;
  return round;
}

long Simulator::totalMessages() const {
  long total = 0;
  for (const auto& s : stats_) total += s.sentAdHoc + s.sentLongRange;
  return total;
}

long Simulator::maxWordsPerNode() const {
  long mx = 0;
  for (const auto& s : stats_) mx = std::max(mx, s.sentWords + s.receivedWords);
  return mx;
}

void Simulator::resetStats() {
  stats_.assign(numNodes(), NodeStats{});
}

}  // namespace hybrid::sim
