#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace hybrid::sim {

Simulator::Simulator(const graph::GeometricGraph& udg) : udg_(udg) {
  knowledge_.resize(udg.numNodes());
  stats_.resize(udg.numNodes());
  for (int v = 0; v < static_cast<int>(udg.numNodes()); ++v) {
    for (int nb : udg.neighbors(v)) knowledge_[static_cast<std::size_t>(v)].insert(nb);
  }
}

Simulator::Simulator(const graph::GeometricGraph& udg, FaultPlan faults)
    : Simulator(udg) {
  faults_ = std::move(faults);
}

bool Simulator::knows(int v, int id) const {
  return id == v || knowledge_[static_cast<std::size_t>(v)].contains(id);
}

void Simulator::introduce(int v, int id) {
  if (id != v) knowledge_[static_cast<std::size_t>(v)].insert(id);
}

void Simulator::enqueue(Message m) {
  if (tap_ != nullptr && !tap_->onSend(m, round_)) return;
  auto& st = stats_[static_cast<std::size_t>(m.from)];
  if (m.link == Link::AdHoc) {
    ++st.sentAdHoc;
  } else {
    ++st.sentLongRange;
  }
  st.sentWords += static_cast<long>(m.words());
  pending_.push_back(std::move(m));
}

void Simulator::traceMessage(const char* tag, int round, const Message& m) {
  if (!traceEnabled_) return;
  char head[96];
  std::snprintf(head, sizeof head, "R%d %s %d>%d %c t%d q%d%s", round, tag, m.from,
                m.to, m.link == Link::AdHoc ? 'a' : 'l', m.type, m.relSeq,
                m.relCtl ? " c" : "");
  trace_ += head;
  char word[48];
  for (std::int64_t x : m.ints) {
    std::snprintf(word, sizeof word, " i%lld", static_cast<long long>(x));
    trace_ += word;
  }
  for (double x : m.reals) {
    std::snprintf(word, sizeof word, " r%.17g", x);
    trace_ += word;
  }
  for (int x : m.ids) {
    std::snprintf(word, sizeof word, " d%d", x);
    trace_ += word;
  }
  trace_ += '\n';
}

void Context::sendAdHoc(int to, Message m) {
  if (!sim_.udg().hasEdge(self_, to)) {
    throw std::logic_error("sendAdHoc: target is not a UDG neighbor");
  }
  m.from = self_;
  m.to = to;
  m.link = Link::AdHoc;
  sim_.enqueue(std::move(m));
}

void Context::sendLongRange(int to, Message m) {
  if (!sim_.knows(self_, to)) {
    throw std::logic_error("sendLongRange: target ID unknown to sender");
  }
  m.from = self_;
  m.to = to;
  m.link = Link::LongRange;
  sim_.enqueue(std::move(m));
}

int Simulator::run(Protocol& protocol, int maxRounds) {
  pending_.clear();
  delayed_.clear();
  round_ = 0;
  const bool faulty = faults_.active();
  for (int v = 0; v < static_cast<int>(numNodes()); ++v) {
    if (faulty && faults_.crashed(v, 0)) continue;
    Context ctx(*this, v, 0);
    protocol.onStart(ctx);
  }

  int round = 0;
  while (round < maxRounds &&
         (!pending_.empty() || !delayed_.empty() || protocol.wantsMoreRounds())) {
    ++round;
    round_ = round;
    std::vector<Message> inbox;
    if (faulty) {
      // The fault layer decides each fresh message's fate in send order
      // (deterministic), charging losses to the sender's counters.
      std::vector<Message> fresh = std::move(pending_);
      pending_.clear();
      inbox.reserve(fresh.size());
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        Message& m = fresh[i];
        auto& sender = stats_[static_cast<std::size_t>(m.from)];
        if (faults_.crashed(m.to, round)) {
          ++(m.link == Link::AdHoc ? sender.droppedAdHoc : sender.droppedLongRange);
          traceMessage("XC", round, m);
          continue;
        }
        if (m.link == Link::LongRange && faults_.blackedOut(round)) {
          ++sender.droppedLongRange;
          traceMessage("XB", round, m);
          continue;
        }
        int delayRounds = 0;
        switch (faults_.decide(round, i, m, &delayRounds)) {
          case FaultAction::Drop:
            ++(m.link == Link::AdHoc ? sender.droppedAdHoc : sender.droppedLongRange);
            traceMessage("XD", round, m);
            break;
          case FaultAction::Duplicate:
            ++sender.duplicated;
            traceMessage("DU", round, m);
            inbox.push_back(m);
            inbox.push_back(std::move(m));
            break;
          case FaultAction::Delay:
            ++sender.delayed;
            traceMessage("DL", round, m);
            delayed_.emplace_back(round + delayRounds, std::move(m));
            break;
          case FaultAction::Deliver:
            inbox.push_back(std::move(m));
            break;
        }
      }
      // Deferred messages whose delay expired join the round's mailbox;
      // their fate was decided when they were first deferred. A message
      // cannot outlive its receiver: crashes still apply at delivery.
      std::vector<std::pair<int, Message>> still;
      for (auto& [due, m] : delayed_) {
        if (due > round) {
          still.emplace_back(due, std::move(m));
        } else if (faults_.crashed(m.to, round)) {
          auto& sender = stats_[static_cast<std::size_t>(m.from)];
          ++(m.link == Link::AdHoc ? sender.droppedAdHoc : sender.droppedLongRange);
          traceMessage("XC", round, m);
        } else {
          inbox.push_back(std::move(m));
        }
      }
      delayed_ = std::move(still);
    } else {
      inbox = std::move(pending_);
      pending_.clear();
    }
    // Deterministic delivery order: by recipient, then sender.
    std::stable_sort(inbox.begin(), inbox.end(), [](const Message& a, const Message& b) {
      return a.to != b.to ? a.to < b.to : a.from < b.from;
    });
    for (const Message& m : inbox) {
      // The receiver learns the sender and all introduced IDs.
      introduce(m.to, m.from);
      for (int id : m.ids) introduce(m.to, id);
      stats_[static_cast<std::size_t>(m.to)].receivedWords += static_cast<long>(m.words());
      traceMessage("RX", round, m);
      Context ctx(*this, m.to, round);
      protocol.onMessage(ctx, m);
    }
    for (int v = 0; v < static_cast<int>(numNodes()); ++v) {
      if (faulty && faults_.crashed(v, round)) continue;
      Context ctx(*this, v, round);
      protocol.onRoundEnd(ctx);
    }
  }
  lastRounds_ = round;
  budget_.roundsUsed = round;
  budget_.overrun = budget_.budget > 0 && round > budget_.budget;
  return round;
}

long Simulator::totalMessages() const {
  long total = 0;
  for (const auto& s : stats_) total += s.sentAdHoc + s.sentLongRange;
  return total;
}

long Simulator::maxWordsPerNode() const {
  long mx = 0;
  for (const auto& s : stats_) mx = std::max(mx, s.sentWords + s.receivedWords);
  return mx;
}

long Simulator::totalDropped() const {
  long total = 0;
  for (const auto& s : stats_) total += s.droppedAdHoc + s.droppedLongRange;
  return total;
}

void Simulator::resetStats() {
  stats_.assign(numNodes(), NodeStats{});
}

}  // namespace hybrid::sim
