#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace hybrid::sim {

Simulator::Simulator(const graph::GeometricGraph& udg) : udg_(udg) {
  knowledge_.resize(udg.numNodes());
  stats_.resize(udg.numNodes());
  for (int v = 0; v < static_cast<int>(udg.numNodes()); ++v) {
    for (int nb : udg.neighbors(v)) knowledge_[static_cast<std::size_t>(v)].insert(nb);
  }
}

Simulator::Simulator(const graph::GeometricGraph& udg, FaultPlan faults)
    : Simulator(udg) {
  faults_ = std::move(faults);
}

Simulator::~Simulator() = default;

bool Simulator::knows(int v, int id) const {
  return id == v || knowledge_[static_cast<std::size_t>(v)].contains(id);
}

void Simulator::introduce(int v, int id) {
  if (id != v) knowledge_[static_cast<std::size_t>(v)].insert(id);
}

void Simulator::finishSend(Message&& m) {
  if (tap_ != nullptr && !tap_->onSend(m, round_)) return;
  auto& st = stats_[static_cast<std::size_t>(m.from)];
  if (m.link == Link::AdHoc) {
    ++st.sentAdHoc;
  } else {
    ++st.sentLongRange;
  }
  st.sentWords += static_cast<long>(m.words());
  HYBRID_OBS_STMT(if (obs::enabled()) {
    ++(m.link == Link::AdHoc ? obsTally_.sentAdHoc : obsTally_.sentLongRange);
    obsTally_.sentWords += static_cast<long>(m.words());
  });
  const MessagePool::Handle h = pool_.acquire();
  pool_.get(h) = std::move(m);
  pending_.push_back(h);
}

void Simulator::mergeChunks() {
  for (ChunkBuf& cb : chunks_) {
    if (!cb.trace.empty()) {
      trace_ += cb.trace;
      cb.trace.clear();
    }
    for (Message& m : cb.outbox) finishSend(std::move(m));
    cb.outbox.clear();
  }
}

void Simulator::traceMessage(std::string& out, const char* tag, int round,
                             const Message& m) {
  if (!traceEnabled_) return;
  char head[96];
  std::snprintf(head, sizeof head, "R%d %s %d>%d %c t%d q%d%s", round, tag, m.from,
                m.to, m.link == Link::AdHoc ? 'a' : 'l', m.type, m.relSeq,
                m.relCtl ? " c" : "");
  out += head;
  char word[48];
  for (std::int64_t x : m.ints) {
    std::snprintf(word, sizeof word, " i%lld", static_cast<long long>(x));
    out += word;
  }
  for (double x : m.reals) {
    std::snprintf(word, sizeof word, " r%.17g", x);
    out += word;
  }
  for (int x : m.ids) {
    std::snprintf(word, sizeof word, " d%d", x);
    out += word;
  }
  out += '\n';
}

void Context::sendAdHoc(int to, Message m) {
  if (!sim_.udg().hasEdge(self_, to)) {
    throw std::logic_error("sendAdHoc: target is not a UDG neighbor");
  }
  m.from = self_;
  m.to = to;
  m.link = Link::AdHoc;
  if (shard_ != nullptr) {
    sim_.stageSend(*shard_, std::move(m));
  } else if (outbox_ != nullptr) {
    outbox_->push_back(std::move(m));
  } else {
    sim_.finishSend(std::move(m));
  }
}

void Context::sendLongRange(int to, Message m) {
  if (!sim_.knows(self_, to)) {
    throw std::logic_error("sendLongRange: target ID unknown to sender");
  }
  m.from = self_;
  m.to = to;
  m.link = Link::LongRange;
  if (shard_ != nullptr) {
    sim_.stageSend(*shard_, std::move(m));
  } else if (outbox_ != nullptr) {
    outbox_->push_back(std::move(m));
  } else {
    sim_.finishSend(std::move(m));
  }
}

void Simulator::sortInbox() {
  // Target order: by recipient, then sender, stable by send index — the
  // simulator's documented delivery-order guarantee.
  const std::size_t count = inbox_.size();
  keys_.resize(count);
  if (count < 2) {
    if (count == 1) {
      const Message& m = pool_.get(inbox_[0]);
      keys_[0] = (static_cast<std::uint64_t>(m.to) << 32) |
                 static_cast<std::uint32_t>(m.from);
    }
    return;
  }
  // Extract each message's (to, from) into a packed key once: the sort
  // passes then stream over 12-byte entries instead of re-reading the
  // ~200-byte message slots (which at large m blow out the cache).
  for (std::size_t i = 0; i < count; ++i) {
    const Message& m = pool_.get(inbox_[i]);
    keys_[i] = (static_cast<std::uint64_t>(m.to) << 32) |
               static_cast<std::uint32_t>(m.from);
  }
  if (count < 64) {
    // Tiny rounds: in-place stable insertion sort, no O(n) counting scan.
    for (std::size_t i = 1; i < count; ++i) {
      const MessagePool::Handle h = inbox_[i];
      const std::uint64_t k = keys_[i];
      std::size_t j = i;
      while (j > 0 && keys_[j - 1] > k) {
        inbox_[j] = inbox_[j - 1];
        keys_[j] = keys_[j - 1];
        --j;
      }
      inbox_[j] = h;
      keys_[j] = k;
    }
    return;
  }
  // Two-pass stable counting sort (LSD radix over the (to, from) key):
  // O(m + n), allocation-free once the scratch buffers warmed up.
  const std::size_t n = numNodes();
  sortTmp_.resize(count);
  keyTmp_.resize(count);
  counts_.assign(n, 0);
  for (const std::uint64_t k : keys_) {
    ++counts_[static_cast<std::uint32_t>(k)];
  }
  std::uint32_t running = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t c = counts_[v];
    counts_[v] = running;
    running += c;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t k = keys_[i];
    const std::uint32_t pos = counts_[static_cast<std::uint32_t>(k)]++;
    sortTmp_[pos] = inbox_[i];
    keyTmp_[pos] = k;
  }
  counts_.assign(n, 0);
  for (const std::uint64_t k : keyTmp_) {
    ++counts_[k >> 32];
  }
  running = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t c = counts_[v];
    counts_[v] = running;
    running += c;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t k = keyTmp_[i];
    const std::uint32_t pos = counts_[k >> 32]++;
    inbox_[pos] = sortTmp_[i];
    keys_[pos] = k;
  }
}

void Simulator::releaseInbox() {
  // A duplicated message occupies two adjacent slots of the sorted inbox
  // (equal key, consecutive insertion) but only one pool slot.
  MessagePool::Handle prev = MessagePool::kInvalid;
  for (const MessagePool::Handle h : inbox_) {
    if (h != prev) pool_.release(h);
    prev = h;
  }
}

void Simulator::releaseAllInFlight() {
  for (const MessagePool::Handle h : pending_) pool_.release(h);
  pending_.clear();
  for (const auto& [due, h] : delayed_) pool_.release(h);
  delayed_.clear();
  for (Shard& sh : shards_) {
    for (const Staged& st : sh.staging) sh.pool.release(st.handle);
    sh.staging.clear();
    for (const Staged& st : sh.frozen) sh.pool.release(st.handle);
    sh.frozen.clear();
    sh.trace.clear();
    sh.tally = ObsTally{};
  }
}

void Simulator::stageSend(Shard& sh, Message&& m) {
  // m.from is always a node of the staging worker's own range (onStart /
  // onRoundEnd step it, onMessage delivers to it), so the sender's stats
  // row is shard-owned and needs no synchronization.
  auto& st = stats_[static_cast<std::size_t>(m.from)];
  if (m.link == Link::AdHoc) {
    ++st.sentAdHoc;
  } else {
    ++st.sentLongRange;
  }
  st.sentWords += static_cast<long>(m.words());
  HYBRID_OBS_STMT(if (obs::enabled()) {
    ++(m.link == Link::AdHoc ? sh.tally.sentAdHoc : sh.tally.sentLongRange);
    sh.tally.sentWords += static_cast<long>(m.words());
  });
  const MessagePool::Handle h = sh.pool.acquire();
  Message& slot = sh.pool.get(h);
  slot = std::move(m);
  sh.staging.push_back(Staged{(static_cast<std::uint64_t>(slot.to) << 32) |
                                  static_cast<std::uint32_t>(slot.from),
                              &slot, h});
}

void Simulator::sealShard(Shard& sh, unsigned numShards) {
  // Stable counting sort of the phase's sends by destination shard: the
  // next round's delivery workers then copy exactly their bucket. Equal
  // (to, from) keys can only meet inside one sender shard (a sender's
  // shard is a function of `from`), so keeping buckets in append order is
  // all the tie-breaking the global (to, from, send index) order needs.
  const std::size_t m = sh.staging.size();
  sh.bucketStart.assign(numShards + 1, 0);
  for (const Staged& st : sh.staging) {
    ++sh.bucketStart[(st.key >> 32) / chunkNodes_ + 1];
  }
  for (unsigned s = 1; s <= numShards; ++s) sh.bucketStart[s] += sh.bucketStart[s - 1];
  sh.frozen.resize(m);
  sh.counts.assign(numShards, 0);
  for (const Staged& st : sh.staging) {
    const std::size_t d = (st.key >> 32) / chunkNodes_;
    sh.frozen[sh.bucketStart[d] + sh.counts[d]++] = st;
  }
  sh.staging.clear();
}

void Simulator::deliverChunk(Protocol& protocol, std::size_t b, std::size_t e,
                             unsigned c, unsigned numShards, int round) {
  Shard& sh = shards_[c];
  // Collect this shard's mail: every sealed shard has already bucketed its
  // sends by destination shard, so one contiguous copy per sender shard
  // suffices. Shard-major collection preserves append (= send) order per
  // sender shard, which is the tie-break the stable sorts below rely on.
  sh.inbox.clear();
  for (unsigned s = 0; s < numShards; ++s) {
    const Shard& src = shards_[s];
    sh.inbox.insert(sh.inbox.end(), src.frozen.begin() + src.bucketStart[c],
                    src.frozen.begin() + src.bucketStart[c + 1]);
  }
  const std::size_t m = sh.inbox.size();
  if (m == 0) return;
  HYBRID_OBS_STMT(if (obs::enabled()) sh.tally.delivered += static_cast<long>(m));
  // Order by (recipient, sender, send index): stable counting sort by
  // recipient — O(m + nodes/shard), no O(nodes) scan — then a stable sort
  // by sender inside each recipient's group. Groups are one node's
  // per-round in-degree, so the inner sorts are tiny.
  const std::size_t span = e - b;
  sh.counts.assign(span + 1, 0);
  for (const Staged& st : sh.inbox) ++sh.counts[(st.key >> 32) - b + 1];
  for (std::size_t i = 1; i <= span; ++i) sh.counts[i] += sh.counts[i - 1];
  sh.inboxTmp.resize(m);
  for (const Staged& st : sh.inbox) sh.inboxTmp[sh.counts[(st.key >> 32) - b]++] = st;
  for (std::size_t g = 0; g < span; ++g) {
    const std::uint32_t gb = g == 0 ? 0 : sh.counts[g - 1];
    const std::uint32_t ge = sh.counts[g];
    if (ge - gb < 2) continue;
    if (ge - gb <= 32) {
      for (std::uint32_t i = gb + 1; i < ge; ++i) {
        const Staged st = sh.inboxTmp[i];
        std::uint32_t j = i;
        while (j > gb && sh.inboxTmp[j - 1].key > st.key) {
          sh.inboxTmp[j] = sh.inboxTmp[j - 1];
          --j;
        }
        sh.inboxTmp[j] = st;
      }
    } else {
      std::stable_sort(sh.inboxTmp.begin() + gb, sh.inboxTmp.begin() + ge,
                       [](const Staged& a, const Staged& b2) { return a.key < b2.key; });
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    const Message& msg = *sh.inboxTmp[i].msg;
    if (i + 1 < m) __builtin_prefetch(sh.inboxTmp[i + 1].msg);
    // The receiver learns the sender and all introduced IDs; ad hoc
    // senders are UDG neighbors the receiver knows from initialization.
    if (msg.link != Link::AdHoc) introduce(msg.to, msg.from);
    for (int id : msg.ids) introduce(msg.to, id);
    stats_[static_cast<std::size_t>(msg.to)].receivedWords +=
        static_cast<long>(msg.words());
    if (traceEnabled_) traceMessage(sh.trace, "RX", round, msg);
    Context ctx(*this, msg.to, round, &sh);
    protocol.onMessage(ctx, msg);
  }
}

int Simulator::runSharded(Protocol& protocol, int maxRounds, unsigned threads) {
  const std::size_t n = numNodes();
  chunkNodes_ = (n + threads - 1) / threads;
  const auto numShards = static_cast<unsigned>((n + chunkNodes_ - 1) / chunkNodes_);
  if (shards_.size() < numShards) shards_.resize(numShards);

  util::parallelChunks(n, threads, [&](std::size_t b, std::size_t e, unsigned c) {
    Shard& sh = shards_[c];
    for (std::size_t v = b; v < e; ++v) {
      Context ctx(*this, static_cast<int>(v), 0, &sh);
      protocol.onStart(ctx);
    }
    sealShard(sh, numShards);
  });
  std::size_t inFlight = 0;
  for (unsigned s = 0; s < numShards; ++s) inFlight += shards_[s].frozen.size();

  int round = 0;
  while (round < maxRounds && (inFlight > 0 || protocol.wantsMoreRounds())) {
    ++round;
    round_ = round;
    if (inFlight > 0) {
      HYBRID_OBS_STMT(if (obs::enabled()) {
        static obs::Histogram& hInbox = obs::Registry::global().histogram(
            "sim.round.inbox_size", {16, 64, 256, 1024, 4096, 16384, 65536, 262144});
        hInbox.record(static_cast<double>(inFlight));
        std::size_t live = 0;
        for (unsigned s = 0; s < numShards; ++s) live += shards_[s].pool.liveCount();
        obsTally_.liveHighWater =
            std::max(obsTally_.liveHighWater, static_cast<long>(live));
      });
      util::parallelChunks(n, threads, [&](std::size_t b, std::size_t e, unsigned c) {
        deliverChunk(protocol, b, e, c, numShards, round);
      });
      HYBRID_OBS_STMT(if (obs::enabled()) {
        static obs::Histogram& hChunk = obs::Registry::global().histogram(
            "sim.chunk.delivered", {16, 64, 256, 1024, 4096, 16384, 65536, 262144});
        for (unsigned c = 0; c < numShards; ++c) {
          hChunk.record(static_cast<double>(shards_[c].inbox.size()));
        }
      });
      if (traceEnabled_) {
        for (unsigned c = 0; c < numShards; ++c) {
          trace_ += shards_[c].trace;
          shards_[c].trace.clear();
        }
      }
    }
    util::parallelChunks(n, threads, [&](std::size_t b, std::size_t e, unsigned c) {
      Shard& sh = shards_[c];
      // The previous round's messages were all delivered behind the phase
      // barrier above; their slots recycle into the owner's freelist and
      // this phase's sends reuse them while still cache-warm.
      for (const Staged& st : sh.frozen) sh.pool.release(st.handle);
      sh.frozen.clear();
      for (std::size_t v = b; v < e; ++v) {
        Context ctx(*this, static_cast<int>(v), round, &sh);
        protocol.onRoundEnd(ctx);
      }
      sealShard(sh, numShards);
    });
    inFlight = 0;
    for (unsigned s = 0; s < numShards; ++s) inFlight += shards_[s].frozen.size();
  }
  return round;
}

int Simulator::run(Protocol& protocol, int maxRounds) {
  obs::ScopedSpan runSpan("sim.run");
  releaseAllInFlight();
  round_ = 0;
  const bool faulty = faults_.active();
  const std::size_t n = numNodes();
  unsigned threads = util::resolveThreads(threads_);
  if (!allowOversubscribe_) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min(threads, hw == 0 ? 1u : hw);
  }
  threads = std::min(threads, util::ThreadPool::kMaxWorkers + 1);
  if (n > 0) {
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, n));  // mirrors the parallelChunks clamp
  }
  threads = std::max(1u, threads);
  effectiveThreads_ = static_cast<int>(threads);
  if (threads > 1 && !faulty && tap_ == nullptr) {
    // Fault-free, untapped parallel runs take the destination-sharded
    // round path: no driving-thread merge, no shared pool.
    const int rounds = runSharded(protocol, maxRounds, threads);
    lastRounds_ = rounds;
    budget_.roundsUsed = rounds;
    budget_.overrun = budget_.budget > 0 && rounds > budget_.budget;
    flushObs(rounds);
    return rounds;
  }
  if (chunks_.size() < threads) chunks_.resize(threads);
  // Serial runs admit sends immediately (same order as staging + merging,
  // minus the staging move); parallel runs stage into per-chunk outboxes.
  const bool serial = threads == 1;

  util::parallelChunks(n, threads, [&](std::size_t b, std::size_t e, unsigned c) {
    ChunkBuf& cb = chunks_[c];
    for (std::size_t v = b; v < e; ++v) {
      if (faulty && faults_.crashed(static_cast<int>(v), 0)) continue;
      Context ctx(*this, static_cast<int>(v), 0, serial ? nullptr : &cb.outbox);
      protocol.onStart(ctx);
    }
  });
  mergeChunks();

  int round = 0;
  while (round < maxRounds &&
         (!pending_.empty() || !delayed_.empty() || protocol.wantsMoreRounds())) {
    ++round;
    round_ = round;
    inbox_.clear();
    if (faulty) {
      // The fault layer decides each fresh message's fate in send order
      // (deterministic), charging losses to the sender's counters.
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        const MessagePool::Handle h = pending_[i];
        Message& m = pool_.get(h);
        auto& sender = stats_[static_cast<std::size_t>(m.from)];
        if (faults_.crashed(m.to, round)) {
          ++(m.link == Link::AdHoc ? sender.droppedAdHoc : sender.droppedLongRange);
          HYBRID_OBS_STMT(if (obs::enabled()) ++obsTally_.dropped);
          traceMessage(trace_, "XC", round, m);
          pool_.release(h);
          continue;
        }
        if (m.link == Link::LongRange && faults_.blackedOut(round)) {
          ++sender.droppedLongRange;
          HYBRID_OBS_STMT(if (obs::enabled()) ++obsTally_.dropped);
          traceMessage(trace_, "XB", round, m);
          pool_.release(h);
          continue;
        }
        int delayRounds = 0;
        switch (faults_.decide(round, i, m, &delayRounds)) {
          case FaultAction::Drop:
            ++(m.link == Link::AdHoc ? sender.droppedAdHoc : sender.droppedLongRange);
            HYBRID_OBS_STMT(if (obs::enabled()) ++obsTally_.dropped);
            traceMessage(trace_, "XD", round, m);
            pool_.release(h);
            break;
          case FaultAction::Duplicate:
            ++sender.duplicated;
            HYBRID_OBS_STMT(if (obs::enabled()) ++obsTally_.duplicated);
            traceMessage(trace_, "DU", round, m);
            inbox_.push_back(h);
            inbox_.push_back(h);
            break;
          case FaultAction::Delay:
            ++sender.delayed;
            HYBRID_OBS_STMT(if (obs::enabled()) ++obsTally_.delayed);
            traceMessage(trace_, "DL", round, m);
            delayed_.emplace_back(round + delayRounds, h);
            break;
          case FaultAction::Deliver:
            inbox_.push_back(h);
            break;
        }
      }
      pending_.clear();
      // Deferred messages whose delay expired join the round's mailbox;
      // their fate was decided when they were first deferred. A message
      // cannot outlive its receiver: crashes still apply at delivery.
      std::size_t keep = 0;
      for (std::size_t i = 0; i < delayed_.size(); ++i) {
        const auto [due, h] = delayed_[i];
        if (due > round) {
          delayed_[keep++] = {due, h};
        } else {
          Message& m = pool_.get(h);
          if (faults_.crashed(m.to, round)) {
            auto& sender = stats_[static_cast<std::size_t>(m.from)];
            ++(m.link == Link::AdHoc ? sender.droppedAdHoc : sender.droppedLongRange);
            HYBRID_OBS_STMT(if (obs::enabled()) ++obsTally_.dropped);
            traceMessage(trace_, "XC", round, m);
            pool_.release(h);
          } else {
            inbox_.push_back(h);
          }
        }
      }
      delayed_.resize(keep);
    } else {
      inbox_.swap(pending_);
    }
    if (!inbox_.empty()) {
      sortInbox();
      const std::size_t mcount = inbox_.size();
      HYBRID_OBS_STMT(if (obs::enabled()) {
        obsTally_.delivered += static_cast<long>(mcount);
        obsTally_.liveHighWater =
            std::max(obsTally_.liveHighWater, static_cast<long>(pool_.liveCount()));
        static obs::Histogram& hInbox = obs::Registry::global().histogram(
            "sim.round.inbox_size", {16, 64, 256, 1024, 4096, 16384, 65536, 262144});
        hInbox.record(static_cast<double>(mcount));
        if (!serial) {
          // Thread utilization: how the recipient-sorted inbox splits over
          // the parallelChunks slices (same chunking formula, same keys).
          static obs::Histogram& hChunk = obs::Registry::global().histogram(
              "sim.chunk.delivered", {16, 64, 256, 1024, 4096, 16384, 65536, 262144});
          const std::size_t chunkNodes = (n + threads - 1) / threads;
          std::size_t start = 0;
          for (unsigned c = 0; c < threads; ++c) {
            const std::size_t nodeEnd =
                std::min(n, static_cast<std::size_t>(c + 1) * chunkNodes);
            const std::size_t cut = static_cast<std::size_t>(
                std::lower_bound(keys_.begin(),
                                 keys_.begin() + static_cast<std::ptrdiff_t>(mcount),
                                 nodeEnd,
                                 [](std::uint64_t k, std::size_t v) {
                                   return static_cast<std::size_t>(k >> 32) < v;
                                 }) -
                keys_.begin());
            hChunk.record(static_cast<double>(cut - start));
            start = cut;
          }
        }
      });
      util::parallelChunks(n, threads, [&](std::size_t b, std::size_t e, unsigned c) {
        ChunkBuf& cb = chunks_[c];
        // Locate this chunk's slice of the recipient-sorted inbox (the
        // packed sort keys carry the recipient in their high half).
        std::size_t idx = static_cast<std::size_t>(
            std::lower_bound(keys_.begin(), keys_.end(), b,
                             [](std::uint64_t k, std::size_t v) {
                               return static_cast<std::size_t>(k >> 32) < v;
                             }) -
            keys_.begin());
        for (; idx < mcount; ++idx) {
          const Message& m = pool_.get(inbox_[idx]);
          if (static_cast<std::size_t>(m.to) >= e) break;
          if (idx + 1 < mcount) {
            __builtin_prefetch(&pool_.get(inbox_[idx + 1]));
          }
          // The receiver learns the sender and all introduced IDs. Ad hoc
          // senders are UDG neighbors, which the receiver knows from
          // initialization — skip that redundant set lookup.
          if (m.link != Link::AdHoc) introduce(m.to, m.from);
          for (int id : m.ids) introduce(m.to, id);
          stats_[static_cast<std::size_t>(m.to)].receivedWords +=
              static_cast<long>(m.words());
          if (traceEnabled_) traceMessage(cb.trace, "RX", round, m);
          Context ctx(*this, m.to, round, serial ? nullptr : &cb.outbox);
          protocol.onMessage(ctx, m);
          if (serial &&
              (idx + 1 >= mcount || inbox_[idx + 1] != inbox_[idx])) {
            // Serial runs recycle each slot the moment its delivery (and,
            // for a fault duplicate, its second delivery) is done: the
            // next handler's sends then reuse a cache-hot slot. `m` is
            // dead past this point.
            pool_.release(inbox_[idx]);
          }
        }
      });
      if (!serial) releaseInbox();
      mergeChunks();
      inbox_.clear();
    }
    util::parallelChunks(n, threads, [&](std::size_t b, std::size_t e, unsigned c) {
      ChunkBuf& cb = chunks_[c];
      for (std::size_t v = b; v < e; ++v) {
        if (faulty && faults_.crashed(static_cast<int>(v), round)) continue;
        Context ctx(*this, static_cast<int>(v), round, serial ? nullptr : &cb.outbox);
        protocol.onRoundEnd(ctx);
      }
    });
    mergeChunks();
  }
  lastRounds_ = round;
  budget_.roundsUsed = round;
  budget_.overrun = budget_.budget > 0 && round > budget_.budget;
  flushObs(round);
  return round;
}

void Simulator::flushObs(int rounds) {
#ifndef HYBRID_OBS_DISABLED
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::global();
  static obs::Counter& cRuns = reg.counter("sim.runs");
  static obs::Counter& cRounds = reg.counter("sim.rounds");
  static obs::Counter& cSentAdHoc = reg.counter("sim.messages.sent_adhoc");
  static obs::Counter& cSentLong = reg.counter("sim.messages.sent_longrange");
  static obs::Counter& cWords = reg.counter("sim.words.sent");
  static obs::Counter& cDelivered = reg.counter("sim.messages.delivered");
  static obs::Counter& cDropped = reg.counter("sim.messages.dropped");
  static obs::Counter& cDuplicated = reg.counter("sim.messages.duplicated");
  static obs::Counter& cDelayed = reg.counter("sim.messages.delayed");
  static obs::Counter& cOverruns = reg.counter("sim.budget.overruns");
  static obs::Gauge& gSlabs = reg.gauge("sim.pool.slabs");
  static obs::Gauge& gSlots = reg.gauge("sim.pool.slots");
  static obs::Gauge& gLiveHigh = reg.gauge("sim.pool.live_high_water");
  static obs::Gauge& gThreadsReq = reg.gauge("sim.threads.requested");
  static obs::Gauge& gThreadsEff = reg.gauge("sim.threads.effective");
  // Sharded runs tally into their per-worker shards (one flush per run is
  // the contract); fold those into the driving-thread tally first.
  ObsTally total = obsTally_;
  long slabs = pool_.slabsAllocated();
  auto slots = static_cast<long>(pool_.slotCount());
  for (Shard& sh : shards_) {
    total.sentAdHoc += sh.tally.sentAdHoc;
    total.sentLongRange += sh.tally.sentLongRange;
    total.sentWords += sh.tally.sentWords;
    total.delivered += sh.tally.delivered;
    slabs += sh.pool.slabsAllocated();
    slots += static_cast<long>(sh.pool.slotCount());
    sh.tally = ObsTally{};
  }
  cRuns.add(1);
  cRounds.add(static_cast<std::uint64_t>(rounds));
  cSentAdHoc.add(static_cast<std::uint64_t>(total.sentAdHoc));
  cSentLong.add(static_cast<std::uint64_t>(total.sentLongRange));
  cWords.add(static_cast<std::uint64_t>(total.sentWords));
  cDelivered.add(static_cast<std::uint64_t>(total.delivered));
  cDropped.add(static_cast<std::uint64_t>(total.dropped));
  cDuplicated.add(static_cast<std::uint64_t>(total.duplicated));
  cDelayed.add(static_cast<std::uint64_t>(total.delayed));
  if (budget_.overrun) cOverruns.add(1);
  gSlabs.set(static_cast<double>(slabs));
  gSlots.set(static_cast<double>(slots));
  gLiveHigh.max(static_cast<double>(total.liveHighWater));
  gThreadsReq.set(static_cast<double>(util::resolveThreads(threads_)));
  gThreadsEff.set(static_cast<double>(effectiveThreads_));
  obsTally_ = ObsTally{};
#else
  (void)rounds;
#endif
}

long Simulator::totalMessages() const {
  long total = 0;
  for (const auto& s : stats_) total += s.sentAdHoc + s.sentLongRange;
  return total;
}

long Simulator::maxWordsPerNode() const {
  long mx = 0;
  for (const auto& s : stats_) mx = std::max(mx, s.sentWords + s.receivedWords);
  return mx;
}

long Simulator::totalDropped() const {
  long total = 0;
  for (const auto& s : stats_) total += s.droppedAdHoc + s.droppedLongRange;
  return total;
}

void Simulator::resetStats() {
  stats_.assign(numNodes(), NodeStats{});
}

}  // namespace hybrid::sim
