#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_plan.hpp"
#include "sim/message.hpp"
#include "sim/message_pool.hpp"

namespace hybrid::sim {

/// Per-node traffic and fault accounting. Fault counters are charged to
/// the *sender* of the affected message.
struct NodeStats {
  long sentAdHoc = 0;
  long sentLongRange = 0;
  long sentWords = 0;
  long receivedWords = 0;
  long droppedAdHoc = 0;      ///< Lost to random drops or receiver crashes.
  long droppedLongRange = 0;  ///< Lost to random drops, blackouts or crashes.
  long duplicated = 0;        ///< Delivered twice by the fault layer.
  long delayed = 0;           ///< Deferred one or more rounds.
};

/// Round-budget accounting for one run: `budget` is the protocol's
/// round allowance (0 = unlimited), `roundsUsed` what the run took.
struct RoundBudgetReport {
  int budget = 0;
  int roundsUsed = 0;
  bool overrun = false;
  int overrunRounds() const { return overrun ? roundsUsed - budget : 0; }
};

/// Observes (and may swallow) every protocol send before it is queued.
/// The reliable transport registers one to attach sequence numbers. Taps
/// run at outbox-merge time, on the simulator's driving thread, in
/// deterministic send order — never concurrently.
class SendTap {
 public:
  virtual ~SendTap() = default;
  /// Return false to swallow the message (nothing is queued or counted).
  virtual bool onSend(Message& m, int round) = 0;
};

class Protocol;

/// Synchronous message-passing simulator over a hybrid communication
/// graph H = (V, E, E_AH): messages sent in round i are delivered at the
/// beginning of round i+1; each node processes its whole mailbox per round.
///
/// E_AH is the unit disk graph passed at construction. E (the knowledge
/// graph) starts as E_AH — every node knows its UDG neighbors' IDs — and
/// grows through ID-introductions carried in Message::ids. A long-range
/// send to an unknown ID is a protocol error and throws.
///
/// An optional FaultPlan injects deterministic, seed-reproducible faults:
/// per-message drop/duplicate/delay on the ad hoc channel, long-range
/// drops and blackouts, and node crash/recover intervals. With no plan
/// (or an all-zero one) the simulator is exactly the loss-free model.
///
/// Hot-path layout (see docs/PROTOCOLS.md, "Simulator internals"): in-flight
/// messages live in slab/freelist MessagePools and circulate as 32-bit
/// handles; delivery order is established by stable counting sorts in
/// O(m + n) instead of an O(m log m) comparison sort. Fault-free parallel
/// runs use destination-sharded delivery: each worker owns one contiguous
/// node range, stages sends into its own cache-line-aligned shard (private
/// pool + outbox, no locks, no merge on the driving thread) presorted by
/// destination shard, and the next round's workers pull exactly their
/// recipients' messages and order them by (recipient, sender, send index) —
/// byte-identical to serial at any thread count. Faulty or tapped runs fall
/// back to per-chunk outboxes merged in chunk order on the driving thread,
/// which preserves the global send index the fault layer consumes.
class Simulator {
 public:
  explicit Simulator(const graph::GeometricGraph& udg);
  Simulator(const graph::GeometricGraph& udg, FaultPlan faults);
  ~Simulator();

  const graph::GeometricGraph& udg() const { return udg_; }
  std::size_t numNodes() const { return udg_.numNodes(); }
  geom::Vec2 position(int v) const { return udg_.position(v); }

  bool knows(int v, int id) const;
  /// Out-of-band introduction (setup only; not counted as traffic).
  void introduce(int v, int id);

  /// Runs `protocol` until no messages are in flight and no node asks to
  /// continue, or until maxRounds. Returns the number of rounds executed.
  int run(Protocol& protocol, int maxRounds = 1 << 20);

  const std::vector<NodeStats>& stats() const { return stats_; }
  long totalMessages() const;
  long maxWordsPerNode() const;
  long totalDropped() const;
  int lastRounds() const { return lastRounds_; }
  int currentRound() const { return round_; }

  /// Resets traffic statistics (knowledge is kept).
  void resetStats();

  void setFaultPlan(FaultPlan faults) { faults_ = std::move(faults); }
  const FaultPlan& faultPlan() const { return faults_; }

  /// Worker threads for node stepping: 1 (default) steps nodes serially
  /// and is safe for any protocol; 0 resolves to the hardware concurrency.
  /// Requests beyond the hardware concurrency are clamped at run() time
  /// (oversubscribing the pool only adds context-switch overhead) unless
  /// setAllowOversubscribe(true) — see effectiveThreads() for what a run
  /// actually used. Runs are bit-identical across thread counts — traces,
  /// stats, fault schedules and delivery order included. Protocols stepped
  /// with threads > 1 must keep per-node state only (as a distributed
  /// protocol does by definition): onStart/onMessage/onRoundEnd for
  /// *different* nodes run concurrently.
  void setThreads(int threads) { threads_ = threads; }
  int threads() const { return threads_; }

  /// Lets setThreads() exceed the hardware concurrency. Determinism tests
  /// use this so the parallel machinery (and its TSan coverage) does not
  /// silently degrade to serial on small CI boxes.
  void setAllowOversubscribe(bool on) { allowOversubscribe_ = on; }
  bool allowOversubscribe() const { return allowOversubscribe_; }

  /// Thread count the last run() actually stepped with, after resolving 0
  /// and clamping; also surfaced as the obs gauge `sim.threads.effective`.
  int effectiveThreads() const { return effectiveThreads_; }

  /// Sets the per-run round allowance; run() never stops early because of
  /// it, but budgetReport() flags the overrun afterwards.
  void setRoundBudget(int rounds) { budget_.budget = rounds; }
  const RoundBudgetReport& budgetReport() const { return budget_; }

  /// At most one tap; pass nullptr to clear. See protocols/reliable.hpp.
  void setSendTap(SendTap* tap) { tap_ = tap; }
  SendTap* sendTap() const { return tap_; }

  /// Records every delivery and fault event of subsequent runs into an
  /// append-only text trace. Two runs with equal seeds and protocols must
  /// produce byte-identical traces (enforced by fault_injection_test), at
  /// any thread count (enforced by sim_threads_test).
  void enableTrace(bool on = true) { traceEnabled_ = on; }
  const std::string& trace() const { return trace_; }
  void clearTrace() { trace_.clear(); }

  /// Test introspection into the sharded delivery path: shards retained
  /// from the last fault-free parallel run (0 before any), and the slot
  /// count of one shard's private MessagePool vs the shared serial pool.
  std::size_t shardCount() const { return shards_.size(); }
  std::size_t shardPoolSlots(std::size_t s) const { return shards_[s].pool.slotCount(); }
  std::size_t sharedPoolSlots() const { return pool_.slotCount(); }

 private:
  friend class Context;

  /// Per-chunk staging for the legacy merge path (faulty or tapped runs):
  /// sends and trace lines buffer here and are merged in chunk order on
  /// the driving thread.
  struct ChunkBuf {
    std::vector<Message> outbox;
    std::string trace;
  };

  /// Driving-thread-only tallies mirrored into the obs registry when a run
  /// finishes (obs::enabled() runs only). Kept as plain longs so the hot
  /// path pays one relaxed flag load per event, no atomics; flushing is
  /// one registry update per run. Metrics never affect behavior.
  struct ObsTally {
    long sentAdHoc = 0;
    long sentLongRange = 0;
    long sentWords = 0;
    long delivered = 0;
    long dropped = 0;
    long duplicated = 0;
    long delayed = 0;
    long liveHighWater = 0;
  };
  /// Adds the run's tallies + pool/round stats to the global registry.
  void flushObs(int rounds);

  /// One staged send of the destination-sharded path. `key` orders the
  /// message for delivery, `msg` points into the staging shard's pool
  /// (slab addresses are stable, so other workers may read the message
  /// while the owner's pool grows), `handle` lets the owning shard recycle
  /// the slot once the round it was delivered in has completed.
  struct Staged {
    std::uint64_t key = 0;  ///< (to << 32) | from.
    Message* msg = nullptr;
    MessagePool::Handle handle = MessagePool::kInvalid;
  };

  /// One worker's private world in a sharded run, aligned so two shards
  /// never share a cache line. The worker that steps node range c is the
  /// only writer of shard c: it stages its nodes' sends into `staging`
  /// (presorted into `frozen` by destination shard at the end of each
  /// phase) and appends its recipients' RX lines to `trace`. Other workers
  /// only ever *read* a shard's `frozen`/`bucketStart` after a phase
  /// barrier, so no locks are needed anywhere on the round path.
  struct alignas(64) Shard {
    MessagePool pool;
    std::vector<Staged> staging;  ///< This phase's sends, append order.
    std::vector<Staged> frozen;   ///< Sealed sends, bucketed by destination shard.
    std::vector<std::uint32_t> bucketStart;  ///< numShards+1 offsets into frozen.
    std::vector<Staged> inbox;     ///< Delivery scratch: this shard's mail.
    std::vector<Staged> inboxTmp;  ///< Delivery scratch: recipient-sorted mail.
    std::vector<std::uint32_t> counts;  ///< Counting-sort scratch.
    std::string trace;                  ///< RX lines for this recipient range.
    ObsTally tally;
  };

  /// Stats + tally + pool admission of one send on the staging worker
  /// (sharded path; `sh` is the sender's own shard).
  void stageSend(Shard& sh, Message&& m);
  /// Stable counting sort of `staging` into `frozen`, bucketed by the
  /// destination's shard; runs on the owning worker at the end of a phase.
  void sealShard(Shard& sh, unsigned numShards);
  /// Collects shard c's mail from every sealed shard, orders it by
  /// (recipient, sender, send index) and delivers it.
  void deliverChunk(Protocol& protocol, std::size_t b, std::size_t e, unsigned c,
                    unsigned numShards, int round);
  /// Fault-free parallel rounds: destination-sharded, no driving-thread
  /// merge. Returns rounds executed.
  int runSharded(Protocol& protocol, int maxRounds, unsigned threads);

  /// Tap + stats + pool admission for one staged send (merge time).
  void finishSend(Message&& m);
  /// Drains every chunk's trace buffer, then outbox, in chunk order.
  void mergeChunks();
  /// Stable counting sort of inbox_ into (recipient, sender, send-index)
  /// order; falls back to an in-place insertion sort for tiny rounds.
  void sortInbox();
  /// Releases delivered handles (duplicates released once).
  void releaseInbox();
  void releaseAllInFlight();
  void traceMessage(std::string& out, const char* tag, int round, const Message& m);

  const graph::GeometricGraph& udg_;
  std::vector<std::unordered_set<int>> knowledge_;
  MessagePool pool_;
  std::vector<MessagePool::Handle> pending_;  ///< Next round's mail, send order.
  /// Messages deferred by the fault layer, with their due round.
  std::vector<std::pair<int, MessagePool::Handle>> delayed_;
  std::vector<NodeStats> stats_;
  FaultPlan faults_;
  RoundBudgetReport budget_;
  SendTap* tap_ = nullptr;
  bool traceEnabled_ = false;
  std::string trace_;
  int lastRounds_ = 0;
  int round_ = 0;
  int threads_ = 1;
  int effectiveThreads_ = 1;
  bool allowOversubscribe_ = false;
  ObsTally obsTally_;

  // Round-scratch buffers; capacity recycles across rounds.
  std::vector<MessagePool::Handle> inbox_;
  std::vector<MessagePool::Handle> sortTmp_;
  std::vector<std::uint64_t> keys_;    ///< (to << 32 | from), aligned with inbox_.
  std::vector<std::uint64_t> keyTmp_;  ///< Aligned with sortTmp_.
  std::vector<std::uint32_t> counts_;
  std::vector<ChunkBuf> chunks_;

  // Sharded-path state; shards recycle their capacity across runs.
  std::vector<Shard> shards_;
  std::size_t chunkNodes_ = 0;  ///< Nodes per shard of the current run.
};

/// Handle through which protocol code interacts with the simulator for one
/// node within one round. Fault-free parallel runs stage sends straight
/// into the stepping worker's shard (stats and pool admission happen on
/// the worker, no merge); faulty or tapped runs stage into the chunk-local
/// outbox and the simulator admits them at merge time in send order; in
/// serial runs both are null and sends are admitted immediately, which is
/// the same order without the staging move.
class Context {
 public:
  Context(Simulator& sim, int self, int round, std::vector<Message>* outbox)
      : sim_(sim), self_(self), round_(round), outbox_(outbox) {}
  Context(Simulator& sim, int self, int round, Simulator::Shard* shard)
      : sim_(sim), self_(self), round_(round), shard_(shard) {}

  int self() const { return self_; }
  int round() const { return round_; }
  geom::Vec2 position() const { return sim_.position(self_); }
  geom::Vec2 positionOf(int v) const { return sim_.position(v); }
  std::span<const int> udgNeighbors() const { return sim_.udg().neighbors(self_); }
  std::size_t networkSize() const { return sim_.numNodes(); }
  bool knows(int id) const { return sim_.knows(self_, id); }

  /// Sends over an ad hoc edge; `to` must be a UDG neighbor.
  void sendAdHoc(int to, Message m);
  /// Sends over a long-range link; `to` must be known to this node.
  void sendLongRange(int to, Message m);

 private:
  Simulator& sim_;
  int self_;
  int round_;
  std::vector<Message>* outbox_ = nullptr;
  Simulator::Shard* shard_ = nullptr;
};

/// A distributed protocol: per-node event handlers. Handlers may send
/// messages; sends made while processing round i are delivered in round
/// i+1. State is owned by the protocol object (indexed by node). Keep the
/// state strictly per-node if the protocol should support multi-threaded
/// stepping (Simulator::setThreads).
class Protocol {
 public:
  virtual ~Protocol() = default;
  /// Called once per node before round 1.
  virtual void onStart(Context& ctx) = 0;
  /// Called for each delivered message.
  virtual void onMessage(Context& ctx, const Message& m) = 0;
  /// Called for every node after its mailbox was processed each round.
  virtual void onRoundEnd(Context& ctx) { (void)ctx; }
  /// Return true from any node to keep the simulation alive even with an
  /// empty message queue (e.g. fixed-schedule phases).
  virtual bool wantsMoreRounds() const { return false; }
};

}  // namespace hybrid::sim
