#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_plan.hpp"
#include "sim/message.hpp"
#include "sim/message_pool.hpp"

namespace hybrid::sim {

/// Per-node traffic and fault accounting. Fault counters are charged to
/// the *sender* of the affected message.
struct NodeStats {
  long sentAdHoc = 0;
  long sentLongRange = 0;
  long sentWords = 0;
  long receivedWords = 0;
  long droppedAdHoc = 0;      ///< Lost to random drops or receiver crashes.
  long droppedLongRange = 0;  ///< Lost to random drops, blackouts or crashes.
  long duplicated = 0;        ///< Delivered twice by the fault layer.
  long delayed = 0;           ///< Deferred one or more rounds.
};

/// Round-budget accounting for one run: `budget` is the protocol's
/// round allowance (0 = unlimited), `roundsUsed` what the run took.
struct RoundBudgetReport {
  int budget = 0;
  int roundsUsed = 0;
  bool overrun = false;
  int overrunRounds() const { return overrun ? roundsUsed - budget : 0; }
};

/// Observes (and may swallow) every protocol send before it is queued.
/// The reliable transport registers one to attach sequence numbers. Taps
/// run at outbox-merge time, on the simulator's driving thread, in
/// deterministic send order — never concurrently.
class SendTap {
 public:
  virtual ~SendTap() = default;
  /// Return false to swallow the message (nothing is queued or counted).
  virtual bool onSend(Message& m, int round) = 0;
};

class Protocol;

/// Synchronous message-passing simulator over a hybrid communication
/// graph H = (V, E, E_AH): messages sent in round i are delivered at the
/// beginning of round i+1; each node processes its whole mailbox per round.
///
/// E_AH is the unit disk graph passed at construction. E (the knowledge
/// graph) starts as E_AH — every node knows its UDG neighbors' IDs — and
/// grows through ID-introductions carried in Message::ids. A long-range
/// send to an unknown ID is a protocol error and throws.
///
/// An optional FaultPlan injects deterministic, seed-reproducible faults:
/// per-message drop/duplicate/delay on the ad hoc channel, long-range
/// drops and blackouts, and node crash/recover intervals. With no plan
/// (or an all-zero one) the simulator is exactly the loss-free model.
///
/// Hot-path layout (see docs/PROTOCOLS.md, "Simulator internals"): in-flight
/// messages live in a slab/freelist MessagePool and circulate as 32-bit
/// handles; delivery order is established by a stable two-pass counting
/// sort (by sender, then recipient) in O(m + n) instead of an O(m log m)
/// comparison sort; and node stepping may run on the persistent
/// util::ThreadPool with per-chunk outboxes and trace buffers merged in
/// chunk order, which keeps any thread count bit-identical to serial.
class Simulator {
 public:
  explicit Simulator(const graph::GeometricGraph& udg);
  Simulator(const graph::GeometricGraph& udg, FaultPlan faults);
  ~Simulator();

  const graph::GeometricGraph& udg() const { return udg_; }
  std::size_t numNodes() const { return udg_.numNodes(); }
  geom::Vec2 position(int v) const { return udg_.position(v); }

  bool knows(int v, int id) const;
  /// Out-of-band introduction (setup only; not counted as traffic).
  void introduce(int v, int id);

  /// Runs `protocol` until no messages are in flight and no node asks to
  /// continue, or until maxRounds. Returns the number of rounds executed.
  int run(Protocol& protocol, int maxRounds = 1 << 20);

  const std::vector<NodeStats>& stats() const { return stats_; }
  long totalMessages() const;
  long maxWordsPerNode() const;
  long totalDropped() const;
  int lastRounds() const { return lastRounds_; }
  int currentRound() const { return round_; }

  /// Resets traffic statistics (knowledge is kept).
  void resetStats();

  void setFaultPlan(FaultPlan faults) { faults_ = std::move(faults); }
  const FaultPlan& faultPlan() const { return faults_; }

  /// Worker threads for node stepping: 1 (default) steps nodes serially
  /// and is safe for any protocol; 0 resolves to the hardware concurrency.
  /// Runs are bit-identical across thread counts — traces, stats, fault
  /// schedules and delivery order included — because per-chunk outboxes
  /// and trace buffers are merged in chunk (= node) order and per-round
  /// send indices are assigned at merge time, on the driving thread.
  /// Protocols stepped with threads > 1 must keep per-node state only (as
  /// a distributed protocol does by definition): onStart/onMessage/
  /// onRoundEnd for *different* nodes run concurrently.
  void setThreads(int threads) { threads_ = threads; }
  int threads() const { return threads_; }

  /// Sets the per-run round allowance; run() never stops early because of
  /// it, but budgetReport() flags the overrun afterwards.
  void setRoundBudget(int rounds) { budget_.budget = rounds; }
  const RoundBudgetReport& budgetReport() const { return budget_; }

  /// At most one tap; pass nullptr to clear. See protocols/reliable.hpp.
  void setSendTap(SendTap* tap) { tap_ = tap; }
  SendTap* sendTap() const { return tap_; }

  /// Records every delivery and fault event of subsequent runs into an
  /// append-only text trace. Two runs with equal seeds and protocols must
  /// produce byte-identical traces (enforced by fault_injection_test), at
  /// any thread count (enforced by sim_threads_test).
  void enableTrace(bool on = true) { traceEnabled_ = on; }
  const std::string& trace() const { return trace_; }
  void clearTrace() { trace_.clear(); }

 private:
  friend class Context;

  /// Per-chunk staging for the parallel sections: sends and trace lines
  /// buffer here and are merged in chunk order on the driving thread.
  struct ChunkBuf {
    std::vector<Message> outbox;
    std::string trace;
  };

  /// Driving-thread-only tallies mirrored into the obs registry when a run
  /// finishes (obs::enabled() runs only). Kept as plain longs so the hot
  /// path pays one relaxed flag load per event, no atomics; flushing is
  /// one registry update per run. Metrics never affect behavior.
  struct ObsTally {
    long sentAdHoc = 0;
    long sentLongRange = 0;
    long sentWords = 0;
    long delivered = 0;
    long dropped = 0;
    long duplicated = 0;
    long delayed = 0;
    long liveHighWater = 0;
  };
  /// Adds the run's tallies + pool/round stats to the global registry.
  void flushObs(int rounds);

  /// Tap + stats + pool admission for one staged send (merge time).
  void finishSend(Message&& m);
  /// Drains every chunk's trace buffer, then outbox, in chunk order.
  void mergeChunks();
  /// Stable counting sort of inbox_ into (recipient, sender, send-index)
  /// order; falls back to an in-place insertion sort for tiny rounds.
  void sortInbox();
  /// Releases delivered handles (duplicates released once).
  void releaseInbox();
  void releaseAllInFlight();
  void traceMessage(std::string& out, const char* tag, int round, const Message& m);

  const graph::GeometricGraph& udg_;
  std::vector<std::unordered_set<int>> knowledge_;
  MessagePool pool_;
  std::vector<MessagePool::Handle> pending_;  ///< Next round's mail, send order.
  /// Messages deferred by the fault layer, with their due round.
  std::vector<std::pair<int, MessagePool::Handle>> delayed_;
  std::vector<NodeStats> stats_;
  FaultPlan faults_;
  RoundBudgetReport budget_;
  SendTap* tap_ = nullptr;
  bool traceEnabled_ = false;
  std::string trace_;
  int lastRounds_ = 0;
  int round_ = 0;
  int threads_ = 1;
  ObsTally obsTally_;

  // Round-scratch buffers; capacity recycles across rounds.
  std::vector<MessagePool::Handle> inbox_;
  std::vector<MessagePool::Handle> sortTmp_;
  std::vector<std::uint64_t> keys_;    ///< (to << 32 | from), aligned with inbox_.
  std::vector<std::uint64_t> keyTmp_;  ///< Aligned with sortTmp_.
  std::vector<std::uint32_t> counts_;
  std::vector<ChunkBuf> chunks_;
};

/// Handle through which protocol code interacts with the simulator for one
/// node within one round. Sends stage into the chunk-local outbox and the
/// simulator admits them (tap, stats, pool) at merge time in send order;
/// in serial runs outbox is null and sends are admitted immediately, which
/// is the same order without the staging move.
class Context {
 public:
  Context(Simulator& sim, int self, int round, std::vector<Message>* outbox)
      : sim_(sim), self_(self), round_(round), outbox_(outbox) {}

  int self() const { return self_; }
  int round() const { return round_; }
  geom::Vec2 position() const { return sim_.position(self_); }
  geom::Vec2 positionOf(int v) const { return sim_.position(v); }
  std::span<const int> udgNeighbors() const { return sim_.udg().neighbors(self_); }
  std::size_t networkSize() const { return sim_.numNodes(); }
  bool knows(int id) const { return sim_.knows(self_, id); }

  /// Sends over an ad hoc edge; `to` must be a UDG neighbor.
  void sendAdHoc(int to, Message m);
  /// Sends over a long-range link; `to` must be known to this node.
  void sendLongRange(int to, Message m);

 private:
  Simulator& sim_;
  int self_;
  int round_;
  std::vector<Message>* outbox_;
};

/// A distributed protocol: per-node event handlers. Handlers may send
/// messages; sends made while processing round i are delivered in round
/// i+1. State is owned by the protocol object (indexed by node). Keep the
/// state strictly per-node if the protocol should support multi-threaded
/// stepping (Simulator::setThreads).
class Protocol {
 public:
  virtual ~Protocol() = default;
  /// Called once per node before round 1.
  virtual void onStart(Context& ctx) = 0;
  /// Called for each delivered message.
  virtual void onMessage(Context& ctx, const Message& m) = 0;
  /// Called for every node after its mailbox was processed each round.
  virtual void onRoundEnd(Context& ctx) { (void)ctx; }
  /// Return true from any node to keep the simulation alive even with an
  /// empty message queue (e.g. fixed-schedule phases).
  virtual bool wantsMoreRounds() const { return false; }
};

}  // namespace hybrid::sim
