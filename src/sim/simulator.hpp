#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"
#include "sim/fault_plan.hpp"

namespace hybrid::sim {

/// Which kind of link carries a message (paper section 1.1).
enum class Link {
  AdHoc,      ///< WiFi edge of the unit disk graph (free, short range).
  LongRange,  ///< Cellular/satellite link; requires knowing the target ID.
};

/// A message in flight. Payloads are plain words; `ids` additionally
/// carries node IDs, which the receiver learns on delivery (the paper's
/// ID-introduction primitive is "send an ID over an edge of E").
struct Message {
  int from = -1;
  int to = -1;
  Link link = Link::AdHoc;
  int type = 0;                     ///< Protocol-defined tag.
  std::vector<std::int64_t> ints;   ///< Integer payload words.
  std::vector<double> reals;        ///< Real-valued payload words.
  std::vector<int> ids;             ///< Node IDs introduced to the receiver.

  /// Reliable-transport header (protocols/reliable.hpp). relSeq >= 0 marks
  /// an acknowledged data message; relCtl marks the ack itself. Plain
  /// protocols leave both untouched.
  int relSeq = -1;
  bool relCtl = false;

  std::size_t words() const { return ints.size() + reals.size() + ids.size() + 1; }
};

/// Per-node traffic and fault accounting. Fault counters are charged to
/// the *sender* of the affected message.
struct NodeStats {
  long sentAdHoc = 0;
  long sentLongRange = 0;
  long sentWords = 0;
  long receivedWords = 0;
  long droppedAdHoc = 0;      ///< Lost to random drops or receiver crashes.
  long droppedLongRange = 0;  ///< Lost to random drops, blackouts or crashes.
  long duplicated = 0;        ///< Delivered twice by the fault layer.
  long delayed = 0;           ///< Deferred one or more rounds.
};

/// Round-budget accounting for one run: `budget` is the protocol's
/// round allowance (0 = unlimited), `roundsUsed` what the run took.
struct RoundBudgetReport {
  int budget = 0;
  int roundsUsed = 0;
  bool overrun = false;
  int overrunRounds() const { return overrun ? roundsUsed - budget : 0; }
};

/// Observes (and may swallow) every protocol send before it is queued.
/// The reliable transport registers one to attach sequence numbers.
class SendTap {
 public:
  virtual ~SendTap() = default;
  /// Return false to swallow the message (nothing is queued or counted).
  virtual bool onSend(Message& m, int round) = 0;
};

class Protocol;

/// Synchronous message-passing simulator over a hybrid communication
/// graph H = (V, E, E_AH): messages sent in round i are delivered at the
/// beginning of round i+1; each node processes its whole mailbox per round.
///
/// E_AH is the unit disk graph passed at construction. E (the knowledge
/// graph) starts as E_AH — every node knows its UDG neighbors' IDs — and
/// grows through ID-introductions carried in Message::ids. A long-range
/// send to an unknown ID is a protocol error and throws.
///
/// An optional FaultPlan injects deterministic, seed-reproducible faults:
/// per-message drop/duplicate/delay on the ad hoc channel, long-range
/// drops and blackouts, and node crash/recover intervals. With no plan
/// (or an all-zero one) the simulator is exactly the loss-free model.
class Simulator {
 public:
  explicit Simulator(const graph::GeometricGraph& udg);
  Simulator(const graph::GeometricGraph& udg, FaultPlan faults);

  const graph::GeometricGraph& udg() const { return udg_; }
  std::size_t numNodes() const { return udg_.numNodes(); }
  geom::Vec2 position(int v) const { return udg_.position(v); }

  bool knows(int v, int id) const;
  /// Out-of-band introduction (setup only; not counted as traffic).
  void introduce(int v, int id);

  /// Runs `protocol` until no messages are in flight and no node asks to
  /// continue, or until maxRounds. Returns the number of rounds executed.
  int run(Protocol& protocol, int maxRounds = 1 << 20);

  const std::vector<NodeStats>& stats() const { return stats_; }
  long totalMessages() const;
  long maxWordsPerNode() const;
  long totalDropped() const;
  int lastRounds() const { return lastRounds_; }
  int currentRound() const { return round_; }

  /// Resets traffic statistics (knowledge is kept).
  void resetStats();

  void setFaultPlan(FaultPlan faults) { faults_ = std::move(faults); }
  const FaultPlan& faultPlan() const { return faults_; }

  /// Sets the per-run round allowance; run() never stops early because of
  /// it, but budgetReport() flags the overrun afterwards.
  void setRoundBudget(int rounds) { budget_.budget = rounds; }
  const RoundBudgetReport& budgetReport() const { return budget_; }

  /// At most one tap; pass nullptr to clear. See protocols/reliable.hpp.
  void setSendTap(SendTap* tap) { tap_ = tap; }
  SendTap* sendTap() const { return tap_; }

  /// Records every delivery and fault event of subsequent runs into an
  /// append-only text trace. Two runs with equal seeds and protocols must
  /// produce byte-identical traces (enforced by fault_injection_test).
  void enableTrace(bool on = true) { traceEnabled_ = on; }
  const std::string& trace() const { return trace_; }
  void clearTrace() { trace_.clear(); }

 private:
  friend class Context;
  void enqueue(Message m);
  void traceMessage(const char* tag, int round, const Message& m);

  const graph::GeometricGraph& udg_;
  std::vector<std::unordered_set<int>> knowledge_;
  std::vector<Message> pending_;
  /// Messages deferred by the fault layer, with their due round.
  std::vector<std::pair<int, Message>> delayed_;
  std::vector<NodeStats> stats_;
  FaultPlan faults_;
  RoundBudgetReport budget_;
  SendTap* tap_ = nullptr;
  bool traceEnabled_ = false;
  std::string trace_;
  int lastRounds_ = 0;
  int round_ = 0;
};

/// Handle through which protocol code interacts with the simulator for one
/// node within one round.
class Context {
 public:
  Context(Simulator& sim, int self, int round) : sim_(sim), self_(self), round_(round) {}

  int self() const { return self_; }
  int round() const { return round_; }
  geom::Vec2 position() const { return sim_.position(self_); }
  geom::Vec2 positionOf(int v) const { return sim_.position(v); }
  std::span<const int> udgNeighbors() const { return sim_.udg().neighbors(self_); }
  std::size_t networkSize() const { return sim_.numNodes(); }
  bool knows(int id) const { return sim_.knows(self_, id); }

  /// Sends over an ad hoc edge; `to` must be a UDG neighbor.
  void sendAdHoc(int to, Message m);
  /// Sends over a long-range link; `to` must be known to this node.
  void sendLongRange(int to, Message m);

 private:
  Simulator& sim_;
  int self_;
  int round_;
};

/// A distributed protocol: per-node event handlers. Handlers may send
/// messages; sends made while processing round i are delivered in round
/// i+1. State is owned by the protocol object (indexed by node).
class Protocol {
 public:
  virtual ~Protocol() = default;
  /// Called once per node before round 1.
  virtual void onStart(Context& ctx) = 0;
  /// Called for each delivered message.
  virtual void onMessage(Context& ctx, const Message& m) = 0;
  /// Called for every node after its mailbox was processed each round.
  virtual void onRoundEnd(Context& ctx) { (void)ctx; }
  /// Return true from any node to keep the simulation alive even with an
  /// empty message queue (e.g. fixed-schedule phases).
  virtual bool wantsMoreRounds() const { return false; }
};

}  // namespace hybrid::sim
