#include "spatial/grid_index.hpp"

#include <cmath>

namespace hybrid::spatial {

namespace {
std::int64_t packCell(std::int64_t cx, std::int64_t cy) {
  // Interleave-free packing: 32 bits per axis, biased to stay positive.
  return ((cx + 0x40000000LL) << 32) | ((cy + 0x40000000LL) & 0xFFFFFFFFLL);
}
}  // namespace

GridIndex::GridIndex(const std::vector<geom::Vec2>& points, double cellSize)
    : points_(points), cell_(cellSize > 0.0 ? cellSize : 1.0) {
  cells_.reserve(points.size());
  for (int i = 0; i < static_cast<int>(points.size()); ++i) {
    cells_[cellKey(points[static_cast<std::size_t>(i)])].push_back(i);
  }
}

std::int64_t GridIndex::cellKey(geom::Vec2 p) const {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_));
  return packCell(cx, cy);
}

std::vector<int> GridIndex::queryRadius(geom::Vec2 center, double radius) const {
  std::vector<int> out;
  const double r2 = radius * radius;
  const auto cx = static_cast<std::int64_t>(std::floor(center.x / cell_));
  const auto cy = static_cast<std::int64_t>(std::floor(center.y / cell_));
  const auto reach = static_cast<std::int64_t>(std::ceil(radius / cell_));
  if (reach == 1) {
    // Common case (cell size == radius): gather the <= 9 candidate cells
    // first so the result can be reserved once, then filter by distance.
    const std::vector<int>* cand[9];
    std::size_t ncand = 0;
    std::size_t total = 0;
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      // The x-axis half of the packed key is loop-invariant per column.
      const std::int64_t colBits = (cx + dx + 0x40000000LL) << 32;
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const auto it = cells_.find(colBits | ((cy + dy + 0x40000000LL) & 0xFFFFFFFFLL));
        if (it == cells_.end()) continue;
        cand[ncand++] = &it->second;
        total += it->second.size();
      }
    }
    out.reserve(total);
    for (std::size_t k = 0; k < ncand; ++k) {
      for (int i : *cand[k]) {
        if (geom::dist2(points_[static_cast<std::size_t>(i)], center) <= r2) {
          out.push_back(i);
        }
      }
    }
    return out;
  }
  for (std::int64_t dx = -reach; dx <= reach; ++dx) {
    const std::int64_t colBits = (cx + dx + 0x40000000LL) << 32;
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
      const auto it = cells_.find(colBits | ((cy + dy + 0x40000000LL) & 0xFFFFFFFFLL));
      if (it == cells_.end()) continue;
      out.reserve(out.size() + it->second.size());
      for (int i : it->second) {
        if (geom::dist2(points_[static_cast<std::size_t>(i)], center) <= r2) {
          out.push_back(i);
        }
      }
    }
  }
  return out;
}

std::vector<int> GridIndex::neighborsOf(int i, double radius) const {
  auto out = queryRadius(points_[static_cast<std::size_t>(i)], radius);
  std::erase(out, i);
  return out;
}

}  // namespace hybrid::spatial
