#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"

namespace hybrid::spatial {

/// Uniform hash grid over the plane for fixed-radius neighbor queries.
/// With cell size equal to the query radius, a radius query inspects at
/// most 9 cells, giving expected O(1 + output) time for bounded densities.
class GridIndex {
 public:
  GridIndex(const std::vector<geom::Vec2>& points, double cellSize);

  /// Indices of all points within `radius` of `center` (inclusive).
  std::vector<int> queryRadius(geom::Vec2 center, double radius) const;

  /// Indices of all points p with dist(points[i], p) <= radius, i excluded.
  std::vector<int> neighborsOf(int i, double radius) const;

  double cellSize() const { return cell_; }

 private:
  std::int64_t cellKey(geom::Vec2 p) const;

  const std::vector<geom::Vec2>& points_;
  double cell_;
  std::unordered_map<std::int64_t, std::vector<int>> cells_;
};

}  // namespace hybrid::spatial
