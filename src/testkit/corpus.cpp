#include "testkit/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hybrid::testkit {

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void appendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void appendPointList(std::string& out, const std::vector<geom::Vec2>& pts,
                     const char* indent) {
  out += '[';
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i != 0) out += ',';
    out += '\n';
    out += indent;
    out += '[';
    appendDouble(out, pts[i].x);
    out += ", ";
    appendDouble(out, pts[i].y);
    out += ']';
  }
  out += ']';
}

/// Minimal recursive-descent JSON reader, sufficient for the corpus schema
/// (objects, arrays, strings, numbers). Unknown keys are skipped so the
/// format can grow without breaking old readers.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool ok() const { return ok_; }
  void fail() { ok_ = false; }

  void skipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool consume(char c) {
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  std::string parseString() {
    skipWs();
    std::string out;
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      fail();
      return out;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // Only the \u00XX escapes we emit are supported.
            if (pos_ + 4 > s_.size()) {
              fail();
              return out;
            }
            c = static_cast<char>(std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = esc;
        }
      }
      out += c;
    }
    if (pos_ >= s_.size()) {
      fail();
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  double parseNumber() {
    skipWs();
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      fail();
      return 0.0;
    }
    pos_ += static_cast<std::size_t>(end - start);
    return v;
  }

  std::uint64_t parseUint64() {
    skipWs();
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(start, &end, 10);
    if (end == start) {
      fail();
      return 0;
    }
    pos_ += static_cast<std::size_t>(end - start);
    return static_cast<std::uint64_t>(v);
  }

  /// Skips one value of any supported type (for unknown keys).
  void skipValue() {
    const char c = peek();
    if (c == '"') {
      parseString();
    } else if (c == '[') {
      consume('[');
      if (consume(']')) return;
      do {
        skipValue();
      } while (ok_ && consume(','));
      if (!consume(']')) fail();
    } else if (c == '{') {
      consume('{');
      if (consume('}')) return;
      do {
        parseString();
        if (!consume(':')) fail();
        skipValue();
      } while (ok_ && consume(','));
      if (!consume('}')) fail();
    } else {
      parseNumber();
    }
  }

  std::vector<geom::Vec2> parsePointList() {
    std::vector<geom::Vec2> pts;
    if (!consume('[')) {
      fail();
      return pts;
    }
    if (consume(']')) return pts;
    do {
      if (!consume('[')) {
        fail();
        return pts;
      }
      geom::Vec2 p;
      p.x = parseNumber();
      if (!consume(',')) fail();
      p.y = parseNumber();
      if (!consume(']')) fail();
      pts.push_back(p);
    } while (ok_ && consume(','));
    if (!consume(']')) fail();
    return pts;
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::string toJson(const CorpusCase& c) {
  std::string out = "{\n";
  out += "  \"schema\": \"hybrid-testkit-case-v1\",\n";
  out += "  \"generator\": ";
  appendEscaped(out, c.generator);
  out += ",\n  \"seed\": " + std::to_string(c.seed) + ",\n";
  out += "  \"oracle\": ";
  appendEscaped(out, c.oracle);
  out += ",\n  \"note\": ";
  appendEscaped(out, c.note);
  out += ",\n  \"radius\": ";
  appendDouble(out, c.scenario.radius);
  out += ",\n  \"points\": ";
  appendPointList(out, c.scenario.points, "    ");
  out += ",\n  \"obstacles\": [";
  for (std::size_t i = 0; i < c.scenario.obstacles.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    ";
    appendPointList(out, c.scenario.obstacles[i].vertices(), "      ");
  }
  out += "]\n}\n";
  return out;
}

std::optional<CorpusCase> fromJson(const std::string& json) {
  JsonReader r(json);
  CorpusCase c;
  if (!r.consume('{')) return std::nullopt;
  if (r.peek() != '}') {
    do {
      const std::string key = r.parseString();
      if (!r.consume(':')) return std::nullopt;
      if (key == "generator") {
        c.generator = r.parseString();
      } else if (key == "seed") {
        c.seed = r.parseUint64();
      } else if (key == "oracle") {
        c.oracle = r.parseString();
      } else if (key == "note") {
        c.note = r.parseString();
      } else if (key == "radius") {
        c.scenario.radius = r.parseNumber();
      } else if (key == "points") {
        c.scenario.points = r.parsePointList();
      } else if (key == "obstacles") {
        if (!r.consume('[')) return std::nullopt;
        if (!r.consume(']')) {
          do {
            c.scenario.obstacles.emplace_back(r.parsePointList());
          } while (r.ok() && r.consume(','));
          if (!r.consume(']')) return std::nullopt;
        }
      } else {
        r.skipValue();
      }
      if (!r.ok()) return std::nullopt;
    } while (r.consume(','));
  }
  if (!r.consume('}')) return std::nullopt;
  if (c.scenario.points.empty() || c.scenario.radius <= 0.0) return std::nullopt;
  return c;
}

bool saveCase(const std::string& path, const CorpusCase& c) {
  std::ofstream os(path);
  if (!os) return false;
  os << toJson(c);
  return static_cast<bool>(os);
}

std::optional<CorpusCase> loadCase(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  return fromJson(buf.str());
}

std::vector<std::string> listCorpus(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hybrid::testkit
