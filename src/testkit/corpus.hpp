#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/generator.hpp"

namespace hybrid::testkit {

/// A replayable fuzz finding: the (shrunk) scenario plus its provenance.
/// Cases are stored as JSON under tests/corpus/ and replayed forever after
/// by corpus_regression_test — a failure the fuzzer found once becomes a
/// permanent tier-1 regression check.
struct CorpusCase {
  std::string generator;  ///< Generator that produced the original scenario.
  std::uint64_t seed = 0; ///< Trial seed (regenerates the unshrunk input).
  std::string oracle;     ///< Oracle that failed when the case was recorded.
  std::string note;       ///< Human-readable failure summary at record time.
  scenario::Scenario scenario;  ///< The shrunk, replayable deployment.
};

/// Serializes with full double round-trip precision (%.17g): replaying a
/// corpus case re-runs the oracles on bit-identical coordinates.
std::string toJson(const CorpusCase& c);

/// Parses toJson() output (tolerates unknown keys); nullopt on malformed
/// input.
std::optional<CorpusCase> fromJson(const std::string& json);

bool saveCase(const std::string& path, const CorpusCase& c);
std::optional<CorpusCase> loadCase(const std::string& path);

/// Sorted paths of the "*.json" files directly under `dir` (empty when the
/// directory is missing). Sorted so replay order — and any log diff — is
/// deterministic.
std::vector<std::string> listCorpus(const std::string& dir);

}  // namespace hybrid::testkit
