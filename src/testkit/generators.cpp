#include "testkit/generators.hpp"

#include <cmath>
#include <numbers>
#include <random>

#include "scenario/shapes.hpp"
#include "testkit/rng.hpp"

namespace hybrid::testkit {

namespace {

using scenario::finalizeScenario;
using scenario::makeScenario;
using scenario::Scenario;
using scenario::ScenarioParams;

double uniform(std::mt19937_64& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

int uniformInt(std::mt19937_64& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

/// Grid scenario with the common testkit sizing: small enough that a fuzz
/// trial (build + all oracles) stays in the low milliseconds, dense enough
/// that holes form around the obstacles.
ScenarioParams baseParams(std::mt19937_64& rng, double side) {
  ScenarioParams p;
  p.width = p.height = side;
  p.spacing = uniform(rng, 0.5, 0.7);
  p.jitter = uniform(rng, 0.2, 0.4);
  p.seed = static_cast<unsigned>(rng());
  return p;
}

Scenario genRandomUdg(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ScenarioParams p = baseParams(rng, uniform(rng, 9.0, 13.0));
  // Density sweep: sparse deployments fragment into boundary-heavy graphs,
  // dense ones produce fat interiors with few holes.
  p.spacing = uniform(rng, 0.45, 0.8);
  const int numObstacles = uniformInt(rng, 0, 2);
  for (int i = 0; i < numObstacles; ++i) {
    const geom::Vec2 c{uniform(rng, 3.0, p.width - 3.0),
                       uniform(rng, 3.0, p.height - 3.0)};
    if (uniformInt(rng, 0, 1) == 0) {
      const double w = uniform(rng, 1.2, 2.6);
      const double h = uniform(rng, 1.2, 2.6);
      p.obstacles.push_back(
          scenario::rectangleObstacle({c.x - w / 2, c.y - h / 2}, {c.x + w / 2, c.y + h / 2}));
    } else {
      p.obstacles.push_back(scenario::regularPolygonObstacle(
          c, uniform(rng, 1.0, 1.8), uniformInt(rng, 3, 8), uniform(rng, 0.0, 1.0)));
    }
  }
  return makeScenario(p);
}

Scenario genMazeComb(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ScenarioParams p = baseParams(rng, 15.0);
  const int teeth = uniformInt(rng, 2, 4);
  const double toothWidth = uniform(rng, 1.0, 1.8);
  const double gapWidth = uniform(rng, 1.6, 2.4);
  const double depth = uniform(rng, 4.0, 7.0);
  p.obstacles.push_back(scenario::combObstacle(
      {uniform(rng, 1.5, 3.0), uniform(rng, 2.0, 3.5)}, teeth, toothWidth, gapWidth,
      depth, uniform(rng, 0.8, 1.2)));
  return makeScenario(p);
}

Scenario genSpiral(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ScenarioParams p = baseParams(rng, 16.0);
  const int turns = 2;
  const double corridor = uniform(rng, 1.5, 2.1);
  const double wall = uniform(rng, 0.7, 1.0);
  for (auto& poly :
       scenario::spiralWalls({p.width * 0.45, p.height * 0.45}, turns, corridor, wall)) {
    p.obstacles.push_back(std::move(poly));
  }
  return makeScenario(p);
}

Scenario genCollinear(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Several long horizontal lines of nodes, closer than the radius so the
  // UDG is connected, with per-point vertical jitter chosen from {exactly
  // collinear, 1e-9, 1e-6}: orientation/incircle predicates must make
  // consistent calls on all three scales.
  const int lines = uniformInt(rng, 3, 6);
  const double dy = uniform(rng, 0.55, 0.9);
  const double dx = uniform(rng, 0.6, 0.9);
  const int perLine = uniformInt(rng, 14, 26);
  const double jitterScales[3] = {0.0, 1e-9, 1e-6};
  std::vector<geom::Vec2> pts;
  for (int l = 0; l < lines; ++l) {
    const double eps = jitterScales[uniformInt(rng, 0, 2)];
    for (int i = 0; i < perLine; ++i) {
      const double wiggle = eps == 0.0 ? 0.0 : uniform(rng, -eps, eps);
      pts.push_back({i * dx, l * dy + wiggle});
    }
  }
  return finalizeScenario(std::move(pts), {}, 1.0);
}

Scenario genCocircular(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Concentric rings of exactly cocircular points. With the innermost ring
  // farther than the radius from the center, the middle is a radio hole
  // whose boundary is maximally degenerate for the Delaunay emptiness test.
  const geom::Vec2 c{0.0, 0.0};
  const double r0 = uniform(rng, 1.3, 2.2);
  const double dr = uniform(rng, 0.55, 0.8);
  const int rings = uniformInt(rng, 4, 6);
  const double arc = uniform(rng, 0.55, 0.8);
  std::vector<geom::Vec2> pts;
  for (int k = 0; k < rings; ++k) {
    const double r = r0 + k * dr;
    const int n = std::max(6, static_cast<int>(std::ceil(2.0 * std::numbers::pi * r / arc)));
    const double phase = uniform(rng, 0.0, 1.0);
    for (int i = 0; i < n; ++i) {
      const double a = phase + 2.0 * std::numbers::pi * i / n;
      pts.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
    }
  }
  return finalizeScenario(std::move(pts), {}, 1.0);
}

Scenario genHullTangent(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ScenarioParams p = baseParams(rng, 14.0);
  // Two rectangles with aligned horizontal edges and a thin corridor of
  // nodes between them. The resulting hole hulls run parallel and nearly
  // touch, so endpoint-to-site visibility segments graze hull corners —
  // the exact class of configuration PR 3's visible()-orientation fix
  // addressed. Low jitter keeps the node rows (and thus the hulls) nearly
  // aligned with the obstacle edges.
  p.jitter = uniform(rng, 0.04, 0.15);
  const double y0 = uniform(rng, 4.0, 5.0);
  const double y1 = y0 + uniform(rng, 3.0, 4.0);
  const double xa = uniform(rng, 2.0, 3.0);
  const double wa = uniform(rng, 2.0, 3.2);
  // Gap of 2-5 spacings: sometimes one merged hole, sometimes two holes
  // with grazing hulls — both sides of the tangency are exercised.
  const double gap = p.spacing * uniform(rng, 2.0, 5.0);
  const double wb = uniform(rng, 2.0, 3.2);
  p.obstacles.push_back(scenario::rectangleObstacle({xa, y0}, {xa + wa, y1}));
  p.obstacles.push_back(
      scenario::rectangleObstacle({xa + wa + gap, y0}, {xa + wa + gap + wb, y1}));
  return makeScenario(p);
}

Scenario genHullIntersect(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ScenarioParams p = baseParams(rng, 15.0);
  // A U-shape whose mouth swallows a separate block: the two holes are
  // disjoint but the block's hull lies inside the U's hull — the paper's
  // unsupported intersecting-hulls case (§7 future work).
  const geom::Vec2 c{p.width / 2.0, p.height / 2.0};
  const double w = uniform(rng, 6.5, 8.5);
  const double h = uniform(rng, 5.5, 7.0);
  const double t = uniform(rng, 1.2, 1.6);
  p.obstacles.push_back(scenario::uShapeObstacle(c, w, h, t));
  const double bw = uniform(rng, 1.0, 1.6);
  p.obstacles.push_back(scenario::rectangleObstacle(
      {c.x - bw, c.y - 0.5}, {c.x + bw, c.y + uniform(rng, 1.0, 1.8)}));
  return makeScenario(p);
}

Scenario genHullChain(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ScenarioParams p = baseParams(rng, 17.0);
  // A comb with a hanging block inside every gap: each block's hole hull
  // lies inside the comb hole's hull, so hull_groups merges the whole
  // chain into one group snaking across the field — k interlocked holes
  // rather than hull_intersect's single pair.
  const int teeth = uniformInt(rng, 3, 4);
  const double toothWidth = uniform(rng, 1.0, 1.4);
  const double gapWidth = uniform(rng, 2.8, 3.4);
  const double depth = uniform(rng, 3.5, 5.0);
  const double bar = uniform(rng, 0.8, 1.2);
  const geom::Vec2 o{uniform(rng, 1.5, 2.5), uniform(rng, 2.5, 3.5)};
  p.obstacles.push_back(scenario::combObstacle(o, teeth, toothWidth, gapWidth, depth, bar));
  for (int g = 0; g + 1 < teeth; ++g) {
    // Gap g spans x in [o.x + toothWidth*(g+1) + gapWidth*g, +gapWidth].
    const double gx = o.x + toothWidth * (g + 1) + gapWidth * g;
    const double clearance = std::max(0.6, uniform(rng, 1.0, 1.3));
    const double bx0 = gx + clearance;
    const double bx1 = gx + gapWidth - clearance;
    if (bx1 - bx0 < 0.4) continue;
    const double by0 = o.y + bar + uniform(rng, 1.2, 2.0);
    const double by1 = o.y + bar + depth + uniform(rng, 0.5, 1.5);
    p.obstacles.push_back(scenario::rectangleObstacle({bx0, by0}, {bx1, by1}));
  }
  return makeScenario(p);
}

Scenario genHullNest(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ScenarioParams p = baseParams(rng, 15.0);
  // An obstacle nested in the bay of a larger U: the inner hole's hull is
  // entirely inside the outer hole's hull (full nesting, not just the
  // partial overlap of hull_intersect), and the nested obstacle sits deep
  // enough that bay routing around it has to cross the outer hull.
  const geom::Vec2 c{p.width / 2.0, p.height / 2.0};
  const double w = uniform(rng, 7.0, 9.0);
  const double h = uniform(rng, 6.0, 7.5);
  const double t = uniform(rng, 1.0, 1.4);
  p.obstacles.push_back(scenario::uShapeObstacle(c, w, h, t));
  // Mouth interior: x in [c.x - w/2 + t, c.x + w/2 - t], y above the floor
  // at c.y - h/2 + t. Keep >= ~2 node spacings of clearance to the walls
  // so the nested hole stays distinct from the U's hole.
  const double innerHalf = w / 2.0 - t;
  const double clear = uniform(rng, 1.2, 1.6);
  if (uniformInt(rng, 0, 1) == 0) {
    const double bw = std::max(0.8, innerHalf - clear);
    p.obstacles.push_back(scenario::rectangleObstacle(
        {c.x - bw, c.y - h / 2.0 + t + clear},
        {c.x + bw, c.y - h / 2.0 + t + clear + uniform(rng, 1.2, 2.2)}));
  } else {
    // Nested same-orientation U: a bay within a bay.
    const double iw = std::max(2.2, 2.0 * (innerHalf - clear));
    const double ih = uniform(rng, 2.2, 3.0);
    const double it = uniform(rng, 0.7, 0.9);
    p.obstacles.push_back(scenario::uShapeObstacle(
        {c.x, c.y - h / 2.0 + t + clear + ih / 2.0}, iw, ih, it));
  }
  return makeScenario(p);
}

}  // namespace

const std::vector<Generator>& generators() {
  // Appended entries keep the historical trial -> generator round-robin
  // mapping of the first seven (makeCase indexes this list).
  static const std::vector<Generator> kGenerators = {
      {"random_udg", genRandomUdg},       {"maze_comb", genMazeComb},
      {"spiral", genSpiral},              {"collinear", genCollinear},
      {"cocircular", genCocircular},      {"hull_tangent", genHullTangent},
      {"hull_intersect", genHullIntersect}, {"hull_chain", genHullChain},
      {"hull_nest", genHullNest},
  };
  return kGenerators;
}

const Generator* findGenerator(std::string_view name) {
  for (const auto& g : generators()) {
    if (name == g.name) return &g;
  }
  return nullptr;
}

GeneratedCase makeCase(std::size_t index, std::uint64_t seed) {
  const Generator& g = generators()[index % generators().size()];
  GeneratedCase out;
  out.generator = g.name;
  out.seed = seed;
  out.scenario = g.make(seed);
  return out;
}

}  // namespace hybrid::testkit
