#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/generator.hpp"

namespace hybrid::testkit {

/// One generated fuzz input: the scenario plus the provenance needed to
/// regenerate it bit-identically (`makeCase(generatorIndexOf(generator),
/// seed)` or `findGenerator(generator)->make(seed)`).
struct GeneratedCase {
  std::string generator;
  std::uint64_t seed = 0;
  scenario::Scenario scenario;
};

/// A seeded adversarial scenario generator. `make` must be a pure function
/// of the seed: the whole differential-testing pipeline (trial replay,
/// shrinking, corpus triage) leans on that reproducibility.
struct Generator {
  const char* name;
  scenario::Scenario (*make)(std::uint64_t seed);
};

/// The registry, in fixed order (trial t uses generators()[t % size]):
///  - random_udg:     connected UDGs at swept densities, random obstacles
///  - maze_comb:      comb/maze obstacle — the paper's lower-bound shape
///  - spiral:         rectangular spiral corridor (worst-case detours)
///  - collinear:      near-degenerate collinear clusters (predicate stress)
///  - cocircular:     exact + perturbed cocircular rings (incircle stress)
///  - hull_tangent:   hole hulls grazing each other (PR 3's failure class)
///  - hull_intersect: interlocked hulls — the paper's unsupported case
const std::vector<Generator>& generators();

/// nullptr when unknown.
const Generator* findGenerator(std::string_view name);

/// Builds generators()[index % size] with `seed`, tagging provenance.
GeneratedCase makeCase(std::size_t index, std::uint64_t seed);

}  // namespace hybrid::testkit
