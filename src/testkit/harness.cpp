#include "testkit/harness.hpp"

#include <cstdio>
#include <exception>
#include <sstream>

#include "testkit/rng.hpp"

namespace hybrid::testkit {

namespace {

/// Runs the registry on a built context; fills per-oracle stats and
/// reports the first failure (oracle index, message) if any.
struct CaseVerdict {
  int failedOracle = -1;
  std::string message;
};

CaseVerdict runOracles(const CaseContext& ctx, std::vector<FuzzSummary::OracleStats>* stats) {
  CaseVerdict v;
  const auto& reg = oracles();
  for (std::size_t i = 0; i < reg.size(); ++i) {
    OracleResult r;
    try {
      r = reg[i].check(ctx);
    } catch (const std::exception& e) {
      r.ok = false;
      r.failure = std::string("unhandled exception: ") + e.what();
    }
    if (stats) {
      auto& s = (*stats)[i];
      s.runs += 1;
      if (r.skipped) {
        s.skips += 1;
      } else if (r.ok) {
        s.passes += 1;
      } else {
        s.failures += 1;
      }
    }
    if (!r.ok && !r.skipped) {
      v.failedOracle = static_cast<int>(i);
      v.message = r.failure;
      return v;
    }
  }
  return v;
}

std::string corpusFileName(const FuzzFailure& f) {
  std::ostringstream os;
  os << f.oracle << '_' << f.generator << '_' << f.caseSeed << ".json";
  return os.str();
}

}  // namespace

FuzzSummary runFuzz(const FuzzOptions& opts) {
  FuzzSummary summary;
  const auto& gens = generators();
  const auto& reg = oracles();
  for (const auto& g : gens) summary.perGenerator.emplace_back(g.name, 0);
  summary.perOracle.resize(reg.size());
  for (std::size_t i = 0; i < reg.size(); ++i) summary.perOracle[i].name = reg[i].name;

  for (int trial = 0; trial < opts.trials; ++trial) {
    const std::size_t genIdx = static_cast<std::size_t>(trial) % gens.size();
    const std::uint64_t caseSeed = deriveSeed(opts.seed, static_cast<std::uint64_t>(trial));
    const GeneratedCase gc = makeCase(genIdx, caseSeed);
    summary.perGenerator[genIdx].second += 1;
    summary.trials += 1;

    FuzzFailure failure;
    failure.trial = trial;
    failure.generator = gc.generator;
    failure.caseSeed = caseSeed;
    failure.originalNodes = gc.scenario.points.size();

    int failedOracle = -1;
    try {
      const CaseContext ctx(gc.scenario, caseSeed, opts.threads, opts.bug, opts.tableMode,
                            opts.routerKind, opts.abstractionMode);
      const CaseVerdict v = runOracles(ctx, &summary.perOracle);
      failedOracle = v.failedOracle;
      if (failedOracle >= 0) {
        failure.oracle = reg[static_cast<std::size_t>(failedOracle)].name;
        failure.message = v.message;
      }
    } catch (const std::exception& e) {
      failedOracle = static_cast<int>(reg.size());  // construction, pre-oracle
      failure.oracle = "construction";
      failure.message = std::string("unhandled exception: ") + e.what();
    }

    if (failedOracle < 0) {
      if (opts.verbose) {
        std::printf("[fuzz] trial %d %s seed=%llu n=%zu ok\n", trial, gc.generator.c_str(),
                    static_cast<unsigned long long>(caseSeed), gc.scenario.points.size());
      }
      continue;
    }

    // Shrink: keep only candidates that fail the same way (same oracle for
    // oracle failures; any pipeline crash for construction failures).
    const auto reproduces = [&](const scenario::Scenario& candidate) {
      if (failure.oracle == "construction") {
        try {
          CaseContext probe(candidate, caseSeed, opts.threads, opts.bug, opts.tableMode,
                            opts.routerKind, opts.abstractionMode);
          (void)probe;
          return false;
        } catch (...) {
          return true;
        }
      }
      const CaseContext probe(candidate, caseSeed, opts.threads, opts.bug, opts.tableMode,
                              opts.routerKind, opts.abstractionMode);
      const OracleResult r = reg[static_cast<std::size_t>(failedOracle)].check(probe);
      return !r.ok && !r.skipped;
    };
    scenario::Scenario shrunk = shrinkScenario(gc.scenario, reproduces, opts.shrink).scenario;
    failure.shrunkNodes = shrunk.points.size();

    if (!opts.corpusDir.empty()) {
      CorpusCase cc;
      cc.generator = gc.generator;
      cc.seed = caseSeed;
      cc.oracle = failure.oracle;
      cc.note = failure.message;
      cc.scenario = std::move(shrunk);
      const std::string path = opts.corpusDir + "/" + corpusFileName(failure);
      if (saveCase(path, cc)) failure.corpusPath = path;
    }
    if (opts.verbose) {
      std::printf("[fuzz] trial %d %s seed=%llu FAIL %s (n=%zu -> %zu)\n", trial,
                  gc.generator.c_str(), static_cast<unsigned long long>(caseSeed),
                  failure.oracle.c_str(), failure.originalNodes, failure.shrunkNodes);
    }
    summary.failures.push_back(std::move(failure));
  }
  return summary;
}

std::string FuzzSummary::report() const {
  std::ostringstream os;
  os << "fuzz summary: trials=" << trials << " failures=" << failures.size() << "\n";
  os << "generators:";
  for (const auto& [name, count] : perGenerator) os << ' ' << name << '=' << count;
  os << "\noracles:\n";
  for (const auto& s : perOracle) {
    os << "  " << s.name << ": runs=" << s.runs << " passes=" << s.passes
       << " skips=" << s.skips << " failures=" << s.failures << "\n";
  }
  for (const auto& f : failures) {
    os << "failure: trial=" << f.trial << " generator=" << f.generator
       << " seed=" << f.caseSeed << " oracle=" << f.oracle << " nodes=" << f.originalNodes
       << "->" << f.shrunkNodes;
    if (!f.corpusPath.empty()) os << " corpus=" << f.corpusPath;
    os << "\n  " << f.message << "\n";
  }
  return os.str();
}

std::string replayCase(const CorpusCase& c, int threads) {
  try {
    const CaseContext ctx(c.scenario, c.seed, threads, InjectedBug::None);
    const CaseVerdict v = runOracles(ctx, nullptr);
    if (v.failedOracle < 0) return {};
    return std::string(oracles()[static_cast<std::size_t>(v.failedOracle)].name) + ": " +
           v.message;
  } catch (const std::exception& e) {
    return std::string("construction: unhandled exception: ") + e.what();
  }
}

}  // namespace hybrid::testkit
