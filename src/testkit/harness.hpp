#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testkit/corpus.hpp"
#include "testkit/generators.hpp"
#include "testkit/oracles.hpp"
#include "testkit/shrink.hpp"

namespace hybrid::testkit {

struct FuzzOptions {
  std::uint64_t seed = 1;  ///< Master seed; trial t runs on deriveSeed(seed, t).
  int trials = 100;
  /// Thread count the oracles' parallel paths run at. Does NOT parallelize
  /// trials themselves: the trial loop is serial so the summary is
  /// reproducible line for line — and because the parallel paths under
  /// test are thread-count-invariant, the summary is too.
  int threads = 2;
  /// Directory failing cases are shrunk into ("" disables recording).
  std::string corpusDir;
  /// Deliberate defect to plant (fuzz_router --inject-bug); proves the
  /// find -> shrink -> record pipeline end to end.
  InjectedBug bug = InjectedBug::None;
  /// Site-pair backend the router-building oracles run against
  /// (fuzz_router --table-mode); lets the whole registry exercise hub
  /// labels, not just the label_parity oracle.
  routing::TableMode tableMode = routing::TableMode::Auto;
  /// Serving engine the batch-serving oracles run against
  /// (fuzz_router --router); stateless swaps in the per-node label
  /// forwarder beyond what stateless_parity always cross-checks.
  RouterKind routerKind = RouterKind::Centralized;
  /// Per-hole abstraction the router-building oracles run against
  /// (fuzz_router --abstraction); bbox runs the whole registry on the
  /// bounding-box overlay beyond what bbox_parity always forces.
  routing::AbstractionMode abstractionMode = routing::AbstractionMode::Hulls;
  ShrinkOptions shrink;
  bool verbose = false;  ///< Per-trial progress lines on stdout.
};

struct FuzzFailure {
  int trial = 0;
  std::string generator;
  std::uint64_t caseSeed = 0;
  std::string oracle;
  std::string message;
  std::size_t originalNodes = 0;
  std::size_t shrunkNodes = 0;
  std::string corpusPath;  ///< Empty when recording was disabled or failed.
};

/// Deterministic run report: identical runs (same options, any --threads)
/// print identical summaries.
struct FuzzSummary {
  int trials = 0;
  /// Cases per generator, in registry order.
  std::vector<std::pair<std::string, int>> perGenerator;
  struct OracleStats {
    std::string name;
    int runs = 0;
    int passes = 0;
    int skips = 0;
    int failures = 0;
  };
  /// Stats per oracle, in registry order.
  std::vector<OracleStats> perOracle;
  std::vector<FuzzFailure> failures;

  bool allPassed() const { return failures.empty(); }
  /// Multi-line human/diff-friendly text (what fuzz_router prints).
  std::string report() const;
};

FuzzSummary runFuzz(const FuzzOptions& opts);

/// Replays a recorded case through every oracle (no bug injection: the
/// corpus pins currently-correct behavior). Returns "" when all pass,
/// otherwise "<oracle>: <failure>" of the first failing oracle.
std::string replayCase(const CorpusCase& c, int threads = 2);

}  // namespace hybrid::testkit
