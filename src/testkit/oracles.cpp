#include "testkit/oracles.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <random>
#include <sstream>
#include <thread>

#include "abstraction/bbox_overlay.hpp"
#include "abstraction/hull_groups.hpp"
#include "delaunay/triangulation.hpp"
#include "graph/csr.hpp"
#include "graph/dijkstra_workspace.hpp"
#include "graph/shortest_path.hpp"
#include "protocols/ldel_protocol.hpp"
#include "protocols/reliable.hpp"
#include "routing/hub_labels.hpp"
#include "routing/node_labels.hpp"
#include "routing/stateless_router.hpp"
#include "scenario/churn.hpp"
#include "serve/route_service.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"
#include "testkit/rng.hpp"

namespace hybrid::testkit {

namespace {

constexpr double kEps = 1e-9;
/// Distance comparisons between the engine and the rebuilt ground truth:
/// equal-length paths may group FP additions differently.
constexpr double kDistEps = 1e-6;

OracleResult failResult(const std::string& message) {
  OracleResult r;
  r.ok = false;
  r.failure = message;
  return r;
}

OracleResult skipResult() {
  OracleResult r;
  r.skipped = true;
  return r;
}

bool closeEnough(double a, double b, double eps) {
  if (std::isinf(a) || std::isinf(b)) return std::isinf(a) && std::isinf(b);
  return std::abs(a - b) <= eps * std::max(1.0, std::max(std::abs(a), std::abs(b)));
}

/// Euclidean length of from -> waypoints -> to in the LDel embedding.
double polylineLength(const core::HybridNetwork& net, geom::Vec2 from, geom::Vec2 to,
                      const std::vector<graph::NodeId>& waypoints) {
  double len = 0.0;
  geom::Vec2 prev = from;
  for (graph::NodeId w : waypoints) {
    const geom::Vec2 p = net.ldel().position(w);
    len += geom::dist(prev, p);
    prev = p;
  }
  return len + geom::dist(prev, to);
}

// ---------------------------------------------------------------------------
// ldel_invariants
// ---------------------------------------------------------------------------

OracleResult checkLdelInvariants(const CaseContext& ctx) {
  const auto& net = ctx.net();
  const auto& ldel = net.ldel();
  const double radius = net.radius();

  if (!ldel.isPlanarEmbedding()) {
    return failResult("LDel^2 embedding has crossing edges");
  }
  for (const auto& [u, v] : ldel.edges()) {
    if (ldel.edgeLength(u, v) > radius + kEps) {
      std::ostringstream os;
      os << "LDel edge " << u << "-" << v << " longer than the radius: "
         << ldel.edgeLength(u, v);
      return failResult(os.str());
    }
    if (!net.udg().hasEdge(u, v)) {
      std::ostringstream os;
      os << "LDel edge " << u << "-" << v << " missing from the UDG";
      return failResult(os.str());
    }
  }
  if (ldel.numNodes() > 1 && !ldel.isConnected()) {
    return failResult("LDel disconnected on a connected UDG");
  }
  // Spanner samples (Thm 2.9: LDel^2 is a 1.998-spanner of the UDG).
  for (std::size_t i = 0; i < ctx.pairs().size(); ++i) {
    const auto [s, t] = ctx.pairs()[i];
    const double udg = net.shortestUdgDistance(s, t);
    const double spanner = graph::shortestPathLength(ldel, s, t);
    if (spanner > 1.998 * udg + kEps) {
      std::ostringstream os;
      os << "spanner ratio violated for pair " << i << " (" << s << "->" << t
         << "): ldel=" << spanner << " udg=" << udg;
      return failResult(os.str());
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// hull_invariants
// ---------------------------------------------------------------------------

OracleResult checkHullInvariants(const CaseContext& ctx) {
  const auto& net = ctx.net();
  const auto& abstractions = net.abstractions();
  const auto& holes = net.holes().holes;

  for (std::size_t i = 0; i < abstractions.size(); ++i) {
    const auto& a = abstractions[i];
    if (a.hullPolygon.size() < 3) continue;
    if (!a.hullPolygon.isConvex()) {
      std::ostringstream os;
      os << "hull of hole " << a.holeIndex << " is not convex";
      return failResult(os.str());
    }
    // Every ring node of the hole lies inside (or on) its convex hull.
    const auto& ring = holes[static_cast<std::size_t>(a.holeIndex)].ring;
    for (graph::NodeId v : ring) {
      if (!a.hullPolygon.contains(net.ldel().position(v))) {
        std::ostringstream os;
        os << "ring node " << v << " of hole " << a.holeIndex
           << " escapes its convex hull";
        return failResult(os.str());
      }
    }
  }

  // Pairwise disjointness detection must agree with hull_groups' predicate.
  // The predicates differ on purpose at exact boundary contact (the network
  // check is strict, the merge predicate is not), so only the one-sided
  // implications are checked.
  bool anyLooseIntersection = false;
  for (std::size_t i = 0; i < abstractions.size(); ++i) {
    if (abstractions[i].hullPolygon.size() < 3) continue;
    for (std::size_t j = i + 1; j < abstractions.size(); ++j) {
      if (abstractions[j].hullPolygon.size() < 3) continue;
      if (abstraction::convexPolygonsIntersect(abstractions[i].hullPolygon,
                                               abstractions[j].hullPolygon)) {
        anyLooseIntersection = true;
      }
    }
  }
  const bool disjoint = net.convexHullsDisjoint();
  if (!anyLooseIntersection && !disjoint) {
    return failResult(
        "convexHullsDisjoint() reports an intersection but no hull pair "
        "intersects under convexPolygonsIntersect");
  }

  const auto groups = abstraction::mergeIntersectingHulls(net.ldel(), abstractions);
  std::vector<char> seen(abstractions.size(), 0);
  for (const auto& g : groups) {
    for (int m : g.members) {
      if (m < 0 || m >= static_cast<int>(abstractions.size()) ||
          seen[static_cast<std::size_t>(m)]) {
        return failResult("hull groups do not partition the abstractions");
      }
      seen[static_cast<std::size_t>(m)] = 1;
    }
    if (g.hullPolygon.size() >= 3) {
      if (!g.hullPolygon.isConvex()) {
        return failResult("merged group hull is not convex");
      }
      for (int m : g.members) {
        for (const geom::Vec2 v :
             abstractions[static_cast<std::size_t>(m)].hullPolygon.vertices()) {
          if (!g.hullPolygon.contains(v)) {
            return failResult("merged group hull does not contain a member hull");
          }
        }
      }
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      std::ostringstream os;
      os << "abstraction " << i << " missing from every hull group";
      return failResult(os.str());
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// overlay_parity
// ---------------------------------------------------------------------------

void applyBug(InjectedBug bug, routing::OverlayRoute& fresh) {
  switch (bug) {
    case InjectedBug::DropOverlayWaypoint:
      if (!fresh.waypoints.empty()) fresh.waypoints.pop_back();
      break;
    case InjectedBug::InflateOverlayDistance:
      if (fresh.reachable && fresh.distance > 0.0 &&
          !std::isinf(fresh.distance)) {
        fresh.distance *= 1.01;
      }
      break;
    case InjectedBug::SwapDeliveryOrder:  // sim-only; handled by its oracle
    case InjectedBug::DropLabelHub:       // label-slab-only; handled by label_parity
    case InjectedBug::WrongNextHop:       // node-label-only; handled by stateless_parity
    case InjectedBug::DropBBoxCorner:     // bbox-site-only; handled by bbox_parity
    case InjectedBug::None:
      break;
  }
}

OracleResult checkOverlayParity(const CaseContext& ctx) {
  const auto& net = ctx.net();
  const auto bbox = geom::BBox::of(net.ldel().positions());
  std::mt19937_64 rng(deriveSeed(ctx.seed(), 0x6f766c79 /* "ovly" */));
  std::uniform_real_distribution<double> dx(bbox.lo.x, bbox.hi.x);
  std::uniform_real_distribution<double> dy(bbox.lo.y, bbox.hi.y);
  std::uniform_int_distribution<int> pickNode(
      0, static_cast<int>(net.ldel().numNodes()) - 1);

  for (const routing::EdgeMode em :
       {routing::EdgeMode::Visibility, routing::EdgeMode::Delaunay}) {
    routing::HybridOptions opts{routing::SiteMode::HullNodes, em, true};
    opts.table = ctx.tableMode();
    opts.abstraction = ctx.abstractionMode();
    const auto router = net.makeRouter(opts);
    const routing::OverlayGraph& overlay = router->overlay();
    if (overlay.sites().empty()) continue;  // hole-free instance: nothing to differ
    std::uniform_int_distribution<int> pickSite(
        0, static_cast<int>(overlay.sites().size()) - 1);

    for (int q = 0; q < 10; ++q) {
      geom::Vec2 a{dx(rng), dy(rng)};
      geom::Vec2 b{dx(rng), dy(rng)};
      // Mix in node- and site-coincident endpoints: cost-0 entries and the
      // pure table-lookup branch have their own code paths.
      if (q % 3 == 1) a = net.ldel().position(pickNode(rng));
      if (q % 3 == 2) {
        a = overlay.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
        b = overlay.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
      }

      const routing::OverlayRoute ref = referenceOverlayQuery(overlay, a, b);
      routing::OverlayRoute fresh = overlay.waypointsWithDistance(a, b);
      applyBug(ctx.bug(), fresh);

      std::ostringstream at;
      at << (em == routing::EdgeMode::Visibility ? "visibility" : "delaunay")
         << " query " << q << " (" << a.x << "," << a.y << ")->(" << b.x << "," << b.y
         << ")";
      if (fresh.reachable != ref.reachable) {
        return failResult("overlay reachability mismatch at " + at.str());
      }
      if (!fresh.reachable) continue;
      if (!closeEnough(fresh.distance, ref.distance, kDistEps)) {
        std::ostringstream os;
        os << "overlay distance mismatch at " << at.str() << ": engine="
           << fresh.distance << " rebuild=" << ref.distance;
        return failResult(os.str());
      }
      // Tie-broken waypoint lists may differ; both must realize the optimum.
      if (fresh.waypoints != ref.waypoints || ctx.bug() != InjectedBug::None) {
        const double len = polylineLength(net, a, b, fresh.waypoints);
        if (!closeEnough(len, ref.distance, kDistEps)) {
          std::ostringstream os;
          os << "overlay waypoints do not realize the optimal distance at "
             << at.str() << ": polyline=" << len << " optimal=" << ref.distance;
          return failResult(os.str());
        }
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// route_batch_parity
// ---------------------------------------------------------------------------

bool sameRoute(const routing::RouteResult& a, const routing::RouteResult& b) {
  return a.path == b.path && a.delivered == b.delivered &&
         a.blockedHole == b.blockedHole && a.fallbacks == b.fallbacks &&
         a.bayExtremePoints == b.bayExtremePoints && a.protocolCase == b.protocolCase;
}

OracleResult checkRouteBatchParity(const CaseContext& ctx) {
  if (ctx.pairs().empty()) return skipResult();
  const auto& net = ctx.net();
  // --router stateless swaps the serving engine under the same parity
  // check: the per-node label forwarder must also be bit-identical to its
  // serial loop at any thread count.
  std::unique_ptr<routing::StatelessRouter> stateless;
  if (ctx.routerKind() == RouterKind::Stateless) {
    stateless = std::make_unique<routing::StatelessRouter>(net.ldel(), 1);
  }
  const auto routeOne = [&](const routing::RoutePair& p) {
    return stateless ? stateless->route(p.source, p.target) : net.route(p.source, p.target);
  };
  std::vector<routing::RouteResult> serial;
  serial.reserve(ctx.pairs().size());
  for (const auto& p : ctx.pairs()) serial.push_back(routeOne(p));

  // The doubled and odd counts stress the chunk plan: uneven tails, more
  // chunks than queries, and the dynamic handout all get exercised.
  for (const int threads : {ctx.threads(), ctx.threads() * 2, ctx.threads() * 2 + 1}) {
    const auto batch = stateless ? stateless->routeBatch(ctx.pairs(), threads)
                                 : net.routeBatch(ctx.pairs(), threads);
    if (batch.size() != serial.size()) {
      return failResult("routeBatch returned a different number of results");
    }
    for (std::size_t i = 0; i < serial.size(); ++i) {
      if (!sameRoute(batch[i], serial[i])) {
        std::ostringstream os;
        os << "routeBatch(" << threads << " threads) diverges from serial at pair "
           << i << " (" << ctx.pairs()[i].source << "->" << ctx.pairs()[i].target
           << ")";
        return failResult(os.str());
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// competitive_bound
// ---------------------------------------------------------------------------

OracleResult checkCompetitiveBound(const CaseContext& ctx) {
  if (ctx.pairs().empty()) return skipResult();
  const auto& net = ctx.net();
  const bool disjoint = net.convexHullsDisjoint();

  struct Bounded {
    routing::EdgeMode mode;
    double bound;
    const char* label;
  };
  const Bounded routers[] = {
      {routing::EdgeMode::Visibility, 17.7, "visibility"},
      {routing::EdgeMode::Delaunay, 35.37, "delaunay"},
  };
  for (const auto& [mode, bound, label] : routers) {
    routing::HybridOptions opts{routing::SiteMode::AllHoleNodes, mode, true};
    opts.table = ctx.tableMode();
    const auto router = net.makeRouter(opts);
    for (std::size_t i = 0; i < ctx.pairs().size(); ++i) {
      const auto [s, t] = ctx.pairs()[i];
      const auto r = router->route(s, t);
      std::ostringstream at;
      at << label << " pair " << i << " (" << s << "->" << t << ")";
      if (!r.delivered) {
        return failResult("route not delivered at " + at.str());
      }
      if (r.path.front() != s || r.path.back() != t) {
        return failResult("route endpoints wrong at " + at.str());
      }
      for (std::size_t k = 0; k + 1 < r.path.size(); ++k) {
        if (!net.ldel().hasEdge(r.path[k], r.path[k + 1])) {
          std::ostringstream os;
          os << "route uses a non-edge " << r.path[k] << "-" << r.path[k + 1]
             << " at " << at.str();
          return failResult(os.str());
        }
      }
      // The paper's c-competitiveness is conditional on disjoint convex
      // hulls and holds for pure protocol routes (fallbacks flag gaps).
      // When hulls intersect, only delivery + validity are required: that
      // is the documented fallback behavior for the unsupported case.
      if (disjoint && r.fallbacks == 0) {
        const double stretch = net.stretch(r, s, t);
        if (stretch > bound + kEps) {
          std::ostringstream os;
          os << "competitive bound violated at " << at.str() << ": stretch="
             << stretch << " bound=" << bound;
          return failResult(os.str());
        }
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// metamorphic_paths
// ---------------------------------------------------------------------------

OracleResult checkMetamorphicPaths(const CaseContext& ctx) {
  if (ctx.pairs().empty()) return skipResult();
  const auto& net = ctx.net();
  std::mt19937_64 rng(deriveSeed(ctx.seed(), 0x6d657461 /* "meta" */));
  std::uniform_int_distribution<int> pickNode(
      0, static_cast<int>(net.ldel().numNodes()) - 1);

  for (std::size_t i = 0; i < ctx.pairs().size(); ++i) {
    const auto [s, t] = ctx.pairs()[i];
    const double st = net.shortestUdgDistance(s, t);
    const double ts = net.shortestUdgDistance(t, s);
    std::ostringstream at;
    at << "pair " << i << " (" << s << "->" << t << ")";
    if (!closeEnough(st, ts, kEps)) {
      std::ostringstream os;
      os << "d(s,t) asymmetric at " << at.str() << ": " << st << " vs " << ts;
      return failResult(os.str());
    }
    const double euclid = geom::dist(net.ldel().position(s), net.ldel().position(t));
    if (st + kEps < euclid) {
      std::ostringstream os;
      os << "d(s,t) below the Euclidean distance at " << at.str();
      return failResult(os.str());
    }
    const int m = pickNode(rng);
    const double sm = net.shortestUdgDistance(s, m);
    const double mt = net.shortestUdgDistance(m, t);
    if (st > sm + mt + kEps) {
      std::ostringstream os;
      os << "triangle inequality violated at " << at.str() << " via " << m << ": "
         << st << " > " << sm << " + " << mt;
      return failResult(os.str());
    }
    const auto r = net.route(s, t);
    if (r.delivered) {
      const double len = r.length(net.ldel());
      if (len + kEps < st) {
        std::ostringstream os;
        os << "delivered route shorter than the shortest path at " << at.str()
           << ": " << len << " < " << st;
        return failResult(os.str());
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// arq_vs_faultfree
// ---------------------------------------------------------------------------

OracleResult checkArqVsFaultFree(const CaseContext& ctx) {
  const auto& net = ctx.net();
  // The distributed construction is O(n * deg^2) work per run; bound the
  // instance size so one fuzz trial stays in the tens of milliseconds.
  if (net.udg().numNodes() > 220 || net.udg().numNodes() < 4) return skipResult();

  sim::Simulator clean(net.udg());
  const auto reference = protocols::runLdelConstruction(clean, net.radius());
  auto refEdges = reference.graph.edges();
  std::sort(refEdges.begin(), refEdges.end());

  sim::FaultConfig cfg;
  cfg.seed = deriveSeed(ctx.seed(), 0x61727121 /* "arq!" */);
  cfg.adHocDrop = 0.08;
  cfg.adHocDuplicate = 0.04;
  cfg.adHocDelay = 0.05;
  const protocols::RetryPolicy retry;
  sim::Simulator lossy(net.udg(), sim::FaultPlan(cfg));
  lossy.setThreads(ctx.threads());
  const auto faulty = protocols::runLdelConstruction(lossy, net.radius(), &retry);

  auto edges = faulty.graph.edges();
  std::sort(edges.begin(), edges.end());
  if (edges != refEdges) {
    std::ostringstream os;
    os << "LDel under lossy ARQ diverges from the fault-free run: "
       << edges.size() << " vs " << refEdges.size() << " edges";
    return failResult(os.str());
  }
  if (faulty.isBoundary != reference.isBoundary) {
    return failResult("boundary flags under lossy ARQ diverge from the fault-free run");
  }
  if (faulty.rounds < reference.rounds) {
    return failResult("lossy ARQ run finished in fewer rounds than the fault-free run");
  }
  return {};
}

// ---------------------------------------------------------------------------
// sim_delivery_parity
// ---------------------------------------------------------------------------

/// Thread-compatible mix workload (strictly per-node state) exercising both
/// send paths: ad hoc gossip with ID introductions, long-range replies once
/// IDs are learned. Mirrors the sim_threads_test workload so the oracle and
/// the unit test pin the same delivery-order contract.
class ParityMixProtocol : public sim::Protocol {
 public:
  ParityMixProtocol(std::size_t n, int rounds) : rounds_(rounds), heard_(n, 0) {}

  void onStart(sim::Context& ctx) override { gossip(ctx); }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    auto& h = heard_[static_cast<std::size_t>(ctx.self())];
    ++h;
    if (m.type == 1 && !m.ids.empty() && h % 3 == 0) {
      const int target = m.ids.back();
      if (target != ctx.self() && ctx.knows(target)) {
        sim::Message reply;
        reply.type = 2;
        reply.ints = {static_cast<std::int64_t>(ctx.self()), h};
        ctx.sendLongRange(target, std::move(reply));
      }
    }
  }

  void onRoundEnd(sim::Context& ctx) override {
    if (ctx.round() < rounds_) gossip(ctx);
  }

 private:
  void gossip(sim::Context& ctx) {
    const auto nbs = ctx.udgNeighbors();
    for (std::size_t i = 0; i < nbs.size(); ++i) {
      sim::Message m;
      m.type = 1;
      m.ints = {static_cast<std::int64_t>(ctx.round())};
      m.ids.push_back(nbs[(i + 1) % nbs.size()]);
      ctx.sendAdHoc(nbs[i], std::move(m));
    }
  }

  int rounds_;
  std::vector<long> heard_;
};

struct SimParityRun {
  std::string trace;
  long totalMessages = 0;
  long receivedWords = 0;
  int rounds = 0;
};

SimParityRun runSimParity(const graph::GeometricGraph& udg, int threads) {
  sim::Simulator sim(udg);
  sim.setThreads(threads);
  // The differential must exercise the sharded path even when the box has
  // fewer cores than `threads`.
  sim.setAllowOversubscribe(true);
  sim.enableTrace();
  ParityMixProtocol proto(static_cast<std::size_t>(udg.numNodes()), 6);
  SimParityRun r;
  r.rounds = sim.run(proto, 60);
  r.trace = sim.trace();
  r.totalMessages = sim.totalMessages();
  for (const auto& s : sim.stats()) r.receivedWords += s.receivedWords;
  return r;
}

/// Simulates a broken (recipient, sender, send-index) tie-break: swap the
/// first two lines of the threaded trace before comparing against serial.
void swapFirstTwoTraceLines(std::string& trace) {
  const auto first = trace.find('\n');
  if (first == std::string::npos || first + 1 >= trace.size()) return;
  const auto second = trace.find('\n', first + 1);
  if (second == std::string::npos) return;
  trace = trace.substr(first + 1, second - first) + trace.substr(0, first + 1) +
          trace.substr(second + 1);
}

OracleResult checkSimDeliveryParity(const CaseContext& ctx) {
  const auto& udg = ctx.net().udg();
  // Trace-producing rounds are O(messages); bound the instance so one fuzz
  // trial stays cheap.
  if (udg.numNodes() > 260 || udg.numNodes() < 2) return skipResult();

  const SimParityRun serial = runSimParity(udg, 1);
  for (const int threads : {ctx.threads(), ctx.threads() * 2}) {
    SimParityRun parallel = runSimParity(udg, threads);
    if (ctx.bug() == InjectedBug::SwapDeliveryOrder) {
      swapFirstTwoTraceLines(parallel.trace);
    }
    std::ostringstream at;
    at << threads << " threads";
    if (parallel.trace != serial.trace) {
      std::size_t byte = 0;
      const std::size_t limit = std::min(parallel.trace.size(), serial.trace.size());
      while (byte < limit && parallel.trace[byte] == serial.trace[byte]) ++byte;
      std::ostringstream os;
      os << "sharded delivery trace diverges from serial at " << at.str()
         << " (first differing byte " << byte << ")";
      return failResult(os.str());
    }
    if (parallel.totalMessages != serial.totalMessages) {
      std::ostringstream os;
      os << "sharded delivery message count diverges from serial at " << at.str()
         << ": " << parallel.totalMessages << " vs " << serial.totalMessages;
      return failResult(os.str());
    }
    if (parallel.receivedWords != serial.receivedWords) {
      std::ostringstream os;
      os << "sharded delivery word count diverges from serial at " << at.str()
         << ": " << parallel.receivedWords << " vs " << serial.receivedWords;
      return failResult(os.str());
    }
    if (parallel.rounds != serial.rounds) {
      std::ostringstream os;
      os << "sharded run length diverges from serial at " << at.str() << ": "
         << parallel.rounds << " vs " << serial.rounds;
      return failResult(os.str());
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// label_parity
// ---------------------------------------------------------------------------

OracleResult checkLabelParity(const CaseContext& ctx) {
  const auto& net = ctx.net();
  routing::HybridOptions lopts{routing::SiteMode::HullNodes, routing::EdgeMode::Visibility,
                               true};
  lopts.table = routing::TableMode::HubLabels;
  const auto labelRouter = net.makeRouter(lopts);
  const routing::OverlayGraph& lov = labelRouter->overlay();
  if (lov.sites().empty()) return skipResult();  // hole-free: no labels to check
  if (!lov.usesHubLabels()) {
    return failResult("hub-label backend requested but not engaged");
  }
  const routing::HubLabelOracle& integrated = lov.hubLabels();
  const graph::CsrAdjacency csr =
      graph::buildCsr(lov.siteAdjacency(), lov.sitePositions());
  const int h = static_cast<int>(lov.sitePositions().size());

  // Thread invariance + the drop-label-hub bug surface: local rebuilds at
  // several thread counts must be byte-identical to the integrated slab.
  // The planted defect corrupts the local copy, so this equality is the
  // net that must catch it.
  for (const unsigned th : {static_cast<unsigned>(ctx.threads()), 1u, 5u}) {
    routing::HubLabelOracle local;
    local.build(csr, th);
    if (ctx.bug() == InjectedBug::DropLabelHub) {
      local.corruptDropHubForTest(static_cast<int>(ctx.seed() % static_cast<std::uint64_t>(h)));
    }
    if (local.offsets() != integrated.offsets() ||
        local.entries() != integrated.entries()) {
      std::ostringstream os;
      os << "hub-label slab built at " << th
         << " threads diverges from the integrated build";
      return failResult(os.str());
    }
  }

  // Sampled site pairs against unpruned Dijkstra ground truth: distance,
  // path validity (real site-graph edges) and path length.
  std::mt19937_64 rng(deriveSeed(ctx.seed(), 0x6c61626c /* "labl" */));
  std::uniform_int_distribution<int> pickSite(0, h - 1);
  graph::DijkstraWorkspace ws;
  std::vector<int> path;
  for (int a = 0; a < std::min(h, 4); ++a) {
    const int s = pickSite(rng);
    ws.run(csr, s);
    for (int b = 0; b < 8; ++b) {
      const int t = pickSite(rng);
      const double want = ws.dist(t);
      const double got = integrated.distance(s, t);
      std::ostringstream at;
      at << "site pair " << s << "->" << t;
      if (!closeEnough(got, want, kDistEps)) {
        std::ostringstream os;
        os << "label distance mismatch at " << at.str() << ": labels=" << got
           << " dijkstra=" << want;
        return failResult(os.str());
      }
      path.clear();
      const bool reached = integrated.path(s, t, path);
      if (reached == std::isinf(want)) {
        return failResult("label path reachability disagrees with the distance at " +
                          at.str());
      }
      if (!reached) continue;
      if (path.front() != s || path.back() != t) {
        return failResult("label path endpoints wrong at " + at.str());
      }
      double len = 0.0;
      for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        const int u = path[k];
        const int v = path[k + 1];
        const auto& nbs = lov.siteAdjacency()[static_cast<std::size_t>(u)];
        if (std::find(nbs.begin(), nbs.end(), v) == nbs.end()) {
          std::ostringstream os;
          os << "label path uses a non-edge " << u << "-" << v << " at " << at.str();
          return failResult(os.str());
        }
        len += geom::dist(lov.sitePositions()[static_cast<std::size_t>(u)],
                          lov.sitePositions()[static_cast<std::size_t>(v)]);
      }
      if (!closeEnough(len, got, kDistEps)) {
        std::ostringstream os;
        os << "label path does not realize the label distance at " << at.str()
           << ": path=" << len << " distance=" << got;
        return failResult(os.str());
      }
    }
  }

  // End-to-end query parity against the dense backend.
  routing::HybridOptions dopts{routing::SiteMode::HullNodes, routing::EdgeMode::Visibility,
                               true};
  dopts.table = routing::TableMode::Dense;
  const auto denseRouter = net.makeRouter(dopts);
  const routing::OverlayGraph& dov = denseRouter->overlay();
  const auto bbox = geom::BBox::of(net.ldel().positions());
  std::uniform_real_distribution<double> dx(bbox.lo.x, bbox.hi.x);
  std::uniform_real_distribution<double> dy(bbox.lo.y, bbox.hi.y);
  for (int q = 0; q < 8; ++q) {
    geom::Vec2 a{dx(rng), dy(rng)};
    geom::Vec2 b{dx(rng), dy(rng)};
    if (q % 3 == 2) {  // pure site-to-site lookups have their own branch
      a = lov.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
      b = lov.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
    }
    const routing::OverlayRoute ref = dov.waypointsWithDistance(a, b);
    const routing::OverlayRoute fresh = lov.waypointsWithDistance(a, b);
    std::ostringstream at;
    at << "query " << q << " (" << a.x << "," << a.y << ")->(" << b.x << "," << b.y << ")";
    if (fresh.reachable != ref.reachable) {
      return failResult("label/dense reachability mismatch at " + at.str());
    }
    if (!fresh.reachable) continue;
    if (!closeEnough(fresh.distance, ref.distance, kDistEps)) {
      std::ostringstream os;
      os << "label/dense distance mismatch at " << at.str() << ": labels="
         << fresh.distance << " dense=" << ref.distance;
      return failResult(os.str());
    }
    if (fresh.waypoints != ref.waypoints) {
      const double len = polylineLength(net, a, b, fresh.waypoints);
      if (!closeEnough(len, ref.distance, kDistEps)) {
        std::ostringstream os;
        os << "label waypoints do not realize the optimal distance at " << at.str()
           << ": polyline=" << len << " optimal=" << ref.distance;
        return failResult(os.str());
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// stateless_parity
// ---------------------------------------------------------------------------

OracleResult checkStatelessParity(const CaseContext& ctx) {
  if (ctx.pairs().empty()) return skipResult();
  const auto& g = ctx.net().ldel();
  const std::size_t n = g.numNodes();
  if (n < 2 || n > 300) return skipResult();

  const graph::CsrAdjacency csr = graph::buildCsr(g);
  routing::HubLabelOracle oracle;
  oracle.build(csr, static_cast<unsigned>(ctx.threads()));
  routing::NodeLabels labels;
  labels.build(oracle);

  // The label derivation is a deterministic function of the (already
  // thread-invariant) oracle slab: rebuilds at other thread counts must be
  // identical objects.
  for (const unsigned th : {1u, 5u}) {
    routing::HubLabelOracle o2;
    o2.build(csr, th);
    routing::NodeLabels l2;
    l2.build(o2);
    if (!(l2 == labels)) {
      std::ostringstream os;
      os << "per-node labels built at " << th << " threads diverge";
      return failResult(os.str());
    }
  }

  // The planted wrong-next-hop defect corrupts the serving copy only; the
  // hop walk below is the net that must catch it. Routing the corrupted
  // node toward the corrupted hub is the query guaranteed to step on the
  // defective entry (its meet hub is the hub itself), so that pair joins
  // the sampled ones.
  std::vector<routing::RoutePair> pairs(ctx.pairs().begin(), ctx.pairs().end());
  if (ctx.bug() == InjectedBug::WrongNextHop) {
    const auto hit = labels.corruptNextHopForTest(static_cast<int>(ctx.seed() % n));
    if (hit.node >= 0) pairs.push_back({hit.node, hit.hub});
  }
  const routing::StatelessRouter router(std::move(labels));

  // Hop walk vs the centralized label path: same delivery verdict, walked
  // edges are real graph edges, and the walked length realizes the exact
  // label distance. On hub-id ties the two may pick different shortest
  // paths, so the comparison is by length, not node sequence.
  std::vector<int> refPath;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const int s = pairs[i].source;
    const int t = pairs[i].target;
    const double want = oracle.distance(s, t);
    refPath.clear();
    const bool refOk = oracle.path(s, t, refPath);
    const routing::RouteResult r = router.route(s, t);
    std::ostringstream at;
    at << "pair " << i << " (" << s << "->" << t << ")";
    if (r.delivered != refOk) {
      std::ostringstream os;
      os << "stateless walk " << (r.delivered ? "delivered" : "failed") << " but the "
         << "centralized label path " << (refOk ? "exists" : "does not") << " at "
         << at.str();
      return failResult(os.str());
    }
    if (!r.delivered) {
      if (!std::isinf(want)) {
        return failResult("walk failed on a label-connected pair at " + at.str());
      }
      continue;
    }
    if (r.path.front() != s || r.path.back() != t) {
      return failResult("walked path endpoints wrong at " + at.str());
    }
    for (std::size_t k = 0; k + 1 < r.path.size(); ++k) {
      const auto nbs = g.neighbors(r.path[k]);
      if (std::find(nbs.begin(), nbs.end(), r.path[k + 1]) == nbs.end()) {
        std::ostringstream os;
        os << "walk uses a non-edge " << r.path[k] << "-" << r.path[k + 1] << " at "
           << at.str();
        return failResult(os.str());
      }
    }
    const double walked = g.pathLength(r.path);
    if (!closeEnough(walked, want, kDistEps)) {
      std::ostringstream os;
      os << "walked length diverges from the label distance at " << at.str()
         << ": walk=" << walked << " labels=" << want;
      return failResult(os.str());
    }
    const double refLen = g.pathLength(refPath);
    if (!closeEnough(walked, refLen, kDistEps)) {
      std::ostringstream os;
      os << "walked length diverges from the centralized path at " << at.str()
         << ": walk=" << walked << " central=" << refLen;
      return failResult(os.str());
    }
  }

  // Embarrassingly parallel serving: no shared mutable state means the
  // batch must be bit-identical to the serial loop at any thread count.
  std::vector<routing::RouteResult> serial;
  serial.reserve(ctx.pairs().size());
  for (const auto& p : ctx.pairs()) serial.push_back(router.route(p.source, p.target));
  for (const int threads : {1, ctx.threads(), ctx.threads() * 2}) {
    const auto batch = router.routeBatch(ctx.pairs(), threads);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      if (!sameRoute(batch[i], serial[i])) {
        std::ostringstream os;
        os << "stateless routeBatch(" << threads << " threads) diverges from serial at pair "
           << i;
        return failResult(os.str());
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// bbox_parity
// ---------------------------------------------------------------------------

OracleResult checkBBoxParity(const CaseContext& ctx) {
  if (ctx.pairs().empty()) return skipResult();
  const auto& net = ctx.net();

  // Local recomputation of the abstraction; the planted drop-bbox-corner
  // defect corrupts this copy, so the site-set equality against the
  // integrated overlay below is the net that must catch it.
  auto groups =
      abstraction::buildBBoxOverlay(net.ldel(), net.holes(), net.abstractions());
  if (ctx.bug() == InjectedBug::DropBBoxCorner) {
    for (auto git = groups.rbegin(); git != groups.rend(); ++git) {
      auto hit = std::find_if(git->holeSites.rbegin(), git->holeSites.rend(),
                              [](const auto& hs) { return !hs.sites.empty(); });
      if (hit != git->holeSites.rend()) {
        hit->sites.pop_back();
        break;
      }
    }
  }

  // Structural invariants: merged boxes are pairwise disjoint and cover
  // their member holes; each hole contributes at most 8 of its ring nodes.
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const auto& g = groups[i];
    for (std::size_t j = i + 1; j < groups.size(); ++j) {
      if (g.box.intersects(groups[j].box)) {
        std::ostringstream os;
        os << "merged boxes " << i << " and " << j << " intersect";
        return failResult(os.str());
      }
    }
    if (g.holeSites.size() != g.members.size()) {
      return failResult("box group hole-site list does not match its members");
    }
    for (const auto& hs : g.holeSites) {
      const auto& a = net.abstractions()[static_cast<std::size_t>(hs.abstraction)];
      const auto& ring = net.holes().holes[static_cast<std::size_t>(a.holeIndex)].ring;
      if (hs.sites.size() > 8) {
        std::ostringstream os;
        os << "hole " << a.holeIndex << " contributes " << hs.sites.size()
           << " sites (corner/projection rule allows at most 8)";
        return failResult(os.str());
      }
      for (const graph::NodeId v : hs.sites) {
        if (std::find(ring.begin(), ring.end(), v) == ring.end()) {
          std::ostringstream os;
          os << "bbox site " << v << " is not on the ring of hole " << a.holeIndex;
          return failResult(os.str());
        }
      }
      for (const graph::NodeId v : ring) {
        if (!g.box.contains(net.ldel().position(v))) {
          std::ostringstream os;
          os << "merged box " << i << " does not cover ring node " << v << " of hole "
             << a.holeIndex;
          return failResult(os.str());
        }
      }
    }
  }
  std::vector<graph::NodeId> localSites;
  for (const auto& g : groups) {
    for (const auto& hs : g.holeSites) {
      localSites.insert(localSites.end(), hs.sites.begin(), hs.sites.end());
    }
  }
  std::sort(localSites.begin(), localSites.end());
  localSites.erase(std::unique(localSites.begin(), localSites.end()), localSites.end());

  for (const routing::EdgeMode em :
       {routing::EdgeMode::Visibility, routing::EdgeMode::Delaunay}) {
    const char* label = em == routing::EdgeMode::Visibility ? "visibility" : "delaunay";
    routing::HybridOptions opts{routing::SiteMode::HullNodes, em, true};
    opts.table = ctx.tableMode();
    opts.abstraction = routing::AbstractionMode::BBox;
    const auto router = net.makeRouter(opts);
    if (!router->usesBBox()) {
      return failResult("bbox abstraction requested but not engaged");
    }
    std::vector<graph::NodeId> overlaySites = router->overlay().sites();
    std::sort(overlaySites.begin(), overlaySites.end());
    if (overlaySites != localSites) {
      std::ostringstream os;
      os << label << " overlay site set (" << overlaySites.size()
         << ") diverges from the recomputed bbox abstraction (" << localSites.size()
         << ")";
      return failResult(os.str());
    }
    if (overlaySites.empty()) continue;  // hole-free: nothing to route around

    // Route validity + the scaled competitive bound. Unlike the hull
    // router (competitive_bound skips non-disjoint cases), the box bound
    // is checked on every instance — lifting that restriction is the
    // point of the abstraction; fallbacks still flag protocol gaps.
    const double bound = em == routing::EdgeMode::Visibility
                             ? abstraction::kBBoxVisibilityBound
                             : abstraction::kBBoxDelaunayBound;
    std::vector<routing::RouteResult> serial;
    serial.reserve(ctx.pairs().size());
    for (std::size_t i = 0; i < ctx.pairs().size(); ++i) {
      const auto [s, t] = ctx.pairs()[i];
      const auto r = router->route(s, t);
      std::ostringstream at;
      at << label << " pair " << i << " (" << s << "->" << t << ")";
      if (!r.delivered) {
        return failResult("bbox route not delivered at " + at.str());
      }
      if (r.path.front() != s || r.path.back() != t) {
        return failResult("bbox route endpoints wrong at " + at.str());
      }
      for (std::size_t k = 0; k + 1 < r.path.size(); ++k) {
        if (!net.ldel().hasEdge(r.path[k], r.path[k + 1])) {
          std::ostringstream os;
          os << "bbox route uses a non-edge " << r.path[k] << "-" << r.path[k + 1]
             << " at " << at.str();
          return failResult(os.str());
        }
      }
      if (r.fallbacks == 0) {
        const double stretch = net.stretch(r, s, t);
        if (stretch > bound + kEps) {
          std::ostringstream os;
          os << "bbox competitive bound violated at " << at.str()
             << ": stretch=" << stretch << " bound=" << bound;
          return failResult(os.str());
        }
      }
      serial.push_back(r);
    }

    // routeBatch bit-identity, serial vs threaded, in bbox mode.
    for (const int threads : {ctx.threads(), ctx.threads() * 2}) {
      const auto batch = router->routeBatch(ctx.pairs(), threads);
      if (batch.size() != serial.size()) {
        return failResult("bbox routeBatch returned a different number of results");
      }
      for (std::size_t i = 0; i < serial.size(); ++i) {
        if (!sameRoute(batch[i], serial[i])) {
          std::ostringstream os;
          os << "bbox routeBatch(" << threads << " threads, " << label
             << ") diverges from serial at pair " << i << " ("
             << ctx.pairs()[i].source << "->" << ctx.pairs()[i].target << ")";
          return failResult(os.str());
        }
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// churn_serving
// ---------------------------------------------------------------------------

OracleResult checkChurnServing(const CaseContext& ctx) {
  // Every epoch is cross-checked against a from-scratch build, so cap the
  // size to keep the fuzz loop fast; tiny cases churn straight through the
  // minNodes floor and prove nothing.
  if (ctx.scenario().points.size() < 12 || ctx.scenario().points.size() > 250) {
    return skipResult();
  }

  serve::ServiceOptions opts;
  opts.router.table = ctx.tableMode();
  opts.router.abstraction = ctx.abstractionMode();
  opts.updateFaults.seed = deriveSeed(ctx.seed(), 0x63687266 /* "chrf" */);
  opts.updateFaults.adHocDrop = 0.1;
  opts.updateFaults.adHocDuplicate = 0.1;
  opts.updateFaults.adHocDelay = 0.15;
  serve::RouteService service(ctx.scenario(), opts);

  scenario::ChurnParams churn;
  churn.seed = deriveSeed(ctx.seed(), 0x6368726e /* "chrn" */);
  churn.epochs = 4;
  churn.updatesPerEpoch = 5;
  const auto trace = scenario::makeChurnTrace(ctx.scenario(), churn);

  std::mt19937_64 rng(deriveSeed(ctx.seed(), 0x73727665 /* "srve" */));
  for (const auto& batch : trace) {
    service.enqueue(batch);

    // A reader keeps routing while the updater swaps epochs; its answers
    // are not inspected (a query may legitimately land on either side of
    // the swap) — the point is that publishing under load is safe and the
    // outgoing snapshot stays valid while pinned.
    const auto pinned = service.snapshot();
    std::atomic<bool> stop{false};
    std::thread reader([&] {
      const int n = static_cast<int>(pinned->scenario.points.size());
      std::vector<routing::RoutePair> qs;
      for (int i = 0; i + 1 < n && i < 8; i += 2) qs.push_back({i, i + 1});
      while (!stop.load(std::memory_order_relaxed)) {
        service.routeBatch(qs, 2);
      }
    });
    const auto stats = service.applyUpdates();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    const auto snap = service.snapshot();
    if (snap->epoch != stats.epoch) {
      return failResult("published epoch does not match applyUpdates stats");
    }

    // Bit-identity of the serving loop vs a from-scratch build of the same
    // epoch: the serial route loop is the reference; the service's batch
    // path must match it at 1, k and 2k reader threads. This is what makes
    // Reused/Incremental epochs trustworthy — cheap builds, same answers.
    const core::HybridNetwork fresh(snap->scenario.points, service.options().ldel,
                                    service.options().router, nullptr);
    const int n = static_cast<int>(snap->scenario.points.size());
    if (n < 2) continue;
    std::uniform_int_distribution<int> pick(0, n - 1);
    std::vector<routing::RoutePair> pairs;
    while (pairs.size() < 16) {
      const int s = pick(rng);
      const int t = pick(rng);
      if (s != t) pairs.push_back({s, t});
    }
    std::vector<routing::RouteResult> reference;
    reference.reserve(pairs.size());
    for (const auto& p : pairs) reference.push_back(fresh.route(p.source, p.target));
    for (const int threads : {1, ctx.threads(), ctx.threads() * 2}) {
      const auto served = service.routeBatch(pairs, threads);
      for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (!sameRoute(served[i], reference[i])) {
          std::ostringstream os;
          os << "epoch " << snap->epoch << " (" << serve::epochBuildName(snap->build)
             << " build, " << threads << " threads) diverges from a fresh build at pair "
             << i << " (" << pairs[i].source << "->" << pairs[i].target << ")";
          return failResult(os.str());
        }
      }
    }
  }
  return {};
}

}  // namespace

const char* bugName(InjectedBug bug) {
  switch (bug) {
    case InjectedBug::DropOverlayWaypoint: return "drop-overlay-waypoint";
    case InjectedBug::InflateOverlayDistance: return "inflate-overlay-distance";
    case InjectedBug::SwapDeliveryOrder: return "swap-delivery-order";
    case InjectedBug::DropLabelHub: return "drop-label-hub";
    case InjectedBug::WrongNextHop: return "wrong-next-hop";
    case InjectedBug::DropBBoxCorner: return "drop-bbox-corner";
    case InjectedBug::None: break;
  }
  return "none";
}

InjectedBug parseInjectedBug(std::string_view name) {
  for (const InjectedBug b :
       {InjectedBug::DropOverlayWaypoint, InjectedBug::InflateOverlayDistance,
        InjectedBug::SwapDeliveryOrder, InjectedBug::DropLabelHub,
        InjectedBug::WrongNextHop, InjectedBug::DropBBoxCorner}) {
    if (name == bugName(b)) return b;
  }
  return InjectedBug::None;
}

const char* routerKindName(RouterKind kind) {
  switch (kind) {
    case RouterKind::Stateless:
      return "stateless";
    case RouterKind::Centralized:
      break;
  }
  return "centralized";
}

std::optional<RouterKind> parseRouterKind(std::string_view name) {
  if (name == "centralized") return RouterKind::Centralized;
  if (name == "stateless") return RouterKind::Stateless;
  return std::nullopt;
}

CaseContext::CaseContext(scenario::Scenario sc, std::uint64_t seed, int threads,
                         InjectedBug bug, routing::TableMode table, RouterKind router,
                         routing::AbstractionMode abstraction)
    : sc_(std::move(sc)),
      seed_(seed),
      threads_(threads < 1 ? 1 : threads),
      bug_(bug),
      table_(table),
      router_(router),
      abstraction_(abstraction),
      net_(sc_.points, sc_.radius) {
  const int n = static_cast<int>(sc_.points.size());
  if (n < 2) return;
  std::mt19937_64 rng(deriveSeed(seed_, 0x70616972 /* "pair" */));
  std::uniform_int_distribution<int> pick(0, n - 1);
  const std::size_t want = std::min<std::size_t>(24, static_cast<std::size_t>(n) * 2);
  while (pairs_.size() < want) {
    const int s = pick(rng);
    const int t = pick(rng);
    if (s == t) continue;
    pairs_.push_back({s, t});
  }
}

const std::vector<Oracle>& oracles() {
  static const std::vector<Oracle> kOracles = {
      {"ldel_invariants", checkLdelInvariants},
      {"hull_invariants", checkHullInvariants},
      {"overlay_parity", checkOverlayParity},
      {"route_batch_parity", checkRouteBatchParity},
      {"competitive_bound", checkCompetitiveBound},
      {"metamorphic_paths", checkMetamorphicPaths},
      {"arq_vs_faultfree", checkArqVsFaultFree},
      {"sim_delivery_parity", checkSimDeliveryParity},
      {"label_parity", checkLabelParity},
      {"stateless_parity", checkStatelessParity},
      {"bbox_parity", checkBBoxParity},
      {"churn_serving", checkChurnServing},
  };
  return kOracles;
}

const Oracle* findOracle(std::string_view name) {
  for (const auto& o : oracles()) {
    if (name == o.name) return &o;
  }
  return nullptr;
}

routing::OverlayRoute referenceOverlayQuery(const routing::OverlayGraph& overlay,
                                            geom::Vec2 from, geom::Vec2 to) {
  const auto& sitePos = overlay.sitePositions();
  const auto& siteAdj = overlay.siteAdjacency();
  const auto& vis = overlay.visibility();
  const int ns = static_cast<int>(sitePos.size());

  routing::OverlayRoute ans;
  if (from == to) {
    ans.reachable = true;
    ans.distance = 0.0;
    return ans;
  }

  int fromSite = -1;
  int toSite = -1;
  for (int i = 0; i < ns; ++i) {
    if (sitePos[static_cast<std::size_t>(i)] == from) fromSite = i;
    if (sitePos[static_cast<std::size_t>(i)] == to) toSite = i;
  }

  std::vector<geom::Vec2> pts = sitePos;
  const int fromIdx = fromSite >= 0 ? fromSite : static_cast<int>(pts.size());
  if (fromSite < 0) pts.push_back(from);
  const int toIdx = toSite >= 0 ? toSite : static_cast<int>(pts.size());
  if (toSite < 0) pts.push_back(to);

  graph::GeometricGraph g(pts);
  if (overlay.edgeMode() == routing::EdgeMode::Visibility || pts.size() < 3) {
    for (int i = 0; i < ns; ++i) {
      for (int j : siteAdj[static_cast<std::size_t>(i)]) {
        if (j > i) g.addEdge(i, j);
      }
    }
    // Temporary endpoints link to everything they can see; the visibility
    // test runs endpoint-first, exactly as the serving engine (and the old
    // rebuild path) orients it.
    for (const int endpoint : {fromIdx, toIdx}) {
      if (endpoint < ns) continue;
      for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
        if (i == endpoint) continue;
        if (vis.visible(pts[static_cast<std::size_t>(endpoint)],
                        pts[static_cast<std::size_t>(i)])) {
          g.addEdge(endpoint, i);
        }
      }
    }
  } else {
    const delaunay::DelaunayTriangulation dt(pts);
    for (const auto& [u, v] : dt.edges()) {
      if (vis.visible(pts[static_cast<std::size_t>(u)], pts[static_cast<std::size_t>(v)])) {
        g.addEdge(u, v);
      }
    }
    for (const auto& [u, v] : overlay.backboneEdges()) {
      if (overlay.backboneFiltered() &&
          !vis.visible(pts[static_cast<std::size_t>(u)], pts[static_cast<std::size_t>(v)])) {
        continue;
      }
      g.addEdge(u, v);
    }
  }

  const auto tree = graph::dijkstra(g, fromIdx, toIdx);
  ans.distance = tree.dist[static_cast<std::size_t>(toIdx)];
  const auto path = tree.pathTo(toIdx);
  if (path.empty() && fromIdx != toIdx) return ans;
  ans.reachable = true;
  for (graph::NodeId v : path) {
    if (v == fromIdx || v == toIdx) continue;
    if (v < ns) ans.waypoints.push_back(overlay.sites()[static_cast<std::size_t>(v)]);
  }
  return ans;
}

}  // namespace hybrid::testkit
