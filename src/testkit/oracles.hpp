#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/hybrid_network.hpp"
#include "routing/overlay_graph.hpp"
#include "routing/router.hpp"
#include "scenario/generator.hpp"

namespace hybrid::testkit {

/// Deliberate defects the harness can plant to prove the pipeline catches,
/// shrinks and records real bugs (fuzz_router --inject-bug, testkit_test).
enum class InjectedBug {
  None,
  DropOverlayWaypoint,     ///< Overlay answers lose their last waypoint.
  InflateOverlayDistance,  ///< Overlay distances come back 1% long.
  SwapDeliveryOrder,       ///< Threaded sim delivery order off by one swap.
  DropLabelHub,            ///< Hub-label slab loses one non-self entry.
  WrongNextHop,            ///< Per-node label forwards one entry to itself.
  DropBBoxCorner,          ///< Bbox site selection loses one corner site.
};

const char* bugName(InjectedBug bug);
/// Parses bugName() spelling; InjectedBug::None for "none" or unknown.
InjectedBug parseInjectedBug(std::string_view name);

/// Which serving engine the batch-serving oracles exercise
/// (fuzz_router --router): the centralized hybrid router, or the stateless
/// per-node label forwarder. stateless_parity always cross-checks both.
enum class RouterKind {
  Centralized,
  Stateless,
};

const char* routerKindName(RouterKind kind);
/// Parses routerKindName() spelling ("centralized" | "stateless");
/// nullopt for anything else.
std::optional<RouterKind> parseRouterKind(std::string_view name);

/// Verdict of one oracle on one case. `skipped` marks an oracle that chose
/// not to run (e.g. the ARQ differential on oversized instances); skips are
/// counted separately so a summary showing 0 runs of an oracle is loud.
struct OracleResult {
  bool ok = true;
  bool skipped = false;
  std::string failure;
};

/// Everything the oracles share about one scenario: the built pipeline
/// (HybridNetwork), a seeded set of query pairs, and the thread count the
/// parallel paths are exercised at. Building this is the expensive step;
/// oracles only read it. Not copyable: the router holds references into the
/// network.
class CaseContext {
 public:
  /// `seed` drives the query pairs (deterministically); `threads` is what
  /// routeBatch/simulator parallel paths run at (their results must be
  /// thread-count-invariant — that invariance is itself under test).
  /// `table` selects the site-pair backend the router-building oracles
  /// exercise, so the whole registry can run against hub labels; `router`
  /// selects the serving engine of the batch-serving oracles;
  /// `abstraction` selects the per-hole abstraction those oracles build
  /// routers with (bbox_parity always forces BBox regardless).
  CaseContext(scenario::Scenario sc, std::uint64_t seed, int threads = 2,
              InjectedBug bug = InjectedBug::None,
              routing::TableMode table = routing::TableMode::Auto,
              RouterKind router = RouterKind::Centralized,
              routing::AbstractionMode abstraction = routing::AbstractionMode::Hulls);
  CaseContext(const CaseContext&) = delete;
  CaseContext& operator=(const CaseContext&) = delete;

  const scenario::Scenario& scenario() const { return sc_; }
  const core::HybridNetwork& net() const { return net_; }
  const std::vector<routing::RoutePair>& pairs() const { return pairs_; }
  std::uint64_t seed() const { return seed_; }
  int threads() const { return threads_; }
  InjectedBug bug() const { return bug_; }
  routing::TableMode tableMode() const { return table_; }
  RouterKind routerKind() const { return router_; }
  routing::AbstractionMode abstractionMode() const { return abstraction_; }

 private:
  scenario::Scenario sc_;
  std::uint64_t seed_;
  int threads_;
  InjectedBug bug_;
  routing::TableMode table_;
  RouterKind router_ = RouterKind::Centralized;
  routing::AbstractionMode abstraction_ = routing::AbstractionMode::Hulls;
  core::HybridNetwork net_;
  std::vector<routing::RoutePair> pairs_;
};

/// A differential oracle or paper-invariant checker. Pure function of the
/// context: running it twice (or at another thread count) must return the
/// same verdict.
struct Oracle {
  const char* name;
  OracleResult (*check)(const CaseContext&);
};

/// The registry, in fixed order:
///  - ldel_invariants:   LDel planarity, edges within radius, connectivity,
///                       1.998-spanner samples vs graph::dijkstra
///  - hull_invariants:   hull convexity/containment, hull_groups agreement
///                       with pairwise disjointness detection
///  - overlay_parity:    incremental/current overlay query vs brute-force
///                       rebuild + graph::dijkstra ground truth
///  - route_batch_parity: routeBatch at k threads vs the serial loop
///  - competitive_bound: stretch <= c when hulls are disjoint; delivery +
///                       edge-validity always (incl. the unsupported
///                       intersecting-hulls case)
///  - metamorphic_paths: symmetry + triangle inequality of d(s,t), route
///                       length >= d(s,t)
///  - arq_vs_faultfree:  LDel construction over lossy ARQ transport vs the
///                       fault-free run
///  - sim_delivery_parity: destination-sharded threaded simulator rounds
///                       (trace + stats) vs the serial reference
///  - label_parity:      hub-label oracle vs the dense table: byte-identical
///                       rebuilds at other thread counts, sampled site-pair
///                       distances/paths vs Dijkstra ground truth, and
///                       end-to-end query parity against the dense backend
///  - stateless_parity:  per-node label hop walk vs the centralized label
///                       path: same delivery verdict, real graph edges,
///                       identical length; labels byte-identical across
///                       thread counts; routeBatch bit-identical to serial
///  - bbox_parity:       bounding-box abstraction invariants (disjoint
///                       merged boxes, <= 8 ring sites per hole) and
///                       BBox-mode routing: valid obstacle-avoiding routes,
///                       the scaled competitive bound on intersecting-hull
///                       cases competitive_bound skips, and routeBatch
///                       bit-identical serial vs threaded
///  - churn_serving:     serve::RouteService under a seeded fault-injected
///                       churn trace with a concurrent reader: every
///                       published epoch (Reused, Incremental or Full)
///                       serves answers bit-identical to a from-scratch
///                       build of that epoch's topology at 1/k/2k threads
const std::vector<Oracle>& oracles();

/// nullptr when unknown.
const Oracle* findOracle(std::string_view name);

/// Brute-force overlay ground truth: rebuilds the query graph (sites +
/// endpoints, visibility- or Delaunay-edged exactly as the serving engine
/// defines it) from the overlay's public state and runs graph::dijkstra.
/// This is the pre-PR-3 serving path; the overlay_parity oracle and the
/// grazing-segment regression tests pin the incremental engine against it.
routing::OverlayRoute referenceOverlayQuery(const routing::OverlayGraph& overlay,
                                            geom::Vec2 from, geom::Vec2 to);

}  // namespace hybrid::testkit
