#include "testkit/rng.hpp"

#include <cstdio>
#include <cstdlib>

namespace hybrid::testkit {

std::uint64_t testSeed(std::uint64_t pinned) {
  if (const char* env = std::getenv("HYBRID_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') return static_cast<std::uint64_t>(v);
  }
  return pinned;
}

std::mt19937 loggedRng(const std::string& name, std::uint64_t pinnedSeed) {
  const std::uint64_t s = testSeed(pinnedSeed);
  std::printf("[testkit] rng %s seed=%llu\n", name.c_str(),
              static_cast<unsigned long long>(s));
  return std::mt19937(static_cast<std::uint32_t>(s));
}

std::mt19937_64 loggedRng64(const std::string& name, std::uint64_t pinnedSeed) {
  const std::uint64_t s = testSeed(pinnedSeed);
  std::printf("[testkit] rng %s seed=%llu\n", name.c_str(),
              static_cast<unsigned long long>(s));
  return std::mt19937_64(s);
}

}  // namespace hybrid::testkit
