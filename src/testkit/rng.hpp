#pragma once

#include <cstdint>
#include <random>
#include <string>

namespace hybrid::testkit {

/// SplitMix64 step: advances `state` and returns the next output word.
/// This is the canonical seed-expansion function (Steele et al.): adjacent
/// states produce decorrelated outputs, so a single master seed can fan out
/// into independent per-trial and per-purpose streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Derives an independent stream seed from (master, salt). Pure function:
/// the same pair always yields the same seed, so any derived stream is
/// reproducible from the master seed plus the salt printed in a log line.
inline std::uint64_t deriveSeed(std::uint64_t master, std::uint64_t salt) {
  std::uint64_t s = master + 0x9E3779B97F4A7C15ull * (salt + 1);
  (void)splitmix64(s);
  return splitmix64(s);
}

/// Master seed for randomized tests: the HYBRID_TEST_SEED environment
/// variable when set, otherwise `pinned`. Tests keep their historical
/// pinned seeds (so expected random streams are unchanged) but gain an env
/// override for exploration.
std::uint64_t testSeed(std::uint64_t pinned);

/// A seeded std::mt19937 that logs "[testkit] rng <name> seed=<s>" to
/// stdout once, so every randomized tier-1 test failure carries the exact
/// seed needed to replay it. The stream is identical to std::mt19937(seed)
/// unless HYBRID_TEST_SEED overrides it.
std::mt19937 loggedRng(const std::string& name, std::uint64_t pinnedSeed);

/// 64-bit variant for testkit-internal streams.
std::mt19937_64 loggedRng64(const std::string& name, std::uint64_t pinnedSeed);

}  // namespace hybrid::testkit
