#include "testkit/shrink.hpp"

#include <vector>

namespace hybrid::testkit {

namespace {

struct Budget {
  int remaining;
  bool spend() { return remaining-- > 0; }
};

/// Tries `candidate` (re-finalized); on reproduction replaces `cur` and
/// returns true. Candidates that fail to get *smaller* after finalization
/// are rejected outright — progress must be monotone or ddmin can cycle.
bool tryAccept(scenario::Scenario& cur, std::vector<geom::Vec2> points,
               std::vector<geom::Polygon> obstacles, const FailurePredicate& fails,
               const ShrinkOptions& opts, Budget& budget) {
  if (points.size() < opts.minNodes) return false;
  scenario::Scenario candidate =
      scenario::finalizeScenario(std::move(points), std::move(obstacles), cur.radius);
  const bool smaller =
      candidate.points.size() < cur.points.size() ||
      (candidate.points.size() == cur.points.size() &&
       candidate.obstacles.size() < cur.obstacles.size());
  if (!smaller || candidate.points.size() < opts.minNodes) return false;
  if (!budget.spend()) return false;
  bool reproduces = false;
  try {
    reproduces = fails(candidate);
  } catch (...) {
    // A candidate that crashes the pipeline is its own (different) bug;
    // do not let it hijack the shrink of this one.
    reproduces = false;
  }
  if (!reproduces) return false;
  cur = std::move(candidate);
  return true;
}

}  // namespace

ShrinkResult shrinkScenario(const scenario::Scenario& input, const FailurePredicate& fails,
                            const ShrinkOptions& opts) {
  ShrinkResult result;
  result.scenario = input;
  Budget budget{opts.maxEvaluations};
  scenario::Scenario& cur = result.scenario;

  // Pass 1: drop whole obstacles (few of them, large effect on the case's
  // readability). Scanned back to front so erasing keeps earlier indices.
  for (std::size_t i = cur.obstacles.size(); i-- > 0 && budget.remaining > 0;) {
    auto obstacles = cur.obstacles;
    obstacles.erase(obstacles.begin() + static_cast<std::ptrdiff_t>(i));
    if (tryAccept(cur, cur.points, std::move(obstacles), fails, opts, budget)) {
      result.shrunk = true;
    }
  }

  // Pass 2: ddmin over the points. Chunk sizes halve; after any accepted
  // removal the scan restarts at the same granularity on the smaller set.
  std::size_t chunk = cur.points.size() / 2;
  while (chunk >= 1 && budget.remaining > 0) {
    bool improved = false;
    for (std::size_t start = 0; start < cur.points.size() && budget.remaining > 0;) {
      std::vector<geom::Vec2> points;
      points.reserve(cur.points.size());
      const std::size_t end = std::min(cur.points.size(), start + chunk);
      for (std::size_t i = 0; i < cur.points.size(); ++i) {
        if (i < start || i >= end) points.push_back(cur.points[i]);
      }
      if (tryAccept(cur, std::move(points), cur.obstacles, fails, opts, budget)) {
        result.shrunk = true;
        improved = true;
        // cur shrank; the chunk that used to start here is gone.
      } else {
        start += chunk;
      }
    }
    if (!improved || chunk == 1) {
      if (chunk == 1 && !improved) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }

  result.evaluations = opts.maxEvaluations - std::max(0, budget.remaining);
  return result;
}

}  // namespace hybrid::testkit
