#pragma once

#include <cstddef>
#include <functional>

#include "scenario/generator.hpp"

namespace hybrid::testkit {

/// True when the failure of interest reproduces on the candidate scenario.
/// The shrinker only keeps candidates this predicate accepts, so the final
/// scenario fails for the same reason the original did.
using FailurePredicate = std::function<bool(const scenario::Scenario&)>;

struct ShrinkOptions {
  /// Stop removing points once a candidate would drop below this many nodes.
  std::size_t minNodes = 8;
  /// Hard cap on predicate evaluations (each one rebuilds the full
  /// pipeline, so this bounds shrink time on large scenarios).
  int maxEvaluations = 250;
};

struct ShrinkResult {
  scenario::Scenario scenario;  ///< Smallest failing scenario found.
  int evaluations = 0;          ///< Predicate calls spent.
  bool shrunk = false;          ///< Whether anything was removed.
};

/// Greedy delta-debugging over the scenario: repeatedly drops obstacle
/// polygons and ever-smaller chunks of points, re-finalizing each candidate
/// (dedup + largest-UDG-component, exactly like every other scenario
/// source) and keeping it only when the failure still reproduces. Fully
/// deterministic — same input and predicate, same result.
///
/// `fails(input)` is assumed true; the input is returned unchanged when no
/// smaller failing scenario is found within the evaluation budget.
ShrinkResult shrinkScenario(const scenario::Scenario& input, const FailurePredicate& fails,
                            const ShrinkOptions& opts = {});

}  // namespace hybrid::testkit
