#pragma once

#include <algorithm>
#include <functional>
#include <thread>

#include "util/thread_pool.hpp"

namespace hybrid::util {

/// Number of worker threads to use: `requested` if positive, otherwise the
/// hardware concurrency (at least 1).
inline unsigned resolveThreads(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(begin, end, chunkIndex) over contiguous chunks of [0, n) on
/// `threads` workers of the persistent process-wide ThreadPool. Chunking is
/// deterministic: chunk c covers [c*ceil(n/threads), ...), so merging
/// per-chunk results in chunk order reproduces the sequential order and
/// parallel builds stay bit-identical to serial ones at any thread count.
///
/// An explicit `threads` request is honored for any n (capped at n): small
/// inputs no longer fall back to a silent serial path, so pool bugs cannot
/// hide from tests. threads <= 1 (or n == 0) runs inline on the caller.
///
/// A throwing chunk does not take the process down: every chunk still
/// runs, and the first exception in chunk-index order is rethrown on the
/// calling thread (deterministic, whatever the threads' finishing order).
template <typename F>
inline void parallelChunks(std::size_t n, unsigned threads, F&& fn) {
  threads = std::max<unsigned>(
      1u, std::min<unsigned>(threads, n == 0 ? 1u
                                             : static_cast<unsigned>(std::min<std::size_t>(
                                                   n, ThreadPool::kMaxWorkers + 1))));
  if (threads == 1) {
    fn(static_cast<std::size_t>(0), n, 0u);
    return;
  }
  const std::size_t chunk = (n + threads - 1) / threads;
  const auto tasks = static_cast<unsigned>((n + chunk - 1) / chunk);
  const std::function<void(unsigned)> task = [&fn, n, chunk](unsigned t) {
    const std::size_t begin = std::min(n, static_cast<std::size_t>(t) * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) fn(begin, end, t);
  };
  ThreadPool::global().run(tasks, task);
}

}  // namespace hybrid::util
