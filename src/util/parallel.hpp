#pragma once

#include <algorithm>
#include <functional>
#include <thread>

#include "util/thread_pool.hpp"

namespace hybrid::util {

/// Number of worker threads to use: `requested` if positive, otherwise the
/// hardware concurrency (at least 1).
inline unsigned resolveThreads(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(begin, end, chunkIndex) over contiguous chunks of [0, n) on
/// `threads` workers of the persistent process-wide ThreadPool. Chunking is
/// deterministic: chunk c covers [c*ceil(n/threads), ...), so merging
/// per-chunk results in chunk order reproduces the sequential order and
/// parallel builds stay bit-identical to serial ones at any thread count.
///
/// An explicit `threads` request is honored for any n (capped at n): small
/// inputs no longer fall back to a silent serial path, so pool bugs cannot
/// hide from tests. threads <= 1 (or n == 0) runs inline on the caller.
///
/// A throwing chunk does not take the process down: every chunk still
/// runs, and the first exception in chunk-index order is rethrown on the
/// calling thread (deterministic, whatever the threads' finishing order).
/// How parallelTasks splits [0, n): `tasks` chunks of `chunk` items each,
/// except the last chunk, which absorbs the remainder (so it holds between
/// `chunk` and `2*chunk - 1` items and no chunk is ever empty).
struct ChunkPlan {
  std::size_t chunk = 0;
  unsigned tasks = 0;

  std::size_t begin(unsigned t) const { return static_cast<std::size_t>(t) * chunk; }
  std::size_t end(unsigned t, std::size_t n) const {
    return t + 1 == tasks ? n : begin(t) + chunk;
  }
};

/// Work-stealing-friendly chunking: aims for `perThread` chunks per thread
/// so the pool's dynamic task handout can rebalance uneven per-item costs,
/// while never cutting chunks below `minPerChunk` items (tiny chunks pay
/// more in handout traffic and boundary false sharing than they recover in
/// balance). Guarantees for n > 0: no chunk is empty, and every chunk has
/// at least min(n, minPerChunk) items — in particular, batches with
/// n >= 2 * threads never see a single-item chunk when minPerChunk >= 2.
inline ChunkPlan planChunks(std::size_t n, unsigned threads, std::size_t minPerChunk,
                            unsigned perThread = 4) {
  if (n == 0) return {0, 0};
  threads = std::max(1u, std::min(threads, ThreadPool::kMaxWorkers + 1));
  minPerChunk = std::max<std::size_t>(1, minPerChunk);
  perThread = std::max(1u, perThread);
  const std::size_t targetTasks =
      static_cast<std::size_t>(threads) * static_cast<std::size_t>(perThread);
  std::size_t chunk = std::max(minPerChunk, (n + targetTasks - 1) / targetTasks);
  // Floor division: the last chunk absorbs the remainder instead of
  // becoming a short straggler.
  const std::size_t tasks = std::max<std::size_t>(1, n / chunk);
  return {chunk, static_cast<unsigned>(tasks)};
}

/// Runs fn(begin, end, taskIndex) over the planChunks() split of [0, n),
/// with at most `threads` of them in flight at once (dynamic handout over
/// ~4x that many chunks). Chunk boundaries are deterministic — they depend
/// only on (n, threads, minPerChunk) — so writes keyed by item index are
/// bit-identical to a serial loop at any thread count.
template <typename F>
inline void parallelTasks(std::size_t n, unsigned threads, std::size_t minPerChunk,
                          F&& fn) {
  const ChunkPlan plan = planChunks(n, threads, minPerChunk);
  if (plan.tasks == 0) return;
  if (plan.tasks == 1 || threads <= 1) {
    fn(static_cast<std::size_t>(0), n, 0u);
    return;
  }
  const std::function<void(unsigned)> task = [&fn, n, plan](unsigned t) {
    fn(plan.begin(t), plan.end(t, n), t);
  };
  ThreadPool::global().run(plan.tasks, threads, task);
}

template <typename F>
inline void parallelChunks(std::size_t n, unsigned threads, F&& fn) {
  threads = std::max<unsigned>(
      1u, std::min<unsigned>(threads, n == 0 ? 1u
                                             : static_cast<unsigned>(std::min<std::size_t>(
                                                   n, ThreadPool::kMaxWorkers + 1))));
  if (threads == 1) {
    fn(static_cast<std::size_t>(0), n, 0u);
    return;
  }
  const std::size_t chunk = (n + threads - 1) / threads;
  const auto tasks = static_cast<unsigned>((n + chunk - 1) / chunk);
  const std::function<void(unsigned)> task = [&fn, n, chunk](unsigned t) {
    const std::size_t begin = std::min(n, static_cast<std::size_t>(t) * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) fn(begin, end, t);
  };
  ThreadPool::global().run(tasks, task);
}

}  // namespace hybrid::util
