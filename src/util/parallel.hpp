#pragma once

#include <algorithm>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hybrid::util {

/// Number of worker threads to use: `requested` if positive, otherwise the
/// hardware concurrency (at least 1).
inline unsigned resolveThreads(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Runs fn(begin, end, chunkIndex) over contiguous chunks of [0, n) on
/// `threads` workers. Chunking is deterministic: merging per-chunk results
/// in chunk order reproduces the sequential order, so parallel builds stay
/// bit-identical to serial ones.
///
/// A throwing worker does not std::terminate the process: the first
/// exception (in chunk order, for determinism) is captured and rethrown on
/// the calling thread after every worker joined.
inline void parallelChunks(std::size_t n, unsigned threads,
                           const std::function<void(std::size_t, std::size_t, unsigned)>& fn) {
  threads = std::max(1u, std::min<unsigned>(threads, n == 0 ? 1 : static_cast<unsigned>(n)));
  if (threads == 1 || n < 256) {
    fn(0, n, 0);
    return;
  }
  const std::size_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::mutex errMutex;
  std::exception_ptr firstError;
  unsigned firstErrorChunk = 0;
  for (unsigned t = 0; t < threads; ++t) {
    const std::size_t begin = std::min(n, static_cast<std::size_t>(t) * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, &errMutex, &firstError, &firstErrorChunk, begin, end, t] {
      try {
        fn(begin, end, t);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errMutex);
        if (firstError == nullptr || t < firstErrorChunk) {
          firstError = std::current_exception();
          firstErrorChunk = t;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  if (firstError != nullptr) std::rethrow_exception(firstError);
}

}  // namespace hybrid::util
