#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <vector>

namespace hybrid::util {

namespace detail {
/// Counts every heap allocation any SmallVec performs (spills past the
/// inline capacity). The message-pool test reads the delta across simulated
/// rounds to prove the pooled hot path reaches allocation-free steady state.
inline std::atomic<long>& smallVecHeapAllocs() {
  static std::atomic<long> count{0};
  return count;
}
}  // namespace detail

/// Small-buffer-optimized vector for trivially copyable payload words.
/// The first N elements live inside the object, so typical protocol
/// messages (a handful of words) never touch the heap; longer payloads
/// spill to a geometrically grown heap buffer.
///
/// Two properties matter for the simulator's message pool:
///  - clear() keeps the capacity, so a recycled slot retains whatever
///    buffer its worst message ever needed;
///  - move-assignment from an inline-resident source copies into the
///    destination's existing storage instead of discarding it, so moving a
///    small message into a pooled slot never frees or allocates.
template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(N > 0);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;
  SmallVec(std::initializer_list<T> xs) { assign(xs.begin(), xs.end()); }
  SmallVec(const SmallVec& o) { assign(o.data(), o.data() + o.size_); }
  SmallVec(SmallVec&& o) noexcept { moveFrom(o); }
  ~SmallVec() {
    if (heap_ != nullptr) ::operator delete(heap_);
  }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) assign(o.data(), o.data() + o.size_);
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) moveFrom(o);
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> xs) {
    assign(xs.begin(), xs.end());
    return *this;
  }
  SmallVec& operator=(const std::vector<T>& v) {
    assign(v.data(), v.data() + v.size());
    return *this;
  }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }
  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return heap_ != nullptr ? cap_ : N; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t want) {
    if (want <= capacity()) return;
    const std::size_t doubled = capacity() * 2;
    const std::size_t cap = doubled < want ? want : doubled;
    T* buf = static_cast<T*>(::operator new(cap * sizeof(T)));
    detail::smallVecHeapAllocs().fetch_add(1, std::memory_order_relaxed);
    std::memcpy(buf, data(), size_ * sizeof(T));
    if (heap_ != nullptr) ::operator delete(heap_);
    heap_ = buf;
    cap_ = cap;
  }

  void push_back(T x) {
    if (size_ == capacity()) reserve(size_ + 1);
    data()[size_++] = x;
  }

  void resize(std::size_t n) {
    reserve(n);
    T* d = data();
    for (std::size_t i = size_; i < n; ++i) d[i] = T{};
    size_ = n;
  }

  template <typename It>
  void assign(It first, It last) {
    const auto n = static_cast<std::size_t>(last - first);
    reserve(n);
    T* d = data();
    for (std::size_t i = 0; i < n; ++i) d[i] = first[i];
    size_ = n;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data()[i] == b.data()[i])) return false;
    }
    return true;
  }

 private:
  void moveFrom(SmallVec& o) noexcept {
    if (o.heap_ != nullptr) {
      if (heap_ != nullptr) ::operator delete(heap_);
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.size_ = 0;
    } else {
      // Source fits inline: copy into whatever storage we already own so a
      // recycled slot keeps its capacity.
      std::memcpy(data(), o.inline_, o.size_ * sizeof(T));
      size_ = o.size_;
      o.size_ = 0;
    }
  }

  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  T inline_[N];
};

}  // namespace hybrid::util
