#include "util/thread_pool.hpp"

#include <algorithm>

namespace hybrid::util {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers > 0) ensureWorkers(std::min(workers, kMaxWorkers));
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

unsigned ThreadPool::workerCount() const {
  const std::lock_guard<std::mutex> lock(m_);
  return static_cast<unsigned>(workers_.size());
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::execute(Job& job) {
  // Jobs may bound their parallelism below the task count (and below the
  // pool size left over from earlier, wider jobs); surplus threads bow out
  // without touching the task counters.
  if (job.runners.fetch_add(1, std::memory_order_relaxed) >= job.maxRunners) return;
  for (;;) {
    const unsigned t = job.next.fetch_add(1, std::memory_order_relaxed);
    if (t >= job.tasks) return;
    try {
      (*job.fn)(t);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.m);
      if (job.error == nullptr || t < job.errorTask) {
        job.error = std::current_exception();
        job.errorTask = t;
      }
    }
    if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task: wake the submitter. Taking the job mutex orders the
      // notify after the waiter's predicate check, so no wakeup is lost.
      const std::lock_guard<std::mutex> lock(job.m);
      job.done.notify_all();
    }
  }
}

void ThreadPool::ensureWorkers(unsigned want) {
  want = std::min(want, kMaxWorkers);
  const std::lock_guard<std::mutex> lock(m_);
  while (workers_.size() < want) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    execute(*job);
  }
}

void ThreadPool::run(unsigned tasks, const std::function<void(unsigned)>& fn) {
  run(tasks, tasks, fn);
}

void ThreadPool::run(unsigned tasks, unsigned parallelism,
                     const std::function<void(unsigned)>& fn) {
  if (tasks == 0) return;
  parallelism = std::max(1u, std::min(parallelism, tasks));
  if (tasks == 1 || parallelism == 1) {
    // Same contract as the parallel path: every task runs, the first
    // exception in task-index order is rethrown.
    std::exception_ptr error;
    for (unsigned t = 0; t < tasks; ++t) {
      try {
        fn(t);
      } catch (...) {
        if (error == nullptr) error = std::current_exception();
      }
    }
    if (error != nullptr) std::rethrow_exception(error);
    return;
  }
  // One job at a time: concurrent submitters queue up here instead of
  // corrupting each other's generation counters.
  const std::lock_guard<std::mutex> runLock(runMutex_);
  ensureWorkers(parallelism - 1);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->tasks = tasks;
  job->maxRunners = parallelism;
  job->pending.store(tasks, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(m_);
    job_ = job;
    ++generation_;
  }
  cv_.notify_all();
  execute(*job);  // the caller works too
  {
    std::unique_lock<std::mutex> lock(job->m);
    job->done.wait(lock, [&] { return job->pending.load(std::memory_order_acquire) == 0; });
  }
  {
    const std::lock_guard<std::mutex> lock(m_);
    job_ = nullptr;
  }
  if (job->error != nullptr) std::rethrow_exception(job->error);
}

}  // namespace hybrid::util
