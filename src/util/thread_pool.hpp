#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hybrid::util {

/// Persistent worker pool replacing the per-call std::thread spawning the
/// simulator, LDel construction and benches used to pay every invocation.
/// Workers are created lazily (up to the largest parallelism ever
/// requested, capped) and then sleep on a condition variable between jobs.
///
/// run(tasks, fn) executes fn(t) exactly once for every t in [0, tasks).
/// The calling thread participates, so a pool with w workers serves
/// (w + 1)-way parallelism. Task indices are handed out dynamically, which
/// is safe for determinism as long as callers merge per-task results by
/// task index, never by completion order (the parallelChunks convention).
///
/// Exceptions thrown by tasks are captured; after every task finished, the
/// one with the lowest task index is rethrown on the calling thread, so
/// the error a caller sees does not depend on thread scheduling.
class ThreadPool {
 public:
  /// `workers` is the number of extra threads to keep around; 0 means
  /// "grow on demand" up to kMaxWorkers as run() asks for parallelism.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void run(unsigned tasks, const std::function<void(unsigned)>& fn);

  /// Like run(tasks, fn) but with at most `parallelism` threads working at
  /// once (the caller counts as one). Lets callers split work into more
  /// tasks than threads — the dynamic handout then rebalances uneven task
  /// costs — without growing the pool to one thread per task.
  void run(unsigned tasks, unsigned parallelism, const std::function<void(unsigned)>& fn);

  unsigned workerCount() const;

  /// The process-wide pool shared by the simulator, LDel and benches.
  static ThreadPool& global();

  static constexpr unsigned kMaxWorkers = 64;

 private:
  struct Job {
    const std::function<void(unsigned)>* fn = nullptr;
    unsigned tasks = 0;
    unsigned maxRunners = 0;
    std::atomic<unsigned> runners{0};
    std::atomic<unsigned> next{0};
    std::atomic<unsigned> pending{0};
    std::mutex m;
    std::condition_variable done;
    std::exception_ptr error;
    unsigned errorTask = 0;
  };

  static void execute(Job& job);
  void ensureWorkers(unsigned want);
  void workerLoop();

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::shared_ptr<Job> job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::mutex runMutex_;
};

}  // namespace hybrid::util
