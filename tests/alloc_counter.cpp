#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<long> g_heapAllocs{0};
}  // namespace

namespace hybrid::testsupport {
long heapAllocCount() { return g_heapAllocs.load(std::memory_order_relaxed); }
}  // namespace hybrid::testsupport

#if HYBRID_TEST_COUNTS_ALLOCS
void* operator new(std::size_t n) {
  g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#endif  // HYBRID_TEST_COUNTS_ALLOCS
