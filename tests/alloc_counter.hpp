#pragma once

// Shared counting global allocator for zero-allocation assertions. The
// definitions live in alloc_counter.cpp — a program may replace ::operator
// new only once, so every test that wants to count heap traffic uses this
// header instead of defining its own override. Sanitizer builds replace
// the allocator themselves; there the counter stays at zero and
// heapAllocCountingEnabled() lets tests skip the strict assertions.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HYBRID_TEST_COUNTS_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define HYBRID_TEST_COUNTS_ALLOCS 0
#else
#define HYBRID_TEST_COUNTS_ALLOCS 1
#endif
#else
#define HYBRID_TEST_COUNTS_ALLOCS 1
#endif

namespace hybrid::testsupport {

/// Number of ::operator new calls so far (0 forever under sanitizers).
long heapAllocCount();

/// True when the counting allocator is active in this build.
inline bool heapAllocCountingEnabled() { return HYBRID_TEST_COUNTS_ALLOCS != 0; }

}  // namespace hybrid::testsupport
