#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/animation.hpp"

namespace hybrid::io {
namespace {

TEST(Animation, WritesSelfContainedHtml) {
  AnimationExporter anim(10.0, 10.0);
  for (int f = 0; f < 3; ++f) {
    AnimationExporter::Frame frame;
    frame.nodes = {{1.0 + f, 1.0}, {2.0, 2.0 + f}};
    frame.holes.push_back(geom::Polygon({{4, 4}, {6, 4}, {5, 6}}));
    frame.route = {{1.0, 1.0}, {2.0, 2.0}};
    frame.caption = "step " + std::to_string(f);
    anim.addFrame(std::move(frame));
  }
  EXPECT_EQ(anim.numFrames(), 3u);

  const std::string path = ::testing::TempDir() + "anim_test.html";
  ASSERT_TRUE(anim.save(path, "unit test"));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("<canvas"), std::string::npos);
  EXPECT_NE(doc.find("const frames="), std::string::npos);
  EXPECT_NE(doc.find("step 2"), std::string::npos);
  // Three frame objects in the data array.
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = doc.find("\"caption\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
  std::remove(path.c_str());
}

TEST(Animation, EmptyAnimationStillValid) {
  AnimationExporter anim(5.0, 5.0);
  const std::string path = ::testing::TempDir() + "anim_empty.html";
  EXPECT_TRUE(anim.save(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hybrid::io
