#include <gtest/gtest.h>

#include <random>

#include "core/hybrid_network.hpp"
#include "routing/baselines.hpp"
#include "routing/server_oracle.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid::routing {
namespace {

int nearestNode(const graph::GeometricGraph& g, geom::Vec2 p) {
  int best = 0;
  double bestD = 1e18;
  for (int v = 0; v < static_cast<int>(g.numNodes()); ++v) {
    const double d = geom::dist2(g.position(v), p);
    if (d < bestD) {
      bestD = d;
      best = v;
    }
  }
  return best;
}

TEST(Baselines, GreedyIsOptimalishWithoutHoles) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(400, 201));
  core::HybridNetwork net(sc.points);
  GreedyRouter greedy(net.ldel());
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  int delivered = 0;
  for (int it = 0; it < 80; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = greedy.route(s, t);
    if (!r.delivered) continue;
    ++delivered;
    EXPECT_LT(net.stretch(r, s, t), 2.0);
  }
  EXPECT_GE(delivered, 76);  // dense hole-free deployments rarely trap greedy
}

TEST(Baselines, GreedyStuckNodeIsALocalMinimum) {
  scenario::ScenarioParams p;
  p.width = p.height = 18.0;
  p.seed = 202;
  p.obstacles.push_back(scenario::rectangleObstacle({6, 7}, {12, 11}));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  GreedyRouter greedy(net.ldel());
  const int s = nearestNode(net.ldel(), {3.0, 9.0});
  const int t = nearestNode(net.ldel(), {15.0, 9.0});
  const auto r = greedy.route(s, t);
  ASSERT_FALSE(r.delivered);
  // The node where greedy stopped has no neighbor closer to t.
  const auto stuck = r.path.back();
  const double d = geom::dist(net.ldel().position(stuck), net.ldel().position(t));
  for (graph::NodeId nb : net.ldel().neighbors(stuck)) {
    EXPECT_GE(geom::dist(net.ldel().position(nb), net.ldel().position(t)), d);
  }
}

TEST(Baselines, CompassDetectsItsOwnLoops) {
  scenario::ScenarioParams p;
  p.width = p.height = 18.0;
  p.seed = 203;
  p.obstacles.push_back(scenario::uShapeObstacle({9, 9}, 7.0, 6.0, 1.4));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  CompassRouter compass(net.ldel());
  std::mt19937 rng(2);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  for (int it = 0; it < 60; ++it) {
    const auto r = compass.route(pick(rng), pick(rng));
    // Never runs away: bounded hops whether delivered or looped.
    EXPECT_LT(r.path.size(), 4 * net.ldel().numNodes() + 17);
  }
}

TEST(Baselines, ServerOracleIsExactlyOptimal) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(300, 204));
  core::HybridNetwork net(sc.points);
  ServerOracleRouter server(net.udg());
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  for (int it = 0; it < 40; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = server.route(s, t);
    ASSERT_TRUE(r.delivered);
    EXPECT_NEAR(net.stretch(r, s, t), 1.0, 1e-9);
  }
  EXPECT_EQ(server.uploadMessagesPerEpoch(), static_cast<long>(net.udg().numNodes()));
  EXPECT_EQ(server.queryMessages(), 2);
}

TEST(Baselines, FaceGreedyBeatsGreedyOnDelivery) {
  scenario::ScenarioParams p;
  p.width = p.height = 20.0;
  p.seed = 205;
  p.obstacles.push_back(scenario::regularPolygonObstacle({10, 10}, 3.2, 5));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  GreedyRouter greedy(net.ldel());
  FaceGreedyRouter face(net.ldel(), net.subdivision(), net.holes());
  std::mt19937 rng(4);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  int greedyOk = 0;
  int faceOk = 0;
  const int pairs = 100;
  for (int it = 0; it < pairs; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    greedyOk += greedy.route(s, t).delivered ? 1 : 0;
    faceOk += face.route(s, t).delivered ? 1 : 0;
  }
  EXPECT_EQ(faceOk, pairs);
  EXPECT_LT(greedyOk, pairs);
}

}  // namespace
}  // namespace hybrid::routing
