// Bounding-box hole abstraction (PR 9): structural invariants of
// buildBBoxOverlay, AbstractionMode plumbing, the Auto switchover, and the
// headline guarantee the mode exists for — intersecting-hull scenarios
// (which the convex-hull router only serves through A* fallbacks) route
// with zero fallbacks under BBox/Auto.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "abstraction/bbox_overlay.hpp"
#include "abstraction/hull_groups.hpp"
#include "core/hybrid_network.hpp"
#include "testkit/corpus.hpp"
#include "testkit/generators.hpp"
#include "testkit/harness.hpp"
#include "testkit/oracles.hpp"

#ifndef HYBRID_CORPUS_DIR
#error "HYBRID_CORPUS_DIR must point at tests/corpus (set in tests/CMakeLists.txt)"
#endif

namespace {

using namespace hybrid;
using namespace hybrid::testkit;

scenario::Scenario makeScenario(const char* generator, std::uint64_t seed) {
  const auto* g = findGenerator(generator);
  EXPECT_NE(g, nullptr) << generator;
  return g->make(seed);
}

routing::HybridOptions bboxOptions(routing::EdgeMode edges,
                                   routing::AbstractionMode mode) {
  routing::HybridOptions opts{routing::SiteMode::HullNodes, edges, true};
  opts.abstraction = mode;
  return opts;
}

TEST(BBoxOverlay, AbstractionModeNamesRoundTrip) {
  for (const routing::AbstractionMode m :
       {routing::AbstractionMode::Hulls, routing::AbstractionMode::BBox,
        routing::AbstractionMode::Auto}) {
    const auto parsed = routing::parseAbstractionMode(routing::abstractionModeName(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_EQ(std::string(routing::abstractionModeName(routing::AbstractionMode::BBox)),
            "bbox");
  EXPECT_FALSE(routing::parseAbstractionMode("convex").has_value());
  EXPECT_FALSE(routing::parseAbstractionMode("").has_value());
}

TEST(BBoxOverlay, BuildInvariantsAndDeterminism) {
  const auto sc = makeScenario("hull_intersect", 2);
  core::HybridNetwork net(sc.points, sc.radius);
  const auto groups = abstraction::buildBBoxOverlay(net.ldel(), net.holes(),
                                                    net.abstractions());
  ASSERT_FALSE(groups.empty());

  std::vector<int> covered;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const auto& g = groups[i];
    ASSERT_EQ(g.holeSites.size(), g.members.size());
    // Merged boxes are pairwise disjoint by construction — that is the
    // property that restores the paper's disjointness precondition.
    for (std::size_t j = i + 1; j < groups.size(); ++j) {
      EXPECT_FALSE(g.box.intersects(groups[j].box)) << i << " vs " << j;
    }
    for (const auto& hs : g.holeSites) {
      covered.push_back(hs.abstraction);
      const auto& a = net.abstractions()[static_cast<std::size_t>(hs.abstraction)];
      const auto& ring = net.holes().holes[static_cast<std::size_t>(a.holeIndex)].ring;
      EXPECT_FALSE(hs.sites.empty());
      EXPECT_LE(hs.sites.size(), 8u);  // corner/projection rule: O(1) sites
      for (const graph::NodeId v : hs.sites) {
        EXPECT_NE(std::find(ring.begin(), ring.end(), v), ring.end());
        EXPECT_TRUE(g.box.contains(net.ldel().position(v)));
      }
      for (const graph::NodeId v : ring) {
        EXPECT_TRUE(g.box.contains(net.ldel().position(v)));
      }
    }
  }
  // Every abstraction lands in exactly one group.
  std::sort(covered.begin(), covered.end());
  ASSERT_EQ(covered.size(), net.abstractions().size());
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_EQ(covered[i], static_cast<int>(i));
  }

  // Bit-identical rebuild: the abstraction is a pure function of the graph.
  const auto again = abstraction::buildBBoxOverlay(net.ldel(), net.holes(),
                                                   net.abstractions());
  ASSERT_EQ(again.size(), groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    EXPECT_EQ(again[i].members, groups[i].members);
    EXPECT_EQ(again[i].box.lo.x, groups[i].box.lo.x);
    EXPECT_EQ(again[i].box.hi.y, groups[i].box.hi.y);
    ASSERT_EQ(again[i].holeSites.size(), groups[i].holeSites.size());
    for (std::size_t k = 0; k < groups[i].holeSites.size(); ++k) {
      EXPECT_EQ(again[i].holeSites[k].sites, groups[i].holeSites[k].sites);
    }
  }
}

TEST(BBoxOverlay, AutoEngagesBBoxExactlyWhenHullsIntersect) {
  // The switchover keys off hull_groups (transitive hull intersection,
  // tangency included), not the strict-containment disjointness predicate.
  for (const char* gen : {"hull_intersect", "hull_chain", "hull_nest"}) {
    SCOPED_TRACE(gen);
    const auto sc = makeScenario(gen, 4);
    core::HybridNetwork net(sc.points, sc.radius);
    const auto groups = abstraction::mergeIntersectingHulls(net.ldel(), net.abstractions());
    const bool intersecting = std::any_of(groups.begin(), groups.end(),
                                          [](const auto& g) { return g.members.size() > 1; });
    ASSERT_TRUE(intersecting) << gen << " generator no longer interlocks hulls";
    const auto router = net.makeRouter(
        bboxOptions(routing::EdgeMode::Visibility, routing::AbstractionMode::Auto));
    EXPECT_TRUE(router->usesBBox());
    EXPECT_NE(router->name().find("+bbox"), std::string::npos);
  }
}

TEST(BBoxOverlay, AutoMatchesHullsRouteForRouteOnDisjointScenarios) {
  int compared = 0;
  for (const std::uint64_t seed : {1ull, 3ull, 4ull, 5ull}) {
    const auto sc = makeScenario("cocircular", seed);
    CaseContext ctx(sc, seed);
    const auto& net = ctx.net();
    const auto groups =
        abstraction::mergeIntersectingHulls(net.ldel(), net.abstractions());
    const bool intersecting = std::any_of(groups.begin(), groups.end(),
                                          [](const auto& g) { return g.members.size() > 1; });
    if (intersecting) continue;  // Auto would (correctly) pick bbox here
    for (const routing::EdgeMode em :
         {routing::EdgeMode::Visibility, routing::EdgeMode::Delaunay}) {
      const auto hulls = net.makeRouter(bboxOptions(em, routing::AbstractionMode::Hulls));
      const auto autoR = net.makeRouter(bboxOptions(em, routing::AbstractionMode::Auto));
      EXPECT_FALSE(autoR->usesBBox());
      for (const auto& [s, t] : ctx.pairs()) {
        const auto rh = hulls->route(s, t);
        const auto ra = autoR->route(s, t);
        EXPECT_EQ(rh.delivered, ra.delivered);
        EXPECT_EQ(rh.path, ra.path) << s << "->" << t;
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 0) << "no disjoint-hull scenario found to compare on";
}

// Acceptance: the intersecting-hull scenarios the convex-hull router can
// only serve through A* splices route with ZERO fallbacks once the box
// abstraction is selected (explicitly or via Auto). Runs on every recorded
// hull_intersect corpus case plus fresh full-size deployments.
TEST(BBoxOverlay, HullIntersectRoutesWithoutFallbacksUnderBBoxAndAuto) {
  std::vector<std::pair<std::string, scenario::Scenario>> cases;
  for (const auto& path : listCorpus(HYBRID_CORPUS_DIR)) {
    const auto c = loadCase(path);
    ASSERT_TRUE(c.has_value()) << path;
    if (c->generator == "hull_intersect") cases.emplace_back(path, c->scenario);
  }
  ASSERT_FALSE(cases.empty()) << "no hull_intersect cases in " << HYBRID_CORPUS_DIR;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    cases.emplace_back("hull_intersect/" + std::to_string(seed),
                       makeScenario("hull_intersect", seed));
  }

  for (const auto& [label, sc] : cases) {
    SCOPED_TRACE(label);
    CaseContext ctx(sc, 17);
    for (const routing::AbstractionMode mode :
         {routing::AbstractionMode::BBox, routing::AbstractionMode::Auto}) {
      for (const routing::EdgeMode em :
           {routing::EdgeMode::Visibility, routing::EdgeMode::Delaunay}) {
        const auto router = ctx.net().makeRouter(bboxOptions(em, mode));
        for (const auto& [s, t] : ctx.pairs()) {
          const auto r = router->route(s, t);
          EXPECT_TRUE(r.delivered) << s << "->" << t;
          EXPECT_EQ(r.fallbacks, 0)
              << routing::abstractionModeName(mode) << " edge mode "
              << static_cast<int>(em) << " pair " << s << "->" << t;
        }
      }
    }
  }
}

// End-to-end pipeline proof for the planted bbox defect: the corrupted
// site selection must be caught by bbox_parity, shrunk to a handful of
// nodes, recorded as JSON, and the record must replay clean without the
// bug. Seed/trials picked so the defect fires within 6 trials; re-pick
// with: fuzz_router --inject-bug drop-bbox-corner --trials 6 --seed S
TEST(BBoxOverlay, InjectedDropBBoxCornerIsCaughtShrunkAndRecorded) {
  const auto dir = std::filesystem::temp_directory_path() / "hybrid-testkit" / "bbox-inject";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FuzzOptions opts;
  opts.seed = 5;
  opts.trials = 6;
  opts.threads = 2;
  opts.bug = InjectedBug::DropBBoxCorner;
  opts.corpusDir = dir.string();
  const auto summary = runFuzz(opts);
  ASSERT_FALSE(summary.failures.empty()) << summary.report();

  bool sawSmallReplayable = false;
  for (const auto& f : summary.failures) {
    EXPECT_EQ(f.oracle, "bbox_parity");
    EXPECT_LE(f.shrunkNodes, f.originalNodes);
    if (f.corpusPath.empty() || f.shrunkNodes > 10) continue;
    const auto c = loadCase(f.corpusPath);
    ASSERT_TRUE(c.has_value()) << f.corpusPath;
    EXPECT_EQ(c->oracle, "bbox_parity");
    EXPECT_EQ(c->scenario.points.size(), f.shrunkNodes);
    EXPECT_EQ(replayCase(*c, 2), "") << f.corpusPath;
    sawSmallReplayable = true;
  }
  EXPECT_TRUE(sawSmallReplayable)
      << "no failure shrank to <= 10 nodes with a corpus file:\n"
      << summary.report();
}

}  // namespace
