#include <gtest/gtest.h>

#include <random>

#include "core/hybrid_network.hpp"
#include "routing/chew.hpp"
#include "routing/subdivision.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

TEST(Subdivision, ClassifiesTrianglesAndHoles) {
  scenario::ScenarioParams p;
  p.width = p.height = 14.0;
  p.seed = 91;
  p.obstacles.push_back(scenario::regularPolygonObstacle({7, 7}, 2.2, 6));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  const auto& sub = net.subdivision();

  int walkable = 0;
  int holeFaces = 0;
  int outer = 0;
  for (std::size_t f = 0; f < sub.faces().size(); ++f) {
    const int fi = static_cast<int>(f);
    if (sub.isOuterFace(fi)) {
      ++outer;
      EXPECT_FALSE(sub.isWalkable(fi));
      continue;
    }
    if (sub.isWalkable(fi)) {
      ++walkable;
      EXPECT_EQ(sub.faces()[f].cycle.size(), 3u);
      EXPECT_EQ(sub.holeOfFace(fi), -1);
    } else if (sub.holeOfFace(fi) >= 0) {
      ++holeFaces;
      EXPECT_LT(sub.holeOfFace(fi), static_cast<int>(net.holes().holes.size()));
    }
  }
  EXPECT_EQ(outer, 1);
  EXPECT_GT(walkable, 100);
  // Every detected hole matches exactly one face.
  EXPECT_EQ(holeFaces, static_cast<int>(net.holes().holes.size()));
}

TEST(Subdivision, FaceLeftOfIsConsistentWithCycles) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(200, 92));
  core::HybridNetwork net(sc.points);
  const auto& sub = net.subdivision();
  for (std::size_t f = 0; f < sub.faces().size(); ++f) {
    const auto& cycle = sub.faces()[f].cycle;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      EXPECT_EQ(sub.faceLeftOf(cycle[i], cycle[(i + 1) % cycle.size()]),
                static_cast<int>(f));
    }
  }
}

TEST(Subdivision, IncidentFaceContainingFindsProbes) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(200, 93));
  core::HybridNetwork net(sc.points);
  const auto& sub = net.subdivision();
  // For interior nodes, a probe slightly off the node lies in one of its
  // incident faces.
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(net.ldel().numNodes()) - 1);
  std::uniform_real_distribution<double> ang(0.0, 6.28);
  int found = 0;
  int tried = 0;
  for (int it = 0; it < 60; ++it) {
    const int v = pick(rng);
    const auto pos = net.ldel().position(v);
    const double a = ang(rng);
    const geom::Vec2 probe{pos.x + 1e-6 * std::cos(a), pos.y + 1e-6 * std::sin(a)};
    ++tried;
    const int face = sub.incidentFaceContaining(v, probe);
    if (face >= 0) {
      ++found;
      EXPECT_TRUE(
          std::find(sub.faces()[static_cast<std::size_t>(face)].cycle.begin(),
                    sub.faces()[static_cast<std::size_t>(face)].cycle.end(),
                    v) != sub.faces()[static_cast<std::size_t>(face)].cycle.end());
    }
  }
  // Most probes land in a bounded incident face (boundary nodes may probe
  // into the outer face).
  EXPECT_GT(found, tried * 3 / 4);
}

TEST(Chew, HandlesCollinearVertexPass) {
  // A structured grid forces the segment through exact vertex hits.
  std::vector<geom::Vec2> pts;
  for (int y = 0; y <= 10; ++y) {
    for (int x = 0; x <= 10; ++x) {
      pts.push_back({x * 0.7, y * 0.7});
    }
  }
  // Shift odd rows slightly so the triangulation is non-degenerate, but
  // keep row 5 exactly straight: routing along it passes through vertices.
  for (int y = 1; y <= 10; y += 2) {
    if (y == 5) continue;
    for (int x = 0; x <= 10; ++x) {
      pts[static_cast<std::size_t>(y * 11 + x)].x += 0.13;
    }
  }
  core::HybridNetwork net(pts);
  routing::ChewRouter chew(net.ldel(), net.subdivision());
  const int s = 5 * 11 + 0;
  const int t = 5 * 11 + 10;
  const auto r = chew.route(s, t);
  ASSERT_TRUE(r.delivered);
  // The straight row is the optimal path; Chew should essentially take it.
  EXPECT_LE(net.ldel().pathLength(r.path), 0.7 * 10 * 1.2);
}

TEST(Chew, SelfAndNeighborTrivia) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(150, 94));
  core::HybridNetwork net(sc.points);
  routing::ChewRouter chew(net.ldel(), net.subdivision());
  const auto self = chew.route(7, 7);
  EXPECT_TRUE(self.delivered);
  EXPECT_EQ(self.hops(), 0u);
  const auto nbrs = net.ldel().neighbors(7);
  ASSERT_FALSE(nbrs.empty());
  const auto one = chew.route(7, nbrs[0]);
  EXPECT_TRUE(one.delivered);
  EXPECT_EQ(one.hops(), 1u);
}

TEST(Chew, ExtendRefusesEmptyPath) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(150, 95));
  core::HybridNetwork net(sc.points);
  routing::ChewRouter chew(net.ldel(), net.subdivision());
  std::vector<graph::NodeId> empty;
  EXPECT_FALSE(chew.extend(empty, 3, nullptr));
}

}  // namespace
}  // namespace hybrid
