#include <gtest/gtest.h>

#include "core/hybrid_network.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid::core {
namespace {

TEST(HybridNetwork, StretchSemantics) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(200, 71));
  HybridNetwork net(sc.points);
  // Undelivered routes have infinite stretch.
  routing::RouteResult lost;
  lost.path = {0};
  lost.delivered = false;
  EXPECT_TRUE(std::isinf(net.stretch(lost, 0, 1)));
  // Self routes have stretch 1.
  const auto self = net.route(3, 3);
  EXPECT_DOUBLE_EQ(net.stretch(self, 3, 3), 1.0);
  // A delivered route is never shorter than the optimum.
  const auto r = net.route(0, static_cast<int>(sc.points.size()) - 1);
  ASSERT_TRUE(r.delivered);
  EXPECT_GE(net.stretch(r, 0, static_cast<int>(sc.points.size()) - 1), 1.0 - 1e-12);
}

TEST(HybridNetwork, CustomRadiusScalesEverything) {
  // Same layout at double scale with double radius: identical topology.
  auto sc = scenario::makeScenario(scenario::paramsForNodeCount(200, 72));
  HybridNetwork base(sc.points, 1.0);
  std::vector<geom::Vec2> scaled;
  for (const auto& p : sc.points) scaled.push_back(p * 2.0);
  HybridNetwork twice(scaled, 2.0);
  EXPECT_EQ(base.udg().numEdges(), twice.udg().numEdges());
  EXPECT_EQ(base.ldel().numEdges(), twice.ldel().numEdges());
  EXPECT_EQ(base.holes().holes.size(), twice.holes().holes.size());
}

TEST(HybridNetwork, QudgConstructorDegradesGracefully) {
  scenario::ScenarioParams p;
  p.width = p.height = 12.0;
  p.seed = 73;
  p.spacing = 0.45;
  const auto sc = scenario::makeScenario(p);
  delaunay::LDelOptions opts;
  opts.reliableRadius = 0.7;
  opts.dropProbability = 0.4;
  HybridNetwork qudg(sc.points, opts);
  HybridNetwork plain(sc.points);
  EXPECT_LT(qudg.udg().numEdges(), plain.udg().numEdges());
  // The QUDG keeps all reliable (short) links.
  for (const auto& [u, v] : plain.udg().edges()) {
    if (plain.udg().edgeLength(u, v) <= opts.reliableRadius) {
      EXPECT_TRUE(qudg.udg().hasEdge(u, v));
    }
  }
  // Determinism: same seed, same graph.
  HybridNetwork again(sc.points, opts);
  EXPECT_EQ(qudg.udg().numEdges(), again.udg().numEdges());
}

TEST(HybridNetwork, MakeRouterIsIndependentOfDefault) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(250, 74));
  HybridNetwork net(sc.points);
  auto custom = net.makeRouter(
      {routing::SiteMode::AllHoleNodes, routing::EdgeMode::Visibility, false});
  const auto a = net.route(1, 200);
  const auto b = custom->route(1, 200);
  EXPECT_TRUE(a.delivered);
  EXPECT_TRUE(b.delivered);
  // Both valid; they may differ, but both end at the target.
  EXPECT_EQ(a.path.back(), 200);
  EXPECT_EQ(b.path.back(), 200);
}

TEST(HybridNetwork, StorageReportCoversEveryNode) {
  scenario::ScenarioParams p;
  p.width = p.height = 14.0;
  p.seed = 75;
  p.obstacles.push_back(scenario::regularPolygonObstacle({7, 7}, 2.2, 7));
  HybridNetwork net(scenario::makeScenario(p).points);
  const auto rep = net.storageReport();
  ASSERT_EQ(rep.perNode.size(), net.ldel().numNodes());
  for (long v : rep.perNode) EXPECT_GE(v, 1);
  EXPECT_GE(rep.totalHullNodes, 3);
}

}  // namespace
}  // namespace hybrid::core
