// Replays every recorded fuzz finding in tests/corpus/ through the full
// oracle registry. Each JSON file is a scenario the fuzzer once shrank
// from a real (or deliberately injected) failure; replaying them on every
// build turns past findings into permanent regression checks. The suite
// also runs under the ASan/UBSan and TSan CI jobs, so each case doubles as
// a sanitizer workload.
//
// Reproducing a case by hand:
//   ./tools/fuzz_router --replay ../tests/corpus/<case>.json
// Regenerating the unshrunk input: the "generator" + "seed" fields name
// the testkit generator call that produced the original scenario.

#include <gtest/gtest.h>

#include "testkit/corpus.hpp"
#include "testkit/harness.hpp"

#ifndef HYBRID_CORPUS_DIR
#error "HYBRID_CORPUS_DIR must point at tests/corpus (set in tests/CMakeLists.txt)"
#endif

namespace {

using namespace hybrid::testkit;

TEST(CorpusRegression, CorpusIsPresentAndParses) {
  const auto files = listCorpus(HYBRID_CORPUS_DIR);
  ASSERT_FALSE(files.empty()) << "no corpus cases under " << HYBRID_CORPUS_DIR;
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    const auto c = loadCase(path);
    ASSERT_TRUE(c.has_value());
    EXPECT_FALSE(c->generator.empty());
    EXPECT_FALSE(c->oracle.empty());
    EXPECT_GE(c->scenario.points.size(), 4u);
    // The writer/reader pair is lossless: re-serializing reproduces the
    // file byte for byte (modulo what the file was saved with).
    const auto reparsed = fromJson(toJson(*c));
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(toJson(*reparsed), toJson(*c));
  }
}

TEST(CorpusRegression, AllCasesReplayClean) {
  const auto files = listCorpus(HYBRID_CORPUS_DIR);
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    SCOPED_TRACE(path);
    const auto c = loadCase(path);
    ASSERT_TRUE(c.has_value());
    const std::string failure = replayCase(*c, 2);
    EXPECT_EQ(failure, "") << "recorded case regressed: " << failure;
  }
}

}  // namespace
