#include <gtest/gtest.h>

#include <random>
#include <set>

#include "delaunay/ldel.hpp"
#include "delaunay/triangulation.hpp"
#include "delaunay/udg.hpp"
#include "geom/polygon.hpp"
#include "geom/predicates.hpp"
#include "graph/shortest_path.hpp"
#include "spatial/grid_index.hpp"
#include "scenario/generator.hpp"

namespace hybrid::delaunay {
namespace {

std::vector<geom::Vec2> randomPoints(std::size_t n, unsigned seed, double extent = 50.0) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(0.0, extent);
  std::set<std::pair<double, double>> seen;
  std::vector<geom::Vec2> pts;
  while (pts.size() < n) {
    const geom::Vec2 p{d(rng), d(rng)};
    if (seen.insert({p.x, p.y}).second) pts.push_back(p);
  }
  return pts;
}

TEST(GridIndex, MatchesBruteForce) {
  const auto pts = randomPoints(400, 3, 20.0);
  const spatial::GridIndex grid(pts, 1.0);
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> d(0.0, 20.0);
  for (int it = 0; it < 50; ++it) {
    const geom::Vec2 q{d(rng), d(rng)};
    const double r = 0.3 + 2.2 * (it % 5) / 4.0;
    auto got = grid.queryRadius(q, r);
    std::sort(got.begin(), got.end());
    std::vector<int> expect;
    for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
      if (geom::dist(pts[static_cast<std::size_t>(i)], q) <= r) expect.push_back(i);
    }
    EXPECT_EQ(got, expect);
  }
}

TEST(Delaunay, TinyInputs) {
  EXPECT_TRUE(DelaunayTriangulation({}).triangles().empty());
  EXPECT_TRUE(DelaunayTriangulation({{0, 0}}).triangles().empty());
  EXPECT_TRUE(DelaunayTriangulation({{0, 0}, {1, 1}}).triangles().empty());
  const DelaunayTriangulation tri({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(tri.triangles().size(), 1u);
  EXPECT_EQ(tri.edges().size(), 3u);
}

TEST(Delaunay, SquareHasTwoTriangles) {
  const DelaunayTriangulation dt({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(dt.triangles().size(), 2u);
  EXPECT_EQ(dt.edges().size(), 5u);
}

class DelaunayFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DelaunayFuzz, EmptyCircumcircleProperty) {
  const auto pts = randomPoints(120, static_cast<unsigned>(GetParam()) * 31 + 5);
  const DelaunayTriangulation dt(pts);
  // Euler-ish sanity: a triangulation of n points has <= 2n-5 triangles.
  EXPECT_LE(dt.triangles().size(), 2 * pts.size());
  EXPECT_GE(dt.triangles().size(), pts.size() / 2);

  for (const auto& t : dt.triangles()) {
    const geom::Vec2 a = pts[static_cast<std::size_t>(t.v[0])];
    const geom::Vec2 b = pts[static_cast<std::size_t>(t.v[1])];
    const geom::Vec2 c = pts[static_cast<std::size_t>(t.v[2])];
    const int o = geom::orient(a, b, c);
    ASSERT_NE(o, 0);
    for (int p = 0; p < static_cast<int>(pts.size()); ++p) {
      if (p == t.v[0] || p == t.v[1] || p == t.v[2]) continue;
      const int ic = geom::inCircle(a, b, c, pts[static_cast<std::size_t>(p)]);
      EXPECT_NE(o > 0 ? ic : -ic, 1)
          << "point " << p << " inside circumcircle of triangle " << t.v[0] << ","
          << t.v[1] << "," << t.v[2];
    }
  }
}

TEST_P(DelaunayFuzz, ContainsConvexHullEdges) {
  const auto pts = randomPoints(80, static_cast<unsigned>(GetParam()) * 13 + 2);
  const DelaunayTriangulation dt(pts);
  const auto hull = geom::convexHullIndices(pts);
  for (std::size_t i = 0; i < hull.size(); ++i) {
    EXPECT_TRUE(dt.hasEdge(hull[i], hull[(i + 1) % hull.size()]));
  }
}

TEST_P(DelaunayFuzz, GraphIsPlanarAndConnected) {
  const auto pts = randomPoints(100, static_cast<unsigned>(GetParam()) * 7 + 3);
  const auto g = DelaunayTriangulation(pts).toGraph();
  EXPECT_TRUE(g.isConnected());
  EXPECT_TRUE(g.isPlanarEmbedding());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayFuzz, ::testing::Range(0, 6));

TEST(Udg, EdgesAreExactlyThePairsWithinRadius) {
  const auto pts = randomPoints(200, 8, 15.0);
  const auto g = buildUnitDiskGraph(pts, 1.0);
  for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
    for (int j = i + 1; j < static_cast<int>(pts.size()); ++j) {
      const bool inRange = geom::dist(pts[static_cast<std::size_t>(i)],
                                      pts[static_cast<std::size_t>(j)]) <= 1.0;
      EXPECT_EQ(g.hasEdge(i, j), inRange) << i << " " << j;
    }
  }
}

TEST(Ldel, GabrielEdgesHaveEmptyDiametralCircles) {
  auto sc = scenario::makeScenario(scenario::paramsForNodeCount(500, 13));
  const auto ldel = buildLocalizedDelaunay(sc.points);
  for (const auto& [u, v] : ldel.gabrielEdges) {
    const geom::Vec2 pu = sc.points[static_cast<std::size_t>(u)];
    const geom::Vec2 pv = sc.points[static_cast<std::size_t>(v)];
    for (int w = 0; w < static_cast<int>(sc.points.size()); ++w) {
      if (w == u || w == v) continue;
      EXPECT_FALSE(geom::inDiametralCircle(pu, pv, sc.points[static_cast<std::size_t>(w)]))
          << "Gabriel edge " << u << "-" << v << " violated by " << w;
    }
  }
}

TEST(Ldel, SubgraphOfUdgAndSuperGraphOfGabriel) {
  auto sc = scenario::makeScenario(scenario::paramsForNodeCount(600, 14));
  const auto ldel = buildLocalizedDelaunay(sc.points);
  for (const auto& [u, v] : ldel.graph.edges()) {
    EXPECT_TRUE(ldel.udg.hasEdge(u, v));
    EXPECT_LE(ldel.graph.edgeLength(u, v), 1.0 + 1e-12);
  }
  for (const auto& [u, v] : ldel.gabrielEdges) {
    EXPECT_TRUE(ldel.graph.hasEdge(u, v));
  }
}

TEST(Ldel, TrianglesSatisfyLocalEmptiness) {
  auto sc = scenario::makeScenario(scenario::paramsForNodeCount(400, 15));
  const auto ldel = buildLocalizedDelaunay(sc.points);
  ASSERT_FALSE(ldel.triangles.empty());
  // Spot check a sample of triangles against the k-hop emptiness rule.
  std::mt19937 rng(2);
  std::uniform_int_distribution<std::size_t> pick(0, ldel.triangles.size() - 1);
  for (int it = 0; it < 40; ++it) {
    const auto& t = ldel.triangles[pick(rng)];
    const geom::Vec2 a = sc.points[static_cast<std::size_t>(t[0])];
    const geom::Vec2 b = sc.points[static_cast<std::size_t>(t[1])];
    const geom::Vec2 c = sc.points[static_cast<std::size_t>(t[2])];
    const int o = geom::orient(a, b, c);
    for (const int base : {t[0], t[1], t[2]}) {
      for (int x : graph::kHopNeighborhood(ldel.udg, base, 2)) {
        if (x == t[0] || x == t[1] || x == t[2]) continue;
        const int ic = geom::inCircle(a, b, c, sc.points[static_cast<std::size_t>(x)]);
        EXPECT_NE(o > 0 ? ic : -ic, 1);
      }
    }
  }
}

TEST(Ldel, PlanarConnectedSpanner) {
  auto sc = scenario::makeScenario(scenario::paramsForNodeCount(800, 16));
  const auto ldel = buildLocalizedDelaunay(sc.points);
  EXPECT_EQ(ldel.removedCrossings, 0);
  EXPECT_TRUE(ldel.graph.isPlanarEmbedding());
  EXPECT_TRUE(ldel.graph.isConnected());

  // Empirical spanner check vs the UDG (Thm 2.9 bound is 1.998).
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  for (int it = 0; it < 40; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    if (s == t) continue;
    const double du = graph::shortestPathLength(ldel.udg, s, t);
    const double dl = graph::shortestPathLength(ldel.graph, s, t);
    EXPECT_LE(dl, 1.998 * du + 1e-9);
  }
}

TEST(Ldel, HigherKRemovesMoreTriangles) {
  auto sc = scenario::makeScenario(scenario::paramsForNodeCount(300, 17));
  LDelOptions k1;
  k1.k = 1;
  LDelOptions k2;
  k2.k = 2;
  LDelOptions k3;
  k3.k = 3;
  const auto l1 = buildLocalizedDelaunay(sc.points, k1);
  const auto l2 = buildLocalizedDelaunay(sc.points, k2);
  const auto l3 = buildLocalizedDelaunay(sc.points, k3);
  EXPECT_GE(l1.triangles.size(), l2.triangles.size());
  EXPECT_GE(l2.triangles.size(), l3.triangles.size());
  // LDel^2 edges are a superset of LDel^3 edges.
  for (const auto& [u, v] : l3.graph.edges()) {
    EXPECT_TRUE(l2.graph.hasEdge(u, v) || l2.removedCrossings > 0);
  }
}

}  // namespace
}  // namespace hybrid::delaunay
