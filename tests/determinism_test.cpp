#include <gtest/gtest.h>

#include <vector>

#include "core/hybrid_network.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

// The parallel LDel construction merges per-chunk results in chunk order
// (util::parallelChunks), so a multi-threaded build must be bit-identical
// to the single-threaded one — and with it everything derived downstream:
// hole rings, outer boundary, and the complete hole abstractions.
TEST(Determinism, ThreadedPipelineMatchesSingleThreaded) {
  for (unsigned seed : {11u, 12u, 13u}) {
    scenario::ScenarioParams p;
    p.width = p.height = 18.0;
    p.seed = seed;
    p.obstacles.push_back(scenario::regularPolygonObstacle({6, 6}, 2.0, 5));
    p.obstacles.push_back(scenario::regularPolygonObstacle({12, 12}, 2.2, 7));
    const auto sc = scenario::makeScenario(p);
    ASSERT_GE(sc.points.size(), 256u);  // large enough for the threaded path

    delaunay::LDelOptions serial;
    serial.threads = 1;
    delaunay::LDelOptions threaded;
    threaded.threads = 4;
    const core::HybridNetwork a(sc.points, serial);
    const core::HybridNetwork b(sc.points, threaded);

    EXPECT_EQ(a.ldel().edges(), b.ldel().edges()) << "seed " << seed;
    EXPECT_EQ(a.ldelResult().triangles, b.ldelResult().triangles) << "seed " << seed;

    ASSERT_EQ(a.holes().holes.size(), b.holes().holes.size()) << "seed " << seed;
    for (std::size_t h = 0; h < a.holes().holes.size(); ++h) {
      EXPECT_EQ(a.holes().holes[h].ring, b.holes().holes[h].ring)
          << "seed " << seed << " hole " << h;
    }
    EXPECT_EQ(a.holes().outerBoundary, b.holes().outerBoundary) << "seed " << seed;

    ASSERT_EQ(a.abstractions().size(), b.abstractions().size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.abstractions().size(); ++i) {
      const auto& ha = a.abstractions()[i];
      const auto& hb = b.abstractions()[i];
      EXPECT_EQ(ha.hullNodes, hb.hullNodes) << "seed " << seed << " hole " << i;
      EXPECT_EQ(ha.locallyConvexHull, hb.locallyConvexHull)
          << "seed " << seed << " hole " << i;
      ASSERT_EQ(ha.bays.size(), hb.bays.size()) << "seed " << seed << " hole " << i;
      for (std::size_t bay = 0; bay < ha.bays.size(); ++bay) {
        EXPECT_EQ(ha.bays[bay].chain, hb.bays[bay].chain)
            << "seed " << seed << " hole " << i << " bay " << bay;
      }
    }
  }
}

}  // namespace
}  // namespace hybrid
