// Degenerate and tiny inputs across the whole stack: the library must not
// crash or misbehave on empty, singleton, collinear or minimal networks.

#include <gtest/gtest.h>

#include "core/hybrid_network.hpp"
#include "delaunay/triangulation.hpp"
#include "delaunay/udg.hpp"
#include "protocols/ring_pipeline.hpp"
#include "routing/overlay_graph.hpp"
#include "scenario/generator.hpp"

namespace hybrid {
namespace {

TEST(EdgeCases, EmptyAndSingletonNetworks) {
  core::HybridNetwork empty({});
  EXPECT_EQ(empty.holes().holes.size(), 0u);
  EXPECT_TRUE(empty.convexHullsDisjoint());

  core::HybridNetwork one({{0, 0}});
  EXPECT_EQ(one.udg().numNodes(), 1u);
  EXPECT_TRUE(one.route(0, 0).delivered);
}

TEST(EdgeCases, TwoNodes) {
  core::HybridNetwork net({{0, 0}, {0.5, 0}});
  const auto r = net.route(0, 1);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops(), 1u);
  EXPECT_DOUBLE_EQ(net.stretch(r, 0, 1), 1.0);
}

TEST(EdgeCases, CollinearChain) {
  // Violates the non-pathological assumption (3 on a line); the pipeline
  // must still route along the chain.
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 12; ++i) pts.push_back({i * 0.6, 0.0});
  core::HybridNetwork net(pts);
  const auto r = net.route(0, 11);
  ASSERT_TRUE(r.delivered);
  EXPECT_NEAR(net.stretch(r, 0, 11), 1.0, 1e-9);
}

TEST(EdgeCases, DisconnectedTargetsAreReportedNotCrashed) {
  core::HybridNetwork net({{0, 0}, {0.4, 0}, {10, 10}, {10.4, 10}});
  const auto r = net.route(0, 3);
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(std::isinf(net.stretch(r, 0, 3)));
}

TEST(EdgeCases, MinimalTriangleAndSquare) {
  core::HybridNetwork tri({{0, 0}, {0.6, 0}, {0.3, 0.5}});
  EXPECT_TRUE(tri.route(0, 2).delivered);
  EXPECT_TRUE(tri.ldel().isPlanarEmbedding());

  core::HybridNetwork sq({{0, 0}, {0.6, 0}, {0.6, 0.6}, {0, 0.6}});
  EXPECT_TRUE(sq.route(0, 2).delivered);
}

TEST(EdgeCases, DegenerateDelaunayInputs) {
  // All points on one line: no triangles, but no crash.
  const delaunay::DelaunayTriangulation flat({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  EXPECT_TRUE(flat.triangles().empty() || flat.toGraph().isPlanarEmbedding());
}

TEST(EdgeCases, OverlayGraphWithoutSites) {
  // A hole-free network: the overlay has no sites; waypoint queries still
  // answer (empty list when endpoints see each other, which they do).
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(120, 96));
  core::HybridNetwork net(sc.points);
  const auto& overlay = net.router().overlay();
  const auto route = overlay.waypointsWithDistance({1.0, 1.0}, {3.0, 3.0});
  ASSERT_TRUE(route.reachable);
  EXPECT_TRUE(route.waypoints.empty());
  EXPECT_NEAR(route.distance, geom::dist({1, 1}, {3, 3}), 1e-9);
}

TEST(EdgeCases, RingPipelineIgnoresTinyRings) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(120, 97));
  const auto udg = delaunay::buildUnitDiskGraph(sc.points, 1.0);
  sim::Simulator s(udg);
  protocols::RingPipeline pipeline(s, {{{1, 2}, {}, {3}}});
  const auto results = pipeline.run();
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_EQ(r.leader, -1);  // nothing to elect
}

TEST(EdgeCases, RouteBetweenIdenticalPositionsForbidden) {
  // Duplicate positions are a documented precondition violation for the
  // Delaunay substrate; the generator never produces them. Verify the
  // generator's dedup path on a crafted near-duplicate set instead.
  std::vector<geom::Vec2> pts{{0, 0}, {0.3, 0}, {0.3, 1e-12}, {0.6, 0}};
  core::HybridNetwork net(pts);  // distinct doubles: fine
  EXPECT_TRUE(net.route(0, 3).delivered);
}

}  // namespace
}  // namespace hybrid
