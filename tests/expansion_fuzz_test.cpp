// Algebraic property fuzzing of the expansion arithmetic: exactness means
// the usual ring axioms hold *exactly*, not approximately.

#include <gtest/gtest.h>

#include <random>

#include "geom/expansion.hpp"
#include "testkit/rng.hpp"

namespace hybrid::geom {
namespace {

Expansion randomExpansion(std::mt19937& rng) {
  std::uniform_real_distribution<double> mag(-1e6, 1e6);
  std::uniform_real_distribution<double> tiny(-1e-10, 1e-10);
  Expansion e = Expansion::twoSum(mag(rng), tiny(rng));
  if (rng() % 2 == 0) e = e + Expansion::twoProduct(mag(rng), tiny(rng));
  return e;
}

class ExpansionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExpansionFuzz, RingAxiomsHoldExactly) {
  auto rng = testkit::loggedRng("expansion-ring-axioms",
                                static_cast<unsigned>(GetParam()) * 71 + 9);
  for (int it = 0; it < 200; ++it) {
    const Expansion a = randomExpansion(rng);
    const Expansion b = randomExpansion(rng);
    const Expansion c = randomExpansion(rng);

    // Commutativity and associativity of addition.
    EXPECT_EQ(((a + b) - (b + a)).sign(), 0);
    EXPECT_EQ((((a + b) + c) - (a + (b + c))).sign(), 0);
    // Additive inverse.
    EXPECT_EQ((a - a).sign(), 0);
    EXPECT_EQ(((a + b) - b - a).sign(), 0);
    // Multiplication commutes and distributes.
    EXPECT_EQ(((a * b) - (b * a)).sign(), 0);
    EXPECT_EQ(((a * (b + c)) - (a * b + a * c)).sign(), 0);
    // Scaling is multiplication by a one-term expansion.
    const double s = 3.7;
    EXPECT_EQ((a.scale(s) - a * Expansion(s)).sign(), 0);
    // Sign is consistent with the estimate when the estimate is decisive.
    const double est = a.estimate();
    if (std::abs(est) > 1e-3) EXPECT_EQ(a.sign(), est > 0 ? 1 : -1);
  }
}

TEST_P(ExpansionFuzz, CompressionPreservesValue) {
  auto rng = testkit::loggedRng("expansion-compression",
                                static_cast<unsigned>(GetParam()) * 31 + 5);
  for (int it = 0; it < 200; ++it) {
    const Expansion a = randomExpansion(rng);
    EXPECT_EQ((a - a.compressed()).sign(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionFuzz, ::testing::Range(0, 5));

}  // namespace
}  // namespace hybrid::geom
