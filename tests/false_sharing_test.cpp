// Micro-tests for the false-sharing and granularity fixes behind the
// parallel hot paths: per-thread workspaces live on distinct cache lines,
// a sharded simulator run keeps its outbox slabs thread-private, and the
// work-stealing chunk plan never degenerates into empty or single-item
// chunks for reasonably sized batches.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "delaunay/udg.hpp"
#include "graph/dijkstra_workspace.hpp"
#include "routing/overlay_graph.hpp"
#include "sim/simulator.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace hybrid {
namespace {

static_assert(alignof(graph::DijkstraWorkspace) >= 64,
              "per-thread Dijkstra workspaces must be cache-line-aligned");
static_assert(sizeof(graph::DijkstraWorkspace) % 64 == 0,
              "adjacent Dijkstra workspaces must not share a cache line");
static_assert(alignof(routing::OverlayQueryWorkspace) >= 64,
              "per-thread overlay workspaces must be cache-line-aligned");
static_assert(sizeof(routing::OverlayQueryWorkspace) % 64 == 0,
              "adjacent overlay workspaces must not share a cache line");

TEST(FalseSharing, AdjacentWorkspacesAreAtLeastOneCacheLineApart) {
  const std::vector<graph::DijkstraWorkspace> dws(4);
  for (std::size_t i = 1; i < dws.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&dws[i - 1]);
    const auto b = reinterpret_cast<std::uintptr_t>(&dws[i]);
    EXPECT_GE(b - a, 64u);
    EXPECT_EQ(a % 64, 0u);
  }
  const std::vector<routing::OverlayQueryWorkspace> ows(4);
  for (std::size_t i = 1; i < ows.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&ows[i - 1]);
    const auto b = reinterpret_cast<std::uintptr_t>(&ows[i]);
    EXPECT_GE(b - a, 64u);
    EXPECT_EQ(a % 64, 0u);
  }
}

graph::GeometricGraph gridGraph(int side) {
  std::vector<geom::Vec2> pts;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) pts.push_back({0.9 * x, 0.9 * y});
  }
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

class FloodProtocol : public sim::Protocol {
 public:
  void onStart(sim::Context& ctx) override {
    for (int nb : ctx.udgNeighbors()) {
      sim::Message m;
      m.type = 1;
      ctx.sendAdHoc(nb, std::move(m));
    }
  }
  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    (void)ctx;
    (void)m;
  }
};

TEST(FalseSharing, ShardedRunKeepsOutboxSlabsThreadPrivate) {
  const auto g = gridGraph(8);
  sim::Simulator sim(g);
  sim.setThreads(4);
  sim.setAllowOversubscribe(true);
  FloodProtocol proto;
  sim.run(proto, 50);
  ASSERT_EQ(sim.effectiveThreads(), 4);
  // Every send of the run was staged into the stepping worker's private
  // pool; the shared (serial-path) pool never admitted a message.
  EXPECT_EQ(sim.sharedPoolSlots(), 0u);
  ASSERT_EQ(sim.shardCount(), 4u);
  for (std::size_t s = 0; s < sim.shardCount(); ++s) {
    EXPECT_GT(sim.shardPoolSlots(s), 0u) << "shard " << s;
  }
}

TEST(ChunkPlan, CoversRangeContiguouslyWithoutEmptyChunks) {
  for (const std::size_t n : {1u, 2u, 7u, 16u, 63u, 64u, 1000u, 4096u}) {
    for (const unsigned threads : {1u, 2u, 3u, 4u, 8u}) {
      const util::ChunkPlan plan = util::planChunks(n, threads, 4);
      ASSERT_GE(plan.tasks, 1u);
      std::size_t covered = 0;
      for (unsigned t = 0; t < plan.tasks; ++t) {
        const std::size_t b = plan.begin(t);
        const std::size_t e = plan.end(t, n);
        ASSERT_EQ(b, covered) << "n=" << n << " threads=" << threads << " task " << t;
        ASSERT_LT(b, e) << "empty chunk: n=" << n << " threads=" << threads;
        covered = e;
      }
      ASSERT_EQ(covered, n) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ChunkPlan, NoSingleItemChunksForBatchesTwiceTheThreadCount) {
  for (const unsigned threads : {2u, 4u, 8u, 16u}) {
    for (std::size_t n = 2 * threads; n < 2 * threads + 40; ++n) {
      const util::ChunkPlan plan = util::planChunks(n, threads, 2);
      for (unsigned t = 0; t < plan.tasks; ++t) {
        ASSERT_GE(plan.end(t, n) - plan.begin(t), 2u)
            << "n=" << n << " threads=" << threads << " task " << t;
      }
    }
  }
}

TEST(ChunkPlan, AimsForRoughlyFourChunksPerThread) {
  const util::ChunkPlan plan = util::planChunks(100000, 8, 4);
  EXPECT_GE(plan.tasks, 8u * 3u);
  EXPECT_LE(plan.tasks, 8u * 4u);
}

TEST(ChunkPlan, MinPerChunkWinsOverChunkCount) {
  // 64 items at 8 threads with a 16-item floor: 4 chunks, not 32.
  const util::ChunkPlan plan = util::planChunks(64, 8, 16);
  EXPECT_EQ(plan.chunk, 16u);
  EXPECT_EQ(plan.tasks, 4u);
}

TEST(ThreadPoolParallelism, BoundedRunExecutesEveryTaskWithoutGrowingPool) {
  util::ThreadPool pool;
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  const std::function<void(unsigned)> fn = [&](unsigned t) {
    hits[t].fetch_add(1, std::memory_order_relaxed);
  };
  pool.run(64, 2, fn);
  for (unsigned t = 0; t < 64; ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
  // Parallelism 2 means the caller plus at most one worker.
  EXPECT_LE(pool.workerCount(), 1u);
}

}  // namespace
}  // namespace hybrid
