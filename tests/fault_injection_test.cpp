#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/hybrid_network.hpp"
#include "delaunay/udg.hpp"
#include "protocols/dominating_set_protocol.hpp"
#include "protocols/ldel_protocol.hpp"
#include "protocols/reliable.hpp"
#include "protocols/ring_pipeline.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace hybrid {
namespace {

// A line of n nodes spaced 0.9 apart: every node is a UDG neighbor of its
// direct predecessor/successor only.
graph::GeometricGraph lineGraph(int n) {
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({0.9 * i, 0.0});
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

// Node 0 floods a token over ad hoc edges; each node forwards it once.
class FloodProtocol : public sim::Protocol {
 public:
  static constexpr int kToken = 7;
  explicit FloodProtocol(std::size_t n) : has_(n, 0) {}

  void onStart(sim::Context& ctx) override {
    if (ctx.self() != 0) return;
    has_[0] = 1;
    forward(ctx);
  }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    if (m.type != kToken || has_[static_cast<std::size_t>(ctx.self())] != 0) return;
    has_[static_cast<std::size_t>(ctx.self())] = 1;
    forward(ctx);
  }

  int reached() const {
    return static_cast<int>(std::count(has_.begin(), has_.end(), 1));
  }
  bool complete() const { return reached() == static_cast<int>(has_.size()); }

 private:
  void forward(sim::Context& ctx) {
    for (int nb : ctx.udgNeighbors()) {
      sim::Message m;
      m.type = kToken;
      m.ints = {42};
      ctx.sendAdHoc(nb, std::move(m));
    }
  }

  std::vector<char> has_;
};

// ---------------------------------------------------------------------------
// FaultPlan unit behavior.
// ---------------------------------------------------------------------------

TEST(FaultPlan, InactiveByDefaultAndWithZeroRates) {
  EXPECT_FALSE(sim::FaultPlan().active());
  sim::FaultConfig zero;
  zero.seed = 123456;  // a seed alone causes no faults
  EXPECT_FALSE(sim::FaultPlan(zero).active());

  sim::FaultConfig cfg = zero;
  cfg.adHocDrop = 0.01;
  EXPECT_TRUE(sim::FaultPlan(cfg).active());
  cfg = zero;
  cfg.crashes.push_back({3, 1, 5});
  EXPECT_TRUE(sim::FaultPlan(cfg).active());
  cfg = zero;
  cfg.blackouts.push_back({2, 4});
  EXPECT_TRUE(sim::FaultPlan(cfg).active());
}

TEST(FaultPlan, DecisionsArePureFunctionsOfSeedRoundIndex) {
  sim::FaultConfig cfg;
  cfg.seed = 77;
  cfg.adHocDrop = 0.2;
  cfg.adHocDuplicate = 0.1;
  cfg.adHocDelay = 0.1;
  const sim::FaultPlan a(cfg), b(cfg);
  sim::Message m;
  m.link = sim::Link::AdHoc;
  int dropped = 0;
  for (int round = 1; round <= 50; ++round) {
    for (std::size_t i = 0; i < 40; ++i) {
      int da = 0, db = 0;
      const auto fa = a.decide(round, i, m, &da);
      // Querying out of order (b after a, twice) must not matter.
      const auto fb = b.decide(round, i, m, &db);
      EXPECT_EQ(fa, b.decide(round, i, m, &db));
      EXPECT_EQ(fa, fb);
      EXPECT_EQ(da, db);
      if (fa == sim::FaultAction::Drop) ++dropped;
      if (fa == sim::FaultAction::Delay) {
        EXPECT_GE(da, 1);
        EXPECT_LE(da, cfg.maxDelayRounds);
      }
    }
  }
  // 2000 samples at 20%: the empirical rate should be in the ballpark.
  EXPECT_GT(dropped, 2000 * 0.12);
  EXPECT_LT(dropped, 2000 * 0.30);
}

TEST(FaultPlan, CrashAndBlackoutIntervalsAreHalfOpen) {
  sim::FaultConfig cfg;
  cfg.crashes.push_back({5, 2, 4});
  cfg.blackouts.push_back({3, 6});
  const sim::FaultPlan p(cfg);
  EXPECT_FALSE(p.crashed(5, 1));
  EXPECT_TRUE(p.crashed(5, 2));
  EXPECT_TRUE(p.crashed(5, 3));
  EXPECT_FALSE(p.crashed(5, 4));
  EXPECT_FALSE(p.crashed(4, 3));
  EXPECT_FALSE(p.blackedOut(2));
  EXPECT_TRUE(p.blackedOut(3));
  EXPECT_TRUE(p.blackedOut(5));
  EXPECT_FALSE(p.blackedOut(6));
}

// ---------------------------------------------------------------------------
// Simulator integration: trace determinism.
// ---------------------------------------------------------------------------

TEST(FaultTrace, ZeroRatePlanIsBitIdenticalToNoPlan) {
  const auto udg = lineGraph(12);

  sim::Simulator plain(udg);
  plain.enableTrace();
  FloodProtocol f1(udg.numNodes());
  plain.run(f1);

  sim::FaultConfig zero;
  zero.seed = 99;  // seed set, all rates zero: must not perturb anything
  sim::Simulator seeded(udg, sim::FaultPlan(zero));
  seeded.enableTrace();
  FloodProtocol f2(udg.numNodes());
  seeded.run(f2);

  EXPECT_TRUE(f1.complete());
  EXPECT_TRUE(f2.complete());
  EXPECT_FALSE(plain.trace().empty());
  EXPECT_EQ(plain.trace(), seeded.trace());
}

sim::FaultConfig lossyConfig(std::uint64_t seed) {
  sim::FaultConfig cfg;
  cfg.seed = seed;
  cfg.adHocDrop = 0.2;
  cfg.adHocDuplicate = 0.1;
  cfg.adHocDelay = 0.1;
  return cfg;
}

std::string tracedReliableFlood(const graph::GeometricGraph& udg, std::uint64_t seed) {
  sim::Simulator s(udg, sim::FaultPlan(lossyConfig(seed)));
  s.enableTrace();
  FloodProtocol flood(udg.numNodes());
  protocols::ReliableProtocol reliable(s, flood, {});
  s.run(reliable);
  EXPECT_TRUE(flood.complete());
  return s.trace();
}

TEST(FaultTrace, SameSeedProducesByteIdenticalRuns) {
  const auto udg = lineGraph(16);
  const std::string t1 = tracedReliableFlood(udg, 4242);
  const std::string t2 = tracedReliableFlood(udg, 4242);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);  // byte-identical, including every fault event
}

TEST(FaultTrace, DifferentSeedsProduceDifferentSchedules) {
  const auto udg = lineGraph(16);
  EXPECT_NE(tracedReliableFlood(udg, 1), tracedReliableFlood(udg, 2));
}

// ---------------------------------------------------------------------------
// Simulator integration: fault semantics and accounting.
// ---------------------------------------------------------------------------

TEST(FaultSemantics, CertainDropLosesEveryAdHocMessage) {
  const auto udg = lineGraph(8);
  sim::FaultConfig cfg;
  cfg.seed = 7;
  cfg.adHocDrop = 1.0;
  sim::Simulator s(udg, sim::FaultPlan(cfg));
  FloodProtocol flood(udg.numNodes());
  s.run(flood);
  EXPECT_EQ(flood.reached(), 1);  // only the origin has the token
  EXPECT_EQ(s.totalDropped(), s.totalMessages());
  EXPECT_GT(s.stats()[0].droppedAdHoc, 0);  // charged to the sender
}

TEST(FaultSemantics, DuplicateDeliversTwiceAndCounts) {
  const auto udg = lineGraph(2);
  sim::FaultConfig cfg;
  cfg.seed = 7;
  cfg.adHocDuplicate = 1.0;
  sim::Simulator s(udg, sim::FaultPlan(cfg));
  s.enableTrace();
  FloodProtocol flood(udg.numNodes());
  s.run(flood);
  EXPECT_TRUE(flood.complete());
  EXPECT_GT(s.stats()[0].duplicated, 0);
  // The duplicated token shows up as two deliveries of the same message.
  const auto& tr = s.trace();
  std::size_t deliveries = 0;
  for (std::size_t pos = 0; (pos = tr.find("RX 0>1", pos)) != std::string::npos; ++pos) {
    ++deliveries;
  }
  EXPECT_EQ(deliveries, 2u);
}

TEST(FaultSemantics, DelayDefersButEventuallyDelivers) {
  const auto udg = lineGraph(6);
  sim::FaultConfig cfg;
  cfg.seed = 11;
  cfg.adHocDelay = 1.0;  // every hop deferred 1..maxDelayRounds extra rounds
  cfg.maxDelayRounds = 3;
  sim::Simulator s(udg, sim::FaultPlan(cfg));
  FloodProtocol flood(udg.numNodes());
  const int rounds = s.run(flood);
  EXPECT_TRUE(flood.complete());  // delay is lossless
  EXPECT_GT(rounds, 5);           // a 5-hop line takes 5 rounds fault-free
  long delayed = 0;
  for (const auto& st : s.stats()) delayed += st.delayed;
  EXPECT_GE(delayed, 5);
}

TEST(FaultSemantics, CrashedReceiverLosesMessagesUntilRecovery) {
  const auto udg = lineGraph(3);
  sim::FaultConfig cfg;
  cfg.crashes.push_back({1, 0, 4});  // node 1 down for rounds 0..3
  sim::Simulator s(udg, sim::FaultPlan(cfg));
  FloodProtocol flood(udg.numNodes());
  s.run(flood);
  // The token died at the crashed relay and nothing retries.
  EXPECT_EQ(flood.reached(), 1);
  EXPECT_GT(s.stats()[0].droppedAdHoc, 0);

  // The same topology with the reliable transport: retransmissions outlive
  // the crash window and the flood completes after recovery.
  sim::Simulator s2(udg, sim::FaultPlan(cfg));
  FloodProtocol flood2(udg.numNodes());
  protocols::ReliableProtocol reliable(s2, flood2, {});
  const int rounds = s2.run(reliable);
  EXPECT_TRUE(flood2.complete());
  EXPECT_GE(rounds, 4);  // cannot finish before the crash interval ends
  EXPECT_GT(reliable.stats().retransmissions, 0);
}

namespace longrange {

// Node 0 pushes one long-range token to node 1 per round, `total` times.
class Pusher : public sim::Protocol {
 public:
  explicit Pusher(int total) : total_(total) {}
  void onStart(sim::Context& ctx) override {
    if (ctx.self() == 0) send(ctx);
  }
  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    if (ctx.self() == 1 && m.type == 9) ++received_;
  }
  void onRoundEnd(sim::Context& ctx) override {
    if (ctx.self() == 0 && sent_ < total_) send(ctx);
  }
  bool wantsMoreRounds() const override { return sent_ < total_; }
  int received() const { return received_; }

 private:
  void send(sim::Context& ctx) {
    sim::Message m;
    m.type = 9;
    ctx.sendLongRange(1, std::move(m));
    ++sent_;
  }
  int total_;
  int sent_ = 0;
  int received_ = 0;
};

}  // namespace longrange

TEST(FaultSemantics, BlackoutDropsLongRangeOnly) {
  const auto udg = lineGraph(2);
  sim::FaultConfig cfg;
  cfg.blackouts.push_back({2, 4});  // deliveries due in rounds 2 and 3 are lost
  sim::Simulator s(udg, sim::FaultPlan(cfg));
  longrange::Pusher p(6);  // deliveries due rounds 1..6
  s.run(p);
  EXPECT_EQ(p.received(), 4);
  EXPECT_EQ(s.stats()[0].droppedLongRange, 2);
  EXPECT_EQ(s.stats()[0].droppedAdHoc, 0);
}

TEST(RoundBudget, OverrunIsReportedNotEnforced) {
  const auto udg = lineGraph(10);
  sim::Simulator s(udg);
  s.setRoundBudget(4);
  FloodProtocol flood(udg.numNodes());
  const int rounds = s.run(flood);  // a 9-hop line needs 9 rounds
  EXPECT_TRUE(flood.complete());    // the budget never stops the run
  const auto& rep = s.budgetReport();
  EXPECT_EQ(rep.budget, 4);
  EXPECT_EQ(rep.roundsUsed, rounds);
  EXPECT_TRUE(rep.overrun);
  EXPECT_EQ(rep.overrunRounds(), rounds - 4);

  s.setRoundBudget(100);
  FloodProtocol again(udg.numNodes());
  s.run(again);
  EXPECT_FALSE(s.budgetReport().overrun);
  EXPECT_EQ(s.budgetReport().overrunRounds(), 0);
}

// ---------------------------------------------------------------------------
// Reliable transport.
// ---------------------------------------------------------------------------

TEST(ReliableTransport, NoFaultsMeansNoRetransmissions) {
  const auto udg = lineGraph(10);
  sim::Simulator s(udg);
  FloodProtocol flood(udg.numNodes());
  protocols::ReliableProtocol reliable(s, flood, {});
  s.run(reliable);
  EXPECT_TRUE(flood.complete());
  EXPECT_EQ(reliable.stats().retransmissions, 0);
  EXPECT_EQ(reliable.stats().abandoned, 0);
  EXPECT_GT(reliable.stats().acks, 0);
}

TEST(ReliableTransport, FloodSurvivesHeavyCombinedFaults) {
  const auto udg = lineGraph(30);
  sim::FaultConfig cfg;
  cfg.seed = 2024;
  cfg.adHocDrop = 0.3;
  cfg.adHocDuplicate = 0.1;
  cfg.adHocDelay = 0.1;
  sim::Simulator s(udg, sim::FaultPlan(cfg));
  FloodProtocol flood(udg.numNodes());
  protocols::ReliableProtocol reliable(s, flood, {});
  s.run(reliable);
  EXPECT_TRUE(flood.complete());
  EXPECT_GT(reliable.stats().retransmissions, 0);
  EXPECT_GT(reliable.stats().duplicatesSuppressed, 0);
}

// ---------------------------------------------------------------------------
// End-to-end: the preprocessing protocols under loss produce the exact
// fault-free outputs (the ISSUE's acceptance sweep).
// ---------------------------------------------------------------------------

TEST(LdelUnderLoss, RetryingConstructionMatchesFaultFreeOnRandomInstances) {
  const double lossRates[] = {0.02, 0.05, 0.10};
  const protocols::RetryPolicy retry;
  int instances = 0;
  for (unsigned seed = 1; seed <= 20; ++seed) {
    const auto params = scenario::paramsForNodeCount(300, 9000 + seed);
    const auto sc = scenario::makeScenario(params);
    ASSERT_GE(sc.points.size(), 256u) << "seed " << seed;
    core::HybridNetwork net(sc.points);

    sim::Simulator clean(net.udg());
    const auto reference = protocols::runLdelConstruction(clean, net.radius());
    ASSERT_EQ(reference.rounds, 3);
    auto refEdges = reference.graph.edges();
    std::sort(refEdges.begin(), refEdges.end());

    for (const double loss : lossRates) {
      sim::FaultConfig cfg;
      cfg.seed = 100 * seed + static_cast<std::uint64_t>(loss * 1000);
      cfg.adHocDrop = loss;
      sim::Simulator s(net.udg(), sim::FaultPlan(cfg));
      const auto dist = protocols::runLdelConstruction(s, net.radius(), &retry);

      auto edges = dist.graph.edges();
      std::sort(edges.begin(), edges.end());
      EXPECT_EQ(edges, refEdges) << "seed " << seed << " loss " << loss;
      EXPECT_EQ(dist.isBoundary, reference.isBoundary)
          << "seed " << seed << " loss " << loss;
      EXPECT_GE(dist.rounds, 3);
      if (loss > 0.0) EXPECT_GT(dist.retransmissions, 0);
      ++instances;
    }
  }
  EXPECT_EQ(instances, 60);
}

TEST(RingPipelineUnderLoss, ResultsMatchFaultFreeRun) {
  scenario::ScenarioParams p;
  p.width = p.height = 16.0;
  p.seed = 5;
  p.obstacles.push_back(scenario::regularPolygonObstacle({8, 8}, 2.5, 6));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);

  protocols::RingInputs rings;
  for (const auto& h : net.holes().holes) rings.rings.push_back(h.ring);
  if (net.holes().outerBoundary.size() >= 3) {
    rings.rings.push_back(net.holes().outerBoundary);
  }
  ASSERT_FALSE(rings.rings.empty());

  sim::Simulator clean(net.udg());
  protocols::RingPipeline reference(clean, rings);
  const auto refResults = reference.run();

  sim::FaultConfig cfg;
  cfg.seed = 31337;
  cfg.adHocDrop = 0.05;
  cfg.longRangeDrop = 0.05;
  const protocols::RetryPolicy retry;
  sim::Simulator s(net.udg(), sim::FaultPlan(cfg));
  protocols::RingPipeline faulty(s, rings, &retry);
  const auto results = faulty.run();

  ASSERT_EQ(results.size(), refResults.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].leader, refResults[i].leader) << "ring " << i;
    EXPECT_EQ(results[i].size, refResults[i].size) << "ring " << i;
    // The turning angle is a float sum whose addition order may differ.
    EXPECT_NEAR(results[i].turningAngle, refResults[i].turningAngle, 1e-9);
    // The hull is order-canonical but compare as sets to be safe.
    const std::set<int> a(results[i].hull.begin(), results[i].hull.end());
    const std::set<int> b(refResults[i].hull.begin(), refResults[i].hull.end());
    EXPECT_EQ(a, b) << "ring " << i;
  }
  EXPECT_GT(faulty.reliableStats().retransmissions, 0);
}

TEST(DominatingSetUnderLoss, ResultStaysAValidDominatingSet) {
  const int n = 40;
  const auto udg = lineGraph(n);
  std::vector<int> chain(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) chain[static_cast<std::size_t>(i)] = i;

  sim::FaultConfig cfg;
  cfg.seed = 555;
  cfg.longRangeDrop = 0.05;  // the DS protocol talks over long-range links
  const protocols::RetryPolicy retry;
  sim::Simulator s(udg, sim::FaultPlan(cfg));
  protocols::DominatingSetProtocol ds(s, {chain}, 1, &retry);
  const int rounds = ds.run();
  EXPECT_LT(rounds, 1 << 16);

  const auto& set = ds.dominatingSet(0);
  std::vector<char> covered(static_cast<std::size_t>(n), 0);
  for (int v : set) {
    covered[static_cast<std::size_t>(v)] = 1;
    if (v > 0) covered[static_cast<std::size_t>(v - 1)] = 1;
    if (v + 1 < n) covered[static_cast<std::size_t>(v + 1)] = 1;
  }
  for (int v = 0; v < n; ++v) EXPECT_TRUE(covered[static_cast<std::size_t>(v)]) << v;
  // O(1)-approximation sanity: optimum on a path is ceil(n/3).
  EXPECT_LE(static_cast<int>(set.size()), n);
  EXPECT_GE(static_cast<int>(set.size()), (n + 2) / 3);
}

}  // namespace
}  // namespace hybrid
