#include <gtest/gtest.h>

#include <numbers>
#include <random>

#include "geom/angle.hpp"
#include "geom/bbox.hpp"
#include "geom/circle.hpp"
#include "geom/visibility.hpp"

namespace hybrid::geom {
namespace {

TEST(Circle, Circumcircle) {
  const auto c = circumcircle({0, 0}, {2, 0}, {1, 1});
  ASSERT_TRUE(c.has_value());
  EXPECT_NEAR(c->center.x, 1.0, 1e-12);
  EXPECT_NEAR(c->center.y, 0.0, 1e-12);
  EXPECT_NEAR(c->radius, 1.0, 1e-12);
  EXPECT_FALSE(circumcircle({0, 0}, {1, 1}, {2, 2}).has_value());  // collinear
}

TEST(Circle, CircumcircleEquidistance) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-50.0, 50.0);
  for (int it = 0; it < 200; ++it) {
    const Vec2 a{d(rng), d(rng)}, b{d(rng), d(rng)}, c{d(rng), d(rng)};
    const auto cc = circumcenter(a, b, c);
    if (!cc) continue;
    const double ra = dist(*cc, a);
    EXPECT_NEAR(dist(*cc, b), ra, 1e-6 * (1.0 + ra));
    EXPECT_NEAR(dist(*cc, c), ra, 1e-6 * (1.0 + ra));
  }
}

class MecFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MecFuzz, SmallestEnclosingCircleIsValidAndTight) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 100);
  std::uniform_real_distribution<double> d(-20.0, 20.0);
  std::vector<Vec2> pts(40);
  for (auto& p : pts) p = {d(rng), d(rng)};
  const Circle c = smallestEnclosingCircle(pts);
  // Contains everything.
  for (const auto& p : pts) EXPECT_LE(dist(p, c.center), c.radius + 1e-7);
  // Tight: at least two points near the boundary (a smaller circle exists
  // otherwise).
  int onBoundary = 0;
  for (const auto& p : pts) {
    if (dist(p, c.center) > c.radius - 1e-6) ++onBoundary;
  }
  EXPECT_GE(onBoundary, 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MecFuzz, ::testing::Range(0, 8));

TEST(Angle, SignedTurn) {
  EXPECT_NEAR(signedTurnAngle({0, 0}, {1, 0}, {2, 0}), 0.0, 1e-12);
  EXPECT_NEAR(signedTurnAngle({0, 0}, {1, 0}, {1, 1}), std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(signedTurnAngle({0, 0}, {1, 0}, {1, -1}), -std::numbers::pi / 2, 1e-12);
}

TEST(Angle, TurningSumDistinguishesOrientation) {
  const std::vector<Vec2> ccw{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_NEAR(turningSum(ccw), 2.0 * std::numbers::pi, 1e-9);
  const std::vector<Vec2> cw{{0, 0}, {0, 1}, {1, 1}, {1, 0}};
  EXPECT_NEAR(turningSum(cw), -2.0 * std::numbers::pi, 1e-9);
}

TEST(Angle, TurningSumOnNonConvexRing) {
  // L-shape, ccw: still exactly +2*pi (this is what the distributed hole
  // detection relies on, paper §5.4).
  const std::vector<Vec2> l{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}};
  EXPECT_NEAR(turningSum(l), 2.0 * std::numbers::pi, 1e-9);
}

TEST(Angle, CcwAngleRange) {
  EXPECT_NEAR(ccwAngle({1, 0}, {0, 0}, {0, 1}), std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(ccwAngle({0, 1}, {0, 0}, {1, 0}), 1.5 * std::numbers::pi, 1e-12);
}

TEST(BBox, ExpandAndQueries) {
  BBox b;
  EXPECT_TRUE(b.empty());
  b.expand({1, 2});
  b.expand({4, -1});
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.width(), 3.0);
  EXPECT_DOUBLE_EQ(b.height(), 3.0);
  EXPECT_DOUBLE_EQ(b.circumference(), 12.0);
  EXPECT_TRUE(b.contains({2, 0}));
  EXPECT_FALSE(b.contains({0, 0}));
  BBox other;
  other.expand({3.5, 1.5});
  other.expand({9, 9});
  EXPECT_TRUE(b.intersects(other));
}

TEST(Visibility, BlockedBySinglePolygon) {
  const VisibilityContext ctx({Polygon({{2, -1}, {3, -1}, {3, 1}, {2, 1}})});
  EXPECT_FALSE(ctx.visible({0, 0}, {5, 0}));
  EXPECT_EQ(ctx.blockingObstacle({0, 0}, {5, 0}), 0);
  EXPECT_TRUE(ctx.visible({0, 0}, {1, 0}));
  EXPECT_TRUE(ctx.visible({0, 2}, {5, 2}));  // passes above
}

TEST(Visibility, AdjacencySymmetric) {
  const VisibilityContext ctx({Polygon({{1, 1}, {2, 1}, {2, 2}, {1, 2}})});
  const std::vector<Vec2> sites{{0, 0}, {3, 3}, {0, 3}, {3, 0}};
  const auto adj = buildVisibilityAdjacency(sites, ctx);
  ASSERT_EQ(adj.size(), 4u);
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (int j : adj[i]) {
      const auto& back = adj[static_cast<std::size_t>(j)];
      EXPECT_NE(std::find(back.begin(), back.end(), static_cast<int>(i)), back.end());
    }
  }
  // Diagonal (0,0)-(3,3) passes through the square: not visible.
  EXPECT_EQ(std::find(adj[0].begin(), adj[0].end(), 1), adj[0].end());
  // (0,3)-(3,3) along the top is visible.
  EXPECT_NE(std::find(adj[2].begin(), adj[2].end(), 1), adj[2].end());
}

}  // namespace
}  // namespace hybrid::geom
