#include <gtest/gtest.h>

#include <random>

#include "geom/polygon.hpp"

namespace hybrid::geom {
namespace {

Polygon unitSquare() { return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}); }

Polygon lShape() {
  // Counter-clockwise L: a 2x2 square minus the top-right 1x1 quadrant.
  return Polygon({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
}

TEST(Polygon, AreaPerimeterOrientation) {
  const Polygon sq = unitSquare();
  EXPECT_DOUBLE_EQ(sq.area(), 1.0);
  EXPECT_DOUBLE_EQ(sq.perimeter(), 4.0);
  EXPECT_TRUE(sq.isCounterClockwise());
  EXPECT_TRUE(sq.isConvex());

  Polygon rev = sq;
  rev.reverse();
  EXPECT_FALSE(rev.isCounterClockwise());
  EXPECT_DOUBLE_EQ(rev.area(), 1.0);

  const Polygon l = lShape();
  EXPECT_DOUBLE_EQ(l.area(), 3.0);
  EXPECT_FALSE(l.isConvex());
}

TEST(Polygon, Centroid) {
  EXPECT_EQ(unitSquare().centroid(), (Vec2{0.5, 0.5}));
}

TEST(Polygon, Containment) {
  const Polygon l = lShape();
  EXPECT_TRUE(l.containsStrict({0.5, 0.5}));
  EXPECT_TRUE(l.containsStrict({0.5, 1.5}));
  EXPECT_FALSE(l.containsStrict({1.5, 1.5}));  // the notch
  EXPECT_FALSE(l.containsStrict({3.0, 0.5}));
  // Boundary: contained non-strictly.
  EXPECT_TRUE(l.contains({1.0, 1.5}));
  EXPECT_FALSE(l.containsStrict({1.0, 1.5}));
  EXPECT_TRUE(l.onBoundary({1.0, 1.5}));
  EXPECT_TRUE(l.onBoundary({0.0, 0.0}));  // vertex
}

TEST(Polygon, SegmentInteriorIntersection) {
  const Polygon sq = unitSquare();
  // Clean crossing.
  EXPECT_TRUE(sq.segmentIntersectsInterior({{-1, 0.5}, {2, 0.5}}));
  // Fully inside.
  EXPECT_TRUE(sq.segmentIntersectsInterior({{0.2, 0.2}, {0.8, 0.8}}));
  // Fully outside.
  EXPECT_FALSE(sq.segmentIntersectsInterior({{-1, -1}, {-2, 5}}));
  // Sliding along an edge: boundary only, no interior.
  EXPECT_FALSE(sq.segmentIntersectsInterior({{-1, 0}, {2, 0}}));
  // Grazing a vertex from outside.
  EXPECT_FALSE(sq.segmentIntersectsInterior({{-1, 1}, {1, 3}}));
  // Through two vertices diagonally: passes through the interior.
  EXPECT_TRUE(sq.segmentIntersectsInterior({{-1, -1}, {2, 2}}));
  // Endpoint on the boundary, rest outside.
  EXPECT_FALSE(sq.segmentIntersectsInterior({{1, 0.5}, {3, 0.5}}));
  // Endpoint on the boundary, rest inside.
  EXPECT_TRUE(sq.segmentIntersectsInterior({{1, 0.5}, {0.5, 0.5}}));
}

TEST(Polygon, SegmentThroughNotchOfLShape) {
  const Polygon l = lShape();
  // Passes through the notch only: no interior contact.
  EXPECT_FALSE(l.segmentIntersectsInterior({{1.2, 2.5}, {2.5, 1.2}}));
  // Crosses the vertical leg.
  EXPECT_TRUE(l.segmentIntersectsInterior({{-0.5, 1.5}, {1.5, 1.5}}));
}

TEST(ConvexHull, BasicShapes) {
  const auto hull = convexHull({{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}, {0.5, 0.5}});
  EXPECT_EQ(hull.size(), 4u);
  const Polygon hp(hull);
  EXPECT_TRUE(hp.isConvex());
  EXPECT_TRUE(hp.isCounterClockwise());
}

TEST(ConvexHull, CollinearPointsDropped) {
  const auto hull = convexHull({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {3, 1}});
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHull, DegenerateInputs) {
  EXPECT_TRUE(convexHull({}).empty());
  EXPECT_EQ(convexHull({{1, 1}}).size(), 1u);
  EXPECT_EQ(convexHull({{1, 1}, {2, 2}}).size(), 2u);
  // All identical points collapse to one.
  EXPECT_EQ(convexHull({{1, 1}, {1, 1}, {1, 1}}).size(), 1u);
  // All collinear: two endpoints.
  EXPECT_EQ(convexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).size(), 2u);
}

TEST(ConvexHull, IndicesMatchPositions) {
  const std::vector<Vec2> pts{{0, 0}, {5, 1}, {2, 8}, {3, 3}, {1, 1}};
  const auto idx = convexHullIndices(pts);
  const auto pos = convexHull(pts);
  ASSERT_EQ(idx.size(), pos.size());
  std::vector<Vec2> fromIdx;
  for (int i : idx) fromIdx.push_back(pts[static_cast<std::size_t>(i)]);
  // Same cyclic sequence (both ccw); align the starting point.
  const auto it = std::find(fromIdx.begin(), fromIdx.end(), pos[0]);
  ASSERT_NE(it, fromIdx.end());
  std::rotate(fromIdx.begin(), it, fromIdx.end());
  EXPECT_EQ(fromIdx, pos);
}

TEST(ConvexHull, MergeEqualsHullOfUnion) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> d(-5.0, 5.0);
  for (int it = 0; it < 50; ++it) {
    std::vector<Vec2> a(10);
    std::vector<Vec2> b(10);
    for (auto& p : a) p = {d(rng), d(rng)};
    for (auto& p : b) p = {d(rng) + 7.0, d(rng)};
    std::vector<Vec2> uni = a;
    uni.insert(uni.end(), b.begin(), b.end());
    EXPECT_EQ(mergeConvexHulls(convexHull(a), convexHull(b)), convexHull(uni));
  }
}

// Property: every input point is inside (or on) the hull, and the hull is
// convex and ccw.
class HullFuzz : public ::testing::TestWithParam<int> {};

TEST_P(HullFuzz, HullContainsAllPoints) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 17 + 1);
  std::uniform_real_distribution<double> d(-100.0, 100.0);
  std::vector<Vec2> pts(60);
  for (auto& p : pts) p = {d(rng), d(rng)};
  const Polygon hull(convexHull(pts));
  ASSERT_GE(hull.size(), 3u);
  EXPECT_TRUE(hull.isConvex());
  EXPECT_TRUE(hull.isCounterClockwise());
  for (const auto& p : pts) EXPECT_TRUE(hull.contains(p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HullFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace hybrid::geom
