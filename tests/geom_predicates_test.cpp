#include <gtest/gtest.h>

#include <random>

#include "geom/expansion.hpp"
#include "geom/predicates.hpp"

namespace hybrid::geom {
namespace {

TEST(Expansion, TwoSumIsExact) {
  const Expansion e = Expansion::twoSum(1.0, 1e-30);
  EXPECT_EQ(e.sign(), 1);
  EXPECT_DOUBLE_EQ(e.estimate(), 1.0);
  // The low component carries what the double sum lost.
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e.components()[0], 1e-30);
}

TEST(Expansion, TwoProductCapturesRoundoff) {
  const double a = 1.0 + 1e-8;
  const Expansion e = Expansion::twoProduct(a, a);
  // a*a is not representable; the expansion must carry a correction term.
  EXPECT_EQ(e.sign(), 1);
  const Expansion diff = e - Expansion::twoProduct(a, a);
  EXPECT_EQ(diff.sign(), 0);
}

TEST(Expansion, SignOfTinyDifference) {
  // x*y - y*x == 0 exactly.
  const Expansion zero = exactDet2(3.1415, 2.7182, 3.1415, 2.7182);
  EXPECT_EQ(zero.sign(), 0);

  const Expansion pos = exactDet2(1.0 + 1e-15, 1.0, 1.0, 1.0);
  EXPECT_EQ(pos.sign(), 1);
}

TEST(Expansion, ScaleAndMultiply) {
  const Expansion a = Expansion::twoSum(1e20, 1.0);
  const Expansion b = a.scale(3.0);
  const Expansion c = a + a + a;
  EXPECT_EQ((b - c).sign(), 0);

  const Expansion sq = a * a;
  // (1e20+1)^2 - (1e20+1)*1e20 = 1e20 + 1 = a, all exactly representable.
  const Expansion tail = sq - a.scale(1e20);
  EXPECT_EQ(tail.sign(), 1);
  EXPECT_EQ((tail - a).sign(), 0);
}

TEST(Orient, BasicOrientations) {
  const Vec2 a{0, 0}, b{1, 0};
  EXPECT_EQ(orient(a, b, {0.5, 1.0}), 1);
  EXPECT_EQ(orient(a, b, {0.5, -1.0}), -1);
  EXPECT_EQ(orient(a, b, {2.0, 0.0}), 0);
}

TEST(Orient, NearlyCollinearIsExact) {
  // Classic robustness test: points on a line with tiny perturbations in
  // the last ulp must be classified consistently.
  const Vec2 a{0.5, 0.5};
  const Vec2 b{12.0, 12.0};
  for (int i = -2; i <= 2; ++i) {
    double cy = 24.0;
    for (int s = 0; s < std::abs(i); ++s) {
      cy = std::nextafter(cy, i > 0 ? 1e30 : -1e30);
    }
    const Vec2 c{24.0, cy};
    const int o = orient(a, b, c);
    EXPECT_EQ(o, i == 0 ? 0 : (i > 0 ? 1 : -1)) << "i=" << i;
  }
}

TEST(Orient, AntisymmetryFuzz) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> d(-100.0, 100.0);
  for (int it = 0; it < 2000; ++it) {
    const Vec2 a{d(rng), d(rng)}, b{d(rng), d(rng)}, c{d(rng), d(rng)};
    EXPECT_EQ(orient(a, b, c), -orient(b, a, c));
    EXPECT_EQ(orient(a, b, c), orient(b, c, a));
  }
}

TEST(InCircle, UnitCircleBasics) {
  const Vec2 a{1, 0}, b{0, 1}, c{-1, 0};  // ccw on the unit circle
  EXPECT_EQ(inCircle(a, b, c, {0.0, 0.0}), 1);
  EXPECT_EQ(inCircle(a, b, c, {2.0, 0.0}), -1);
  EXPECT_EQ(inCircle(a, b, c, {0.0, -1.0}), 0);  // cocircular
}

TEST(InCircle, OrientationFlipsSign) {
  const Vec2 a{1, 0}, b{0, 1}, c{-1, 0};
  const Vec2 inside{0.1, 0.2};
  EXPECT_EQ(inCircle(a, b, c, inside), 1);
  EXPECT_EQ(inCircle(c, b, a, inside), -1);
}

TEST(InCircle, NearCocircularIsExact) {
  // Perturb the query point by one ulp off the circle.
  const Vec2 a{1, 0}, b{0, 1}, c{-1, 0};
  const double ulp = std::nextafter(1.0, 2.0) - 1.0;
  EXPECT_EQ(inCircle(a, b, c, {0.0, -(1.0 - ulp)}), 1);
  EXPECT_EQ(inCircle(a, b, c, {0.0, -(1.0 + ulp)}), -1);
}

TEST(DiametralCircle, GabrielPredicate) {
  const Vec2 a{0, 0}, b{2, 0};
  EXPECT_TRUE(inDiametralCircle(a, b, {1.0, 0.5}));
  EXPECT_FALSE(inDiametralCircle(a, b, {1.0, 1.0}));   // on the circle
  EXPECT_FALSE(inDiametralCircle(a, b, {1.0, 1.01}));  // outside
  EXPECT_FALSE(inDiametralCircle(a, b, a));            // endpoint: on circle
}

TEST(OnSegment, EndpointsAndInterior) {
  const Vec2 a{0, 0}, b{4, 2};
  EXPECT_TRUE(onSegment(a, b, a));
  EXPECT_TRUE(onSegment(a, b, b));
  EXPECT_TRUE(onSegment(a, b, {2, 1}));
  EXPECT_FALSE(onSegment(a, b, {6, 3}));   // collinear but beyond
  EXPECT_FALSE(onSegment(a, b, {2, 1.1}));  // off the line
}

// Property sweep: the filtered predicate must agree with a high-precision
// long-double evaluation whenever the latter is decisively nonzero.
class OrientFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OrientFuzz, MatchesLongDoubleWhenDecisive) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> d(-1000.0, 1000.0);
  for (int it = 0; it < 500; ++it) {
    const Vec2 a{d(rng), d(rng)}, b{d(rng), d(rng)}, c{d(rng), d(rng)};
    const long double det = (static_cast<long double>(a.x) - c.x) *
                                (static_cast<long double>(b.y) - c.y) -
                            (static_cast<long double>(a.y) - c.y) *
                                (static_cast<long double>(b.x) - c.x);
    if (std::abs(static_cast<double>(det)) > 1e-6) {
      EXPECT_EQ(orient(a, b, c), det > 0 ? 1 : -1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrientFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace hybrid::geom
