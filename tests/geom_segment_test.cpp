#include <gtest/gtest.h>

#include <random>

#include "geom/segment.hpp"

namespace hybrid::geom {
namespace {

TEST(Segment, ProperCrossing) {
  const Segment a{{0, 0}, {2, 2}};
  const Segment b{{0, 2}, {2, 0}};
  EXPECT_TRUE(segmentsIntersect(a, b));
  EXPECT_TRUE(segmentsCrossProperly(a, b));
  EXPECT_TRUE(segmentsInteriorsIntersect(a, b));
  const auto ip = segmentIntersectionPoint(a, b);
  ASSERT_TRUE(ip.has_value());
  EXPECT_NEAR(ip->x, 1.0, 1e-12);
  EXPECT_NEAR(ip->y, 1.0, 1e-12);
}

TEST(Segment, TouchingAtEndpointIsNotProper) {
  const Segment a{{0, 0}, {1, 1}};
  const Segment b{{1, 1}, {2, 0}};
  EXPECT_TRUE(segmentsIntersect(a, b));
  EXPECT_FALSE(segmentsCrossProperly(a, b));
  EXPECT_FALSE(segmentsInteriorsIntersect(a, b));
}

TEST(Segment, EndpointInInteriorCounts) {
  const Segment a{{0, 0}, {2, 0}};
  const Segment b{{1, 0}, {1, 5}};  // b starts in a's interior
  EXPECT_TRUE(segmentsIntersect(a, b));
  EXPECT_FALSE(segmentsCrossProperly(a, b));
  EXPECT_TRUE(segmentsInteriorsIntersect(a, b));
}

TEST(Segment, CollinearOverlap) {
  const Segment a{{0, 0}, {3, 0}};
  const Segment b{{1, 0}, {5, 0}};
  EXPECT_TRUE(segmentsIntersect(a, b));
  EXPECT_FALSE(segmentsCrossProperly(a, b));
  EXPECT_TRUE(segmentsInteriorsIntersect(a, b));
  // Parallel: no unique intersection point.
  EXPECT_FALSE(segmentIntersectionPoint(a, b).has_value());
}

TEST(Segment, CollinearDisjoint) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{2, 0}, {3, 0}};
  EXPECT_FALSE(segmentsIntersect(a, b));
  EXPECT_FALSE(segmentsInteriorsIntersect(a, b));
}

TEST(Segment, IdenticalSegmentsOverlap) {
  const Segment a{{0, 1}, {2, 3}};
  EXPECT_TRUE(segmentsInteriorsIntersect(a, a));
}

TEST(Segment, FarApart) {
  const Segment a{{0, 0}, {1, 0}};
  const Segment b{{0, 5}, {1, 5}};
  EXPECT_FALSE(segmentsIntersect(a, b));
}

TEST(Segment, PointDistance) {
  const Segment s{{0, 0}, {4, 0}};
  EXPECT_DOUBLE_EQ(pointSegmentDistance({2, 3}, s), 3.0);
  EXPECT_DOUBLE_EQ(pointSegmentDistance({-3, 4}, s), 5.0);  // clamps to endpoint
  EXPECT_DOUBLE_EQ(pointSegmentDistance({2, 0}, s), 0.0);
  EXPECT_EQ(closestPointOnSegment({2, 3}, s), (Vec2{2, 0}));
  EXPECT_EQ(closestPointOnSegment({9, 9}, s), (Vec2{4, 0}));
}

TEST(Segment, DegenerateSegmentIsAPoint) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(pointSegmentDistance({4, 5}, s), 5.0);
  EXPECT_EQ(closestPointOnSegment({0, 0}, s), (Vec2{1, 1}));
}

// Property: segmentsIntersect is symmetric, and a proper crossing implies
// the intersection point lies on both segments.
class SegmentFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SegmentFuzz, SymmetryAndWitness) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> d(-10.0, 10.0);
  for (int it = 0; it < 400; ++it) {
    const Segment a{{d(rng), d(rng)}, {d(rng), d(rng)}};
    const Segment b{{d(rng), d(rng)}, {d(rng), d(rng)}};
    EXPECT_EQ(segmentsIntersect(a, b), segmentsIntersect(b, a));
    EXPECT_EQ(segmentsCrossProperly(a, b), segmentsCrossProperly(b, a));
    if (segmentsCrossProperly(a, b)) {
      const auto ip = segmentIntersectionPoint(a, b);
      ASSERT_TRUE(ip.has_value());
      EXPECT_LT(pointSegmentDistance(*ip, a), 1e-6);
      EXPECT_LT(pointSegmentDistance(*ip, b), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentFuzz, ::testing::Range(0, 6));

}  // namespace
}  // namespace hybrid::geom
