#include <gtest/gtest.h>

#include <random>

#include "core/hybrid_network.hpp"
#include "graph/rotation.hpp"
#include "routing/goafr.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

TEST(RotationSystem, CcwOrderAndSuccessors) {
  graph::GeometricGraph g({{0, 0}, {1, 0}, {0, 1}, {-1, 0}, {0, -1}});
  for (int i = 1; i <= 4; ++i) g.addEdge(0, i);
  const graph::RotationSystem rot(g);
  EXPECT_EQ(rot.neighborsCcw(0), (std::vector<graph::NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(rot.nextCcw(0, 1), 2);
  EXPECT_EQ(rot.nextCcw(0, 4), 1);
  EXPECT_EQ(rot.nextCw(0, 1), 4);
  // Sweeping from direction (1, 0.1): first cw neighbor is node 1 (east),
  // first ccw is node 2 (north).
  EXPECT_EQ(rot.firstCw(0, {1.0, 0.1}), 1);
  EXPECT_EQ(rot.firstCcw(0, {1.0, 0.1}), 2);
}

TEST(Goafr, DeliversOnScenariosWithHoles) {
  scenario::ScenarioParams p;
  p.width = p.height = 20.0;
  p.seed = 45;
  p.obstacles.push_back(scenario::regularPolygonObstacle({10.0, 10.0}, 3.0, 6));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  routing::GoafrRouter goafr(net.ldel());

  std::mt19937 rng(3);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  int delivered = 0;
  const int pairs = 120;
  for (int it = 0; it < pairs; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = goafr.route(s, t);
    if (r.delivered) ++delivered;
    // Every hop is a real edge.
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      ASSERT_TRUE(net.ldel().hasEdge(r.path[i], r.path[i + 1]));
    }
  }
  // A worst-case-optimal local strategy must deliver (allow a tiny slack
  // for boundary-face corner cases of our implementation).
  EXPECT_GE(delivered, pairs * 95 / 100);
}

TEST(Goafr, PaysForItsExplorationAroundDeepHoles) {
  // U-shaped hole with target behind it: GOAFR's bounded face exploration
  // must walk in and back out, so its path is longer than the hybrid's.
  scenario::ScenarioParams p;
  p.width = p.height = 24.0;
  p.seed = 47;
  p.obstacles.push_back(scenario::uShapeObstacle({12.0, 12.0}, 10.0, 9.0, 1.5));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  routing::GoafrRouter goafr(net.ldel());

  auto nearest = [&](geom::Vec2 q) {
    int best = 0;
    double bd = 1e18;
    for (int v = 0; v < static_cast<int>(sc.points.size()); ++v) {
      const double d = geom::dist2(net.ldel().position(v), q);
      if (d < bd) {
        bd = d;
        best = v;
      }
    }
    return best;
  };
  const int s = nearest({12.0, 12.5});  // inside the bay
  const int t = nearest({12.0, 2.0});   // below the U
  const auto rg = goafr.route(s, t);
  const auto rh = net.route(s, t);
  ASSERT_TRUE(rg.delivered);
  ASSERT_TRUE(rh.delivered);
  EXPECT_GT(net.stretch(rg, s, t), net.stretch(rh, s, t));
}

}  // namespace
}  // namespace hybrid
